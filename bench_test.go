// Package gsalert_test holds the benchmark harness regenerating every
// figure-scenario and evaluation claim of the paper (see
// docs/EXPERIMENTS.md for the experiment index and the recorded
// outputs). Run with:
//
//	go test -bench=. -benchmem
//
// The same scenarios are runnable interactively via cmd/alert-bench, which
// prints the result tables.
package gsalert_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/composite"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/filter"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/replica"
	"github.com/gsalert/gsalert/internal/sim"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// ---------------------------------------------------------------------------
// F2 / E2 — GDS broadcast (Figure 2 shape and the scalability sweep).

func benchGDSBroadcast(b *testing.B, servers, branching int) {
	b.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 1, GDSNodes: max(1, servers/8), GDSBranching: branching})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < servers; i++ {
		if _, err := c.AddServer(fmt.Sprintf("S%04d", i), -1); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.Server("S0000").AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		b.Fatal(err)
	}
	docs := []*collection.Document{{ID: "d1", Content: "payload"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs[0].Content = fmt.Sprintf("payload %d", i) // force a diff per build
		if _, _, err := c.Server("S0000").Build(ctx, "X", docs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.TR.Stats().Sent)/float64(b.N), "msgs/event")
}

// BenchmarkFigure2Broadcast reproduces Figure 2: a 7-node stratum tree with
// one event flooded from one server to all others.
func BenchmarkFigure2Broadcast(b *testing.B) { benchGDSBroadcast(b, 7, 3) }

// BenchmarkGDSScalability sweeps the tree size (experiment E2).
func BenchmarkGDSScalability(b *testing.B) {
	for _, servers := range []int{10, 50, 100, 250} {
		for _, branching := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("servers=%d/branching=%d", servers, branching), func(b *testing.B) {
				benchGDSBroadcast(b, servers, branching)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// F3 / E5 — the auxiliary-profile round trip of Figure 3 and deeper chains.

func benchAuxChain(b *testing.B, depth int) {
	b.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 2, GDSNodes: 2, GDSBranching: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, depth+1)
	for i := 0; i <= depth; i++ {
		name := fmt.Sprintf("H%d", i)
		if _, err := c.AddServer(name, i%2); err != nil {
			b.Fatal(err)
		}
		names = append(names, name)
	}
	for i := 0; i <= depth; i++ {
		cfg := collection.Config{Name: fmt.Sprintf("C%d", i), Public: true}
		if i < depth {
			cfg.Subs = []collection.SubRef{{Host: names[i+1], Name: fmt.Sprintf("C%d", i+1)}}
		}
		if _, err := c.Server(names[i]).AddCollection(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
	sink := c.Notifier(names[0], "w")
	if _, err := c.Service(names[0]).Subscribe("w", profile.MustParse(
		`collection = "H0.C0" AND (event.type = "collection-built" OR event.type = "collection-rebuilt")`)); err != nil {
		b.Fatal(err)
	}
	leafColl := fmt.Sprintf("C%d", depth)
	docs := []*collection.Document{{ID: "d1", Content: "x"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs[0].Content = fmt.Sprintf("x %d", i)
		if _, _, err := c.Server(names[depth]).Build(ctx, leafColl, docs); err != nil {
			b.Fatal(err)
		}
	}
	c.Settle(ctx)
	b.StopTimer()
	if sink.Len() != b.N {
		b.Fatalf("watcher notifications = %d, want %d", sink.Len(), b.N)
	}
}

// BenchmarkFigure3AuxRoundTrip reproduces Figure 3: Hamilton.D ⊃ London.E,
// rebuild at London, transformed event notification at Hamilton.
func BenchmarkFigure3AuxRoundTrip(b *testing.B) { benchAuxChain(b, 1) }

// BenchmarkAuxChain sweeps super/sub chain depth (experiment E5).
func BenchmarkAuxChain(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) { benchAuxChain(b, depth) })
	}
}

// ---------------------------------------------------------------------------
// E1 — build overhead of the filtering step.

// BenchmarkBuildOverhead measures one rebuild+publish with a profile
// population attached (experiment E1); compare against profiles=0.
func BenchmarkBuildOverhead(b *testing.B) {
	for _, docs := range []int{100, 1000} {
		for _, profiles := range []int{0, 100, 1000, 10000} {
			b.Run(fmt.Sprintf("docs=%d/profiles=%d", docs, profiles), func(b *testing.B) {
				c, err := sim.NewCluster(sim.ClusterConfig{Seed: 3, GDSNodes: 1, GDSBranching: 2})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				ctx := context.Background()
				if _, err := c.AddServer("Host", 0); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Server("Host").AddCollection(ctx, collection.Config{
					Name: "Col", Public: true, IndexFields: []string{"dc.Title", "dc.Creator"},
				}); err != nil {
					b.Fatal(err)
				}
				c.Notifier("Host", "u")
				for i := 0; i < profiles; i++ {
					expr := fmt.Sprintf(`collection = "Host.Col" AND dc.Creator = "Author%d"`, i%100)
					if _, err := c.Service("Host").Subscribe("u", profile.MustParse(expr)); err != nil {
						b.Fatal(err)
					}
				}
				set := make([]*collection.Document, docs)
				for i := range set {
					set[i] = &collection.Document{
						ID: fmt.Sprintf("doc%05d", i),
						Metadata: map[string][]string{
							"dc.Title":   {fmt.Sprintf("Title %d", i)},
							"dc.Creator": {fmt.Sprintf("Author%d", i%100)},
						},
						Content: fmt.Sprintf("body %d words here", i),
					}
				}
				b.ResetTimer()
				var prevVersion int
				for i := 0; i < b.N; i++ {
					set[0].Content = fmt.Sprintf("body changed %d", i)
					res, _, err := c.Server("Host").Build(ctx, "Col", set)
					if err != nil {
						b.Fatal(err)
					}
					// Guard the invariants the measurement rests on: each
					// iteration is one monotonically-versioned incremental
					// rebuild diffing exactly the one mutated document (the
					// first build ingests the whole set). If the differ ever
					// regresses to full re-adds, the profile-matching cost
					// being measured silently changes shape.
					if res.Version != prevVersion+1 {
						b.Fatalf("build %d: version %d after %d", i, res.Version, prevVersion)
					}
					prevVersion = res.Version
					added, changed := len(res.Added), len(res.Changed)
					if len(res.Removed) != 0 {
						b.Fatalf("build %d removed %d documents", i, len(res.Removed))
					}
					if i == 0 {
						if added != docs || changed != 0 {
							b.Fatalf("initial build diffed %d added/%d changed, want %d/0", added, changed, docs)
						}
					} else if added != 0 || changed != 1 {
						b.Fatalf("build %d diffed %d added/%d changed, want 0/1", i, added, changed)
					}
					if len(res.Events) == 0 {
						b.Fatalf("build %d produced no events", i)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — routing comparison.

// BenchmarkRoutingComparison runs the four routers through the fragmented-
// network scenario (experiment E3); correctness is asserted in the sim
// package tests, this benchmark tracks cost.
func BenchmarkRoutingComparison(b *testing.B) {
	for _, frag := range []float64{0, 0.3, 0.6, 0.9} {
		b.Run(fmt.Sprintf("fragmentation=%0.1f", frag), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunRoutingComparison(64, frag, int64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E4 — filter engines (the §5 equality-preferred algorithm vs naive scan).

func benchFilterEngine(b *testing.B, mk func() filter.Matcher, profiles int) {
	b.Helper()
	m := mk()
	for i := 0; i < profiles; i++ {
		expr := fmt.Sprintf(`collection = "H.C%d" AND dc.Creator = "Author%d"`, i%50, i%500)
		p := profile.NewUser(fmt.Sprintf("p%06d", i), "u", "H", profile.MustParse(expr))
		if err := m.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]*event.Event, 32)
	for i := range events {
		events[i] = event.New(fmt.Sprintf("e%d", i), event.TypeDocumentsAdded,
			event.QName{Host: "H", Collection: fmt.Sprintf("C%d", i%50)}, 1,
			[]event.DocRef{{
				ID: fmt.Sprintf("d%d", i),
				Metadata: map[string][]string{
					"dc.Creator": {fmt.Sprintf("Author%d", i%500)},
					"dc.Title":   {"some title"},
				},
			}}, eventTime())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(events[i%len(events)])
	}
}

// BenchmarkFilterMatching sweeps profile counts over both engines
// (experiment E4).
func BenchmarkFilterMatching(b *testing.B) {
	for _, profiles := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("naive/profiles=%d", profiles), func(b *testing.B) {
			benchFilterEngine(b, func() filter.Matcher { return filter.NewNaive() }, profiles)
		})
		b.Run(fmt.Sprintf("eqpref/profiles=%d", profiles), func(b *testing.B) {
			benchFilterEngine(b, func() filter.Matcher { return filter.NewEqualityPreferred() }, profiles)
		})
	}
}

// ---------------------------------------------------------------------------
// E6 — partition recovery.

// BenchmarkPartitionRecovery cycles partition/rebuild/heal/flush
// (experiment E6).
func BenchmarkPartitionRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := sim.RunPartitionRecovery(3, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if r.DuringPartition != 0 || r.AfterHeal != 3 {
			b.Fatalf("recovery broken: %+v", r)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — lossy flooding.

// BenchmarkLossyBroadcast measures best-effort delivery under loss
// (experiment E7).
func BenchmarkLossyBroadcast(b *testing.B) {
	for _, p := range []float64{0, 0.05, 0.2} {
		b.Run(fmt.Sprintf("drop=%0.2f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunLossyBroadcast(16, 4, p, int64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — dissemination ablation.

// BenchmarkMulticastAblation compares broadcast and interest-scoped
// multicast dissemination at different interest levels (experiment E9).
func BenchmarkMulticastAblation(b *testing.B) {
	for _, interested := range []int{1, 8, 31} {
		for _, mode := range []struct {
			name string
			m    core.RoutingMode
		}{{"broadcast", core.RouteBroadcast}, {"multicast", core.RouteMulticast}} {
			b.Run(fmt.Sprintf("%s/interested=%d", mode.name, interested), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := sim.RunMulticastAblation(32, interested, 5, mode.m, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(r.Messages)/float64(r.Events), "msgs/event")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E12 — the dissemination ladder: flood vs multicast vs content routing.

// BenchmarkRoutingModes runs the E12 workload (rebuilds emitting several
// event types, a minority of servers interested in one of them) through
// all three dissemination modes, reporting per-round message cost
// (experiment E12; see docs/ROUTING.md for the modes).
func BenchmarkRoutingModes(b *testing.B) {
	const (
		servers    = 12
		interested = 3
		rounds     = 4
	)
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := sim.RunContentRouting(servers, interested, rounds, mode, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if r.Notifications != interested*rounds {
					b.Fatalf("%s delivered %d notifications, want %d", mode, r.Notifications, interested*rounds)
				}
				if i == 0 {
					b.ReportMetric(float64(r.Messages)/float64(rounds), "msgs/round")
					b.ReportMetric(float64(r.AvgLatency.Microseconds()), "latency-µs")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — continuous search / watch-this.

// BenchmarkWatchThis measures end-to-end watch-this alerting on rebuilds
// (experiment E8).
func BenchmarkWatchThis(b *testing.B) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 4, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.AddServer("Host", 0); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Server("Host").AddCollection(ctx, collection.Config{Name: "Col", Public: true}); err != nil {
		b.Fatal(err)
	}
	c.Notifier("Host", "w")
	coll := event.QName{Host: "Host", Collection: "Col"}
	if _, err := c.Service("Host").WatchDocuments("w", coll, []string{"doc00001"}); err != nil {
		b.Fatal(err)
	}
	set := make([]*collection.Document, 500)
	for i := range set {
		set[i] = &collection.Document{ID: fmt.Sprintf("doc%05d", i), Content: "body"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set[1].Content = fmt.Sprintf("body %d", i)
		if _, _, err := c.Server("Host").Build(ctx, "Col", set); err != nil {
			b.Fatal(err)
		}
	}
}

func eventTime() time.Time { return time.Unix(1117584000, 0) } // 2005-06-01

// ---------------------------------------------------------------------------
// E11 — notification delivery: synchronous fan-out vs the sharded pipeline.

// benchDelivery reuses the E11 harness (sim.RunDeliveryThroughput): a
// simulated 20µs-per-call + 500ns-per-notification transport cost — the
// shape batching amortises. shards == 0 is the seed's synchronous design:
// one blocking sink call per notification on the match path.
func benchDelivery(b *testing.B, shards int) {
	b.Helper()
	const (
		clients = 32
		perCall = 20 * time.Microsecond
		perItem = 500 * time.Nanosecond
	)
	b.ResetTimer()
	r, err := sim.RunDeliveryThroughput(b.N, clients, shards, perCall, perItem)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(r.PerSecond, "notifs/sec")
}

// BenchmarkDeliverySharding compares the synchronous notifier baseline with
// the pipeline at 1, 4 and 16 shards (experiment E11; the acceptance sweep
// of the delivery subsystem).
func BenchmarkDeliverySharding(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchDelivery(b, 0) })
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pipeline/shards=%d", shards), func(b *testing.B) { benchDelivery(b, shards) })
	}
}

// ---------------------------------------------------------------------------
// E13 — composite-engine throughput and window-GC cost.

// newCompositeBenchEngine builds an engine holding `live` open sequence
// instances spread over live/1000 three-step windowed sequence profiles
// (1000 open instances per profile, which is also the per-profile cap).
func newCompositeBenchEngine(b *testing.B, live int) (*composite.Engine, []string, *event.Event) {
	b.Helper()
	const perDef = 1000
	defs := live / perDef
	if defs < 1 {
		defs = 1
	}
	e := composite.NewEngine(composite.Config{MaxInstances: perDef, Emit: func(composite.Firing) {}})
	c := profile.MustParseComposite(`SEQUENCE (a = "1") THEN (b = "2") THEN (c = "3") WITHIN 1h`)
	ids := make([]string, defs)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-comp-%d", i)
		p, err := profile.NewComposite(ids[i], "u", "H", c)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Register(p, eventTime()); err != nil {
			b.Fatal(err)
		}
	}
	ev := event.New("bench-ev", event.TypeDocumentsAdded,
		event.QName{Host: "H", Collection: "C"}, 1, nil, eventTime())
	for i := 0; i < live; i++ {
		e.OnPrimitive(ids[i%defs], 0, ev, nil, eventTime())
	}
	if got := e.Stats().LiveInstances; got != int64(defs*perDef) {
		b.Fatalf("live instances = %d, want %d", got, defs*perDef)
	}
	return e, ids, ev
}

// BenchmarkCompositeEngine measures the composite engine at 10k, 100k and
// 1M live sequence instances (experiment E13): "ingest" is the state-
// machine throughput of step-0 matches (O(1) opens at the instance cap),
// "gc" is one full window-garbage-collection sweep (Tick) over every live
// instance.
func BenchmarkCompositeEngine(b *testing.B) {
	for _, live := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("instances=%d/ingest", live), func(b *testing.B) {
			e, ids, ev := newCompositeBenchEngine(b, live)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.OnPrimitive(ids[i%len(ids)], 0, ev, nil, eventTime())
			}
		})
		b.Run(fmt.Sprintf("instances=%d/gc", live), func(b *testing.B) {
			e, _, _ := newCompositeBenchEngine(b, live)
			// Tick inside the window: a full sweep that expires nothing,
			// the steady-state GC cost.
			at := eventTime().Add(30 * time.Minute)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Tick(at)
			}
			b.StopTimer()
			if got := e.Stats().LiveInstances; got < int64(live) {
				b.Fatalf("GC dropped live instances: %d", got)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E14 — replication overhead and failover.

// benchReplication measures the publish→match→deliver path of one server
// with `profiles` matching profiles, with and without a standby consuming
// the synchronous replication stream (experiment E14). The delta is the
// steady-state cost of zero-loss replication: one stream round-trip per
// dedup admission, mailbox append and delivery ack.
func benchReplication(b *testing.B, profiles int, replicated bool) {
	b.Helper()
	ctx := context.Background()
	tr := transport.NewMemory(11)
	defer tr.Close()
	mkSvc := func(addr string) *core.Service {
		svc, err := core.New(core.Config{ServerName: "P", ServerAddr: addr, Transport: tr})
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}
	primary := mkSvc("gs://p")
	defer primary.Close()
	for i := 0; i < profiles; i++ {
		if _, err := primary.Subscribe("u", profile.MustParse(
			fmt.Sprintf(`collection = "P.C" AND dc.Creator = "Author%d"`, i))); err != nil {
			b.Fatal(err)
		}
	}
	primary.RegisterNotifier("u", core.NotifierFunc(func(core.Notification) {}))
	if replicated {
		standby := mkSvc("gs://pb")
		defer standby.Close()
		prim, err := replica.NewPrimary(replica.PrimaryConfig{
			Service: primary, Transport: tr, ListenAddr: "repl://p",
		})
		if err != nil {
			b.Fatal(err)
		}
		defer prim.Close()
		recv, err := replica.NewStandby(replica.StandbyConfig{
			Service: standby, Transport: tr,
			ListenAddr: "repl://pb", PrimaryAddr: "repl://p",
		})
		if err != nil {
			b.Fatal(err)
		}
		defer recv.Close()
		if err := recv.Join(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := event.New(fmt.Sprintf("bench-repl-%d", i), event.TypeDocumentsAdded,
			event.QName{Host: "P", Collection: "C"}, 1,
			[]event.DocRef{{
				ID:       fmt.Sprintf("d%d", i),
				Metadata: map[string][]string{"dc.Creator": {fmt.Sprintf("Author%d", i%max(1, profiles))}},
			}}, eventTime())
		if _, err := primary.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := primary.DrainDeliveries(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplication compares an unreplicated server against one
// streaming every state change to a standby (experiment E14's steady-state
// overhead measurement).
func BenchmarkReplication(b *testing.B) {
	for _, profiles := range []int{100, 1000} {
		b.Run(fmt.Sprintf("unreplicated/profiles=%d", profiles), func(b *testing.B) {
			benchReplication(b, profiles, false)
		})
		b.Run(fmt.Sprintf("replicated/profiles=%d", profiles), func(b *testing.B) {
			benchReplication(b, profiles, true)
		})
	}
}

// BenchmarkDeliveryDurable measures the WAL write amplification of durable
// mailboxes: enqueue+deliver with the write-ahead log on.
func BenchmarkDeliveryDurable(b *testing.B) {
	dir := b.TempDir()
	p, err := delivery.NewPipeline(delivery.Config{
		Shards:        4,
		QueueDepth:    4096,
		BatchSize:     64,
		FlushInterval: time.Millisecond,
		Dir:           dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.Attach("u", func(_ string, _ []delivery.Notification) error { return nil })
	ev := event.New("bench-ev", event.TypeDocumentsChanged,
		event.QName{Host: "H", Collection: "C"}, 1, nil, eventTime())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Enqueue(delivery.Notification{Client: "u", ProfileID: "p", Event: ev, At: eventTime()}); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Drain(ctx); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// E15 — QoS scheduling hot path.

// benchQoSScheduling measures the delivery pipeline's enqueue→WFQ-dequeue→
// flush path: `classes` picks how many priority classes the workload mixes
// (1 = everything normal, the pre-QoS shape; 3 = realtime/normal/bulk
// round-robin through per-class queues and the deficit scheduler). The
// delta between the two is the WFQ hot-path cost (experiment E15).
func benchQoSScheduling(b *testing.B, classes, clients int) {
	b.Helper()
	p, err := delivery.NewPipeline(delivery.Config{
		Shards:        4,
		QueueDepth:    4096,
		BatchSize:     64,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < clients; i++ {
		p.Attach(fmt.Sprintf("u%d", i), func(_ string, _ []delivery.Notification) error { return nil })
	}
	classRing := []qos.Class{qos.ClassNormal, qos.ClassRealtime, qos.ClassBulk}
	ev := event.New("bench-qos-ev", event.TypeDocumentsChanged,
		event.QName{Host: "H", Collection: "C"}, 1, nil, eventTime())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := delivery.Notification{
			Client:    fmt.Sprintf("u%d", i%clients),
			ProfileID: "p",
			Event:     ev,
			Class:     classRing[i%classes],
			At:        eventTime(),
		}
		if err := p.Enqueue(n); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Drain(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if got := p.Metrics().Delivered.Value(); got < int64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// ---------------------------------------------------------------------------
// E16 — scale & chaos soak.

// BenchmarkChaosSoak runs the E16 soak at benchmark scale (a reduced
// population; the acceptance-scale runs live in the sim tests and
// cmd/loadgen) and records the per-class p99 delivery latency and message
// cost alongside wall time. The invariant check runs every iteration: a
// soak that loses alerts is not a number worth recording.
func BenchmarkChaosSoak(b *testing.B) {
	for _, profiles := range []int{5_000, 20_000} {
		b.Run(fmt.Sprintf("profiles=%d", profiles), func(b *testing.B) {
			var last *sim.ChaosSoakResult
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultChaosSoakConfig(int64(i + 1))
				cfg.Load.Profiles = profiles
				r, err := sim.RunChaosSoak(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Check(); err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.Messages)/float64(last.Events), "msgs/event")
			for _, s := range last.SLO {
				b.ReportMetric(float64(s.P99.Microseconds())/1e3, s.Class+"-p99-ms")
			}
		})
	}
}

// BenchmarkQoSScheduling records the WFQ scheduling cost on the delivery
// hot path (experiment E15): single-class traffic against a three-class
// mix, at 8 and 64 clients.
func BenchmarkQoSScheduling(b *testing.B) {
	for _, clients := range []int{8, 64} {
		for _, classes := range []int{1, 3} {
			b.Run(fmt.Sprintf("classes=%d/clients=%d", classes, clients), func(b *testing.B) {
				benchQoSScheduling(b, classes, clients)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E17 — tracing overhead on the publish path.

// benchTracePublish measures the publish→match→deliver path of one server
// under a tracer configuration: nil (tracing off), installed with sampling
// disabled (the always-on production default — one timed root per publish,
// nothing recorded), and head-sampling at 1% and 100%.
func benchTracePublish(b *testing.B, mkTracer func() *trace.Tracer) {
	b.Helper()
	tr := transport.NewMemory(6)
	defer tr.Close()
	svc, err := core.New(core.Config{
		ServerName: "P", ServerAddr: "gs://p", Transport: tr, Tracer: mkTracer(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Subscribe("u", profile.MustParse(`collection = "P.C"`)); err != nil {
		b.Fatal(err)
	}
	svc.RegisterNotifier("u", core.NotifierFunc(func(core.Notification) {}))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := event.New(fmt.Sprintf("bench-trace-%d", i), event.TypeDocumentsAdded,
			event.QName{Host: "P", Collection: "C"}, 1, nil, eventTime())
		if _, err := svc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.DrainDeliveries(ctx); err != nil {
		b.Fatal(err)
	}
}

// traceBenchConfigs are BenchmarkTraceOverhead's tracer configurations,
// using the production-default collector capacity (the ring's pointer
// slots are GC-scanned, so an oversized ring would tax every
// configuration with scan work no deployment pays).
var traceBenchConfigs = []struct {
	name string
	mk   func() *trace.Tracer
}{
	{"off", func() *trace.Tracer { return nil }},
	{"sample=0", func() *trace.Tracer {
		return trace.New(trace.Config{Service: "P", SampleRate: 0, Seed: 9, Collector: trace.NewCollector(trace.DefaultCapacity)})
	}},
	{"sample=0.01", func() *trace.Tracer {
		return trace.New(trace.Config{Service: "P", SampleRate: 0.01, Seed: 9, Collector: trace.NewCollector(trace.DefaultCapacity)})
	}},
	{"sample=1", func() *trace.Tracer {
		return trace.New(trace.Config{Service: "P", SampleRate: 1, Seed: 9, Collector: trace.NewCollector(trace.DefaultCapacity)})
	}},
}

// BenchmarkTraceOverhead compares the publish path with tracing off,
// installed-but-unsampled, 1%-sampled and fully sampled (experiment E17).
// The off vs sample=0 delta is the always-on cost every deployment pays;
// the acceptance bar holds it within 2% (asserted by
// TestTraceDisabledOverhead).
func BenchmarkTraceOverhead(b *testing.B) {
	for _, tc := range traceBenchConfigs {
		b.Run(tc.name, func(b *testing.B) { benchTracePublish(b, tc.mk) })
	}
}

// TestTraceDisabledOverhead is the E17 acceptance assertion: a tracer
// installed with sampling disabled adds at most 2% to the publish path
// versus no tracer at all. The two configurations run strictly interleaved
// batches against long-lived services and compare best-batch times, so
// clock-frequency drift, GC phase and scheduler noise hit both sides
// equally instead of deciding the verdict; a small absolute floor absorbs
// timer granularity.
func TestTraceDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark comparison; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation swamps the 2% bar; run without -race")
	}
	const (
		rounds    = 8
		batch     = 2000
		floorNs   = 150.0
		tolerance = 1.02
	)
	ctx := context.Background()
	type harness struct {
		svc  *core.Service
		seq  int
		name string
	}
	setup := func(name string, mk func() *trace.Tracer) *harness {
		tr := transport.NewMemory(6)
		t.Cleanup(func() { tr.Close() })
		svc, err := core.New(core.Config{
			ServerName: name, ServerAddr: "gs://" + name, Transport: tr, Tracer: mk(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		if _, err := svc.Subscribe("u", profile.MustParse(`collection = "`+name+`.C"`)); err != nil {
			t.Fatal(err)
		}
		svc.RegisterNotifier("u", core.NotifierFunc(func(core.Notification) {}))
		return &harness{svc: svc, name: name}
	}
	runBatch := func(h *harness) float64 {
		start := time.Now()
		for i := 0; i < batch; i++ {
			h.seq++
			ev := event.New(fmt.Sprintf("ovh-%s-%d", h.name, h.seq), event.TypeDocumentsAdded,
				event.QName{Host: h.name, Collection: "C"}, 1, nil, eventTime())
			if _, err := h.svc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		if err := h.svc.DrainDeliveries(ctx); err != nil {
			t.Fatal(err)
		}
		return float64(elapsed.Nanoseconds()) / batch
	}
	off := setup("P", traceBenchConfigs[0].mk)
	disabled := setup("Q", traceBenchConfigs[1].mk)
	runBatch(off) // warm-up both paths before measuring
	runBatch(disabled)
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	var offBest, disBest float64
	for i := 0; i < rounds; i++ {
		offBest = best(offBest, runBatch(off))
		disBest = best(disBest, runBatch(disabled))
	}
	limit := offBest*tolerance + floorNs
	t.Logf("publish path: off %.0fns/op, sampling-disabled %.0fns/op (limit %.0f)", offBest, disBest, limit)
	if disBest > limit {
		t.Errorf("sampling-disabled publish path %.0fns/op exceeds off %.0fns/op by more than 2%%", disBest, offBest)
	}
}

// benchQoSAdmission measures the publish→match→deliver path of one server
// with an admission controller installed vs none: the per-match cost of the
// token-bucket checks (experiment E15). Quotas are set high enough that
// nothing is actually shed — this is the fast-path overhead.
func BenchmarkQoSAdmission(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			tr := transport.NewMemory(5)
			defer tr.Close()
			cfg := core.Config{ServerName: "P", ServerAddr: "gs://p", Transport: tr}
			if enabled {
				cfg.QoS = qos.NewController(qos.Config{
					SubscriberRate: 1e9, SubscriberBurst: 1 << 30,
					CollectionRate: 1e9, CollectionBurst: 1 << 30,
				})
			}
			svc, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			if _, err := svc.Subscribe("u", profile.MustParse(`collection = "P.C"`)); err != nil {
				b.Fatal(err)
			}
			svc.RegisterNotifier("u", core.NotifierFunc(func(core.Notification) {}))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := event.New(fmt.Sprintf("bench-qos-adm-%d", i), event.TypeDocumentsAdded,
					event.QName{Host: "P", Collection: "C"}, 1, nil, eventTime())
				if _, err := svc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
					b.Fatal(err)
				}
			}
			if err := svc.DrainDeliveries(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E18 — health-plane rule evaluation at scrape cadence.

// BenchmarkHealthEval measures one engine tick — snapshot the registry,
// evaluate every rule, step the state machines — against a fully
// registered catalog (service + delivery + QoS), for the built-in default
// rule set and a 100-rule synthetic set. The tick runs at scrape cadence
// (seconds), so anything in the microseconds is free; this pins it there.
func BenchmarkHealthEval(b *testing.B) {
	mkSrc := func(b *testing.B) (*obs.Registry, func()) {
		b.Helper()
		tr := transport.NewMemory(5)
		ctrl := qos.NewController(qos.Config{
			SubscriberRate: 1e9, SubscriberBurst: 1 << 30,
		})
		svc, err := core.New(core.Config{
			ServerName: "P", ServerAddr: "gs://p", Transport: tr, QoS: ctrl,
		})
		if err != nil {
			b.Fatal(err)
		}
		reg := obs.NewRegistry()
		obs.RegisterService(reg, svc.Stats)
		obs.RegisterDelivery(reg, svc.Delivery())
		obs.RegisterQoS(reg, ctrl)
		return reg, func() { svc.Close(); tr.Close() }
	}
	bench := func(b *testing.B, rs *health.RuleSet) {
		b.Helper()
		reg, done := mkSrc(b)
		defer done()
		now := time.Unix(1_700_000_000, 0)
		eng := health.NewEngine(reg, rs, health.Options{Clock: func() time.Time { return now }})
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = now.Add(time.Second)
			eng.TickAt(now)
		}
	}
	b.Run("rules=default", func(b *testing.B) { bench(b, health.DefaultRules()) })
	b.Run("rules=100", func(b *testing.B) {
		var sb []byte
		for i := 0; i < 100; i++ {
			sb = append(sb, fmt.Sprintf(`
rule r%d {
	component = c%d
	severity = warning
	expr = gsalert_delivery_queue_depth > %d
}`, i, i%8, i)...)
		}
		rs, err := health.ParseRules(string(sb))
		if err != nil {
			b.Fatal(err)
		}
		bench(b, rs)
	})
}

// ---------------------------------------------------------------------------
// E19 — structured logging & flight recorder.

// BenchmarkLogRecord prices one log call in the three postures that matter:
// "disabled" (the record is below the effective level — the always-on cost
// every call site pays), "ring" (emitted into the lock-free flight ring
// with no sink attached — the production default), and "sink" (ring plus a
// rendered logfmt line on an io.Discard writer — the stderr-shaped cost
// without terminal I/O noise).
func BenchmarkLogRecord(b *testing.B) {
	run := func(b *testing.B, lg *logging.Logger, lvl logging.Level) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if lvl == logging.LevelDebug {
				lg.Debug("delivery flushed", logging.String("client", "u1"), logging.Int("batch", 32))
			} else {
				lg.Info("delivery flushed", logging.String("client", "u1"), logging.Int("batch", 32))
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		rec := logging.NewRecorder(logging.Config{Level: logging.LevelInfo})
		run(b, rec.For("delivery"), logging.LevelDebug)
	})
	b.Run("ring", func(b *testing.B) {
		rec := logging.NewRecorder(logging.Config{Level: logging.LevelInfo})
		run(b, rec.For("delivery"), logging.LevelInfo)
	})
	b.Run("sink", func(b *testing.B) {
		rec := logging.NewRecorder(logging.Config{Level: logging.LevelInfo, Sink: io.Discard})
		run(b, rec.For("delivery"), logging.LevelInfo)
	})
}

// BenchmarkExemplarObserve prices the exemplar-carrying histogram observe
// against the plain one: the delivery pipeline calls ObserveExemplar for
// sampled notifications and Observe otherwise, so the delta is what
// trace-correlated latency buckets cost on the sampled path.
func BenchmarkExemplarObserve(b *testing.B) {
	b.Run("observe", func(b *testing.B) {
		var h metrics.LatencyHistogram
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(3 * time.Millisecond)
		}
	})
	b.Run("exemplar", func(b *testing.B) {
		var h metrics.LatencyHistogram
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(3*time.Millisecond, "0af7651916cd43dd8448eb211c80319c")
		}
	})
}

// TestLogDisabledOverhead is the E19 acceptance assertion, the logging
// twin of TestTraceDisabledOverhead: a structured logger installed with
// the publish-path sites below the effective level adds at most 2% to the
// publish path versus no logger at all. Strictly interleaved batches and
// best-batch comparison for the same reasons as the trace pin.
func TestLogDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark comparison; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation swamps the 2% bar; run without -race")
	}
	const (
		rounds    = 8
		batch     = 2000
		floorNs   = 150.0
		tolerance = 1.02
	)
	ctx := context.Background()
	type harness struct {
		svc  *core.Service
		seq  int
		name string
	}
	setup := func(name string, lg *logging.Logger) *harness {
		tr := transport.NewMemory(6)
		t.Cleanup(func() { tr.Close() })
		svc, err := core.New(core.Config{
			ServerName: name, ServerAddr: "gs://" + name, Transport: tr, Log: lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		if _, err := svc.Subscribe("u", profile.MustParse(`collection = "`+name+`.C"`)); err != nil {
			t.Fatal(err)
		}
		svc.RegisterNotifier("u", core.NotifierFunc(func(core.Notification) {}))
		return &harness{svc: svc, name: name}
	}
	runBatch := func(h *harness) float64 {
		start := time.Now()
		for i := 0; i < batch; i++ {
			h.seq++
			ev := event.New(fmt.Sprintf("lov-%s-%d", h.name, h.seq), event.TypeDocumentsAdded,
				event.QName{Host: h.name, Collection: "C"}, 1, nil, eventTime())
			if _, err := h.svc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		if err := h.svc.DrainDeliveries(ctx); err != nil {
			t.Fatal(err)
		}
		return float64(elapsed.Nanoseconds()) / batch
	}
	// The installed logger sits at info; every publish-path site logs at
	// debug, so the measured cost is the level gate alone — the posture
	// every production deployment runs in.
	rec := logging.NewRecorder(logging.Config{Level: logging.LevelInfo})
	off := setup("P", nil)
	disabled := setup("Q", rec.For("core"))
	runBatch(off) // warm-up both paths before measuring
	runBatch(disabled)
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	var offBest, disBest float64
	for i := 0; i < rounds; i++ {
		offBest = best(offBest, runBatch(off))
		disBest = best(disBest, runBatch(disabled))
	}
	limit := offBest*tolerance + floorNs
	t.Logf("publish path: no logger %.0fns/op, logging-disabled %.0fns/op (limit %.0f)", offBest, disBest, limit)
	if disBest > limit {
		t.Errorf("logging-disabled publish path %.0fns/op exceeds no-logger %.0fns/op by more than 2%%", disBest, offBest)
	}
}
