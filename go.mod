module github.com/gsalert/gsalert

go 1.22
