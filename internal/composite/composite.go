// Package composite implements the stateful composite-event engine behind
// the temporal operators of the profile language (profile.Composite). The
// paper's alerting service filters each event in isolation; this engine
// adds the scenario family the surrounding literature (Hinze's A-mediAS
// composite events) treats as essential: sequences ("X then Y within a
// week"), accumulations ("ten documents landed in this collection") and
// digest schedules ("one summary per day").
//
// The engine sits behind the existing filter.Matcher path: a composite
// profile's primitive steps are registered with the ordinary matcher as
// marked step profiles, and core.Service routes their matches here via
// OnPrimitive instead of delivering them. Each registered composite drives
// a small per-profile state machine; when one completes, the engine emits a
// Firing through its callback, which core synthesizes into a notification
// and pushes through the internal/delivery pipeline — so composite alerts
// (including digests) inherit the pipeline's durability and backpressure.
//
// Time windows use lazy expiry (instances found dead are dropped whenever
// their profile's state is touched) plus a periodic Tick that garbage-
// collects idle state and flushes due digests, so millions of live
// instances cost nothing between touches and one linear sweep per tick.
package composite

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/trace"
)

// Firing is one completed composite: a sequence that reached its last
// step, an accumulation that reached its threshold, or a digest flush.
type Firing struct {
	// ProfileID is the composite profile that completed.
	ProfileID string
	// Owner is the subscribed client.
	Owner string
	// Kind is the composite operator.
	Kind profile.CompositeKind
	// Events are the contributing primitive events, in arrival order.
	Events []*event.Event
	// DocIDs is the union of the contributing matches' document IDs.
	DocIDs []string
	// At is the completion (or flush) time.
	At time.Time
	// Trace is the trace context of the primitive match that completed the
	// composite (for digests, the last sampled contribution), so the
	// synthesized notification stays connected to the triggering event's
	// span tree. Zero when no contributing event was traced.
	Trace trace.Context
}

// Stats counts the engine's externally visible work. Counters are
// cumulative; LiveInstances is a gauge.
type Stats struct {
	// Primitives counts step matches consumed via OnPrimitive.
	Primitives int64
	// Firings counts emitted completions of all kinds.
	Firings int64
	// DigestFlushes counts non-empty digest flushes (a subset of Firings).
	DigestFlushes int64
	// WindowsExpired counts sequence instances and accumulations dropped
	// because their time window closed.
	WindowsExpired int64
	// InstancesEvicted counts sequence instances displaced by the
	// per-profile instance cap.
	InstancesEvicted int64
	// LiveInstances is the current number of open sequence instances plus
	// open accumulations across all profiles.
	LiveInstances int64
}

// DefaultMaxInstances caps open sequence instances per profile; beyond it
// the oldest instance is evicted. The cap bounds memory against a step-0
// expression that matches a flood of events whose follow-ups never come.
const DefaultMaxInstances = 65536

// Config assembles an Engine.
type Config struct {
	// MaxInstances caps open sequence instances per profile (default
	// DefaultMaxInstances).
	MaxInstances int
	// Emit receives every firing. It is called without the engine lock
	// held, in completion order, and must be non-nil.
	Emit func(Firing)
}

// seqInstance is one open occurrence of a sequence: the steps consumed so
// far and the deadline by which the remaining steps must arrive.
type seqInstance struct {
	next     int       // next expected step index
	deadline time.Time // zero when the sequence is unwindowed
	// lastEventID guards against one event driving two consecutive steps
	// (each step must be matched by a distinct event).
	lastEventID string
	events      []*event.Event
	docIDs      []string
}

// def is one registered composite profile with its live state.
type def struct {
	id     string
	owner  string
	kind   profile.CompositeKind
	steps  int
	count  int
	window time.Duration
	every  time.Duration

	// Sequence state: open instances in creation order.
	instances []*seqInstance

	// Accumulation state: one open window at a time.
	accOpen     bool
	accDeadline time.Time
	accN        int
	accEvents   []*event.Event
	accDocIDs   []string

	// Digest state: the accrual batch and its next flush time.
	nextFlush   time.Time
	batchEvents []*event.Event
	batchDocIDs []string
	// batchTrace is the last sampled trace context contributed to the open
	// digest batch; the flush firing inherits it.
	batchTrace trace.Context
}

// Engine drives the state machines of all registered composite profiles of
// one server.
type Engine struct {
	emit    func(Firing)
	maxInst int

	mu    sync.Mutex
	defs  map[string]*def
	stats Stats
}

// Registration errors.
var (
	ErrNotComposite = errors.New("composite: profile is not composite")
	ErrDuplicate    = errors.New("composite: profile already registered")
)

// NewEngine builds an empty engine.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxInstances <= 0 {
		cfg.MaxInstances = DefaultMaxInstances
	}
	emit := cfg.Emit
	if emit == nil {
		emit = func(Firing) {}
	}
	return &Engine{
		emit:    emit,
		maxInst: cfg.MaxInstances,
		defs:    make(map[string]*def),
	}
}

// Register installs a composite profile's state machine. now anchors the
// digest schedule: the first flush is due one period after registration.
func (e *Engine) Register(p *profile.Profile, now time.Time) error {
	if p.Composite == nil {
		return fmt.Errorf("%w: %s", ErrNotComposite, p.ID)
	}
	if err := p.Composite.Validate(); err != nil {
		return err
	}
	c := p.Composite
	d := &def{
		id:     p.ID,
		owner:  p.Owner,
		kind:   c.Kind,
		steps:  len(c.Steps),
		count:  c.Count,
		window: c.Window,
		every:  c.Every,
	}
	if c.Kind == profile.CompositeDigest {
		d.nextFlush = now.Add(c.Every)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.defs[p.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, p.ID)
	}
	e.defs[p.ID] = d
	return nil
}

// EnsureDigest idempotently registers a synthetic digest definition with no
// backing composite profile. The QoS degradation path uses it: over-quota
// bulk-class matches are coalesced here (via OnPrimitive) instead of being
// delivered per event, and flush as one digest notification per period.
// now anchors the first flush, one period out.
func (e *Engine) EnsureDigest(id, owner string, every time.Duration, now time.Time) {
	if every <= 0 {
		every = time.Minute
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.defs[id]; ok {
		return
	}
	e.defs[id] = &def{
		id:        id,
		owner:     owner,
		kind:      profile.CompositeDigest,
		every:     every,
		nextFlush: now.Add(every),
	}
}

// Remove drops a composite profile and all its live state, reporting
// whether it was registered.
func (e *Engine) Remove(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.defs[id]
	if ok {
		e.stats.LiveInstances -= d.liveInstances()
		delete(e.defs, id)
	}
	return ok
}

// Len reports registered composite profiles.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.defs)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (d *def) liveInstances() int64 {
	n := int64(len(d.instances))
	if d.accOpen {
		n++
	}
	return n
}

// OnPrimitive consumes one primitive step match for the named composite
// profile and advances its state machine. Completions are emitted after
// the engine lock is released, in order.
func (e *Engine) OnPrimitive(profileID string, step int, ev *event.Event, docIDs []string, now time.Time) {
	e.OnPrimitiveCtx(profileID, step, ev, docIDs, now, trace.Context{})
}

// OnPrimitiveCtx is OnPrimitive with the triggering match's trace context:
// a completion fired by this match carries tctx so the composite stage
// appears in the event's span tree.
func (e *Engine) OnPrimitiveCtx(profileID string, step int, ev *event.Event, docIDs []string, now time.Time, tctx trace.Context) {
	e.mu.Lock()
	d, ok := e.defs[profileID]
	if !ok {
		e.mu.Unlock()
		return
	}
	e.stats.Primitives++
	var fired []Firing
	switch d.kind {
	case profile.CompositeSequence:
		fired = e.seqAdvanceLocked(d, step, ev, docIDs, now)
	case profile.CompositeCount:
		fired = e.accAdvanceLocked(d, ev, docIDs, now)
	case profile.CompositeDigest:
		d.batchEvents = append(d.batchEvents, ev)
		d.batchDocIDs = appendUnique(d.batchDocIDs, docIDs)
		if tctx.Sampled() {
			d.batchTrace = tctx
		}
	}
	for i := range fired {
		fired[i].Trace = tctx
	}
	e.stats.Firings += int64(len(fired))
	e.mu.Unlock()
	for _, f := range fired {
		e.emit(f)
	}
}

// seqAdvanceLocked drives one sequence definition. Opening (a step-0
// match) is O(1) — no scan — so a flood of step-0 events stays cheap at
// millions of live instances; later steps must scan the profile's open
// instances anyway (advance-all semantics) and expire dead ones in the
// same pass (lazy expiry).
func (e *Engine) seqAdvanceLocked(d *def, step int, ev *event.Event, docIDs []string, now time.Time) []Firing {
	if step == 0 {
		inst := &seqInstance{
			next:        1,
			lastEventID: ev.ID,
			events:      []*event.Event{ev},
			docIDs:      appendUnique(nil, docIDs),
		}
		if d.window > 0 {
			inst.deadline = now.Add(d.window)
		}
		d.instances = append(d.instances, inst)
		e.stats.LiveInstances++
		if len(d.instances) > e.maxInst {
			d.instances[0] = nil // release the evicted head and its events
			d.instances = d.instances[1:]
			e.stats.InstancesEvicted++
			e.stats.LiveInstances--
		}
		return nil
	}
	var fired []Firing
	kept := d.instances[:0]
	for _, inst := range d.instances {
		if !inst.deadline.IsZero() && inst.deadline.Before(now) {
			e.stats.WindowsExpired++
			e.stats.LiveInstances--
			continue
		}
		if inst.next != step || inst.lastEventID == ev.ID {
			kept = append(kept, inst)
			continue
		}
		inst.next++
		inst.lastEventID = ev.ID
		inst.events = append(inst.events, ev)
		inst.docIDs = appendUnique(inst.docIDs, docIDs)
		if inst.next < d.steps {
			kept = append(kept, inst)
			continue
		}
		fired = append(fired, Firing{
			ProfileID: d.id,
			Owner:     d.owner,
			Kind:      d.kind,
			Events:    inst.events,
			DocIDs:    inst.docIDs,
			At:        now,
		})
		e.stats.LiveInstances--
	}
	// Zero the tail so completed instances do not leak through the backing
	// array.
	for i := len(kept); i < len(d.instances); i++ {
		d.instances[i] = nil
	}
	d.instances = kept
	return fired
}

// seqExpireLocked drops instances whose window closed before now.
func (e *Engine) seqExpireLocked(d *def, now time.Time) {
	kept := d.instances[:0]
	for _, inst := range d.instances {
		if !inst.deadline.IsZero() && inst.deadline.Before(now) {
			e.stats.WindowsExpired++
			e.stats.LiveInstances--
			continue
		}
		kept = append(kept, inst)
	}
	for i := len(kept); i < len(d.instances); i++ {
		d.instances[i] = nil
	}
	d.instances = kept
}

// accAdvanceLocked drives one accumulation definition.
func (e *Engine) accAdvanceLocked(d *def, ev *event.Event, docIDs []string, now time.Time) []Firing {
	if d.accOpen && !d.accDeadline.IsZero() && d.accDeadline.Before(now) {
		// The open window expired before this match: the accrued matches
		// are discarded and the new match anchors a fresh window.
		d.resetAccLocked(e, true)
	}
	if !d.accOpen {
		d.accOpen = true
		e.stats.LiveInstances++
		if d.window > 0 {
			d.accDeadline = now.Add(d.window)
		} else {
			d.accDeadline = time.Time{}
		}
	}
	d.accN++
	d.accEvents = append(d.accEvents, ev)
	d.accDocIDs = appendUnique(d.accDocIDs, docIDs)
	if d.accN < d.count {
		return nil
	}
	f := Firing{
		ProfileID: d.id,
		Owner:     d.owner,
		Kind:      d.kind,
		Events:    d.accEvents,
		DocIDs:    d.accDocIDs,
		At:        now,
	}
	d.resetAccLocked(e, false)
	return []Firing{f}
}

// resetAccLocked closes the open accumulation window.
func (d *def) resetAccLocked(e *Engine, expired bool) {
	if d.accOpen {
		e.stats.LiveInstances--
		if expired {
			e.stats.WindowsExpired++
		}
	}
	d.accOpen = false
	d.accDeadline = time.Time{}
	d.accN = 0
	d.accEvents = nil
	d.accDocIDs = nil
}

// Tick garbage-collects expired windows across every profile and flushes
// digests whose period elapsed, as of now. Cores call it on a timer in live
// deployments and with explicit (possibly future) times in deterministic
// simulations; passing a time far in the future expires every open window.
func (e *Engine) Tick(now time.Time) {
	e.mu.Lock()
	var fired []Firing
	for _, d := range e.defs {
		switch d.kind {
		case profile.CompositeSequence:
			e.seqExpireLocked(d, now)
		case profile.CompositeCount:
			if d.accOpen && !d.accDeadline.IsZero() && d.accDeadline.Before(now) {
				d.resetAccLocked(e, true)
			}
		case profile.CompositeDigest:
			if now.Before(d.nextFlush) {
				continue
			}
			// One flush per tick, re-anchored at the tick time: after a
			// long quiet gap (or a simulated jump) the schedule resumes
			// from now rather than replaying every missed period.
			d.nextFlush = now.Add(d.every)
			if len(d.batchEvents) == 0 {
				continue
			}
			fired = append(fired, Firing{
				ProfileID: d.id,
				Owner:     d.owner,
				Kind:      d.kind,
				Events:    d.batchEvents,
				DocIDs:    d.batchDocIDs,
				At:        now,
				Trace:     d.batchTrace,
			})
			d.batchEvents = nil
			d.batchDocIDs = nil
			d.batchTrace = trace.Context{}
			e.stats.DigestFlushes++
		}
	}
	e.stats.Firings += int64(len(fired))
	e.mu.Unlock()
	for _, f := range fired {
		e.emit(f)
	}
}

// appendUnique appends the ids not already present in dst, preserving
// order. Contributing doc sets are small (one build's diff), so the linear
// scan beats a per-instance map.
func appendUnique(dst []string, ids []string) []string {
outer:
	for _, id := range ids {
		for _, have := range dst {
			if have == id {
				continue outer
			}
		}
		dst = append(dst, id)
	}
	return dst
}
