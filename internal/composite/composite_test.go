package composite

import (
	"fmt"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
)

var t0 = time.Unix(1117584000, 0) // 2005-06-01

func ev(id string) *event.Event {
	return event.New(id, event.TypeDocumentsAdded,
		event.QName{Host: "H", Collection: "C"}, 1, nil, t0)
}

// harness builds an engine recording firings and registers one composite.
func harness(t *testing.T, src string) (*Engine, *[]Firing) {
	t.Helper()
	var got []Firing
	e := NewEngine(Config{Emit: func(f Firing) { got = append(got, f) }})
	c := profile.MustParseComposite(src)
	p, err := profile.NewComposite("comp", "alice", "H", c)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(p, t0); err != nil {
		t.Fatal(err)
	}
	return e, &got
}

func TestSequenceFiresInOrder(t *testing.T) {
	e, got := harness(t, `SEQUENCE (a = "1") THEN (b = "2") THEN (c = "3")`)
	e.OnPrimitive("comp", 0, ev("e1"), []string{"d1"}, t0)
	e.OnPrimitive("comp", 1, ev("e2"), []string{"d2"}, t0.Add(time.Second))
	if len(*got) != 0 {
		t.Fatalf("fired early: %+v", *got)
	}
	e.OnPrimitive("comp", 2, ev("e3"), []string{"d1", "d3"}, t0.Add(2*time.Second))
	if len(*got) != 1 {
		t.Fatalf("firings = %d", len(*got))
	}
	f := (*got)[0]
	if f.Kind != profile.CompositeSequence || f.ProfileID != "comp" || f.Owner != "alice" {
		t.Errorf("firing = %+v", f)
	}
	if len(f.Events) != 3 || f.Events[0].ID != "e1" || f.Events[2].ID != "e3" {
		t.Errorf("contributing events = %v", f.Events)
	}
	if len(f.DocIDs) != 3 {
		t.Errorf("docIDs = %v (want union d1,d2,d3)", f.DocIDs)
	}
	if n := e.Stats().LiveInstances; n != 0 {
		t.Errorf("live instances after completion = %d", n)
	}
}

func TestSequenceOutOfOrderStepIgnored(t *testing.T) {
	e, got := harness(t, `SEQUENCE (a = "1") THEN (b = "2")`)
	// Step 1 with no open instance: nothing to advance.
	e.OnPrimitive("comp", 1, ev("e1"), nil, t0)
	if len(*got) != 0 || e.Stats().LiveInstances != 0 {
		t.Fatalf("out-of-order step had effect: %+v", e.Stats())
	}
}

func TestSequenceDistinctEventsPerStep(t *testing.T) {
	// One event matching both steps must not complete the sequence alone.
	e, got := harness(t, `SEQUENCE (a = "1") THEN (a = "1")`)
	shared := ev("same")
	e.OnPrimitive("comp", 0, shared, nil, t0)
	e.OnPrimitive("comp", 1, shared, nil, t0)
	if len(*got) != 0 {
		t.Fatal("one event drove two steps")
	}
	e.OnPrimitive("comp", 1, ev("other"), nil, t0.Add(time.Second))
	if len(*got) != 1 {
		t.Fatalf("distinct second event did not fire (firings = %d)", len(*got))
	}
}

func TestSequenceWindowExpiry(t *testing.T) {
	e, got := harness(t, `SEQUENCE (a = "1") THEN (b = "2") WITHIN 1h`)
	e.OnPrimitive("comp", 0, ev("e1"), nil, t0)
	if n := e.Stats().LiveInstances; n != 1 {
		t.Fatalf("live = %d", n)
	}
	// Lazy expiry: the late step-1 match finds the instance dead.
	e.OnPrimitive("comp", 1, ev("e2"), nil, t0.Add(2*time.Hour))
	if len(*got) != 0 {
		t.Fatal("expired window fired")
	}
	st := e.Stats()
	if st.WindowsExpired != 1 || st.LiveInstances != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSequenceGCExpiresViaTick(t *testing.T) {
	e, _ := harness(t, `SEQUENCE (a = "1") THEN (b = "2") WITHIN 1h`)
	for i := 0; i < 10; i++ {
		e.OnPrimitive("comp", 0, ev(fmt.Sprintf("e%d", i)), nil, t0)
	}
	if n := e.Stats().LiveInstances; n != 10 {
		t.Fatalf("live = %d", n)
	}
	e.Tick(t0.Add(30 * time.Minute)) // nothing due
	if n := e.Stats().LiveInstances; n != 10 {
		t.Fatalf("live after idle tick = %d", n)
	}
	e.Tick(t0.Add(2 * time.Hour))
	st := e.Stats()
	if st.LiveInstances != 0 || st.WindowsExpired != 10 {
		t.Errorf("stats after GC tick = %+v", st)
	}
}

func TestSequenceInstanceCap(t *testing.T) {
	var got []Firing
	e := NewEngine(Config{MaxInstances: 3, Emit: func(f Firing) { got = append(got, f) }})
	c := profile.MustParseComposite(`SEQUENCE (a = "1") THEN (b = "2")`)
	p, _ := profile.NewComposite("comp", "alice", "H", c)
	if err := e.Register(p, t0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.OnPrimitive("comp", 0, ev(fmt.Sprintf("e%d", i)), nil, t0)
	}
	st := e.Stats()
	if st.LiveInstances != 3 || st.InstancesEvicted != 2 {
		t.Errorf("stats = %+v", st)
	}
	// A step-1 match completes the three surviving instances.
	e.OnPrimitive("comp", 1, ev("fin"), nil, t0)
	if len(got) != 3 {
		t.Errorf("firings = %d, want 3", len(got))
	}
}

func TestCountFiresAtThreshold(t *testing.T) {
	e, got := harness(t, `COUNT 3 OF (a = "1")`)
	for i := 0; i < 7; i++ {
		e.OnPrimitive("comp", 0, ev(fmt.Sprintf("e%d", i)), []string{fmt.Sprintf("d%d", i)}, t0.Add(time.Duration(i)*time.Second))
	}
	if len(*got) != 2 {
		t.Fatalf("firings = %d, want 2 (7 matches / threshold 3)", len(*got))
	}
	f := (*got)[0]
	if f.Kind != profile.CompositeCount || len(f.Events) != 3 {
		t.Errorf("first firing = %+v", f)
	}
	if n := e.Stats().LiveInstances; n != 1 {
		t.Errorf("live = %d (one open accumulation with 1 leftover)", n)
	}
}

func TestCountWindowExpiry(t *testing.T) {
	e, got := harness(t, `COUNT 3 OF (a = "1") WITHIN 1h`)
	e.OnPrimitive("comp", 0, ev("e1"), nil, t0)
	e.OnPrimitive("comp", 0, ev("e2"), nil, t0.Add(time.Minute))
	// The window closes; the next match opens a fresh one.
	e.OnPrimitive("comp", 0, ev("e3"), nil, t0.Add(2*time.Hour))
	if len(*got) != 0 {
		t.Fatal("expired accumulation fired")
	}
	if st := e.Stats(); st.WindowsExpired != 1 {
		t.Errorf("stats = %+v", st)
	}
	e.OnPrimitive("comp", 0, ev("e4"), nil, t0.Add(2*time.Hour+time.Minute))
	e.OnPrimitive("comp", 0, ev("e5"), nil, t0.Add(2*time.Hour+2*time.Minute))
	if len(*got) != 1 {
		t.Fatalf("fresh window did not fire (firings = %d)", len(*got))
	}
	if evs := (*got)[0].Events; len(evs) != 3 || evs[0].ID != "e3" {
		t.Errorf("contributing = %v (stale events leaked in)", evs)
	}
}

func TestDigestFlushSchedule(t *testing.T) {
	e, got := harness(t, `DIGEST (a = "1") EVERY 24h`)
	e.OnPrimitive("comp", 0, ev("e1"), []string{"d1"}, t0.Add(time.Hour))
	e.OnPrimitive("comp", 0, ev("e2"), []string{"d2"}, t0.Add(2*time.Hour))
	e.Tick(t0.Add(3 * time.Hour)) // not due yet
	if len(*got) != 0 {
		t.Fatal("digest flushed early")
	}
	e.Tick(t0.Add(25 * time.Hour))
	if len(*got) != 1 {
		t.Fatalf("firings = %d", len(*got))
	}
	f := (*got)[0]
	if f.Kind != profile.CompositeDigest || len(f.Events) != 2 || len(f.DocIDs) != 2 {
		t.Errorf("digest firing = %+v", f)
	}
	// An empty period flushes nothing.
	e.Tick(t0.Add(50 * time.Hour))
	if len(*got) != 1 {
		t.Error("empty digest period produced a notification")
	}
	if st := e.Stats(); st.DigestFlushes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRemoveDropsState(t *testing.T) {
	e, _ := harness(t, `SEQUENCE (a = "1") THEN (b = "2")`)
	e.OnPrimitive("comp", 0, ev("e1"), nil, t0)
	if !e.Remove("comp") {
		t.Fatal("remove failed")
	}
	if e.Remove("comp") {
		t.Fatal("double remove succeeded")
	}
	if st := e.Stats(); st.LiveInstances != 0 {
		t.Errorf("live after remove = %d", st.LiveInstances)
	}
	// Matches for a removed profile are ignored.
	e.OnPrimitive("comp", 1, ev("e2"), nil, t0)
	if st := e.Stats(); st.Primitives != 1 {
		t.Errorf("primitives = %d (removed profile still consuming)", st.Primitives)
	}
}

func TestRegisterRejectsDuplicatesAndPrimitives(t *testing.T) {
	e, _ := harness(t, `COUNT 2 OF (a = "1")`)
	c := profile.MustParseComposite(`COUNT 2 OF (a = "1")`)
	p, _ := profile.NewComposite("comp", "alice", "H", c)
	if err := e.Register(p, t0); err == nil {
		t.Error("duplicate registration accepted")
	}
	prim := profile.NewUser("prim", "alice", "H", profile.MustParse(`a = "1"`))
	if err := e.Register(prim, t0); err == nil {
		t.Error("primitive profile accepted")
	}
}
