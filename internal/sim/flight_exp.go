package sim

import (
	"bytes"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/chaos"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/metrics"
)

// E19 — post-mortem flight recorder under chaos. The E16 soak runs with
// the full logging plane armed: every core service, delivery pipeline,
// directory node, the replica standby and the health engine log into one
// recorder's per-component flight rings, on the soak's virtual clock, with
// end-to-end tracing at sample rate 1 so every record carries a resolvable
// trace ID. A critical health rule (soak-promotion) watches the
// gsalert_replica_promoted gauge; the schedule's kill-primary fault flips
// it, the rule turns the replica component critical, and the transition
// hook captures a post-mortem bundle straight from the rings.
//
// The acceptance bar (docs/EXPERIMENTS.md §E19):
//
//   - the kill produces exactly ONE transition into Critical, hence
//     exactly one auto-captured bundle per run;
//   - the bundle holds ring records from at least three distinct
//     components — the black box shows the cross-subsystem timeline that
//     led to the capture, not one component's view;
//   - every record that carries a trace ID resolves to a trace the span
//     collector assembled — logs, traces and metrics join on the same IDs
//     (the "three pillars" correlation of docs/OBSERVABILITY.md);
//   - replaying the same seed yields a byte-identical bundle: capture
//     timestamps ride the virtual clock and every log site runs on the
//     orchestrating goroutine, so the black box is a pure function of the
//     seed.

// soakPromotionRules extends the soak rule set for flight-recorder runs:
// a promotion under a kill-primary fault is exactly the kind of event a
// post-mortem should capture, and the gauge never clears, so the rule
// yields one critical transition and stays firing.
const soakPromotionRules = `
rule soak-promotion {
	component = replica
	severity = critical
	expr = gsalert_replica_promoted > 0
}
`

// FlightSoakResult is one E19 row: the soak ran twice under the same seed
// and schedule, and the first run's auto-captured bundle is analysed
// against the second's for determinism.
type FlightSoakResult struct {
	Servers, Rounds, Events int
	Seed                    int64
	LiveProfiles            int

	// Promoted confirms the kill-primary fault bit.
	Promoted bool
	// CriticalTransitions counts health transitions into Critical across
	// the run — the bar is exactly one (the promotion rule fires once and
	// never clears).
	CriticalTransitions int
	// Dumps is the number of auto-captured bundles (one per critical
	// transition).
	Dumps int
	// Reason is the captured bundle's trigger string.
	Reason string

	// DumpRecords and DumpComponents describe the bundle's ring snapshot.
	DumpRecords    int
	DumpComponents []string
	// TracedRecords counts bundle records carrying a trace ID;
	// ResolvedRecords counts those whose ID the span collector assembled
	// into a trace. The bar is equality with TracedRecords > 0.
	TracedRecords, ResolvedRecords int
	// RetainedTraces is the bundle's trace-index length (IDs live in the
	// collector at capture time).
	RetainedTraces int
	// BundleBytes is the serialized bundle size; Bundle is the serialized
	// bundle itself (loadgen writes it as the CI soak artifact).
	BundleBytes int
	Bundle      []byte
	// Deterministic reports the replay produced a byte-identical bundle.
	Deterministic bool
	// TraceRingDropped is the collector's drop-oldest count; non-zero
	// would make the retained-trace index timing-dependent.
	TraceRingDropped int64

	// LoggingStats is the per-component ring accounting at end of run.
	LoggingStats []logging.ComponentStats
	// HealthTransitions is the full transition log of the chaos run.
	HealthTransitions []health.Transition

	Wall, WallReplay time.Duration
}

// RunFlightSoak plays the E19 experiment: the E16 chaos soak with the
// flight recorder armed, twice under the same seed, returning the bundle
// analysis. The config's Health, FlightRecorder and TraceSample knobs are
// forced to the experiment's requirements.
func RunFlightSoak(cfg ChaosSoakConfig) (*FlightSoakResult, error) {
	if cfg.Servers < 4 {
		return nil, fmt.Errorf("sim: soak needs >= 4 servers, got %d", cfg.Servers)
	}
	if cfg.Schedule.Counts()[chaos.KindKillPrimary] < 1 {
		return nil, fmt.Errorf("sim: E19 schedule has no kill-primary fault to capture")
	}
	cfg.Health = true
	cfg.FlightRecorder = true
	cfg.TraceSample = 1
	a, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("sim: E19 run: %w", err)
	}
	b, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("sim: E19 replay: %w", err)
	}
	r := &FlightSoakResult{
		Servers:             cfg.Servers,
		Rounds:              cfg.Rounds,
		Events:              cfg.Rounds * cfg.EventsPerRound,
		Seed:                cfg.Seed,
		LiveProfiles:        a.live,
		Promoted:            a.promoted,
		CriticalTransitions: a.critical,
		Dumps:               len(a.dumps),
		TraceRingDropped:    a.traceDropped,
		LoggingStats:        a.logStats,
		HealthTransitions:   a.healthTransitions,
		Wall:                a.wall,
		WallReplay:          b.wall,
	}
	if len(a.dumps) > 0 {
		d := a.dumps[0]
		r.Reason = d.Reason
		r.DumpRecords = len(d.Records)
		r.DumpComponents = d.Components()
		r.RetainedTraces = len(d.TraceIDs)
		r.BundleBytes = len(a.bundles[0])
		r.Bundle = a.bundles[0]
		for _, rec := range d.Records {
			if rec.TraceID == "" {
				continue
			}
			r.TracedRecords++
			if a.retainedTraces[rec.TraceID] {
				r.ResolvedRecords++
			}
		}
	}
	r.Deterministic = len(a.bundles) == 1 && len(b.bundles) == 1 &&
		bytes.Equal(a.bundles[0], b.bundles[0])
	return r, nil
}

// Check asserts the E19 acceptance bar on a result.
func (r *FlightSoakResult) Check() error {
	switch {
	case !r.Promoted:
		return fmt.Errorf("sim: E19 schedule killed no primary — nothing to capture")
	case r.CriticalTransitions != 1:
		return fmt.Errorf("sim: E19 saw %d critical transitions, want exactly 1", r.CriticalTransitions)
	case r.Dumps != 1:
		return fmt.Errorf("sim: E19 captured %d bundles, want exactly 1", r.Dumps)
	case r.Reason != "critical:replica":
		return fmt.Errorf("sim: E19 bundle reason %q, want critical:replica", r.Reason)
	case r.DumpRecords == 0:
		return fmt.Errorf("sim: E19 bundle holds no ring records")
	case len(r.DumpComponents) < 3:
		return fmt.Errorf("sim: E19 bundle spans %d components %v, want >= 3",
			len(r.DumpComponents), r.DumpComponents)
	case r.TracedRecords == 0:
		return fmt.Errorf("sim: E19 no bundle record carries a trace ID — logs and traces never joined")
	case r.ResolvedRecords != r.TracedRecords:
		return fmt.Errorf("sim: E19 %d of %d traced records resolve to an assembled trace",
			r.ResolvedRecords, r.TracedRecords)
	case r.TraceRingDropped != 0:
		return fmt.Errorf("sim: E19 span collector dropped %d spans — the trace index is lossy", r.TraceRingDropped)
	case !r.Deterministic:
		return fmt.Errorf("sim: E19 replay bundle differs — the black box is not a function of the seed")
	}
	return nil
}

// FlightSoakTable renders one E19 result as an experiment table.
func FlightSoakTable(r *FlightSoakResult) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E19 — flight recorder under chaos (%d servers, %d live profiles, %d events, seed %d)",
			r.Servers, r.LiveProfiles, r.Events, r.Seed),
		"check", "value")
	t.AddRow("promoted / critical transitions", fmt.Sprintf("%v / %d", r.Promoted, r.CriticalTransitions))
	t.AddRow("bundles captured / reason", fmt.Sprintf("%d / %s", r.Dumps, r.Reason))
	t.AddRow("bundle records / components", fmt.Sprintf("%d / %v", r.DumpRecords, r.DumpComponents))
	t.AddRow("traced records resolved", fmt.Sprintf("%d / %d", r.ResolvedRecords, r.TracedRecords))
	t.AddRow("retained trace index / ring-dropped spans", fmt.Sprintf("%d / %d", r.RetainedTraces, r.TraceRingDropped))
	t.AddRow("bundle bytes / replay identical", fmt.Sprintf("%d / %v", r.BundleBytes, r.Deterministic))
	for _, s := range r.LoggingStats {
		t.AddRow(fmt.Sprintf("logging[%s] emitted/dropped/occupancy", s.Component),
			fmt.Sprintf("%d / %d / %d of %d", s.Emitted, s.Dropped, s.Occupancy, s.Capacity))
	}
	t.AddRow("health transitions", len(r.HealthTransitions))
	t.AddRow("wall run / replay", fmt.Sprintf("%v / %v", r.Wall.Round(time.Millisecond), r.WallReplay.Round(time.Millisecond)))
	return t
}
