package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/baseline"
	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
)

// This file implements the experiment suite of docs/EXPERIMENTS.md. Each
// function returns structured results plus a rendered table so the same
// code backs the unit tests, the Go benchmarks in bench_test.go and the
// alert-bench command.

// ---------------------------------------------------------------------------
// E1 — build overhead: "the filtering acts as an additional step in the
// build process ... extending the overall process insignificantly" (§8).

// BuildOverheadResult is one E1 measurement row.
type BuildOverheadResult struct {
	Docs       int
	Profiles   int
	IndexTime  time.Duration
	FilterTime time.Duration
	OverheadPc float64
}

// RunBuildOverhead measures indexing vs filtering time for one (docs,
// profiles) point, averaged over rounds rebuilds.
func RunBuildOverhead(docs, profiles, rounds int, seed int64) (BuildOverheadResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		return BuildOverheadResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.AddServer("Host", 0); err != nil {
		return BuildOverheadResult{}, err
	}
	if _, err := c.Server("Host").AddCollection(ctx, collection.Config{
		Name: "Col", Public: true, IndexFields: []string{"dc.Title", "dc.Creator"},
	}); err != nil {
		return BuildOverheadResult{}, err
	}
	svc := c.Service("Host")
	c.Notifier("Host", "user") // absorb notifications
	// Distinct authors per profile: the realistic selective workload the
	// equality-preferred index is designed for. Documents draw authors from
	// a 1000-name space, so a bounded subset of profiles matches per build
	// regardless of the total profile population.
	for i := 0; i < profiles; i++ {
		expr := fmt.Sprintf(`collection = "Host.Col" AND dc.Creator = "Author%d"`, i)
		if _, err := svc.Subscribe("user", profile.MustParse(expr)); err != nil {
			return BuildOverheadResult{}, err
		}
	}

	var totalIndex, totalFilter time.Duration
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		set := syntheticDocs(docs, r)
		res, filterTime, err := c.Server("Host").Build(ctx, "Col", set)
		if err != nil {
			return BuildOverheadResult{}, err
		}
		totalIndex += res.IndexDuration
		totalFilter += filterTime
	}
	out := BuildOverheadResult{
		Docs:       docs,
		Profiles:   profiles,
		IndexTime:  totalIndex / time.Duration(rounds),
		FilterTime: totalFilter / time.Duration(rounds),
	}
	if out.IndexTime > 0 {
		out.OverheadPc = 100 * float64(out.FilterTime) / float64(out.IndexTime)
	}
	return out, nil
}

// syntheticDocs builds a deterministic document set. Rebuilds are
// incremental, as real collection maintenance is: only one in twenty
// documents carries round-dependent content, so each rebuild diff touches
// ~5% of the collection.
func syntheticDocs(n, round int) []*collection.Document {
	docs := make([]*collection.Document, 0, n)
	for i := 0; i < n; i++ {
		revision := 0
		if i%20 == 0 {
			revision = round
		}
		docs = append(docs, &collection.Document{
			ID: fmt.Sprintf("doc%05d", i),
			Metadata: map[string][]string{
				"dc.Title":   {fmt.Sprintf("Title %d on subject-%d", i, i%17)},
				"dc.Creator": {fmt.Sprintf("Author%d", i%1000)},
				"year":       {fmt.Sprintf("%d", 1980+(i%40))},
			},
			Content: fmt.Sprintf("revision %d body text %d mentioning subject-%d and theme-%d with shared words",
				revision, i, i%17, i%5),
			MIME: "text/plain",
		})
	}
	return docs
}

// BuildOverheadTable runs E1 over a docs × profiles grid.
func BuildOverheadTable(docCounts, profileCounts []int, rounds int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable("E1 — collection build overhead of alerting (avg over rebuilds)",
		"docs", "profiles", "index", "filter", "overhead %")
	for _, d := range docCounts {
		for _, p := range profileCounts {
			r, err := RunBuildOverhead(d, p, rounds, seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(r.Docs, r.Profiles, r.IndexTime, r.FilterTime, r.OverheadPc)
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E2 — GDS broadcast scalability (§8 future work, measured here).

// GDSScaleResult is one E2 row.
type GDSScaleResult struct {
	Servers    int
	GDSNodes   int
	Branching  int
	Messages   int64
	MaxHops    int
	MaxLatency time.Duration
	Delivered  int
}

// RunGDSScale builds a cluster of the given size, publishes one event from
// one server and measures flood cost and reach.
func RunGDSScale(servers, branching int, seed int64) (GDSScaleResult, error) {
	gdsNodes := maxInt(1, servers/8)
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: gdsNodes, GDSBranching: branching})
	if err != nil {
		return GDSScaleResult{}, err
	}
	defer c.Close()
	ctx := context.Background()

	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("Srv%04d", i)
		if _, err := c.AddServer(name, i%gdsNodes); err != nil {
			return GDSScaleResult{}, err
		}
		names = append(names, name)
	}
	// Each server gets a subscriber to the broadcast collection so delivery
	// is observable end to end.
	for _, n := range names {
		c.Notifier(n, "u")
		if _, err := c.Service(n).Subscribe("u", profile.MustParse(`collection = "Srv0000.X"`)); err != nil {
			return GDSScaleResult{}, err
		}
	}
	if _, err := c.Server("Srv0000").AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return GDSScaleResult{}, err
	}

	c.TR.ResetStats()
	if _, _, err := c.Server("Srv0000").Build(ctx, "X", syntheticDocs(3, 0)); err != nil {
		return GDSScaleResult{}, err
	}
	c.Settle(ctx)

	st := c.TR.Stats()
	out := GDSScaleResult{
		Servers:   servers,
		GDSNodes:  gdsNodes,
		Branching: branching,
		Messages:  st.Sent,
	}
	for _, n := range names {
		for _, notif := range c.Notifications(n, "u") {
			out.Delivered++
			_ = notif
		}
	}
	// Hop/latency shape from the per-delivery envelope metadata is not
	// retained by the service; derive the worst case from tree depth.
	depth := 0
	for i := gdsNodes - 1; i > 0; i = (i - 1) / branching {
		depth++
	}
	out.MaxHops = 2 * depth // up to the root and down the far side
	out.MaxLatency = time.Duration(out.MaxHops+2) * time.Millisecond
	return out, nil
}

// GDSScaleTable runs E2 over server counts and branching factors.
func GDSScaleTable(serverCounts, branchings []int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable("E2 — GDS broadcast scalability (one event flooded to all servers)",
		"servers", "gds nodes", "branching", "messages", "delivered", "max hops", "max latency")
	for _, s := range serverCounts {
		for _, b := range branchings {
			r, err := RunGDSScale(s, b, seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(r.Servers, r.GDSNodes, r.Branching, r.Messages, r.Delivered, r.MaxHops, r.MaxLatency)
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E3 — routing comparison on fragmented networks.

// RoutingComparisonResult is one router's aggregate over a scenario.
type RoutingComparisonResult struct {
	Router        string
	Fragmentation float64
	Score         baseline.Score
	Messages      int
}

// RunRoutingComparison plays the same fragmented-network scenario through
// the hybrid router and the three related-work baselines:
//
//	phase 1: everyone subscribes; every collection publishes.
//	phase 2: some links are cut; a third of the subscriptions cancel
//	         during the outage; links heal; every collection publishes
//	         again (dangling cancellations now bite).
func RunRoutingComparison(servers int, fragmentation float64, seed int64) ([]RoutingComparisonResult, error) {
	mkTopo := func() (*Topology, *Workload) {
		topo := GenerateTopology(TopologyConfig{
			Seed:              seed,
			Servers:           servers,
			SolitaryFraction:  fragmentation,
			ExtraLinkFraction: 0.3,
			Islands:           1 + servers/16,
		})
		w := topo.GenerateWorkload(WorkloadConfig{
			Collections:         servers / 2,
			Subscriptions:       servers * 2,
			EventsPerCollection: 1,
		})
		return topo, w
	}

	routers := []func(net *baseline.Network) baseline.Router{
		func(n *baseline.Network) baseline.Router { return baseline.NewHybrid(n) },
		func(n *baseline.Network) baseline.Router { return baseline.NewGSFlood(n) },
		func(n *baseline.Network) baseline.Router { return baseline.NewProfileFlood(n) },
		func(n *baseline.Network) baseline.Router { return baseline.NewRendezvous(n) },
	}

	var results []RoutingComparisonResult
	for _, mk := range routers {
		// Fresh identical world per router (same seed).
		topo, w := mkTopo()
		r := mk(topo.Net)
		oracle := baseline.NewOracle(topo.Net)
		var total baseline.Score

		for _, sub := range w.Subs {
			r.Subscribe(sub)
			oracle.Subscribe(sub)
		}
		evSeq := 0
		publishAll := func() {
			for _, coll := range w.Collections {
				if !topo.Net.Up(coll.Owner) {
					continue
				}
				evSeq++
				ev := baseline.Event{ID: fmt.Sprintf("e%04d", evSeq), Origin: coll.Owner, Collection: coll.Name}
				total.Add(oracle.ScoreEvent(ev, r.Publish(ev)))
			}
		}
		publishAll()

		// Phase 2: cut ~25% of linked pairs, cancel a third of subs during
		// the outage, heal, publish again.
		cuts := make([][2]string, 0, servers/4)
		for i := 0; i < servers/4; i++ {
			if a, b, ok := topo.RandomLinkedPair(); ok {
				topo.Net.CutLink(a, b)
				cuts = append(cuts, [2]string{a, b})
			}
		}
		for i, sub := range w.Subs {
			if i%3 == 0 {
				r.Unsubscribe(sub.ID)
				oracle.Unsubscribe(sub.ID)
			}
		}
		for _, cut := range cuts {
			topo.Net.HealLink(cut[0], cut[1])
		}
		publishAll()

		results = append(results, RoutingComparisonResult{
			Router:        r.Name(),
			Fragmentation: fragmentation,
			Score:         total,
			Messages:      r.Messages(),
		})
	}
	return results, nil
}

// RoutingComparisonTable runs E3 over fragmentation levels.
func RoutingComparisonTable(servers int, fragmentations []float64, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E3 — routing correctness on fragmented networks (%d servers; cuts + cancellations mid-run)", servers),
		"router", "solitary frac", "expected", "delivered", "false neg %", "false pos %", "messages")
	for _, f := range fragmentations {
		results, err := RunRoutingComparison(servers, f, seed)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t.AddRow(r.Router, r.Fragmentation, r.Score.Expected, r.Score.Delivered,
				100*r.Score.FNRate(), 100*r.Score.FPRate(), r.Messages)
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E5 — auxiliary-profile chains (distributed collections of depth > 1).

// AuxChainResult is one E5 row.
type AuxChainResult struct {
	Depth         int
	Notifications int
	Transforms    int64
	ChainLen      int
	Messages      int64
}

// RunAuxChain builds a chain of super-collections S0.C0 ⊃ S1.C1 ⊃ ... ⊃
// Sd.Cd, subscribes a watcher to the top collection at a separate server,
// rebuilds the leaf, and measures the transform cascade.
func RunAuxChain(depth int, seed int64) (AuxChainResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 2, GDSBranching: 2})
	if err != nil {
		return AuxChainResult{}, err
	}
	defer c.Close()
	ctx := context.Background()

	names := make([]string, 0, depth+1)
	for i := 0; i <= depth; i++ {
		name := fmt.Sprintf("H%d", i)
		if _, err := c.AddServer(name, i%2); err != nil {
			return AuxChainResult{}, err
		}
		names = append(names, name)
	}
	// Collections: Hi.Ci with Hi.Ci ⊃ H(i+1).C(i+1).
	for i := 0; i <= depth; i++ {
		cfg := collection.Config{Name: fmt.Sprintf("C%d", i), Public: true}
		if i < depth {
			cfg.Subs = []collection.SubRef{{Host: names[i+1], Name: fmt.Sprintf("C%d", i+1)}}
		}
		if _, err := c.Server(names[i]).AddCollection(ctx, cfg); err != nil {
			return AuxChainResult{}, err
		}
	}
	if _, err := c.AddServer("Watcher", 0); err != nil {
		return AuxChainResult{}, err
	}
	sink := c.Notifier("Watcher", "w")
	if _, err := c.Service("Watcher").Subscribe("w", profile.MustParse(`collection = "H0.C0"`)); err != nil {
		return AuxChainResult{}, err
	}

	c.TR.ResetStats()
	leaf := names[depth]
	if _, _, err := c.Server(leaf).Build(ctx, fmt.Sprintf("C%d", depth), syntheticDocs(2, 0)); err != nil {
		return AuxChainResult{}, err
	}
	c.Settle(ctx)

	out := AuxChainResult{Depth: depth, Notifications: sink.Len(), Messages: c.TR.Stats().Sent}
	for _, n := range sink.All() {
		if l := len(n.Event.Chain); l > out.ChainLen {
			out.ChainLen = l
		}
	}
	var transforms int64
	for _, name := range names {
		transforms += c.Service(name).Stats().Transforms
	}
	out.Transforms = transforms
	return out, nil
}

// AuxChainTable runs E5 over chain depths.
func AuxChainTable(depths []int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable("E5 — auxiliary-profile chains (rebuild at leaf of a depth-d super/sub chain)",
		"depth", "watcher notifs", "transforms", "event chain len", "messages")
	for _, d := range depths {
		r, err := RunAuxChain(d, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.Depth, r.Notifications, r.Transforms, r.ChainLen, r.Messages)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E7 — best-effort flooding under message loss.

// LossResult is one E7 row.
type LossResult struct {
	DropRate      float64
	Servers       int
	Events        int
	Expected      int
	Delivered     int
	DeliveryRatio float64
	DedupHits     int64
}

// RunLossyBroadcast publishes events through a lossy GDS and measures the
// delivery ratio (paper §6: "messages are delivered using best effort").
func RunLossyBroadcast(servers, events int, dropRate float64, seed int64) (LossResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return LossResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("L%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return LossResult{}, err
		}
		names = append(names, name)
	}
	// Subscribe to the per-build summary event only, so expected
	// notifications are exactly one per server per build.
	for _, n := range names {
		c.Notifier(n, "u")
		if _, err := c.Service(n).Subscribe("u",
			profile.MustParse(`collection = "L000.X" AND event.type = "collection-rebuilt"`)); err != nil {
			return LossResult{}, err
		}
	}
	if _, err := c.Server("L000").AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return LossResult{}, err
	}
	// Build once reliably to initialise, then inject loss. Settle so the
	// initialisation notifications land before the counters reset.
	if _, _, err := c.Server("L000").Build(ctx, "X", syntheticDocs(1, 0)); err != nil {
		return LossResult{}, err
	}
	c.Settle(ctx)
	for _, n := range names {
		c.Notifier(n, "u").Reset()
	}
	c.TR.SetDropRate(dropRate)
	for e := 0; e < events; e++ {
		if _, _, err := c.Server("L000").Build(ctx, "X", syntheticDocs(1, e+1)); err != nil {
			return LossResult{}, err
		}
	}
	c.TR.SetDropRate(0)
	c.Settle(ctx)

	out := LossResult{DropRate: dropRate, Servers: servers, Events: events}
	out.Expected = (servers) * events // every server incl. origin notifies its subscriber
	for _, n := range names {
		out.Delivered += c.Notifier(n, "u").Len()
	}
	if out.Expected > 0 {
		out.DeliveryRatio = float64(out.Delivered) / float64(out.Expected)
	}
	for _, node := range c.Nodes {
		out.DedupHits += node.Snapshot().DedupHits
	}
	return out, nil
}

// LossTable runs E7 over drop rates, averaging several seeds per rate to
// smooth the single-run variance of probabilistic loss.
func LossTable(servers, events int, dropRates []float64, seed int64) (*metrics.Table, error) {
	const seedsPerRate = 5
	t := metrics.NewTable("E7 — best-effort GDS flooding under message loss (avg of 5 seeds)",
		"drop rate", "servers", "events", "expected notifs", "delivered", "ratio")
	for _, p := range dropRates {
		var expected, delivered int
		for s := int64(0); s < seedsPerRate; s++ {
			r, err := RunLossyBroadcast(servers, events, p, seed+s)
			if err != nil {
				return nil, err
			}
			expected += r.Expected
			delivered += r.Delivered
		}
		ratio := 0.0
		if expected > 0 {
			ratio = float64(delivered) / float64(expected)
		}
		t.AddRow(p, servers, events, expected/seedsPerRate, delivered/seedsPerRate, ratio)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E6 — partition recovery (delayed, not lost).

// PartitionRecoveryResult is one E6 measurement.
type PartitionRecoveryResult struct {
	Cycles             int
	DuringPartition    int // notifications that arrived while cut (must be 0)
	AfterHeal          int // notifications delivered after heal+flush
	QueuedPeak         int
	SpuriousAfterWheal int // false positives after cancellation under cut
}

// RunPartitionRecovery repeatedly partitions the super/sub link while the
// sub-collection rebuilds, then heals and flushes.
func RunPartitionRecovery(cycles int, seed int64) (PartitionRecoveryResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 2, GDSBranching: 2})
	if err != nil {
		return PartitionRecoveryResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	_, _ = c.AddServer("Hamilton", 0)
	_, _ = c.AddServer("London", 1)
	if _, err := c.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		return PartitionRecoveryResult{}, err
	}
	if _, err := c.Server("London").AddCollection(ctx, collection.Config{Name: "E", Public: true}); err != nil {
		return PartitionRecoveryResult{}, err
	}
	// One expected notification per build cycle: match summary events only.
	sink := c.Notifier("Hamilton", "alice")
	if _, err := c.Service("Hamilton").Subscribe("alice", profile.MustParse(
		`collection = "Hamilton.D" AND (event.type = "collection-built" OR event.type = "collection-rebuilt")`)); err != nil {
		return PartitionRecoveryResult{}, err
	}

	var out PartitionRecoveryResult
	out.Cycles = cycles
	for i := 0; i < cycles; i++ {
		c.PartitionServers("Hamilton", "London")
		if _, _, err := c.Server("London").Build(ctx, "E", syntheticDocs(2, i)); err != nil {
			return out, err
		}
		c.Settle(ctx)
		out.DuringPartition += sink.Len()
		if q := c.Service("London").Retry().Len(); q > out.QueuedPeak {
			out.QueuedPeak = q
		}
		c.HealServers("Hamilton", "London")
		c.FlushRetries(ctx)
		c.Settle(ctx)
		out.AfterHeal += sink.Len()
		sink.Reset()
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E8 — continuous search equivalence.

// ContinuousSearchResult summarises E8.
type ContinuousSearchResult struct {
	Docs          int
	SearchHits    int
	AlertedDocs   int
	Agreement     bool
	WatchAlerts   int
	WatchExpected int
}

// RunContinuousSearch verifies that a search query converted into a profile
// alerts exactly the documents the same query retrieves interactively.
func RunContinuousSearch(docs int, seed int64) (ContinuousSearchResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		return ContinuousSearchResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	_, _ = c.AddServer("Host", 0)
	if _, err := c.Server("Host").AddCollection(ctx, collection.Config{Name: "Col", Public: true}); err != nil {
		return ContinuousSearchResult{}, err
	}
	const query = "subject-3 AND theme-1"
	coll := event.QName{Host: "Host", Collection: "Col"}

	sink := c.Notifier("Host", "searcher")
	if _, err := c.Service("Host").SubscribeQuery("searcher", coll, "", query); err != nil {
		return ContinuousSearchResult{}, err
	}
	set := syntheticDocs(docs, 0)
	if _, _, err := c.Server("Host").Build(ctx, "Col", set); err != nil {
		return ContinuousSearchResult{}, err
	}
	c.Settle(ctx)

	// Interactive search over the now-built collection.
	recep := c.NewReceptionist("r", "Host")
	sr, err := recep.Search(ctx, "Host", "Col", query, "", 0, false)
	if err != nil {
		return ContinuousSearchResult{}, err
	}
	searchIDs := make(map[string]bool, len(sr.Hits))
	for _, h := range sr.Hits {
		searchIDs[h.DocID] = true
	}
	alerted := make(map[string]bool)
	for _, n := range sink.All() {
		for _, id := range n.DocIDs {
			alerted[id] = true
		}
	}
	agree := len(searchIDs) == len(alerted)
	for id := range searchIDs {
		if !alerted[id] {
			agree = false
		}
	}

	// Watch-this: watch 5 specific docs, rebuild with 2 of them changed.
	watchIDs := []string{"doc00001", "doc00003", "doc00005", "doc00007", "doc00009"}
	watch := c.Notifier("Host", "watcher")
	if _, err := c.Service("Host").WatchDocuments("watcher", coll, watchIDs); err != nil {
		return ContinuousSearchResult{}, err
	}
	set2 := syntheticDocs(docs, 0)
	set2[1].Content += " changed"
	set2[3].Content += " changed"
	if _, _, err := c.Server("Host").Build(ctx, "Col", set2); err != nil {
		return ContinuousSearchResult{}, err
	}
	c.Settle(ctx)
	watchedAlerted := make(map[string]bool)
	for _, n := range watch.All() {
		for _, id := range n.DocIDs {
			watchedAlerted[id] = true
		}
	}
	return ContinuousSearchResult{
		Docs:          docs,
		SearchHits:    len(searchIDs),
		AlertedDocs:   len(alerted),
		Agreement:     agree,
		WatchAlerts:   len(watchedAlerted),
		WatchExpected: 2,
	}, nil
}

// RenderAll runs the full experiment suite with moderate sizes and returns
// the rendered tables (the alert-bench command's payload).
func RenderAll(seed int64) ([]string, error) {
	var out []string

	t1, err := BuildOverheadTable([]int{100, 1000, 5000}, []int{0, 100, 1000, 10000}, 3, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t1.Render())

	t2, err := GDSScaleTable([]int{10, 50, 100, 250}, []int{2, 4, 8}, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t2.Render())

	t3, err := RoutingComparisonTable(64, []float64{0, 0.3, 0.6, 0.9}, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t3.Render())

	t5, err := AuxChainTable([]int{1, 2, 3, 4, 5}, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t5.Render())

	t7, err := LossTable(24, 10, []float64{0, 0.01, 0.05, 0.1, 0.2}, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t7.Render())

	pr, err := RunPartitionRecovery(5, seed)
	if err != nil {
		return nil, err
	}
	t6 := metrics.NewTable("E6 — partition recovery (rebuilds under a cut super/sub link)",
		"cycles", "notifs during cut", "notifs after heal", "peak queue")
	t6.AddRow(pr.Cycles, pr.DuringPartition, pr.AfterHeal, pr.QueuedPeak)
	out = append(out, t6.Render())

	cs, err := RunContinuousSearch(2000, seed)
	if err != nil {
		return nil, err
	}
	t8 := metrics.NewTable("E8 — continuous search & watch-this fidelity",
		"docs", "search hits", "alerted docs", "agreement", "watch alerts", "watch expected")
	t8.AddRow(cs.Docs, cs.SearchHits, cs.AlertedDocs, fmt.Sprintf("%v", cs.Agreement), cs.WatchAlerts, cs.WatchExpected)
	out = append(out, t8.Render())

	t12, err := ContentRoutingTable(16, 4, 5, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t12.Render())

	t13, err := CompositeAlertsTable(16, 4, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t13.Render())

	t14, err := ReplicaFailoverTable(16, 6, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, t14.Render())

	return out, nil
}
