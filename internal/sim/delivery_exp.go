package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
)

// E10 — notification delivery across a disconnect/reconnect cycle. The
// paper's §7 treats partitions for auxiliary profiles ("delayed until the
// network connection is reestablished"); the delivery pipeline extends the
// same guarantee to the notifications themselves: alerts matched while a
// client is offline park in its server-side mailbox and drain on reconnect.

// DeliveryRecoveryResult summarises one E10 run.
type DeliveryRecoveryResult struct {
	Builds int
	// LiveDelivered counts notifications pushed while the client was
	// attached (before the disconnect).
	LiveDelivered int
	// ParkedWhileOffline counts notifications held in the mailbox during
	// the disconnect (must equal the offline builds).
	ParkedWhileOffline int
	// DrainedOnReconnect counts notifications received after re-attaching
	// (must equal ParkedWhileOffline: nothing lost, nothing duplicated).
	DrainedOnReconnect int
}

// RunDeliveryRecovery subscribes a remote client through a receptionist,
// delivers one build live, disconnects the client for `builds` rebuilds and
// measures what parks and what drains after reconnect.
func RunDeliveryRecovery(builds int, seed int64) (DeliveryRecoveryResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		return DeliveryRecoveryResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.AddServer("Hamilton", 0); err != nil {
		return DeliveryRecoveryResult{}, err
	}
	if _, err := c.Server("Hamilton").AddCollection(ctx, collection.Config{Name: "D", Public: true}); err != nil {
		return DeliveryRecoveryResult{}, err
	}
	if _, err := c.Service("Hamilton").Subscribe("alice", profile.MustParse(
		`collection = "Hamilton.D" AND (event.type = "collection-built" OR event.type = "collection-rebuilt")`)); err != nil {
		return DeliveryRecoveryResult{}, err
	}

	recep := c.NewReceptionist("r", "Hamilton")
	const clientAddr = "client://alice"
	ch, closeListen, err := recep.ListenForNotifications(clientAddr)
	if err != nil {
		return DeliveryRecoveryResult{}, err
	}
	defer func() { _ = closeListen() }()
	drainChannel := func() int {
		n := 0
		for {
			select {
			case <-ch:
				n++
			default:
				return n
			}
		}
	}

	out := DeliveryRecoveryResult{Builds: builds}

	// Phase 1: attached — one build delivers live.
	if err := recep.AttachNotifications(ctx, "Hamilton", "alice", clientAddr); err != nil {
		return out, err
	}
	if _, _, err := c.Server("Hamilton").Build(ctx, "D", syntheticDocs(2, 0)); err != nil {
		return out, err
	}
	c.Settle(ctx)
	out.LiveDelivered = drainChannel()

	// Phase 2: detached — rebuilds park in the mailbox.
	if err := recep.DetachNotifications(ctx, "Hamilton", "alice"); err != nil {
		return out, err
	}
	for i := 0; i < builds; i++ {
		if _, _, err := c.Server("Hamilton").Build(ctx, "D", syntheticDocs(2, i+1)); err != nil {
			return out, err
		}
	}
	c.Settle(ctx)
	out.ParkedWhileOffline = c.Service("Hamilton").Delivery().Pending("alice")
	if got := drainChannel(); got != 0 {
		return out, fmt.Errorf("sim: E10 delivered %d notifications to a detached client", got)
	}

	// Phase 3: reconnect — the mailbox drains. The count comes from the
	// pipeline's delivered counter: each batch reaches the client address
	// through a synchronous MsgNotifyBatch round-trip, so delivered means
	// pushed to the client. (The harness's listener channel is shallower
	// than a long backlog, so it is emptied concurrently but not counted.)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ch:
			case <-stop:
				return
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()
	before := c.Service("Hamilton").Delivery().Metrics().Snapshot().Delivered
	if err := recep.AttachNotifications(ctx, "Hamilton", "alice", clientAddr); err != nil {
		return out, err
	}
	c.Settle(ctx)
	after := c.Service("Hamilton").Delivery().Metrics().Snapshot().Delivered
	out.DrainedOnReconnect = int(after - before)
	if got := c.Service("Hamilton").Delivery().Pending("alice"); got != 0 {
		return out, fmt.Errorf("sim: E10 mailbox still holds %d after reconnect", got)
	}
	return out, nil
}

// DeliveryRecoveryTable runs E10 over offline-build counts.
func DeliveryRecoveryTable(buildCounts []int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable("E10 — delivery across disconnect/reconnect (offline alerts park, then drain)",
		"offline builds", "live delivered", "parked while offline", "drained on reconnect")
	for _, b := range buildCounts {
		r, err := RunDeliveryRecovery(b, seed)
		if err != nil {
			return nil, err
		}
		if r.ParkedWhileOffline != b || r.DrainedOnReconnect != b {
			return nil, fmt.Errorf("sim: E10 builds=%d parked=%d drained=%d — delivery not partition-tolerant",
				b, r.ParkedWhileOffline, r.DrainedOnReconnect)
		}
		t.AddRow(r.Builds, r.LiveDelivered, r.ParkedWhileOffline, r.DrainedOnReconnect)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E11 — delivery throughput: synchronous fan-out vs the sharded pipeline.

// DeliveryThroughputResult is one E11 row.
type DeliveryThroughputResult struct {
	Mode          string
	Shards        int
	Notifications int
	Elapsed       time.Duration
	PerSecond     float64
	Batches       int64
}

// deliveryCost simulates one transport round-trip to a client sink: the
// dominant term is per-call (connection + envelope overhead), with a small
// per-notification serialisation cost — exactly the shape batching
// amortises.
func deliveryCost(batchLen int, perCall, perItem time.Duration) {
	busyWait(perCall + time.Duration(batchLen)*perItem)
}

// busyWait spins instead of sleeping: at microsecond scales sleep rounds up
// wildly, which would swamp the measurement.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// syntheticNotification builds one pipeline payload.
func syntheticNotification(client string, i int) delivery.Notification {
	ev := event.New(fmt.Sprintf("tp-ev-%d", i), event.TypeDocumentsChanged,
		event.QName{Host: "Host", Collection: "Col"}, i, nil, time.Unix(1117584000, 0))
	return delivery.Notification{
		Client:    client,
		ProfileID: "p-" + client,
		Event:     ev,
		At:        time.Unix(1117584000, 0),
	}
}

// RunDeliveryThroughput pushes `notifs` notifications across `clients`
// destinations. shards == 0 measures the synchronous baseline (the seed's
// design: one blocking sink call per notification on the match path);
// shards > 0 measures the pipeline at that worker count.
func RunDeliveryThroughput(notifs, clients, shards int, perCall, perItem time.Duration) (DeliveryThroughputResult, error) {
	clientName := func(i int) string { return fmt.Sprintf("c%03d", i%clients) }

	if shards == 0 {
		start := time.Now()
		for i := 0; i < notifs; i++ {
			_ = syntheticNotification(clientName(i), i)
			deliveryCost(1, perCall, perItem)
		}
		elapsed := time.Since(start)
		return DeliveryThroughputResult{
			Mode:          "sync",
			Notifications: notifs,
			Elapsed:       elapsed,
			PerSecond:     float64(notifs) / elapsed.Seconds(),
			Batches:       int64(notifs),
		}, nil
	}

	p, err := delivery.NewPipeline(delivery.Config{
		Shards:        shards,
		QueueDepth:    4096,
		BatchSize:     64,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return DeliveryThroughputResult{}, err
	}
	defer p.Close()
	for c := 0; c < clients; c++ {
		p.Attach(clientName(c), func(_ string, batch []delivery.Notification) error {
			deliveryCost(len(batch), perCall, perItem)
			return nil
		})
	}
	start := time.Now()
	for i := 0; i < notifs; i++ {
		if err := p.Enqueue(syntheticNotification(clientName(i), i)); err != nil {
			return DeliveryThroughputResult{}, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		return DeliveryThroughputResult{}, err
	}
	elapsed := time.Since(start)
	s := p.Metrics().Snapshot()
	if s.Delivered != int64(notifs) {
		return DeliveryThroughputResult{}, fmt.Errorf("sim: E11 delivered %d of %d", s.Delivered, notifs)
	}
	return DeliveryThroughputResult{
		Mode:          fmt.Sprintf("pipeline/%d", shards),
		Shards:        shards,
		Notifications: notifs,
		Elapsed:       elapsed,
		PerSecond:     float64(notifs) / elapsed.Seconds(),
		Batches:       s.Batches,
	}, nil
}

// DeliveryThroughputTable runs E11 for the sync baseline and each shard
// count, with a 50µs per-call and 1µs per-notification simulated sink cost.
func DeliveryThroughputTable(notifs, clients int, shardCounts []int) (*metrics.Table, error) {
	const (
		perCall = 50 * time.Microsecond
		perItem = time.Microsecond
	)
	t := metrics.NewTable(
		fmt.Sprintf("E11 — delivery throughput, sync fan-out vs sharded pipeline (%d notifs, %d clients, %v/call + %v/notif sink cost)",
			notifs, clients, perCall, perItem),
		"mode", "elapsed", "notifs/sec", "flushes")
	rows := append([]int{0}, shardCounts...)
	for _, shards := range rows {
		r, err := RunDeliveryThroughput(notifs, clients, shards, perCall, perItem)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.Mode, r.Elapsed, r.PerSecond, r.Batches)
	}
	return t, nil
}
