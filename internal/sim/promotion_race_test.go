package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/replica"
	"github.com/gsalert/gsalert/internal/transport"
)

// TestPromotionConcurrentWithQoSAndFlush composes the three subsystems the
// chaos soak stresses sequentially — replica promotion, QoS admission and
// delivery flushing — into one genuinely concurrent run for the race
// detector: publisher goroutines drive PublishBuild (admission-controlled)
// against the primary while a flusher goroutine drains the delivery
// pipeline, and mid-stream the primary is taken off the network and the
// standby promoted. Run under -race (the Makefile's race/chaos targets and
// the CI chaos-soak job do); the assertions are deliberately coarse —
// no errors on the surviving paths, the promotion completed, the standby
// flushes — because the interesting output is the race detector's.
func TestPromotionConcurrentWithQoSAndFlush(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory(77)
	defer tr.Close()
	inj := transport.NewFaultInjector(tr, 77)

	mkSvc := func(name, addr string) *core.Service {
		svc, err := core.New(core.Config{ServerName: name, ServerAddr: addr, Transport: inj})
		if err != nil {
			t.Fatal(err)
		}
		svc.SetQoS(qos.NewController(qos.Config{
			SubscriberRate: 500, SubscriberBurst: 50,
			CollectionRate: 2000, CollectionBurst: 200,
		}))
		return svc
	}
	primary := mkSvc("P", "gs://p")
	defer primary.Close()
	standby := mkSvc("P", "gs://pb")
	defer standby.Close()

	for i, class := range []qos.Class{qos.ClassRealtime, qos.ClassNormal, qos.ClassBulk} {
		p := profile.NewUser(fmt.Sprintf("race-p%d", i), fmt.Sprintf("u%d", i), "P",
			profile.MustParse(`collection = "P.C" AND event.type = "documents-added"`))
		p.Class = class
		if err := primary.SubscribeProfile(p); err != nil {
			t.Fatal(err)
		}
		primary.RegisterNotifier(fmt.Sprintf("u%d", i), core.NotifierFunc(func(core.Notification) {}))
	}

	prim, err := replica.NewPrimary(replica.PrimaryConfig{
		Service: primary, Transport: inj, ListenAddr: "repl://p",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	recv, err := replica.NewStandby(replica.StandbyConfig{
		Service: standby, Transport: inj,
		ListenAddr: "repl://pb", PrimaryAddr: "repl://p",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := recv.Join(ctx); err != nil {
		t.Fatal(err)
	}

	const (
		publishers   = 4
		eventsPerPub = 150
		killAfter    = 100 // total events published before the kill fires
	)
	var (
		published int64
		wg        sync.WaitGroup
		stopFlush = make(chan struct{})
		flushDone = make(chan struct{})
	)

	// The flusher: concurrent delivery drains against the publishers'
	// enqueues, on both services. It runs until the publishers finish, so
	// it lives outside the publisher wait group.
	go func() {
		defer close(flushDone)
		for {
			select {
			case <-stopFlush:
				return
			default:
				_ = primary.DrainDeliveries(ctx)
				_ = standby.DrainDeliveries(ctx)
			}
		}
	}()

	// The killer: once enough events are in flight, the primary drops off
	// the network and the standby promotes — concurrently with admission
	// and flushing.
	promoteErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for atomic.LoadInt64(&published) < killAfter {
			time.Sleep(time.Millisecond)
		}
		tr.SetNodeDown("gs://p", true)
		promoteErr <- recv.Promote(ctx, 0)
	}()

	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < eventsPerPub; i++ {
				ev := event.New(fmt.Sprintf("race-ev-%d-%d", g, i), event.TypeDocumentsAdded,
					event.QName{Host: "P", Collection: "C"}, 1, nil, eventTimeRace())
				// Publish errors after the kill are expected (the stream
				// send path fails); data races are what the test is for.
				_, _ = primary.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}})
				atomic.AddInt64(&published, 1)
			}
		}(g)
	}

	wg.Wait()
	close(stopFlush)
	<-flushDone
	if err := <-promoteErr; err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !recv.Promoted() {
		t.Fatalf("standby did not promote")
	}
	if err := standby.DrainDeliveries(ctx); err != nil {
		t.Fatalf("standby drain after promotion: %v", err)
	}
	if got := atomic.LoadInt64(&published); got != publishers*eventsPerPub {
		t.Fatalf("published %d of %d", got, publishers*eventsPerPub)
	}
}

func eventTimeRace() time.Time { return time.Unix(1_120_000_000, 0) }
