package sim

import (
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/trace"
)

// TestSoakTraceTreeConnected runs the E16 soak fully sampled on the
// 16-server tree — the default schedule flips broadcast → multicast →
// content mid-run and kills/promotes the replicated primary — and requires
// every assembled trace to be one connected span tree: a publish root is
// present and every span's parent resolves within its trace. An orphan
// would mean a stage re-parented onto a context that was never recorded
// (a broken propagation hand-off at a routing hop, a coalesce, a flush
// batch or a replicated apply).
func TestSoakTraceTreeConnected(t *testing.T) {
	cfg := DefaultChaosSoakConfig(7)
	cfg.Load.Profiles = 2_000 // tracing coverage, not scale, is under test
	cfg.TraceSample = 1
	out, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(out.traces) == 0 {
		t.Fatal("fully sampled soak produced no traces")
	}
	if out.traceDropped > 0 {
		// Connectivity can only be asserted while the ring kept everything.
		t.Fatalf("trace ring dropped %d of %d spans; grow the soak collector", out.traceDropped, out.traceSpans)
	}
	orphans, incomplete := 0, 0
	for _, tr := range out.traces {
		if !tr.Complete {
			incomplete++
			continue
		}
		byID := make(map[string]bool, len(tr.Spans))
		for _, s := range tr.Spans {
			byID[s.SpanID] = true
		}
		for _, s := range tr.Spans {
			if s.ParentID != "" && !byID[s.ParentID] {
				orphans++
				t.Logf("orphan span %s (%s at %s): parent %s not in trace %s",
					s.SpanID, s.Name, s.Service, s.ParentID, tr.TraceID)
			}
		}
	}
	if incomplete > 0 {
		t.Errorf("%d of %d traces have no publish root", incomplete, len(out.traces))
	}
	if orphans > 0 {
		t.Errorf("%d orphan spans across %d traces", orphans, len(out.traces))
	}
}

// TestSoakTraceAttribution checks the E16 acceptance bar on the latency
// attribution table built from the same fully sampled soak: every QoS
// class has traced notify chains, the union of attributed stages covers
// the full pipeline (publish, route-hop, match, composite, qos,
// queue-wait, flush, notify), and each class's per-stage sums reconstruct
// its measured end-to-end latency within 10%.
func TestSoakTraceAttribution(t *testing.T) {
	cfg := DefaultChaosSoakConfig(42)
	cfg.Load.Profiles = 2_000
	cfg.TraceSample = 1
	out, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(out.attribution) == 0 {
		t.Fatal("fully sampled soak produced no attribution rows")
	}
	seenClass := make(map[string]bool)
	seenStage := make(map[string]bool)
	for _, a := range out.attribution {
		seenClass[a.Class] = true
		if a.Samples == 0 {
			t.Errorf("class %s: attribution row with no samples", a.Class)
		}
		if a.E2EP99 <= 0 {
			t.Errorf("class %s: e2e p99 = %v, want > 0", a.Class, a.E2EP99)
		}
		for stage := range a.Stage {
			seenStage[stage] = true
		}
		if e := a.SumError(); e > 0.10 {
			t.Errorf("class %s: stage sums %v vs e2e %v — off by %.1f%% (bar: 10%%)",
				a.Class, a.StageSum, a.TotalE2E, e*100)
		}
	}
	for _, class := range []string{"realtime", "normal", "bulk"} {
		if !seenClass[class] {
			t.Errorf("no attribution row for class %s", class)
		}
	}
	for _, stage := range AttributionStages {
		if !seenStage[stage] {
			t.Errorf("stage %s missing from the attribution table", stage)
		}
	}
	if t.Failed() {
		t.Logf("\n%s", AttributionTable(out.attribution).Render())
	}
}

// TestAttributionReportsMath pins the aggregation arithmetic on a
// hand-built sample set: totals, shares, quantiles and the sum-error.
func TestAttributionReportsMath(t *testing.T) {
	samples := []trace.PathSample{
		{Class: "realtime", E2E: 100, Stages: map[string]time.Duration{"publish": 40, "notify": 60}},
		{Class: "realtime", E2E: 300, Stages: map[string]time.Duration{"publish": 100, "notify": 200}},
		{Class: "bulk", E2E: 50, Stages: map[string]time.Duration{"publish": 30, "qos": 10}},
	}
	reports := AttributionReports(samples)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	rt := reports[0]
	if rt.Class != "realtime" || reports[1].Class != "bulk" {
		t.Fatalf("class order = %s, %s; want realtime, bulk", reports[0].Class, reports[1].Class)
	}
	if rt.Samples != 2 || rt.TotalE2E != 400 || rt.Stage["publish"] != 140 || rt.Stage["notify"] != 260 {
		t.Errorf("realtime aggregation wrong: %+v", rt)
	}
	if rt.Share["publish"] != 0.35 {
		t.Errorf("publish share = %v, want 0.35", rt.Share["publish"])
	}
	if rt.E2EP50 != 100 || rt.E2EP99 != 300 {
		t.Errorf("quantiles p50=%v p99=%v, want 100/300", rt.E2EP50, rt.E2EP99)
	}
	if rt.SumError() != 0 {
		t.Errorf("exact sums must give zero error, got %v", rt.SumError())
	}
	blk := reports[1]
	if e := blk.SumError(); e != 0.2 {
		t.Errorf("bulk sum error = %v, want 0.2 (40 attributed of 50 e2e)", e)
	}
}
