package sim

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/replica"
)

// E18 — the self-alerting health plane, dogfooded through the pipeline. A
// health engine watches one server's own metric registry while a publisher
// drives its normal-class subscriber over a burst-only quota: the deferred
// rate rises, a warning rule fires (component degraded), a critical rule
// with a `for` hold escalates (component critical), and the quiet tail
// clears both (component healthy again). Every transition is published back
// into the pipeline as a first-class health-alert event, where an operator
// subscriber on a DIFFERENT server receives it like any alert — including
// through a composite wrapper (`SEQUENCE degraded THEN critical`). The
// acceptance bar, per seed:
//
//   - the rule engine is deterministic: the transition sequence is
//     identical across broadcast, multicast and content routing (the rules
//     observe local QoS counters, which the modes must agree on);
//   - the meta-alert multiset delivered to the operator is identical
//     across the three modes — health events route like ordinary events;
//   - the composite wrapper fires in every mode: degraded-then-critical
//     sequences need no special casing;
//   - at least one full fire→clear cycle completes.
//
// A separate readiness scenario drives /readyz through a replica pair's
// lifecycle: ready while the standby is synced, NOT ready while the
// replication link is cut, ready again after the heal, and ready after a
// kill + promotion — with the promoted standby's QoS token buckets carrying
// the quota state the primary had already charged (satellite: quotas are
// not reset by failover).

// healthExpRules stages the E18 escalation: the warning fires as soon as
// the deferred rate is visible; the critical needs the rate high AND held
// for two ticks, so the component walks healthy → degraded → critical.
const healthExpRules = `
rule qos-deferred-warn {
	component = qos
	severity = warning
	expr = rate(gsalert_qos_deferred_total[30s]) > 0.01
}
rule qos-deferred-crit {
	component = qos
	severity = critical
	expr = rate(gsalert_qos_deferred_total[30s]) > 0.15
	for = 20s
}
`

// HealthModeResult is one E18 row (one routing mode).
type HealthModeResult struct {
	Mode string
	// Transitions is the engine's component transition log.
	Transitions []health.Transition
	// Published counts meta-alert events the watched server published.
	Published int64
	// Delivered is the operator subscriber's meta-alert multiset (keyed
	// like E14's delivery keys); DeliveredCount its size.
	Delivered      map[string]int
	DeliveredCount int
	// CompositeFired counts firings of the degraded-THEN-critical wrapper.
	CompositeFired int
	// Cycles counts completed fire→clear cycles.
	Cycles int
}

// transitionSig renders a transition sequence for cross-mode comparison
// (timestamps are virtual and identical by construction, so they stay in).
func transitionSig(trs []health.Transition) string {
	parts := make([]string, 0, len(trs))
	for _, tr := range trs {
		parts = append(parts, fmt.Sprintf("%s:%s>%s:%s", tr.Component, tr.From, tr.To, tr.Rule))
	}
	return strings.Join(parts, " ")
}

// RunHealthMode plays the E18 dogfood scenario through one routing mode.
func RunHealthMode(servers, rounds, eventsPerRound, burst int, mode core.RoutingMode, seed int64) (*HealthModeResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("H%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return nil, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	pub, watched, ops := names[0], names[1], names[2]
	coll := pub + ".X"
	if _, err := c.Server(pub).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return nil, err
	}

	// The watched server: a burst-only quota and a normal-class subscriber,
	// so the publish rounds exhaust the budget and defer the remainder —
	// the signal the health rules watch.
	wsvc := c.Service(watched)
	wsvc.SetQoS(qos.NewController(qos.Config{SubscriberBurst: burst, BulkDigestEvery: time.Hour}))
	c.Notifier(watched, "nm")
	nmProf := profile.NewUser("nm-prof", "nm", watched,
		profile.MustParse(fmt.Sprintf(`collection = "%s" AND event.type = "documents-added"`, coll)))
	nmProf.Class = qos.ClassNormal
	if err := wsvc.SubscribeProfile(nmProf); err != nil {
		return nil, err
	}

	// The operator on a different server: a realtime primitive profile over
	// the watched server's meta-alerts, plus the composite wrapper.
	healthColl := watched + "." + core.HealthCollection
	opsSink := c.Notifier(ops, "opsp")
	opsProf := profile.NewUser("opsp-prof", "opsp", ops,
		profile.MustParse(fmt.Sprintf(`collection = "%s" AND event.type = "health-alert"`, healthColl)))
	opsProf.Class = qos.ClassRealtime
	if err := c.Service(ops).SubscribeProfile(opsProf); err != nil {
		return nil, err
	}
	cmpSink := c.Notifier(ops, "opsc")
	if _, err := c.Service(ops).SubscribeComposite("opsc", fmt.Sprintf(
		`SEQUENCE (collection = "%s" AND health.state = "degraded") THEN (collection = "%s" AND health.state = "critical") WITHIN 24h`,
		healthColl, healthColl)); err != nil {
		return nil, err
	}

	// The health engine over the watched server's own registry, stepped on
	// a virtual clock; every transition is published back into the pipeline
	// as a meta-alert (the dogfood loop).
	hrules, err := health.ParseRules(healthExpRules)
	if err != nil {
		return nil, err
	}
	hreg := obs.NewRegistry()
	obs.RegisterService(hreg, wsvc.Stats)
	var publishErr error
	heng := health.NewEngine(hreg, hrules, health.Options{
		OnTransition: func(tr health.Transition) {
			a := core.HealthAlert{
				Component: tr.Component,
				From:      tr.From.String(),
				To:        tr.To.String(),
				Rule:      tr.Rule,
				Severity:  tr.Severity,
				Value:     tr.Value,
				At:        tr.At,
			}
			if err := wsvc.PublishHealthAlert(ctx, a); err != nil && publishErr == nil {
				publishErr = err
			}
		},
	})
	hclock := time.Unix(1_700_000_000, 0)
	tick := func() {
		hclock = hclock.Add(soakHealthTick)
		heng.TickAt(hclock)
		c.Settle(ctx)
	}

	// The overload rounds, a tick after each; then the quiet tail drains
	// the rate windows and the firing rules clear.
	docs := []*collection.Document{{ID: "base", Content: "stable document"}}
	if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
		return nil, err
	}
	c.Settle(ctx)
	for r := 1; r <= rounds; r++ {
		for i := 0; i < eventsPerRound; i++ {
			docs = append(docs, &collection.Document{
				ID:      fmt.Sprintf("extra-%d-%d", r, i),
				Content: fmt.Sprintf("document of round %d event %d", r, i),
			})
			if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
				return nil, err
			}
		}
		c.Settle(ctx)
		tick()
	}
	for i := 0; i < 6; i++ {
		tick()
	}
	if publishErr != nil {
		return nil, fmt.Errorf("sim: E18 meta-alert publish: %w", publishErr)
	}

	out := &HealthModeResult{
		Mode:        mode.String(),
		Transitions: heng.Transitions(),
		Published:   wsvc.Stats().HealthAlerts,
		Delivered:   make(map[string]int),
	}
	out.Cycles = healthCycles(out.Transitions)
	out.DeliveredCount = countKeys(out.Delivered, opsSink.All())
	for _, n := range cmpSink.All() {
		if n.Composite != "" {
			out.CompositeFired++
		}
	}
	return out, nil
}

// HealthExpResult aggregates E18 across the three routing modes.
type HealthExpResult struct {
	Servers, Rounds, Events, Burst int
	Seed                           int64
	Modes                          []*HealthModeResult
	// TransitionsIdentical / DeliveredIdentical report cross-mode equality
	// of the engine's transition sequence and the operator's meta-alert
	// multiset.
	TransitionsIdentical bool
	DeliveredIdentical   bool
}

// RunHealthExperiment plays E18 through all three routing modes and
// compares the observations.
func RunHealthExperiment(servers, rounds, eventsPerRound, burst int, seed int64) (*HealthExpResult, error) {
	res := &HealthExpResult{
		Servers: servers, Rounds: rounds, Events: rounds * eventsPerRound, Burst: burst,
		Seed:                 seed,
		TransitionsIdentical: true,
		DeliveredIdentical:   true,
	}
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunHealthMode(servers, rounds, eventsPerRound, burst, mode, seed)
		if err != nil {
			return nil, fmt.Errorf("sim: E18 %s: %w", mode, err)
		}
		res.Modes = append(res.Modes, r)
	}
	first := res.Modes[0]
	for _, r := range res.Modes[1:] {
		if transitionSig(r.Transitions) != transitionSig(first.Transitions) {
			res.TransitionsIdentical = false
		}
		if !sameMultiset(r.Delivered, first.Delivered) {
			res.DeliveredIdentical = false
		}
	}
	return res, nil
}

// Check asserts the E18 acceptance bar.
func (r *HealthExpResult) Check() error {
	if !r.TransitionsIdentical {
		return fmt.Errorf("sim: E18 transition sequences differ across modes")
	}
	if !r.DeliveredIdentical {
		return fmt.Errorf("sim: E18 delivered meta-alert multisets differ across modes")
	}
	for _, m := range r.Modes {
		switch {
		case len(m.Transitions) < 3:
			return fmt.Errorf("sim: E18 %s: %d transitions, want the degraded/critical/clear walk (>= 3)", m.Mode, len(m.Transitions))
		case m.Cycles < 1:
			return fmt.Errorf("sim: E18 %s: no fire→clear cycle completed", m.Mode)
		case m.Published != int64(len(m.Transitions)):
			return fmt.Errorf("sim: E18 %s: %d transitions but %d meta-alerts published", m.Mode, len(m.Transitions), m.Published)
		case m.DeliveredCount != len(m.Transitions):
			return fmt.Errorf("sim: E18 %s: operator received %d meta-alerts of %d published", m.Mode, m.DeliveredCount, m.Published)
		case m.CompositeFired < 1:
			return fmt.Errorf("sim: E18 %s: the degraded-THEN-critical composite never fired", m.Mode)
		}
		// The walk must reach critical and return to healthy.
		sawCritical, endedHealthy := false, false
		for _, tr := range m.Transitions {
			if tr.To == health.Critical {
				sawCritical = true
			}
			endedHealthy = tr.To == health.Healthy
		}
		if !sawCritical || !endedHealthy {
			return fmt.Errorf("sim: E18 %s: walk %q never escalated to critical or never cleared", m.Mode, transitionSig(m.Transitions))
		}
	}
	return nil
}

// HealthTable runs E18 and renders one row per mode.
func HealthTable(servers, rounds, eventsPerRound, burst int, seed int64) (*metrics.Table, error) {
	r, err := RunHealthExperiment(servers, rounds, eventsPerRound, burst, seed)
	if err != nil {
		return nil, err
	}
	if err := r.Check(); err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("E18 — self-alerting health plane (%d servers, %d events vs budget %d, seed %d)",
			r.Servers, r.Events, r.Burst, r.Seed),
		"mode", "transitions", "cycles", "published", "delivered", "composite fired", "identical")
	for _, m := range r.Modes {
		t.AddRow(m.Mode, len(m.Transitions), m.Cycles, m.Published, m.DeliveredCount, m.CompositeFired,
			fmt.Sprintf("%v/%v", r.TransitionsIdentical, r.DeliveredIdentical))
	}
	return t, nil
}

// HealthReadinessResult is the E18 readiness sub-scenario's observation
// log: /readyz probed at each lifecycle stage of a replica pair.
type HealthReadinessResult struct {
	// Stages maps stage name → the HTTP status /readyz returned.
	Stages []ReadinessStage
	// DeferredAfterPromotion is the promoted standby's deferred count after
	// post-promotion publishes — evidence the replicated QoS buckets (not
	// fresh ones) admitted the traffic.
	DeferredAfterPromotion int64
	AdmittedAfterPromotion int64
}

// ReadinessStage is one probed lifecycle point.
type ReadinessStage struct {
	Stage string
	Code  int
}

// RunHealthReadiness drives /readyz through a replica pair's lifecycle:
// synced (ready) → replication link cut (not ready) → healed (ready) →
// promoted (ready), asserting along the way that the standby's replicated
// QoS buckets carry the primary's charged quota across the promotion.
func RunHealthReadiness(seed int64) (*HealthReadinessResult, error) {
	const servers = 4
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: 1, GDSBranching: 3})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("W%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	primaryName, pub := names[0], names[1]
	coll := pub + ".X"
	if _, err := c.Server(pub).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return nil, err
	}
	const burst = 4
	newQoS := func() *qos.Controller {
		return qos.NewController(qos.Config{SubscriberBurst: burst, BulkDigestEvery: time.Hour})
	}
	primary := c.Service(primaryName)
	primary.SetQoS(newQoS())
	c.Notifier(primaryName, "nm")
	nmProf := profile.NewUser("nm-prof", "nm", primaryName,
		profile.MustParse(fmt.Sprintf(`collection = "%s" AND event.type = "documents-added"`, coll)))
	nmProf.Class = qos.ClassNormal
	if err := primary.SubscribeProfile(nmProf); err != nil {
		return nil, err
	}

	// The standby, joined over the cluster transport (E14's assembly).
	standbyAddr := ServerAddr(primaryName + "b")
	sbCli := gds.NewClient(primaryName, standbyAddr, c.NodeAddr(0), c.TR)
	sbStore := collection.NewStore(primaryName)
	standby, err := core.New(core.Config{
		ServerName:    primaryName,
		ServerAddr:    standbyAddr,
		Transport:     c.TR,
		GDS:           sbCli,
		Store:         sbStore,
		ContentWarmup: -1,
	})
	if err != nil {
		return nil, err
	}
	defer standby.Close()
	standby.SetQoS(newQoS())
	sbSrv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name: primaryName, Addr: standbyAddr, Transport: c.TR, Store: sbStore, Alerting: standby,
	})
	if err != nil {
		return nil, err
	}
	defer sbSrv.Close()
	prim, err := replica.NewPrimary(replica.PrimaryConfig{
		Service: primary, Transport: c.TR, ListenAddr: "repl://" + primaryName,
	})
	if err != nil {
		return nil, err
	}
	defer prim.Close()
	recv, err := replica.NewStandby(replica.StandbyConfig{
		Service:     standby,
		Transport:   c.TR,
		ListenAddr:  "repl://" + primaryName + "b",
		PrimaryAddr: "repl://" + primaryName,
		GDS:         sbCli,
	})
	if err != nil {
		return nil, err
	}
	defer recv.Close()

	// The standby-side health engine: readiness gates on the catch-up state
	// exactly as cmd/gs-server wires it.
	heng := health.NewEngine(obs.NewRegistry(), nil, health.Options{})
	heng.AddReadiness("standby-caught-up", func() error {
		if recv.Promoted() {
			return nil
		}
		if !recv.Synced() {
			return fmt.Errorf("standby has not applied a snapshot")
		}
		if err := recv.ProbeErr(); err != nil {
			return fmt.Errorf("primary unreachable: %w", err)
		}
		return nil
	})
	readyz := health.ReadyzHandler(heng)
	probe := func(stage string, out *HealthReadinessResult) {
		rec := httptest.NewRecorder()
		readyz.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		out.Stages = append(out.Stages, ReadinessStage{Stage: stage, Code: rec.Code})
	}

	out := &HealthReadinessResult{}
	probe("pre-join", out) // not yet synced → 503

	if err := recv.Join(ctx); err != nil {
		return nil, err
	}
	probe("synced", out) // snapshot applied, primary reachable → 200

	// Charge 3 of the 4 subscriber tokens, then a heartbeat ships the
	// bucket levels to the standby. The base build creates the collection
	// (no documents-added yet); each following build adds one document and
	// charges one token.
	docs := []*collection.Document{{ID: "base", Content: "stable document"}}
	if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
		return nil, err
	}
	c.Settle(ctx)
	for r := 1; r <= 3; r++ {
		docs = append(docs, &collection.Document{ID: fmt.Sprintf("extra-%d", r), Content: "doc"})
		if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
			return nil, err
		}
	}
	c.Settle(ctx)
	if err := recv.Heartbeat(ctx); err != nil {
		return nil, err
	}

	// Cut the replication link: the next heartbeat fails and /readyz flips.
	c.TR.SetNodeDown("repl://"+primaryName, true)
	_ = recv.Heartbeat(ctx)
	probe("partitioned", out) // probe error → 503

	// Heal: the heartbeat goes through again and /readyz recovers.
	c.TR.SetNodeDown("repl://"+primaryName, false)
	if err := recv.Heartbeat(ctx); err != nil {
		return nil, err
	}
	probe("healed", out) // → 200

	// Kill + promote: readiness passes on the promotion flag.
	c.TR.SetNodeDown(ServerAddr(primaryName), true)
	c.TR.SetNodeDown("repl://"+primaryName, true)
	if err := recv.Promote(ctx, 0); err != nil {
		return nil, err
	}
	probe("promoted", out) // → 200

	// The replicated buckets must carry the 3 already-charged tokens: of
	// two post-promotion events, exactly one is admitted and one deferred.
	standby.RegisterNotifier("nm", core.NewMemoryNotifier())
	for r := 4; r <= 5; r++ {
		docs = append(docs, &collection.Document{ID: fmt.Sprintf("extra-%d", r), Content: "doc"})
		if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
			return nil, err
		}
	}
	c.Settle(ctx)
	_ = standby.DrainDeliveries(ctx)
	st := standby.Stats()
	out.DeferredAfterPromotion = st.QoSDeferred
	out.AdmittedAfterPromotion = st.QoSAdmitted
	return out, nil
}

// Check asserts the readiness walk: 503 pre-join, 200 synced, 503 cut,
// 200 healed, 200 promoted — and the carried quota.
func (r *HealthReadinessResult) Check() error {
	want := map[string]int{
		"pre-join":    http.StatusServiceUnavailable,
		"synced":      http.StatusOK,
		"partitioned": http.StatusServiceUnavailable,
		"healed":      http.StatusOK,
		"promoted":    http.StatusOK,
	}
	if len(r.Stages) != len(want) {
		return fmt.Errorf("sim: E18 readiness probed %d stages, want %d", len(r.Stages), len(want))
	}
	var bad []string
	for _, s := range r.Stages {
		if s.Code != want[s.Stage] {
			bad = append(bad, fmt.Sprintf("%s=%d(want %d)", s.Stage, s.Code, want[s.Stage]))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("sim: E18 readiness walk wrong: %s", strings.Join(bad, " "))
	}
	if r.DeferredAfterPromotion != 1 {
		return fmt.Errorf("sim: E18 promoted standby deferred %d of the post-promotion events, want 1 — QoS buckets reset across failover",
			r.DeferredAfterPromotion)
	}
	return nil
}
