package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/replica"
)

// E14 — replication & zero-loss failover. A 16-server tree hosts three
// subscribers on one server (the primary): an attached client, a detached
// client whose alerts park in its durable mailbox, and a composite
// subscriber. The primary streams its state to a standby. Mid-way through a
// publisher's rebuild sequence the primary is killed and the standby
// promoted — it re-registers the inherited name with the GDS (re-issuing
// multicast joins / content-digest advertisements for the inherited
// profile population) and drains inherited mailboxes to re-attaching
// clients. The run is repeated without the failure; for the primitive
// subscribers the delivered multiset must be identical in every routing
// mode. The composite subscriber demonstrates wrapper replication: its
// accumulation keeps firing after promotion, but a window that straddles
// the failover restarts (in-flight composite state is not replicated —
// docs/REPLICATION.md).

// ReplicaFailoverResult is one E14 row (one routing mode).
type ReplicaFailoverResult struct {
	Mode    string
	Servers int
	// Rounds is the publisher's total build count; the kill happens after
	// Rounds/2 of them.
	Rounds int
	// Baseline / Failover count primitive-subscriber notifications in the
	// failure-free and failover runs.
	Baseline int
	Failover int
	// Identical reports multiset equality of the two runs' primitive
	// deliveries, per client.
	Identical bool
	// PreKill / PostPromote split the failover run's deliveries around the
	// failure; Inherited counts notifications the standby inherited parked
	// and drained to the re-attaching detached client.
	PreKill     int
	PostPromote int
	Inherited   int
	// CompositeFirings counts composite notifications in each run (equal
	// counts, different window phases).
	BaselineComposite int
	FailoverComposite int
	// Messages is the failover run's transport cost (replication included).
	Messages int64
}

// replicaRunOutcome is one scenario run's delivered sets.
type replicaRunOutcome struct {
	// perClient maps client → delivery-key multiset (primitive profiles).
	perClient map[string]map[string]int
	// composite counts composite firings and their contributing sizes.
	composite   int
	preKill     int
	postPromote int
	inherited   int
	messages    int64
}

// notifKey identifies a notification independently of run-specific event
// IDs and timestamps: same profile, event shape and matched documents.
func notifKey(n core.Notification) string {
	docs := append([]string(nil), n.DocIDs...)
	sort.Strings(docs)
	return strings.Join([]string{
		n.ProfileID,
		n.Event.Type.String(),
		n.Event.Collection.String(),
		fmt.Sprintf("v%d", n.Event.BuildVersion),
		strings.Join(docs, ","),
	}, "|")
}

func countKeys(dst map[string]int, ns []core.Notification) int {
	total := 0
	for _, n := range ns {
		if n.Composite != "" {
			continue // composite firings are tallied separately
		}
		dst[notifKey(n)]++
		total++
	}
	return total
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runReplicaScenario plays the E14 workload once. With failover set, the
// primary is killed after rounds/2 builds and its standby promoted.
func runReplicaScenario(servers, rounds int, mode core.RoutingMode, seed int64, failover bool) (*replicaRunOutcome, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("R%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return nil, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	primaryName, pub := names[0], names[1]
	coll := pub + ".X"
	if _, err := c.Server(pub).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return nil, err
	}
	primary := c.Service(primaryName)

	// "att" subscribes before the standby joins (snapshot path) and stays
	// attached; "off" and "cmp" subscribe after (stream path), "off" never
	// attaches until the end.
	attSink := c.Notifier(primaryName, "att")
	if _, err := primary.Subscribe("att", profile.MustParse(fmt.Sprintf(`collection = "%s"`, coll))); err != nil {
		return nil, err
	}

	// The standby: the primary's name, its own address, registered nowhere
	// until promotion. The first server added always lands on GDS node 0.
	var standby *core.Service
	var recv *replica.Standby
	if failover {
		standbyAddr := ServerAddr(primaryName + "b")
		sbCli := gds.NewClient(primaryName, standbyAddr, c.NodeAddr(0), c.TR)
		sbStore := collection.NewStore(primaryName)
		standby, err = core.New(core.Config{
			ServerName:    primaryName,
			ServerAddr:    standbyAddr,
			Transport:     c.TR,
			GDS:           sbCli,
			Store:         sbStore,
			ContentWarmup: -1,
		})
		if err != nil {
			return nil, err
		}
		defer standby.Close()
		sbSrv, err := greenstone.NewServer(greenstone.ServerConfig{
			Name:      primaryName,
			Addr:      standbyAddr,
			Transport: c.TR,
			Store:     sbStore,
			Alerting:  standby,
		})
		if err != nil {
			return nil, err
		}
		defer sbSrv.Close()
		prim, err := replica.NewPrimary(replica.PrimaryConfig{
			Service:    primary,
			Transport:  c.TR,
			ListenAddr: "repl://" + primaryName,
		})
		if err != nil {
			return nil, err
		}
		defer prim.Close()
		recv, err = replica.NewStandby(replica.StandbyConfig{
			Service:     standby,
			Transport:   c.TR,
			ListenAddr:  "repl://" + primaryName + "b",
			PrimaryAddr: "repl://" + primaryName,
			GDS:         sbCli,
		})
		if err != nil {
			return nil, err
		}
		defer recv.Close()
		if err := recv.Join(ctx); err != nil {
			return nil, err
		}
	}

	if _, err := primary.Subscribe("off", profile.MustParse(fmt.Sprintf(
		`collection = "%s" AND event.type = "documents-added"`, coll))); err != nil {
		return nil, err
	}
	cmpSink := c.Notifier(primaryName, "cmp")
	if _, err := primary.SubscribeComposite("cmp", fmt.Sprintf(
		`COUNT 3 OF (collection = "%s" AND event.type = "collection-rebuilt")`, coll)); err != nil {
		return nil, err
	}

	out := &replicaRunOutcome{perClient: map[string]map[string]int{
		"att": make(map[string]int),
		"off": make(map[string]int),
	}}
	docs := []*collection.Document{{ID: "base", Content: "stable document"}}
	build := func(round int) error {
		docs = append(docs, &collection.Document{
			ID:      fmt.Sprintf("extra-%d", round),
			Content: fmt.Sprintf("document of round %d", round),
		})
		_, _, err := c.Server(pub).Build(ctx, "X", docs)
		return err
	}

	c.TR.ResetStats()
	kill := rounds / 2
	for r := 1; r <= kill; r++ {
		if err := build(r); err != nil {
			return nil, err
		}
	}
	// Quiesce the pipelines so every pre-kill notification is either
	// delivered (and its ack replicated) or parked (and inherited).
	c.Settle(ctx)

	serving := primary
	servingSinkAtt := attSink
	servingSinkCmp := cmpSink
	if failover {
		out.preKill = countKeys(out.perClient["att"], attSink.All())
		for _, n := range cmpSink.All() {
			if n.Composite != "" {
				out.composite++
			}
		}
		// Kill: the primary's address vanishes from the network. (Only the
		// inbound address goes down — the logical server name lives on in
		// the standby, which inherits it at promotion.)
		c.TR.SetNodeDown(ServerAddr(primaryName), true)
		if err := recv.Promote(ctx, 0); err != nil {
			return nil, err
		}
		serving = standby
		// What the standby inherited parked: the detached client's alerts,
		// undelivered at the moment of death.
		out.inherited = serving.Delivery().Pending("off")
		// Clients re-attach to the promoted standby with fresh sinks.
		servingSinkAtt = core.NewMemoryNotifier()
		serving.RegisterNotifier("att", servingSinkAtt)
		servingSinkCmp = core.NewMemoryNotifier()
		serving.RegisterNotifier("cmp", servingSinkCmp)
	}

	for r := kill + 1; r <= rounds; r++ {
		if err := build(r); err != nil {
			return nil, err
		}
	}
	c.Settle(ctx)
	if failover {
		if err := serving.DrainDeliveries(ctx); err != nil {
			return nil, err
		}
	}

	// The detached client finally attaches at the serving server: its
	// parked mailbox — inherited across the failover — drains now.
	offSink := core.NewMemoryNotifier()
	serving.RegisterNotifier("off", offSink)
	if err := serving.DrainDeliveries(ctx); err != nil {
		return nil, err
	}

	post := countKeys(out.perClient["att"], servingSinkAtt.All())
	if failover {
		out.postPromote = post
	}
	countKeys(out.perClient["off"], offSink.All())
	for _, n := range servingSinkCmp.All() {
		if n.Composite != "" {
			out.composite++
		}
	}
	out.messages = c.TR.Stats().Sent
	return out, nil
}

// RunReplicaFailover plays the E14 scenario with and without the failure
// and compares the primitive subscribers' delivered multisets.
func RunReplicaFailover(servers, rounds int, mode core.RoutingMode, seed int64) (ReplicaFailoverResult, error) {
	baseline, err := runReplicaScenario(servers, rounds, mode, seed, false)
	if err != nil {
		return ReplicaFailoverResult{}, err
	}
	failover, err := runReplicaScenario(servers, rounds, mode, seed, true)
	if err != nil {
		return ReplicaFailoverResult{}, err
	}
	res := ReplicaFailoverResult{
		Mode:              mode.String(),
		Servers:           servers,
		Rounds:            rounds,
		Identical:         true,
		PreKill:           failover.preKill,
		PostPromote:       failover.postPromote,
		Inherited:         failover.inherited,
		BaselineComposite: baseline.composite,
		FailoverComposite: failover.composite,
		Messages:          failover.messages,
	}
	for client, keys := range baseline.perClient {
		for _, n := range keys {
			res.Baseline += n
		}
		if !sameMultiset(keys, failover.perClient[client]) {
			res.Identical = false
		}
	}
	for _, keys := range failover.perClient {
		for _, n := range keys {
			res.Failover += n
		}
	}
	return res, nil
}

// ReplicaFailoverTable runs E14 over all three routing modes, asserting the
// zero-loss property in each.
func ReplicaFailoverTable(servers, rounds int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E14 — primary kill + standby promotion (%d servers, kill after %d of %d rounds)", servers, rounds/2, rounds),
		"mode", "baseline notifs", "failover notifs", "identical", "pre-kill", "post-promote", "inherited parked", "composite b/f", "messages")
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunReplicaFailover(servers, rounds, mode, seed)
		if err != nil {
			return nil, err
		}
		if !r.Identical || r.Baseline != r.Failover {
			return nil, fmt.Errorf("sim: E14 %s delivered %d notifications vs %d in the failure-free run — promotion lost or duplicated alerts",
				r.Mode, r.Failover, r.Baseline)
		}
		if r.BaselineComposite != r.FailoverComposite {
			return nil, fmt.Errorf("sim: E14 %s composite firings %d vs %d — wrapper replication broken",
				r.Mode, r.FailoverComposite, r.BaselineComposite)
		}
		t.AddRow(r.Mode, r.Baseline, r.Failover, fmt.Sprintf("%v", r.Identical),
			r.PreKill, r.PostPromote, r.Inherited,
			fmt.Sprintf("%d/%d", r.BaselineComposite, r.FailoverComposite), r.Messages)
	}
	return t, nil
}
