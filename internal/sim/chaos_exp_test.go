package sim

import (
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/chaos"
	"github.com/gsalert/gsalert/internal/qos"
)

// soakConfigForTest scales the acceptance-bar config down under -short
// (20k live profiles instead of 100k) so the suite stays fast in CI; the
// full bar runs in the long mode and in E16 itself.
func soakConfigForTest(t *testing.T, seed int64) ChaosSoakConfig {
	cfg := DefaultChaosSoakConfig(seed)
	if testing.Short() {
		cfg.Load.Profiles = 20_000
	}
	return cfg
}

// TestChaosSoakAcceptance is the E16 acceptance bar: for three seeds, a
// schedule containing a primary kill, a subtree partition, a degraded
// standby and mode flips runs against a 100k-profile population, and every
// PR 4/5 invariant must survive — realtime loss-free and multiset-identical
// to the failure-free baseline, normal deferred-not-lost across the
// promotion, bulk coalesced exactly once, zero pipeline drops, per-class
// p99 inside SLO.
func TestChaosSoakAcceptance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := soakConfigForTest(t, seed)
		r, err := RunChaosSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Check(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, ChaosSoakTable(r).Render())
			continue
		}
		if r.LiveProfiles != cfg.Load.Profiles {
			t.Errorf("seed %d: %d live profiles, want %d", seed, r.LiveProfiles, cfg.Load.Profiles)
		}
		counts := r.FaultCounts
		if counts[chaos.KindKillPrimary] < 1 || counts[chaos.KindPartition] < 1 || counts[chaos.KindFlipMode] < 1 {
			t.Errorf("seed %d: schedule composition %v below the bar", seed, counts)
		}
	}
}

// TestChaosSoakDeterministic replays one seed and requires identical
// observations: the soak is a reproducible experiment, not a flaky stress
// test.
func TestChaosSoakDeterministic(t *testing.T) {
	cfg := soakConfigForTest(t, 7)
	cfg.Load.Profiles = 5_000 // determinism needs two full runs; keep them cheap
	a, err := RunChaosSoak(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunChaosSoak(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	// The tuple covers the delivered/invariant observations. Transport
	// message totals are deliberately excluded: replication-stream traffic
	// rides the delivery pipeline's flush batching, which shifts a handful
	// of messages with goroutine scheduling (visible under -race) without
	// changing anything delivered.
	type obs struct {
		rt, fo, nmP, nmT, det, inh, blkP, dig, digEv int
	}
	o := func(r *ChaosSoakResult) obs {
		return obs{r.RealtimeDelivered, r.FailoverDelivered, r.NormalPrompt, r.NormalTotal,
			r.DetachedTotal, r.Inherited, r.BulkPrompt, r.Digests, r.DigestEvents}
	}
	if o(a) != o(b) {
		t.Fatalf("same seed, different observations:\n%+v\nvs\n%+v", o(a), o(b))
	}
	// The fault accounting must agree on the schedule having bitten in both
	// runs, even if the exact message counts wobble with batching.
	if (a.Blocked == 0) != (b.Blocked == 0) || (a.InjectedDrops == 0) != (b.InjectedDrops == 0) {
		t.Fatalf("fault accounting diverged: blocked %d vs %d, injected %d vs %d",
			a.Blocked, b.Blocked, a.InjectedDrops, b.InjectedDrops)
	}
}

// TestChaosSoakGeneratedSchedule runs the soak under a randomly generated
// (but valid) schedule: the engine's generator composes with the harness,
// not just the hand-written default.
func TestChaosSoakGeneratedSchedule(t *testing.T) {
	cfg := soakConfigForTest(t, 3)
	cfg.Load.Profiles = 5_000
	gen, err := chaos.Generate(chaos.GenConfig{
		Seed: 3, Rounds: cfg.Rounds, Primary: SoakReplServer,
		LinkA: "gds0", LinkB: "gds2", InjectTypePrefix: "gs.",
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg.Schedule = gen
	r, err := RunChaosSoak(cfg)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("%v\n%s\nschedule:\n%s", err, ChaosSoakTable(r).Render(), gen.String())
	}
}

func TestLoadGenDeterministicPopulation(t *testing.T) {
	build := func() ([]int, []qos.Class) {
		lg, err := NewLoadGen(LoadConfig{Seed: 11, Profiles: 500, Topics: 50, Collection: "C000.X"})
		if err != nil {
			t.Fatalf("loadgen: %v", err)
		}
		topics := make([]int, 200)
		classes := make([]qos.Class, 200)
		for i := range topics {
			topics[i] = lg.Topic()
			classes[i] = lg.classFor(i)
		}
		return topics, classes
	}
	t1, c1 := build()
	t2, c2 := build()
	for i := range t1 {
		if t1[i] != t2[i] || c1[i] != c2[i] {
			t.Fatalf("draw %d differs across same-seed generators", i)
		}
	}
}

func TestLoadGenZipfSkew(t *testing.T) {
	lg, err := NewLoadGen(LoadConfig{Seed: 5, Profiles: 1, Topics: 100, Collection: "C000.X"})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	counts := make(map[int]int)
	for i := 0; i < 10_000; i++ {
		counts[lg.Topic()]++
	}
	// Zipf: the head topic dominates; the tail is long but thin.
	if counts[0] < counts[50]*5 {
		t.Fatalf("no zipf skew: topic 0 drew %d, topic 50 drew %d", counts[0], counts[50])
	}
	if counts[0] > 9_000 {
		t.Fatalf("degenerate skew: topic 0 drew %d of 10000", counts[0])
	}
}

func TestLoadGenClassMixExact(t *testing.T) {
	lg, err := NewLoadGen(LoadConfig{
		Seed: 1, Profiles: 1, Topics: 10, Collection: "C000.X",
		Mix: LoadMix{Realtime: 1, Normal: 2, Bulk: 1},
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	var got [qos.NumClasses]int
	for i := 0; i < 4000; i++ {
		got[lg.classFor(i)]++
	}
	if got[qos.ClassRealtime] != 1000 || got[qos.ClassNormal] != 2000 || got[qos.ClassBulk] != 1000 {
		t.Fatalf("class mix %v, want exact 1000/2000/1000", got)
	}
}

func TestLoadGenRejectsBadCollection(t *testing.T) {
	for _, coll := range []string{"", "noqname", ".x", "h."} {
		if _, err := NewLoadGen(LoadConfig{Seed: 1, Collection: coll}); err == nil {
			t.Errorf("NewLoadGen accepted collection %q", coll)
		}
	}
}

func TestClassSLOReportsVacuous(t *testing.T) {
	// The merge itself is exercised through the soak tests; the vacuous
	// cases — no pipelines, no samples — must report OK with zero
	// quantiles rather than failing an SLO nothing was measured against.
	reports := ClassSLOReports(nil, map[qos.Class]time.Duration{qos.ClassRealtime: time.Second})
	if len(reports) != qos.NumClasses {
		t.Fatalf("got %d reports, want %d", len(reports), qos.NumClasses)
	}
	for _, r := range reports {
		if !r.OK || r.P99 != 0 || r.Delivered != 0 {
			t.Fatalf("vacuous report not OK/zero: %+v", r)
		}
	}
}
