package sim

import (
	"testing"

	"github.com/gsalert/gsalert/internal/logging"
)

// TestChaosSoakFlightRecorder is the E19 acceptance bar: for three seeds,
// the E16 chaos soak runs with the flight recorder armed and the
// kill-primary fault must yield exactly one critical transition whose
// auto-captured bundle (a) spans at least three components' rings, (b)
// joins with the span collector — every traced record's ID resolves to an
// assembled trace — and (c) is byte-identical when the seed is replayed.
func TestChaosSoakFlightRecorder(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := soakConfigForTest(t, seed)
		cfg.Load.Profiles = 5_000 // two full chaos runs per seed; keep them cheap
		r, err := RunFlightSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Check(); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, FlightSoakTable(r).Render())
			continue
		}
		// The black box must carry the health timeline that triggered the
		// capture and the promotion it recorded, not just data-plane noise.
		have := make(map[string]bool, len(r.DumpComponents))
		for _, c := range r.DumpComponents {
			have[c] = true
		}
		for _, want := range []string{"health", "replica"} {
			if !have[want] {
				t.Errorf("seed %d: bundle components %v lack %q", seed, r.DumpComponents, want)
			}
		}
	}
}

// TestFlightSoakBundleRoundTrip re-parses the soak's serialized bundle
// shape: a capture produced by the full deployment must survive
// ParseJSONL with its record count, components and trace index intact
// (the gs-client logs path).
func TestFlightSoakBundleRoundTrip(t *testing.T) {
	cfg := soakConfigForTest(t, 7)
	cfg.Load.Profiles = 2_000
	cfg.Health = true
	cfg.FlightRecorder = true
	cfg.TraceSample = 1
	out, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(out.bundles) != 1 {
		t.Fatalf("captured %d bundles, want 1", len(out.bundles))
	}
	d, err := logging.ParseJSONL(out.bundles[0])
	if err != nil {
		t.Fatalf("parse bundle: %v", err)
	}
	orig := out.dumps[0]
	if len(d.Records) != len(orig.Records) {
		t.Fatalf("round-trip records = %d, want %d", len(d.Records), len(orig.Records))
	}
	if got, want := d.Components(), orig.Components(); len(got) != len(want) {
		t.Fatalf("round-trip components = %v, want %v", got, want)
	}
	if len(d.TraceIDs) != len(orig.TraceIDs) {
		t.Fatalf("round-trip trace index = %d, want %d", len(d.TraceIDs), len(orig.TraceIDs))
	}
	if d.Reason != "critical:replica" {
		t.Fatalf("round-trip reason = %q", d.Reason)
	}
}
