// Package sim provides the simulation substrate for the experiment suite:
// cluster assembly (GDS tree + Greenstone servers + alerting services over
// the deterministic memory transport), topology and workload generators, a
// ground-truth oracle, and the scenario runners behind every table in
// docs/EXPERIMENTS.md.
package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/filter"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/transport"
)

// ClusterConfig shapes a simulated deployment.
type ClusterConfig struct {
	// Seed drives every random choice (reproducibility).
	Seed int64
	// GDSNodes is the number of directory nodes (>= 1).
	GDSNodes int
	// GDSBranching is the tree fan-out (>= 1).
	GDSBranching int
	// LinkLatency is the virtual per-hop latency (default 1ms).
	LinkLatency time.Duration
}

// Cluster is an assembled simulated deployment.
type Cluster struct {
	TR *transport.Memory
	// Inject wraps TR with a chaos rule set; every component the cluster
	// assembles sends through it (Net), so a fault schedule can degrade or
	// sever any slice of the traffic. With no rules armed it is a
	// passthrough.
	Inject *transport.FaultInjector
	// Net is the transport handed to assembled components (= Inject).
	Net   transport.Transport
	Nodes []*gds.Node

	servers   map[string]*greenstone.Server
	services  map[string]*core.Service
	clients   map[string]*gds.Client
	notifiers map[string]map[string]*core.MemoryNotifier // server -> client -> sink
	nodeAddrs []string
}

// NewCluster builds the directory tree; servers are added with AddServer.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.GDSNodes < 1 {
		cfg.GDSNodes = 1
	}
	if cfg.GDSBranching < 1 {
		cfg.GDSBranching = 2
	}
	tr := transport.NewMemory(cfg.Seed)
	if cfg.LinkLatency > 0 {
		tr.SetDefaultLatency(cfg.LinkLatency)
	}
	inj := transport.NewFaultInjector(tr, cfg.Seed)
	c := &Cluster{
		TR:        tr,
		Inject:    inj,
		Net:       inj,
		servers:   make(map[string]*greenstone.Server),
		services:  make(map[string]*core.Service),
		clients:   make(map[string]*gds.Client),
		notifiers: make(map[string]map[string]*core.MemoryNotifier),
	}
	ctx := context.Background()
	for i := 0; i < cfg.GDSNodes; i++ {
		id := fmt.Sprintf("gds%d", i)
		addr := "gds://" + id
		depth := treeDepth(i, cfg.GDSBranching)
		node, err := gds.NewNode(id, addr, depth+1, c.Net)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.nodeAddrs = append(c.nodeAddrs, addr)
		if i > 0 {
			parent := (i - 1) / cfg.GDSBranching
			if err := node.AttachToParent(ctx, c.Nodes[parent].ID(), c.nodeAddrs[parent]); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// treeDepth computes the depth of node i in a complete b-ary tree laid out
// in breadth-first order (node 0 is the root).
func treeDepth(i, b int) int {
	depth := 0
	for i > 0 {
		i = (i - 1) / b
		depth++
	}
	return depth
}

// Close shuts down all components.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
	for _, svc := range c.services {
		_ = svc.Close()
	}
	for _, n := range c.Nodes {
		_ = n.Close()
	}
	_ = c.TR.Close()
}

// Settle drains every server's delivery pipeline, blocking until all
// enqueued notifications are delivered (or parked for detached clients).
// The memory transport runs handlers synchronously, so after a Build
// returns, every matching service has already enqueued — Settle is the only
// synchronisation experiments need before reading notification counts.
func (c *Cluster) Settle(ctx context.Context) {
	for _, name := range c.ServerNames() {
		_ = c.services[name].DrainDeliveries(ctx)
	}
}

// ServerAddr is the canonical transport address of a named server.
func ServerAddr(name string) string { return "gs://" + name }

// NodeAddr is the transport address of the GDS node with index i (standby
// construction in the replication experiments registers at the primary's
// node).
func (c *Cluster) NodeAddr(i int) string { return c.nodeAddrs[i] }

// AddServer creates a Greenstone server with alerting, registered at the
// GDS node with index nodeIdx (-1 picks round-robin by current count).
func (c *Cluster) AddServer(name string, nodeIdx int) (*greenstone.Server, error) {
	return c.AddServerWith(name, nodeIdx, nil)
}

// AddServerWith is AddServer with a hook to adjust the assembled core
// configuration before the service is built (experiments inject QoS
// controllers or delivery-pipeline settings).
func (c *Cluster) AddServerWith(name string, nodeIdx int, mutate func(*core.Config)) (*greenstone.Server, error) {
	if _, dup := c.servers[name]; dup {
		return nil, fmt.Errorf("sim: server %q already exists", name)
	}
	if nodeIdx < 0 {
		nodeIdx = len(c.servers) % len(c.Nodes)
	}
	if nodeIdx >= len(c.Nodes) {
		return nil, fmt.Errorf("sim: node index %d out of range", nodeIdx)
	}
	addr := ServerAddr(name)
	gdsCli := gds.NewClient(name, addr, c.nodeAddrs[nodeIdx], c.Net)
	store := collection.NewStore(name)
	cfg := core.Config{
		ServerName: name,
		ServerAddr: addr,
		Transport:  c.Net,
		GDS:        gdsCli,
		Store:      store,
		Matcher:    filter.NewEqualityPreferred(),
		// The memory transport delivers synchronously, so content-routing
		// tables are warm the moment an advertisement returns: no flood
		// warm-up window needed.
		ContentWarmup: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name:      name,
		Addr:      addr,
		Transport: c.Net,
		Store:     store,
		Alerting:  svc,
		Resolver:  gdsCli,
	})
	if err != nil {
		return nil, err
	}
	if err := gdsCli.Register(context.Background()); err != nil {
		_ = srv.Close()
		return nil, err
	}
	c.servers[name] = srv
	c.services[name] = svc
	c.clients[name] = gdsCli
	c.notifiers[name] = make(map[string]*core.MemoryNotifier)
	return srv, nil
}

// Resolve looks up a server name through another server's directory client
// (the DNS-like naming service of paper §4.1).
func (c *Cluster) Resolve(ctx context.Context, from, target string) (string, error) {
	cli := c.clients[from]
	if cli == nil {
		return "", fmt.Errorf("sim: unknown server %q", from)
	}
	return cli.Resolve(ctx, target)
}

// Server returns a server by name.
func (c *Cluster) Server(name string) *greenstone.Server { return c.servers[name] }

// Service returns a server's alerting service.
func (c *Cluster) Service(name string) *core.Service { return c.services[name] }

// ServerNames lists servers in insertion-independent sorted order.
func (c *Cluster) ServerNames() []string {
	out := make([]string, 0, len(c.servers))
	for n := range c.servers {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Notifier returns (creating on demand) the recording sink for a client at
// a server, registering it with the alerting service.
func (c *Cluster) Notifier(server, client string) *core.MemoryNotifier {
	sinks := c.notifiers[server]
	if sinks == nil {
		sinks = make(map[string]*core.MemoryNotifier)
		c.notifiers[server] = sinks
	}
	sink, ok := sinks[client]
	if !ok {
		sink = core.NewMemoryNotifier()
		sinks[client] = sink
		if svc := c.services[server]; svc != nil {
			svc.RegisterNotifier(client, sink)
		}
	}
	return sink
}

// Notifications returns every notification recorded for a client at a
// server.
func (c *Cluster) Notifications(server, client string) []core.Notification {
	if sinks := c.notifiers[server]; sinks != nil {
		if sink := sinks[client]; sink != nil {
			return sink.All()
		}
	}
	return nil
}

// FlushRetries flushes every server's retry queue (after healing a
// partition), returning total deliveries.
func (c *Cluster) FlushRetries(ctx context.Context) int {
	total := 0
	for _, name := range c.ServerNames() {
		total += c.services[name].Retry().Flush(ctx, true)
	}
	return total
}

// PartitionServers cuts the GS-network link between two servers (their
// direct server-to-server traffic). GDS connectivity is unaffected. The
// memory transport identifies the sender by its logical name and the
// receiver by its address, so both directed pairs are cut.
func (c *Cluster) PartitionServers(a, b string) {
	c.TR.Partition(a, ServerAddr(b))
	c.TR.Partition(b, ServerAddr(a))
}

// HealServers restores the link between two servers.
func (c *Cluster) HealServers(a, b string) {
	c.TR.Heal(a, ServerAddr(b))
	c.TR.Heal(b, ServerAddr(a))
}

// PartitionGDSLink cuts the directory link between two GDS nodes (by node
// id, e.g. "gds0"), severing the subtree below the lower node from the
// rest of the tree: flooded events and upward registrations crossing the
// link are blocked (best-effort delivery — the paper's §6 GDS loses them).
func (c *Cluster) PartitionGDSLink(a, b string) {
	c.TR.Partition(a, "gds://"+b)
	c.TR.Partition(b, "gds://"+a)
}

// HealGDSLink restores a directory link cut by PartitionGDSLink.
func (c *Cluster) HealGDSLink(a, b string) {
	c.TR.Heal(a, "gds://"+b)
	c.TR.Heal(b, "gds://"+a)
}

// IsolateServer cuts a server off the entire network (both GS and GDS
// traffic), modelling a solitary disconnected installation. Both the
// transport address (inbound) and the logical name (outbound sender) are
// marked down.
func (c *Cluster) IsolateServer(name string, isolated bool) {
	c.TR.SetNodeDown(ServerAddr(name), isolated)
	c.TR.SetNodeDown(name, isolated)
}

// NewReceptionist builds a receptionist connected to the named hosts.
func (c *Cluster) NewReceptionist(name string, hosts ...string) *greenstone.Receptionist {
	r := greenstone.NewReceptionist(name, c.TR)
	for _, h := range hosts {
		r.Connect(h, ServerAddr(h))
	}
	return r
}

// RemoteNotifier builds a notifier that pushes MsgNotify envelopes from a
// server to a client address over the cluster transport.
func (c *Cluster) RemoteNotifier(server, clientAddr string) core.Notifier {
	return core.NewRemoteNotifier(server, clientAddr, c.Net)
}
