package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/trace"
)

// AttributionStages is the canonical stage order of the E16 latency
// attribution table: the pipeline stages a delivered notification crosses,
// publish → directory hops → match → composite/qos admission → delivery
// queue → flush → notify. Replica-apply spans are side branches of the
// trace tree (they never parent a notify leaf), so they carry no share of
// end-to-end delivery latency and are excluded here.
var AttributionStages = []string{
	trace.StagePublish,
	trace.StageRouteHop,
	trace.StageMatch,
	trace.StageComposite,
	trace.StageQoS,
	trace.StageQueueWait,
	trace.StageFlush,
	trace.StageNotify,
}

// StageAttribution is one QoS class's row set of the E16 attribution
// table: where the class's end-to-end delivery latency is spent, stage by
// stage, aggregated over every traced notify chain.
type StageAttribution struct {
	Class   string
	Samples int
	// E2EP50 and E2EP99 are nearest-rank quantiles of the chains'
	// end-to-end latency (publish-root start → notify end).
	E2EP50, E2EP99 time.Duration
	// Stage maps stage name → total time attributed to that stage across
	// the class's chains; Share is the same as a fraction of TotalE2E.
	Stage map[string]time.Duration
	Share map[string]float64
	// TotalE2E sums end-to-end latency across the chains; StageSum sums
	// the per-stage attributions. PathSamples attributes gap-by-gap, so
	// the two agree up to negative-gap clamping — SumError is the check.
	TotalE2E, StageSum time.Duration
}

// SumError is the relative disagreement between the summed per-stage
// attributions and the summed end-to-end latencies — the E16 acceptance
// bar requires it within 10%.
func (a StageAttribution) SumError() float64 {
	if a.TotalE2E == 0 {
		return 0
	}
	diff := float64(a.TotalE2E - a.StageSum)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(a.TotalE2E)
}

// AttributionReports aggregates notify-chain path samples into per-class
// stage attributions, ordered realtime → normal → bulk (then any other
// class labels alphabetically).
func AttributionReports(samples []trace.PathSample) []StageAttribution {
	byClass := make(map[string]*StageAttribution)
	e2es := make(map[string][]time.Duration)
	for _, s := range samples {
		class := s.Class
		if class == "" {
			class = "unclassified"
		}
		a := byClass[class]
		if a == nil {
			a = &StageAttribution{
				Class: class,
				Stage: make(map[string]time.Duration),
				Share: make(map[string]float64),
			}
			byClass[class] = a
		}
		a.Samples++
		a.TotalE2E += s.E2E
		e2es[class] = append(e2es[class], s.E2E)
		for stage, d := range s.Stages {
			a.Stage[stage] += d
			a.StageSum += d
		}
	}
	classRank := map[string]int{"realtime": 0, "normal": 1, "bulk": 2}
	out := make([]StageAttribution, 0, len(byClass))
	for class, a := range byClass {
		ds := e2es[class]
		sortDurations(ds)
		a.E2EP50 = quantileNearestRank(ds, 0.5)
		a.E2EP99 = quantileNearestRank(ds, 0.99)
		if a.TotalE2E > 0 {
			for stage, d := range a.Stage {
				a.Share[stage] = float64(d) / float64(a.TotalE2E)
			}
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := classRank[out[i].Class]
		rj, jKnown := classRank[out[j].Class]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown != jKnown:
			return iKnown
		default:
			return out[i].Class < out[j].Class
		}
	})
	return out
}

// quantileNearestRank returns the q-quantile of sorted durations by the
// nearest-rank method (rank ⌈q·n⌉, so p99 of a small sample reports the
// maximum rather than under-reading it).
func quantileNearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// AttributionTable renders per-class stage attributions as the E16 latency
// attribution table: one row per (class, stage) with the attributed total
// and its share of the class's end-to-end latency.
func AttributionTable(reports []StageAttribution) *metrics.Table {
	t := metrics.NewTable("E16 — per-stage latency attribution (traced notify chains)",
		"class / stage", "value")
	for _, a := range reports {
		t.AddRow(fmt.Sprintf("%s chains / e2e p50 / p99", a.Class),
			fmt.Sprintf("%d / %v / %v", a.Samples, a.E2EP50, a.E2EP99))
		for _, stage := range AttributionStages {
			d, ok := a.Stage[stage]
			if !ok {
				continue
			}
			t.AddRow(fmt.Sprintf("  %s · %s", a.Class, stage),
				fmt.Sprintf("%v (%.1f%%)", d, a.Share[stage]*100))
		}
		t.AddRow(fmt.Sprintf("  %s · stage-sum vs e2e", a.Class),
			fmt.Sprintf("%v vs %v (err %.2f%%)", a.StageSum, a.TotalE2E, a.SumError()*100))
	}
	return t
}
