package sim

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
)

// TestHealthExperimentAcceptance is the E18 acceptance bar: for three
// seeds, the health rules fire and clear deterministically, the meta-alert
// multisets are identical across the three routing modes, and the
// degraded-THEN-critical composite fires everywhere.
func TestHealthExperimentAcceptance(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r, err := RunHealthExperiment(8, 8, 2, 4, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHealthTableRenders smoke-checks the experiment table (it re-asserts
// the bar internally).
func TestHealthTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestHealthExperimentAcceptance")
	}
	tbl, err := HealthTable(8, 8, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := tbl.Render(); !strings.Contains(s, "E18") {
		t.Fatalf("table missing title: %s", s)
	}
}

// TestHealthReadinessWalk is the E18 readiness sub-scenario: /readyz flips
// 503 → 200 → 503 → 200 → 200 through join, partition, heal and
// promotion, and the promoted standby's QoS buckets carry the primary's
// charged quota.
func TestHealthReadinessWalk(t *testing.T) {
	r, err := RunHealthReadiness(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthDisabledAddsNoSeries pins the zero-cost-when-off guarantee: a
// fully registered ops registry without a health engine exposes no ALERTS
// and no gsalert_health_* series.
func TestHealthDisabledAddsNoSeries(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 1, GDSNodes: 1, GDSBranching: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddServer("A000", -1); err != nil {
		t.Fatal(err)
	}
	svc := c.Service("A000")
	reg := obs.NewRegistry()
	obs.RegisterService(reg, svc.Stats)
	obs.RegisterDelivery(reg, svc.Delivery())
	obs.RegisterGoRuntime(reg)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "ALERTS") || strings.HasPrefix(line, "gsalert_health_") {
			t.Fatalf("health-disabled exposition leaks a health series: %s", line)
		}
	}
}

// TestHealthDisabledZeroPublishAllocs pins the other half of the
// guarantee: the publish path allocates the same with a health engine
// observing the service's registry as without one — the engine reads at
// scrape cadence and contributes nothing per publish.
func TestHealthDisabledZeroPublishAllocs(t *testing.T) {
	measure := func(withEngine bool) float64 {
		c, err := NewCluster(ClusterConfig{Seed: 1, GDSNodes: 1, GDSBranching: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.AddServer("A000", -1); err != nil {
			t.Fatal(err)
		}
		svc := c.Service("A000")
		if withEngine {
			reg := obs.NewRegistry()
			obs.RegisterService(reg, svc.Stats)
			eng := health.NewEngine(reg, nil, health.Options{})
			eng.Register(reg)
			eng.TickAt(time.Unix(1_700_000_000, 0))
			defer eng.Close()
		}
		ctx := context.Background()
		qname := event.QName{Host: "A000", Collection: "X"}
		seq := 0
		publish := func() {
			seq++
			ev := event.New(fmt.Sprintf("alloc-%d-%v", seq, withEngine), event.TypeDocumentsAdded, qname, seq,
				[]event.DocRef{{ID: fmt.Sprintf("d%d", seq)}}, time.Unix(1_700_000_000, 0))
			if _, err := svc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 64; i++ {
			publish() // warm the dedup window and delivery maps
		}
		return testing.AllocsPerRun(200, publish)
	}
	without := measure(false)
	with := measure(true)
	if with != without {
		t.Fatalf("publish allocs with idle health engine = %v, without = %v — the health plane must cost nothing off the scrape path", with, without)
	}
}

// TestHealthAlertEventShape pins the dogfood event: collection _health,
// type health-alert, and the transition riding as document metadata the
// profile grammar can predicate on.
func TestHealthAlertEventShape(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 1, GDSNodes: 1, GDSBranching: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddServer("A000", -1); err != nil {
		t.Fatal(err)
	}
	svc := c.Service("A000")
	sink := c.Notifier("A000", "ops")
	if _, err := svc.Subscribe("ops", profile.MustParse(`event.type = "health-alert" AND health.state = "critical"`)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	publish := func(to string) {
		err := svc.PublishHealthAlert(ctx, core.HealthAlert{
			Component: "qos", From: "degraded", To: to,
			Rule: "r", Severity: "critical", Value: 1.5, At: time.Unix(1_700_000_000, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	publish("critical")
	publish("healthy") // must NOT match the critical-only profile
	c.Settle(ctx)
	ns := sink.All()
	if len(ns) != 1 {
		t.Fatalf("critical-only profile matched %d of 2 health alerts, want 1", len(ns))
	}
	ev := ns[0].Event
	if ev.Type != event.TypeHealthAlert || ev.Collection.Collection != core.HealthCollection {
		t.Fatalf("meta-alert shape wrong: type=%s collection=%s", ev.Type, ev.Collection)
	}
	if got := ev.Docs[0].Metadata["health.rule"]; len(got) != 1 || got[0] != "r" {
		t.Fatalf("metadata missing rule: %v", ev.Docs[0].Metadata)
	}
	if svc.Stats().HealthAlerts != 2 {
		t.Fatalf("HealthAlerts stat = %d, want 2", svc.Stats().HealthAlerts)
	}
}
