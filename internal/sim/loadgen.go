package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
)

// LoadMix weights the QoS classes across a generated subscriber
// population. Assignment is deterministic (round-robin over the weighted
// pattern), so class proportions are exact and independent of the random
// stream.
type LoadMix struct {
	Realtime, Normal, Bulk int
}

func (m LoadMix) total() int { return m.Realtime + m.Normal + m.Bulk }

// LoadConfig shapes a zipfian workload: a large subscriber population whose
// topic interests follow a zipf distribution, and a publish stream whose
// event topics follow the same distribution — hot topics have both the most
// subscribers and the most traffic, the shape real alerting deployments
// show.
type LoadConfig struct {
	// Seed drives every random draw (reproducibility).
	Seed int64
	// Profiles is the subscriber-population size (one profile each).
	Profiles int
	// Topics is the topic-vocabulary size (dc.Subject values).
	Topics int
	// ZipfS is the zipf skew (> 1; default 1.07 ≈ web-like popularity).
	ZipfS float64
	// ZipfV is the zipf value offset (>= 1; default 1).
	ZipfV float64
	// CompositeFraction in [0,1) registers that share of the population as
	// DIGEST composite wrappers instead of primitive profiles.
	CompositeFraction float64
	// Mix weights the QoS classes (default 1/2/1 realtime/normal/bulk).
	Mix LoadMix
	// Collection is the watched collection qname ("host.name").
	Collection string
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Profiles <= 0 {
		c.Profiles = 1000
	}
	if c.Topics <= 0 {
		c.Topics = 100
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.07
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
	if c.Mix.total() <= 0 {
		c.Mix = LoadMix{Realtime: 1, Normal: 2, Bulk: 1}
	}
	return c
}

// LoadGen generates the population and the publish stream. Construct one
// per run; the zipf draws are consumed in a fixed order (population first,
// then events), so two runs from the same config are identical.
type LoadGen struct {
	cfg   LoadConfig
	qname event.QName
	rng   *rand.Rand
	zipf  *rand.Zipf
	// exprs caches the parsed profile expression per topic: the population
	// holds Topics distinct expressions, not Profiles.
	exprs map[int]profile.Expr
	base  time.Time
}

// NewLoadGen validates the config and seeds the generator.
func NewLoadGen(cfg LoadConfig) (*LoadGen, error) {
	cfg = cfg.withDefaults()
	host, coll, ok := strings.Cut(cfg.Collection, ".")
	if !ok || host == "" || coll == "" {
		return nil, fmt.Errorf("sim: loadgen collection %q is not a host.name qname", cfg.Collection)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &LoadGen{
		cfg:   cfg,
		qname: event.QName{Host: host, Collection: coll},
		rng:   rng,
		zipf:  rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Topics-1)),
		exprs: make(map[int]profile.Expr, cfg.Topics),
		base:  time.Unix(1_120_000_000, 0), // fixed epoch: identical runs build identical events
	}, nil
}

// Topic draws the next zipf-distributed topic index.
func (g *LoadGen) Topic() int { return int(g.zipf.Uint64()) }

// TopicName renders a topic index as its dc.Subject value.
func TopicName(t int) string { return fmt.Sprintf("t%03d", t) }

func (g *LoadGen) exprFor(topic int) profile.Expr {
	e, ok := g.exprs[topic]
	if !ok {
		e = profile.MustParse(fmt.Sprintf(`collection = "%s" AND dc.Subject = "%s"`,
			g.cfg.Collection, TopicName(topic)))
		g.exprs[topic] = e
	}
	return e
}

func (g *LoadGen) classFor(i int) qos.Class {
	m := g.cfg.Mix
	switch r := i % m.total(); {
	case r < m.Realtime:
		return qos.ClassRealtime
	case r < m.Realtime+m.Normal:
		return qos.ClassNormal
	default:
		return qos.ClassBulk
	}
}

// Populate registers the subscriber population round-robin across the named
// servers: mostly primitive QoS-classed topic profiles, with the configured
// fraction registered as DIGEST composite wrappers. Returns the number of
// live profiles registered.
func (g *LoadGen) Populate(c *Cluster, servers []string) (int, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("sim: loadgen has no servers to populate")
	}
	compositeEvery := 0
	if g.cfg.CompositeFraction > 0 {
		compositeEvery = int(1 / g.cfg.CompositeFraction)
	}
	live := 0
	for i := 0; i < g.cfg.Profiles; i++ {
		srv := servers[i%len(servers)]
		svc := c.Service(srv)
		if svc == nil {
			return live, fmt.Errorf("sim: loadgen: unknown server %q", srv)
		}
		topic := g.Topic()
		subscriber := fmt.Sprintf("z%07d", i)
		if compositeEvery > 0 && i%compositeEvery == compositeEvery-1 {
			src := fmt.Sprintf(`DIGEST (collection = "%s" AND dc.Subject = "%s") EVERY 1h`,
				g.cfg.Collection, TopicName(topic))
			if _, err := svc.SubscribeComposite(subscriber, src); err != nil {
				return live, fmt.Errorf("sim: loadgen composite %d: %w", i, err)
			}
		} else {
			p := profile.NewUser(fmt.Sprintf("zp%07d", i), subscriber, srv, g.exprFor(topic))
			p.Class = g.classFor(i)
			if err := svc.SubscribeProfile(p); err != nil {
				return live, fmt.Errorf("sim: loadgen profile %d: %w", i, err)
			}
		}
		live++
	}
	return live, nil
}

// Event builds the i-th publish event of a round: one documents-added event
// for the watched collection, its document tagged with a zipf-drawn topic.
// IDs are deterministic, so a chaos run and its failure-free baseline emit
// identical event streams.
func (g *LoadGen) Event(round, i int) *event.Event {
	topic := g.Topic()
	id := fmt.Sprintf("ev-r%03d-%02d", round, i)
	return event.New(id, event.TypeDocumentsAdded, g.qname, round+1,
		[]event.DocRef{{
			ID:       fmt.Sprintf("doc-r%03d-%02d", round, i),
			Metadata: map[string][]string{"dc.Subject": {TopicName(topic)}},
		}},
		g.base.Add(time.Duration(round)*time.Minute+time.Duration(i)*time.Second))
}

// SLOReport is one class row of the per-class latency SLO evaluation.
type SLOReport struct {
	Class string
	// Delivered sums the class's delivered notifications across services.
	Delivered int64
	// P50 and P99 are merged end-to-end delivery latency quantiles across
	// every service's class histogram (bucket upper bounds, exact within 2x).
	P50, P99 time.Duration
	// Bound is the configured p99 SLO (0 = untracked) and OK whether the
	// class meets it (vacuously true with no samples).
	Bound time.Duration
	OK    bool
}

// mergedQuantile computes a quantile across several LatencyHistograms by
// merging their per-bucket counts (bucket bounds are shared — power-of-two
// nanoseconds), preserving the single-histogram guarantee: the reported
// value is the upper bound of the bucket holding the nearest-rank sample.
func mergedQuantile(hists []*metrics.LatencyHistogram, q float64) time.Duration {
	merged := make(map[time.Duration]int64)
	var total int64
	for _, h := range hists {
		var prev int64
		h.Buckets(func(upper time.Duration, cumulative int64) {
			merged[upper] += cumulative - prev
			prev = cumulative
		})
		total += prev
	}
	if total == 0 {
		return 0
	}
	uppers := make([]time.Duration, 0, len(merged))
	for u := range merged {
		uppers = append(uppers, u)
	}
	sortDurations(uppers)
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, u := range uppers {
		seen += merged[u]
		if seen >= rank {
			return u
		}
	}
	return uppers[len(uppers)-1]
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// ClassSLOReports evaluates per-class delivery-latency SLOs across a set of
// delivery pipelines' metrics, merging each class's histograms
// cluster-wide.
func ClassSLOReports(pipes []*delivery.Metrics, slo map[qos.Class]time.Duration) []SLOReport {
	out := make([]SLOReport, 0, qos.NumClasses)
	for c := 0; c < qos.NumClasses; c++ {
		class := qos.Class(c)
		var hists []*metrics.LatencyHistogram
		var delivered int64
		for _, m := range pipes {
			hists = append(hists, &m.ClassLatency[class])
			delivered += m.DeliveredByClass[class].Value()
		}
		r := SLOReport{
			Class:     class.String(),
			Delivered: delivered,
			P50:       mergedQuantile(hists, 0.5),
			P99:       mergedQuantile(hists, 0.99),
			Bound:     slo[class],
			OK:        true,
		}
		if r.Bound > 0 && r.P99 > r.Bound {
			r.OK = false
		}
		out = append(out, r)
	}
	return out
}
