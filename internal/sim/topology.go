package sim

import (
	"fmt"
	"math/rand"

	"github.com/gsalert/gsalert/internal/baseline"
)

// TopologyConfig shapes a generated Greenstone network for the routing
// comparison (experiment E3).
type TopologyConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Servers is the number of Greenstone servers.
	Servers int
	// SolitaryFraction is the fraction of servers with no GS links at all —
	// the paper's observation that "most servers are solitary
	// installations" (§1 problem 1).
	SolitaryFraction float64
	// ExtraLinkFraction adds cycles: extra random links as a fraction of
	// the connected-server count (paper §1 problem 2).
	ExtraLinkFraction float64
	// Islands splits the connected servers into this many disjoint
	// components (>=1).
	Islands int
	// GDSNodes sizes the directory tree used for cost accounting.
	GDSNodes int
}

// Topology is a generated network plus bookkeeping for workloads.
type Topology struct {
	Net      *baseline.Network
	Servers  []string
	Solitary []string
	// Linked are the servers that participate in the GS graph.
	Linked []string
	rng    *rand.Rand
}

// GenerateTopology builds a fragmented, possibly cyclic GS network.
func GenerateTopology(cfg TopologyConfig) *Topology {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.Islands < 1 {
		cfg.Islands = 1
	}
	if cfg.GDSNodes < 1 {
		cfg.GDSNodes = 1 + cfg.Servers/8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	servers := make([]string, 0, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		servers = append(servers, fmt.Sprintf("S%03d", i))
	}
	net := baseline.NewNetwork(servers, cfg.GDSNodes)

	nSolitary := int(cfg.SolitaryFraction * float64(cfg.Servers))
	if nSolitary > cfg.Servers {
		nSolitary = cfg.Servers
	}
	perm := rng.Perm(cfg.Servers)
	solitary := make([]string, 0, nSolitary)
	linked := make([]string, 0, cfg.Servers-nSolitary)
	for i, idx := range perm {
		if i < nSolitary {
			solitary = append(solitary, servers[idx])
		} else {
			linked = append(linked, servers[idx])
		}
	}

	// Partition linked servers into islands, each internally a random tree.
	islands := cfg.Islands
	if islands > len(linked) {
		islands = maxInt(1, len(linked))
	}
	for i := range linked {
		island := i % islands
		// Attach to a random earlier member of the same island.
		for j := i - islands; j >= 0; j -= islands {
			if (j % islands) == island {
				// pick any earlier same-island node at random
				candidates := make([]int, 0, 4)
				for k := island; k < i; k += islands {
					candidates = append(candidates, k)
				}
				if len(candidates) > 0 {
					net.AddLink(linked[i], linked[candidates[rng.Intn(len(candidates))]])
				}
				break
			}
		}
	}
	// Extra links within islands create cycles.
	extra := int(cfg.ExtraLinkFraction * float64(len(linked)))
	for e := 0; e < extra && len(linked) > 2; e++ {
		a := rng.Intn(len(linked))
		b := rng.Intn(len(linked))
		if a == b || (a%islands) != (b%islands) {
			continue
		}
		net.AddLink(linked[a], linked[b])
	}

	sortStrings(solitary)
	sortStrings(linked)
	return &Topology{Net: net, Servers: servers, Solitary: solitary, Linked: linked, rng: rng}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WorkloadConfig shapes the subscription/event workload for E3.
type WorkloadConfig struct {
	// Collections is the number of distinct collections, assigned to random
	// owners.
	Collections int
	// Subscriptions is the number of user profiles, at random home servers,
	// each interested in one random collection.
	Subscriptions int
	// EventsPerCollection is how many events each collection's owner
	// publishes per phase.
	EventsPerCollection int
}

// Workload is a generated subscription and event load.
type Workload struct {
	Collections []WorkloadCollection
	Subs        []baseline.Subscription
}

// WorkloadCollection is one collection with its owning server.
type WorkloadCollection struct {
	Name  string // qualified "Owner.CX"
	Owner string
}

// GenerateWorkload builds the workload over a topology.
func (t *Topology) GenerateWorkload(cfg WorkloadConfig) *Workload {
	if cfg.Collections < 1 {
		cfg.Collections = 1
	}
	w := &Workload{}
	for i := 0; i < cfg.Collections; i++ {
		owner := t.Servers[t.rng.Intn(len(t.Servers))]
		w.Collections = append(w.Collections, WorkloadCollection{
			Name:  fmt.Sprintf("%s.C%d", owner, i),
			Owner: owner,
		})
	}
	for i := 0; i < cfg.Subscriptions; i++ {
		home := t.Servers[t.rng.Intn(len(t.Servers))]
		coll := w.Collections[t.rng.Intn(len(w.Collections))]
		w.Subs = append(w.Subs, baseline.Subscription{
			ID:         fmt.Sprintf("sub%04d", i),
			Server:     home,
			Collection: coll.Name,
		})
	}
	return w
}

// RandomLinkedPair picks two distinct linked servers (for link cuts); ok is
// false when fewer than two linked servers exist.
func (t *Topology) RandomLinkedPair() (a, b string, ok bool) {
	if len(t.Linked) < 2 {
		return "", "", false
	}
	i := t.rng.Intn(len(t.Linked))
	j := t.rng.Intn(len(t.Linked) - 1)
	if j >= i {
		j++
	}
	return t.Linked[i], t.Linked[j], true
}

// Rand exposes the topology's seeded RNG for workload phases.
func (t *Topology) Rand() *rand.Rand { return t.rng }
