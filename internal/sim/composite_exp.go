package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/metrics"
)

// E13 — composite & temporal alerting across the dissemination ladder.
// A publisher rebuilds one collection while a subscriber on another server
// holds four composite profiles: an unwindowed sequence (documents-added
// THEN documents-removed), the same sequence WITHIN 1h (expired by a
// simulated clock jump before the removal arrives), an accumulation
// (COUNT 3 OF collection-rebuilt) and a daily digest of the rebuild
// summaries. The run is repeated in every routing mode — broadcast,
// multicast, content — and must synthesize exactly the same notifications
// in each: composite state machines consume whatever primitives the
// dissemination layer delivers, so routing optimisations must never change
// what fires.

// CompositeAlertsResult is one E13 row (one routing mode).
type CompositeAlertsResult struct {
	Mode    string
	Servers int
	// Rounds is the number of add-rounds (each also a rebuild); one more
	// rebuild removes the added documents.
	Rounds int
	// Sequence counts firings of the unwindowed sequence profile.
	Sequence int
	// SequenceWindowed counts firings of the 1h-windowed sequence (the
	// expiry check: must be zero).
	SequenceWindowed int
	// Count counts accumulation firings.
	Count int
	// Digest counts digest flush notifications.
	Digest int
	// DigestEvents is the number of primitive events the digest carried.
	DigestEvents int
	// WindowsExpired is the subscriber engine's expiry counter.
	WindowsExpired int64
	// LiveInstances is the subscriber engine's open-instance gauge after
	// the run (the leftover accumulation window).
	LiveInstances int64
	// Messages is the total transport message cost.
	Messages int64
}

// expectedCompositeAlerts returns the exact synthesized-notification
// counts E13 must produce for the given add-round count, identical in
// every routing mode.
func expectedCompositeAlerts(rounds int) (sequence, sequenceWindowed, count, digest, digestEvents int) {
	// One instance opens per documents-added event — one per add-round
	// (first builds emit only the collection-built summary); the final
	// removal advances them all.
	sequence = rounds
	sequenceWindowed = 0
	// Rebuild summaries: one per add-round plus the removal round.
	rebuilds := rounds + 1
	count = rebuilds / 3
	digest = 1
	digestEvents = rebuilds
	return
}

// RunCompositeAlerts plays the E13 scenario through one routing mode.
func RunCompositeAlerts(servers, rounds int, mode core.RoutingMode, seed int64) (CompositeAlertsResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return CompositeAlertsResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("K%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return CompositeAlertsResult{}, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return CompositeAlertsResult{}, err
		}
		names = append(names, name)
	}
	pub, sub := names[0], names[1]
	coll := pub + ".X"
	if _, err := c.Server(pub).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return CompositeAlertsResult{}, err
	}

	sink := c.Notifier(sub, "u")
	svc := c.Service(sub)
	subscribe := func(src string) (string, error) { return svc.SubscribeComposite("u", src) }
	seqID, err := subscribe(fmt.Sprintf(
		`SEQUENCE (collection = "%s" AND event.type = "documents-added") THEN (collection = "%s" AND event.type = "documents-removed")`, coll, coll))
	if err != nil {
		return CompositeAlertsResult{}, err
	}
	seqWinID, err := subscribe(fmt.Sprintf(
		`SEQUENCE (collection = "%s" AND event.type = "documents-added") THEN (collection = "%s" AND event.type = "documents-removed") WITHIN 1h`, coll, coll))
	if err != nil {
		return CompositeAlertsResult{}, err
	}
	countID, err := subscribe(fmt.Sprintf(
		`COUNT 3 OF (collection = "%s" AND event.type = "collection-rebuilt")`, coll))
	if err != nil {
		return CompositeAlertsResult{}, err
	}
	digestID, err := subscribe(fmt.Sprintf(
		`DIGEST (collection = "%s" AND event.type = "collection-rebuilt") EVERY 24h`, coll))
	if err != nil {
		return CompositeAlertsResult{}, err
	}

	// Base corpus; each add-round contributes one new document, the final
	// round removes them all again.
	base := []*collection.Document{{ID: "base-0", Content: "stable document"}}
	docs := append([]*collection.Document(nil), base...)

	c.TR.ResetStats()
	if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
		return CompositeAlertsResult{}, err
	}
	for r := 1; r <= rounds; r++ {
		docs = append(docs, &collection.Document{
			ID:      fmt.Sprintf("extra-%d", r),
			Content: fmt.Sprintf("document of round %d", r),
		})
		if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
			return CompositeAlertsResult{}, err
		}
	}
	c.Settle(ctx)
	// Jump the subscriber's composite clock past every 1h window: the
	// windowed sequence's open instances expire; the unwindowed ones and
	// the 24h digest are untouched.
	svc.CompositeTick(time.Now().Add(2 * time.Hour))

	// The removal round: back to the base corpus.
	if _, _, err := c.Server(pub).Build(ctx, "X", base); err != nil {
		return CompositeAlertsResult{}, err
	}
	c.Settle(ctx)

	// Flush the digest (one simulated day later) and settle the resulting
	// synthesized notification through the delivery pipeline.
	svc.CompositeTick(time.Now().Add(25 * time.Hour))
	c.Settle(ctx)

	out := CompositeAlertsResult{
		Mode:     mode.String(),
		Servers:  servers,
		Rounds:   rounds,
		Messages: c.TR.Stats().Sent,
	}
	for _, n := range sink.All() {
		switch n.ProfileID {
		case seqID:
			out.Sequence++
		case seqWinID:
			out.SequenceWindowed++
		case countID:
			out.Count++
		case digestID:
			out.Digest++
			out.DigestEvents += len(n.Contributing)
		}
	}
	st := svc.Stats()
	out.WindowsExpired = st.CompositeWindowsExpired
	out.LiveInstances = st.CompositeLiveInstances
	return out, nil
}

// CompositeAlertsTable runs E13 over all three routing modes, asserting
// that every mode synthesizes exactly the expected notifications.
func CompositeAlertsTable(servers, rounds int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E13 — composite & temporal alerting across routing modes (%d servers, %d add-rounds + 1 removal)", servers, rounds),
		"mode", "seq fired", "seq(1h) fired", "count fired", "digests", "digest events", "windows expired", "messages")
	wantSeq, wantSeqWin, wantCount, wantDigest, wantDigestEvents := expectedCompositeAlerts(rounds)
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunCompositeAlerts(servers, rounds, mode, seed)
		if err != nil {
			return nil, err
		}
		if r.Sequence != wantSeq || r.SequenceWindowed != wantSeqWin ||
			r.Count != wantCount || r.Digest != wantDigest || r.DigestEvents != wantDigestEvents {
			return nil, fmt.Errorf("sim: E13 %s synthesized seq=%d seqWin=%d count=%d digest=%d digestEvents=%d, want %d/%d/%d/%d/%d — modes are not equivalent",
				r.Mode, r.Sequence, r.SequenceWindowed, r.Count, r.Digest, r.DigestEvents,
				wantSeq, wantSeqWin, wantCount, wantDigest, wantDigestEvents)
		}
		t.AddRow(r.Mode, r.Sequence, r.SequenceWindowed, r.Count, r.Digest, r.DigestEvents, r.WindowsExpired, r.Messages)
	}
	return t, nil
}
