package sim

import (
	"context"
	"fmt"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
)

// E9 — dissemination ablation: the paper's primary design floods every
// event to every server; §6 also names multicast as a GDS capability. This
// experiment quantifies the trade: with interest-scoped multicast groups,
// message cost follows the number of interested servers instead of the
// network size, at the price of group-membership state in the directory.

// MulticastAblationResult is one E9 row.
type MulticastAblationResult struct {
	Mode          string
	Servers       int
	Interested    int
	Events        int
	Messages      int64
	Notifications int
}

// RunMulticastAblation publishes events through a cluster of the given size
// where only `interested` servers subscribe, under one routing mode.
func RunMulticastAblation(servers, interested, events int, mode core.RoutingMode, seed int64) (MulticastAblationResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return MulticastAblationResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("A%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return MulticastAblationResult{}, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return MulticastAblationResult{}, err
		}
		names = append(names, name)
	}
	if _, err := c.Server(names[0]).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return MulticastAblationResult{}, err
	}
	for i := 1; i <= interested && i < servers; i++ {
		c.Notifier(names[i], "u")
		if _, err := c.Service(names[i]).Subscribe("u", profile.MustParse(
			fmt.Sprintf(`collection = "%s.X" AND event.type = "collection-rebuilt"`, names[0]))); err != nil {
			return MulticastAblationResult{}, err
		}
	}
	// Initial build outside the measured window.
	if _, _, err := c.Server(names[0]).Build(ctx, "X", syntheticDocs(1, 0)); err != nil {
		return MulticastAblationResult{}, err
	}
	c.TR.ResetStats()
	for e := 0; e < events; e++ {
		if _, _, err := c.Server(names[0]).Build(ctx, "X", syntheticDocs(1, e+1)); err != nil {
			return MulticastAblationResult{}, err
		}
	}
	c.Settle(ctx)
	out := MulticastAblationResult{
		Servers:    servers,
		Interested: interested,
		Events:     events,
		Messages:   c.TR.Stats().Sent,
	}
	switch mode {
	case core.RouteBroadcast:
		out.Mode = "broadcast"
	case core.RouteMulticast:
		out.Mode = "multicast"
	}
	for i := 1; i <= interested && i < servers; i++ {
		out.Notifications += c.Notifier(names[i], "u").Len()
	}
	return out, nil
}

// MulticastAblationTable runs E9 over interest levels for both modes.
func MulticastAblationTable(servers, events int, interestedLevels []int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E9 — dissemination ablation: broadcast vs interest-scoped multicast (%d servers, %d events)", servers, events),
		"mode", "interested servers", "messages", "msgs/event", "notifications")
	for _, k := range interestedLevels {
		for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast} {
			r, err := RunMulticastAblation(servers, k, events, mode, seed)
			if err != nil {
				return nil, err
			}
			wantNotifs := k * events
			if r.Notifications != wantNotifs {
				return nil, fmt.Errorf("sim: E9 %s k=%d delivered %d notifications, want %d — modes are not equivalent",
					r.Mode, k, r.Notifications, wantNotifs)
			}
			t.AddRow(r.Mode, r.Interested, r.Messages, float64(r.Messages)/float64(events), r.Notifications)
		}
	}
	return t, nil
}
