package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
)

// E12 — content-based routing: the dissemination ladder flood → multicast
// → content. E9 showed interest-scoped multicast making message cost
// follow the number of interested servers; its granularity stops at the
// collection. Content routing advertises full profile digests
// (docs/ROUTING.md), so the directory can also prune on event type: a
// rebuild's per-document events never travel towards servers whose
// profiles only watch rebuild summaries. This experiment publishes builds
// that emit several event types and compares message cost, delivered
// matches and mean delivery latency across all three modes.

// ContentRoutingResult is one E12 row.
type ContentRoutingResult struct {
	Mode          string
	Servers       int
	Interested    int
	Events        int // events published per measured build round
	Rounds        int
	Messages      int64
	Notifications int
	// AvgLatency is the mean virtual transit latency of event envelopes
	// received by the interested servers.
	AvgLatency time.Duration
}

// RunContentRouting publishes `rounds` rebuilds (each emitting a rebuild
// summary plus per-document events) through a tree of the given size in
// which only `interested` servers subscribe — and only to the rebuild
// summaries. Returns message cost, notification count and mean delivery
// latency for one routing mode.
func RunContentRouting(servers, interested, rounds int, mode core.RoutingMode, seed int64) (ContentRoutingResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: max(1, servers/4), GDSBranching: 3})
	if err != nil {
		return ContentRoutingResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("C%03d", i)
		if _, err := c.AddServer(name, -1); err != nil {
			return ContentRoutingResult{}, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return ContentRoutingResult{}, err
		}
		names = append(names, name)
	}
	if _, err := c.Server(names[0]).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return ContentRoutingResult{}, err
	}
	for i := 1; i <= interested && i < servers; i++ {
		c.Notifier(names[i], "u")
		if _, err := c.Service(names[i]).Subscribe("u", profile.MustParse(
			fmt.Sprintf(`collection = "%s.X" AND event.type = "collection-rebuilt"`, names[0]))); err != nil {
			return ContentRoutingResult{}, err
		}
	}
	// Initial build outside the measured window (emits collection-built,
	// which nobody subscribed to).
	if _, _, err := c.Server(names[0]).Build(ctx, "X", syntheticDocs(20, 0)); err != nil {
		return ContentRoutingResult{}, err
	}
	c.Settle(ctx)
	c.TR.ResetStats()
	eventsPerRound := 0
	for r := 0; r < rounds; r++ {
		// Each measured rebuild changes one doc in twenty: the build emits
		// a collection-rebuilt summary plus a documents-changed event.
		res, _, err := c.Server(names[0]).Build(ctx, "X", syntheticDocs(20, r+1))
		if err != nil {
			return ContentRoutingResult{}, err
		}
		eventsPerRound = len(res.Events)
	}
	c.Settle(ctx)

	out := ContentRoutingResult{
		Mode:       mode.String(),
		Servers:    servers,
		Interested: interested,
		Events:     eventsPerRound,
		Rounds:     rounds,
		Messages:   c.TR.Stats().Sent,
	}
	var latencySum time.Duration
	var received int64
	for i := 1; i <= interested && i < servers; i++ {
		out.Notifications += c.Notifier(names[i], "u").Len()
		st := c.Service(names[i]).Stats()
		latencySum += st.ReceiveLatency
		received += st.EventsReceived
	}
	if received > 0 {
		out.AvgLatency = latencySum / time.Duration(received)
	}
	return out, nil
}

// ContentRoutingTable runs E12 over all three modes, checking that every
// mode delivers the full expected notification count (the modes are
// optimisations, never correctness changes).
func ContentRoutingTable(servers, interested, rounds int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E12 — dissemination ladder: flood vs multicast vs content routing (%d servers, %d interested, %d rebuild rounds)",
			servers, interested, rounds),
		"mode", "events/round", "messages", "msgs/round", "notifications", "avg latency")
	modes := []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent}
	var flood, content ContentRoutingResult
	for _, mode := range modes {
		r, err := RunContentRouting(servers, interested, rounds, mode, seed)
		if err != nil {
			return nil, err
		}
		want := min(interested, servers-1) * rounds
		if r.Notifications != want {
			return nil, fmt.Errorf("sim: E12 %s delivered %d notifications, want %d — modes are not equivalent",
				r.Mode, r.Notifications, want)
		}
		switch mode {
		case core.RouteBroadcast:
			flood = r
		case core.RouteContent:
			content = r
		}
		t.AddRow(r.Mode, r.Events, r.Messages, float64(r.Messages)/float64(rounds), r.Notifications, r.AvgLatency)
	}
	if content.Messages >= flood.Messages {
		return nil, fmt.Errorf("sim: E12 content routing used %d messages, flooding %d — covering tables saved nothing",
			content.Messages, flood.Messages)
	}
	return t, nil
}
