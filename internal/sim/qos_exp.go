package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
)

// E15 — QoS admission control & graceful overload degradation. A publisher
// on a 16-server tree drives a subscriber server into 10x overload relative
// to its per-subscriber quota. Three subscribers hold the same
// content profile at the three priority classes. The acceptance bar, in
// every routing mode:
//
//   - realtime is loss-free with bounded p99 delivery latency (it bypasses
//     quotas and is serviced first by the WFQ shard scheduler);
//   - normal over quota is deferred — parked durably, then delivered on the
//     next attach (delayed, never lost: final count equals the event count);
//   - bulk over quota is coalesced: the shed events arrive as one digest
//     carrying every suppressed primitive;
//   - the QoS counters account exactly for every match: admitted + deferred
//     + coalesced = 3x events, nothing silently lost.

// QoSOverloadResult is one E15 row (one routing mode).
type QoSOverloadResult struct {
	Mode    string
	Servers int
	// Events is the number of documents-added events each class profile
	// matched (the overload is Events / Burst = 10x).
	Events int
	// Burst is the per-subscriber token budget (burst-only, no refill).
	Burst int
	// RealtimeDelivered must equal Events.
	RealtimeDelivered int
	// RealtimeP99 is the subscriber pipeline's realtime-class end-to-end
	// delivery latency (bucketed upper bound).
	RealtimeP99 time.Duration
	// NormalPrompt is the normal-class count delivered within quota;
	// NormalTotal the count after the deferred backlog drained on
	// re-attach (must equal Events).
	NormalPrompt int
	NormalTotal  int
	// BulkPrompt is the bulk-class count delivered within quota per event.
	BulkPrompt int
	// Digests and DigestEvents describe the coalesced remainder:
	// DigestEvents must equal Events - Burst.
	Digests      int
	DigestEvents int
	// Admitted/Deferred/Coalesced are the subscriber's QoS counters.
	Admitted  int64
	Deferred  int64
	Coalesced int64
}

// RunQoSOverload plays the E15 scenario through one routing mode.
func RunQoSOverload(servers, events, burst int, mode core.RoutingMode, seed int64) (QoSOverloadResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, GDSNodes: maxInt(1, servers/4), GDSBranching: 3})
	if err != nil {
		return QoSOverloadResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	names := make([]string, 0, servers)
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("Q%03d", i)
		// A retry interval beyond the run keeps the deferred-redelivery
		// loop out of the measurement: deferred traffic drains only on the
		// explicit re-attach below, making prompt-vs-deferred counts exact.
		_, err := c.AddServerWith(name, -1, func(cfg *core.Config) {
			cfg.DeliveryConfig = &delivery.Config{RetryInterval: time.Hour}
		})
		if err != nil {
			return QoSOverloadResult{}, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			return QoSOverloadResult{}, err
		}
		names = append(names, name)
	}
	pub, sub := names[0], names[1]
	coll := pub + ".X"
	if _, err := c.Server(pub).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		return QoSOverloadResult{}, err
	}

	// Burst-only buckets (rate 0 never refills) make the quota exact and
	// the run deterministic; the digest period is long enough that only the
	// explicit tick below flushes it.
	svc := c.Service(sub)
	svc.SetQoS(qos.NewController(qos.Config{
		SubscriberBurst: burst,
		BulkDigestEvery: time.Hour,
	}))

	rtSink := c.Notifier(sub, "rt")
	nmSink := c.Notifier(sub, "nm")
	blkSink := c.Notifier(sub, "blk")
	subscribe := func(client string, class qos.Class) (string, error) {
		p := profile.NewUser(client+"-prof", client, sub,
			profile.MustParse(fmt.Sprintf(`collection = "%s" AND event.type = "documents-added"`, coll)))
		p.Class = class
		return p.ID, svc.SubscribeProfile(p)
	}
	if _, err := subscribe("rt", qos.ClassRealtime); err != nil {
		return QoSOverloadResult{}, err
	}
	if _, err := subscribe("nm", qos.ClassNormal); err != nil {
		return QoSOverloadResult{}, err
	}
	blkID, err := subscribe("blk", qos.ClassBulk)
	if err != nil {
		return QoSOverloadResult{}, err
	}

	// The overload: each add-round emits one documents-added event for the
	// watched collection; `events` rounds against a budget of `burst`.
	docs := []*collection.Document{{ID: "base-0", Content: "stable document"}}
	if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
		return QoSOverloadResult{}, err
	}
	for r := 1; r <= events; r++ {
		docs = append(docs, &collection.Document{
			ID:      fmt.Sprintf("extra-%d", r),
			Content: fmt.Sprintf("document of round %d", r),
		})
		if _, _, err := c.Server(pub).Build(ctx, "X", docs); err != nil {
			return QoSOverloadResult{}, err
		}
	}
	c.Settle(ctx)

	out := QoSOverloadResult{
		Mode:    mode.String(),
		Servers: servers,
		Events:  events,
		Burst:   burst,
	}
	countPrimitives := func(sink *core.MemoryNotifier) int {
		n := 0
		for _, x := range sink.All() {
			if x.Composite == "" {
				n++
			}
		}
		return n
	}
	out.RealtimeDelivered = countPrimitives(rtSink)
	out.NormalPrompt = countPrimitives(nmSink)
	out.BulkPrompt = countPrimitives(blkSink)

	// Deferred normal traffic drains on the subscriber's next attach (the
	// paper-§7 reconnect applied to QoS deferral); re-attaching the same
	// sink forces the drain deterministically.
	svc.RegisterNotifier("nm", nmSink)
	c.Settle(ctx)
	out.NormalTotal = countPrimitives(nmSink)

	// Flush the coalescing digest (one simulated hour later) and settle the
	// synthesized notification through the pipeline.
	svc.CompositeTick(time.Now().Add(2 * time.Hour))
	c.Settle(ctx)
	for _, n := range blkSink.All() {
		if n.Composite == "digest" && n.ProfileID == blkID {
			out.Digests++
			out.DigestEvents += len(n.Contributing)
		}
	}

	st := svc.Stats()
	out.Admitted = st.QoSAdmitted
	out.Deferred = st.QoSDeferred
	out.Coalesced = st.QoSCoalesced
	out.RealtimeP99 = svc.Delivery().Metrics().ClassLatency[qos.ClassRealtime].Quantile(0.99)
	return out, nil
}

// qosOverloadCheck asserts the E15 acceptance bar on one row.
func qosOverloadCheck(r QoSOverloadResult, p99Bound time.Duration) error {
	shed := r.Events - r.Burst
	switch {
	case r.RealtimeDelivered != r.Events:
		return fmt.Errorf("sim: E15 %s: realtime delivered %d of %d — loss under overload", r.Mode, r.RealtimeDelivered, r.Events)
	case r.RealtimeP99 <= 0 || r.RealtimeP99 > p99Bound:
		return fmt.Errorf("sim: E15 %s: realtime p99 %v outside (0, %v]", r.Mode, r.RealtimeP99, p99Bound)
	case r.NormalPrompt != r.Burst:
		return fmt.Errorf("sim: E15 %s: normal delivered %d promptly, want %d (quota)", r.Mode, r.NormalPrompt, r.Burst)
	case r.NormalTotal != r.Events:
		return fmt.Errorf("sim: E15 %s: normal total %d of %d — deferral lost alerts", r.Mode, r.NormalTotal, r.Events)
	case r.BulkPrompt != r.Burst:
		return fmt.Errorf("sim: E15 %s: bulk delivered %d promptly, want %d (quota)", r.Mode, r.BulkPrompt, r.Burst)
	case r.Digests != 1 || r.DigestEvents != shed:
		return fmt.Errorf("sim: E15 %s: digests = %d carrying %d, want 1 carrying %d", r.Mode, r.Digests, r.DigestEvents, shed)
	case r.Admitted != int64(r.Events+2*r.Burst) || r.Deferred != int64(shed) || r.Coalesced != int64(shed):
		return fmt.Errorf("sim: E15 %s: accounting admitted/deferred/coalesced = %d/%d/%d, want %d/%d/%d",
			r.Mode, r.Admitted, r.Deferred, r.Coalesced, r.Events+2*r.Burst, shed, shed)
	case r.Admitted+r.Deferred+r.Coalesced != int64(3*r.Events):
		return fmt.Errorf("sim: E15 %s: %d+%d+%d != %d — a match went unaccounted",
			r.Mode, r.Admitted, r.Deferred, r.Coalesced, 3*r.Events)
	}
	return nil
}

// QoSOverloadTable runs E15 over all three routing modes, asserting the
// acceptance bar on every row.
func QoSOverloadTable(servers, events, burst int, seed int64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("E15 — QoS under %dx overload (%d servers, %d events vs budget %d, per class realtime/normal/bulk)",
			events/maxInt(1, burst), servers, events, burst),
		"mode", "rt delivered", "rt p99", "nm prompt", "nm total", "blk prompt", "digests", "digest events",
		"admitted", "deferred", "coalesced")
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunQoSOverload(servers, events, burst, mode, seed)
		if err != nil {
			return nil, err
		}
		if err := qosOverloadCheck(r, 30*time.Second); err != nil {
			return nil, err
		}
		t.AddRow(r.Mode, r.RealtimeDelivered, r.RealtimeP99, r.NormalPrompt, r.NormalTotal,
			r.BulkPrompt, r.Digests, r.DigestEvents, r.Admitted, r.Deferred, r.Coalesced)
	}
	return t, nil
}
