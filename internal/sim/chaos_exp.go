package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/chaos"
	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/replica"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// E16 — scale & chaos soak. A zipfian subscriber population (100k–1M
// profiles, mixed primitive/composite, QoS-classed) is spread across the
// tree while a publisher drives rounds of zipf-topic events. A chaos
// schedule runs against the workload: the replicated server's standby is
// degraded and healed, a directory subtree is partitioned and healed, the
// replicated primary is killed and its standby promoted, dissemination
// modes flip mid-run, and latency is injected into the alerting traffic.
// The run is repeated with an empty schedule (the failure-free baseline)
// and the PR 4/5 invariants must survive the composition:
//
//   - realtime is loss-free: the realtime subscribers' delivered multisets
//     are identical to the baseline, through the kill and the partitions;
//   - normal is deferred-not-lost: over-quota traffic parks durably
//     (inherited across the promotion) and the final count equals the
//     event count;
//   - promotion is zero-loss: the killed server's clients see the same
//     multiset the baseline run delivered, pre-kill + post-promote;
//   - bulk coalesces exactly once: the shed events arrive as one digest;
//   - nothing in any pipeline counts as dropped (actual loss is zero).
//
// Per-class delivery-latency SLOs are evaluated cluster-wide through
// merged metrics.LatencyHistogram buckets. The three observed servers
// (publisher, QoS-observed, replicated) are pinned to the root directory
// node, so partition faults may cut any directory link without
// disconnecting the invariant-bearing paths — everything else is ballast
// and takes the faults (paper §6: flooding is best-effort).

// The well-known soak roles. Ballast servers fill out the tree.
const (
	// SoakPublisher publishes every round's events.
	SoakPublisher = "C000"
	// SoakQoSServer hosts the rt/nm/blk observed subscribers (E15's cast)
	// behind burst-only quotas. It is never killed: bulk-digest engine
	// state is not replicated (docs/REPLICATION.md), so digest-exactly-once
	// is asserted where the engine survives.
	SoakQoSServer = "C001"
	// SoakReplServer is the replicated server (E14's cast): an attached
	// realtime client and a detached normal client whose parked alerts must
	// survive the promotion.
	SoakReplServer = "C002"
)

// ChaosSoakConfig shapes an E16 run.
type ChaosSoakConfig struct {
	// Servers is the tree size; Rounds×EventsPerRound the publish volume.
	Servers, Rounds, EventsPerRound int
	// Burst is the per-subscriber burst-only quota on the observed servers.
	Burst int
	// Seed drives the cluster, the population and the injected faults.
	Seed int64
	// Mode is the initial dissemination mode (flips may change it).
	Mode core.RoutingMode
	// Load shapes the ballast population (Collection is filled in).
	Load LoadConfig
	// Schedule is the chaos to apply; the baseline run ignores it.
	Schedule chaos.Schedule
	// SLO bounds per-class p99 delivery latency (sanity bounds: latencies
	// are wall-clock and include parked dwell time).
	SLO map[qos.Class]time.Duration
	// TraceSample head-samples end-to-end event traces at this rate in
	// (0,1]; the chaos run's traced notify chains produce the per-stage
	// latency attribution table. 0 disables tracing.
	TraceSample float64
	// Health attaches an internal/health engine to the QoS server's
	// registry, ticked on a virtual clock each round plus a quiet tail, so
	// the soak observes at least one rule fire→clear cycle (the chaos-soak
	// CI gate). 0-cost when false.
	Health bool
	// FlightRecorder (E19) additionally threads a shared structured-logging
	// recorder through every subsystem — core services, delivery pipelines,
	// directory nodes, the replica standby and the health engine — on the
	// same virtual clock, arms a logging.FlightRecorder over its rings, and
	// registers the standby's stats with the health registry so the
	// soak-promotion critical rule can observe the kill-primary fault. The
	// resulting critical transition auto-captures a post-mortem bundle.
	// Implies Health.
	FlightRecorder bool
}

// soakHealthRules is the rule set the soak's health engine evaluates: the
// burst-only quota guarantees deferrals once the subscriber budget is
// spent, so the deferred rate rises mid-run and drains to zero over the
// quiet tail — a deterministic fire→clear cycle.
const soakHealthRules = `
rule soak-deferred-rate {
	component = qos
	severity = warning
	expr = rate(gsalert_qos_deferred_total[30s]) > 0.05
}
`

// soakHealthTick is the virtual time each soak round (and each quiet tail
// tick) advances the health clock by.
const soakHealthTick = 10 * time.Second

// DefaultChaosSoakConfig is the acceptance-bar configuration: 16 servers,
// 100k live profiles, 12 rounds, and a schedule exercising the full fault
// vocabulary.
func DefaultChaosSoakConfig(seed int64) ChaosSoakConfig {
	return ChaosSoakConfig{
		Servers:        16,
		Rounds:         12,
		EventsPerRound: 4,
		Burst:          8,
		Seed:           seed,
		Mode:           core.RouteBroadcast,
		Load: LoadConfig{
			Seed:              seed,
			Profiles:          100_000,
			Topics:            500,
			CompositeFraction: 0.02,
		},
		Schedule: DefaultSoakSchedule(12, "gds3"),
		SLO: map[qos.Class]time.Duration{
			qos.ClassRealtime: 30 * time.Second,
			qos.ClassNormal:   5 * time.Minute,
			qos.ClassBulk:     10 * time.Minute,
		},
	}
}

// DefaultSoakSchedule is the canonical E16 schedule, scaled to the round
// count (positions are fractions of the 12-round template): degrade the
// standby, cut a directory subtree off at cutLink (a GDS node id, e.g.
// "gds3" — the link to its parent is severed), heal both, kill the
// replicated primary, inject alerting-path latency, flip modes.
func DefaultSoakSchedule(rounds int, cutNode string) chaos.Schedule {
	at := func(template int) int { return template * rounds / 12 }
	var s chaos.Schedule
	s.Add(chaos.Fault{At: at(1), Kind: chaos.KindSlowStandby, Target: SoakReplServer, DropRate: 1})
	s.Add(chaos.Fault{At: at(2), Kind: chaos.KindPartition, A: "gds0", B: cutNode})
	s.Add(chaos.Fault{At: at(4), Kind: chaos.KindHealStandby, Target: SoakReplServer})
	s.Add(chaos.Fault{At: at(5), Kind: chaos.KindHeal, A: "gds0", B: cutNode})
	s.Add(chaos.Fault{At: at(6), Kind: chaos.KindKillPrimary, Target: SoakReplServer})
	s.Add(chaos.Fault{At: at(7), Kind: chaos.KindInject, TypePrefix: "gs.", Latency: 2 * time.Millisecond})
	s.Add(chaos.Fault{At: at(8), Kind: chaos.KindFlipMode, Target: "multicast"})
	s.Add(chaos.Fault{At: at(9), Kind: chaos.KindClearInject})
	s.Add(chaos.Fault{At: at(10), Kind: chaos.KindFlipMode, Target: "content"})
	return s
}

func parseRoutingMode(s string) (core.RoutingMode, error) {
	switch s {
	case "broadcast":
		return core.RouteBroadcast, nil
	case "multicast":
		return core.RouteMulticast, nil
	case "content":
		return core.RouteContent, nil
	}
	return 0, fmt.Errorf("sim: unknown routing mode %q", s)
}

// soakRun is one assembled soak deployment; it implements chaos.Fabric.
type soakRun struct {
	cfg ChaosSoakConfig
	c   *Cluster
	ctx context.Context

	mode core.RoutingMode

	standbySvc *core.Service
	recv       *replica.Standby

	// serving overrides name → service after a promotion.
	serving map[string]*core.Service

	// rattSinks accumulates the attached realtime client's sinks across
	// attach generations (a fresh sink is registered after promotion).
	rattSinks []*core.MemoryNotifier

	injectRules []transport.FaultRule
	promoted    bool
	inherited   int
}

var _ chaos.Fabric = (*soakRun)(nil)

func (r *soakRun) servingFor(name string) *core.Service {
	if svc, ok := r.serving[name]; ok {
		return svc
	}
	return r.c.Service(name)
}

func (r *soakRun) settle(ctx context.Context) {
	r.c.Settle(ctx)
	if r.standbySvc != nil {
		_ = r.standbySvc.DrainDeliveries(ctx)
	}
}

// KillPrimary implements chaos.Fabric: the primary's address vanishes and
// the standby promotes into the inherited name at the current mode.
func (r *soakRun) KillPrimary(ctx context.Context, server string) error {
	if server != SoakReplServer {
		return fmt.Errorf("sim: soak can only kill %s, not %q", SoakReplServer, server)
	}
	if r.promoted {
		return fmt.Errorf("sim: %s already killed", server)
	}
	r.c.TR.SetNodeDown(ServerAddr(server), true)
	if err := r.recv.Promote(ctx, r.mode); err != nil {
		return err
	}
	r.promoted = true
	r.serving[server] = r.standbySvc
	// What the standby inherited parked for the detached normal client.
	r.inherited = r.standbySvc.Delivery().Pending("noff")
	// The attached realtime client re-attaches to the promoted standby.
	sink := core.NewMemoryNotifier()
	r.standbySvc.RegisterNotifier("ratt", sink)
	r.rattSinks = append(r.rattSinks, sink)
	return nil
}

// Partition and Heal implement chaos.Fabric over directory links.
func (r *soakRun) Partition(a, b string) error {
	r.c.PartitionGDSLink(a, b)
	return nil
}

func (r *soakRun) Heal(a, b string) error {
	r.c.HealGDSLink(a, b)
	return nil
}

func replStandbyAddr(server string) string { return "repl://" + server + "b" }

// SlowStandby implements chaos.Fabric: degrade the replication stream to
// the server's standby.
func (r *soakRun) SlowStandby(server string, drop float64, latency time.Duration) error {
	if server != SoakReplServer {
		return fmt.Errorf("sim: soak has no standby for %q", server)
	}
	r.c.Inject.AddRule(transport.FaultRule{
		To: replStandbyAddr(server), DropRate: drop, ExtraLatency: latency,
	})
	return nil
}

// HealStandby implements chaos.Fabric: restore the replication link and
// force a catch-up heartbeat (the lagging standby resyncs via snapshot).
func (r *soakRun) HealStandby(ctx context.Context, server string) error {
	if server != SoakReplServer {
		return fmt.Errorf("sim: soak has no standby for %q", server)
	}
	r.c.Inject.RemoveRules(func(fr transport.FaultRule) bool {
		return fr.To == replStandbyAddr(server)
	})
	return r.recv.Heartbeat(ctx)
}

// FlipMode implements chaos.Fabric: every serving service switches
// dissemination mode.
func (r *soakRun) FlipMode(ctx context.Context, mode string) error {
	m, err := parseRoutingMode(mode)
	if err != nil {
		return err
	}
	for _, name := range r.c.ServerNames() {
		if r.promoted && name == SoakReplServer {
			continue // the dead primary stays dead; the standby flips below
		}
		if err := r.c.Service(name).SetRoutingMode(ctx, m); err != nil {
			return fmt.Errorf("sim: flip %s to %s: %w", name, mode, err)
		}
	}
	if r.promoted {
		if err := r.standbySvc.SetRoutingMode(ctx, m); err != nil {
			return fmt.Errorf("sim: flip promoted %s to %s: %w", SoakReplServer, mode, err)
		}
	}
	r.mode = m
	return nil
}

// Inject and ClearInject implement chaos.Fabric over the cluster's fault
// injector. ClearInject removes only engine-installed rules, leaving an
// armed slow-standby window intact.
func (r *soakRun) Inject(rule transport.FaultRule) error {
	r.injectRules = append(r.injectRules, rule)
	r.c.Inject.AddRule(rule)
	return nil
}

func (r *soakRun) ClearInject() error {
	mine := make(map[transport.FaultRule]int, len(r.injectRules))
	for _, fr := range r.injectRules {
		mine[fr]++
	}
	r.c.Inject.RemoveRules(func(fr transport.FaultRule) bool {
		if mine[fr] > 0 {
			mine[fr]--
			return true
		}
		return false
	})
	r.injectRules = nil
	return nil
}

// soakOutcome is one run's observations.
type soakOutcome struct {
	live int
	// Delivered multisets for the loss-critical observed clients.
	rt, ratt, noff map[string]int
	rtCount        int
	rattCount      int
	noffCount      int
	// E15-shaped QoS observations at SoakQoSServer.
	nmPrompt, nmTotal, blkPrompt int
	digests, digestEvents        int
	// E14-shaped failover observations at SoakReplServer.
	inherited int
	promoted  bool
	resyncs   int64
	// Loss accounting: pipeline-level drops across serving services.
	pipelineDropped int64
	// Transport cost and fault accounting.
	messages, blocked          int64
	injectedDrops, injectDelay int64
	applied                    []chaos.Applied
	slo                        []SLOReport
	// Trace accounting (TraceSample > 0).
	attribution              []StageAttribution
	traces                   []*trace.Trace
	traceSpans, traceDropped int64
	// Health accounting (cfg.Health).
	healthTransitions []health.Transition
	healthCycles      int
	// Flight-recorder accounting (cfg.FlightRecorder): the auto-captured
	// bundles with their parsed forms, the per-component ring stats, the
	// count of transitions into Critical, and the trace IDs the collector
	// had assembled by the end of the run (record resolution is checked
	// against this set).
	bundles        [][]byte
	dumps          []*logging.Dump
	critical       int
	logStats       []logging.ComponentStats
	retainedTraces map[string]bool
	wall           time.Duration
}

func countSoakPrimitives(sink *core.MemoryNotifier) int {
	n := 0
	for _, x := range sink.All() {
		if x.Composite == "" {
			n++
		}
	}
	return n
}

// runChaosSoak assembles the deployment, plays the workload under the
// given schedule (empty = baseline) and collects the outcome.
func runChaosSoak(cfg ChaosSoakConfig, schedule chaos.Schedule) (*soakOutcome, error) {
	start := time.Now()
	ctx := context.Background()
	nodes := maxInt(1, cfg.Servers/4)
	c, err := NewCluster(ClusterConfig{Seed: cfg.Seed, GDSNodes: nodes, GDSBranching: 3})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// One collector gathers spans from every service and directory node;
	// each component gets its own tracer (distinct seeds keep span IDs
	// collision-free across processes) feeding the shared ring.
	var tcol *trace.Collector
	var traceSeq int64
	newTracer := func(service string) *trace.Tracer {
		if tcol == nil {
			return nil
		}
		traceSeq++
		return trace.New(trace.Config{
			Service:    service,
			SampleRate: cfg.TraceSample,
			Seed:       cfg.Seed + traceSeq*7919,
			Collector:  tcol,
		})
	}
	if cfg.TraceSample > 0 {
		tcol = trace.NewCollector(1 << 18)
		for _, n := range c.Nodes {
			n.SetTracer(newTracer(n.ID()))
		}
	}

	// The virtual clock shared by the health engine and the logging plane:
	// it advances only at round boundaries, so every record and capture
	// timestamp is a pure function of the seed — the E19 byte-determinism
	// property. The mutex keeps -race quiet should any background emitter
	// ever read it; in the soak every log site runs on this goroutine.
	hclock := time.Unix(1_700_000_000, 0)
	var clkMu sync.Mutex
	lclock := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return hclock
	}
	advanceClock := func() time.Time {
		clkMu.Lock()
		hclock = hclock.Add(soakHealthTick)
		t := hclock
		clkMu.Unlock()
		return t
	}

	// The E19 logging plane: one recorder at debug feeds every component's
	// flight ring; no sink is attached (ring-only, the always-on production
	// posture), and the flight recorder snapshots the rings plus the trace
	// IDs retained in the span collector at capture time.
	var (
		rec       *logging.Recorder
		flight    *logging.FlightRecorder
		coreLog   *logging.Logger
		bundles   [][]byte
		dumps     []*logging.Dump
		critical  int
		flightErr error
	)
	if cfg.FlightRecorder {
		rec = logging.NewRecorder(logging.Config{
			Level: logging.LevelDebug,
			Clock: lclock,
		})
		flight = logging.NewFlightRecorder(logging.FlightConfig{
			Recorder: rec,
			Clock:    lclock,
			TraceIDs: func() []string {
				if tcol == nil {
					return nil
				}
				traces := tcol.Traces(trace.Filter{})
				ids := make([]string, 0, len(traces))
				for _, t := range traces {
					ids = append(ids, t.TraceID)
				}
				return ids
			},
		})
		coreLog = rec.For("core")
		gdsLog := rec.For("gds")
		for _, n := range c.Nodes {
			n.SetLog(gdsLog)
		}
	}

	quota := func(cc *core.Config) {
		// A retry interval beyond the run keeps deferred redelivery out of
		// the measurement (E15's determinism trick); deferred traffic
		// drains only on the explicit re-attach at the end.
		cc.DeliveryConfig = &delivery.Config{RetryInterval: time.Hour}
	}
	names := make([]string, 0, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		name := fmt.Sprintf("C%03d", i)
		nodeIdx := i % nodes
		if i < 3 {
			// The observed servers sit on the root node: any directory link
			// may be cut without touching the invariant-bearing paths.
			nodeIdx = 0
		}
		if _, err := c.AddServerWith(name, nodeIdx, func(cc *core.Config) {
			quota(cc)
			cc.Tracer = newTracer(cc.ServerName)
			cc.Log = coreLog
		}); err != nil {
			return nil, err
		}
		if err := c.Service(name).SetRoutingMode(ctx, cfg.Mode); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	newQoS := func() *qos.Controller {
		// Burst-only buckets (rate 0 never refills) make quotas exact; the
		// digest period is long enough that only the explicit tick flushes.
		return qos.NewController(qos.Config{SubscriberBurst: cfg.Burst, BulkDigestEvery: time.Hour})
	}
	qosSvc := c.Service(SoakQoSServer)
	qosSvc.SetQoS(newQoS())
	replSvc := c.Service(SoakReplServer)
	replSvc.SetQoS(newQoS())

	// The soak's health plane: a rule engine over the QoS server's
	// registry, stepped on a virtual clock so rate windows behave the same
	// however fast the rounds run. Flight-recorder runs add the critical
	// soak-promotion rule and capture a post-mortem bundle the moment any
	// component turns critical — the kill-primary fault is the trigger.
	var heng *health.Engine
	var hreg *obs.Registry
	if cfg.Health || cfg.FlightRecorder {
		rulesText := soakHealthRules
		if cfg.FlightRecorder {
			rulesText += soakPromotionRules
		}
		hrules, err := health.ParseRules(rulesText)
		if err != nil {
			return nil, fmt.Errorf("sim: soak health rules: %w", err)
		}
		hreg = obs.NewRegistry()
		obs.RegisterService(hreg, qosSvc.Stats)
		hopts := health.Options{}
		if rec != nil {
			hopts.Log = rec.For("health")
			hopts.OnTransition = func(tr health.Transition) {
				if tr.To != health.Critical {
					return
				}
				critical++
				d, err := flight.Dump("critical:" + tr.Component)
				if err != nil {
					flightErr = fmt.Errorf("sim: soak flight dump: %w", err)
					return
				}
				raw, err := d.MarshalJSONL()
				if err != nil {
					flightErr = fmt.Errorf("sim: soak flight bundle: %w", err)
					return
				}
				dumps = append(dumps, d)
				bundles = append(bundles, raw)
			}
		}
		heng = health.NewEngine(hreg, hrules, hopts)
	}

	// The ballast population goes in before the standby joins, so the
	// snapshot path carries it; the observed profiles subscribe after, over
	// the stream path.
	coll := SoakPublisher + ".X"
	loadCfg := cfg.Load
	loadCfg.Collection = coll
	if loadCfg.Seed == 0 {
		loadCfg.Seed = cfg.Seed
	}
	lg, err := NewLoadGen(loadCfg)
	if err != nil {
		return nil, err
	}
	live, err := lg.Populate(c, names)
	if err != nil {
		return nil, err
	}

	// The replica pair for SoakReplServer, assembled as in E14 but over the
	// cluster's injectable transport so schedule rules reach the stream.
	standbyAddr := ServerAddr(SoakReplServer + "b")
	sbCli := gds.NewClient(SoakReplServer, standbyAddr, c.NodeAddr(0), c.Net)
	sbStore := collection.NewStore(SoakReplServer)
	sbCfg := core.Config{
		ServerName:    SoakReplServer,
		ServerAddr:    standbyAddr,
		Transport:     c.Net,
		GDS:           sbCli,
		Store:         sbStore,
		ContentWarmup: -1,
	}
	quota(&sbCfg)
	sbCfg.Tracer = newTracer(SoakReplServer + "b")
	sbCfg.Log = coreLog
	standby, err := core.New(sbCfg)
	if err != nil {
		return nil, err
	}
	defer standby.Close()
	standby.SetQoS(newQoS())
	sbSrv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name:      SoakReplServer,
		Addr:      standbyAddr,
		Transport: c.Net,
		Store:     sbStore,
		Alerting:  standby,
	})
	if err != nil {
		return nil, err
	}
	defer sbSrv.Close()
	prim, err := replica.NewPrimary(replica.PrimaryConfig{
		Service:    replSvc,
		Transport:  c.Net,
		ListenAddr: "repl://" + SoakReplServer,
	})
	if err != nil {
		return nil, err
	}
	defer prim.Close()
	sbStandbyCfg := replica.StandbyConfig{
		Service:     standby,
		Transport:   c.Net,
		ListenAddr:  replStandbyAddr(SoakReplServer),
		PrimaryAddr: "repl://" + SoakReplServer,
		GDS:         sbCli,
		Tracer:      sbCfg.Tracer,
	}
	if rec != nil {
		sbStandbyCfg.Log = rec.For("replica")
	}
	recv, err := replica.NewStandby(sbStandbyCfg)
	if err != nil {
		return nil, err
	}
	defer recv.Close()
	if err := recv.Join(ctx); err != nil {
		return nil, err
	}
	if hreg != nil && cfg.FlightRecorder {
		// The soak-promotion rule watches gsalert_replica_promoted, which
		// lives on the standby's stats (selectors sum matching series, so
		// the QoS server's never-promoted zero contributes nothing).
		obs.RegisterService(hreg, standby.Stats)
	}

	// The observed subscribers: E15's cast at the QoS server, E14's cast at
	// the replicated server. All match every event of the collection.
	allEvents := profile.MustParse(fmt.Sprintf(`collection = "%s" AND event.type = "documents-added"`, coll))
	subscribe := func(svc *core.Service, host, client string, class qos.Class) (string, error) {
		p := profile.NewUser("soak-"+client, client, host, allEvents)
		p.Class = class
		return p.ID, svc.SubscribeProfile(p)
	}
	rtSink := c.Notifier(SoakQoSServer, "rt")
	nmSink := c.Notifier(SoakQoSServer, "nm")
	blkSink := c.Notifier(SoakQoSServer, "blk")
	if _, err := subscribe(qosSvc, SoakQoSServer, "rt", qos.ClassRealtime); err != nil {
		return nil, err
	}
	if _, err := subscribe(qosSvc, SoakQoSServer, "nm", qos.ClassNormal); err != nil {
		return nil, err
	}
	blkID, err := subscribe(qosSvc, SoakQoSServer, "blk", qos.ClassBulk)
	if err != nil {
		return nil, err
	}
	rattSink := c.Notifier(SoakReplServer, "ratt")
	if _, err := subscribe(replSvc, SoakReplServer, "ratt", qos.ClassRealtime); err != nil {
		return nil, err
	}
	if _, err := subscribe(replSvc, SoakReplServer, "noff", qos.ClassNormal); err != nil {
		return nil, err
	}

	run := &soakRun{
		cfg:        cfg,
		c:          c,
		ctx:        ctx,
		mode:       cfg.Mode,
		standbySvc: standby,
		recv:       recv,
		serving:    make(map[string]*core.Service),
		rattSinks:  []*core.MemoryNotifier{rattSink},
	}
	eng, err := chaos.NewEngine(schedule, run)
	if err != nil {
		return nil, err
	}

	// The soak: rounds of zipf-topic events, the schedule advancing after
	// each settled round.
	c.TR.ResetStats()
	pubSvc := c.Service(SoakPublisher)
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < cfg.EventsPerRound; i++ {
			ev := lg.Event(round, i)
			if _, err := pubSvc.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
				return nil, fmt.Errorf("sim: soak publish r%d/%d: %w", round, i, err)
			}
		}
		run.settle(ctx)
		if _, err := eng.AdvanceTo(ctx, round); err != nil {
			return nil, err
		}
		if heng != nil {
			heng.TickAt(advanceClock())
		}
	}
	run.settle(ctx)
	if heng != nil {
		// Quiet tail: no publishes, so the deferred-rate window drains and
		// any firing rule clears — completing the fire→clear cycle.
		for i := 0; i < 6; i++ {
			heng.TickAt(advanceClock())
		}
	}
	if flightErr != nil {
		return nil, flightErr
	}

	out := &soakOutcome{
		live:      live,
		rt:        make(map[string]int),
		ratt:      make(map[string]int),
		noff:      make(map[string]int),
		promoted:  run.promoted,
		inherited: run.inherited,
		applied:   eng.Log(),
	}

	// E15 shape at the QoS server: prompt counts, then the deferred normal
	// backlog drains on re-attach, then the coalescing digest flushes.
	out.rtCount = countKeys(out.rt, rtSink.All())
	out.nmPrompt = countSoakPrimitives(nmSink)
	out.blkPrompt = countSoakPrimitives(blkSink)
	qosSvc.RegisterNotifier("nm", nmSink)
	run.settle(ctx)
	out.nmTotal = countSoakPrimitives(nmSink)
	qosSvc.CompositeTick(time.Now().Add(2 * time.Hour))
	run.settle(ctx)
	for _, n := range blkSink.All() {
		if n.Composite == "digest" && n.ProfileID == blkID {
			out.digests++
			out.digestEvents += len(n.Contributing)
		}
	}

	// E14 shape at the replicated server: the attached realtime client's
	// multiset across attach generations, then the detached normal client
	// finally attaches at the serving service and drains its (possibly
	// inherited) mailbox.
	for _, sink := range run.rattSinks {
		out.rattCount += countKeys(out.ratt, sink.All())
	}
	servingRepl := run.servingFor(SoakReplServer)
	noffSink := core.NewMemoryNotifier()
	servingRepl.RegisterNotifier("noff", noffSink)
	if err := servingRepl.DrainDeliveries(ctx); err != nil {
		return nil, err
	}
	out.noffCount = countKeys(out.noff, noffSink.All())

	// Accounting: loss, replication catch-ups, transport cost, SLOs.
	var pipes []*delivery.Metrics
	for _, name := range names {
		m := run.servingFor(name).Delivery().Metrics()
		pipes = append(pipes, m)
		out.pipelineDropped += m.Snapshot().Dropped
	}
	out.resyncs = recv.ReplicaStats().Resyncs
	st := c.TR.Stats()
	out.messages, out.blocked = st.Sent, st.Blocked
	ist := c.Inject.Stats()
	out.injectedDrops, out.injectDelay = ist.Dropped, ist.Delayed
	out.slo = ClassSLOReports(pipes, cfg.SLO)
	if tcol != nil {
		out.traces = tcol.Traces(trace.Filter{})
		out.attribution = AttributionReports(trace.PathSamples(out.traces, trace.StageNotify))
		out.traceSpans = tcol.SpansTotal()
		out.traceDropped = tcol.Dropped()
	}
	if rec != nil {
		out.bundles = bundles
		out.dumps = dumps
		out.critical = critical
		out.logStats = rec.Stats()
		out.retainedTraces = make(map[string]bool, len(out.traces))
		for _, t := range out.traces {
			out.retainedTraces[t.TraceID] = true
		}
	}
	if heng != nil {
		out.healthTransitions = heng.Transitions()
		out.healthCycles = healthCycles(out.healthTransitions)
	}
	out.wall = time.Since(start)
	return out, nil
}

// healthCycles counts completed fire→clear cycles: transitions back to
// Healthy after a component had left it.
func healthCycles(trs []health.Transition) int {
	n := 0
	for _, tr := range trs {
		if tr.To == health.Healthy && tr.From != health.Healthy {
			n++
		}
	}
	return n
}

// ChaosSoakResult compares a chaos run against its failure-free baseline —
// one E16 row.
type ChaosSoakResult struct {
	Servers, Rounds, Events int
	Burst                   int
	Seed                    int64
	Mode                    string
	LiveProfiles            int

	// Composition of the applied schedule.
	Applied     []chaos.Applied
	FaultCounts map[chaos.Kind]int

	// Realtime loss-freedom: delivered counts and multiset equality with
	// the baseline, at the QoS server (rt) and through the failover (ratt).
	RealtimeDelivered int
	RealtimeIdentical bool
	FailoverDelivered int
	FailoverIdentical bool

	// Normal deferred-not-lost, at the QoS server and through the failover.
	NormalPrompt, NormalTotal int
	DetachedTotal             int
	DetachedIdentical         bool
	Inherited                 int

	// Bulk digest-exactly-once.
	BulkPrompt, Digests, DigestEvents int

	// Loss and fault accounting (chaos run).
	Promoted        bool
	Resyncs         int64
	PipelineDropped int64
	Messages        int64
	Blocked         int64
	InjectedDrops   int64

	// Per-class latency SLOs, chaos run and baseline.
	SLO         []SLOReport
	BaselineSLO []SLOReport

	// Per-stage latency attribution from the chaos run's traced notify
	// chains (empty unless TraceSample > 0).
	Attribution              []StageAttribution
	TraceSpans, TraceDropped int64

	// Health-plane observations from the chaos run (empty unless
	// cfg.Health): every component state transition, and the number of
	// completed fire→clear cycles.
	HealthTransitions []health.Transition
	HealthCycles      int

	WallChaos, WallBaseline time.Duration
}

// RunChaosSoak plays the soak twice — failure-free baseline, then under the
// chaos schedule — and compares the delivered multisets.
func RunChaosSoak(cfg ChaosSoakConfig) (*ChaosSoakResult, error) {
	if cfg.Servers < 4 {
		return nil, fmt.Errorf("sim: soak needs >= 4 servers, got %d", cfg.Servers)
	}
	baseline, err := runChaosSoak(cfg, chaos.Schedule{})
	if err != nil {
		return nil, fmt.Errorf("sim: E16 baseline: %w", err)
	}
	chaosRun, err := runChaosSoak(cfg, cfg.Schedule)
	if err != nil {
		return nil, fmt.Errorf("sim: E16 chaos: %w", err)
	}
	r := &ChaosSoakResult{
		Servers:           cfg.Servers,
		Rounds:            cfg.Rounds,
		Events:            cfg.Rounds * cfg.EventsPerRound,
		Burst:             cfg.Burst,
		Seed:              cfg.Seed,
		Mode:              cfg.Mode.String(),
		LiveProfiles:      chaosRun.live,
		Applied:           chaosRun.applied,
		FaultCounts:       cfg.Schedule.Counts(),
		RealtimeDelivered: chaosRun.rtCount,
		RealtimeIdentical: sameMultiset(baseline.rt, chaosRun.rt),
		FailoverDelivered: chaosRun.rattCount,
		FailoverIdentical: sameMultiset(baseline.ratt, chaosRun.ratt),
		NormalPrompt:      chaosRun.nmPrompt,
		NormalTotal:       chaosRun.nmTotal,
		DetachedTotal:     chaosRun.noffCount,
		DetachedIdentical: sameMultiset(baseline.noff, chaosRun.noff),
		Inherited:         chaosRun.inherited,
		BulkPrompt:        chaosRun.blkPrompt,
		Digests:           chaosRun.digests,
		DigestEvents:      chaosRun.digestEvents,
		Promoted:          chaosRun.promoted,
		Resyncs:           chaosRun.resyncs,
		PipelineDropped:   chaosRun.pipelineDropped + baseline.pipelineDropped,
		Messages:          chaosRun.messages,
		Blocked:           chaosRun.blocked,
		InjectedDrops:     chaosRun.injectedDrops,
		SLO:               chaosRun.slo,
		BaselineSLO:       baseline.slo,
		Attribution:       chaosRun.attribution,
		TraceSpans:        chaosRun.traceSpans,
		TraceDropped:      chaosRun.traceDropped,
		HealthTransitions: chaosRun.healthTransitions,
		HealthCycles:      chaosRun.healthCycles,
		WallChaos:         chaosRun.wall,
		WallBaseline:      baseline.wall,
	}
	return r, nil
}

// Check asserts the E16 acceptance bar on a result.
func (r *ChaosSoakResult) Check() error {
	shed := r.Events - r.Burst
	counts := r.FaultCounts
	switch {
	case counts[chaos.KindKillPrimary] < 1 || counts[chaos.KindPartition] < 1 || counts[chaos.KindFlipMode] < 1:
		return fmt.Errorf("sim: E16 schedule composition %v lacks a kill, a partition or a mode flip", counts)
	case len(r.Applied) != totalFaults(counts):
		return fmt.Errorf("sim: E16 applied %d of %d scheduled faults", len(r.Applied), totalFaults(counts))
	case counts[chaos.KindKillPrimary] > 0 && !r.Promoted:
		return fmt.Errorf("sim: E16 schedule kills a primary but no promotion happened")
	case r.RealtimeDelivered != r.Events:
		return fmt.Errorf("sim: E16 realtime delivered %d of %d — loss under chaos", r.RealtimeDelivered, r.Events)
	case !r.RealtimeIdentical:
		return fmt.Errorf("sim: E16 realtime multiset differs from the failure-free run")
	case r.FailoverDelivered != r.Events || !r.FailoverIdentical:
		return fmt.Errorf("sim: E16 failover client delivered %d of %d (identical=%v) — promotion lost or duplicated alerts",
			r.FailoverDelivered, r.Events, r.FailoverIdentical)
	case r.NormalPrompt != r.Burst || r.NormalTotal != r.Events:
		return fmt.Errorf("sim: E16 normal prompt/total = %d/%d, want %d/%d — deferral lost alerts",
			r.NormalPrompt, r.NormalTotal, r.Burst, r.Events)
	case r.DetachedTotal != r.Events || !r.DetachedIdentical:
		return fmt.Errorf("sim: E16 detached client total %d of %d (identical=%v) — parked alerts lost across promotion",
			r.DetachedTotal, r.Events, r.DetachedIdentical)
	case counts[chaos.KindKillPrimary] > 0 && r.Inherited <= 0:
		return fmt.Errorf("sim: E16 standby inherited %d parked alerts, want > 0", r.Inherited)
	case r.BulkPrompt != r.Burst || r.Digests != 1 || r.DigestEvents != shed:
		return fmt.Errorf("sim: E16 bulk prompt/digests/digest-events = %d/%d/%d, want %d/1/%d",
			r.BulkPrompt, r.Digests, r.DigestEvents, r.Burst, shed)
	case counts[chaos.KindSlowStandby] > 0 && r.Resyncs < 1:
		return fmt.Errorf("sim: E16 standby lagged but never resynced")
	case r.PipelineDropped != 0:
		return fmt.Errorf("sim: E16 %d notifications dropped from pipelines — actual loss", r.PipelineDropped)
	case counts[chaos.KindPartition] > 0 && r.Blocked == 0:
		return fmt.Errorf("sim: E16 schedule partitions a link but nothing was blocked — the cut missed")
	case counts[chaos.KindSlowStandby] > 0 && r.InjectedDrops == 0:
		return fmt.Errorf("sim: E16 standby was degraded but no message was injected-dropped")
	}
	for _, s := range append(append([]SLOReport(nil), r.SLO...), r.BaselineSLO...) {
		if !s.OK {
			return fmt.Errorf("sim: E16 class %s p99 %v exceeds SLO %v", s.Class, s.P99, s.Bound)
		}
	}
	// Traced runs must attribute coherently: each class's per-stage sums
	// reconstruct its end-to-end latency within 10%.
	for _, a := range r.Attribution {
		if a.SumError() > 0.10 {
			return fmt.Errorf("sim: E16 class %s stage-sum %v vs e2e %v — attribution off by %.1f%%",
				a.Class, a.StageSum, a.TotalE2E, a.SumError()*100)
		}
	}
	return nil
}

func totalFaults(counts map[chaos.Kind]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// ChaosSoakTable renders one E16 result as an experiment table.
func ChaosSoakTable(r *ChaosSoakResult) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E16 — chaos soak (%d servers, %d live profiles, %d events, %d faults, seed %d)",
			r.Servers, r.LiveProfiles, r.Events, len(r.Applied), r.Seed),
		"check", "value")
	t.AddRow("realtime delivered / identical", fmt.Sprintf("%d / %v", r.RealtimeDelivered, r.RealtimeIdentical))
	t.AddRow("failover delivered / identical", fmt.Sprintf("%d / %v", r.FailoverDelivered, r.FailoverIdentical))
	t.AddRow("normal prompt → total", fmt.Sprintf("%d → %d", r.NormalPrompt, r.NormalTotal))
	t.AddRow("detached total / identical", fmt.Sprintf("%d / %v", r.DetachedTotal, r.DetachedIdentical))
	t.AddRow("inherited parked", r.Inherited)
	t.AddRow("bulk prompt / digests / digest events", fmt.Sprintf("%d / %d / %d", r.BulkPrompt, r.Digests, r.DigestEvents))
	t.AddRow("promoted / resyncs", fmt.Sprintf("%v / %d", r.Promoted, r.Resyncs))
	t.AddRow("pipeline dropped", r.PipelineDropped)
	t.AddRow("messages / blocked / injected drops", fmt.Sprintf("%d / %d / %d", r.Messages, r.Blocked, r.InjectedDrops))
	for _, s := range r.SLO {
		t.AddRow(fmt.Sprintf("%s p50/p99 (SLO %v)", s.Class, s.Bound),
			fmt.Sprintf("%v / %v delivered=%d ok=%v", s.P50, s.P99, s.Delivered, s.OK))
	}
	if len(r.Attribution) > 0 {
		t.AddRow("trace spans / ring-dropped", fmt.Sprintf("%d / %d", r.TraceSpans, r.TraceDropped))
	}
	if len(r.HealthTransitions) > 0 {
		t.AddRow("health transitions / fire→clear cycles", fmt.Sprintf("%d / %d", len(r.HealthTransitions), r.HealthCycles))
	}
	t.AddRow("wall chaos / baseline", fmt.Sprintf("%v / %v", r.WallChaos.Round(time.Millisecond), r.WallBaseline.Round(time.Millisecond)))
	return t
}
