package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/core"
)

func TestGenerateTopologyShape(t *testing.T) {
	topo := GenerateTopology(TopologyConfig{
		Seed:              1,
		Servers:           40,
		SolitaryFraction:  0.5,
		ExtraLinkFraction: 0.2,
		Islands:           2,
	})
	if len(topo.Servers) != 40 {
		t.Fatalf("servers = %d", len(topo.Servers))
	}
	if len(topo.Solitary) != 20 {
		t.Errorf("solitary = %d, want 20", len(topo.Solitary))
	}
	if len(topo.Linked) != 20 {
		t.Errorf("linked = %d, want 20", len(topo.Linked))
	}
	// Solitary servers really have no neighbours.
	for _, s := range topo.Solitary {
		if n := topo.Net.Neighbors(s); len(n) != 0 {
			t.Errorf("solitary %s has neighbours %v", s, n)
		}
	}
	// Flooding from a linked server stays within its island: it must not
	// reach every linked server when there are 2 islands.
	reached, _ := topo.Net.FloodFrom(topo.Linked[0])
	if len(reached) == 0 || len(reached) >= len(topo.Linked) {
		t.Errorf("island flood reached %d of %d linked servers", len(reached), len(topo.Linked))
	}
}

func TestGenerateTopologyDeterministic(t *testing.T) {
	a := GenerateTopology(TopologyConfig{Seed: 7, Servers: 30, SolitaryFraction: 0.3, Islands: 2})
	b := GenerateTopology(TopologyConfig{Seed: 7, Servers: 30, SolitaryFraction: 0.3, Islands: 2})
	if strings.Join(a.Solitary, ",") != strings.Join(b.Solitary, ",") {
		t.Error("same seed produced different solitary sets")
	}
	if a.Net.String() != b.Net.String() {
		t.Errorf("topologies differ: %s vs %s", a.Net, b.Net)
	}
}

func TestGenerateWorkload(t *testing.T) {
	topo := GenerateTopology(TopologyConfig{Seed: 3, Servers: 10})
	w := topo.GenerateWorkload(WorkloadConfig{Collections: 5, Subscriptions: 20})
	if len(w.Collections) != 5 || len(w.Subs) != 20 {
		t.Fatalf("workload = %d colls, %d subs", len(w.Collections), len(w.Subs))
	}
	collNames := make(map[string]bool, len(w.Collections))
	for _, c := range w.Collections {
		if !strings.HasPrefix(c.Name, c.Owner+".") {
			t.Errorf("collection %s not owned by %s", c.Name, c.Owner)
		}
		collNames[c.Name] = true
	}
	for _, s := range w.Subs {
		if !collNames[s.Collection] {
			t.Errorf("sub %s references unknown collection %s", s.ID, s.Collection)
		}
	}
}

func TestRunBuildOverhead(t *testing.T) {
	// A realistic point: a 1000-document collection with 100 profiles.
	r, err := RunBuildOverhead(1000, 100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IndexTime <= 0 {
		t.Error("index time not measured")
	}
	if r.FilterTime < 0 {
		t.Error("negative filter time")
	}
	// The headline claim (§8): filtering extends the build process
	// insignificantly — well under the indexing cost itself.
	if r.OverheadPc > 50 {
		t.Errorf("filter overhead %0.1f%% of build time — claim violated", r.OverheadPc)
	}
}

func TestRunGDSScale(t *testing.T) {
	r, err := RunGDSScale(20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every server except the origin must be notified, plus the origin's
	// own local subscriber: 20 total.
	if r.Delivered != 20 {
		t.Errorf("delivered = %d, want 20", r.Delivered)
	}
	if r.Messages <= 0 {
		t.Error("no messages counted")
	}
}

func TestRunGDSScaleLinearity(t *testing.T) {
	small, err := RunGDSScale(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunGDSScale(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.Messages) / float64(small.Messages)
	// 4x servers should cost ~4x messages (within generous slack: the GDS
	// node count also grows).
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("message growth ratio = %0.2f for 4x servers (small=%d big=%d)",
			ratio, small.Messages, big.Messages)
	}
}

func TestRunRoutingComparisonShape(t *testing.T) {
	results, err := RunRoutingComparison(48, 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RoutingComparisonResult{}
	for _, r := range results {
		byName[r.Router] = r
	}
	hybrid := byName["hybrid-gds"]
	gsflood := byName["gs-flood"]
	pflood := byName["profile-flood"]

	// The paper's claims: the hybrid design produces no false positives or
	// negatives even on fragmented networks...
	if hybrid.Score.FalseNegatives != 0 || hybrid.Score.FalsePositives != 0 {
		t.Errorf("hybrid score = %+v", hybrid.Score)
	}
	// ...while GS flooding misses subscribers on disconnected fragments...
	if gsflood.Score.FalseNegatives == 0 {
		t.Error("gs-flood had no false negatives on a fragmented network")
	}
	if gsflood.Score.FNRate() <= hybrid.Score.FNRate() {
		t.Error("gs-flood should be strictly worse than hybrid")
	}
	// ...and profile flooding both misses (unreachable replicas) and keeps
	// notifying for cancelled profiles (dangling).
	if pflood.Score.FalseNegatives == 0 {
		t.Error("profile-flood had no false negatives")
	}
	_ = pflood.Score.FalsePositives // may be 0 on some seeds; asserted in dedicated test below
}

func TestRoutingComparisonDanglingAcrossSeeds(t *testing.T) {
	// Across several seeds, profile flooding must exhibit dangling-profile
	// false positives somewhere; the hybrid never may.
	foundFP := false
	for seed := int64(1); seed <= 8; seed++ {
		results, err := RunRoutingComparison(48, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Router == "hybrid-gds" && (r.Score.FalsePositives != 0 || r.Score.FalseNegatives != 0) {
				t.Fatalf("seed %d: hybrid imperfect: %+v", seed, r.Score)
			}
			if r.Router == "profile-flood" && r.Score.FalsePositives > 0 {
				foundFP = true
			}
		}
	}
	if !foundFP {
		t.Error("profile flooding never produced dangling false positives across 8 seeds")
	}
}

func TestRunAuxChain(t *testing.T) {
	for _, depth := range []int{1, 3} {
		r, err := RunAuxChain(depth, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Notifications != 1 {
			t.Errorf("depth %d: notifications = %d, want 1", depth, r.Notifications)
		}
		if int(r.Transforms) != depth {
			t.Errorf("depth %d: transforms = %d", depth, r.Transforms)
		}
		if r.ChainLen != depth+1 {
			t.Errorf("depth %d: chain len = %d, want %d", depth, r.ChainLen, depth+1)
		}
	}
}

func TestRunLossyBroadcast(t *testing.T) {
	// Lossless: perfect delivery.
	r0, err := RunLossyBroadcast(12, 5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r0.DeliveryRatio != 1.0 {
		t.Errorf("lossless ratio = %f", r0.DeliveryRatio)
	}
	// Lossy: strictly less.
	r1, err := RunLossyBroadcast(12, 5, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeliveryRatio >= 1.0 {
		t.Errorf("lossy ratio = %f", r1.DeliveryRatio)
	}
	if r1.Delivered == 0 {
		t.Error("nothing delivered at 30% loss — implausible")
	}
}

func TestRunPartitionRecovery(t *testing.T) {
	r, err := RunPartitionRecovery(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.DuringPartition != 0 {
		t.Errorf("notifications during partition = %d", r.DuringPartition)
	}
	if r.AfterHeal != 3 {
		t.Errorf("after heal = %d, want 3 (one per cycle)", r.AfterHeal)
	}
	if r.QueuedPeak == 0 {
		t.Error("nothing was ever queued")
	}
}

func TestRunContinuousSearch(t *testing.T) {
	r, err := RunContinuousSearch(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement {
		t.Errorf("search/alert disagreement: search=%d alerted=%d", r.SearchHits, r.AlertedDocs)
	}
	if r.SearchHits == 0 {
		t.Error("query matched nothing — workload broken")
	}
	if r.WatchAlerts != r.WatchExpected {
		t.Errorf("watch alerts = %d, want %d", r.WatchAlerts, r.WatchExpected)
	}
}

func TestClusterAddServerErrors(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 1, GDSNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddServer("A", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddServer("A", 0); err == nil {
		t.Error("duplicate server accepted")
	}
	if _, err := c.AddServer("B", 99); err == nil {
		t.Error("bad node index accepted")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ i, b, want int }{
		{0, 2, 0}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2}, {6, 2, 2}, {7, 2, 3},
		{0, 4, 0}, {4, 4, 1}, {5, 4, 2},
	}
	for _, c := range cases {
		if got := treeDepth(c.i, c.b); got != c.want {
			t.Errorf("treeDepth(%d, %d) = %d, want %d", c.i, c.b, got, c.want)
		}
	}
}

func TestRunDeliveryRecovery(t *testing.T) {
	r, err := RunDeliveryRecovery(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveDelivered != 1 {
		t.Errorf("live delivered = %d, want 1", r.LiveDelivered)
	}
	if r.ParkedWhileOffline != 4 {
		t.Errorf("parked while offline = %d, want 4", r.ParkedWhileOffline)
	}
	if r.DrainedOnReconnect != 4 {
		t.Errorf("drained on reconnect = %d, want 4 (delayed, not lost)", r.DrainedOnReconnect)
	}
}

func TestRunDeliveryThroughput(t *testing.T) {
	// Smoke-check both modes deliver everything; relative speed is the
	// benchmark suite's business, correctness is this test's.
	sync, err := RunDeliveryThroughput(200, 8, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Notifications != 200 || sync.Mode != "sync" {
		t.Errorf("sync result = %+v", sync)
	}
	piped, err := RunDeliveryThroughput(200, 8, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Notifications != 200 {
		t.Errorf("pipeline result = %+v", piped)
	}
	if piped.Batches >= 200 {
		t.Errorf("batches = %d for 200 notifs — batching not amortising", piped.Batches)
	}
}

func TestRunContentRoutingAcceptance(t *testing.T) {
	// The E12 acceptance bar: on a tree of ≥ 8 servers, content routing
	// delivers at least the multicast-mode match count with strictly fewer
	// total GDS messages than flooding.
	const servers, interested, rounds = 12, 3, 4
	results := make(map[string]ContentRoutingResult, 3)
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunContentRouting(servers, interested, rounds, mode, 2005)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[r.Mode] = r
	}
	want := interested * rounds
	for mode, r := range results {
		if r.Notifications != want {
			t.Errorf("%s delivered %d notifications, want %d", mode, r.Notifications, want)
		}
		if r.AvgLatency <= 0 {
			t.Errorf("%s reported no delivery latency", mode)
		}
	}
	if c, m := results["content"], results["multicast"]; c.Notifications < m.Notifications {
		t.Errorf("content delivered %d < multicast %d", c.Notifications, m.Notifications)
	}
	if c, f := results["content"], results["broadcast"]; c.Messages >= f.Messages {
		t.Errorf("content used %d messages, flooding %d — want strictly fewer", c.Messages, f.Messages)
	}
	// Content also beats collection-granular multicast on this workload:
	// the per-document events of each rebuild are pruned by event type.
	if c, m := results["content"], results["multicast"]; c.Messages >= m.Messages {
		t.Errorf("content used %d messages, multicast %d — type pruning saved nothing", c.Messages, m.Messages)
	}
}

func TestRunCompositeAlertsAcceptance(t *testing.T) {
	// The E13 acceptance bar: on a 16-server tree, every routing mode
	// synthesizes exactly the expected composite notifications — sequence,
	// accumulation and digest fire identically, expired windows produce
	// nothing — and content routing still undercuts flooding on messages.
	const servers, rounds = 16, 4
	wantSeq, wantSeqWin, wantCount, wantDigest, wantDigestEvents := expectedCompositeAlerts(rounds)
	results := make(map[string]CompositeAlertsResult, 3)
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunCompositeAlerts(servers, rounds, mode, 2005)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[r.Mode] = r
		if r.Sequence != wantSeq {
			t.Errorf("%s: sequence fired %d, want %d", r.Mode, r.Sequence, wantSeq)
		}
		if r.SequenceWindowed != wantSeqWin {
			t.Errorf("%s: expired-window sequence fired %d, want %d", r.Mode, r.SequenceWindowed, wantSeqWin)
		}
		if r.Count != wantCount {
			t.Errorf("%s: accumulation fired %d, want %d", r.Mode, r.Count, wantCount)
		}
		if r.Digest != wantDigest || r.DigestEvents != wantDigestEvents {
			t.Errorf("%s: digest = %d flushes / %d events, want %d / %d",
				r.Mode, r.Digest, r.DigestEvents, wantDigest, wantDigestEvents)
		}
		if r.WindowsExpired != int64(rounds) {
			t.Errorf("%s: windows expired = %d, want %d", r.Mode, r.WindowsExpired, rounds)
		}
		if r.LiveInstances != 1 {
			t.Errorf("%s: live instances = %d, want 1 (the leftover accumulation)", r.Mode, r.LiveInstances)
		}
	}
	if c, f := results["content"], results["broadcast"]; c.Messages >= f.Messages {
		t.Errorf("content used %d messages, flooding %d — want strictly fewer", c.Messages, f.Messages)
	}
}

func TestCompositeAlertsTableChecksEquivalence(t *testing.T) {
	tbl, err := CompositeAlertsTable(8, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || tbl.Rows() != 3 {
		t.Fatalf("table = %+v", tbl)
	}
}

func TestContentRoutingTableChecksEquivalence(t *testing.T) {
	tbl, err := ContentRoutingTable(8, 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
}

func TestRunQoSOverloadAcceptance(t *testing.T) {
	// The E15 acceptance point: a 16-server tree at 10x overload (30 events
	// against a per-subscriber budget of 3) must, in every routing mode,
	// deliver realtime loss-free with bounded p99, defer (not lose) normal,
	// coalesce bulk into one digest carrying every shed event, and account
	// for every match.
	const servers, events, burst = 16, 30, 3
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunQoSOverload(servers, events, burst, mode, 1)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := qosOverloadCheck(r, 30*time.Second); err != nil {
			t.Error(err)
		}
	}
}

func TestQoSOverloadTableAssertsDegradation(t *testing.T) {
	tbl, err := QoSOverloadTable(8, 20, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || tbl.Rows() != 3 {
		t.Fatalf("table = %+v", tbl)
	}
}

func TestRunReplicaFailoverAcceptance(t *testing.T) {
	// The E14 acceptance point: a 16-server tree, the primary killed after
	// half the publisher's rounds and its standby promoted, must deliver
	// exactly the failure-free notification set in every routing mode.
	for _, mode := range []core.RoutingMode{core.RouteBroadcast, core.RouteMulticast, core.RouteContent} {
		r, err := RunReplicaFailover(16, 6, mode, 1)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !r.Identical || r.Baseline != r.Failover {
			t.Errorf("%s: failover delivered %d notifications vs %d baseline (identical=%v)",
				mode, r.Failover, r.Baseline, r.Identical)
		}
		if r.Inherited == 0 {
			t.Errorf("%s: the standby inherited no parked notifications — the detached-client path is untested", mode)
		}
		if r.PreKill == 0 || r.PostPromote == 0 {
			t.Errorf("%s: kill point did not split deliveries (pre=%d post=%d)", mode, r.PreKill, r.PostPromote)
		}
		if r.BaselineComposite != r.FailoverComposite {
			t.Errorf("%s: composite firings %d vs %d baseline", mode, r.FailoverComposite, r.BaselineComposite)
		}
	}
}

func TestReplicaFailoverTableAssertsZeroLoss(t *testing.T) {
	tbl, err := ReplicaFailoverTable(8, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || tbl.Rows() != 3 {
		t.Fatalf("table = %+v", tbl)
	}
}
