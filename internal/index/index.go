// Package index implements the retrieval substrate of the Greenstone model:
// an inverted index with boolean queries and term-frequency ranking, browse
// classifiers (metadata-sorted shelves), and single-document query matching
// used to evaluate profile sub-queries against incoming events (paper §5:
// "search queries can be used as profile queries").
package index

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Doc is the minimal document view the index needs.
type Doc struct {
	// ID uniquely identifies the document within its collection.
	ID string
	// Fields maps metadata field names (e.g. "dc.Title") to values.
	Fields map[string][]string
	// Text is the full-text content.
	Text string
}

// posting records one document's occurrences of a term.
type posting struct {
	docID string
	count int
}

// fieldIndex is an inverted index over one searchable field (or full text).
type fieldIndex struct {
	postings map[string][]posting // term -> postings, sorted by docID
	docLens  map[string]int       // docID -> token count
}

// TextField is the pseudo-field name under which full text is indexed.
const TextField = "text"

// Index is an immutable-after-Build inverted index over a set of documents.
// Build replaces the entire contents, mirroring Greenstone's batch collection
// build process; queries are safe for concurrent use.
type Index struct {
	mu     sync.RWMutex
	fields map[string]*fieldIndex
	docs   map[string]Doc
	nDocs  int
}

// New returns an empty index.
func New() *Index {
	return &Index{fields: make(map[string]*fieldIndex), docs: make(map[string]Doc)}
}

// Build (re)indexes docs over the given metadata fields plus full text.
// A nil fieldNames indexes every metadata field present.
func (ix *Index) Build(docs []Doc, fieldNames []string) {
	fields := make(map[string]*fieldIndex)
	docMap := make(map[string]Doc, len(docs))

	wanted := map[string]bool{}
	for _, f := range fieldNames {
		wanted[f] = true
	}
	auto := len(fieldNames) == 0

	add := func(field, docID, text string) {
		fi := fields[field]
		if fi == nil {
			fi = &fieldIndex{postings: make(map[string][]posting), docLens: make(map[string]int)}
			fields[field] = fi
		}
		tokens := Tokenize(text)
		fi.docLens[docID] += len(tokens)
		counts := make(map[string]int, len(tokens))
		for _, tok := range tokens {
			counts[tok]++
		}
		for term, n := range counts {
			fi.postings[term] = append(fi.postings[term], posting{docID: docID, count: n})
		}
	}

	for _, d := range docs {
		docMap[d.ID] = d
		add(TextField, d.ID, d.Text)
		for field, values := range d.Fields {
			if !auto && !wanted[field] {
				continue
			}
			add(field, d.ID, strings.Join(values, " "))
		}
	}
	for _, fi := range fields {
		for term := range fi.postings {
			ps := fi.postings[term]
			sort.Slice(ps, func(i, j int) bool { return ps[i].docID < ps[j].docID })
		}
	}

	ix.mu.Lock()
	ix.fields = fields
	ix.docs = docMap
	ix.nDocs = len(docs)
	ix.mu.Unlock()
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.nDocs
}

// Doc returns an indexed document by ID.
func (ix *Index) Doc(id string) (Doc, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	return d, ok
}

// Tokenize lowercases and splits text into letter/digit runs. It is the
// single tokenizer used by indexing, querying and event matching so that
// continuous search behaves identically to interactive search.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Hit is one scored search result.
type Hit struct {
	DocID string
	Score float64
}

// Search evaluates a parsed query against one field and returns hits sorted
// by descending score (TF-IDF-lite), ties broken by ascending DocID for
// deterministic output. limit <= 0 means unlimited.
func (ix *Index) Search(q *Query, field string, limit int) []Hit {
	if q == nil {
		return nil
	}
	if field == "" {
		field = TextField
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fi := ix.fields[field]
	if fi == nil {
		return nil
	}
	scores := ix.eval(q, fi)
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{DocID: id, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// eval returns docID -> score for q over fi.
func (ix *Index) eval(q *Query, fi *fieldIndex) map[string]float64 {
	switch q.Kind {
	case KindTerm:
		return ix.termScores(q.Term, fi)
	case KindAnd:
		var acc map[string]float64
		for _, child := range q.Children {
			s := ix.eval(child, fi)
			if acc == nil {
				acc = s
				continue
			}
			for id := range acc {
				cs, ok := s[id]
				if !ok {
					delete(acc, id)
				} else {
					acc[id] += cs
				}
			}
		}
		if acc == nil {
			acc = map[string]float64{}
		}
		return acc
	case KindOr:
		acc := map[string]float64{}
		for _, child := range q.Children {
			for id, cs := range ix.eval(child, fi) {
				acc[id] += cs
			}
		}
		return acc
	case KindNot:
		// NOT is only meaningful inside an AND; evaluated standalone it
		// selects all documents not matching the child.
		excluded := ix.eval(q.Children[0], fi)
		acc := map[string]float64{}
		for id := range fi.docLens {
			if _, bad := excluded[id]; !bad {
				acc[id] = 0.1
			}
		}
		return acc
	default:
		return map[string]float64{}
	}
}

func (ix *Index) termScores(term string, fi *fieldIndex) map[string]float64 {
	out := map[string]float64{}
	ps := fi.postings[term]
	if len(ps) == 0 {
		return out
	}
	idf := math.Log(1 + float64(ix.nDocs)/float64(len(ps)))
	for _, p := range ps {
		tf := float64(p.count) / math.Max(1, float64(fi.docLens[p.docID]))
		out[p.docID] = tf * idf
	}
	return out
}

// Terms reports the number of distinct terms indexed for a field.
func (ix *Index) Terms(field string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	return len(fi.postings)
}

// MatchDoc evaluates a query directly against a single document without any
// index — this is how profile sub-queries filter incoming event documents
// (the event carries the doc; there is nothing indexed yet on the receiving
// server).
func MatchDoc(q *Query, d Doc, field string) bool {
	if q == nil {
		return false
	}
	var text string
	if field == "" || field == TextField {
		text = d.Text
	} else {
		text = strings.Join(d.Fields[field], " ")
	}
	toks := Tokenize(text)
	set := make(map[string]bool, len(toks))
	for _, t := range toks {
		set[t] = true
	}
	return matchSet(q, set)
}

func matchSet(q *Query, set map[string]bool) bool {
	switch q.Kind {
	case KindTerm:
		return set[q.Term]
	case KindAnd:
		for _, c := range q.Children {
			if !matchSet(c, set) {
				return false
			}
		}
		return true
	case KindOr:
		for _, c := range q.Children {
			if matchSet(c, set) {
				return true
			}
		}
		return false
	case KindNot:
		return !matchSet(q.Children[0], set)
	default:
		return false
	}
}

// Classifier is a browse structure: documents grouped into labelled buckets
// by a metadata field (Greenstone's AZList-style classifiers).
type Classifier struct {
	// Field is the metadata field the classifier sorts by.
	Field string
	// Buckets are sorted by label; each bucket's doc IDs are sorted too.
	Buckets []Bucket
}

// Bucket is one shelf of a classifier.
type Bucket struct {
	Label  string
	DocIDs []string
}

// BuildClassifier groups docs by the first letter of the given field
// (classic A-Z list). Documents missing the field land under "#".
func BuildClassifier(docs []Doc, field string) *Classifier {
	byLabel := make(map[string][]string)
	for _, d := range docs {
		vals := d.Fields[field]
		label := "#"
		if len(vals) > 0 {
			trimmed := strings.TrimSpace(vals[0])
			if trimmed != "" {
				label = strings.ToUpper(string([]rune(trimmed)[0]))
			}
		}
		byLabel[label] = append(byLabel[label], d.ID)
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	c := &Classifier{Field: field, Buckets: make([]Bucket, 0, len(labels))}
	for _, l := range labels {
		ids := byLabel[l]
		sort.Strings(ids)
		c.Buckets = append(c.Buckets, Bucket{Label: l, DocIDs: ids})
	}
	return c
}

// String renders a compact description, e.g. "AZList(dc.Title): 5 buckets".
func (c *Classifier) String() string {
	return fmt.Sprintf("AZList(%s): %d buckets", c.Field, len(c.Buckets))
}
