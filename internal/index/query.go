package index

import (
	"fmt"
	"strings"
)

// Kind discriminates query node types.
type Kind int

// Query node kinds.
const (
	// KindTerm matches a single token.
	KindTerm Kind = iota + 1
	// KindAnd requires all children.
	KindAnd
	// KindOr requires at least one child.
	KindOr
	// KindNot inverts its single child.
	KindNot
)

// Query is a boolean retrieval query tree.
type Query struct {
	Kind     Kind
	Term     string
	Children []*Query
}

// Term builds a term query node (the term is tokenized; multi-token input
// becomes an AND of its tokens).
func Term(s string) *Query {
	toks := Tokenize(s)
	switch len(toks) {
	case 0:
		return nil
	case 1:
		return &Query{Kind: KindTerm, Term: toks[0]}
	default:
		q := &Query{Kind: KindAnd}
		for _, t := range toks {
			q.Children = append(q.Children, &Query{Kind: KindTerm, Term: t})
		}
		return q
	}
}

// And combines children conjunctively; nils are dropped.
func And(children ...*Query) *Query { return combine(KindAnd, children) }

// Or combines children disjunctively; nils are dropped.
func Or(children ...*Query) *Query { return combine(KindOr, children) }

// Not inverts q.
func Not(q *Query) *Query {
	if q == nil {
		return nil
	}
	return &Query{Kind: KindNot, Children: []*Query{q}}
}

func combine(kind Kind, children []*Query) *Query {
	kept := make([]*Query, 0, len(children))
	for _, c := range children {
		if c != nil {
			kept = append(kept, c)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return &Query{Kind: kind, Children: kept}
	}
}

// String renders the query in the textual query language accepted by
// ParseQuery, so queries round-trip (profile serialisation depends on this).
func (q *Query) String() string {
	if q == nil {
		return ""
	}
	switch q.Kind {
	case KindTerm:
		return q.Term
	case KindAnd:
		return joinChildren(q.Children, " AND ")
	case KindOr:
		return joinChildren(q.Children, " OR ")
	case KindNot:
		return "NOT " + parenthesize(q.Children[0])
	default:
		return "?"
	}
}

func joinChildren(children []*Query, sep string) string {
	parts := make([]string, 0, len(children))
	for _, c := range children {
		parts = append(parts, parenthesize(c))
	}
	return strings.Join(parts, sep)
}

func parenthesize(q *Query) string {
	if q.Kind == KindTerm {
		return q.String()
	}
	return "(" + q.String() + ")"
}

// ParseQuery parses the retrieval query language:
//
//	query  = or
//	or     = and { "OR" and }
//	and    = unary { ["AND"] unary }     (juxtaposition is AND)
//	unary  = ["NOT"] atom
//	atom   = "(" query ")" | term
//
// Operators are case-insensitive keywords. Everything else tokenizes via
// the index tokenizer. A query of only operators or empty input is an error.
func ParseQuery(s string) (*Query, error) {
	p := &queryParser{tokens: lexQuery(s)}
	q, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("index: trailing input at %q", p.peek())
	}
	if q == nil {
		return nil, fmt.Errorf("index: empty query")
	}
	return q, nil
}

func lexQuery(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '(' || r == ')':
			flush()
			out = append(out, string(r))
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

type queryParser struct {
	tokens []string
	pos    int
}

func (p *queryParser) done() bool { return p.pos >= len(p.tokens) }

func (p *queryParser) peek() string {
	if p.done() {
		return ""
	}
	return p.tokens[p.pos]
}

func (p *queryParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func isKeyword(tok, kw string) bool { return strings.EqualFold(tok, kw) }

func (p *queryParser) parseOr() (*Query, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Query{left}
	for !p.done() && isKeyword(p.peek(), "OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return combine(KindOr, children), nil
}

func (p *queryParser) parseAnd() (*Query, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []*Query{left}
	for !p.done() {
		tok := p.peek()
		if tok == ")" || isKeyword(tok, "OR") {
			break
		}
		if isKeyword(tok, "AND") {
			p.next()
			if p.done() {
				return nil, fmt.Errorf("index: dangling AND")
			}
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return combine(KindAnd, children), nil
}

func (p *queryParser) parseUnary() (*Query, error) {
	if !p.done() && isKeyword(p.peek(), "NOT") {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if child == nil {
			return nil, fmt.Errorf("index: NOT without operand")
		}
		return Not(child), nil
	}
	return p.parseAtom()
}

func (p *queryParser) parseAtom() (*Query, error) {
	if p.done() {
		return nil, fmt.Errorf("index: unexpected end of query")
	}
	tok := p.next()
	switch {
	case tok == "(":
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("index: missing closing parenthesis")
		}
		return q, nil
	case tok == ")":
		return nil, fmt.Errorf("index: unexpected closing parenthesis")
	case isKeyword(tok, "AND") || isKeyword(tok, "OR"):
		return nil, fmt.Errorf("index: operator %q without left operand", tok)
	default:
		q := Term(tok)
		if q == nil {
			return nil, fmt.Errorf("index: term %q has no indexable tokens", tok)
		}
		return q, nil
	}
}
