package index

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func corpus() []Doc {
	return []Doc{
		{ID: "d1", Fields: map[string][]string{"dc.Title": {"Music of New Zealand"}, "dc.Creator": {"Smith"}},
			Text: "traditional music from new zealand and the pacific islands"},
		{ID: "d2", Fields: map[string][]string{"dc.Title": {"Pacific Birds"}, "dc.Creator": {"Jones"}},
			Text: "a survey of birds across the pacific region"},
		{ID: "d3", Fields: map[string][]string{"dc.Title": {"Digital Libraries"}, "dc.Creator": {"Smith"}},
			Text: "digital libraries provide search and browse access to collections"},
		{ID: "d4", Fields: map[string][]string{"dc.Title": {"music theory"}, "dc.Creator": {"Brown"}},
			Text: "an introduction to music theory and harmony"},
		{ID: "d5", Fields: map[string][]string{"dc.Creator": {"Ngata"}},
			Text: "waiata collections of the maori people of new zealand"},
	}
}

func build(t *testing.T) *Index {
	t.Helper()
	ix := New()
	ix.Build(corpus(), nil)
	return ix
}

func ids(hits []Hit) []string {
	out := make([]string, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.DocID)
	}
	return out
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! The 2nd e-mail: foo_bar")
	want := []string{"hello", "world", "the", "2nd", "e", "mail", "foo", "bar"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("")) != 0 || len(Tokenize("  ...  ")) != 0 {
		t.Error("empty input should produce no tokens")
	}
	// Unicode letters survive and lowercase.
	if got := Tokenize("Māori WAIATA"); got[0] != "māori" || got[1] != "waiata" {
		t.Errorf("unicode tokens = %v", got)
	}
}

func TestSearchSingleTerm(t *testing.T) {
	ix := build(t)
	hits := ix.Search(Term("music"), TextField, 0)
	got := ids(hits)
	if len(got) != 2 {
		t.Fatalf("music hits = %v", got)
	}
	// Both d1 and d4 mention music; d4's text is shorter so its tf is higher.
	if got[0] != "d4" || got[1] != "d1" {
		t.Errorf("ranking = %v, want [d4 d1]", got)
	}
}

func TestSearchFieldRestricted(t *testing.T) {
	ix := build(t)
	hits := ix.Search(Term("music"), "dc.Title", 0)
	if len(hits) != 2 {
		t.Fatalf("title hits = %v", ids(hits))
	}
	hits = ix.Search(Term("smith"), "dc.Creator", 0)
	if len(hits) != 2 {
		t.Fatalf("creator hits = %v", ids(hits))
	}
	if hits := ix.Search(Term("smith"), "dc.NoSuchField", 0); len(hits) != 0 {
		t.Errorf("unknown field produced hits: %v", ids(hits))
	}
}

func TestSearchBoolean(t *testing.T) {
	ix := build(t)
	and := And(Term("new"), Term("zealand"), Term("music"))
	if got := ids(ix.Search(and, TextField, 0)); len(got) != 1 || got[0] != "d1" {
		t.Errorf("AND hits = %v, want [d1]", got)
	}
	or := Or(Term("birds"), Term("harmony"))
	if got := ids(ix.Search(or, TextField, 0)); len(got) != 2 {
		t.Errorf("OR hits = %v", got)
	}
	andNot := And(Term("pacific"), Not(Term("birds")))
	if got := ids(ix.Search(andNot, TextField, 0)); len(got) != 1 || got[0] != "d1" {
		t.Errorf("AND NOT hits = %v, want [d1]", got)
	}
}

func TestSearchLimitAndDeterminism(t *testing.T) {
	ix := build(t)
	q := Or(Term("the"), Term("of"))
	all := ids(ix.Search(q, TextField, 0))
	if len(all) < 3 {
		t.Fatalf("common terms hit %v", all)
	}
	limited := ids(ix.Search(q, TextField, 2))
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %v", limited)
	}
	// Re-running yields the identical order.
	again := ids(ix.Search(q, TextField, 0))
	if strings.Join(all, ",") != strings.Join(again, ",") {
		t.Errorf("non-deterministic ordering: %v vs %v", all, again)
	}
}

func TestRebuildReplaces(t *testing.T) {
	ix := build(t)
	ix.Build([]Doc{{ID: "x1", Text: "entirely new corpus"}}, nil)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after rebuild", ix.Len())
	}
	if hits := ix.Search(Term("music"), TextField, 0); len(hits) != 0 {
		t.Errorf("stale hits after rebuild: %v", ids(hits))
	}
	if _, ok := ix.Doc("d1"); ok {
		t.Error("old doc still retrievable")
	}
	if _, ok := ix.Doc("x1"); !ok {
		t.Error("new doc missing")
	}
}

func TestBuildSelectedFields(t *testing.T) {
	ix := New()
	ix.Build(corpus(), []string{"dc.Title"})
	if hits := ix.Search(Term("smith"), "dc.Creator", 0); len(hits) != 0 {
		t.Errorf("unindexed field searchable: %v", ids(hits))
	}
	if hits := ix.Search(Term("music"), "dc.Title", 0); len(hits) != 2 {
		t.Errorf("selected field not searchable: %v", ids(hits))
	}
	// Full text is always available.
	if hits := ix.Search(Term("harmony"), TextField, 0); len(hits) != 1 {
		t.Errorf("text field missing: %v", ids(hits))
	}
}

func TestMatchDoc(t *testing.T) {
	d := Doc{
		ID:     "d9",
		Fields: map[string][]string{"dc.Title": {"Whale Songs"}},
		Text:   "recordings of humpback whale songs in the south pacific",
	}
	cases := []struct {
		query string
		field string
		want  bool
	}{
		{"whale AND songs", "", true},
		{"whale AND penguins", "", false},
		{"penguins OR pacific", "", true},
		{"NOT penguins", "", true},
		{"whale", "dc.Title", true},
		{"humpback", "dc.Title", false},
		{"humpback", TextField, true},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.query)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.query, err)
		}
		if got := MatchDoc(q, d, c.field); got != c.want {
			t.Errorf("MatchDoc(%q, field=%q) = %v, want %v", c.query, c.field, got, c.want)
		}
	}
	if MatchDoc(nil, d, "") {
		t.Error("nil query matched")
	}
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"music", "music"},
		{"new zealand", "new AND zealand"},
		{"a AND b", "a AND b"},
		{"a OR b AND c", "a OR (b AND c)"},
		{"(a OR b) AND c", "(a OR b) AND c"},
		{"NOT a", "NOT a"},
		{"a AND NOT (b OR c)", "a AND (NOT (b OR c))"},
		{"and OR or", ""}, // operators as terms: error
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseQuery(%q) succeeded: %v", c.in, q)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if q.String() != c.want {
			t.Errorf("ParseQuery(%q).String() = %q, want %q", c.in, q.String(), c.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "(a", "a)", "a AND", "NOT", "AND a", "( )"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

// Property: parse → render → parse is a fixed point.
func TestParseRenderFixedPoint(t *testing.T) {
	seeds := []string{
		"music", "a AND b AND c", "a OR b OR c", "NOT x",
		"(a OR b) AND (c OR d)", "a AND NOT b", "x y z",
	}
	for _, s := range seeds {
		q1, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		r1 := q1.String()
		q2, err := ParseQuery(r1)
		if err != nil {
			t.Fatalf("reparse %q: %v", r1, err)
		}
		if q2.String() != r1 {
			t.Errorf("not a fixed point: %q -> %q -> %q", s, r1, q2.String())
		}
	}
}

// Property: a document containing all tokens of a conjunctive query always
// matches via MatchDoc and is always found via Search.
func TestSearchMatchDocAgreement(t *testing.T) {
	f := func(words []string) bool {
		// Build a doc from the words plus noise.
		kept := make([]string, 0, len(words))
		for _, w := range words {
			toks := Tokenize(w)
			kept = append(kept, toks...)
			if len(kept) >= 4 {
				break
			}
		}
		if len(kept) == 0 {
			return true
		}
		text := strings.Join(kept, " ") + " filler words here"
		d := Doc{ID: "p1", Text: text}
		ix := New()
		ix.Build([]Doc{d}, nil)
		q := And(func() []*Query {
			qs := make([]*Query, 0, len(kept))
			for _, k := range kept {
				qs = append(qs, Term(k))
			}
			return qs
		}()...)
		inSearch := len(ix.Search(q, TextField, 0)) == 1
		inMatch := MatchDoc(q, d, TextField)
		return inSearch && inMatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifier(t *testing.T) {
	c := BuildClassifier(corpus(), "dc.Title")
	if c.Field != "dc.Title" {
		t.Errorf("field = %q", c.Field)
	}
	labels := make([]string, 0, len(c.Buckets))
	for _, b := range c.Buckets {
		labels = append(labels, b.Label)
	}
	// d5 has no title -> "#"; titles: Music, Pacific, Digital, music.
	want := []string{"#", "D", "M", "P"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("labels = %v, want %v", labels, want)
	}
	for _, b := range c.Buckets {
		if b.Label == "M" && len(b.DocIDs) != 2 {
			t.Errorf("M bucket = %v", b.DocIDs)
		}
	}
	if s := c.String(); !strings.Contains(s, "4 buckets") {
		t.Errorf("String = %q", s)
	}
}

func TestClassifierEmptyValues(t *testing.T) {
	docs := []Doc{
		{ID: "a", Fields: map[string][]string{"f": {"  "}}},
		{ID: "b", Fields: map[string][]string{"f": {""}}},
		{ID: "c"},
	}
	c := BuildClassifier(docs, "f")
	if len(c.Buckets) != 1 || c.Buckets[0].Label != "#" {
		t.Fatalf("buckets = %+v", c.Buckets)
	}
	if len(c.Buckets[0].DocIDs) != 3 {
		t.Errorf("# bucket = %v", c.Buckets[0].DocIDs)
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix := build(t)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				ix.Search(Term("music"), TextField, 0)
			}
			done <- true
		}()
	}
	// Concurrent rebuilds.
	go func() {
		for i := 0; i < 20; i++ {
			ix.Build(corpus(), nil)
		}
		done <- true
	}()
	for i := 0; i < 9; i++ {
		<-done
	}
}

func BenchmarkIndexBuild1k(b *testing.B) {
	docs := syntheticDocs(1000)
	ix := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Build(docs, nil)
	}
}

func BenchmarkSearchTerm(b *testing.B) {
	ix := New()
	ix.Build(syntheticDocs(5000), nil)
	q := Term("word7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, TextField, 10)
	}
}

func syntheticDocs(n int) []Doc {
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, Doc{
			ID: fmt.Sprintf("doc-%d", i),
			Fields: map[string][]string{
				"dc.Title": {fmt.Sprintf("title word%d alpha", i%13)},
			},
			Text: fmt.Sprintf("body word%d word%d common text here", i%13, i%7),
		})
	}
	return docs
}
