package greenstone_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
)

// End-to-end content routing (core.RouteContent) through assembled
// clusters: servers advertise profile digests, the directory routes
// events by attributes, and mode switches tear their state down eagerly.

func TestContentModeDeliversSameNotifications(t *testing.T) {
	const n, k = 12, 3
	// Broadcast reference run.
	cb, namesB := buildInterestCluster(t, n, k, core.RouteBroadcast)
	cb.TR.ResetStats()
	publishOnce(t, cb, namesB[0])
	broadcastNotified := countNotified(cb, namesB, k)
	broadcastMsgs := cb.TR.Stats().Sent

	// Content run.
	cc, namesC := buildInterestCluster(t, n, k, core.RouteContent)
	cc.TR.ResetStats()
	publishOnce(t, cc, namesC[0])
	contentNotified := countNotified(cc, namesC, k)
	contentMsgs := cc.TR.Stats().Sent

	if broadcastNotified != k || contentNotified != k {
		t.Fatalf("notified: broadcast=%d content=%d, want %d", broadcastNotified, contentNotified, k)
	}
	if contentMsgs >= broadcastMsgs {
		t.Errorf("content routing %d msgs not cheaper than broadcast %d", contentMsgs, broadcastMsgs)
	}
	// Non-subscribers received no event deliveries at all.
	for i := k + 1; i < n; i++ {
		if got := len(cc.Notifications(namesC[i], "u")); got != 0 {
			t.Errorf("non-subscriber %s notified %d times", namesC[i], got)
		}
	}
}

func TestContentModePrunesByEventType(t *testing.T) {
	// The subscriber wants only collection-built events of X; a multicast
	// group per collection cannot express that, the content digest can.
	c, names := buildInterestCluster(t, 6, 1, core.RouteContent)
	publishOnce(t, c, names[0]) // first build: collection-built only
	if got := len(c.Notifications(names[1], "u")); got != 1 {
		t.Fatalf("subscriber notifications = %d, want 1", got)
	}
	// A rebuild with a changed document emits collection-rebuilt +
	// documents-changed, neither of which the digest matches: the
	// directory prunes them before they reach the subscriber's server.
	docs := []*collection.Document{{ID: "d1", Content: "changed payload"}}
	if _, _, err := c.Server(names[0]).Build(context.Background(), "X", docs); err != nil {
		t.Fatal(err)
	}
	c.Settle(context.Background())
	received := c.Service(names[1]).Stats().EventsReceived
	published := c.Service(names[0]).Stats().EventsPublished
	if published < 3 {
		t.Fatalf("published only %d events; rebuild emitted no extra types", published)
	}
	if received != 1 {
		t.Errorf("subscriber's server received %d of %d published events, want 1 (type pruning)", received, published)
	}
	if got := len(c.Notifications(names[1], "u")); got != 1 {
		t.Errorf("subscriber notifications after rebuild = %d, want still 1", got)
	}
}

func TestContentModeChurnReadvertises(t *testing.T) {
	c, names := buildInterestCluster(t, 4, 1, core.RouteContent)
	subscriber := names[1]
	ids := c.Service(subscriber).ProfilesOf("u")
	if len(ids) != 1 {
		t.Fatalf("profiles = %v", ids)
	}
	if err := c.Service(subscriber).Unsubscribe("u", ids[0]); err != nil {
		t.Fatal(err)
	}
	c.TR.ResetStats()
	publishOnce(t, c, names[0])
	if got := len(c.Notifications(subscriber, "u")); got != 0 {
		t.Fatalf("unsubscribed client notified %d times", got)
	}
	// The empty digest propagated: no event envelope reached the
	// ex-subscriber's server at all.
	if got := c.TR.Stats().PerType[protocol.MsgEvent]; got != 0 {
		t.Errorf("event deliveries after last unsubscribe = %d, want 0", got)
	}

	// Subscribing again re-widens the digest (the next publish is a
	// rebuild, so the new interest targets collection-rebuilt).
	c.Notifier(subscriber, "u")
	if _, err := c.Service(subscriber).Subscribe("u", profile.MustParse(
		fmt.Sprintf(`collection = "%s.X" AND event.type = "collection-rebuilt"`, names[0]))); err != nil {
		t.Fatal(err)
	}
	publishOnce(t, c, names[0])
	if got := len(c.Notifications(subscriber, "u")); got != 1 {
		t.Errorf("re-subscribed client notifications = %d, want 1", got)
	}
}

func TestContentModeCoveredSubscribeSendsNoAdvertisement(t *testing.T) {
	c, names := buildInterestCluster(t, 4, 1, core.RouteContent)
	subscriber := names[1]
	c.TR.ResetStats()
	// Strictly narrower than the existing interest: covered, no message.
	if _, err := c.Service(subscriber).Subscribe("u", profile.MustParse(
		fmt.Sprintf(`collection = "%s.X" AND event.type = "collection-built" AND dc.Title contains "music"`, names[0]))); err != nil {
		t.Fatal(err)
	}
	if got := c.TR.Stats().PerType[protocol.MsgAdvertiseProfiles]; got != 0 {
		t.Errorf("covered subscription sent %d advertisements, want 0", got)
	}
	// A genuinely new interest does advertise.
	if _, err := c.Service(subscriber).Subscribe("u", profile.MustParse(
		`collection = "Elsewhere.Y"`)); err != nil {
		t.Fatal(err)
	}
	if got := c.TR.Stats().PerType[protocol.MsgAdvertiseProfiles]; got == 0 {
		t.Error("widening subscription sent no advertisement")
	}
}

func TestModeSwitchTearsDownDirectoryState(t *testing.T) {
	ctx := context.Background()

	// Multicast -> broadcast must leave groups eagerly (a stale membership
	// would keep attracting multicast traffic for a server that no longer
	// reads it as such).
	c, names := buildInterestCluster(t, 4, 2, core.RouteMulticast)
	groupCount := func() int {
		total := 0
		for _, node := range c.Nodes {
			total += len(node.Snapshot().Groups)
		}
		return total
	}
	if groupCount() == 0 {
		t.Fatal("multicast mode joined no groups")
	}
	for _, name := range names {
		if err := c.Service(name).SetRoutingMode(ctx, core.RouteBroadcast); err != nil {
			t.Fatal(err)
		}
	}
	if got := groupCount(); got != 0 {
		t.Errorf("groups left on directory nodes after switch to broadcast: %d", got)
	}
	// And broadcast still delivers.
	publishOnce(t, c, names[0])
	if got := countNotified(c, names, 2); got != 2 {
		t.Errorf("notified after switch back = %d, want 2", got)
	}

	// Content -> broadcast must withdraw the digests.
	c2, names2 := buildInterestCluster(t, 4, 1, core.RouteContent)
	digestCount := func() int {
		total := 0
		for _, node := range c2.Nodes {
			total += len(node.Snapshot().Digests)
		}
		return total
	}
	if digestCount() == 0 {
		t.Fatal("content mode advertised no digests")
	}
	for _, name := range names2 {
		if err := c2.Service(name).SetRoutingMode(ctx, core.RouteBroadcast); err != nil {
			t.Fatal(err)
		}
	}
	// Server links lose their digests; inter-node links may keep empty
	// aggregates, which are equivalent to ⊤-free state only for servers.
	for _, node := range c2.Nodes {
		snap := node.Snapshot()
		for link := range snap.Digests {
			for _, name := range names2 {
				if link == name {
					t.Errorf("node %s still holds a digest for server %s", snap.ID, name)
				}
			}
		}
	}
	publishOnce(t, c2, names2[0])
	if got := countNotified(c2, names2, 1); got != 1 {
		t.Errorf("notified after content->broadcast switch = %d, want 1", got)
	}
}

func TestParseRoutingMode(t *testing.T) {
	cases := map[string]core.RoutingMode{
		"broadcast": core.RouteBroadcast,
		"flood":     core.RouteBroadcast,
		"Multicast": core.RouteMulticast,
		"content":   core.RouteContent,
	}
	for in, want := range cases {
		got, err := core.ParseRoutingMode(in)
		if err != nil || got != want {
			t.Errorf("ParseRoutingMode(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("mode %v has empty String()", got)
		}
	}
	if _, err := core.ParseRoutingMode("gossip"); err == nil {
		t.Error("unknown mode accepted")
	}
}
