package greenstone_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/sim"
)

// figure1Cluster reproduces the deployment of the paper's Figure 1: hosts
// Hamilton (collections A, B, C, D) and London (E, F, G) where
//   - Hamilton.C is virtual (no data, only sub-collections),
//   - Hamilton.D is distributed: its data set d plus sub-collection London.E,
//   - London.E is also an independent public collection,
//   - London.G is private, accessible only as a sub-collection of London.F.
func figure1Cluster(t testing.TB) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 42, GDSNodes: 3, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.AddServer("Hamilton", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddServer("London", 2); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ham := c.Server("Hamilton")
	lon := c.Server("London")

	mustAdd := func(s interface {
		AddCollection(context.Context, collection.Config) (*collection.Collection, error)
	}, cfg collection.Config) {
		t.Helper()
		if _, err := s.AddCollection(ctx, cfg); err != nil {
			t.Fatalf("add %s: %v", cfg.Name, err)
		}
	}
	mustAdd(ham, collection.Config{Name: "A", Public: true})
	mustAdd(ham, collection.Config{Name: "B", Public: true})
	mustAdd(ham, collection.Config{Name: "C", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "F"}}})
	mustAdd(ham, collection.Config{Name: "D", Public: true, IndexFields: []string{"dc.Title"},
		Subs: []collection.SubRef{{Host: "London", Name: "E"}}})
	mustAdd(lon, collection.Config{Name: "E", Public: true, IndexFields: []string{"dc.Title"}})
	mustAdd(lon, collection.Config{Name: "F", Public: true, Classifiers: []string{"dc.Title"},
		Subs: []collection.SubRef{{Name: "G"}}})
	mustAdd(lon, collection.Config{Name: "G", Public: false})

	build := func(s *serverAlias, name string, docs []*collection.Document) {
		t.Helper()
		if _, _, err := c.Server(s.name).Build(ctx, name, docs); err != nil {
			t.Fatalf("build %s.%s: %v", s.name, name, err)
		}
	}
	build(&serverAlias{"Hamilton"}, "A", docsWith("a", 2))
	build(&serverAlias{"Hamilton"}, "B", docsWith("b", 2))
	build(&serverAlias{"Hamilton"}, "D", docsWith("d", 3))
	build(&serverAlias{"London"}, "E", docsWith("e", 3))
	build(&serverAlias{"London"}, "F", docsWith("f", 2))
	build(&serverAlias{"London"}, "G", docsWith("g", 2))
	return c
}

type serverAlias struct{ name string }

func docsWith(prefix string, n int) []*collection.Document {
	docs := make([]*collection.Document, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s%d", prefix, i+1)
		docs = append(docs, &collection.Document{
			ID: id,
			Metadata: map[string][]string{
				"dc.Title": {fmt.Sprintf("Title %s from set %s", id, prefix)},
			},
			Content: fmt.Sprintf("text for %s mentioning topic-%s and shared-topic", id, prefix),
			MIME:    "text/plain",
		})
	}
	return docs
}

func TestFigure1Topology(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()

	// Receptionist I has access to both hosts (paper Figure 1).
	recepI := c.NewReceptionist("recep-I", "Hamilton", "London")
	results, err := recepI.Describe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("describe results = %d", len(results))
	}
	byHost := map[string][]string{}
	for _, r := range results {
		for _, ci := range r.Collections {
			byHost[r.Host] = append(byHost[r.Host], ci.Name)
		}
	}
	if got := strings.Join(byHost["Hamilton"], ","); got != "A,B,C,D" {
		t.Errorf("Hamilton collections = %s", got)
	}
	// G is private: not visible in its own right (paper §3).
	if got := strings.Join(byHost["London"], ","); got != "E,F" {
		t.Errorf("London collections = %s (private G must be hidden)", got)
	}

	// Hamilton.C is virtual.
	for _, r := range results {
		for _, ci := range r.Collections {
			if r.Host == "Hamilton" && ci.Name == "C" && !ci.Virtual {
				t.Error("Hamilton.C should be virtual")
			}
			if r.Host == "Hamilton" && ci.Name == "D" {
				if len(ci.SubCollections) != 1 || ci.SubCollections[0] != "London.E" {
					t.Errorf("D subs = %v", ci.SubCollections)
				}
			}
		}
	}
}

func TestDistributedDataAccess(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("recep-I", "Hamilton")

	// Collecting Hamilton.D yields its local data d plus London.E's data e
	// (the paper §3 walk).
	res, err := recep.CollectData(ctx, "Hamilton", "D")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, d := range res.Documents {
		ids = append(ids, d.ID)
	}
	if got := strings.Join(ids, ","); got != "d1,d2,d3,e1,e2,e3" {
		t.Errorf("collected docs = %s", got)
	}
	if res.Truncated {
		t.Error("collect unexpectedly truncated")
	}

	// Distributed search across D follows into London.E.
	sr, err := recep.Search(ctx, "Hamilton", "D", "shared-topic", "", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	colls := map[string]int{}
	for _, h := range sr.Hits {
		colls[h.Collection]++
	}
	if colls["Hamilton.D"] != 3 || colls["London.E"] != 3 {
		t.Errorf("distributed search hits = %v", colls)
	}
	// Non-follow search stays local.
	sr, err = recep.Search(ctx, "Hamilton", "D", "shared-topic", "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) != 3 {
		t.Errorf("local-only hits = %d", len(sr.Hits))
	}
}

func TestPrivateSubCollectionAccessibleViaParent(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("r", "London")
	// G is private but reachable as sub-collection of F.
	res, err := recep.CollectData(ctx, "London", "F")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(res.Documents))
	for _, d := range res.Documents {
		ids = append(ids, d.ID)
	}
	if got := strings.Join(ids, ","); got != "f1,f2,g1,g2" {
		t.Errorf("F data = %s", got)
	}
}

func TestCyclicSubCollectionsTerminate(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 7, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	if _, err := c.AddServer("X", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddServer("Y", 0); err != nil {
		t.Fatal(err)
	}
	// X.P includes Y.Q; Y.Q includes X.P — a cycle (paper §1 problem 2).
	if _, err := c.Server("X").AddCollection(ctx, collection.Config{
		Name: "P", Public: true, Subs: []collection.SubRef{{Host: "Y", Name: "Q"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Server("Y").AddCollection(ctx, collection.Config{
		Name: "Q", Public: true, Subs: []collection.SubRef{{Host: "X", Name: "P"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Server("X").Build(ctx, "P", docsWith("p", 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Server("Y").Build(ctx, "Q", docsWith("q", 2)); err != nil {
		t.Fatal(err)
	}
	recep := c.NewReceptionist("r", "X")
	res, err := recep.CollectData(ctx, "X", "P")
	if err != nil {
		t.Fatal(err)
	}
	// Terminates and returns each doc exactly once.
	seen := map[string]int{}
	for _, d := range res.Documents {
		seen[d.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("doc %s returned %d times", id, n)
		}
	}
	if len(seen) != 4 {
		t.Errorf("docs = %d, want 4", len(seen))
	}
}

// TestFigure3AuxRoundTrip is the paper's central distributed-collection
// scenario: London.E (sub-collection of Hamilton.D) is rebuilt; the event
// matches the auxiliary profile at London, travels the GS network to
// Hamilton, is renamed to Hamilton.D and re-broadcast; a client subscribed
// to Hamilton.D at a third server (Berlin) is notified.
func TestFigure3AuxRoundTrip(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 11, GDSNodes: 3, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	for i, name := range []string{"Hamilton", "London", "Berlin"} {
		if _, err := c.AddServer(name, i%3); err != nil {
			t.Fatal(err)
		}
	}
	// Hamilton.D ⊃ London.E.
	if _, err := c.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Server("London").AddCollection(ctx, collection.Config{Name: "E", Public: true}); err != nil {
		t.Fatal(err)
	}
	// The aux profile must now be installed at London.
	if got := c.Service("London").AuxProfileCount(); got != 1 {
		t.Fatalf("aux profiles at London = %d", got)
	}

	// Clients: carol at Berlin subscribed to Hamilton.D; dave at London
	// subscribed to London.E directly.
	carol := c.Notifier("Berlin", "carol")
	if _, err := c.Service("Berlin").Subscribe("carol", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}
	dave := c.Notifier("London", "dave")
	if _, err := c.Service("London").Subscribe("dave", profile.MustParse(`collection = "London.E"`)); err != nil {
		t.Fatal(err)
	}

	// Rebuild London.E.
	if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", 2)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)

	// dave sees the raw London.E event.
	if dave.Len() != 1 {
		t.Fatalf("dave notifications = %d", dave.Len())
	}
	if got := dave.All()[0].Event.Collection.String(); got != "London.E" {
		t.Errorf("dave event about %s", got)
	}
	// carol sees the TRANSFORMED event: about Hamilton.D, originating from
	// London.E.
	if carol.Len() != 1 {
		t.Fatalf("carol notifications = %d", carol.Len())
	}
	ev := carol.All()[0].Event
	if ev.Collection.String() != "Hamilton.D" {
		t.Errorf("carol event about %s, want Hamilton.D", ev.Collection)
	}
	if ev.Origin.String() != "London.E" {
		t.Errorf("carol event origin %s, want London.E", ev.Origin)
	}
	if len(ev.Chain) != 2 {
		t.Errorf("chain = %v", ev.Chain)
	}
	// Hamilton performed exactly one transform.
	if st := c.Service("Hamilton").Stats(); st.Transforms != 1 {
		t.Errorf("Hamilton transforms = %d", st.Transforms)
	}
}

// TestCyclicSuperSubAlertingTerminates checks the alerting-side cycle guard
// (transform chains): X.P ⊃ Y.Q and Y.Q ⊃ X.P.
func TestCyclicSuperSubAlertingTerminates(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 13, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	_, _ = c.AddServer("X", 0)
	_, _ = c.AddServer("Y", 0)
	if _, err := c.Server("X").AddCollection(ctx, collection.Config{
		Name: "P", Public: true, Subs: []collection.SubRef{{Host: "Y", Name: "Q"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Server("Y").AddCollection(ctx, collection.Config{
		Name: "Q", Public: true, Subs: []collection.SubRef{{Host: "X", Name: "P"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Watchers on both collections at a third-party server.
	_, _ = c.AddServer("Z", 0)
	zp := c.Notifier("Z", "zp")
	if _, err := c.Service("Z").Subscribe("zp", profile.MustParse(`collection = "X.P" OR collection = "Y.Q"`)); err != nil {
		t.Fatal(err)
	}

	if _, _, err := c.Server("Y").Build(ctx, "Q", docsWith("q", 1)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	// One raw event (Y.Q) + one transform (X.P); the transform back to Y.Q
	// is refused by the chain guard.
	if zp.Len() != 2 {
		t.Fatalf("zp notifications = %d, want 2 (raw + one transform)", zp.Len())
	}
	stX := c.Service("X").Stats()
	stY := c.Service("Y").Stats()
	if stX.Transforms != 1 {
		t.Errorf("X transforms = %d", stX.Transforms)
	}
	if refusals := stX.CycleRefusals + stY.CycleRefusals; refusals == 0 {
		t.Error("no cycle refusals recorded — the loop was not exercised")
	}
	if stY.Transforms != 0 {
		t.Errorf("Y transforms = %d, want 0 (cycle refused)", stY.Transforms)
	}
}

// TestDanglingProfileCases exercises paper §7's three dangling-auxiliary-
// profile scenarios: notifications are delayed, not lost, and cancellation
// is applied after reconnection — users never see spurious notifications.
func TestDanglingProfileCases(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 17, GDSNodes: 2, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	_, _ = c.AddServer("Hamilton", 0)
	_, _ = c.AddServer("London", 1)
	if _, err := c.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Server("London").AddCollection(ctx, collection.Config{Name: "E", Public: true}); err != nil {
		t.Fatal(err)
	}
	alice := c.Notifier("Hamilton", "alice")
	if _, err := c.Service("Hamilton").Subscribe("alice", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}

	// Case 3 (severed connection): partition the GS link Hamilton<->London,
	// rebuild London.E. The aux forward is queued, not lost; the GDS flood
	// still delivers the raw London.E event (which alice ignores).
	c.PartitionServers("Hamilton", "London")
	if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", 1)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	if alice.Len() != 0 {
		t.Fatalf("alice notified during partition: %+v", alice.All())
	}
	if st := c.Service("London").Stats(); st.ForwardingFailures == 0 {
		t.Error("forward failure not recorded during partition")
	}
	if c.Service("London").Retry().Len() == 0 {
		t.Fatal("forward not queued during partition")
	}

	// Heal and flush: the delayed notification arrives (delayed, not lost).
	c.HealServers("Hamilton", "London")
	if n := c.FlushRetries(ctx); n == 0 {
		t.Fatal("retry flush delivered nothing after heal")
	}
	c.Settle(ctx)
	if alice.Len() != 1 {
		t.Fatalf("alice notifications after heal = %d, want 1", alice.Len())
	}
	if got := alice.All()[0].Event.Collection.String(); got != "Hamilton.D" {
		t.Errorf("alice event about %s", got)
	}

	// Cancellation under partition: remove the sub-collection reference
	// while the link is again cut. The cancel is queued; after healing and
	// flushing, London drops the aux profile and no further builds notify.
	c.PartitionServers("Hamilton", "London")
	if err := c.Server("Hamilton").Reconfigure(ctx, collection.Config{Name: "D", Public: true}); err != nil {
		t.Fatal(err)
	}
	if got := c.Service("London").AuxProfileCount(); got != 1 {
		t.Fatalf("aux removed before cancel could be delivered: %d", got)
	}
	c.HealServers("Hamilton", "London")
	c.FlushRetries(ctx)
	if got := c.Service("London").AuxProfileCount(); got != 0 {
		t.Fatalf("aux profile still installed after cancel: %d", got)
	}
	alice.Reset()
	if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", 2)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	// alice subscribed to Hamilton.D; with the sub-reference gone she must
	// NOT be notified about London.E rebuilds (no false positives).
	if alice.Len() != 0 {
		t.Fatalf("false positive after cancellation: %+v", alice.All())
	}
}

func TestRemoveCollectionEmitsEventAndCancelsAux(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 19, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	_, _ = c.AddServer("Hamilton", 0)
	_, _ = c.AddServer("London", 0)
	if _, err := c.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Server("London").AddCollection(ctx, collection.Config{Name: "E", Public: true}); err != nil {
		t.Fatal(err)
	}
	if got := c.Service("London").AuxProfileCount(); got != 1 {
		t.Fatalf("aux = %d", got)
	}
	watcher := c.Notifier("London", "w")
	if _, err := c.Service("London").Subscribe("w", profile.MustParse(`event.type = "collection-removed"`)); err != nil {
		t.Fatal(err)
	}
	if err := c.Server("Hamilton").RemoveCollection(ctx, "D"); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	if got := c.Service("London").AuxProfileCount(); got != 0 {
		t.Errorf("aux after removal = %d", got)
	}
	if watcher.Len() != 1 {
		t.Fatalf("removal notifications = %d", watcher.Len())
	}
	if got := watcher.All()[0].Event.Type; got != event.TypeCollectionRemoved {
		t.Errorf("event type = %v", got)
	}
}

func TestSubscribeViaReceptionist(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("recep-II", "London")

	p := profile.NewUser("client7-p1", "client7", "London", profile.MustParse(`collection = "London.E"`))
	if err := recep.Subscribe(ctx, "London", p); err != nil {
		t.Fatal(err)
	}
	// Remote notification channel.
	ch, closeFn, err := recep.ListenForNotifications("client://client7")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeFn() }()
	c.Service("London").RegisterNotifier("client7",
		c.RemoteNotifier("London", "client://client7"))

	if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", 4)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	select {
	case n := <-ch:
		if n.Client != "client7" || n.ProfileID != "client7-p1" {
			t.Errorf("notification = %+v", n)
		}
		if n.Event.Collection.String() != "London.E" {
			t.Errorf("event about %s", n.Event.Collection)
		}
	default:
		t.Fatal("no remote notification received")
	}

	// Ownership is enforced on the wire too.
	if err := recep.Unsubscribe(ctx, "London", "mallory", "client7-p1"); err == nil {
		t.Error("foreign unsubscribe accepted over the wire")
	}
	if err := recep.Unsubscribe(ctx, "London", "client7", "client7-p1"); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRanksAndLimits(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("r", "London")
	res, err := recep.Search(ctx, "London", "E", "topic-e", "", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 {
		t.Errorf("limited hits = %d", len(res.Hits))
	}
	// Unknown collection errors cleanly.
	if _, err := recep.Search(ctx, "London", "Nope", "x", "", 0, false); err == nil {
		t.Error("search on unknown collection succeeded")
	}
}

func TestBrowse(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("r", "London")
	res, err := recep.Browse(ctx, "London", "F", "dc.Title")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	if _, err := recep.Browse(ctx, "London", "F", "dc.Nope"); err == nil {
		t.Error("unknown classifier browse succeeded")
	}
}

func TestGetDocument(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("r", "Hamilton")
	d, err := recep.GetDocument(ctx, "Hamilton", "D", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "d1" || len(d.Metadata) == 0 {
		t.Errorf("document = %+v", d)
	}
	if _, err := recep.GetDocument(ctx, "Hamilton", "D", "nope"); err == nil {
		t.Error("phantom document fetched")
	}
}

// TestReceptionistReconnectDrainsMailbox exercises the delivery pipeline's
// partition-tolerance over the wire protocol: a client attaches a remote
// notifier, goes offline while builds happen (alerts park server-side in its
// durable mailbox), then re-attaches and receives everything it missed.
func TestReceptionistReconnectDrainsMailbox(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("recep-III", "London")

	p := profile.NewUser("client9-p1", "client9", "London",
		profile.MustParse(`collection = "London.E" AND event.type = "collection-rebuilt"`))
	if err := recep.Subscribe(ctx, "London", p); err != nil {
		t.Fatal(err)
	}
	const clientAddr = "client://client9"
	ch, closeFn, err := recep.ListenForNotifications(clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeFn() }()
	received := func() int {
		n := 0
		for {
			select {
			case <-ch:
				n++
			default:
				return n
			}
		}
	}

	// Online: one build delivers live via MsgAttachNotifier push.
	if err := recep.AttachNotifications(ctx, "London", "client9", clientAddr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", 5)); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	if got := received(); got != 1 {
		t.Fatalf("live notifications = %d, want 1", got)
	}

	// Offline: two builds park in the server-side mailbox.
	if err := recep.DetachNotifications(ctx, "London", "client9"); err != nil {
		t.Fatal(err)
	}
	for round := 6; round <= 7; round++ {
		if _, _, err := c.Server("London").Build(ctx, "E", docsWith("e", round)); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle(ctx)
	if got := received(); got != 0 {
		t.Fatalf("detached client received %d notifications", got)
	}
	if got := c.Service("London").Delivery().Pending("client9"); got != 2 {
		t.Fatalf("parked = %d, want 2", got)
	}

	// Reconnect: the mailbox drains through the batch protocol.
	if err := recep.AttachNotifications(ctx, "London", "client9", clientAddr); err != nil {
		t.Fatal(err)
	}
	c.Settle(ctx)
	if got := received(); got != 2 {
		t.Fatalf("drained on reconnect = %d, want 2", got)
	}
	if got := c.Service("London").Delivery().Pending("client9"); got != 0 {
		t.Errorf("still parked after reconnect: %d", got)
	}
}
