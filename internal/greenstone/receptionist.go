package greenstone

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/transport"
)

// Receptionist is the user-facing access point of paper §3: it can connect
// to several Greenstone hosts and presents their collections through one
// interface, with the underlying storage and distribution transparent to
// the user. The alerting extension lets users define profiles at any
// connected server through the same interface (paper §1 problem 3).
type Receptionist struct {
	name string
	tr   transport.Transport

	mu    sync.Mutex
	hosts map[string]string // host name -> addr
}

// NewReceptionist builds a receptionist with no hosts attached.
func NewReceptionist(name string, tr transport.Transport) *Receptionist {
	return &Receptionist{name: name, tr: tr, hosts: make(map[string]string)}
}

// ErrUnknownHost reports an operation against a host the receptionist is
// not connected to.
var ErrUnknownHost = errors.New("greenstone: receptionist not connected to host")

// Connect attaches a host.
func (r *Receptionist) Connect(host, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts[host] = addr
}

// Disconnect removes a host.
func (r *Receptionist) Disconnect(host string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.hosts, host)
}

// RefreshHost re-resolves a connected host's address through the directory
// and re-points the connection at it — the client side of standby failover:
// after a promoted standby re-registers the inherited server name, a
// receptionist whose requests started failing refreshes the host and
// reaches the new primary under the same name. It returns the refreshed
// address.
func (r *Receptionist) RefreshHost(ctx context.Context, host string, resolver core.Resolver) (string, error) {
	if resolver == nil {
		return "", errors.New("greenstone: refresh needs a resolver")
	}
	addr, err := resolver.Resolve(ctx, host)
	if err != nil {
		return "", fmt.Errorf("greenstone: refresh %s: %w", host, err)
	}
	r.Connect(host, addr)
	return addr, nil
}

// Hosts lists connected host names, sorted.
func (r *Receptionist) Hosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hosts))
	for h := range r.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (r *Receptionist) addrOf(host string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addr, ok := r.hosts[host]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	return addr, nil
}

// Describe lists the public collections of every connected host (the
// unified view of federated collections).
func (r *Receptionist) Describe(ctx context.Context) ([]protocol.DescribeResult, error) {
	r.mu.Lock()
	hosts := make(map[string]string, len(r.hosts))
	for h, a := range r.hosts {
		hosts[h] = a
	}
	r.mu.Unlock()

	names := make([]string, 0, len(hosts))
	for h := range hosts {
		names = append(names, h)
	}
	sort.Strings(names)

	var out []protocol.DescribeResult
	for _, h := range names {
		env, err := protocol.NewEnvelope(r.name, protocol.MsgDescribe, &protocol.Describe{})
		if err != nil {
			return nil, err
		}
		var res protocol.DescribeResult
		if err := transport.SendExpect(ctx, r.tr, hosts[h], env, protocol.MsgDescribeResult, &res); err != nil {
			return nil, fmt.Errorf("greenstone: describe %s: %w", h, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Search queries one collection on one host; followSubs expands distributed
// sub-collections transparently.
func (r *Receptionist) Search(ctx context.Context, host, coll, query, field string, limit int, followSubs bool) (*protocol.SearchResult, error) {
	addr, err := r.addrOf(host)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgSearch, &protocol.Search{
		Collection: coll,
		Query:      query,
		Field:      field,
		Limit:      limit,
		FollowSubs: followSubs,
	})
	if err != nil {
		return nil, err
	}
	var res protocol.SearchResult
	if err := transport.SendExpect(ctx, r.tr, addr, env, protocol.MsgSearchResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Browse fetches a classifier shelf.
func (r *Receptionist) Browse(ctx context.Context, host, coll, classifier string) (*protocol.BrowseResult, error) {
	addr, err := r.addrOf(host)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgBrowse, &protocol.Browse{Collection: coll, Classifier: classifier})
	if err != nil {
		return nil, err
	}
	var res protocol.BrowseResult
	if err := transport.SendExpect(ctx, r.tr, addr, env, protocol.MsgBrowseResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// GetDocument fetches one document.
func (r *Receptionist) GetDocument(ctx context.Context, host, coll, docID string) (*protocol.DocumentPayload, error) {
	addr, err := r.addrOf(host)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgGetDocument, &protocol.GetDocument{Collection: coll, DocID: docID})
	if err != nil {
		return nil, err
	}
	var res protocol.DocumentResult
	if err := transport.SendExpect(ctx, r.tr, addr, env, protocol.MsgDocumentResult, &res); err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("greenstone: document %s/%s/%s not found", host, coll, docID)
	}
	return res.Document, nil
}

// CollectData retrieves the complete (distributed) data of a collection.
func (r *Receptionist) CollectData(ctx context.Context, host, coll string) (*protocol.CollectDataResult, error) {
	addr, err := r.addrOf(host)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgCollectData, &protocol.CollectData{Collection: coll})
	if err != nil {
		return nil, err
	}
	var res protocol.CollectDataResult
	if err := transport.SendExpect(ctx, r.tr, addr, env, protocol.MsgCollectDataResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Subscribe registers a user profile at a host on behalf of a client. The
// profile resides at that server only (paper §4.2).
func (r *Receptionist) Subscribe(ctx context.Context, host string, p *profile.Profile) error {
	addr, err := r.addrOf(host)
	if err != nil {
		return err
	}
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgSubscribe, &protocol.Subscribe{
		Client:  p.Owner,
		Profile: protocol.Wrap(raw),
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, r.tr, addr, env)
}

// SubscribeWithClass registers a profile tagged with a QoS priority class
// (docs/QOS.md): realtime is never shed under overload, normal may be
// deferred, bulk degrades to coalesced digests. Subscribe without a class
// registers normal.
func (r *Receptionist) SubscribeWithClass(ctx context.Context, host string, p *profile.Profile, class qos.Class) error {
	p.Class = class
	return r.Subscribe(ctx, host, p)
}

// Unsubscribe cancels a user profile at a host.
func (r *Receptionist) Unsubscribe(ctx context.Context, host, client, profileID string) error {
	addr, err := r.addrOf(host)
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgUnsubscribe, &protocol.Unsubscribe{
		Client:    client,
		ProfileID: profileID,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, r.tr, addr, env)
}

// AttachNotifications asks a host to push a client's notifications to addr
// (typically one bound with ListenForNotifications). Attaching drains the
// client's server-side mailbox: alerts parked while the client was offline
// arrive immediately (paper §7 reconnect semantics for notifications).
func (r *Receptionist) AttachNotifications(ctx context.Context, host, client, addr string) error {
	hostAddr, err := r.addrOf(host)
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgAttachNotifier, &protocol.AttachNotifier{
		Client: client,
		Addr:   addr,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, r.tr, hostAddr, env)
}

// DetachNotifications stops push delivery for a client; its notifications
// park at the host until the next AttachNotifications.
func (r *Receptionist) DetachNotifications(ctx context.Context, host, client string) error {
	hostAddr, err := r.addrOf(host)
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(r.name, protocol.MsgDetachNotifier, &protocol.DetachNotifier{Client: client})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, r.tr, hostAddr, env)
}

// ListenForNotifications binds a local address for MsgNotify and
// MsgNotifyBatch deliveries and returns a channel of notifications. Pair it
// with AttachNotifications (or core.NewRemoteNotifier on the server side).
// The returned closer stops listening.
func (r *Receptionist) ListenForNotifications(addr string) (<-chan core.Notification, func() error, error) {
	ch := make(chan core.Notification, 64)
	deliver := func(n protocol.Notify) error {
		ev, err := eventFromRaw(n.Event.Bytes())
		if err != nil {
			return err
		}
		class, _ := qos.ParseClass(n.Class) // unknown class degrades to normal
		out := core.Notification{Client: n.Client, ProfileID: n.ProfileID, Event: ev, Composite: n.Composite, Class: class}
		for _, raw := range n.Contributing {
			cev, err := eventFromRaw(raw.Bytes())
			if err != nil {
				return err
			}
			out.Contributing = append(out.Contributing, cev)
		}
		select {
		case ch <- out:
		default: // drop on overflow rather than blocking the server
		}
		return nil
	}
	l, err := r.tr.Listen(addr, transport.HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		switch env.Header.Type {
		case protocol.MsgNotifyComposite:
			var cn protocol.CompositeNotify
			if err := protocol.Decode(env, protocol.MsgNotifyComposite, &cn); err != nil {
				return protocol.Errorf(r.name, "decode", "%v", err), nil
			}
			ev, err := eventFromRaw(cn.Event.Bytes())
			if err != nil {
				return protocol.Errorf(r.name, "event", "%v", err), nil
			}
			class, _ := qos.ParseClass(cn.Class) // unknown class degrades to normal
			n := core.Notification{
				Client:    cn.Client,
				ProfileID: cn.ProfileID,
				Event:     ev,
				DocIDs:    cn.DocIDs,
				Composite: cn.Kind,
				Class:     class,
			}
			for _, raw := range cn.Contributing {
				cev, err := eventFromRaw(raw.Bytes())
				if err != nil {
					return protocol.Errorf(r.name, "event", "%v", err), nil
				}
				n.Contributing = append(n.Contributing, cev)
			}
			select {
			case ch <- n:
			default: // drop on overflow rather than blocking the server
			}
			return nil, nil
		case protocol.MsgNotifyBatch:
			var b protocol.NotifyBatch
			if err := protocol.Decode(env, protocol.MsgNotifyBatch, &b); err != nil {
				return protocol.Errorf(r.name, "decode", "%v", err), nil
			}
			for _, n := range b.Items {
				if err := deliver(n); err != nil {
					return protocol.Errorf(r.name, "event", "%v", err), nil
				}
			}
			return nil, nil
		default:
			var n protocol.Notify
			if err := protocol.Decode(env, protocol.MsgNotify, &n); err != nil {
				return protocol.Errorf(r.name, "decode", "%v", err), nil
			}
			if err := deliver(n); err != nil {
				return protocol.Errorf(r.name, "event", "%v", err), nil
			}
			return nil, nil
		}
	}))
	if err != nil {
		return nil, nil, err
	}
	return ch, l.Close, nil
}
