package greenstone_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/transport"
)

// freeAddr reserves an OS-assigned port and returns "127.0.0.1:port". The
// tiny close-then-reuse race is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// httpServer assembles a full Greenstone server with alerting over HTTP.
func httpServer(t *testing.T, tr *transport.HTTP, name, gdsAddr string) (*greenstone.Server, *core.Service) {
	t.Helper()
	addr := freeAddr(t)
	gdsCli := gds.NewClient(name, addr, gdsAddr, tr)
	store := collection.NewStore(name)
	svc, err := core.New(core.Config{
		ServerName: name,
		ServerAddr: addr,
		Transport:  tr,
		GDS:        gdsCli,
		Store:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name: name, Addr: addr, Transport: tr,
		Store: store, Alerting: svc, Resolver: gdsCli,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gdsCli.Register(ctx); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return srv, svc
}

// TestFigure3OverHTTP runs the complete Figure 3 scenario — directory tree,
// three servers, auxiliary profile, transform, flood — over real TCP
// sockets via the HTTP transport, proving the stack is not simulation-only.
func TestFigure3OverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	tr := transport.NewHTTP()
	t.Cleanup(func() { _ = tr.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Directory: root (stratum 1) with one child (stratum 2).
	rootAddr, childAddr := freeAddr(t), freeAddr(t)
	root, err := gds.NewNode("gds-root", rootAddr, 1, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = root.Close() })
	child, err := gds.NewNode("gds-child", childAddr, 2, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = child.Close() })
	if err := child.AttachToParent(ctx, "gds-root", rootAddr); err != nil {
		t.Fatal(err)
	}

	// Servers: Hamilton at the root node, London and Berlin at the child.
	hamilton, hamSvc := httpServer(t, tr, "Hamilton", rootAddr)
	london, _ := httpServer(t, tr, "London", childAddr)
	_, berlinSvc := httpServer(t, tr, "Berlin", childAddr)

	// Hamilton.D ⊃ London.E.
	if _, err := london.AddCollection(ctx, collection.Config{Name: "E", Public: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := hamilton.AddCollection(ctx, collection.Config{
		Name: "D", Public: true, Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		t.Fatal(err)
	}
	// The aux profile reached London over real sockets (install is
	// synchronous on the happy path).
	if got := london.Alerting().AuxProfileCount(); got != 1 {
		t.Fatalf("aux profiles at London = %d", got)
	}

	// carol at Berlin subscribes to Hamilton.D.
	carol := core.NewMemoryNotifier()
	berlinSvc.RegisterNotifier("carol", carol)
	watch := carol.Watch()
	if _, err := berlinSvc.Subscribe("carol", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}

	// London rebuilds E.
	docs := []*collection.Document{{ID: "e1", Content: "european report"}}
	if _, _, err := london.Build(ctx, "E", docs); err != nil {
		t.Fatal(err)
	}

	// All HTTP deliveries on this path are synchronous request/response
	// chains, so the notification is already there; Watch guards against
	// future asynchrony.
	select {
	case n := <-watch:
		if n.Event.Collection.String() != "Hamilton.D" {
			t.Errorf("carol event about %s", n.Event.Collection)
		}
		if n.Event.Origin.String() != "London.E" {
			t.Errorf("origin = %s", n.Event.Origin)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification over HTTP within 10s")
	}
	if st := hamSvc.Stats(); st.Transforms != 1 {
		t.Errorf("Hamilton transforms = %d", st.Transforms)
	}

	// Cross-branch naming over HTTP: Berlin resolves Hamilton via the tree.
	berlinCli := gds.NewClient("probe", freeAddr(t), childAddr, tr)
	resolved, err := berlinCli.Resolve(ctx, "Hamilton")
	if err != nil {
		t.Fatal(err)
	}
	if resolved == "" {
		t.Error("empty resolution")
	}

	// Distributed search over HTTP follows the sub-collection.
	recep := greenstone.NewReceptionist("recep", tr)
	recep.Connect("Hamilton", mustResolve(t, ctx, berlinCli, "Hamilton"))
	res, err := recep.Search(ctx, "Hamilton", "D", "european", "", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Collection != "London.E" {
		t.Errorf("distributed search hits = %+v", res.Hits)
	}
}

func mustResolve(t *testing.T, ctx context.Context, cli *gds.Client, name string) string {
	t.Helper()
	addr, err := cli.Resolve(ctx, name)
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	return addr
}

// TestPersistenceAcrossRestartHTTP exercises the snapshot workflow: a
// server saves its subscriptions, "restarts" (new service instance), loads
// them, and the restored profiles fire.
func TestPersistenceAcrossRestartHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	tr := transport.NewHTTP()
	t.Cleanup(func() { _ = tr.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	rootAddr := freeAddr(t)
	root, err := gds.NewNode("gds-root", rootAddr, 1, tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = root.Close() })

	srv1, svc1 := httpServer(t, tr, "Solo1", rootAddr)
	if _, err := svc1.Subscribe("alice", profile.MustParse(`collection = "Solo2.C"`)); err != nil {
		t.Fatal(err)
	}
	var snapshotBuf bytes.Buffer
	if err := svc1.SaveSubscriptions(&snapshotBuf); err != nil {
		t.Fatal(err)
	}
	_ = srv1.Close()

	// "Restart": a brand-new stack restores the snapshot.
	_, svc2 := httpServer(t, tr, "Solo1b", rootAddr)
	if _, err := svc2.LoadSubscriptions(bytes.NewReader(snapshotBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sink := core.NewMemoryNotifier()
	svc2.RegisterNotifier("alice", sink)

	// A second server publishes the collection alice watches.
	srv3, _ := httpServer(t, tr, "Solo2", rootAddr)
	if _, err := srv3.AddCollection(ctx, collection.Config{Name: "C", Public: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv3.Build(ctx, "C", []*collection.Document{{ID: "d1"}}); err != nil {
		t.Fatal(err)
	}
	if err := svc2.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Fatalf("restored profile notifications = %d, want 1", sink.Len())
	}
}
