// Package greenstone implements the distributed Greenstone server and
// receptionist of paper §3: servers host collections (federated,
// distributed, virtual, private) and answer the SOAP-style Greenstone
// protocol — describe, search, browse, document retrieval, and distributed
// data collection that follows sub-collection references across hosts — and
// the alerting extensions (subscribe, forwarded profiles, forwarded events)
// that hand off to the core alerting service.
package greenstone

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// Server is one Greenstone server installation on a host.
type Server struct {
	name  string
	addr  string
	tr    transport.Transport
	store *collection.Store
	alert *core.Service
	// resolver maps host names to addresses for server-to-server calls
	// (distributed collections); usually the GDS naming service.
	resolver core.Resolver

	listener io.Closer
	evSeq    func() string
	clock    func() time.Time
}

// ServerConfig assembles a Server.
type ServerConfig struct {
	// Name is the host/server name ("Hamilton").
	Name string
	// Addr is the transport address to listen on.
	Addr string
	// Transport carries all protocol traffic.
	Transport transport.Transport
	// Store holds the collections; a fresh one is created when nil.
	Store *collection.Store
	// Alerting is the server's alerting service; optional (a server can run
	// without alerting, as stock Greenstone does).
	Alerting *core.Service
	// Resolver maps host names to addresses for distributed retrieval.
	Resolver core.Resolver
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// NewServer builds and starts a server (it listens immediately).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Name == "" || cfg.Addr == "" {
		return nil, errors.New("greenstone: server needs name and addr")
	}
	if cfg.Transport == nil {
		return nil, errors.New("greenstone: server needs a transport")
	}
	store := cfg.Store
	if store == nil {
		store = collection.NewStore(cfg.Name)
	}
	if store.Host() != cfg.Name {
		return nil, fmt.Errorf("greenstone: store host %q does not match server %q", store.Host(), cfg.Name)
	}
	s := &Server{
		name:     cfg.Name,
		addr:     cfg.Addr,
		tr:       cfg.Transport,
		store:    store,
		alert:    cfg.Alerting,
		resolver: cfg.Resolver,
		clock:    cfg.Clock,
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	seq := 0
	s.evSeq = func() string {
		seq++
		return fmt.Sprintf("%s-ev-%d-%d", s.name, s.clock().UnixNano(), seq)
	}
	l, err := cfg.Transport.Listen(cfg.Addr, transport.HandlerFunc(s.handle))
	if err != nil {
		return nil, fmt.Errorf("greenstone: %s listen: %w", cfg.Name, err)
	}
	s.listener = l
	return s, nil
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// Addr returns the server's transport address.
func (s *Server) Addr() string { return s.addr }

// Store exposes the collection store.
func (s *Server) Store() *collection.Store { return s.store }

// Alerting exposes the alerting service (nil when disabled).
func (s *Server) Alerting() *core.Service { return s.alert }

// Close stops listening.
func (s *Server) Close() error {
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// AddCollection creates a collection from cfg and, when alerting is on,
// synchronises auxiliary profiles for its remote sub-collections.
func (s *Server) AddCollection(ctx context.Context, cfg collection.Config) (*collection.Collection, error) {
	coll, err := s.store.Add(cfg)
	if err != nil {
		return nil, err
	}
	if s.alert != nil {
		if err := s.alert.SyncAuxProfiles(ctx); err != nil {
			return nil, err
		}
	}
	return coll, nil
}

// Reconfigure replaces a collection's configuration and re-synchronises
// auxiliary profiles (collection restructuring, paper §1 problem 1).
func (s *Server) Reconfigure(ctx context.Context, cfg collection.Config) error {
	coll, err := s.store.Get(cfg.Name)
	if err != nil {
		return err
	}
	if err := coll.SetConfig(cfg); err != nil {
		return err
	}
	if s.alert != nil {
		return s.alert.SyncAuxProfiles(ctx)
	}
	return nil
}

// RemoveCollection deletes a collection, emits a collection-removed event
// and withdraws auxiliary profiles for its remote subs.
func (s *Server) RemoveCollection(ctx context.Context, name string) error {
	coll, err := s.store.Get(name)
	if err != nil {
		return err
	}
	qn := coll.QName()
	version := coll.BuildVersion()
	if err := s.store.Remove(name); err != nil {
		return err
	}
	if s.alert == nil {
		return nil
	}
	if err := s.alert.SyncAuxProfiles(ctx); err != nil {
		return err
	}
	ev := event.New(s.evSeq(), event.TypeCollectionRemoved, qn, version, nil, s.clock())
	res := &collection.BuildResult{Collection: qn, Version: version, Events: []*event.Event{ev}}
	_, err = s.alert.PublishBuild(ctx, res)
	return err
}

// Build (re)builds a collection from docs and publishes the resulting
// events through the alerting service. It returns the build result with the
// alerting filter time filled in, for the E1 overhead measurement.
func (s *Server) Build(ctx context.Context, name string, docs []*collection.Document) (*collection.BuildResult, time.Duration, error) {
	coll, err := s.store.Get(name)
	if err != nil {
		return nil, 0, err
	}
	res, err := coll.Build(docs, s.clock(), s.evSeq)
	if err != nil {
		return nil, 0, err
	}
	var filterTime time.Duration
	if s.alert != nil {
		filterTime, err = s.alert.PublishBuild(ctx, res)
		if err != nil {
			return res, filterTime, err
		}
	}
	return res, filterTime, nil
}

// handle dispatches the Greenstone protocol.
func (s *Server) handle(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	switch env.Header.Type {
	case protocol.MsgDescribe:
		return s.handleDescribe(env)
	case protocol.MsgSearch:
		return s.handleSearch(ctx, env)
	case protocol.MsgBrowse:
		return s.handleBrowse(env)
	case protocol.MsgGetDocument:
		return s.handleGetDocument(env)
	case protocol.MsgCollectData:
		return s.handleCollectData(ctx, env)
	case protocol.MsgPing:
		return protocol.Ack(s.name, env), nil
	case protocol.MsgEvent:
		if s.alert == nil {
			return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
		}
		if err := s.alert.HandleEventEnvelope(ctx, env); err != nil {
			return protocol.Errorf(s.name, "event", "%v", err), nil
		}
		return protocol.Ack(s.name, env), nil
	case protocol.MsgForwardProfile:
		if s.alert == nil {
			return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
		}
		if err := s.alert.HandleForwardProfile(env); err != nil {
			return protocol.Errorf(s.name, "forward-profile", "%v", err), nil
		}
		return protocol.Ack(s.name, env), nil
	case protocol.MsgCancelProfile:
		if s.alert == nil {
			return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
		}
		if err := s.alert.HandleCancelProfile(env); err != nil {
			return protocol.Errorf(s.name, "cancel-profile", "%v", err), nil
		}
		return protocol.Ack(s.name, env), nil
	case protocol.MsgSubscribe:
		return s.handleSubscribe(env)
	case protocol.MsgUnsubscribe:
		return s.handleUnsubscribe(env)
	case protocol.MsgAttachNotifier:
		return s.handleAttachNotifier(env)
	case protocol.MsgDetachNotifier:
		return s.handleDetachNotifier(env)
	default:
		return protocol.Errorf(s.name, "unsupported", "server %s cannot handle %s", s.name, env.Header.Type), nil
	}
}

func (s *Server) handleDescribe(env *protocol.Envelope) (*protocol.Envelope, error) {
	var d protocol.Describe
	if err := protocol.Decode(env, protocol.MsgDescribe, &d); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	result := protocol.DescribeResult{Host: s.name}
	describeOne := func(c *collection.Collection) protocol.CollectionInfo {
		cfg := c.Config()
		info := protocol.CollectionInfo{
			Name:         cfg.Name,
			Title:        cfg.Title,
			Public:       cfg.Public,
			Virtual:      c.IsVirtual(),
			DocCount:     c.Len(),
			BuildVersion: c.BuildVersion(),
			IndexFields:  cfg.IndexFields,
		}
		for _, sub := range cfg.Subs {
			host := sub.Host
			if host == "" {
				host = s.name
			}
			info.SubCollections = append(info.SubCollections, host+"."+sub.Name)
		}
		return info
	}
	if d.Collection != "" {
		c, err := s.store.Get(d.Collection)
		if err != nil {
			return protocol.Errorf(s.name, "not-found", "collection %q", d.Collection), nil
		}
		result.Collections = append(result.Collections, describeOne(c))
	} else {
		for _, c := range s.store.All() {
			// Private collections are invisible in their own right
			// (paper §3: London.G).
			if !c.Public() {
				continue
			}
			result.Collections = append(result.Collections, describeOne(c))
		}
	}
	return protocol.MustEnvelope(s.name, protocol.MsgDescribeResult, &result), nil
}

// handleSearch runs a retrieval query, optionally expanding distributed
// sub-collections across hosts with a cycle guard (paper §3's data access
// walk, paper §1 problem 2).
func (s *Server) handleSearch(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var q protocol.Search
	if err := protocol.Decode(env, protocol.MsgSearch, &q); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	hits, truncated, err := s.searchCollection(ctx, &q)
	if err != nil {
		return protocol.Errorf(s.name, "search", "%v", err), nil
	}
	_ = truncated
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Collection != hits[j].Collection {
			return hits[i].Collection < hits[j].Collection
		}
		return hits[i].DocID < hits[j].DocID
	})
	if q.Limit > 0 && len(hits) > q.Limit {
		hits = hits[:q.Limit]
	}
	return protocol.MustEnvelope(s.name, protocol.MsgSearchResult, &protocol.SearchResult{
		Total: len(hits),
		Hits:  hits,
	}), nil
}

func (s *Server) searchCollection(ctx context.Context, q *protocol.Search) ([]protocol.SearchHit, bool, error) {
	coll, err := s.store.Get(q.Collection)
	if err != nil {
		return nil, false, err
	}
	qualified := s.name + "." + q.Collection
	for _, v := range q.Visited {
		if v == qualified {
			return nil, false, nil // cycle: already expanded
		}
	}
	visited := append(append([]string(nil), q.Visited...), qualified)

	localHits, err := coll.Search(q.Query, q.Field, 0)
	if err != nil {
		return nil, false, err
	}
	hits := make([]protocol.SearchHit, 0, len(localHits))
	for _, h := range localHits {
		title := ""
		if d, ok := coll.Doc(h.DocID); ok {
			title = d.Title()
		}
		hits = append(hits, protocol.SearchHit{
			DocID:      h.DocID,
			Collection: qualified,
			Score:      h.Score,
			Title:      title,
		})
	}
	if !q.FollowSubs {
		return hits, false, nil
	}

	truncated := false
	cfg := coll.Config()
	for _, ref := range cfg.Subs {
		subQ := protocol.Search{
			Collection: ref.Name,
			Query:      q.Query,
			Field:      q.Field,
			FollowSubs: true,
			Visited:    visited,
		}
		if ref.Host == "" || ref.Host == s.name {
			subHits, _, err := s.searchCollection(ctx, &subQ)
			if err != nil {
				truncated = true
				continue
			}
			hits = append(hits, subHits...)
			continue
		}
		remote, err := s.callRemoteSearch(ctx, ref.Host, &subQ)
		if err != nil {
			truncated = true // unreachable sub-collection: best-effort result
			continue
		}
		hits = append(hits, remote...)
	}
	return hits, truncated, nil
}

func (s *Server) callRemoteSearch(ctx context.Context, host string, q *protocol.Search) ([]protocol.SearchHit, error) {
	if s.resolver == nil {
		return nil, fmt.Errorf("greenstone: %s has no resolver for remote search", s.name)
	}
	addr, err := s.resolver.Resolve(ctx, host)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnvelope(s.name, protocol.MsgSearch, q)
	if err != nil {
		return nil, err
	}
	var res protocol.SearchResult
	if err := transport.SendExpect(ctx, s.tr, addr, env, protocol.MsgSearchResult, &res); err != nil {
		return nil, err
	}
	return res.Hits, nil
}

func (s *Server) handleBrowse(env *protocol.Envelope) (*protocol.Envelope, error) {
	var b protocol.Browse
	if err := protocol.Decode(env, protocol.MsgBrowse, &b); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	coll, err := s.store.Get(b.Collection)
	if err != nil {
		return protocol.Errorf(s.name, "not-found", "collection %q", b.Collection), nil
	}
	cl, ok := coll.Classifier(b.Classifier)
	if !ok {
		return protocol.Errorf(s.name, "not-found", "classifier %q in %q", b.Classifier, b.Collection), nil
	}
	res := protocol.BrowseResult{Collection: b.Collection, Classifier: b.Classifier}
	for _, bucket := range cl.Buckets {
		res.Buckets = append(res.Buckets, protocol.BrowseBucket{Label: bucket.Label, DocIDs: bucket.DocIDs})
	}
	return protocol.MustEnvelope(s.name, protocol.MsgBrowseResult, &res), nil
}

func (s *Server) handleGetDocument(env *protocol.Envelope) (*protocol.Envelope, error) {
	var g protocol.GetDocument
	if err := protocol.Decode(env, protocol.MsgGetDocument, &g); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	coll, err := s.store.Get(g.Collection)
	if err != nil {
		return protocol.Errorf(s.name, "not-found", "collection %q", g.Collection), nil
	}
	d, ok := coll.Doc(g.DocID)
	if !ok {
		return protocol.MustEnvelope(s.name, protocol.MsgDocumentResult, &protocol.DocumentResult{Found: false}), nil
	}
	return protocol.MustEnvelope(s.name, protocol.MsgDocumentResult, &protocol.DocumentResult{
		Found:    true,
		Document: docToPayload(d),
	}), nil
}

func docToPayload(d *collection.Document) *protocol.DocumentPayload {
	p := &protocol.DocumentPayload{ID: d.ID, MIME: d.MIME, Content: d.Content}
	fields := make([]string, 0, len(d.Metadata))
	for f := range d.Metadata {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		p.Metadata = append(p.Metadata, protocol.MetaField{Name: f, Values: d.Metadata[f]})
	}
	return p
}

// handleCollectData returns the full (possibly distributed) data of a
// collection, following local and remote sub-collection references with a
// cycle guard — the paper §3 walk where Hamilton collects d and asks London
// for e.
func (s *Server) handleCollectData(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var cd protocol.CollectData
	if err := protocol.Decode(env, protocol.MsgCollectData, &cd); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	docs, truncated, err := s.collectData(ctx, cd.Collection, cd.Visited)
	if err != nil {
		return protocol.Errorf(s.name, "collect", "%v", err), nil
	}
	return protocol.MustEnvelope(s.name, protocol.MsgCollectDataResult, &protocol.CollectDataResult{
		Documents: docs,
		Truncated: truncated,
	}), nil
}

func (s *Server) collectData(ctx context.Context, name string, visited []string) ([]protocol.DocumentPayload, bool, error) {
	coll, err := s.store.Get(name)
	if err != nil {
		return nil, false, err
	}
	qualified := s.name + "." + name
	for _, v := range visited {
		if v == qualified {
			return nil, false, nil
		}
	}
	visited = append(append([]string(nil), visited...), qualified)

	var docs []protocol.DocumentPayload
	for _, d := range coll.Docs() {
		docs = append(docs, *docToPayload(d))
	}
	truncated := false
	for _, ref := range coll.Config().Subs {
		if ref.Host == "" || ref.Host == s.name {
			sub, subTrunc, err := s.collectData(ctx, ref.Name, visited)
			if err != nil {
				truncated = true
				continue
			}
			docs = append(docs, sub...)
			truncated = truncated || subTrunc
			continue
		}
		remote, subTrunc, err := s.callRemoteCollect(ctx, ref.Host, ref.Name, visited)
		if err != nil {
			truncated = true
			continue
		}
		docs = append(docs, remote...)
		truncated = truncated || subTrunc
	}
	return docs, truncated, nil
}

func (s *Server) callRemoteCollect(ctx context.Context, host, name string, visited []string) ([]protocol.DocumentPayload, bool, error) {
	if s.resolver == nil {
		return nil, false, fmt.Errorf("greenstone: %s has no resolver", s.name)
	}
	addr, err := s.resolver.Resolve(ctx, host)
	if err != nil {
		return nil, false, err
	}
	env, err := protocol.NewEnvelope(s.name, protocol.MsgCollectData, &protocol.CollectData{
		Collection: name,
		Visited:    visited,
	})
	if err != nil {
		return nil, false, err
	}
	var res protocol.CollectDataResult
	if err := transport.SendExpect(ctx, s.tr, addr, env, protocol.MsgCollectDataResult, &res); err != nil {
		return nil, false, err
	}
	return res.Documents, res.Truncated, nil
}

func (s *Server) handleSubscribe(env *protocol.Envelope) (*protocol.Envelope, error) {
	if s.alert == nil {
		return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
	}
	var sub protocol.Subscribe
	if err := protocol.Decode(env, protocol.MsgSubscribe, &sub); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	p, err := profile.UnmarshalXMLBytes(sub.Profile.Bytes())
	if err != nil {
		return protocol.Errorf(s.name, "profile", "%v", err), nil
	}
	if p.Owner != sub.Client {
		return protocol.Errorf(s.name, "ownership", "profile owner %q does not match client %q", p.Owner, sub.Client), nil
	}
	if err := s.alert.SubscribeProfile(p); err != nil {
		return protocol.Errorf(s.name, "subscribe", "%v", err), nil
	}
	return protocol.Ack(s.name, env), nil
}

// handleAttachNotifier starts push delivery of a client's notifications to
// the given address. Registering the remote sink drains anything parked in
// the client's mailbox while it was disconnected (paper §7 reconnect).
func (s *Server) handleAttachNotifier(env *protocol.Envelope) (*protocol.Envelope, error) {
	if s.alert == nil {
		return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
	}
	var at protocol.AttachNotifier
	if err := protocol.Decode(env, protocol.MsgAttachNotifier, &at); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	if at.Client == "" || at.Addr == "" {
		return protocol.Errorf(s.name, "attach-notifier", "client and addr required"), nil
	}
	s.alert.RegisterNotifier(at.Client, core.NewRemoteNotifier(s.name, at.Addr, s.tr))
	return protocol.Ack(s.name, env), nil
}

// handleDetachNotifier stops push delivery; the client's notifications park
// server-side until it re-attaches.
func (s *Server) handleDetachNotifier(env *protocol.Envelope) (*protocol.Envelope, error) {
	if s.alert == nil {
		return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
	}
	var dt protocol.DetachNotifier
	if err := protocol.Decode(env, protocol.MsgDetachNotifier, &dt); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	s.alert.UnregisterNotifier(dt.Client)
	return protocol.Ack(s.name, env), nil
}

func (s *Server) handleUnsubscribe(env *protocol.Envelope) (*protocol.Envelope, error) {
	if s.alert == nil {
		return protocol.Errorf(s.name, "no-alerting", "server %s has alerting disabled", s.name), nil
	}
	var un protocol.Unsubscribe
	if err := protocol.Decode(env, protocol.MsgUnsubscribe, &un); err != nil {
		return protocol.Errorf(s.name, "decode", "%v", err), nil
	}
	if err := s.alert.Unsubscribe(un.Client, un.ProfileID); err != nil {
		return protocol.Errorf(s.name, "unsubscribe", "%v", err), nil
	}
	return protocol.Ack(s.name, env), nil
}
