package greenstone_test

import (
	"context"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
)

// TestCompositeSubscribeAndNotifyOverWire drives the full composite path
// over the protocol: a receptionist subscribes a composite profile (the
// temporal text travels inside the ordinary MsgSubscribe wire form), the
// collection rebuilds until the accumulation threshold is reached, and
// the synthesized notification arrives at the remote listener as a
// MsgNotifyComposite envelope carrying the contributing events.
func TestCompositeSubscribeAndNotifyOverWire(t *testing.T) {
	c := figure1Cluster(t)
	ctx := context.Background()
	recep := c.NewReceptionist("recep-comp", "London")

	comp := profile.MustParseComposite(
		`COUNT 2 OF (collection = "London.E" AND event.type = "collection-rebuilt")`)
	p, err := profile.NewComposite("client8-c1", "client8", "London", comp)
	if err != nil {
		t.Fatal(err)
	}
	if err := recep.Subscribe(ctx, "London", p); err != nil {
		t.Fatal(err)
	}
	if got := c.Service("London").CompositeProfileCount(); got != 1 {
		t.Fatalf("composite profiles = %d", got)
	}

	ch, closeFn, err := recep.ListenForNotifications("client://client8")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeFn() }()
	c.Service("London").RegisterNotifier("client8",
		c.RemoteNotifier("London", "client://client8"))

	// Two rebuilds with a diff each: two collection-rebuilt events reach
	// the threshold.
	docs := docsWith("e", 4)
	for round := 0; round < 2; round++ {
		docs[0].Content = docs[0].Content + " changed"
		if _, _, err := c.Server("London").Build(ctx, "E", docs); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle(ctx)

	select {
	case n := <-ch:
		if n.Client != "client8" || n.ProfileID != "client8-c1" {
			t.Errorf("notification = %+v", n)
		}
		if n.Composite != "count" {
			t.Errorf("composite kind = %q", n.Composite)
		}
		if n.Event.Type != event.TypeCompositeAlert {
			t.Errorf("synthesized type = %v", n.Event.Type)
		}
		if len(n.Contributing) != 2 {
			t.Fatalf("contributing events = %d, want 2", len(n.Contributing))
		}
		for _, ev := range n.Contributing {
			if ev.Type != event.TypeCollectionRebuilt || ev.Collection.String() != "London.E" {
				t.Errorf("contributing event = %v about %s", ev.Type, ev.Collection)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no composite notification received over the wire")
	}

	// The composite can be cancelled over the wire like any profile.
	if err := recep.Unsubscribe(ctx, "London", "client8", "client8-c1"); err != nil {
		t.Fatal(err)
	}
	if got := c.Service("London").CompositeProfileCount(); got != 0 {
		t.Errorf("composite profiles after unsubscribe = %d", got)
	}
}
