package greenstone_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/sim"
)

// buildInterestCluster creates n servers where only the first k subscribe
// to the publisher's collection — the sparse-interest regime where
// multicast routing should save messages.
func buildInterestCluster(t testing.TB, n, k int, mode core.RoutingMode) (*sim.Cluster, []string) {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Seed: 31, GDSNodes: 3, GDSBranching: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("M%02d", i)
		if _, err := c.AddServer(name, i%3); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		if err := c.Service(name).SetRoutingMode(ctx, mode); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Server(names[0]).AddCollection(ctx, collection.Config{Name: "X", Public: true}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		c.Notifier(names[i], "u")
		if _, err := c.Service(names[i]).Subscribe("u", profile.MustParse(
			fmt.Sprintf(`collection = "%s.X" AND event.type = "collection-built"`, names[0]))); err != nil {
			t.Fatal(err)
		}
	}
	return c, names
}

func publishOnce(t testing.TB, c *sim.Cluster, publisher string) {
	t.Helper()
	docs := []*collection.Document{{ID: "d1", Content: "payload"}}
	if _, _, err := c.Server(publisher).Build(context.Background(), "X", docs); err != nil {
		t.Fatal(err)
	}
	c.Settle(context.Background())
}

func countNotified(c *sim.Cluster, names []string, k int) int {
	notified := 0
	for i := 1; i <= k; i++ {
		if len(c.Notifications(names[i], "u")) > 0 {
			notified++
		}
	}
	return notified
}

func TestMulticastModeDeliversSameNotifications(t *testing.T) {
	const n, k = 12, 3
	// Broadcast reference run.
	cb, namesB := buildInterestCluster(t, n, k, core.RouteBroadcast)
	cb.TR.ResetStats()
	publishOnce(t, cb, namesB[0])
	broadcastNotified := countNotified(cb, namesB, k)
	broadcastMsgs := cb.TR.Stats().Sent

	// Multicast run.
	cm, namesM := buildInterestCluster(t, n, k, core.RouteMulticast)
	cm.TR.ResetStats()
	publishOnce(t, cm, namesM[0])
	multicastNotified := countNotified(cm, namesM, k)
	multicastMsgs := cm.TR.Stats().Sent

	if broadcastNotified != k || multicastNotified != k {
		t.Fatalf("notified: broadcast=%d multicast=%d, want %d", broadcastNotified, multicastNotified, k)
	}
	// With 3 interested servers out of 12, multicast must be cheaper.
	if multicastMsgs >= broadcastMsgs {
		t.Errorf("multicast %d msgs not cheaper than broadcast %d", multicastMsgs, broadcastMsgs)
	}
	// Non-subscribers received no event deliveries in multicast mode.
	for i := k + 1; i < n; i++ {
		if got := len(cm.Notifications(namesM[i], "u")); got != 0 {
			t.Errorf("non-subscriber %s notified %d times", namesM[i], got)
		}
	}
}

func TestMulticastCatchAllForUnboundedProfiles(t *testing.T) {
	c, names := buildInterestCluster(t, 6, 0, core.RouteMulticast)
	ctx := context.Background()
	// A profile with no finite collection cover lands in the catch-all
	// group and still receives everything.
	watcher := names[4]
	c.Notifier(watcher, "w")
	if _, err := c.Service(watcher).Subscribe("w", profile.MustParse(
		`event.type = "collection-built"`)); err != nil {
		t.Fatal(err)
	}
	_ = ctx
	publishOnce(t, c, names[0])
	if got := len(c.Notifications(watcher, "w")); got != 1 {
		t.Fatalf("catch-all subscriber notifications = %d, want 1", got)
	}
}

func TestMulticastUnsubscribeLeavesGroup(t *testing.T) {
	c, names := buildInterestCluster(t, 4, 1, core.RouteMulticast)
	subscriber := names[1]
	ids := c.Service(subscriber).ProfilesOf("u")
	if len(ids) != 1 {
		t.Fatalf("profiles = %v", ids)
	}
	if err := c.Service(subscriber).Unsubscribe("u", ids[0]); err != nil {
		t.Fatal(err)
	}
	c.TR.ResetStats()
	publishOnce(t, c, names[0])
	if got := len(c.Notifications(subscriber, "u")); got != 0 {
		t.Fatalf("unsubscribed server notified %d times", got)
	}
	// After leaving, the event multicast should not be delivered to the
	// ex-subscriber at all (not just filtered out locally).
	if got := c.TR.Stats().PerType[protocol.MsgEvent]; got != 0 {
		t.Errorf("event deliveries after last unsubscribe = %d, want 0", got)
	}
}

func TestMulticastModeSwitchJoinsExistingProfiles(t *testing.T) {
	// Subscribe first in broadcast mode, THEN switch to multicast: the
	// switch must join groups for the existing population.
	c, names := buildInterestCluster(t, 6, 2, core.RouteBroadcast)
	ctx := context.Background()
	for _, name := range names {
		if err := c.Service(name).SetRoutingMode(ctx, core.RouteMulticast); err != nil {
			t.Fatal(err)
		}
	}
	publishOnce(t, c, names[0])
	if got := countNotified(c, names, 2); got != 2 {
		t.Fatalf("notified after mode switch = %d, want 2", got)
	}
}
