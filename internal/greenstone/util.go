package greenstone

import (
	"github.com/gsalert/gsalert/internal/event"
)

// eventFromRaw decodes an event XML fragment.
func eventFromRaw(raw []byte) (*event.Event, error) {
	return event.UnmarshalXMLBytes(raw)
}
