// Package replica implements primary/standby replication for alerting
// servers, so the delivery guarantees the per-node subsystems provide —
// durable WAL mailboxes, composite subscriptions, reconnect drain — survive
// the loss of a whole server, not just a process restart (experiment E14).
//
// A Primary attaches to a serving core.Service and streams its replicable
// state changes to one Standby over the ordinary transport as repl.*
// envelopes:
//
//	profile (un)subscriptions  — user, composite wrapper, auxiliary
//	mailbox WAL activity       — appends, delivery acks, cap evictions
//	dedup admissions           — event IDs the primary already processed
//
// Every stream envelope carries a monotonic sequence and is acknowledged
// synchronously by the standby, so a record the primary shipped is applied
// before the next one is sent (zero-loss: nothing the standby confirmed can
// be lost by a primary crash). A standby joins — or rejoins after a gap,
// apply failure or restart — by requesting a full MsgReplSnapshot
// (subscriptions, mailbox contents, dedup window, ID counter) and then
// consumes the stream from the snapshot's position; records at or below it
// are duplicates and skipped (anti-entropy catch-up).
//
// Promotion (Standby.Promote, or a MsgReplPromote envelope) turns the
// passive standby into the serving primary: it re-registers the inherited
// server name with its GDS node — name resolution, broadcasts and
// receptionist traffic now reach the standby's address — and re-issues the
// routing-mode state for the inherited profile population (multicast group
// joins, content-digest advertisements). Inherited mailbox contents rest
// parked until their clients re-attach, at which point the ordinary
// reconnect drain delivers them.
//
// Not replicated: collection stores (rebuild sources live outside the
// alerting state) and in-flight composite window state (a sequence opened
// before the failover completes only from primitives the standby sees
// itself). Both are documented in docs/REPLICATION.md.
package replica

import (
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
)

// Op values of the profile stream.
const (
	opSubscribe   = "subscribe"
	opUnsubscribe = "unsubscribe"
)

// Kind values of the WAL stream.
const (
	kindAppend = "append"
	kindAck    = "ack"
	kindDedup  = "dedup"
)

// roleStats assembles the shared core.ReplicaStats shape.
func roleStats(role string, seq uint64, streamed, dropped, errs, snaps, resyncs int64, promoted bool) core.ReplicaStats {
	return core.ReplicaStats{
		Role:      role,
		StreamSeq: seq,
		Streamed:  streamed,
		Dropped:   dropped,
		Errors:    errs,
		Snapshots: snaps,
		Resyncs:   resyncs,
		Promoted:  promoted,
	}
}

// mismatchErr reports a cross-wired replication pair.
func mismatchErr(want, got string) error {
	return fmt.Errorf("replica: standby stands by for %q, primary is %q", got, want)
}

// exportQoSBuckets renders a service's current token-bucket levels for the
// wire (nil when no QoS controller is installed). Shipped in snapshots and
// heartbeat responses so a promoted standby enforces the quotas the
// primary had already charged instead of handing out fresh bursts.
func exportQoSBuckets(svc *core.Service) []protocol.ReplQoSBucket {
	ctrl := svc.QoS()
	if ctrl == nil {
		return nil
	}
	states := ctrl.ExportBuckets()
	out := make([]protocol.ReplQoSBucket, 0, len(states))
	for _, st := range states {
		b := protocol.ReplQoSBucket{Dimension: st.Dimension, Key: st.Key, Tokens: st.Tokens}
		if !st.Last.IsZero() {
			b.LastUnixNano = st.Last.UnixNano()
		}
		out = append(out, b)
	}
	return out
}

// applyQoSBuckets installs replicated bucket levels on a service's QoS
// controller; silently a no-op when either side has QoS off.
func applyQoSBuckets(svc *core.Service, buckets []protocol.ReplQoSBucket) {
	ctrl := svc.QoS()
	if ctrl == nil || len(buckets) == 0 {
		return
	}
	states := make([]qos.BucketState, 0, len(buckets))
	for _, b := range buckets {
		st := qos.BucketState{Dimension: b.Dimension, Key: b.Key, Tokens: b.Tokens}
		if b.LastUnixNano != 0 {
			st.Last = time.Unix(0, b.LastUnixNano)
		}
		states = append(states, st)
	}
	ctrl.ApplyBuckets(states)
}
