package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// StandbyConfig assembles a Standby.
type StandbyConfig struct {
	// Service is the passive alerting service the stream is applied to. It
	// must carry the primary's server name (the identity inherited on
	// promotion) and its own transport address, stay in broadcast mode and
	// must NOT be registered with the GDS while passive — the primary owns
	// the name until promotion.
	Service *core.Service
	// Transport carries the stream.
	Transport transport.Transport
	// ListenAddr is the standby's replication endpoint (the primary pushes
	// stream records and snapshots here).
	ListenAddr string
	// PrimaryAddr is the primary's replication endpoint, for Join.
	PrimaryAddr string
	// GDS, when set, is registered under the inherited name at promotion
	// (the same client handed to the service's core.Config).
	GDS *gds.Client
	// Tracer, when set, records one StageReplApply span per replicated
	// mailbox append whose notification carries a sampled trace context, so
	// the attribution table can report replication apply cost. Nil (the
	// default) records nothing.
	Tracer *trace.Tracer
	// Log is the standby's component logger (docs/LOGGING.md): joins and
	// promotion at info, probe failures and resyncs at warn. Nil disables
	// every site at one pointer check.
	Log *logging.Logger
}

// Standby is the receiving end of the replication stream: it applies
// replicated profiles, mailbox WAL records and dedup admissions to a
// passive service, and on promotion re-registers the inherited identity
// with the directory and re-issues the routing-mode state.
type Standby struct {
	svc         *core.Service
	tr          transport.Transport
	gdsCli      *gds.Client
	tracer      *trace.Tracer
	log         *logging.Logger
	addr        string
	primaryAddr string
	listener    io.Closer

	// applyMu serialises state application: stream records arrive on the
	// listener goroutine while Join (heartbeat resync) applies snapshots
	// from another — unserialised, a snapshot reset could swallow a
	// concurrently applied record while the position counter says it
	// landed. mu (below) only guards the counters and flags.
	applyMu sync.Mutex

	mu        sync.Mutex
	applied   uint64
	synced    bool
	promoted  bool
	mode      core.RoutingMode
	applies   int64
	errors    int64
	snapshots int64
	resyncs   int64
	// probeErr is the outcome of the most recent Join/Heartbeat probe (nil
	// = reached the primary). Readiness checks consume it: a standby whose
	// probes fail may hold stale state even though synced is still set.
	probeErr error
}

// NewStandby builds a Standby and starts listening for the stream. Call
// Join to attach to the primary and receive the initial snapshot.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Service == nil || cfg.Transport == nil {
		return nil, errors.New("replica: standby needs a service and a transport")
	}
	if cfg.ListenAddr == "" || cfg.PrimaryAddr == "" {
		return nil, errors.New("replica: standby needs listen and primary addresses")
	}
	s := &Standby{
		svc:         cfg.Service,
		tr:          cfg.Transport,
		gdsCli:      cfg.GDS,
		tracer:      cfg.Tracer,
		log:         cfg.Log,
		addr:        cfg.ListenAddr,
		primaryAddr: cfg.PrimaryAddr,
		mode:        core.RouteBroadcast,
	}
	l, err := cfg.Transport.Listen(cfg.ListenAddr, transport.HandlerFunc(s.handle))
	if err != nil {
		return nil, fmt.Errorf("replica: standby listen: %w", err)
	}
	s.listener = l
	cfg.Service.SetReplicaStatsProvider(s)
	return s, nil
}

// Close stops listening for the stream.
func (s *Standby) Close() error {
	s.svc.SetReplicaStatsProvider(nil)
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// Service exposes the standby's alerting service (serving after Promote).
func (s *Standby) Service() *core.Service { return s.svc }

// AppliedSeq reports the stream position applied so far.
func (s *Standby) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Promoted reports whether the standby has taken over.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Synced reports whether the standby holds a consistent snapshot-rooted
// state (false until the first Join, and again after an apply failure
// until the resync snapshot lands).
func (s *Standby) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced
}

// ProbeErr reports the most recent Join/Heartbeat outcome (nil = the
// primary answered). The /readyz standby check gates on this: synced
// state plus a reachable primary means "caught up"; a partitioned standby
// is not ready even though its last-known state is consistent.
func (s *Standby) ProbeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probeErr
}

// noteProbe records a probe outcome.
func (s *Standby) noteProbe(err error) {
	s.mu.Lock()
	s.probeErr = err
	s.mu.Unlock()
}

// ReplicaStats implements core.ReplicaStatsProvider.
func (s *Standby) ReplicaStats() core.ReplicaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	role := "standby"
	if s.promoted {
		role = "primary"
	}
	return roleStats(role, s.applied, s.applies, 0, s.errors, s.snapshots, s.resyncs, s.promoted)
}

// Join performs the handshake with the primary: it announces this standby's
// endpoint and applies the returned snapshot, after which the primary
// streams every subsequent change here. Join again at any time to rejoin
// after an outage (anti-entropy catch-up).
func (s *Standby) Join(ctx context.Context) error {
	env, err := protocol.NewEnvelope(s.svc.Name(), protocol.MsgReplAck, &protocol.ReplAck{
		Resync:     true,
		Addr:       s.addr,
		ServerName: s.svc.Name(),
	})
	if err != nil {
		return err
	}
	var snap protocol.ReplSnapshot
	if err := transport.SendExpect(ctx, s.tr, s.primaryAddr, env, protocol.MsgReplSnapshot, &snap); err != nil {
		err = fmt.Errorf("replica: join %s: %w", s.primaryAddr, err)
		s.noteProbe(err)
		s.log.Warn("join failed", logging.String("primary", s.primaryAddr),
			logging.String("error", err.Error()))
		return err
	}
	s.noteProbe(nil)
	if err := s.applySnapshot(&snap); err != nil {
		return err
	}
	// The applied stream position is deliberately not logged: it shifts
	// with delivery flush batching across same-seed runs, and E19 requires
	// byte-identical flight bundles. gsalert_replica_stream_seq carries it.
	s.log.Info("joined primary", logging.String("primary", s.primaryAddr))
	return nil
}

// Heartbeat probes the primary's stream position and rejoins (full
// snapshot resync) when the pair has diverged: the stream broke while this
// standby was unreachable, the primary restarted and forgot the standby,
// or positions simply disagree. Drive it periodically (gs-server probes
// every few seconds) — without it, a broken stream stays broken silently
// until the next explicit Join. A promoted standby stops probing.
func (s *Standby) Heartbeat(ctx context.Context) error {
	s.mu.Lock()
	promoted, applied := s.promoted, s.applied
	s.mu.Unlock()
	if promoted {
		return nil
	}
	env, err := protocol.NewEnvelope(s.svc.Name(), protocol.MsgReplAck, &protocol.ReplAck{
		AppliedSeq: applied,
		Addr:       s.addr,
		ServerName: s.svc.Name(),
	})
	if err != nil {
		return err
	}
	var resp protocol.ReplAck
	if err := transport.SendExpect(ctx, s.tr, s.primaryAddr, env, protocol.MsgReplAck, &resp); err != nil {
		err = fmt.Errorf("replica: heartbeat %s: %w", s.primaryAddr, err)
		s.noteProbe(err)
		return err
	}
	s.noteProbe(nil)
	// Refresh replicated quota levels: heartbeats piggyback the primary's
	// current token buckets, so a promotion between snapshots still
	// inherits near-current admission state.
	applyQoSBuckets(s.svc, resp.QoSBuckets)
	// Re-read the position: stream records that landed while the probe was
	// in flight are already applied (the stream is synchronous), so being
	// genuinely behind means the primary's position is still ahead of the
	// CURRENT one — comparing against the pre-probe sample would turn every
	// probe under live traffic into a spurious full resync. A primary that
	// restarted (position behind ours) answers Resync via its
	// unknown-standby check.
	s.mu.Lock()
	appliedNow := s.applied
	s.mu.Unlock()
	if resp.Resync || resp.AppliedSeq > appliedNow {
		s.mu.Lock()
		s.resyncs++
		s.mu.Unlock()
		s.log.Warn("stream diverged, resyncing", logging.String("primary", s.primaryAddr))
		return s.Join(ctx)
	}
	return nil
}

// handle processes the standby side of the replication protocol. Every
// stream envelope is answered with a ReplAck carrying the applied position;
// a gap or apply failure answers with Resync set, which makes the primary
// push a fresh snapshot before the next record.
func (s *Standby) handle(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	switch env.Header.Type {
	case protocol.MsgReplSubscribe:
		var op protocol.ReplProfileOp
		if err := protocol.Decode(env, protocol.MsgReplSubscribe, &op); err != nil {
			return protocol.Errorf(s.svc.Name(), "decode", "%v", err), nil
		}
		return s.applyStream(op.Seq, func() error { return s.applyProfileOp(&op) }), nil
	case protocol.MsgReplWAL:
		var wal protocol.ReplWAL
		if err := protocol.Decode(env, protocol.MsgReplWAL, &wal); err != nil {
			return protocol.Errorf(s.svc.Name(), "decode", "%v", err), nil
		}
		return s.applyStream(wal.Seq, func() error { return s.applyWAL(&wal) }), nil
	case protocol.MsgReplSnapshot:
		var snap protocol.ReplSnapshot
		if err := protocol.Decode(env, protocol.MsgReplSnapshot, &snap); err != nil {
			return protocol.Errorf(s.svc.Name(), "decode", "%v", err), nil
		}
		if err := s.applySnapshot(&snap); err != nil {
			return protocol.Errorf(s.svc.Name(), "snapshot", "%v", err), nil
		}
		return s.ack(), nil
	case protocol.MsgReplPromote:
		var pr protocol.ReplPromote
		if err := protocol.Decode(env, protocol.MsgReplPromote, &pr); err != nil {
			return protocol.Errorf(s.svc.Name(), "decode", "%v", err), nil
		}
		mode := core.RoutingMode(0)
		if pr.Mode != "" {
			m, err := core.ParseRoutingMode(pr.Mode)
			if err != nil {
				return protocol.Errorf(s.svc.Name(), "promote", "%v", err), nil
			}
			mode = m
		}
		if err := s.Promote(ctx, mode); err != nil {
			return protocol.Errorf(s.svc.Name(), "promote", "%v", err), nil
		}
		return protocol.Ack(s.svc.Name(), env), nil
	default:
		return protocol.Errorf(s.svc.Name(), "unsupported", "standby cannot handle %s", env.Header.Type), nil
	}
}

// ack builds the standard applied-position response.
func (s *Standby) ack() *protocol.Envelope {
	s.mu.Lock()
	applied := s.applied
	s.mu.Unlock()
	return protocol.MustEnvelope(s.svc.Name(), protocol.MsgReplAck, &protocol.ReplAck{AppliedSeq: applied})
}

// resyncAck answers a stream record the standby cannot apply in order.
func (s *Standby) resyncAck() *protocol.Envelope {
	s.mu.Lock()
	s.resyncs++
	applied := s.applied
	s.mu.Unlock()
	return protocol.MustEnvelope(s.svc.Name(), protocol.MsgReplAck, &protocol.ReplAck{
		AppliedSeq: applied,
		Resync:     true,
		Addr:       s.addr,
		ServerName: s.svc.Name(),
	})
}

// applyStream runs one in-order stream apply. Records at or below the
// applied position (snapshot overlap) are acknowledged without re-applying;
// gaps and apply failures answer with a resync request instead, making the
// primary push a fresh snapshot.
func (s *Standby) applyStream(seq uint64, apply func() error) *protocol.Envelope {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return protocol.Errorf(s.svc.Name(), "promoted", "standby %s has been promoted; stream rejected", s.svc.Name())
	}
	synced, applied := s.synced, s.applied
	s.mu.Unlock()
	if !synced || seq > applied+1 {
		// Never synced, or a gap: only a snapshot can catch us up.
		return s.resyncAck()
	}
	if seq <= applied {
		// Duplicate of snapshot content or an already-applied record.
		return s.ack()
	}
	if err := apply(); err != nil {
		s.mu.Lock()
		s.errors++
		s.synced = false
		s.mu.Unlock()
		return s.resyncAck()
	}
	s.mu.Lock()
	s.applied = seq
	s.applies++
	s.mu.Unlock()
	return s.ack()
}

func (s *Standby) applyProfileOp(op *protocol.ReplProfileOp) error {
	switch op.Op {
	case opSubscribe:
		p, err := profile.UnmarshalXMLBytes(op.Profile.Bytes())
		if err != nil {
			return err
		}
		if op.IDSeq > 0 {
			s.svc.SeedIDCounter(op.IDSeq)
		}
		return s.svc.ApplyReplicatedProfile(p)
	case opUnsubscribe:
		return s.svc.ApplyReplicatedUnsubscribe(op.Client, op.ProfileID)
	default:
		return fmt.Errorf("replica: unknown profile op %q", op.Op)
	}
}

func (s *Standby) applyWAL(wal *protocol.ReplWAL) error {
	for _, it := range wal.Items {
		switch it.Kind {
		case kindAppend:
			n, err := delivery.UnmarshalNotification(it.Notification.Bytes())
			if err != nil {
				return err
			}
			// The notification's trace context survived the wire inside the
			// marshalled record; a sampled one gets its apply recorded so
			// replication cost appears in the trace's span tree.
			traced := s.tracer.Enabled() && n.Trace.Sampled()
			var start time.Time
			if traced {
				start = time.Now()
			}
			if err := s.svc.Delivery().ApplyAppend(it.Client, it.MailboxSeq, n); err != nil {
				return err
			}
			if traced {
				s.tracer.Record(n.Trace, trace.StageReplApply, start, time.Since(start),
					n.Class.String(), trace.Attr{Key: "client", Value: it.Client})
			}
		case kindAck:
			s.svc.Delivery().ApplyAck(it.Client, it.MailboxSeq)
		case kindDedup:
			s.svc.ObserveDedup(it.DedupID)
		default:
			return fmt.Errorf("replica: unknown WAL record kind %q", it.Kind)
		}
	}
	return nil
}

// applySnapshot replaces the standby's replicable state wholesale with the
// snapshot and fast-forwards the stream position to it. It holds applyMu
// for the whole replacement, so a stream record racing in from the
// listener goroutine applies strictly before the reset (and is then
// superseded by the snapshot, which was built after it) or strictly after
// (an in-order continuation) — never half-into a cleared state.
func (s *Standby) applySnapshot(snap *protocol.ReplSnapshot) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	promoted := s.promoted
	s.mu.Unlock()
	if promoted {
		// A snapshot a dying primary still had in flight must not wipe the
		// promoted, serving state (the stream path refuses identically).
		return fmt.Errorf("replica: %s has been promoted; snapshot rejected", s.svc.Name())
	}
	if snap.Server != "" && snap.Server != s.svc.Name() {
		return mismatchErr(snap.Server, s.svc.Name())
	}
	// The destructive phase starts now: drop synced first, so a half-applied
	// snapshot (apply failure below) leaves the standby answering every
	// stream record with a resync request — the primary then pushes a fresh
	// snapshot — instead of consuming the stream onto wiped state at a
	// position that still looks current.
	s.mu.Lock()
	s.synced = false
	s.mu.Unlock()
	s.svc.ResetSubscriptions()
	s.svc.ResetDedup()
	if len(bytes.TrimSpace(snap.Subscriptions.Bytes())) > 0 {
		if _, err := s.svc.LoadSubscriptions(bytes.NewReader(snap.Subscriptions.Bytes())); err != nil {
			return err
		}
	}
	for _, id := range snap.DedupIDs {
		s.svc.ObserveDedup(id)
	}
	boxes := make([]delivery.MailboxSnapshot, 0, len(snap.Mailboxes))
	for _, rm := range snap.Mailboxes {
		mb := delivery.MailboxSnapshot{Client: rm.Client, NextSeq: rm.NextSeq}
		for _, e := range rm.Entries {
			n, err := delivery.UnmarshalNotification(e.Notification.Bytes())
			if err != nil {
				return err
			}
			mb.Entries = append(mb.Entries, delivery.MailboxEntry{Seq: e.Seq, N: n})
		}
		boxes = append(boxes, mb)
	}
	if err := s.svc.Delivery().ApplyMailboxSnapshot(boxes); err != nil {
		return err
	}
	if snap.IDSeq > 0 {
		s.svc.SeedIDCounter(snap.IDSeq)
	}
	applyQoSBuckets(s.svc, snap.QoSBuckets)
	mode := core.RouteBroadcast
	if snap.Mode != "" {
		m, err := core.ParseRoutingMode(snap.Mode)
		if err != nil {
			return err
		}
		mode = m
	}
	s.mu.Lock()
	s.applied = snap.Seq
	s.synced = true
	s.mode = mode
	s.snapshots++
	s.mu.Unlock()
	return nil
}

// Promote turns the standby into the serving primary: it registers the
// inherited server name with the GDS (name resolution, broadcasts and
// receptionist traffic now reach this server's address) and re-issues the
// routing-mode state for the inherited profile population — multicast group
// joins or content-digest advertisements, exactly as the dead primary held
// them. mode overrides the mode inherited from the stream; zero keeps it.
//
// Inherited mailbox contents stay parked until their clients re-attach
// (Receptionist.AttachNotifications / core.Service.RegisterNotifier), at
// which point the ordinary reconnect drain delivers everything undelivered
// at the moment the primary died.
func (s *Standby) Promote(ctx context.Context, mode core.RoutingMode) error {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil
	}
	if !s.synced {
		s.mu.Unlock()
		return errors.New("replica: standby never synced; refusing to promote empty state")
	}
	// Committed up front so stream records and snapshots stop applying
	// while the takeover runs — and rolled back on failure, so a retry
	// (e.g. `gs-server -promote` again once the GDS is reachable) actually
	// re-attempts the registration instead of no-opping against a zombie.
	s.promoted = true
	if mode == 0 {
		mode = s.mode
	}
	s.mu.Unlock()
	rollback := func() {
		s.mu.Lock()
		s.promoted = false
		s.mu.Unlock()
	}
	if s.gdsCli != nil {
		if err := s.gdsCli.Register(ctx); err != nil {
			rollback()
			return fmt.Errorf("replica: promote register: %w", err)
		}
	}
	if err := s.svc.SetRoutingMode(ctx, mode); err != nil {
		rollback()
		return fmt.Errorf("replica: promote routing mode %s: %w", mode, err)
	}
	s.log.Info("standby promoted to primary",
		logging.String("server", s.svc.Name()), logging.String("mode", mode.String()))
	return nil
}
