package replica

import (
	"context"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/transport"
)

// pair builds a primary service + replicator and a standby service +
// receiver over one memory transport, without any directory.
type pair struct {
	tr      *transport.Memory
	primary *core.Service
	standby *core.Service
	repl    *Primary
	recv    *Standby
}

func newPair(t *testing.T) *pair {
	t.Helper()
	tr := transport.NewMemory(1)
	mk := func(addr string) *core.Service {
		svc, err := core.New(core.Config{ServerName: "Alpha", ServerAddr: addr, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	p := &pair{tr: tr, primary: mk("gs://alpha"), standby: mk("gs://alpha-b")}
	t.Cleanup(func() {
		_ = p.primary.Close()
		_ = p.standby.Close()
		_ = tr.Close()
	})
	repl, err := NewPrimary(PrimaryConfig{Service: p.primary, Transport: tr, ListenAddr: "repl://alpha"})
	if err != nil {
		t.Fatal(err)
	}
	p.repl = repl
	recv, err := NewStandby(StandbyConfig{
		Service:     p.standby,
		Transport:   tr,
		ListenAddr:  "repl://alpha-b",
		PrimaryAddr: "repl://alpha",
	})
	if err != nil {
		t.Fatal(err)
	}
	p.recv = recv
	t.Cleanup(func() {
		_ = repl.Close()
		_ = recv.Close()
	})
	return p
}

func (p *pair) publish(t *testing.T, ctx context.Context, ids ...string) {
	t.Helper()
	evs := make([]*event.Event, 0, len(ids))
	for _, id := range ids {
		evs = append(evs, event.New(id, event.TypeDocumentsAdded,
			event.QName{Host: "Alpha", Collection: "C"}, 1,
			[]event.DocRef{{ID: "d-" + id}}, time.Unix(1117584000, 0)))
	}
	if _, err := p.primary.PublishBuild(ctx, &collection.BuildResult{Events: evs}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReplicatesState(t *testing.T) {
	ctx := context.Background()
	p := newPair(t)
	if err := p.recv.Join(ctx); err != nil {
		t.Fatal(err)
	}

	// Profile churn after the join travels over the stream: a primitive, a
	// composite wrapper, and an unsubscription.
	id1, err := p.primary.Subscribe("carol", profile.MustParse(`collection = "Alpha.C"`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.primary.SubscribeComposite("carol",
		`COUNT 2 OF (collection = "Alpha.C") WITHIN 24h`); err != nil {
		t.Fatal(err)
	}
	gone, err := p.primary.Subscribe("carol", profile.MustParse(`collection = "Alpha.Z"`))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.primary.Unsubscribe("carol", gone); err != nil {
		t.Fatal(err)
	}

	// Events for a detached client park in the mailbox on both ends; the
	// dedup admission replicates alongside.
	p.publish(t, ctx, "e1", "e2")
	if err := p.primary.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}

	if got := p.standby.UserProfileCount(); got != 2 { // primitive + composite step
		t.Errorf("standby user profiles = %d, want 2", got)
	}
	if got := p.standby.CompositeProfileCount(); got != 1 {
		t.Errorf("standby composite profiles = %d, want 1", got)
	}
	// Three parked notifications: e1 and e2 through the primitive profile,
	// plus the COUNT 2 composite firing that e2 completed.
	if got := p.standby.Delivery().Pending("carol"); got != 3 {
		t.Errorf("standby parked notifications = %d, want 3", got)
	}
	if !p.standby.ObserveDedup("e1") {
		t.Error("standby dedup window is missing a replicated admission")
	}
	// The primitive profile replicated under its primary-minted ID.
	if got := p.standby.ProfilesOf("carol"); len(got) != 2 || got[0] != id1 && got[1] != id1 {
		t.Errorf("standby profiles of carol = %v, want to include %s", got, id1)
	}

	// Delivery at the primary acks through the stream: the standby's copy
	// of the mailbox drains without ever delivering anything itself.
	sink := core.NewMemoryNotifier()
	p.primary.RegisterNotifier("carol", sink)
	waitFor(t, func() bool { return p.primary.Delivery().Pending("carol") == 0 && sink.Len() == 3 })
	waitFor(t, func() bool { return p.standby.Delivery().Pending("carol") == 0 })
}

func TestSnapshotCatchUpAndRejoin(t *testing.T) {
	ctx := context.Background()
	p := newPair(t)

	// State accumulated before the standby exists arrives via the join
	// snapshot, not the stream.
	if _, err := p.primary.Subscribe("dave", profile.MustParse(`collection = "Alpha.C"`)); err != nil {
		t.Fatal(err)
	}
	p.publish(t, ctx, "pre1", "pre2", "pre3")
	if err := p.primary.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.recv.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.standby.Delivery().Pending("dave"); got != 3 {
		t.Fatalf("standby parked after snapshot = %d, want 3", got)
	}
	if got := p.standby.UserProfileCount(); got != 1 {
		t.Fatalf("standby user profiles after snapshot = %d, want 1", got)
	}

	// A heartbeat against a healthy, in-sync pair must not resync.
	if err := p.recv.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if st := p.standby.Stats(); st.ReplicaSnapshots != 1 {
		t.Errorf("healthy heartbeat resynced: snapshots = %d, want 1", st.ReplicaSnapshots)
	}

	// Cut the standby: streamed records are dropped and the stream marked
	// broken; the next heartbeat detects it and rejoins, resyncing
	// everything that was missed.
	p.tr.SetNodeDown("repl://alpha-b", true)
	p.publish(t, ctx, "cut1", "cut2")
	if err := p.primary.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}
	p.tr.SetNodeDown("repl://alpha-b", false)
	if got := p.standby.Delivery().Pending("dave"); got != 3 {
		t.Fatalf("standby saw records across a dead link: parked = %d, want 3", got)
	}
	if err := p.recv.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.standby.Delivery().Pending("dave"); got != 5 {
		t.Errorf("standby parked after heartbeat-triggered rejoin = %d, want 5", got)
	}
	st := p.primary.Stats()
	if st.ReplicaRole != "primary" || st.ReplicaDropped == 0 {
		t.Errorf("primary replica stats = role %q dropped %d, want primary role with drops counted",
			st.ReplicaRole, st.ReplicaDropped)
	}
}

func TestSyncSnapshotRepairsBrokenStream(t *testing.T) {
	ctx := context.Background()
	p := newPair(t)
	if err := p.recv.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.primary.Subscribe("fay", profile.MustParse(`collection = "Alpha.C"`)); err != nil {
		t.Fatal(err)
	}

	// Break the stream, lose records, heal: the primary-side push repair.
	p.tr.SetNodeDown("repl://alpha-b", true)
	p.publish(t, ctx, "lost1")
	if err := p.primary.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}
	p.tr.SetNodeDown("repl://alpha-b", false)
	if err := p.repl.SyncSnapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.standby.Delivery().Pending("fay"); got != 1 {
		t.Fatalf("standby parked after push snapshot = %d, want 1", got)
	}
	// The successful snapshot un-breaks the stream: subsequent records
	// flow again without another join.
	p.publish(t, ctx, "flow1")
	if err := p.primary.DrainDeliveries(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.standby.Delivery().Pending("fay"); got != 2 {
		t.Errorf("standby parked after stream resumed = %d, want 2", got)
	}
	if got, want := p.repl.ConfirmedSeq(), p.recv.AppliedSeq(); got != want {
		t.Errorf("primary confirmed seq %d, standby applied %d — positions diverge", got, want)
	}
}

func TestPromoteTakesOverNameAndRouting(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory(7)
	defer tr.Close()
	node, err := gds.NewNode("gds0", "gds://0", 1, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	mk := func(name, addr string, cli *gds.Client) *core.Service {
		svc, err := core.New(core.Config{
			ServerName: name, ServerAddr: addr, Transport: tr, GDS: cli, ContentWarmup: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		return svc
	}
	priCli := gds.NewClient("Alpha", "gs://alpha", "gds://0", tr)
	primary := mk("Alpha", "gs://alpha", priCli)
	if err := priCli.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if err := primary.SetRoutingMode(ctx, core.RouteMulticast); err != nil {
		t.Fatal(err)
	}
	repl, err := NewPrimary(PrimaryConfig{Service: primary, Transport: tr, ListenAddr: "repl://alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	// The standby carries the primary's NAME but its own address, and does
	// not register until promotion.
	sbCli := gds.NewClient("Alpha", "gs://alpha-b", "gds://0", tr)
	standby := mk("Alpha", "gs://alpha-b", sbCli)
	recv, err := NewStandby(StandbyConfig{
		Service: standby, Transport: tr,
		ListenAddr: "repl://alpha-b", PrimaryAddr: "repl://alpha",
		GDS: sbCli,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	if err := recv.Promote(ctx, 0); err == nil {
		t.Fatal("promote of a never-synced standby must refuse")
	}
	if err := recv.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Subscribe("erin", profile.MustParse(`collection = "Beta.X"`)); err != nil {
		t.Fatal(err)
	}

	// A promotion that cannot reach the directory must fail AND roll back:
	// the standby keeps consuming the stream and a later retry re-attempts
	// the registration (no zombie that neither serves nor replicates).
	tr.SetNodeDown("gds://0", true)
	if err := recv.Promote(ctx, 0); err == nil {
		t.Fatal("promote with the directory unreachable must fail")
	}
	if recv.Promoted() {
		t.Fatal("failed promotion left promoted=true")
	}
	tr.SetNodeDown("gds://0", false)
	if _, err := primary.Subscribe("erin", profile.MustParse(`collection = "Gamma.Y"`)); err != nil {
		t.Fatal(err)
	}
	if got := standby.UserProfileCount(); got != 2 {
		t.Fatalf("standby stopped consuming the stream after a failed promotion: profiles = %d, want 2", got)
	}

	// Kill the primary and promote: the directory must now resolve the
	// inherited name to the standby's address and hold its group joins.
	tr.SetNodeDown("gs://alpha", true)
	tr.SetNodeDown("Alpha", true) // outbound sends from the dead process
	// The standby's own traffic uses the same logical From name; promotion
	// happens after the takeover decision, so bring the name back up for
	// the standby (crash fencing is the operator's concern, not the sim's).
	tr.SetNodeDown("Alpha", false)
	if err := recv.Promote(ctx, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := sbCli.Resolve(ctx, "Alpha")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "gs://alpha-b" {
		t.Errorf("post-promotion resolution = %q, want gs://alpha-b", addr)
	}
	if standby.RoutingMode() != core.RouteMulticast {
		t.Errorf("promoted routing mode = %s, want multicast (inherited)", standby.RoutingMode())
	}
	snap := node.Snapshot()
	if members := snap.Groups["coll:beta.x"]; len(members) != 1 || members[0] != "Alpha" {
		t.Errorf("post-promotion group members = %v, want [Alpha]", members)
	}
	if !recv.Promoted() {
		t.Error("standby does not report promotion")
	}
	st := standby.Stats()
	if st.ReplicaRole != "primary" || !st.ReplicaPromoted {
		t.Errorf("promoted stats role=%q promoted=%v", st.ReplicaRole, st.ReplicaPromoted)
	}

	// Client-side failover: a receptionist still pointing at the dead
	// primary re-resolves the inherited name through the directory and
	// reaches the standby.
	recep := greenstone.NewReceptionist("r", tr)
	recep.Connect("Alpha", "gs://alpha")
	refreshed, err := recep.RefreshHost(ctx, "Alpha", sbCli)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed != "gs://alpha-b" {
		t.Errorf("receptionist refreshed to %q, want gs://alpha-b", refreshed)
	}
}

func TestStreamRejectedAfterPromotion(t *testing.T) {
	ctx := context.Background()
	p := newPair(t)
	if err := p.recv.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.recv.Promote(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.primary.Subscribe("zoe", profile.MustParse(`collection = "Alpha.C"`)); err != nil {
		t.Fatal(err)
	}
	if got := p.standby.UserProfileCount(); got != 0 {
		t.Errorf("promoted standby applied a zombie-primary record: profiles = %d", got)
	}
	if st := p.primary.Stats(); st.ReplicaErrors == 0 {
		t.Error("zombie primary's rejected stream not counted as an error")
	}
	// A snapshot the dying primary still had in flight must not wipe the
	// promoted, serving state either.
	if err := p.repl.SyncSnapshot(ctx); err == nil {
		t.Error("promoted standby accepted a zombie-primary snapshot")
	}
	// And heartbeats from the promoted side are a no-op, not a rejoin.
	if err := p.recv.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if p.standby.Stats().ReplicaSnapshots != 1 {
		t.Error("promoted standby's heartbeat resynced from the zombie primary")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestQoSBucketsSurvivePromotion checks the carried-over ROADMAP item:
// token-bucket levels replicate in snapshots and heartbeats, so a promoted
// standby enforces the quotas the primary had already charged instead of
// granting every subscriber a fresh burst.
func TestQoSBucketsSurvivePromotion(t *testing.T) {
	ctx := context.Background()
	p := newPair(t)

	// Burst-only quotas (no refill) on both ends: deterministic levels.
	qcfg := qos.Config{SubscriberBurst: 5, CollectionBurst: 100}
	p.primary.SetQoS(qos.NewController(qcfg))
	p.standby.SetQoS(qos.NewController(qcfg))

	// Charge 3 of carol's 5 tokens on the primary.
	for i := 0; i < 3; i++ {
		if !p.primary.QoS().AllowSubscriber("carol") {
			t.Fatalf("admission %d refused under burst 5", i)
		}
	}

	// The join snapshot ships the levels.
	if err := p.recv.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if !p.recv.Synced() {
		t.Fatal("standby not synced after join")
	}

	// Charge one more on the primary, then heartbeat: the probe response
	// piggybacks the fresher levels.
	if !p.primary.QoS().AllowSubscriber("carol") {
		t.Fatal("fourth admission refused under burst 5")
	}
	if err := p.recv.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.recv.ProbeErr(); err != nil {
		t.Fatalf("probe error after successful heartbeat: %v", err)
	}

	// Promote. The standby's controller must hold carol at 1 remaining
	// token: one more admission passes, the next is refused — not the 5
	// fresh tokens a reset would grant.
	if err := p.recv.Promote(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if !p.standby.QoS().AllowSubscriber("carol") {
		t.Fatal("promoted standby refused carol's last budgeted admission")
	}
	if p.standby.QoS().AllowSubscriber("carol") {
		t.Fatal("promotion reset carol's quota: sixth admission passed")
	}
	// An untouched subscriber still gets its full burst.
	if !p.standby.QoS().AllowSubscriber("dave") {
		t.Fatal("fresh subscriber refused on promoted standby")
	}
}
