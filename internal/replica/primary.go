package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// streamTimeout bounds one stream or snapshot send. It is held with the
// stream lock, so it also bounds how long a wedged standby can stall the
// serving primary's hooked paths.
const streamTimeout = 5 * time.Second

// PrimaryConfig assembles a Primary.
type PrimaryConfig struct {
	// Service is the serving alerting service whose state is replicated.
	Service *core.Service
	// Transport carries the stream and receives join requests.
	Transport transport.Transport
	// ListenAddr is the primary's replication endpoint: standbys send their
	// join handshake (MsgReplAck with Resync) here.
	ListenAddr string
}

// Primary is the sending end of the replication stream. It installs itself
// as the service's ReplicationSink and the delivery pipeline's mailbox
// observer; every hook becomes one stream envelope, shipped synchronously
// under the stream lock so the standby applies records in stream order.
//
// One standby is supported at a time; a second join replaces the first.
// A failed stream send marks the stream broken and drops subsequent records
// until the standby rejoins (which resyncs it with a fresh snapshot), so a
// dead standby costs one failed send, not one timeout per record.
type Primary struct {
	svc      *core.Service
	tr       transport.Transport
	addr     string
	listener io.Closer

	// mu serialises stream sequence assignment and sends: the stream IS the
	// serialisation of concurrent state changes.
	mu          sync.Mutex
	standbyAddr string
	broken      bool
	seq         uint64
	confirmed   uint64
	streamed    int64
	dropped     int64
	errors      int64
	snapshots   int64
	resyncs     int64
}

// NewPrimary builds a Primary, wires it into the service and pipeline, and
// starts listening for standby joins. Close it before closing the service.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.Service == nil || cfg.Transport == nil {
		return nil, errors.New("replica: primary needs a service and a transport")
	}
	if cfg.ListenAddr == "" {
		return nil, errors.New("replica: primary needs a listen address")
	}
	p := &Primary{svc: cfg.Service, tr: cfg.Transport, addr: cfg.ListenAddr}
	l, err := cfg.Transport.Listen(cfg.ListenAddr, transport.HandlerFunc(p.handle))
	if err != nil {
		return nil, fmt.Errorf("replica: primary listen: %w", err)
	}
	p.listener = l
	cfg.Service.SetReplicationSink(p)
	cfg.Service.SetReplicaStatsProvider(p)
	cfg.Service.Delivery().SetObserver(p.onMailboxOps)
	return p, nil
}

// Close detaches the hooks and stops listening for joins.
func (p *Primary) Close() error {
	p.svc.SetReplicationSink(nil)
	p.svc.SetReplicaStatsProvider(nil)
	p.svc.Delivery().SetObserver(nil)
	if p.listener != nil {
		return p.listener.Close()
	}
	return nil
}

// StandbyAddr reports the attached standby's endpoint ("" when none).
func (p *Primary) StandbyAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken {
		return ""
	}
	return p.standbyAddr
}

// ReplicaStats implements core.ReplicaStatsProvider.
func (p *Primary) ReplicaStats() core.ReplicaStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := roleStats("primary", p.seq, p.streamed, p.dropped, p.errors, p.snapshots, p.resyncs, false)
	// Lag is the un-acknowledged stream window. Before any standby attaches
	// the stream has no position to lag behind (seq stays 0), so this reads
	// 0 on a solo primary.
	if p.seq > p.confirmed {
		st.StreamLag = p.seq - p.confirmed
	}
	return st
}

// handle processes the primary side of the replication protocol: a standby
// join/resync request (Resync set), answered with a full snapshot, or a
// liveness probe (Resync clear), answered with the primary's stream
// position so the standby can detect divergence and rejoin.
func (p *Primary) handle(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	switch env.Header.Type {
	case protocol.MsgReplAck:
		var ack protocol.ReplAck
		if err := protocol.Decode(env, protocol.MsgReplAck, &ack); err != nil {
			return protocol.Errorf(p.svc.Name(), "decode", "%v", err), nil
		}
		if ack.ServerName != "" && ack.ServerName != p.svc.Name() {
			return protocol.Errorf(p.svc.Name(), "mismatch", "%v", mismatchErr(p.svc.Name(), ack.ServerName)), nil
		}
		if ack.Addr == "" {
			return protocol.Errorf(p.svc.Name(), "join", "request carries no standby address"), nil
		}
		if !ack.Resync {
			// Heartbeat probe: report the stream position, and ask for a
			// rejoin when the stream is broken or this primary has never
			// seen this standby (e.g. a primary restart). Position
			// divergence is judged by the standby against the returned
			// sequence — here the probe's sampled position races benignly
			// with in-flight records. The probe never repairs state itself;
			// only a join's snapshot can.
			p.mu.Lock()
			needResync := p.broken || p.standbyAddr != ack.Addr
			seq := p.seq
			p.mu.Unlock()
			return protocol.MustEnvelope(p.svc.Name(), protocol.MsgReplAck, &protocol.ReplAck{
				AppliedSeq: seq,
				Resync:     needResync,
				QoSBuckets: exportQoSBuckets(p.svc),
			}), nil
		}
		p.mu.Lock()
		p.standbyAddr = ack.Addr
		p.broken = false
		snap, err := p.snapshotLocked()
		p.mu.Unlock()
		if err != nil {
			return protocol.Errorf(p.svc.Name(), "snapshot", "%v", err), nil
		}
		return protocol.MustEnvelope(p.svc.Name(), protocol.MsgReplSnapshot, snap), nil
	default:
		return protocol.Errorf(p.svc.Name(), "unsupported", "primary cannot handle %s", env.Header.Type), nil
	}
}

// SyncSnapshot pushes a full snapshot to the attached standby (anti-entropy
// on demand; joins and resyncs trigger it automatically).
func (p *Primary) SyncSnapshot(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sendSnapshotLocked(ctx)
}

// snapshotLocked assembles the full replicable state, stamped with the
// current stream position. Callers hold p.mu, so no stream record can
// interleave with the snapshot; a hook whose mutation landed before the
// snapshot but whose record ships after it is applied twice, which every
// apply path tolerates (profile re-add replaces, mailbox re-append and
// dedup re-observe are no-ops).
func (p *Primary) snapshotLocked() (*protocol.ReplSnapshot, error) {
	var subs bytes.Buffer
	if err := p.svc.SaveSubscriptions(&subs); err != nil {
		return nil, err
	}
	snap := &protocol.ReplSnapshot{
		Seq:           p.seq,
		Server:        p.svc.Name(),
		Mode:          p.svc.RoutingMode().String(),
		IDSeq:         p.svc.IDSeq(),
		Subscriptions: protocol.Wrap(subs.Bytes()),
		DedupIDs:      p.svc.DedupIDs(),
		QoSBuckets:    exportQoSBuckets(p.svc),
	}
	for _, mb := range p.svc.Delivery().ExportMailboxes() {
		rm := protocol.ReplMailbox{Client: mb.Client, NextSeq: mb.NextSeq}
		for _, e := range mb.Entries {
			raw, err := delivery.MarshalNotification(e.N)
			if err != nil {
				return nil, err
			}
			rm.Entries = append(rm.Entries, protocol.ReplMailboxEntry{Seq: e.Seq, Notification: protocol.Wrap(raw)})
		}
		snap.Mailboxes = append(snap.Mailboxes, rm)
	}
	p.snapshots++
	return snap, nil
}

func (p *Primary) sendSnapshotLocked(ctx context.Context) error {
	if p.standbyAddr == "" {
		return errors.New("replica: no standby attached")
	}
	snap, err := p.snapshotLocked()
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(p.svc.Name(), protocol.MsgReplSnapshot, snap)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, streamTimeout)
	defer cancel()
	var ack protocol.ReplAck
	if err := transport.SendExpect(ctx, p.tr, p.standbyAddr, env, protocol.MsgReplAck, &ack); err != nil {
		p.broken = true
		p.errors++
		return err
	}
	// A successfully applied snapshot makes the standby consistent with the
	// current stream position: a previously broken stream may resume.
	p.broken = false
	p.confirmed = ack.AppliedSeq
	return nil
}

// ConfirmedSeq reports the stream position the standby last acknowledged.
// It equals the stream position whenever the pair is in sync; the gap is
// the primary's un-acknowledged window (zero under the synchronous
// stream).
func (p *Primary) ConfirmedSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.confirmed
}

// noteError counts a replication failure that could not take the stream
// path (e.g. a payload that failed to marshal). The stream is marked
// broken so the divergence is repaired by the next join/heartbeat resync
// instead of persisting silently.
func (p *Primary) noteError() {
	p.mu.Lock()
	p.errors++
	p.broken = true
	p.mu.Unlock()
}

// stream ships one record, assigning the next stream sequence. The payload
// builder receives the sequence because it is only known under the lock.
func (p *Primary) stream(typ protocol.MessageType, build func(seq uint64) (any, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.standbyAddr == "" || p.broken {
		p.dropped++
		return
	}
	payload, err := build(p.seq + 1)
	if err != nil {
		// The record is lost to the stream but the position did not
		// advance, so only a broken mark makes the divergence visible to
		// the heartbeat resync.
		p.errors++
		p.broken = true
		return
	}
	p.seq++
	env, err := protocol.NewEnvelope(p.svc.Name(), typ, payload)
	if err != nil {
		p.errors++
		p.broken = true
		return
	}
	// The send runs under p.mu — the stream lock IS the serialisation — so
	// it must be bounded: an unresponsive standby would otherwise stall
	// every publish, subscribe and Stats() behind this mutex for the
	// transport's full timeout.
	ctx, cancel := context.WithTimeout(context.Background(), streamTimeout)
	defer cancel()
	var ack protocol.ReplAck
	if err := transport.SendExpect(ctx, p.tr, p.standbyAddr, env, protocol.MsgReplAck, &ack); err != nil {
		// Stream broken: drop records until the standby rejoins (the join
		// snapshot resyncs it; re-sending individual records cannot).
		p.broken = true
		p.errors++
		return
	}
	p.streamed++
	p.confirmed = ack.AppliedSeq
	if ack.Resync {
		// The standby detected a gap or failed an apply: catch it up with a
		// fresh snapshot before the next record.
		p.resyncs++
		if err := p.sendSnapshotLocked(context.Background()); err != nil {
			p.broken = true
		}
	}
}

// ReplicateProfileAdd implements core.ReplicationSink.
func (p *Primary) ReplicateProfileAdd(prof *profile.Profile) {
	raw, err := prof.MarshalXMLBytes()
	if err != nil {
		p.noteError()
		return
	}
	client := prof.Owner // "" for auxiliary profiles
	idSeq := p.svc.IDSeq()
	p.stream(protocol.MsgReplSubscribe, func(seq uint64) (any, error) {
		return &protocol.ReplProfileOp{
			Seq:     seq,
			Op:      opSubscribe,
			Client:  client,
			IDSeq:   idSeq,
			Profile: protocol.Wrap(raw),
		}, nil
	})
}

// ReplicateProfileRemove implements core.ReplicationSink.
func (p *Primary) ReplicateProfileRemove(client, profileID string) {
	p.stream(protocol.MsgReplSubscribe, func(seq uint64) (any, error) {
		return &protocol.ReplProfileOp{
			Seq:       seq,
			Op:        opUnsubscribe,
			Client:    client,
			ProfileID: profileID,
		}, nil
	})
}

// ReplicateDedup implements core.ReplicationSink.
func (p *Primary) ReplicateDedup(id string) {
	p.stream(protocol.MsgReplWAL, func(seq uint64) (any, error) {
		return &protocol.ReplWAL{
			Seq:   seq,
			Items: []protocol.ReplWALItem{{Kind: kindDedup, DedupID: id}},
		}, nil
	})
}

// onMailboxOps is the delivery pipeline's observer: one envelope per
// operation batch (an enqueue plus its evictions, or a flush's acks).
func (p *Primary) onMailboxOps(ops []delivery.MailboxOp) {
	items := make([]protocol.ReplWALItem, 0, len(ops))
	for _, op := range ops {
		it := protocol.ReplWALItem{Client: op.Client, MailboxSeq: op.Seq}
		if op.Ack {
			it.Kind = kindAck
		} else {
			raw, err := delivery.MarshalNotification(op.N)
			if err != nil {
				p.noteError()
				continue
			}
			it.Kind = kindAppend
			it.Notification = protocol.Wrap(raw)
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		return
	}
	p.stream(protocol.MsgReplWAL, func(seq uint64) (any, error) {
		return &protocol.ReplWAL{Seq: seq, Items: items}, nil
	})
}
