package collection

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/index"
)

// Collection is one collection managed by a Greenstone server: its
// configuration, current data set, search index and browse classifiers.
// The data set is replaced wholesale by Build, mirroring Greenstone's batch
// (re)build process.
type Collection struct {
	mu           sync.RWMutex
	cfg          Config
	host         string
	docs         map[string]*Document
	idx          *index.Index
	classifiers  map[string]*index.Classifier
	buildVersion int
	builtAt      time.Time
	fingerprints map[string]string
	// buildDuration records how long the last index build took; the
	// alerting overhead experiment (E1) compares against filtering time.
	buildDuration time.Duration
}

// New creates an unbuilt collection on the given host.
func New(host string, cfg Config) (*Collection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if host == "" {
		return nil, fmt.Errorf("collection: empty host for %q", cfg.Name)
	}
	return &Collection{
		cfg:          cfg,
		host:         host,
		docs:         make(map[string]*Document),
		idx:          index.New(),
		classifiers:  make(map[string]*index.Classifier),
		fingerprints: make(map[string]string),
	}, nil
}

// QName returns the collection's qualified name.
func (c *Collection) QName() event.QName {
	return event.QName{Host: c.host, Collection: c.cfg.Name}
}

// Config returns a copy of the configuration.
func (c *Collection) Config() Config {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cfg := c.cfg
	cfg.IndexFields = append([]string(nil), c.cfg.IndexFields...)
	cfg.Classifiers = append([]string(nil), c.cfg.Classifiers...)
	cfg.Subs = append([]SubRef(nil), c.cfg.Subs...)
	return cfg
}

// SetConfig replaces the configuration (collection restructuring). The
// caller is responsible for propagating auxiliary-profile changes.
func (c *Collection) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Name != c.cfg.Name {
		return fmt.Errorf("collection: cannot rename %q to %q", c.cfg.Name, cfg.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg = cfg
	return nil
}

// IsVirtual reports whether the collection holds no data of its own but has
// sub-collections (paper §3: Hamilton.C).
func (c *Collection) IsVirtual() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs) == 0 && len(c.cfg.Subs) > 0
}

// Public reports visibility.
func (c *Collection) Public() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cfg.Public
}

// Len reports the local document count (excluding sub-collections).
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// BuildVersion reports the current build number (0 = never built).
func (c *Collection) BuildVersion() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.buildVersion
}

// BuildDuration reports how long the last index build took.
func (c *Collection) BuildDuration() time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.buildDuration
}

// Doc fetches a local document by ID.
func (c *Collection) Doc(id string) (*Document, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Docs returns all local documents sorted by ID.
func (c *Collection) Docs() []*Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Document, 0, len(c.docs))
	for _, d := range c.docs {
		out = append(out, d.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Search runs a retrieval query over the local data set. field "" means
// full text. It returns hits sorted by score.
func (c *Collection) Search(query, field string, limit int) ([]index.Hit, error) {
	q, err := index.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	idx := c.idx
	c.mu.RUnlock()
	return idx.Search(q, field, limit), nil
}

// Classifier returns the browse classifier for a field built during the
// last build.
func (c *Collection) Classifier(field string) (*index.Classifier, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.classifiers[field]
	return cl, ok
}

// BuildResult summarises one (re)build: the diff against the previous build
// and the alerting events describing it.
type BuildResult struct {
	// Collection is the built collection's qualified name.
	Collection event.QName
	// Version is the new build number.
	Version int
	// Added, Changed, Removed list the diffed document IDs.
	Added, Changed, Removed []string
	// Events are the alerting events describing the build, ready to
	// publish. The first event is always the collection-built/rebuilt
	// summary; per-kind document events follow when applicable.
	Events []*event.Event
	// IndexDuration is the time spent building indexes and classifiers —
	// the baseline cost the paper compares filtering against.
	IndexDuration time.Duration
}

// Build replaces the collection's data set with docs, rebuilds the search
// index and classifiers, diffs against the previous build, and produces the
// alerting events. idgen supplies event IDs (the server's naming + counter).
func (c *Collection) Build(docs []*Document, now time.Time, idgen func() string) (*BuildResult, error) {
	for _, d := range docs {
		if d.ID == "" {
			return nil, fmt.Errorf("collection %s: document with empty ID", c.cfg.Name)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	newDocs := make(map[string]*Document, len(docs))
	newPrints := make(map[string]string, len(docs))
	for _, d := range docs {
		if _, dup := newDocs[d.ID]; dup {
			return nil, fmt.Errorf("collection %s: duplicate document ID %q", c.cfg.Name, d.ID)
		}
		cp := d.Clone()
		newDocs[d.ID] = cp
		newPrints[d.ID] = cp.Fingerprint()
	}

	var added, changed, removed []string
	for id, print := range newPrints {
		old, existed := c.fingerprints[id]
		switch {
		case !existed:
			added = append(added, id)
		case old != print:
			changed = append(changed, id)
		}
	}
	for id := range c.fingerprints {
		if _, still := newPrints[id]; !still {
			removed = append(removed, id)
		}
	}
	sort.Strings(added)
	sort.Strings(changed)
	sort.Strings(removed)

	start := time.Now()
	ixDocs := make([]index.Doc, 0, len(newDocs))
	for _, d := range newDocs {
		ixDocs = append(ixDocs, index.Doc{ID: d.ID, Fields: d.Metadata, Text: d.Content})
	}
	c.idx.Build(ixDocs, c.cfg.IndexFields)
	classifiers := make(map[string]*index.Classifier, len(c.cfg.Classifiers))
	for _, f := range c.cfg.Classifiers {
		classifiers[f] = index.BuildClassifier(ixDocs, f)
	}
	indexDuration := time.Since(start)

	firstBuild := c.buildVersion == 0
	c.buildVersion++
	c.docs = newDocs
	c.fingerprints = newPrints
	c.classifiers = classifiers
	c.builtAt = now
	c.buildDuration = indexDuration

	res := &BuildResult{
		Collection:    c.QName(),
		Version:       c.buildVersion,
		Added:         added,
		Changed:       changed,
		Removed:       removed,
		IndexDuration: indexDuration,
	}
	res.Events = c.buildEventsLocked(firstBuild, added, changed, removed, now, idgen)
	return res, nil
}

// buildEventsLocked creates the event set for a finished build.
func (c *Collection) buildEventsLocked(firstBuild bool, added, changed, removed []string, now time.Time, idgen func() string) []*event.Event {
	qn := event.QName{Host: c.host, Collection: c.cfg.Name}
	summaryType := event.TypeCollectionRebuilt
	if firstBuild {
		summaryType = event.TypeCollectionBuilt
	}
	var events []*event.Event
	// Summary event carries all current docs on first build, the union of
	// added+changed on rebuilds (subscribers to the collection as a whole
	// care about what is new or different).
	var summaryDocs []event.DocRef
	if firstBuild {
		for _, d := range c.docs {
			summaryDocs = append(summaryDocs, c.docRefLocked(d.ID))
		}
		sort.Slice(summaryDocs, func(i, j int) bool { return summaryDocs[i].ID < summaryDocs[j].ID })
	} else {
		for _, id := range added {
			summaryDocs = append(summaryDocs, c.docRefLocked(id))
		}
		for _, id := range changed {
			summaryDocs = append(summaryDocs, c.docRefLocked(id))
		}
	}
	events = append(events, event.New(idgen(), summaryType, qn, c.buildVersion, summaryDocs, now))

	mk := func(typ event.Type, ids []string, withDocs bool) {
		if len(ids) == 0 {
			return
		}
		refs := make([]event.DocRef, 0, len(ids))
		for _, id := range ids {
			if withDocs {
				refs = append(refs, c.docRefLocked(id))
			} else {
				refs = append(refs, event.DocRef{ID: id})
			}
		}
		events = append(events, event.New(idgen(), typ, qn, c.buildVersion, refs, now))
	}
	if !firstBuild {
		mk(event.TypeDocumentsAdded, added, true)
		mk(event.TypeDocumentsChanged, changed, true)
		mk(event.TypeDocumentsRemoved, removed, false)
	}
	return events
}

func (c *Collection) docRefLocked(id string) event.DocRef {
	d := c.docs[id]
	if d == nil {
		return event.DocRef{ID: id}
	}
	meta := make(map[string][]string, len(d.Metadata))
	for k, v := range d.Metadata {
		meta[k] = append([]string(nil), v...)
	}
	return event.DocRef{ID: d.ID, Metadata: meta, Snippet: d.Snippet(200)}
}
