package collection

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/gsalert/gsalert/internal/event"
)

func testDocs(ids ...string) []*Document {
	docs := make([]*Document, 0, len(ids))
	for i, id := range ids {
		docs = append(docs, &Document{
			ID: id,
			Metadata: map[string][]string{
				"dc.Title":   {fmt.Sprintf("Title %s", id)},
				"dc.Creator": {fmt.Sprintf("Author%d", i%3)},
			},
			Content: fmt.Sprintf("content of %s with words music library %d", id, i),
			MIME:    "text/plain",
		})
	}
	return docs
}

func idSeq(prefix string) func() string {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("%s-%d", prefix, n)
	}
}

func mustCollection(t *testing.T, cfg Config) *Collection {
	t.Helper()
	c, err := New("Hamilton", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDocumentFingerprint(t *testing.T) {
	d1 := testDocs("a")[0]
	d2 := d1.Clone()
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Error("clone has different fingerprint")
	}
	d2.Content += "!"
	if d1.Fingerprint() == d2.Fingerprint() {
		t.Error("content change not reflected")
	}
	d3 := d1.Clone()
	d3.Metadata["dc.Title"] = []string{"Other"}
	if d1.Fingerprint() == d3.Fingerprint() {
		t.Error("metadata change not reflected")
	}
	// Field order independence.
	d4 := &Document{ID: "x", Metadata: map[string][]string{"a": {"1"}, "b": {"2"}}}
	d5 := &Document{ID: "x", Metadata: map[string][]string{"b": {"2"}, "a": {"1"}}}
	if d4.Fingerprint() != d5.Fingerprint() {
		t.Error("map order changed fingerprint")
	}
}

func TestDocumentHelpers(t *testing.T) {
	d := &Document{ID: "d1", Content: strings.Repeat("x", 500)}
	if d.Title() != "d1" {
		t.Errorf("Title fallback = %q", d.Title())
	}
	d.Metadata = map[string][]string{"dc.Title": {"Real Title"}}
	if d.Title() != "Real Title" {
		t.Errorf("Title = %q", d.Title())
	}
	if got := d.Snippet(100); len([]rune(got)) != 100 {
		t.Errorf("Snippet len = %d", len([]rune(got)))
	}
	if got := d.Snippet(0); len([]rune(got)) != 200 {
		t.Errorf("default Snippet len = %d", len([]rune(got)))
	}
	short := &Document{Content: "short"}
	if short.Snippet(100) != "short" {
		t.Errorf("short snippet = %q", short.Snippet(100))
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "D", Public: true, Subs: []SubRef{{Host: "London", Name: "E"}, {Name: "F"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		cfg  Config
		want error
	}{
		{Config{}, ErrNoName},
		{Config{Name: "has space"}, ErrBadName},
		{Config{Name: "has.dot"}, ErrBadName},
		{Config{Name: "D", Subs: []SubRef{{Name: "E"}, {Name: "E"}}}, ErrDupSub},
		{Config{Name: "D", Subs: []SubRef{{Name: "D"}}}, ErrSelfSub},
		{Config{Name: "D", Subs: []SubRef{{Name: ""}}}, ErrBadName},
	}
	for i, c := range cases {
		if err := c.cfg.Validate(); !errors.Is(err, c.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, c.want)
		}
	}
}

func TestConfigXMLRoundTrip(t *testing.T) {
	cfg := Config{
		Name:        "D",
		Title:       "Demo Collection",
		Public:      true,
		IndexFields: []string{"dc.Title", "dc.Creator"},
		Classifiers: []string{"dc.Title"},
		Subs:        []SubRef{{Host: "London", Name: "E"}, {Name: "Local"}},
	}
	raw, err := cfg.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "D" || got.Title != "Demo Collection" || !got.Public {
		t.Errorf("fields: %+v", got)
	}
	if len(got.Subs) != 2 || got.Subs[0].Host != "London" {
		t.Errorf("subs: %+v", got.Subs)
	}
	if len(got.RemoteSubs()) != 1 || len(got.LocalSubs()) != 1 {
		t.Errorf("remote/local split wrong")
	}
	if _, err := ParseConfig([]byte("<CollectionConfig><Name></Name></CollectionConfig>")); err == nil {
		t.Error("invalid parsed config accepted")
	}
}

func TestFirstBuildEmitsCollectionBuilt(t *testing.T) {
	c := mustCollection(t, Config{Name: "D", Public: true, IndexFields: []string{"dc.Title"}})
	now := time.Date(2005, 6, 1, 10, 0, 0, 0, time.UTC)
	res, err := c.Build(testDocs("d1", "d2", "d3"), now, idSeq("H"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || c.BuildVersion() != 1 {
		t.Errorf("version = %d", res.Version)
	}
	if len(res.Added) != 3 || len(res.Changed) != 0 || len(res.Removed) != 0 {
		t.Errorf("diff: +%v ~%v -%v", res.Added, res.Changed, res.Removed)
	}
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1 (summary only on first build)", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Type != event.TypeCollectionBuilt {
		t.Errorf("type = %v", ev.Type)
	}
	if len(ev.Docs) != 3 {
		t.Errorf("summary docs = %d", len(ev.Docs))
	}
	if ev.Collection.String() != "Hamilton.D" {
		t.Errorf("collection = %v", ev.Collection)
	}
	if !ev.OccurredAt.Equal(now) {
		t.Errorf("occurred at %v", ev.OccurredAt)
	}
	if ev.Docs[0].Metadata["dc.Title"] == nil {
		t.Error("event docs carry no metadata")
	}
}

func TestRebuildDiffs(t *testing.T) {
	c := mustCollection(t, Config{Name: "D", Public: true})
	now := time.Now()
	if _, err := c.Build(testDocs("d1", "d2", "d3"), now, idSeq("H")); err != nil {
		t.Fatal(err)
	}
	// d1 unchanged, d2 changed, d3 removed, d4 added.
	docs := testDocs("d1", "d2", "d4")
	docs[1].Content += " updated"
	res, err := c.Build(docs, now.Add(time.Hour), idSeq("H2"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Added) != "[d4]" || fmt.Sprint(res.Changed) != "[d2]" || fmt.Sprint(res.Removed) != "[d3]" {
		t.Fatalf("diff: +%v ~%v -%v", res.Added, res.Changed, res.Removed)
	}
	types := make(map[event.Type]*event.Event, len(res.Events))
	for _, ev := range res.Events {
		types[ev.Type] = ev
	}
	if types[event.TypeCollectionRebuilt] == nil {
		t.Error("no rebuilt summary event")
	}
	if got := types[event.TypeDocumentsAdded]; got == nil || len(got.Docs) != 1 || got.Docs[0].ID != "d4" {
		t.Errorf("added event = %+v", got)
	}
	if got := types[event.TypeDocumentsChanged]; got == nil || got.Docs[0].ID != "d2" {
		t.Errorf("changed event = %+v", got)
	}
	if got := types[event.TypeDocumentsRemoved]; got == nil || got.Docs[0].ID != "d3" {
		t.Errorf("removed event = %+v", got)
	}
	// Removed docs carry no metadata (they are gone).
	if md := types[event.TypeDocumentsRemoved].Docs[0].Metadata; md != nil {
		t.Errorf("removed doc has metadata: %v", md)
	}
	// Summary carries added+changed only.
	if n := len(types[event.TypeCollectionRebuilt].Docs); n != 2 {
		t.Errorf("summary docs = %d, want 2", n)
	}
}

func TestIdenticalRebuildEmitsOnlySummary(t *testing.T) {
	c := mustCollection(t, Config{Name: "D", Public: true})
	docs := testDocs("d1", "d2")
	_, _ = c.Build(docs, time.Now(), idSeq("a"))
	res, err := c.Build(docs, time.Now(), idSeq("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || res.Events[0].Type != event.TypeCollectionRebuilt {
		t.Fatalf("events = %+v", res.Events)
	}
	if len(res.Events[0].Docs) != 0 {
		t.Errorf("no-change rebuild summary carries %d docs", len(res.Events[0].Docs))
	}
}

func TestBuildRejectsBadDocs(t *testing.T) {
	c := mustCollection(t, Config{Name: "D"})
	if _, err := c.Build([]*Document{{ID: ""}}, time.Now(), idSeq("x")); err == nil {
		t.Error("empty doc ID accepted")
	}
	if _, err := c.Build([]*Document{{ID: "a"}, {ID: "a"}}, time.Now(), idSeq("x")); err == nil {
		t.Error("duplicate doc ID accepted")
	}
}

func TestSearchAndClassifier(t *testing.T) {
	c := mustCollection(t, Config{
		Name: "D", Public: true,
		IndexFields: []string{"dc.Title", "dc.Creator"},
		Classifiers: []string{"dc.Title"},
	})
	_, err := c.Build(testDocs("d1", "d2", "d3"), time.Now(), idSeq("H"))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search("music", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("text hits = %d", len(hits))
	}
	hits, err = c.Search("title AND d2", "dc.Title", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].DocID != "d2" {
		t.Errorf("field hits = %+v", hits)
	}
	if _, err := c.Search("((", "", 0); err == nil {
		t.Error("bad query accepted")
	}
	cl, ok := c.Classifier("dc.Title")
	if !ok || len(cl.Buckets) == 0 {
		t.Errorf("classifier missing: %v %v", cl, ok)
	}
	if _, ok := c.Classifier("dc.Nope"); ok {
		t.Error("unknown classifier present")
	}
}

func TestDocAccessAndIsolation(t *testing.T) {
	c := mustCollection(t, Config{Name: "D"})
	_, _ = c.Build(testDocs("d1"), time.Now(), idSeq("x"))
	d, ok := c.Doc("d1")
	if !ok {
		t.Fatal("doc missing")
	}
	d.Metadata["dc.Title"][0] = "MUTATED"
	d2, _ := c.Doc("d1")
	if d2.Metadata["dc.Title"][0] == "MUTATED" {
		t.Error("Doc returned shared state")
	}
	if _, ok := c.Doc("nope"); ok {
		t.Error("phantom doc")
	}
	all := c.Docs()
	if len(all) != 1 || all[0].ID != "d1" {
		t.Errorf("Docs = %v", all)
	}
}

func TestVirtualCollection(t *testing.T) {
	c := mustCollection(t, Config{Name: "C", Subs: []SubRef{{Host: "London", Name: "E"}}})
	if !c.IsVirtual() {
		t.Error("empty collection with subs should be virtual")
	}
	_, _ = c.Build(testDocs("d1"), time.Now(), idSeq("x"))
	if c.IsVirtual() {
		t.Error("collection with docs is not virtual")
	}
}

func TestSetConfig(t *testing.T) {
	c := mustCollection(t, Config{Name: "D"})
	if err := c.SetConfig(Config{Name: "Other"}); err == nil {
		t.Error("rename accepted")
	}
	if err := c.SetConfig(Config{Name: "D", Subs: []SubRef{{Host: "L", Name: "E"}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Config().Subs; len(got) != 1 {
		t.Errorf("subs = %v", got)
	}
}

func TestStore(t *testing.T) {
	s := NewStore("Hamilton")
	if s.Host() != "Hamilton" {
		t.Errorf("host = %q", s.Host())
	}
	if _, err := s.Add(Config{Name: "D", Public: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(Config{Name: "D"}); !errors.Is(err, ErrExists) {
		t.Errorf("dup add err = %v", err)
	}
	if _, err := s.Add(Config{Name: "C", Subs: []SubRef{{Host: "London", Name: "E"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("D"); err != nil {
		t.Errorf("Get: %v", err)
	}
	if _, err := s.Get("X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	if names := s.Names(); fmt.Sprint(names) != "[C D]" {
		t.Errorf("names = %v", names)
	}
	if all := s.All(); len(all) != 2 || all[0].Config().Name != "C" {
		t.Errorf("All = %v", all)
	}
	if err := s.Remove("C"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("C"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestStoreSupersOf(t *testing.T) {
	s := NewStore("Hamilton")
	_, _ = s.Add(Config{Name: "D", Subs: []SubRef{{Host: "London", Name: "E"}}})
	_, _ = s.Add(Config{Name: "C", Subs: []SubRef{{Host: "London", Name: "E"}, {Name: "D"}}})
	_, _ = s.Add(Config{Name: "X"})

	supers := s.SupersOf("London", "E")
	if len(supers) != 2 {
		t.Fatalf("supers of London.E = %d", len(supers))
	}
	if supers[0].Config().Name != "C" || supers[1].Config().Name != "D" {
		t.Errorf("supers = %s, %s", supers[0].Config().Name, supers[1].Config().Name)
	}
	// Local sub reference: D is a sub of C on the same host.
	supers = s.SupersOf("Hamilton", "D")
	if len(supers) != 1 || supers[0].Config().Name != "C" {
		t.Errorf("supers of Hamilton.D = %v", supers)
	}
	if got := s.SupersOf("Nowhere", "Z"); len(got) != 0 {
		t.Errorf("phantom supers: %v", got)
	}
}

// Property: build diff classification is a partition — every new doc is
// added or changed or unchanged, every old doc missing from the new set is
// removed, and counts are consistent.
func TestBuildDiffProperty(t *testing.T) {
	f := func(keepMask, changeMask uint8, addN uint8) bool {
		c, err := New("H", Config{Name: "P"})
		if err != nil {
			return false
		}
		base := testDocs("a", "b", "c", "d", "e", "f", "g", "h")
		if _, err := c.Build(base, time.Now(), idSeq("s")); err != nil {
			return false
		}
		var next []*Document
		kept, changed := 0, 0
		for i, d := range base {
			if keepMask&(1<<i) == 0 {
				continue
			}
			cp := d.Clone()
			if changeMask&(1<<i) != 0 {
				cp.Content += " changed"
				changed++
			}
			kept++
			next = append(next, cp)
		}
		added := int(addN % 5)
		for i := 0; i < added; i++ {
			next = append(next, testDocs(fmt.Sprintf("new%d", i))...)
		}
		res, err := c.Build(next, time.Now(), idSeq("s2"))
		if err != nil {
			return false
		}
		wantRemoved := len(base) - kept
		return len(res.Added) == added &&
			len(res.Changed) == changed &&
			len(res.Removed) == wantRemoved &&
			c.Len() == kept+added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
