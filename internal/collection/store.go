package collection

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store holds the collections managed by one Greenstone server.
type Store struct {
	mu    sync.RWMutex
	host  string
	colls map[string]*Collection
}

// Store errors.
var (
	ErrNotFound = errors.New("collection: not found")
	ErrExists   = errors.New("collection: already exists")
)

// NewStore builds an empty store for a host.
func NewStore(host string) *Store {
	return &Store{host: host, colls: make(map[string]*Collection)}
}

// Host reports the owning host name.
func (s *Store) Host() string { return s.host }

// Add creates a collection from a configuration.
func (s *Store) Add(cfg Config) (*Collection, error) {
	c, err := New(s.host, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.colls[cfg.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, cfg.Name)
	}
	s.colls[cfg.Name] = c
	return c, nil
}

// Get fetches a collection by name.
func (s *Store) Get(name string) (*Collection, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.colls[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c, nil
}

// Remove deletes a collection.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.colls[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.colls, name)
	return nil
}

// Names lists collection names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.colls))
	for n := range s.colls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every collection, sorted by name.
func (s *Store) All() []*Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.colls))
	for n := range s.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Collection, 0, len(names))
	for _, n := range names {
		out = append(out, s.colls[n])
	}
	return out
}

// SupersOf returns the collections on this host that reference sub as a
// sub-collection (local name or remote qualified reference). This answers
// "which local super-collections must re-announce an event about sub?"
func (s *Store) SupersOf(subHost, subName string) []*Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Collection
	for _, c := range s.colls {
		cfg := c.Config()
		for _, ref := range cfg.Subs {
			refHost := ref.Host
			if refHost == "" {
				refHost = s.host
			}
			if refHost == subHost && ref.Name == subName {
				out = append(out, c)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Config().Name < out[j].Config().Name })
	return out
}
