// Package collection models the Greenstone data layer the alerting service
// is built against (paper §3): documents with heterogeneous metadata,
// collection configuration files, federated/distributed/virtual/private
// collections with sub-collection references, and the batch build process
// that (re)indexes a collection and — with alerting integrated — emits the
// events the rest of the system routes and filters.
package collection

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Document is one item of a collection's data set: an article, a music
// file's metadata record, an image description, etc.
type Document struct {
	// ID uniquely identifies the document within its collection.
	ID string
	// Metadata maps field names (e.g. "dc.Title") to values; fields may be
	// multi-valued.
	Metadata map[string][]string
	// Content is the extracted full text (possibly empty for binary media).
	Content string
	// MIME is the content type ("text/plain", "audio/mpeg", ...).
	MIME string
}

// Clone deep-copies the document.
func (d *Document) Clone() *Document {
	cp := *d
	cp.Metadata = make(map[string][]string, len(d.Metadata))
	for k, v := range d.Metadata {
		cp.Metadata[k] = append([]string(nil), v...)
	}
	return &cp
}

// Fingerprint returns a stable hash of the document's metadata and content,
// used by the build process to classify documents as added/changed/removed
// between builds.
func (d *Document) Fingerprint() string {
	h := fnv.New64a()
	write := func(s string) {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	write(d.ID)
	write(d.MIME)
	write(d.Content)
	fields := make([]string, 0, len(d.Metadata))
	for f := range d.Metadata {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		write(f)
		for _, v := range d.Metadata[f] {
			write(v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Title returns the document's display title (dc.Title, falling back to ID).
func (d *Document) Title() string {
	if vs := d.Metadata["dc.Title"]; len(vs) > 0 && strings.TrimSpace(vs[0]) != "" {
		return vs[0]
	}
	return d.ID
}

// Snippet returns the leading fragment of the content used in event
// payloads and notifications.
func (d *Document) Snippet(maxRunes int) string {
	if maxRunes <= 0 {
		maxRunes = 200
	}
	runes := []rune(d.Content)
	if len(runes) <= maxRunes {
		return d.Content
	}
	return string(runes[:maxRunes])
}
