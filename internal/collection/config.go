package collection

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// SubRef is a reference from a collection's configuration file to a
// sub-collection, possibly on another host (paper §3: "the server also
// learns about the existence of sub-collection E on host London" from the
// configuration file).
type SubRef struct {
	// Host names the Greenstone server hosting the sub-collection. An
	// empty host means the sub-collection is local.
	Host string `xml:"Host,omitempty"`
	// Name is the sub-collection's name on its host.
	Name string `xml:"Name"`
}

// String renders "Host.Name" or just "Name" for local references.
func (s SubRef) String() string {
	if s.Host == "" {
		return s.Name
	}
	return s.Host + "." + s.Name
}

// Config is a collection's configuration file.
type Config struct {
	XMLName xml.Name `xml:"CollectionConfig"`
	// Name identifies the collection on its host.
	Name string `xml:"Name"`
	// Title is the display title.
	Title string `xml:"Title,omitempty"`
	// Public collections are visible in their own right; private ones are
	// accessible only as sub-collections (paper §3: London.G).
	Public bool `xml:"Public"`
	// IndexFields lists the metadata fields built into search indexes; this
	// bounds the retrieval (and hence profile) functionality (paper §5).
	IndexFields []string `xml:"IndexFields>Field,omitempty"`
	// Classifiers lists metadata fields with browse classifiers.
	Classifiers []string `xml:"Classifiers>Field,omitempty"`
	// Subs are sub-collection references.
	Subs []SubRef `xml:"SubCollections>Sub,omitempty"`
}

// Validation errors.
var (
	ErrNoName  = errors.New("collection: config missing name")
	ErrBadName = errors.New("collection: invalid collection name")
	ErrDupSub  = errors.New("collection: duplicate sub-collection reference")
	ErrSelfSub = errors.New("collection: collection references itself as sub-collection")
)

// Validate checks structural invariants of the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return ErrNoName
	}
	if strings.ContainsAny(c.Name, ". \t\n") {
		return fmt.Errorf("%w: %q (no dots or whitespace)", ErrBadName, c.Name)
	}
	seen := make(map[string]bool, len(c.Subs))
	for _, s := range c.Subs {
		if s.Name == "" {
			return fmt.Errorf("%w: empty sub name", ErrBadName)
		}
		key := s.String()
		if seen[key] {
			return fmt.Errorf("%w: %s", ErrDupSub, key)
		}
		seen[key] = true
		if s.Host == "" && s.Name == c.Name {
			return ErrSelfSub
		}
	}
	return nil
}

// RemoteSubs returns the sub-collection references that live on other hosts
// — these are the references that require auxiliary profiles (paper §4.2).
func (c *Config) RemoteSubs() []SubRef {
	var out []SubRef
	for _, s := range c.Subs {
		if s.Host != "" {
			out = append(out, s)
		}
	}
	return out
}

// LocalSubs returns sub-collection references on the same host.
func (c *Config) LocalSubs() []SubRef {
	var out []SubRef
	for _, s := range c.Subs {
		if s.Host == "" {
			out = append(out, s)
		}
	}
	return out
}

// MarshalBytes renders the config file as XML.
func (c *Config) MarshalBytes() ([]byte, error) {
	out, err := xml.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("collection: marshal config %q: %w", c.Name, err)
	}
	return out, nil
}

// ParseConfig parses a configuration file.
func ParseConfig(raw []byte) (*Config, error) {
	var c Config
	if err := xml.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("collection: parse config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
