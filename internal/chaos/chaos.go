// Package chaos provides a deterministic, seedable fault-schedule engine
// for the simulation harness: a schedule is an ordered list of faults
// (primary kills, directory-link partitions, slow/lagging standbys,
// routing-mode flips, transport error/latency injection) pinned to workload
// rounds, and an engine that applies due faults through a Fabric — the
// small surface a deployment (sim.Cluster in the experiment suite) exposes
// for breaking itself. Schedules round-trip through a one-line-per-fault
// text format, can be generated randomly from a seed under the validity
// constraints (partitions heal, lagging standbys catch up before their
// primary is killed), and applied-fault logs make every chaos run
// reproducible and explainable.
package chaos

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names a fault in the schedule vocabulary.
type Kind string

const (
	// KindKillPrimary kills the named server's primary and promotes its
	// standby (Target = server name).
	KindKillPrimary Kind = "kill-primary"
	// KindPartition cuts the link between two transport endpoints
	// (A, B = node names, e.g. two GDS nodes bounding a subtree).
	KindPartition Kind = "partition"
	// KindHeal restores a previously cut link (A, B as for KindPartition).
	KindHeal Kind = "heal"
	// KindSlowStandby degrades the named server's replication link
	// (Target = server name; DropRate/Latency shape the degradation).
	KindSlowStandby Kind = "slow-standby"
	// KindHealStandby restores the replication link and forces the lagging
	// standby to catch up (Target = server name).
	KindHealStandby Kind = "heal-standby"
	// KindFlipMode switches the dissemination mode of every serving server
	// (Target = "broadcast", "multicast" or "content").
	KindFlipMode Kind = "flip-mode"
	// KindInject installs a transport fault rule (A/B = from/to patterns,
	// TypePrefix, DropRate, Latency — the transport.FaultRule fields).
	KindInject Kind = "inject"
	// KindClearInject removes every installed transport fault rule.
	KindClearInject Kind = "clear-inject"
)

// kinds lists the vocabulary for validation and generation.
var kinds = map[Kind]bool{
	KindKillPrimary: true, KindPartition: true, KindHeal: true,
	KindSlowStandby: true, KindHealStandby: true, KindFlipMode: true,
	KindInject: true, KindClearInject: true,
}

// Modes a KindFlipMode fault may target.
var flipModes = map[string]bool{"broadcast": true, "multicast": true, "content": true}

// Fault is one scheduled intervention. At pins it to a workload round: the
// engine applies it after round At of the driving loop completes.
type Fault struct {
	// At is the workload round after which the fault fires (>= 0).
	At int
	// Kind selects the intervention.
	Kind Kind
	// A and B name the link ends (partition/heal) or the from/to patterns
	// (inject).
	A, B string
	// Target names the server (kill/slow/heal-standby) or mode (flip-mode).
	Target string
	// TypePrefix scopes an inject rule by message-type prefix.
	TypePrefix string
	// DropRate is the injected loss probability (slow-standby, inject).
	DropRate float64
	// Latency is the injected extra virtual latency (slow-standby, inject).
	Latency time.Duration
}

// String renders the fault in the schedule text format.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d %s", f.At, f.Kind)
	switch f.Kind {
	case KindPartition, KindHeal:
		fmt.Fprintf(&b, " %s %s", f.A, f.B)
	case KindKillPrimary, KindHealStandby, KindFlipMode:
		fmt.Fprintf(&b, " %s", f.Target)
	case KindSlowStandby:
		fmt.Fprintf(&b, " %s", f.Target)
		if f.DropRate > 0 {
			fmt.Fprintf(&b, " drop=%g", f.DropRate)
		}
		if f.Latency > 0 {
			fmt.Fprintf(&b, " latency=%s", f.Latency)
		}
	case KindInject:
		if f.A != "" {
			fmt.Fprintf(&b, " from=%s", f.A)
		}
		if f.B != "" {
			fmt.Fprintf(&b, " to=%s", f.B)
		}
		if f.TypePrefix != "" {
			fmt.Fprintf(&b, " type=%s", f.TypePrefix)
		}
		if f.DropRate > 0 {
			fmt.Fprintf(&b, " drop=%g", f.DropRate)
		}
		if f.Latency > 0 {
			fmt.Fprintf(&b, " latency=%s", f.Latency)
		}
	}
	return b.String()
}

// Schedule is an ordered fault list. The zero value is an empty schedule
// (a chaos run with an empty schedule is the failure-free baseline).
type Schedule struct {
	Faults []Fault
}

// Add appends a fault.
func (s *Schedule) Add(f Fault) { s.Faults = append(s.Faults, f) }

// Len reports the number of scheduled faults.
func (s Schedule) Len() int { return len(s.Faults) }

// Sorted returns the faults ordered by round, preserving the schedule
// order among faults sharing a round (a heal listed after a partition in
// the same round applies after it).
func (s Schedule) Sorted() []Fault {
	out := append([]Fault(nil), s.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Counts tallies faults by kind — the composition assertions of the soak
// acceptance bar ("at least one kill, one partition, one mode flip").
func (s Schedule) Counts() map[Kind]int {
	out := make(map[Kind]int, len(s.Faults))
	for _, f := range s.Faults {
		out[f.Kind]++
	}
	return out
}

// String renders the schedule in the text format, one fault per line in
// applied order.
func (s Schedule) String() string {
	var b strings.Builder
	for _, f := range s.Sorted() {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural validity: known kinds, rounds >= 0, modes in
// vocabulary, every partition healed, every slow-standby healed before its
// server's primary is killed (promoting a lagging standby would lose the
// un-replicated tail — the engine requires catch-up first), and message
// loss injection cleared before the schedule ends.
func (s Schedule) Validate() error {
	type link struct{ a, b string }
	openCuts := make(map[link]int)
	slow := make(map[string]int)   // server -> round slow-standby armed
	healed := make(map[string]int) // server -> round heal-standby applied
	openDrop := 0
	for i, f := range s.Sorted() {
		if !kinds[f.Kind] {
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative round %d", i, f.Kind, f.At)
		}
		switch f.Kind {
		case KindPartition:
			if f.A == "" || f.B == "" {
				return fmt.Errorf("chaos: fault %d: partition needs two endpoints", i)
			}
			openCuts[link{f.A, f.B}]++
		case KindHeal:
			if openCuts[link{f.A, f.B}] <= 0 {
				return fmt.Errorf("chaos: fault %d: heal %s %s without a prior partition", i, f.A, f.B)
			}
			openCuts[link{f.A, f.B}]--
		case KindSlowStandby:
			if f.Target == "" {
				return fmt.Errorf("chaos: fault %d: slow-standby needs a server", i)
			}
			slow[f.Target]++
		case KindHealStandby:
			if slow[f.Target] <= 0 {
				return fmt.Errorf("chaos: fault %d: heal-standby %s without a prior slow-standby", i, f.Target)
			}
			slow[f.Target]--
			healed[f.Target]++
		case KindKillPrimary:
			if f.Target == "" {
				return fmt.Errorf("chaos: fault %d: kill-primary needs a server", i)
			}
			if slow[f.Target] > 0 {
				return fmt.Errorf("chaos: fault %d: kill-primary %s while its standby is still lagging (heal-standby first)", i, f.Target)
			}
		case KindFlipMode:
			if !flipModes[f.Target] {
				return fmt.Errorf("chaos: fault %d: flip-mode target %q not in {broadcast, multicast, content}", i, f.Target)
			}
		case KindInject:
			if f.DropRate > 0 {
				openDrop++
			}
			if f.DropRate < 0 || f.DropRate > 1 {
				return fmt.Errorf("chaos: fault %d: inject drop rate %g outside [0,1]", i, f.DropRate)
			}
			if f.DropRate == 0 && f.Latency == 0 {
				return fmt.Errorf("chaos: fault %d: inject with neither drop nor latency", i)
			}
		case KindClearInject:
			openDrop = 0
		}
	}
	for l, n := range openCuts {
		if n > 0 {
			return fmt.Errorf("chaos: partition %s %s never healed", l.a, l.b)
		}
	}
	for srv, n := range slow {
		if n > 0 {
			return fmt.Errorf("chaos: slow-standby %s never healed", srv)
		}
	}
	if openDrop > 0 {
		return fmt.Errorf("chaos: %d loss-injecting rule(s) never cleared", openDrop)
	}
	return nil
}

// ParseSchedule reads the text format: one fault per line,
//
//	@<round> <kind> [args...]
//
// with '#' comments and blank lines ignored. Positional args name link
// endpoints (partition/heal) or the target server/mode; key=value options
// (drop=, latency=, from=, to=, type=) shape slow-standby and inject
// faults. The parsed schedule is validated.
func ParseSchedule(src string) (Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := parseFault(line)
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: line %d: %w", lineNo, err)
		}
		s.Add(f)
	}
	if err := sc.Err(); err != nil {
		return Schedule{}, fmt.Errorf("chaos: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseFault(line string) (Fault, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Fault{}, fmt.Errorf("want %q, got %q", "@<round> <kind> [args]", line)
	}
	if !strings.HasPrefix(fields[0], "@") {
		return Fault{}, fmt.Errorf("round must start with '@': %q", fields[0])
	}
	round, err := strconv.Atoi(fields[0][1:])
	if err != nil {
		return Fault{}, fmt.Errorf("bad round %q: %w", fields[0], err)
	}
	f := Fault{At: round, Kind: Kind(fields[1])}
	var positional []string
	for _, arg := range fields[2:] {
		key, val, isOpt := strings.Cut(arg, "=")
		if !isOpt {
			positional = append(positional, arg)
			continue
		}
		switch key {
		case "drop":
			if f.DropRate, err = strconv.ParseFloat(val, 64); err != nil {
				return Fault{}, fmt.Errorf("bad drop %q: %w", val, err)
			}
		case "latency":
			if f.Latency, err = time.ParseDuration(val); err != nil {
				return Fault{}, fmt.Errorf("bad latency %q: %w", val, err)
			}
		case "from":
			f.A = val
		case "to":
			f.B = val
		case "type":
			f.TypePrefix = val
		default:
			return Fault{}, fmt.Errorf("unknown option %q", key)
		}
	}
	switch f.Kind {
	case KindPartition, KindHeal:
		if len(positional) != 2 {
			return Fault{}, fmt.Errorf("%s wants two endpoints, got %v", f.Kind, positional)
		}
		f.A, f.B = positional[0], positional[1]
	case KindKillPrimary, KindHealStandby, KindSlowStandby, KindFlipMode:
		if len(positional) != 1 {
			return Fault{}, fmt.Errorf("%s wants one target, got %v", f.Kind, positional)
		}
		f.Target = positional[0]
	case KindInject, KindClearInject:
		if len(positional) != 0 {
			return Fault{}, fmt.Errorf("%s takes only key=value options, got %v", f.Kind, positional)
		}
	default:
		return Fault{}, fmt.Errorf("unknown kind %q", f.Kind)
	}
	return f, nil
}
