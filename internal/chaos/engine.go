package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/gsalert/gsalert/internal/transport"
)

// Fabric is the surface a deployment exposes for the engine to break it.
// The experiment harness implements it over sim.Cluster (kills route to the
// replica pair, partitions to the memory transport, injections to the
// cluster's transport.FaultInjector); a real deployment could implement it
// over process supervisors and tc/iptables.
type Fabric interface {
	// KillPrimary takes the named server's primary off the network and
	// promotes its standby.
	KillPrimary(ctx context.Context, server string) error
	// Partition cuts the link between two named endpoints; Heal restores it.
	Partition(a, b string) error
	Heal(a, b string) error
	// SlowStandby degrades the named server's replication link;
	// HealStandby restores it and forces the standby to catch up.
	SlowStandby(server string, drop float64, latency time.Duration) error
	HealStandby(ctx context.Context, server string) error
	// FlipMode switches every serving server's dissemination mode.
	FlipMode(ctx context.Context, mode string) error
	// Inject installs a transport fault rule; ClearInject removes all
	// engine-installed rules.
	Inject(rule transport.FaultRule) error
	ClearInject() error
}

// Applied records one fault the engine has applied.
type Applied struct {
	Fault Fault
	// Round is the workload round the engine was advanced to when the
	// fault fired (>= Fault.At; equal unless rounds were skipped).
	Round int
}

// Engine walks a validated schedule against a Fabric. The driving loop
// calls AdvanceTo after each workload round; every fault whose round has
// come fires, in schedule order. The engine is single-caller (the loop).
type Engine struct {
	fabric  Fabric
	pending []Fault
	applied []Applied
}

// NewEngine validates the schedule and binds it to a fabric.
func NewEngine(s Schedule, f Fabric) (*Engine, error) {
	if f == nil {
		return nil, fmt.Errorf("chaos: nil fabric")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Engine{fabric: f, pending: s.Sorted()}, nil
}

// AdvanceTo applies every pending fault scheduled at or before round,
// returning those applied. The first fabric error aborts (a chaos run whose
// faults fail to apply is not the experiment it claims to be).
func (e *Engine) AdvanceTo(ctx context.Context, round int) ([]Applied, error) {
	var fired []Applied
	for len(e.pending) > 0 && e.pending[0].At <= round {
		f := e.pending[0]
		e.pending = e.pending[1:]
		if err := e.apply(ctx, f); err != nil {
			return fired, fmt.Errorf("chaos: @%d %s: %w", f.At, f.Kind, err)
		}
		a := Applied{Fault: f, Round: round}
		e.applied = append(e.applied, a)
		fired = append(fired, a)
	}
	return fired, nil
}

func (e *Engine) apply(ctx context.Context, f Fault) error {
	switch f.Kind {
	case KindKillPrimary:
		return e.fabric.KillPrimary(ctx, f.Target)
	case KindPartition:
		return e.fabric.Partition(f.A, f.B)
	case KindHeal:
		return e.fabric.Heal(f.A, f.B)
	case KindSlowStandby:
		return e.fabric.SlowStandby(f.Target, f.DropRate, f.Latency)
	case KindHealStandby:
		return e.fabric.HealStandby(ctx, f.Target)
	case KindFlipMode:
		return e.fabric.FlipMode(ctx, f.Target)
	case KindInject:
		return e.fabric.Inject(transport.FaultRule{
			From: f.A, To: f.B, TypePrefix: f.TypePrefix,
			DropRate: f.DropRate, ExtraLatency: f.Latency,
		})
	case KindClearInject:
		return e.fabric.ClearInject()
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
}

// Remaining reports faults not yet applied.
func (e *Engine) Remaining() int { return len(e.pending) }

// Log returns the applied-fault record in firing order.
func (e *Engine) Log() []Applied { return append([]Applied(nil), e.applied...) }

// GenConfig parameterises random schedule generation.
type GenConfig struct {
	// Seed drives every random choice.
	Seed int64
	// Rounds is the workload length the schedule must fit into (>= 8).
	Rounds int
	// Primary names the server whose replica pair the kill and the
	// slow/heal-standby faults target.
	Primary string
	// LinkA and LinkB name the partitionable link's endpoints.
	LinkA, LinkB string
	// InjectTypePrefix scopes the latency-injection window (e.g. "gs.").
	InjectTypePrefix string
}

// Generate produces a random valid schedule containing at least one
// primary kill, one partition (healed), one mode flip and one degraded
// standby window (healed before the kill), plus a latency-injection
// window — the full vocabulary, ordered to respect the validity
// constraints. Same seed, same schedule.
func Generate(cfg GenConfig) (Schedule, error) {
	if cfg.Rounds < 8 {
		return Schedule{}, fmt.Errorf("chaos: generate needs >= 8 rounds, got %d", cfg.Rounds)
	}
	if cfg.Primary == "" || cfg.LinkA == "" || cfg.LinkB == "" {
		return Schedule{}, fmt.Errorf("chaos: generate needs a primary and a link")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	last := cfg.Rounds - 1
	var s Schedule

	// Degrade the standby early, heal it, then kill the primary: the
	// promotion invariants are only claimable for a caught-up standby.
	slowAt := rng.Intn(last / 4)
	healStandbyAt := slowAt + 1 + rng.Intn(last/4)
	killAt := healStandbyAt + 1 + rng.Intn(maxI(1, last-1-healStandbyAt))
	s.Add(Fault{At: slowAt, Kind: KindSlowStandby, Target: cfg.Primary, DropRate: 1})
	s.Add(Fault{At: healStandbyAt, Kind: KindHealStandby, Target: cfg.Primary})
	s.Add(Fault{At: killAt, Kind: KindKillPrimary, Target: cfg.Primary})

	// A partition window, healed before the end.
	cutAt := rng.Intn(last - 2)
	healAt := cutAt + 1 + rng.Intn(last-1-cutAt)
	s.Add(Fault{At: cutAt, Kind: KindPartition, A: cfg.LinkA, B: cfg.LinkB})
	s.Add(Fault{At: healAt, Kind: KindHeal, A: cfg.LinkA, B: cfg.LinkB})

	// One or two mode flips.
	modes := []string{"multicast", "content", "broadcast"}
	flips := 1 + rng.Intn(2)
	for i := 0; i < flips; i++ {
		s.Add(Fault{At: rng.Intn(cfg.Rounds), Kind: KindFlipMode, Target: modes[rng.Intn(len(modes))]})
	}

	// A latency-injection window over the chosen traffic slice.
	injAt := rng.Intn(last)
	s.Add(Fault{At: injAt, Kind: KindInject, TypePrefix: cfg.InjectTypePrefix,
		Latency: time.Duration(1+rng.Intn(5)) * time.Millisecond})
	s.Add(Fault{At: injAt + 1 + rng.Intn(maxI(1, last-injAt)), Kind: KindClearInject})

	if err := s.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("chaos: generated schedule invalid: %w", err)
	}
	return s, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
