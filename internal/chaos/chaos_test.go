package chaos

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/transport"
)

const sampleSchedule = `
# degraded standby window, healed before the kill
@1 slow-standby C002 drop=1
@4 heal-standby C002

# a directory subtree drops off and comes back
@2 partition gds0 gds3
@5 heal gds0 gds3

@6 kill-primary C002
@8 flip-mode multicast
@10 flip-mode content

# latency injection over the alerting traffic
@7 inject from=* type=gs. latency=2ms
@9 clear-inject
`

func TestParseScheduleRoundTrip(t *testing.T) {
	s, err := ParseSchedule(sampleSchedule)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Len() != 9 {
		t.Fatalf("parsed %d faults, want 9", s.Len())
	}
	counts := s.Counts()
	for kind, want := range map[Kind]int{
		KindKillPrimary: 1, KindPartition: 1, KindHeal: 1,
		KindSlowStandby: 1, KindHealStandby: 1, KindFlipMode: 2,
		KindInject: 1, KindClearInject: 1,
	} {
		if counts[kind] != want {
			t.Fatalf("counts[%s] = %d, want %d", kind, counts[kind], want)
		}
	}
	// Render and reparse: the text format is canonical.
	again, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.String())
	}
	if again.String() != s.String() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", s.String(), again.String())
	}
}

func TestParseScheduleRejects(t *testing.T) {
	for _, src := range []string{
		"kill-primary C002",           // missing @round
		"@2 partition gds0",           // one endpoint
		"@2 heal gds0 gds3",           // heal without partition
		"@2 partition gds0 gds3",      // partition never healed
		"@2 flip-mode carrier-pigeon", // unknown mode
		"@2 explode C002",             // unknown kind
		"@1 slow-standby C002 drop=1", // standby never healed
		"@1 slow-standby C002\n@2 kill-primary C002\n@3 heal-standby C002", // kill while lagging
		"@1 inject drop=1",                  // loss never cleared
		"@1 inject",                         // no effect
		"@1 inject drop=2\n@2 clear-inject", // rate out of range
		"@-1 flip-mode content",             // negative round
	} {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q) accepted invalid schedule", src)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{Seed: 9, Rounds: 12, Primary: "C002", LinkA: "gds0", LinkB: "gds3", InjectTypePrefix: "gs."}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate again: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a.String(), b.String())
	}
	counts := a.Counts()
	if counts[KindKillPrimary] < 1 || counts[KindPartition] < 1 || counts[KindFlipMode] < 1 {
		t.Fatalf("generated schedule misses required composition: %v\n%s", counts, a.String())
	}
	// Different seeds explore the space.
	c, err := Generate(GenConfig{Seed: 10, Rounds: 12, Primary: "C002", LinkA: "gds0", LinkB: "gds3"})
	if err != nil {
		t.Fatalf("generate seed 10: %v", err)
	}
	if c.String() == a.String() {
		t.Fatalf("seeds 9 and 10 produced identical schedules")
	}
}

// recordingFabric logs fabric calls in order.
type recordingFabric struct {
	calls []string
	fail  string // kind that errors
}

func (f *recordingFabric) note(s string) error {
	f.calls = append(f.calls, s)
	if f.fail != "" && strings.HasPrefix(s, f.fail) {
		return fmt.Errorf("boom")
	}
	return nil
}

func (f *recordingFabric) KillPrimary(_ context.Context, srv string) error {
	return f.note("kill-primary " + srv)
}
func (f *recordingFabric) Partition(a, b string) error { return f.note("partition " + a + " " + b) }
func (f *recordingFabric) Heal(a, b string) error      { return f.note("heal " + a + " " + b) }
func (f *recordingFabric) SlowStandby(srv string, drop float64, lat time.Duration) error {
	return f.note(fmt.Sprintf("slow-standby %s %g %s", srv, drop, lat))
}
func (f *recordingFabric) HealStandby(_ context.Context, srv string) error {
	return f.note("heal-standby " + srv)
}
func (f *recordingFabric) FlipMode(_ context.Context, mode string) error {
	return f.note("flip-mode " + mode)
}
func (f *recordingFabric) Inject(r transport.FaultRule) error { return f.note("inject " + r.String()) }
func (f *recordingFabric) ClearInject() error                 { return f.note("clear-inject") }

func TestEngineAppliesInOrder(t *testing.T) {
	s, err := ParseSchedule(sampleSchedule)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fab := &recordingFabric{}
	eng, err := NewEngine(s, fab)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	ctx := context.Background()
	total := 0
	for round := 0; round < 12; round++ {
		fired, err := eng.AdvanceTo(ctx, round)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, a := range fired {
			if a.Fault.At != round {
				t.Fatalf("fault @%d fired at round %d", a.Fault.At, round)
			}
		}
		total += len(fired)
	}
	if total != s.Len() || eng.Remaining() != 0 {
		t.Fatalf("applied %d of %d, %d remaining", total, s.Len(), eng.Remaining())
	}
	want := []string{
		"slow-standby C002 1 0s",
		"partition gds0 gds3",
		"heal-standby C002",
		"heal gds0 gds3",
		"kill-primary C002",
		"inject *->* type=gs. latency=2ms",
		"flip-mode multicast",
		"clear-inject",
		"flip-mode content",
	}
	if len(fab.calls) != len(want) {
		t.Fatalf("calls %v", fab.calls)
	}
	for i, w := range want {
		if fab.calls[i] != w {
			t.Fatalf("call %d = %q, want %q\nall: %v", i, fab.calls[i], w, fab.calls)
		}
	}
	if got := len(eng.Log()); got != s.Len() {
		t.Fatalf("log has %d entries, want %d", got, s.Len())
	}
}

func TestEngineSkippedRoundsStillFire(t *testing.T) {
	var s Schedule
	s.Add(Fault{At: 1, Kind: KindFlipMode, Target: "multicast"})
	s.Add(Fault{At: 3, Kind: KindFlipMode, Target: "content"})
	fab := &recordingFabric{}
	eng, err := NewEngine(s, fab)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	fired, err := eng.AdvanceTo(context.Background(), 10)
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	if len(fired) != 2 || fired[0].Round != 10 {
		t.Fatalf("fired %v", fired)
	}
}

func TestEngineAbortsOnFabricError(t *testing.T) {
	var s Schedule
	s.Add(Fault{At: 0, Kind: KindFlipMode, Target: "multicast"})
	s.Add(Fault{At: 0, Kind: KindFlipMode, Target: "content"})
	fab := &recordingFabric{fail: "flip-mode multicast"}
	eng, err := NewEngine(s, fab)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.AdvanceTo(context.Background(), 0); err == nil {
		t.Fatalf("want error from failing fabric")
	}
	if len(fab.calls) != 1 {
		t.Fatalf("engine kept applying after an error: %v", fab.calls)
	}
}
