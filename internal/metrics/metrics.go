// Package metrics provides the counters, histograms and fixed-width table
// rendering used by the experiment harness to print the tables recorded in
// docs/EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. It sits on the
// per-notification hot path of the delivery pipeline (and, with replication
// on, is bumped twice per notification), so it is a lock-free atomic rather
// than a mutex-guarded integer.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram accumulates observations and reports simple order statistics.
// It stores raw samples (experiments here are small enough) for exact
// percentiles.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Microseconds()))
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

// Quantile reports the q-th (0..1) sample quantile (nearest-rank).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Max reports the largest sample.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Min reports the smallest sample.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Table renders experiment results as an aligned fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// significant decimals, durations in natural units.
func (t *Table) AddRow(values ...any) {
	row := make([]string, 0, len(values))
	for _, v := range values {
		row = append(row, formatCell(v))
	}
	t.rows = append(t.rows, row)
}

func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case time.Duration:
		return x.Round(time.Microsecond).String()
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(f float64) string {
	switch {
	case f == math.Trunc(f) && math.Abs(f) < 1e9:
		return fmt.Sprintf("%.0f", f)
	case math.Abs(f) >= 100:
		return fmt.Sprintf("%.1f", f)
	default:
		return fmt.Sprintf("%.3f", f)
	}
}

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }
