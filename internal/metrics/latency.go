package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is one bucket per power-of-two nanosecond magnitude:
// bucket i holds durations d with bits.Len64(ns(d)) == i, i.e. the range
// [2^(i-1), 2^i). 64 buckets cover 1ns to ~292y.
const latencyBuckets = 64

// LatencyHistogram is a lock-free fixed-bucket latency histogram for hot
// paths: Observe is two atomic adds, with no allocation and no mutex, so
// per-notification recording under heavy concurrency never serialises the
// delivery workers. Quantiles are extracted from power-of-two buckets and
// reported as the bucket's upper bound, so a quantile is exact to within a
// factor of two — plenty for "p99 stays bounded" assertions and ops
// dashboards, at 512 bytes per histogram regardless of sample count.
//
// Readers (Quantile, Mean, Count) are safe to call concurrently with
// writers; a snapshot taken mid-storm may be internally skewed by in-flight
// observations, which monitoring tolerates. The zero value is ready to use.
type LatencyHistogram struct {
	counts [latencyBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // total nanoseconds
	// exemplars holds the per-bucket trace-ID exemplar set, allocated
	// lazily on the first ObserveExemplar so histograms that never see a
	// traced sample stay at 512 bytes and Observe stays two atomic adds.
	exemplars atomic.Pointer[exemplarSet]
}

// exemplarSet retains the most recent sampled trace ID per bucket — the
// OpenMetrics `# {trace_id="..."}` annotations internal/obs renders under
// content negotiation, linking a latency bucket to the span tree that
// landed in it.
type exemplarSet struct {
	ids [latencyBuckets]atomic.Pointer[string]
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// upperBound is the inclusive top of a bucket's range.
func upperBound(i int) time.Duration {
	if i >= 62 {
		return time.Duration(int64(^uint64(0) >> 1)) // avoid overflow
	}
	return time.Duration((int64(1) << (i + 1)) - 1)
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveExemplar records one latency sample and, when traceID is
// non-empty, retains it as the bucket's exemplar (last writer wins). The
// exemplar store is one atomic pointer swap on top of Observe, so traced
// delivery flushes stay lock-free.
func (h *LatencyHistogram) ObserveExemplar(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID == "" {
		return
	}
	set := h.exemplars.Load()
	if set == nil {
		set = &exemplarSet{}
		if !h.exemplars.CompareAndSwap(nil, set) {
			set = h.exemplars.Load()
		}
	}
	set.ids[bucketOf(d)].Store(&traceID)
}

// Exemplar reports the retained trace ID for the bucket whose inclusive
// upper bound is upper ("" when the bucket never saw a traced sample).
// Safe to call concurrently with observers — the exposition renderer
// reads exemplars mid-scrape.
func (h *LatencyHistogram) Exemplar(upper time.Duration) string {
	set := h.exemplars.Load()
	if set == nil {
		return ""
	}
	for i := 0; i < latencyBuckets; i++ {
		if upperBound(i) == upper {
			if id := set.ids[i].Load(); id != nil {
				return *id
			}
			return ""
		}
	}
	return ""
}

// Count reports recorded samples.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Sum reports the total observed latency across all samples — the `_sum`
// series of the histogram's Prometheus exposition.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Buckets walks the occupied buckets in ascending bound order, calling f
// with each bucket's inclusive upper bound and the CUMULATIVE sample count
// up to and including it — the `le`/`_bucket` shape of a Prometheus
// histogram. Cumulative counts are monotonically non-decreasing by
// construction even while writers race the sweep (each per-bucket term is
// non-negative). Returns the total accumulated by the sweep, which callers
// should prefer over Count() for a `_count` consistent with the buckets.
func (h *LatencyHistogram) Buckets(f func(upper time.Duration, cumulative int64)) int64 {
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		f(upperBound(i), cum)
	}
	return cum
}

// Mean reports the average latency (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile reports an upper bound on the q-th (0..1) latency quantile: the
// top of the bucket containing the nearest-rank sample. Returns 0 when
// empty.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total))) // nearest rank
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < latencyBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return upperBound(i)
		}
	}
	return upperBound(latencyBuckets - 1)
}

// Max reports an upper bound on the largest sample.
func (h *LatencyHistogram) Max() time.Duration { return h.Quantile(1) }

// Reset zeroes the histogram. Concurrent observers may interleave with the
// sweep; counters end consistent enough for the "fresh window" use case.
func (h *LatencyHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.exemplars.Store(nil)
}
