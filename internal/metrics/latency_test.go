package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramBasics(t *testing.T) {
	var h LatencyHistogram
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("zero value not empty")
	}
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	// The p50 sample is 20µs; the bucket upper bound is within 2x above it.
	p50 := h.Quantile(0.5)
	if p50 < 20*time.Microsecond || p50 > 40*time.Microsecond {
		t.Errorf("p50 = %v, want in [20µs, 40µs]", p50)
	}
	// The max sample is 5ms; its bucket tops out below 10ms.
	if mx := h.Max(); mx < 5*time.Millisecond || mx > 10*time.Millisecond {
		t.Errorf("max = %v, want in [5ms, 10ms]", mx)
	}
	mean := h.Mean()
	want := (10*time.Microsecond + 20*time.Microsecond + 5*time.Millisecond) / 3
	if mean != want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Error("reset did not clear")
	}
}

func TestLatencyHistogramEdges(t *testing.T) {
	var h LatencyHistogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(time.Nanosecond)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > time.Nanosecond {
		t.Errorf("p50 of near-zero samples = %v", q)
	}
	// Quantile inputs outside [0,1] clamp instead of panicking.
	_ = h.Quantile(-1)
	_ = h.Quantile(2)
}

func TestLatencyHistogramQuantileOrdering(t *testing.T) {
	var h LatencyHistogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms bucket", p50)
	}
	if p99 < time.Second || p99 > 2*time.Second {
		t.Errorf("p99 = %v, want ~1s bucket", p99)
	}
	if p50 >= p99 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
}

func TestLatencyHistogramExemplars(t *testing.T) {
	var h LatencyHistogram
	if got := h.Exemplar(upperBound(10)); got != "" {
		t.Fatalf("fresh histogram has exemplar %q", got)
	}
	h.ObserveExemplar(10*time.Microsecond, "aaaa")
	h.ObserveExemplar(10*time.Microsecond, "bbbb") // same bucket: last wins
	h.ObserveExemplar(5*time.Millisecond, "cccc")
	h.ObserveExemplar(time.Second, "") // untraced: counted, no exemplar
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Exemplar(upperBound(bucketOf(10 * time.Microsecond))); got != "bbbb" {
		t.Errorf("10µs bucket exemplar = %q, want bbbb", got)
	}
	if got := h.Exemplar(upperBound(bucketOf(5 * time.Millisecond))); got != "cccc" {
		t.Errorf("5ms bucket exemplar = %q, want cccc", got)
	}
	if got := h.Exemplar(upperBound(bucketOf(time.Second))); got != "" {
		t.Errorf("untraced bucket has exemplar %q", got)
	}
	if got := h.Exemplar(time.Duration(12345)); got != "" {
		t.Errorf("non-bucket bound returned %q", got)
	}
	h.Reset()
	if got := h.Exemplar(upperBound(bucketOf(5 * time.Millisecond))); got != "" {
		t.Errorf("reset kept exemplar %q", got)
	}
}

// TestExemplarReadDuringObserve is the -race exercise for the exemplar
// path: scrape-side Exemplar reads race ObserveExemplar writers, exactly
// what happens when an OpenMetrics scrape lands mid-delivery-storm.
func TestExemplarReadDuringObserve(t *testing.T) {
	var h LatencyHistogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Buckets(func(upper time.Duration, _ int64) {
					_ = h.Exemplar(upper)
				})
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				h.ObserveExemplar(time.Duration(w*1000+i)*time.Microsecond, "deadbeef")
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

// TestLatencyHistogramConcurrent is the -race exercise: many writers, a
// quantile/mean reader in flight, exact final count.
func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A reader hammering quantiles while writers observe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
				_ = h.Mean()
				_ = h.Count()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
}
