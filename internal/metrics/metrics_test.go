package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d", c.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 805 {
		t.Errorf("concurrent value = %d", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram non-zero")
	}
	for _, v := range []float64{5, 1, 4, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("min/max = %f/%f", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %f", q)
	}
	if q := h.Quantile(0.2); q != 1 {
		t.Errorf("p20 = %f", q)
	}
	h.ObserveDuration(2 * time.Millisecond)
	if h.Max() != 2000 {
		t.Errorf("duration sample = %f", h.Max())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "count", "ratio", "dur")
	tb.AddRow("alpha", 10, 0.123456, 1500*time.Microsecond)
	tb.AddRow("beta-long-name", 2000, 99.5, time.Second)
	out := tb.Render()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, headers, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "0.123") {
		t.Errorf("float formatting: %q", lines[3])
	}
	if !strings.Contains(lines[3], "1.5ms") {
		t.Errorf("duration formatting: %q", lines[3])
	}
	if !strings.Contains(lines[4], "99.5") {
		t.Errorf("large float formatting: %q", lines[4])
	}
	// Columns align: header and separator have equal prefix widths.
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestTableWholeFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(42.0)
	if !strings.Contains(tb.Render(), "42") || strings.Contains(tb.Render(), "42.0") {
		t.Errorf("whole float: %s", tb.Render())
	}
}
