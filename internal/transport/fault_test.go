package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
)

// echoHandler records received envelopes and acks them.
func echoListener(t *testing.T, tr Transport, addr string) *[]*protocol.Envelope {
	t.Helper()
	var got []*protocol.Envelope
	_, err := tr.Listen(addr, HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		got = append(got, env)
		return protocol.MustEnvelope("peer", protocol.MsgAck, nil), nil
	}))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return &got
}

func TestFaultInjectorPassthrough(t *testing.T) {
	inj := NewFaultInjector(NewMemory(1), 1)
	got := echoListener(t, inj, "gs://b")
	env := protocol.MustEnvelope("a", protocol.MsgPing, nil)
	if _, err := inj.Send(context.Background(), "gs://b", env); err != nil {
		t.Fatalf("passthrough send: %v", err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if st := inj.Stats(); st.Dropped != 0 || st.Delayed != 0 {
		t.Fatalf("stats %+v, want zeros", st)
	}
}

func TestFaultInjectorDropScopedByLinkAndType(t *testing.T) {
	inj := NewFaultInjector(NewMemory(1), 1)
	gotB := echoListener(t, inj, "gs://b")
	gotC := echoListener(t, inj, "gs://c")
	// Sever only a->b replication traffic, deterministically.
	inj.SetRules(FaultRule{From: "a", To: "gs://b", TypePrefix: "repl.", DropRate: 1})
	ctx := context.Background()

	_, err := inj.Send(ctx, "gs://b", protocol.MustEnvelope("a", protocol.MsgReplWAL, nil))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matched send err = %v, want ErrInjected", err)
	}
	// Different type on the same link passes.
	if _, err := inj.Send(ctx, "gs://b", protocol.MustEnvelope("a", protocol.MsgPing, nil)); err != nil {
		t.Fatalf("other-type send: %v", err)
	}
	// Same type to another destination passes.
	if _, err := inj.Send(ctx, "gs://c", protocol.MustEnvelope("a", protocol.MsgReplWAL, nil)); err != nil {
		t.Fatalf("other-dest send: %v", err)
	}
	if len(*gotB) != 1 || len(*gotC) != 1 {
		t.Fatalf("delivered b=%d c=%d, want 1/1", len(*gotB), len(*gotC))
	}
	if st := inj.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	// Healing restores the link.
	inj.ClearRules()
	if _, err := inj.Send(ctx, "gs://b", protocol.MustEnvelope("a", protocol.MsgReplWAL, nil)); err != nil {
		t.Fatalf("healed send: %v", err)
	}
}

func TestFaultInjectorLatencyAccountsVirtually(t *testing.T) {
	inj := NewFaultInjector(NewMemory(1), 1)
	got := echoListener(t, inj, "gs://b")
	inj.SetRules(
		FaultRule{To: "gs://b", ExtraLatency: 3 * time.Millisecond},
		FaultRule{From: "a", ExtraLatency: 2 * time.Millisecond},
	)
	env := protocol.MustEnvelope("a", protocol.MsgPing, nil)
	if _, err := inj.Send(context.Background(), "gs://b", env); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The caller's envelope is untouched; the delivered clone carries the
	// injected latency from both matching rules on top of the memory
	// transport's own per-hop accounting.
	if env.Header.VirtualLatencyMicros != 0 {
		t.Fatalf("caller envelope mutated: %d", env.Header.VirtualLatencyMicros)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if lat := (*got)[0].Header.VirtualLatencyMicros; lat < 5000 {
		t.Fatalf("delivered virtual latency %dµs, want >= 5000", lat)
	}
	if st := inj.Stats(); st.Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", st.Delayed)
	}
}

func TestFaultInjectorDeterministicWithSeed(t *testing.T) {
	run := func() (dropped int64) {
		inj := NewFaultInjector(NewMemory(7), 42)
		echoListener(t, inj, "gs://b")
		inj.SetRules(FaultRule{DropRate: 0.5})
		for i := 0; i < 200; i++ {
			_, _ = inj.Send(context.Background(), "gs://b", protocol.MustEnvelope("a", protocol.MsgPing, nil))
		}
		return inj.Stats().Dropped
	}
	a, b := run(), run()
	if a != b || a == 0 || a == 200 {
		t.Fatalf("dropped %d vs %d — want identical, partial drops", a, b)
	}
}

func TestFaultInjectorRemoveRules(t *testing.T) {
	inj := NewFaultInjector(NewMemory(1), 1)
	inj.SetRules(
		FaultRule{To: "gs://b", DropRate: 1},
		FaultRule{To: "gs://c", DropRate: 1},
	)
	if n := inj.RemoveRules(func(r FaultRule) bool { return r.To == "gs://b" }); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if rules := inj.Rules(); len(rules) != 1 || rules[0].To != "gs://c" {
		t.Fatalf("rules after removal: %+v", rules)
	}
}
