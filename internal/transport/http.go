package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/protocol"
)

// EnvelopePath is the URL path at which HTTP transports exchange envelopes.
const EnvelopePath = "/gsalert/envelope"

// maxEnvelopeBytes bounds a single envelope on the wire (16 MiB) to protect
// servers from unbounded reads.
const maxEnvelopeBytes = 16 << 20

// HTTP carries envelopes as XML over HTTP POST, the stand-in for the
// paper's SOAP messaging. Addresses are "host:port" strings.
type HTTP struct {
	client *http.Client

	mu      sync.Mutex
	servers map[string]*http.Server
	wg      sync.WaitGroup
	closed  bool

	m HTTPMetrics
}

// HTTPMetrics are the transport's wire-level counters: envelopes (frames)
// and payload bytes in each direction, plus send failures. Lock-free; an
// observability scrape reads them live (internal/obs).
type HTTPMetrics struct {
	// FramesSent counts envelopes POSTed to peers.
	FramesSent metrics.Counter
	// FramesReceived counts envelopes accepted by local listeners.
	FramesReceived metrics.Counter
	// BytesSent counts marshalled envelope bytes sent (request bodies plus
	// response bodies written by local listeners).
	BytesSent metrics.Counter
	// BytesReceived counts envelope bytes read (request bodies accepted by
	// local listeners plus response bodies of our own sends).
	BytesReceived metrics.Counter
	// SendErrors counts Send calls that failed before yielding a response
	// envelope (unreachable peer, HTTP-level failure).
	SendErrors metrics.Counter
}

// Metrics exposes the transport's live wire counters.
func (t *HTTP) Metrics() *HTTPMetrics { return &t.m }

var _ Transport = (*HTTP)(nil)

// NewHTTP builds an HTTP transport with sane client timeouts.
func NewHTTP() *HTTP {
	return &HTTP{
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 8,
				IdleConnTimeout:     60 * time.Second,
			},
		},
		servers: make(map[string]*http.Server),
	}
}

// Listen binds h to a local TCP address. Use "127.0.0.1:0" to pick a free
// port; BoundAddr on the returned listener reports the resolved address.
func (t *HTTP) Listen(addr string, h Handler) (io.Closer, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(EnvelopePath, func(w http.ResponseWriter, r *http.Request) {
		t.serveEnvelope(w, r, h)
	})
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	bound := ln.Addr().String()

	t.mu.Lock()
	t.servers[bound] = srv
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		// ErrServerClosed is the normal shutdown signal.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			_ = err // best-effort service; callers observe failures via Send
		}
	}()
	return &httpListener{t: t, addr: bound, srv: srv}, nil
}

type httpListener struct {
	t    *HTTP
	addr string
	srv  *http.Server
}

// BoundAddr reports the resolved listen address ("127.0.0.1:54321").
func (l *httpListener) BoundAddr() string { return l.addr }

// Close stops the listener.
func (l *httpListener) Close() error {
	l.t.mu.Lock()
	delete(l.t.servers, l.addr)
	l.t.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return l.srv.Shutdown(ctx)
}

// BoundAddr extracts the resolved address from a listener returned by
// HTTP.Listen; it returns "" for other listener types.
func BoundAddr(c io.Closer) string {
	if l, ok := c.(*httpListener); ok {
		return l.addr
	}
	return ""
}

func (t *HTTP) serveEnvelope(w http.ResponseWriter, r *http.Request, h Handler) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxEnvelopeBytes {
		http.Error(w, "envelope too large", http.StatusRequestEntityTooLarge)
		return
	}
	env, err := protocol.Unmarshal(body)
	if err != nil {
		http.Error(w, "malformed envelope: "+err.Error(), http.StatusBadRequest)
		return
	}
	t.m.FramesReceived.Inc()
	t.m.BytesReceived.Add(int64(len(body)))
	resp, err := h.Handle(r.Context(), env)
	if err != nil {
		resp = protocol.Errorf("", "handler", "%v", err)
	}
	if resp == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	raw, err := protocol.Marshal(resp)
	if err != nil {
		http.Error(w, "marshal response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	if _, err := w.Write(raw); err != nil {
		return // client went away; nothing to do
	}
	t.m.BytesSent.Add(int64(len(raw)))
}

// Send POSTs the envelope to addr and parses the response envelope, if any.
func (t *HTTP) Send(ctx context.Context, addr string, env *protocol.Envelope) (*protocol.Envelope, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	raw, err := protocol.Marshal(env)
	if err != nil {
		return nil, err
	}
	url := "http://" + addr + EnvelopePath
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/xml; charset=utf-8")
	t.m.FramesSent.Inc()
	t.m.BytesSent.Add(int64(len(raw)))
	httpResp, err := t.client.Do(req)
	if err != nil {
		t.m.SendErrors.Inc()
		return nil, fmt.Errorf("%w: %q: %w", ErrUnreachable, addr, err)
	}
	defer func() { _ = httpResp.Body.Close() }()

	if httpResp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxEnvelopeBytes+1))
	if err != nil {
		t.m.SendErrors.Inc()
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	t.m.BytesReceived.Add(int64(len(body)))
	if httpResp.StatusCode != http.StatusOK {
		t.m.SendErrors.Inc()
		return nil, fmt.Errorf("%w: %q: http %d: %s", ErrRemoteFailure, addr, httpResp.StatusCode, truncate(body, 200))
	}
	return protocol.Unmarshal(body)
}

// Close shuts down every listener and the client pool.
func (t *HTTP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	servers := make([]*http.Server, 0, len(t.servers))
	for _, s := range t.servers {
		servers = append(servers, s)
	}
	t.servers = make(map[string]*http.Server)
	t.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var firstErr error
	for _, s := range servers {
		if err := s.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.wg.Wait()
	t.client.CloseIdleConnections()
	return firstErr
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
