package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
)

// ErrInjected marks a send refused by a FaultInjector rule, distinguishable
// from the Memory transport's own fault vocabulary (partitions, down nodes,
// probabilistic drops) so tests can assert which layer killed a message.
var ErrInjected = errors.New("transport: injected fault")

// FaultRule scopes an injected fault to a slice of the traffic. A rule
// matches a send when every non-wildcard field matches: From against the
// envelope's logical sender name, To against the destination address, and
// TypePrefix as a prefix of the message type (e.g. "repl." hits the whole
// replication protocol, "" hits everything). Matching rules compose: drop
// probabilities are evaluated per rule in order (first hit wins) and extra
// latencies accumulate.
type FaultRule struct {
	// From matches the envelope's logical sender name; "" or "*" matches any.
	From string
	// To matches the destination address; "" or "*" matches any.
	To string
	// TypePrefix matches a prefix of the message type; "" matches any.
	TypePrefix string
	// DropRate is the probability (0..1] that a matching send fails with
	// ErrInjected. 1.0 severs the matched traffic deterministically.
	DropRate float64
	// ExtraLatency is added to the envelope's virtual latency accounting
	// (the Memory transport convention: accounted, never slept).
	ExtraLatency time.Duration
}

func (r FaultRule) matches(from, to string, typ protocol.MessageType) bool {
	if r.From != "" && r.From != "*" && r.From != from {
		return false
	}
	if r.To != "" && r.To != "*" && r.To != to {
		return false
	}
	if r.TypePrefix != "" && !hasPrefix(string(typ), r.TypePrefix) {
		return false
	}
	return true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// String renders a rule for logs and schedule listings.
func (r FaultRule) String() string {
	from, to := r.From, r.To
	if from == "" {
		from = "*"
	}
	if to == "" {
		to = "*"
	}
	s := fmt.Sprintf("%s->%s", from, to)
	if r.TypePrefix != "" {
		s += " type=" + r.TypePrefix
	}
	if r.DropRate > 0 {
		s += fmt.Sprintf(" drop=%g", r.DropRate)
	}
	if r.ExtraLatency > 0 {
		s += " latency=" + r.ExtraLatency.String()
	}
	return s
}

// FaultInjectorStats counts the injector's interventions.
type FaultInjectorStats struct {
	// Dropped counts sends refused with ErrInjected.
	Dropped int64
	// Delayed counts sends forwarded with extra virtual latency.
	Delayed int64
}

// FaultInjector decorates a Transport with a mutable rule set for chaos
// experiments: scheduled link degradation (extra virtual latency) and
// deterministic or probabilistic message loss, scoped by sender, destination
// and message-type prefix. With no rules installed it is a passthrough, so a
// cluster can be built over an injector unconditionally and pay nothing
// until a schedule arms it. The random source is seeded, keeping chaos runs
// reproducible; Listen and Close delegate to the wrapped transport.
type FaultInjector struct {
	inner Transport

	mu    sync.RWMutex
	rules []FaultRule

	rngMu sync.Mutex
	rng   *rand.Rand

	dropped atomic.Int64
	delayed atomic.Int64
}

var _ Transport = (*FaultInjector)(nil)

// NewFaultInjector wraps inner with an empty rule set.
func NewFaultInjector(inner Transport, seed int64) *FaultInjector {
	return &FaultInjector{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetRules replaces the active rule set.
func (f *FaultInjector) SetRules(rules ...FaultRule) {
	f.mu.Lock()
	f.rules = append([]FaultRule(nil), rules...)
	f.mu.Unlock()
}

// AddRule appends a rule to the active set.
func (f *FaultInjector) AddRule(r FaultRule) {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
}

// ClearRules disarms the injector.
func (f *FaultInjector) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// RemoveRules drops every rule for which pred returns true, returning the
// number removed (a schedule healing one link leaves others degraded).
func (f *FaultInjector) RemoveRules(pred func(FaultRule) bool) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.rules[:0]
	removed := 0
	for _, r := range f.rules {
		if pred(r) {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	f.rules = kept
	return removed
}

// Rules returns a copy of the active rule set.
func (f *FaultInjector) Rules() []FaultRule {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]FaultRule(nil), f.rules...)
}

// Stats snapshots the intervention counters.
func (f *FaultInjector) Stats() FaultInjectorStats {
	return FaultInjectorStats{Dropped: f.dropped.Load(), Delayed: f.delayed.Load()}
}

// Listen delegates to the wrapped transport (faults apply to sends only;
// inbound handling is the receiver's business).
func (f *FaultInjector) Listen(addr string, h Handler) (io.Closer, error) {
	return f.inner.Listen(addr, h)
}

// Send applies the matching rules, then delegates. A drop returns
// ErrInjected without touching the wrapped transport; extra latency is
// accounted on a clone of the envelope (Send contracts forbid retaining or
// mutating the caller's envelope).
func (f *FaultInjector) Send(ctx context.Context, addr string, env *protocol.Envelope) (*protocol.Envelope, error) {
	f.mu.RLock()
	rules := f.rules
	f.mu.RUnlock()
	if len(rules) == 0 {
		return f.inner.Send(ctx, addr, env)
	}
	from := env.Header.From
	var extra time.Duration
	for _, r := range rules {
		if !r.matches(from, addr, env.Header.Type) {
			continue
		}
		if r.DropRate > 0 {
			f.rngMu.Lock()
			roll := f.rng.Float64()
			f.rngMu.Unlock()
			if roll < r.DropRate {
				f.dropped.Add(1)
				return nil, fmt.Errorf("%w: %s -> %s (%s)", ErrInjected, from, addr, env.Header.Type)
			}
		}
		extra += r.ExtraLatency
	}
	if extra > 0 {
		env = env.Clone()
		env.Header.VirtualLatencyMicros += int64(extra / time.Microsecond)
		f.delayed.Add(1)
	}
	return f.inner.Send(ctx, addr, env)
}

// Close delegates to the wrapped transport.
func (f *FaultInjector) Close() error { return f.inner.Close() }
