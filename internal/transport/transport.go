// Package transport carries protocol envelopes between nodes.
//
// Two implementations are provided. Memory is a deterministic simulated
// network used by the test suite and the experiment harness: it supports
// partitions, probabilistic loss, per-link virtual latency and message
// accounting, and delivers synchronously in the caller's goroutine so
// experiments are reproducible. HTTP runs the same envelopes over real
// sockets via stdlib net/http and backs the runnable examples and command
// line tools.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/gsalert/gsalert/internal/protocol"
)

// Handler processes one incoming envelope and returns a response envelope
// (which may be nil for one-way messages).
type Handler interface {
	Handle(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	return f(ctx, env)
}

// Transport sends envelopes to addresses and binds handlers to addresses.
type Transport interface {
	// Listen binds h to addr. The returned closer unbinds it.
	Listen(addr string, h Handler) (io.Closer, error)
	// Send delivers env to addr and returns the peer's response (nil for
	// one-way messages). Implementations must not retain env after return.
	Send(ctx context.Context, addr string, env *protocol.Envelope) (*protocol.Envelope, error)
	// Close releases all listeners and in-flight resources.
	Close() error
}

// Errors shared by transport implementations.
var (
	ErrUnreachable   = errors.New("transport: address unreachable")
	ErrPartitioned   = errors.New("transport: link partitioned")
	ErrDropped       = errors.New("transport: message dropped")
	ErrClosed        = errors.New("transport: closed")
	ErrAlreadyBound  = errors.New("transport: address already bound")
	ErrNotBound      = errors.New("transport: address not bound")
	ErrRemoteFailure = errors.New("transport: remote handler failure")
)

// SendExpect sends env and decodes the response into dst, translating error
// envelopes into Go errors. want names the expected response type.
func SendExpect(ctx context.Context, tr Transport, addr string, env *protocol.Envelope, want protocol.MessageType, dst any) error {
	resp, err := tr.Send(ctx, addr, env)
	if err != nil {
		return err
	}
	if err := protocol.AsError(resp); err != nil {
		return fmt.Errorf("%w: %w", ErrRemoteFailure, err)
	}
	if dst == nil {
		return nil
	}
	return protocol.Decode(resp, want, dst)
}

// SendOneWay sends env, accepting either a nil response or an ack; error
// envelopes are translated into Go errors.
func SendOneWay(ctx context.Context, tr Transport, addr string, env *protocol.Envelope) error {
	resp, err := tr.Send(ctx, addr, env)
	if err != nil {
		return err
	}
	if err := protocol.AsError(resp); err != nil {
		return fmt.Errorf("%w: %w", ErrRemoteFailure, err)
	}
	return nil
}
