package transport

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
)

// Memory is a deterministic in-process network. Delivery is synchronous in
// the caller's goroutine; "latency" is accounted virtually on the envelope
// header instead of by sleeping, so large simulations run in microseconds
// and every run with the same seed is identical.
//
// Fault injection: links can be partitioned pairwise, whole nodes can be
// taken down, and a probabilistic drop rate models the best-effort delivery
// of the paper's GDS (§6).
//
// Handlers are invoked synchronously, therefore handler code must never
// hold a lock across a Send on the same transport (the echo of the usual
// distributed-systems rule that a server must not block its event loop on
// its own RPCs).
type Memory struct {
	mu             sync.RWMutex
	handlers       map[string]Handler
	downNodes      map[string]bool
	cuts           map[linkKey]bool
	latency        map[linkKey]time.Duration
	defaultLatency time.Duration
	dropRate       float64
	rng            *rand.Rand
	rngMu          sync.Mutex
	closed         bool
	stats          MemoryStats
}

type linkKey struct{ a, b string }

func newLinkKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// MemoryStats counts traffic through a Memory transport.
type MemoryStats struct {
	// Sent counts Send calls that passed fault checks and were delivered.
	Sent int64
	// Dropped counts messages lost to the probabilistic drop rate.
	Dropped int64
	// Blocked counts messages refused by partitions or down nodes.
	Blocked int64
	// Bytes approximates payload volume (body bytes per delivery).
	Bytes int64
	// PerType counts deliveries by message type.
	PerType map[protocol.MessageType]int64
}

// NewMemory builds a simulated network seeded for reproducibility.
func NewMemory(seed int64) *Memory {
	return &Memory{
		handlers:       make(map[string]Handler),
		downNodes:      make(map[string]bool),
		cuts:           make(map[linkKey]bool),
		latency:        make(map[linkKey]time.Duration),
		defaultLatency: time.Millisecond,
		rng:            rand.New(rand.NewSource(seed)),
		stats:          MemoryStats{PerType: make(map[protocol.MessageType]int64)},
	}
}

var _ Transport = (*Memory)(nil)

type memoryListener struct {
	m    *Memory
	addr string
}

// Close unbinds the listener's address.
func (l *memoryListener) Close() error {
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	if _, ok := l.m.handlers[l.addr]; !ok {
		return ErrNotBound
	}
	delete(l.m.handlers, l.addr)
	return nil
}

// Listen binds h to addr.
func (m *Memory) Listen(addr string, h Handler) (io.Closer, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.handlers[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAlreadyBound, addr)
	}
	m.handlers[addr] = h
	return &memoryListener{m: m, addr: addr}, nil
}

// Send delivers env to addr synchronously, applying partitions, node
// down states, probabilistic drops and virtual latency accounting.
func (m *Memory) Send(ctx context.Context, addr string, env *protocol.Envelope) (*protocol.Envelope, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	from := env.Header.From

	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return nil, ErrClosed
	}
	h, ok := m.handlers[addr]
	down := m.downNodes[addr] || (from != "" && m.downNodes[from])
	cut := from != "" && m.cuts[newLinkKey(from, addr)]
	lat, hasLat := m.latency[newLinkKey(from, addr)]
	if !hasLat {
		lat = m.defaultLatency
	}
	drop := m.dropRate
	m.mu.RUnlock()

	if !ok {
		m.count(func(s *MemoryStats) { s.Blocked++ })
		return nil, fmt.Errorf("%w: %q", ErrUnreachable, addr)
	}
	if down {
		m.count(func(s *MemoryStats) { s.Blocked++ })
		return nil, fmt.Errorf("%w: node down on path %q -> %q", ErrUnreachable, from, addr)
	}
	if cut {
		m.count(func(s *MemoryStats) { s.Blocked++ })
		return nil, fmt.Errorf("%w: %q -> %q", ErrPartitioned, from, addr)
	}
	if drop > 0 {
		m.rngMu.Lock()
		lost := m.rng.Float64() < drop
		m.rngMu.Unlock()
		if lost {
			m.count(func(s *MemoryStats) { s.Dropped++ })
			return nil, fmt.Errorf("%w: %q -> %q", ErrDropped, from, addr)
		}
	}

	delivered := env.Clone()
	delivered.Header.VirtualLatencyMicros += lat.Microseconds()
	typ := delivered.Header.Type
	size := int64(len(delivered.Body.Inner))
	m.count(func(s *MemoryStats) {
		s.Sent++
		s.Bytes += size
		s.PerType[typ]++
	})

	resp, err := h.Handle(ctx, delivered)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %w", ErrRemoteFailure, addr, err)
	}
	if resp != nil {
		// The response travels the same link back.
		resp = resp.Clone()
		resp.Header.VirtualLatencyMicros = delivered.Header.VirtualLatencyMicros + lat.Microseconds()
	}
	return resp, nil
}

// Close shuts the network down; all subsequent operations fail.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.handlers = make(map[string]Handler)
	return nil
}

func (m *Memory) count(f func(*MemoryStats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// Stats returns a snapshot of traffic counters.
func (m *Memory) Stats() MemoryStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := m.stats
	out.PerType = make(map[protocol.MessageType]int64, len(m.stats.PerType))
	for k, v := range m.stats.PerType {
		out.PerType[k] = v
	}
	return out
}

// ResetStats zeroes the traffic counters (between experiment phases).
func (m *Memory) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = MemoryStats{PerType: make(map[protocol.MessageType]int64)}
}

// Partition cuts the bidirectional link between a and b.
func (m *Memory) Partition(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cuts[newLinkKey(a, b)] = true
}

// Heal restores the link between a and b.
func (m *Memory) Heal(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cuts, newLinkKey(a, b))
}

// HealAll removes every partition and brings every node back up.
func (m *Memory) HealAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cuts = make(map[linkKey]bool)
	m.downNodes = make(map[string]bool)
}

// SetNodeDown marks addr unreachable in both directions (crash model).
func (m *Memory) SetNodeDown(addr string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if down {
		m.downNodes[addr] = true
	} else {
		delete(m.downNodes, addr)
	}
}

// SetDropRate sets the probabilistic loss rate in [0,1] applied to every
// message (best-effort delivery model).
func (m *Memory) SetDropRate(p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	m.dropRate = p
}

// SetLinkLatency assigns a virtual latency to the a<->b link.
func (m *Memory) SetLinkLatency(a, b string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency[newLinkKey(a, b)] = d
}

// SetDefaultLatency assigns the virtual latency used by links without an
// explicit setting.
func (m *Memory) SetDefaultLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defaultLatency = d
}

// Bound reports whether addr currently has a handler.
func (m *Memory) Bound(addr string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.handlers[addr]
	return ok
}
