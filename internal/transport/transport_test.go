package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
)

func echoHandler(name string) Handler {
	return HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		var p protocol.Ping
		if err := protocol.Decode(env, protocol.MsgPing, &p); err != nil {
			return protocol.Errorf(name, "decode", "%v", err), nil
		}
		return protocol.MustEnvelope(name, protocol.MsgPing, &protocol.Ping{Seq: p.Seq + 1}), nil
	})
}

func TestMemorySendReceive(t *testing.T) {
	m := NewMemory(1)
	defer func() { _ = m.Close() }()
	if _, err := m.Listen("b", echoHandler("b")); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{Seq: 1})
	resp, err := m.Send(context.Background(), "b", env)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	var p protocol.Ping
	if err := protocol.Decode(resp, protocol.MsgPing, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Seq != 2 {
		t.Errorf("Seq = %d, want 2", p.Seq)
	}
}

func TestMemoryUnreachable(t *testing.T) {
	m := NewMemory(1)
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(context.Background(), "nobody", env); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestMemoryPartitionAndHeal(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	m.Partition("a", "b")
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(context.Background(), "b", env); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	// Partition is symmetric by key regardless of argument order.
	m.Heal("b", "a")
	if _, err := m.Send(context.Background(), "b", env); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestMemoryNodeDown(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	m.SetNodeDown("b", true)
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(context.Background(), "b", env); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	m.SetNodeDown("b", false)
	if _, err := m.Send(context.Background(), "b", env); err != nil {
		t.Fatalf("after revive: %v", err)
	}
	// Sender down blocks too.
	m.SetNodeDown("a", true)
	if _, err := m.Send(context.Background(), "b", env); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("sender down err = %v, want ErrUnreachable", err)
	}
}

func TestMemoryDropRateDeterministic(t *testing.T) {
	run := func(seed int64) int {
		m := NewMemory(seed)
		_, _ = m.Listen("b", echoHandler("b"))
		m.SetDropRate(0.5)
		drops := 0
		for i := 0; i < 200; i++ {
			env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{Seq: i})
			if _, err := m.Send(context.Background(), "b", env); errors.Is(err, ErrDropped) {
				drops++
			}
		}
		return drops
	}
	d1, d2 := run(42), run(42)
	if d1 != d2 {
		t.Fatalf("same seed, different drops: %d vs %d", d1, d2)
	}
	if d1 < 50 || d1 > 150 {
		t.Fatalf("drop count %d implausible for p=0.5 over 200 sends", d1)
	}
}

func TestMemoryVirtualLatencyAccumulates(t *testing.T) {
	m := NewMemory(1)
	m.SetDefaultLatency(2 * time.Millisecond)
	m.SetLinkLatency("a", "b", 10*time.Millisecond)

	var relayed *protocol.Envelope
	// c records what it receives.
	_, _ = m.Listen("c", HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		relayed = env
		return nil, nil
	}))
	// b relays a->b messages to c.
	_, _ = m.Listen("b", HandlerFunc(func(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		fwd := env.NextHop()
		fwd.Header.From = "b"
		return m.Send(ctx, "c", fwd)
	}))

	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(context.Background(), "b", env); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if relayed == nil {
		t.Fatal("c never received the relay")
	}
	want := (10 * time.Millisecond).Microseconds() + (2 * time.Millisecond).Microseconds()
	if relayed.Header.VirtualLatencyMicros != want {
		t.Errorf("virtual latency = %dus, want %dus", relayed.Header.VirtualLatencyMicros, want)
	}
	if relayed.Header.Hops != 1 {
		t.Errorf("hops = %d, want 1", relayed.Header.Hops)
	}
}

func TestMemoryStats(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	for i := 0; i < 5; i++ {
		env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{Seq: i})
		if _, err := m.Send(context.Background(), "b", env); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Sent != 5 {
		t.Errorf("Sent = %d, want 5", st.Sent)
	}
	if st.PerType[protocol.MsgPing] != 5 {
		t.Errorf("PerType[ping] = %d, want 5", st.PerType[protocol.MsgPing])
	}
	m.ResetStats()
	if st := m.Stats(); st.Sent != 0 {
		t.Errorf("after reset Sent = %d", st.Sent)
	}
}

func TestMemoryDoubleBind(t *testing.T) {
	m := NewMemory(1)
	l, err := m.Listen("x", echoHandler("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("x", echoHandler("x")); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("err = %v, want ErrAlreadyBound", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Listen("x", echoHandler("x")); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestMemoryClosed(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	_ = m.Close()
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(context.Background(), "b", env); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := m.Listen("c", echoHandler("c")); !errors.Is(err, ErrClosed) {
		t.Fatalf("listen err = %v, want ErrClosed", err)
	}
}

func TestMemoryConcurrentSends(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := protocol.MustEnvelope(fmt.Sprintf("a%d", i), protocol.MsgPing, &protocol.Ping{Seq: i})
			if _, err := m.Send(context.Background(), "b", env); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent send: %v", err)
	}
	if st := m.Stats(); st.Sent != 64 {
		t.Errorf("Sent = %d, want 64", st.Sent)
	}
}

func TestMemoryContextCancelled(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", echoHandler("b"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	if _, err := m.Send(ctx, "b", env); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSendExpectTranslatesRemoteError(t *testing.T) {
	m := NewMemory(1)
	_, _ = m.Listen("b", HandlerFunc(func(context.Context, *protocol.Envelope) (*protocol.Envelope, error) {
		return protocol.Errorf("b", "nope", "always fails"), nil
	}))
	env := protocol.MustEnvelope("a", protocol.MsgPing, &protocol.Ping{})
	var p protocol.Ping
	err := SendExpect(context.Background(), m, "b", env, protocol.MsgPing, &p)
	if !errors.Is(err, ErrRemoteFailure) {
		t.Fatalf("err = %v, want ErrRemoteFailure", err)
	}
	var re *protocol.RemoteError
	if !errors.As(err, &re) || re.Code != "nope" {
		t.Fatalf("remote error not preserved: %v", err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	tr := NewHTTP()
	defer func() { _ = tr.Close() }()
	l, err := tr.Listen("127.0.0.1:0", echoHandler("srv"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := BoundAddr(l)
	if addr == "" {
		t.Fatal("BoundAddr empty")
	}
	env := protocol.MustEnvelope("cli", protocol.MsgPing, &protocol.Ping{Seq: 41})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := tr.Send(ctx, addr, env)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	var p protocol.Ping
	if err := protocol.Decode(resp, protocol.MsgPing, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Seq != 42 {
		t.Errorf("Seq = %d, want 42", p.Seq)
	}
}

func TestHTTPOneWayNoContent(t *testing.T) {
	tr := NewHTTP()
	defer func() { _ = tr.Close() }()
	received := make(chan string, 1)
	l, err := tr.Listen("127.0.0.1:0", HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		received <- env.Header.From
		return nil, nil
	}))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	env := protocol.MustEnvelope("cli", protocol.MsgPing, &protocol.Ping{})
	resp, err := tr.Send(context.Background(), BoundAddr(l), env)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if resp != nil {
		t.Errorf("resp = %+v, want nil for 204", resp)
	}
	select {
	case from := <-received:
		if from != "cli" {
			t.Errorf("from = %q", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestHTTPUnreachable(t *testing.T) {
	tr := NewHTTP()
	defer func() { _ = tr.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	env := protocol.MustEnvelope("cli", protocol.MsgPing, &protocol.Ping{})
	// Port 1 on localhost is essentially never listening.
	if _, err := tr.Send(ctx, "127.0.0.1:1", env); err == nil {
		t.Fatal("Send to closed port succeeded")
	}
}

func TestHTTPHandlerErrorBecomesErrorEnvelope(t *testing.T) {
	tr := NewHTTP()
	defer func() { _ = tr.Close() }()
	l, _ := tr.Listen("127.0.0.1:0", HandlerFunc(func(context.Context, *protocol.Envelope) (*protocol.Envelope, error) {
		return nil, errors.New("boom")
	}))
	env := protocol.MustEnvelope("cli", protocol.MsgPing, &protocol.Ping{})
	resp, err := tr.Send(context.Background(), BoundAddr(l), env)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if remoteErr := protocol.AsError(resp); remoteErr == nil {
		t.Fatalf("want error envelope, got %+v", resp)
	}
}

func TestHTTPListenerClose(t *testing.T) {
	tr := NewHTTP()
	defer func() { _ = tr.Close() }()
	l, err := tr.Listen("127.0.0.1:0", echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	addr := BoundAddr(l)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	env := protocol.MustEnvelope("cli", protocol.MsgPing, &protocol.Ping{})
	if _, err := tr.Send(ctx, addr, env); err == nil {
		t.Fatal("Send after listener close succeeded")
	}
}
