package baseline

import (
	"fmt"
	"testing"
)

// twoIslands builds: A-B-C connected; D-E connected; F solitary.
func twoIslands() *Network {
	n := NewNetwork([]string{"A", "B", "C", "D", "E", "F"}, 3)
	n.AddLink("A", "B")
	n.AddLink("B", "C")
	n.AddLink("D", "E")
	return n
}

func TestNetworkBasics(t *testing.T) {
	n := twoIslands()
	if !n.LinkUp("A", "B") || n.LinkUp("A", "D") {
		t.Error("adjacency wrong")
	}
	n.CutLink("A", "B")
	if n.LinkUp("A", "B") {
		t.Error("cut link still up")
	}
	n.HealLink("B", "A") // symmetric key
	if !n.LinkUp("A", "B") {
		t.Error("healed link down")
	}
	n.SetDown("B", true)
	if n.LinkUp("A", "B") || n.Up("B") {
		t.Error("down server still reachable")
	}
	n.SetDown("B", false)
	if !n.Up("B") {
		t.Error("revived server down")
	}
	// Self-links and unknown servers are ignored.
	n.AddLink("A", "A")
	n.AddLink("A", "Ghost")
	if len(n.Neighbors("A")) != 1 {
		t.Errorf("neighbors of A = %v", n.Neighbors("A"))
	}
}

func TestFloodRespectsFragmentation(t *testing.T) {
	n := twoIslands()
	reached, msgs := n.FloodFrom("A")
	if len(reached) != 3 {
		t.Errorf("reached = %v", reached)
	}
	if msgs == 0 {
		t.Error("flood cost zero")
	}
	if reached["D"] || reached["F"] {
		t.Error("flood crossed islands")
	}
	reached, _ = n.FloodFrom("F")
	if len(reached) != 1 {
		t.Errorf("solitary flood reached %v", reached)
	}
	// Down origin reaches nothing.
	n.SetDown("A", true)
	if r, _ := n.FloodFrom("A"); len(r) != 0 {
		t.Errorf("down origin reached %v", r)
	}
}

func TestPathLen(t *testing.T) {
	n := twoIslands()
	if d := n.PathLen("A", "C"); d != 2 {
		t.Errorf("A->C = %d", d)
	}
	if d := n.PathLen("A", "A"); d != 0 {
		t.Errorf("self = %d", d)
	}
	if d := n.PathLen("A", "D"); d != -1 {
		t.Errorf("cross-island = %d", d)
	}
}

func subs(entries ...[3]string) []Subscription {
	out := make([]Subscription, 0, len(entries))
	for _, e := range entries {
		out = append(out, Subscription{ID: e[0], Server: e[1], Collection: e[2]})
	}
	return out
}

func TestHybridDeliversAcrossIslands(t *testing.T) {
	n := twoIslands()
	r := NewHybrid(n)
	o := NewOracle(n)
	for _, s := range subs([3]string{"s1", "A", "X.C"}, [3]string{"s2", "D", "X.C"}, [3]string{"s3", "F", "X.C"}) {
		r.Subscribe(s)
		o.Subscribe(s)
	}
	ev := Event{ID: "e1", Origin: "A", Collection: "X.C"}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	// The GDS reaches every island and the solitary server.
	if sc.FalseNegatives != 0 || sc.FalsePositives != 0 {
		t.Errorf("hybrid score = %+v", sc)
	}
	if sc.Delivered != 3 {
		t.Errorf("delivered = %d", sc.Delivered)
	}
	if r.Messages() == 0 {
		t.Error("hybrid cost zero")
	}
}

func TestGSFloodMissesOtherIslands(t *testing.T) {
	n := twoIslands()
	r := NewGSFlood(n)
	o := NewOracle(n)
	for _, s := range subs([3]string{"s1", "C", "X.C"}, [3]string{"s2", "D", "X.C"}, [3]string{"s3", "F", "X.C"}) {
		r.Subscribe(s)
		o.Subscribe(s)
	}
	ev := Event{ID: "e1", Origin: "A", Collection: "X.C"}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	// Only s1 (same island) is reached; s2 and s3 are false negatives.
	if sc.Delivered != 1 || sc.FalseNegatives != 2 {
		t.Errorf("gs-flood score = %+v", sc)
	}
}

func TestProfileFloodDanglingCancellation(t *testing.T) {
	n := NewNetwork([]string{"P", "Q"}, 1)
	n.AddLink("P", "Q")
	r := NewProfileFlood(n)
	o := NewOracle(n)
	sub := Subscription{ID: "s1", Server: "Q", Collection: "P.C"}
	r.Subscribe(sub) // replicated to P and Q
	o.Subscribe(sub)

	// Link breaks; the user cancels; the cancellation cannot reach P.
	n.CutLink("P", "Q")
	r.Unsubscribe("s1")
	o.Unsubscribe("s1")

	// Link heals; P still holds the orphan replica; event fires.
	n.HealLink("P", "Q")
	ev := Event{ID: "e1", Origin: "P", Collection: "P.C"}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	if sc.FalsePositives != 1 {
		t.Errorf("expected 1 false positive from dangling profile, got %+v", sc)
	}
	// The hybrid router cannot produce this: cancellation is local.
	h := NewHybrid(n)
	oh := NewOracle(n)
	h.Subscribe(sub)
	oh.Subscribe(sub)
	n.CutLink("P", "Q")
	h.Unsubscribe("s1")
	oh.Unsubscribe("s1")
	n.HealLink("P", "Q")
	if sc := oh.ScoreEvent(ev, h.Publish(ev)); sc.FalsePositives != 0 {
		t.Errorf("hybrid produced false positives: %+v", sc)
	}
}

func TestProfileFloodMissesUnreachableSubscriber(t *testing.T) {
	n := twoIslands()
	r := NewProfileFlood(n)
	o := NewOracle(n)
	// Subscriber on island 2 cannot replicate its profile to island 1.
	sub := Subscription{ID: "s1", Server: "D", Collection: "A.C"}
	r.Subscribe(sub)
	o.Subscribe(sub)
	ev := Event{ID: "e1", Origin: "A", Collection: "A.C"}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	if sc.FalseNegatives != 1 {
		t.Errorf("score = %+v", sc)
	}
}

func TestRendezvousFailsWhenRVUnreachable(t *testing.T) {
	n := twoIslands()
	r := NewRendezvous(n)
	o := NewOracle(n)
	// Find a collection whose rendezvous lands on the other island from A.
	var coll string
	for i := 0; i < 100; i++ {
		c := fmt.Sprintf("X.C%d", i)
		rv := r.rvNode(c)
		if rv == "D" || rv == "E" || rv == "F" {
			coll = c
			break
		}
	}
	if coll == "" {
		t.Skip("no collection hashed to the far island")
	}
	sub := Subscription{ID: "s1", Server: "A", Collection: coll}
	r.Subscribe(sub) // cannot reach RV: lost
	o.Subscribe(sub)
	ev := Event{ID: "e1", Origin: "B", Collection: coll}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	if sc.FalseNegatives != 1 || sc.Delivered != 0 {
		t.Errorf("score = %+v", sc)
	}
}

func TestRendezvousWorksWhenConnected(t *testing.T) {
	n := NewNetwork([]string{"A", "B", "C"}, 1)
	n.AddLink("A", "B")
	n.AddLink("B", "C")
	r := NewRendezvous(n)
	o := NewOracle(n)
	sub := Subscription{ID: "s1", Server: "C", Collection: "A.C"}
	r.Subscribe(sub)
	o.Subscribe(sub)
	ev := Event{ID: "e1", Origin: "A", Collection: "A.C"}
	sc := o.ScoreEvent(ev, r.Publish(ev))
	if sc.FalseNegatives != 0 || sc.FalsePositives != 0 || sc.Delivered != 1 {
		t.Errorf("score = %+v", sc)
	}
}

func TestRendezvousDownNode(t *testing.T) {
	n := NewNetwork([]string{"A", "B", "C"}, 1)
	n.AddLink("A", "B")
	n.AddLink("B", "C")
	r := NewRendezvous(n)
	o := NewOracle(n)
	sub := Subscription{ID: "s1", Server: "C", Collection: "A.C"}
	r.Subscribe(sub)
	o.Subscribe(sub)
	// Crash the rendezvous node for this collection.
	rv := r.rvNode("A.C")
	if rv == "A" || rv == "C" {
		// Crash would also take out publisher or subscriber; pick the
		// middle instead by re-homing: just verify behaviour for this rv.
		t.Logf("rv = %s", rv)
	}
	n.SetDown(rv, true)
	ev := Event{ID: "e1", Origin: "A", Collection: "A.C"}
	deliveries := r.Publish(ev)
	if rv != "A" { // if the publisher itself crashed the event cannot even be published
		sc := o.ScoreEvent(ev, deliveries)
		if rv != "C" && sc.FalseNegatives != 1 {
			t.Errorf("score with rv %s down = %+v", rv, sc)
		}
	}
}

func TestOracleScoring(t *testing.T) {
	n := NewNetwork([]string{"A"}, 1)
	o := NewOracle(n)
	o.Subscribe(Subscription{ID: "s1", Server: "A", Collection: "A.C"})
	o.Subscribe(Subscription{ID: "s2", Server: "A", Collection: "A.C"})
	ev := Event{ID: "e1", Origin: "A", Collection: "A.C"}

	// Perfect delivery.
	sc := o.ScoreEvent(ev, []Delivery{{SubID: "s1", EventID: "e1"}, {SubID: "s2", EventID: "e1"}})
	if sc.FalseNegatives != 0 || sc.FalsePositives != 0 {
		t.Errorf("perfect: %+v", sc)
	}
	// Duplicate counts as false positive.
	sc = o.ScoreEvent(ev, []Delivery{{SubID: "s1", EventID: "e1"}, {SubID: "s1", EventID: "e1"}})
	if sc.FalsePositives != 1 || sc.FalseNegatives != 1 {
		t.Errorf("duplicate: %+v", sc)
	}
	// Unknown subscription is a false positive.
	sc = o.ScoreEvent(ev, []Delivery{{SubID: "ghost", EventID: "e1"}})
	if sc.FalsePositives != 1 || sc.FalseNegatives != 2 {
		t.Errorf("ghost: %+v", sc)
	}
	// Rates.
	if sc.FNRate() != 1.0 {
		t.Errorf("FNRate = %f", sc.FNRate())
	}
	if sc.FPRate() != 1.0 {
		t.Errorf("FPRate = %f", sc.FPRate())
	}
	var zero Score
	if zero.FNRate() != 0 || zero.FPRate() != 0 {
		t.Error("zero rates")
	}
}

func TestScoreAdd(t *testing.T) {
	a := Score{Expected: 1, Delivered: 2, FalseNegatives: 3, FalsePositives: 4}
	b := Score{Expected: 10, Delivered: 20, FalseNegatives: 30, FalsePositives: 40}
	a.Add(b)
	if a.Expected != 11 || a.Delivered != 22 || a.FalseNegatives != 33 || a.FalsePositives != 44 {
		t.Errorf("sum = %+v", a)
	}
}
