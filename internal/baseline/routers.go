package baseline

import (
	"hash/fnv"
	"sort"
)

// Subscription is the routing-level view of a user profile: a client at a
// home server interested in one qualified collection.
type Subscription struct {
	ID         string
	Server     string // home server where the user defined it
	Collection string // qualified collection name ("Host.Coll")
}

// Event is the routing-level view of an alerting event.
type Event struct {
	ID         string
	Origin     string // publishing server
	Collection string // qualified collection name
}

// Delivery records one notification handed to a subscription.
type Delivery struct {
	SubID   string
	EventID string
}

// Router is a routing strategy under test in experiment E3.
type Router interface {
	// Name identifies the strategy in result tables.
	Name() string
	// Subscribe registers a subscription (network effects apply).
	Subscribe(sub Subscription)
	// Unsubscribe cancels by ID (network effects apply: cancellations can
	// fail to propagate through partitions — that is the point).
	Unsubscribe(subID string)
	// Publish routes an event, returning the notifications delivered.
	Publish(ev Event) []Delivery
	// Messages reports cumulative message cost.
	Messages() int
}

// ---------------------------------------------------------------------------
// Hybrid: the paper's design. Profiles stay home; events flood via the GDS.

// Hybrid is the paper's GDS-flooding router.
type Hybrid struct {
	net  *Network
	subs map[string]Subscription
	msgs int
}

// NewHybrid builds the paper's router over net.
func NewHybrid(net *Network) *Hybrid {
	return &Hybrid{net: net, subs: make(map[string]Subscription)}
}

var _ Router = (*Hybrid)(nil)

// Name implements Router.
func (h *Hybrid) Name() string { return "hybrid-gds" }

// Subscribe stores the profile at its home server only — zero messages.
func (h *Hybrid) Subscribe(sub Subscription) { h.subs[sub.ID] = sub }

// Unsubscribe deletes locally — zero messages, and it cannot dangle.
func (h *Hybrid) Unsubscribe(subID string) { delete(h.subs, subID) }

// Publish floods the event over the directory tree to every GDS-reachable
// server, where local profiles are matched.
func (h *Hybrid) Publish(ev Event) []Delivery {
	if !h.net.GDSReachable(ev.Origin) {
		// Solitary offline publisher: only its local subscribers hear.
		var out []Delivery
		for _, sub := range h.sortedSubs() {
			if sub.Server == ev.Origin && sub.Collection == ev.Collection {
				out = append(out, Delivery{SubID: sub.ID, EventID: ev.ID})
			}
		}
		return out
	}
	reachable := make(map[string]bool)
	for _, s := range h.net.GDSReachableServers() {
		reachable[s] = true
	}
	h.msgs += h.net.GDSBroadcastCost(len(reachable))
	var out []Delivery
	for _, sub := range h.sortedSubs() {
		if sub.Collection != ev.Collection {
			continue
		}
		if reachable[sub.Server] {
			out = append(out, Delivery{SubID: sub.ID, EventID: ev.ID})
		}
	}
	return out
}

func (h *Hybrid) sortedSubs() []Subscription {
	out := make([]Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Messages implements Router.
func (h *Hybrid) Messages() int { return h.msgs }

// ---------------------------------------------------------------------------
// GSFlood: event flooding over the Greenstone network itself (what the paper
// shows cannot work on a fragmented network — §4: "it is not possible to use
// the GS network for distributed alerting since it is too fragmented").

// GSFlood floods events over GS links only.
type GSFlood struct {
	net  *Network
	subs map[string]Subscription
	msgs int
}

// NewGSFlood builds the GS-network flooding baseline.
func NewGSFlood(net *Network) *GSFlood {
	return &GSFlood{net: net, subs: make(map[string]Subscription)}
}

var _ Router = (*GSFlood)(nil)

// Name implements Router.
func (g *GSFlood) Name() string { return "gs-flood" }

// Subscribe stores the profile at its home server.
func (g *GSFlood) Subscribe(sub Subscription) { g.subs[sub.ID] = sub }

// Unsubscribe deletes locally.
func (g *GSFlood) Unsubscribe(subID string) { delete(g.subs, subID) }

// Publish floods over GS links; subscribers on unreachable fragments are
// silently missed (false negatives).
func (g *GSFlood) Publish(ev Event) []Delivery {
	reached, msgs := g.net.FloodFrom(ev.Origin)
	g.msgs += msgs
	var out []Delivery
	ids := make([]string, 0, len(g.subs))
	for id := range g.subs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sub := g.subs[id]
		if sub.Collection == ev.Collection && reached[sub.Server] {
			out = append(out, Delivery{SubID: sub.ID, EventID: ev.ID})
		}
	}
	return out
}

// Messages implements Router.
func (g *GSFlood) Messages() int { return g.msgs }

// ---------------------------------------------------------------------------
// ProfileFlood: profiles replicated to every reachable server over GS links
// (Rudbes/JEDI style). Cancellations that cannot reach a replica leave
// orphan profiles that keep generating notifications — the paper's
// "dangling profiles ... spurious notifications" (§2.2).

// ProfileFlood replicates profiles everywhere and filters at the publisher.
type ProfileFlood struct {
	net *Network
	// replicas: server -> subID -> Subscription copy.
	replicas map[string]map[string]Subscription
	// active tracks intent: subscriptions the user still wants.
	active map[string]bool
	msgs   int
}

// NewProfileFlood builds the profile-flooding baseline.
func NewProfileFlood(net *Network) *ProfileFlood {
	return &ProfileFlood{
		net:      net,
		replicas: make(map[string]map[string]Subscription),
		active:   make(map[string]bool),
	}
}

var _ Router = (*ProfileFlood)(nil)

// Name implements Router.
func (p *ProfileFlood) Name() string { return "profile-flood" }

// Subscribe floods the profile to every server reachable from its home.
func (p *ProfileFlood) Subscribe(sub Subscription) {
	p.active[sub.ID] = true
	reached, msgs := p.net.FloodFrom(sub.Server)
	p.msgs += msgs
	for server := range reached {
		if p.replicas[server] == nil {
			p.replicas[server] = make(map[string]Subscription)
		}
		p.replicas[server][sub.ID] = sub
	}
}

// Unsubscribe floods the cancellation; replicas on currently unreachable
// servers survive as orphans.
func (p *ProfileFlood) Unsubscribe(subID string) {
	if !p.active[subID] {
		return
	}
	delete(p.active, subID)
	// Cancellation starts from the subscriber's home server.
	var home string
	for server, subs := range p.replicas {
		if s, ok := subs[subID]; ok && s.Server == server {
			home = server
			break
		}
	}
	if home == "" {
		// Home replica gone (e.g. server down); cancel wherever reachable
		// from any replica holder — in practice nothing happens, the
		// classic orphan case.
		return
	}
	reached, msgs := p.net.FloodFrom(home)
	p.msgs += msgs
	for server := range reached {
		if subs := p.replicas[server]; subs != nil {
			delete(subs, subID)
		}
	}
}

// Publish filters at the publishing server against its replica table and
// routes notifications back to subscriber homes over GS paths. Orphan
// replicas of cancelled subscriptions still fire: false positives.
func (p *ProfileFlood) Publish(ev Event) []Delivery {
	local := p.replicas[ev.Origin]
	ids := make([]string, 0, len(local))
	for id := range local {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Delivery
	for _, id := range ids {
		sub := local[id]
		if sub.Collection != ev.Collection {
			continue
		}
		// Route the notification home.
		if sub.Server == ev.Origin {
			out = append(out, Delivery{SubID: id, EventID: ev.ID})
			continue
		}
		if hops := p.net.PathLen(ev.Origin, sub.Server); hops >= 0 {
			p.msgs += hops
			out = append(out, Delivery{SubID: id, EventID: ev.ID})
		}
	}
	return out
}

// Messages implements Router.
func (p *ProfileFlood) Messages() int { return p.msgs }

// ---------------------------------------------------------------------------
// Rendezvous: Scribe/Hermes-style rendezvous nodes — subscriptions and
// events meet at hash(collection). Node or path failures produce both false
// negatives and stale state (§2.2: "a rendezvous node may become a
// bottleneck ... node or link failures may lead to erroneous system
// behaviour").

// Rendezvous routes subscriptions and events through per-collection
// rendezvous servers.
type Rendezvous struct {
	net *Network
	// tables: rendezvous server -> collection -> subID -> Subscription.
	tables map[string]map[string]map[string]Subscription
	msgs   int
}

// NewRendezvous builds the rendezvous baseline.
func NewRendezvous(net *Network) *Rendezvous {
	return &Rendezvous{net: net, tables: make(map[string]map[string]map[string]Subscription)}
}

var _ Router = (*Rendezvous)(nil)

// Name implements Router.
func (r *Rendezvous) Name() string { return "rendezvous" }

// rvNode deterministically assigns a collection's rendezvous server.
func (r *Rendezvous) rvNode(collection string) string {
	servers := r.net.Servers()
	if len(servers) == 0 {
		return ""
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(collection))
	return servers[int(h.Sum32())%len(servers)]
}

// reachable approximates overlay routability: both endpoints must be up and
// (if GS links exist at all) connected over the GS graph, else a direct
// overlay hop is assumed for servers with no GS links at all. Rendezvous
// systems assume a routable overlay; fragmentation breaks it.
func (r *Rendezvous) reachable(from, to string) bool {
	if !r.net.Up(from) || !r.net.Up(to) {
		return false
	}
	if from == to {
		return true
	}
	return r.net.PathLen(from, to) >= 0
}

// Subscribe routes the subscription to the collection's rendezvous node;
// unreachable rendezvous = lost subscription.
func (r *Rendezvous) Subscribe(sub Subscription) {
	rv := r.rvNode(sub.Collection)
	if rv == "" || !r.reachable(sub.Server, rv) {
		return // subscription never arrives
	}
	r.msgs++
	if r.tables[rv] == nil {
		r.tables[rv] = make(map[string]map[string]Subscription)
	}
	if r.tables[rv][sub.Collection] == nil {
		r.tables[rv][sub.Collection] = make(map[string]Subscription)
	}
	r.tables[rv][sub.Collection][sub.ID] = sub
}

// Unsubscribe routes the cancel to the rendezvous node; unreachable
// rendezvous = dangling subscription (false positives later).
func (r *Rendezvous) Unsubscribe(subID string) {
	for rv, colls := range r.tables {
		for coll, subs := range colls {
			sub, ok := subs[subID]
			if !ok {
				continue
			}
			if !r.reachable(sub.Server, rv) {
				return // cancel lost: dangling subscription remains
			}
			r.msgs++
			delete(r.tables[rv][coll], subID)
			return
		}
	}
}

// Publish routes the event to the rendezvous node, which notifies each
// subscriber home it can reach.
func (r *Rendezvous) Publish(ev Event) []Delivery {
	rv := r.rvNode(ev.Collection)
	if rv == "" || !r.reachable(ev.Origin, rv) {
		return nil // event cannot reach its rendezvous: total false negative
	}
	r.msgs++
	subs := r.tables[rv][ev.Collection]
	ids := make([]string, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Delivery
	for _, id := range ids {
		sub := subs[id]
		if !r.reachable(rv, sub.Server) {
			continue
		}
		r.msgs++
		out = append(out, Delivery{SubID: id, EventID: ev.ID})
	}
	return out
}

// Messages implements Router.
func (r *Rendezvous) Messages() int { return r.msgs }
