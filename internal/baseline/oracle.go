package baseline

import "sort"

// Oracle tracks user intent (subscribe/unsubscribe) with global knowledge
// and computes, per event, exactly who should be notified: every active
// subscription on the event's collection whose home server is alive. The
// comparison experiment scores each router's deliveries against it.
type Oracle struct {
	net    *Network
	active map[string]Subscription
}

// NewOracle builds an oracle over net.
func NewOracle(net *Network) *Oracle {
	return &Oracle{net: net, active: make(map[string]Subscription)}
}

// Subscribe records intent.
func (o *Oracle) Subscribe(sub Subscription) { o.active[sub.ID] = sub }

// Unsubscribe records intent; the user no longer wants notifications, no
// matter what the network does.
func (o *Oracle) Unsubscribe(subID string) { delete(o.active, subID) }

// Expected returns the subscription IDs that must be notified for ev,
// sorted. Subscribers whose home server is down cannot receive anything and
// are excluded (no system could deliver to them).
func (o *Oracle) Expected(ev Event) []string {
	var out []string
	for id, sub := range o.active {
		if sub.Collection == ev.Collection && o.net.Up(sub.Server) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Score compares a router's deliveries for one event against the oracle.
type Score struct {
	Expected       int
	Delivered      int
	FalseNegatives int // expected but not delivered
	FalsePositives int // delivered but not expected (or duplicated)
}

// ScoreEvent computes the score for one event's deliveries.
func (o *Oracle) ScoreEvent(ev Event, deliveries []Delivery) Score {
	expected := o.Expected(ev)
	expectedSet := make(map[string]bool, len(expected))
	for _, id := range expected {
		expectedSet[id] = true
	}
	seen := make(map[string]bool, len(deliveries))
	sc := Score{Expected: len(expected), Delivered: len(deliveries)}
	for _, d := range deliveries {
		if d.EventID != ev.ID {
			sc.FalsePositives++
			continue
		}
		if seen[d.SubID] {
			sc.FalsePositives++ // duplicate notification
			continue
		}
		seen[d.SubID] = true
		if !expectedSet[d.SubID] {
			sc.FalsePositives++
		}
	}
	for _, id := range expected {
		if !seen[id] {
			sc.FalseNegatives++
		}
	}
	return sc
}

// Add accumulates another score.
func (s *Score) Add(other Score) {
	s.Expected += other.Expected
	s.Delivered += other.Delivered
	s.FalseNegatives += other.FalseNegatives
	s.FalsePositives += other.FalsePositives
}

// FNRate is the false-negative fraction of expected notifications.
func (s Score) FNRate() float64 {
	if s.Expected == 0 {
		return 0
	}
	return float64(s.FalseNegatives) / float64(s.Expected)
}

// FPRate is the false-positive fraction of delivered notifications.
func (s Score) FPRate() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Delivered)
}
