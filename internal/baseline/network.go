// Package baseline implements the distributed routing strategies the paper's
// related-work section (§2) argues against, plus the paper's hybrid design,
// all over one abstract network model, so experiment E3 can compare their
// correctness (false positives/negatives) and message cost on the same
// fragmented, dynamic topologies.
//
// The model deliberately simplifies profiles to "interest in one qualified
// collection" — the dimension that matters for routing correctness; content
// filtering fidelity is measured separately (E4) on the full engines.
package baseline

import (
	"fmt"
	"sort"
)

// Network is the abstract topology: Greenstone servers joined by
// sub-collection reference links (the GS network), plus a GDS tree as the
// auxiliary maintenance network. Links and servers can fail dynamically.
type Network struct {
	servers map[string]bool
	// adj is the undirected GS-link adjacency.
	adj map[string]map[string]bool
	// down marks crashed/disconnected servers.
	down map[string]bool
	// cut marks severed GS links.
	cut map[[2]string]bool
	// gdsDown marks servers whose GDS connectivity is severed (a server
	// with no route to its directory node). The paper's design assumption
	// is that the auxiliary network is more stable than GS links; the
	// experiment can still break it.
	gdsDown map[string]bool
	// gdsNodes is the size of the directory tree, for message accounting.
	gdsNodes int
}

// NewNetwork builds a network over the given servers with a GDS tree of
// gdsNodes directory nodes.
func NewNetwork(servers []string, gdsNodes int) *Network {
	n := &Network{
		servers:  make(map[string]bool, len(servers)),
		adj:      make(map[string]map[string]bool),
		down:     make(map[string]bool),
		cut:      make(map[[2]string]bool),
		gdsDown:  make(map[string]bool),
		gdsNodes: maxInt(gdsNodes, 1),
	}
	for _, s := range servers {
		n.servers[s] = true
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// AddLink joins two servers with a GS link (a sub-collection reference).
func (n *Network) AddLink(a, b string) {
	if a == b || !n.servers[a] || !n.servers[b] {
		return
	}
	if n.adj[a] == nil {
		n.adj[a] = make(map[string]bool)
	}
	if n.adj[b] == nil {
		n.adj[b] = make(map[string]bool)
	}
	n.adj[a][b] = true
	n.adj[b][a] = true
}

// CutLink severs a GS link.
func (n *Network) CutLink(a, b string) { n.cut[linkKey(a, b)] = true }

// HealLink restores a GS link.
func (n *Network) HealLink(a, b string) { delete(n.cut, linkKey(a, b)) }

// SetDown marks a server crashed (both networks unreachable).
func (n *Network) SetDown(s string, down bool) {
	if down {
		n.down[s] = true
	} else {
		delete(n.down, s)
	}
}

// SetGDSDown severs only a server's directory connectivity.
func (n *Network) SetGDSDown(s string, down bool) {
	if down {
		n.gdsDown[s] = true
	} else {
		delete(n.gdsDown, s)
	}
}

// Servers lists server names, sorted.
func (n *Network) Servers() []string {
	out := make([]string, 0, len(n.servers))
	for s := range n.servers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Up reports whether a server is alive.
func (n *Network) Up(s string) bool { return n.servers[s] && !n.down[s] }

// GDSReachable reports whether a server can currently use the directory.
func (n *Network) GDSReachable(s string) bool { return n.Up(s) && !n.gdsDown[s] }

// LinkUp reports whether the GS link a<->b is usable right now.
func (n *Network) LinkUp(a, b string) bool {
	return n.Up(a) && n.Up(b) && n.adj[a][b] && !n.cut[linkKey(a, b)]
}

// Neighbors lists the currently usable GS neighbours of s, sorted.
func (n *Network) Neighbors(s string) []string {
	var out []string
	for peer := range n.adj[s] {
		if n.LinkUp(s, peer) {
			out = append(out, peer)
		}
	}
	sort.Strings(out)
	return out
}

// FloodFrom performs a BFS over usable GS links from origin, returning the
// set of reached servers (including origin) and the number of link
// crossings a flooding protocol would perform (each edge of the BFS
// frontier is crossed once per direction attempt; we count one message per
// discovered-or-duplicate delivery, the standard flooding cost).
func (n *Network) FloodFrom(origin string) (reached map[string]bool, messages int) {
	reached = make(map[string]bool)
	if !n.Up(origin) {
		return reached, 0
	}
	reached[origin] = true
	queue := []string{origin}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, peer := range n.Neighbors(cur) {
			messages++ // every neighbour gets a copy, duplicate or not
			if !reached[peer] {
				reached[peer] = true
				queue = append(queue, peer)
			}
		}
	}
	return reached, messages
}

// PathLen returns the BFS hop distance between two servers over usable GS
// links, or -1 when unreachable.
func (n *Network) PathLen(from, to string) int {
	if !n.Up(from) || !n.Up(to) {
		return -1
	}
	if from == to {
		return 0
	}
	dist := map[string]int{from: 0}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, peer := range n.Neighbors(cur) {
			if _, seen := dist[peer]; seen {
				continue
			}
			dist[peer] = dist[cur] + 1
			if peer == to {
				return dist[peer]
			}
			queue = append(queue, peer)
		}
	}
	return -1
}

// GDSBroadcastCost estimates the message count of one directory-tree flood:
// every tree edge is crossed once plus one delivery per reachable server.
func (n *Network) GDSBroadcastCost(reachedServers int) int {
	return (n.gdsNodes - 1) + reachedServers
}

// GDSReachableServers lists servers currently reachable through the
// directory network.
func (n *Network) GDSReachableServers() []string {
	var out []string
	for s := range n.servers {
		if n.GDSReachable(s) {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// String summarises the network.
func (n *Network) String() string {
	links := 0
	for _, peers := range n.adj {
		links += len(peers)
	}
	return fmt.Sprintf("network{servers: %d, gs-links: %d, gds-nodes: %d, cuts: %d, down: %d}",
		len(n.servers), links/2, n.gdsNodes, len(n.cut), len(n.down))
}
