package logging

import "sync/atomic"

// ringShards spreads each component's ring over independently advancing
// shards, mirroring trace.Collector: concurrent emitters (delivery shard
// workers, transport handlers) never contend on one counter. Power of two
// for cheap masking.
const ringShards = 8

// recordRing is a lock-free sharded drop-oldest ring of records. Writers
// pick a shard from the record's sequence number and swap the record into
// the shard's next slot; an overwritten slot reports a drop. snapshot
// walks the slots with atomic loads — a scrape or flight-recorder dump
// never blocks an emitter.
type recordRing struct {
	shards [ringShards]recordShard
	perCap int
}

type recordShard struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64
	// pad out the hot counter so neighbouring shards do not false-share.
	_ [48]byte
}

// init sizes the ring to hold about capacity records (rounded up to a
// multiple of the shard count).
func (r *recordRing) init(capacity int) {
	per := (capacity + ringShards - 1) / ringShards
	r.perCap = per
	for i := range r.shards {
		r.shards[i].slots = make([]atomic.Pointer[Record], per)
	}
}

// add stores one record, reporting whether an older record was displaced.
// The per-component sequence selects the shard, so one component's
// records spread evenly and a snapshot holds a contiguous recent window.
func (r *recordRing) add(rec *Record) (displaced bool) {
	sh := &r.shards[rec.Seq&(ringShards-1)]
	idx := (sh.next.Add(1) - 1) % uint64(len(sh.slots))
	return sh.slots[idx].Swap(rec) != nil
}

// occupancy reports the number of records currently held.
func (r *recordRing) occupancy() int64 {
	var n int64
	for i := range r.shards {
		written := int64(r.shards[i].next.Load())
		if slots := int64(len(r.shards[i].slots)); written > slots {
			written = slots
		}
		n += written
	}
	return n
}

// capacity reports the ring's record capacity.
func (r *recordRing) capacity() int { return r.perCap * ringShards }

// snapshot copies out every retained record, in no particular order.
// Records are shared, not copied: callers must treat them as read-only.
func (r *recordRing) snapshot() []*Record {
	out := make([]*Record, 0, r.occupancy())
	for i := range r.shards {
		for j := range r.shards[i].slots {
			if rec := r.shards[i].slots[j].Load(); rec != nil {
				out = append(out, rec)
			}
		}
	}
	return out
}
