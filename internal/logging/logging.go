// Package logging is the zero-dependency structured logging subsystem of
// the alerting service — the third observability pillar next to the metric
// registry (internal/obs) and the span collector (internal/trace).
//
// Loggers are leveled and component-scoped: a subsystem holds one
// *Logger obtained from Recorder.For("delivery") (or the package-level
// For over the process default) and emits key/value records that carry
// the active trace.Context's trace ID when one is in scope, so a log
// line, a histogram exemplar and a span tree all pivot on the same ID.
//
// Every record at or above the effective level is written into an
// always-on in-memory flight recorder: a lock-free sharded drop-oldest
// ring per component (mirroring trace.Collector's 8-shard design) that
// retains the last N records at one atomic swap per record — cheap
// enough to leave on in production even with all sinks off. Sinks
// (stderr, files) are optional and token-bucket rate limited per
// component, so a hot path can log errors during an incident without
// melting the process; suppressed sink writes still land in the ring.
//
// A nil *Logger (and a nil *Recorder) is valid and disabled: every
// method no-ops behind one pointer check, so instrumentation sites call
// it unconditionally and an unwired subsystem pays almost nothing —
// TestLogDisabledOverhead pins the publish-path cost at <= 2%.
//
// FlightRecorder (flight.go) snapshots the rings — plus the current
// /stats payload and the IDs of retained traces — into a deterministic
// JSONL post-mortem bundle when the health plane turns critical, on
// demand via GET /debug/flightrecorder, or from `gs-client logs`. See
// docs/LOGGING.md.
package logging

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gsalert/gsalert/internal/trace"
)

// Level orders record severities. The zero value is LevelInfo so an
// unconfigured Recorder keeps info and above.
type Level int32

const (
	LevelInfo Level = iota
	LevelWarn
	LevelError
	// LevelDebug sorts below info: debug records are suppressed unless a
	// component (or the recorder) opts in.
	LevelDebug Level = -1
	// levelOff disables a component entirely (per-component override "off").
	levelOff Level = 100
)

// String names the level ("debug", "info", "warn", "error").
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case levelOff:
		return "off"
	default:
		return fmt.Sprintf("level-%d", int32(l))
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error", "off")
// to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return levelOff, nil
	default:
		return 0, fmt.Errorf("logging: unknown level %q (want debug, info, warn, error or off)", s)
	}
}

// Attr is one key/value attribute on a record. Values are strings, like
// trace.Attr: call sites format once, the ring stores no interfaces.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprint(v)} }

// Record is one structured log record as stored in the ring and rendered
// into flight-recorder bundles.
type Record struct {
	// Seq is the per-component sequence number (1-based, gap-free per
	// component); bundles sort on (component, seq) so dumps are stable.
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"ts_unix_nano"`
	Level        string `json:"level"`
	Component    string `json:"component"`
	Msg          string `json:"msg"`
	// TraceID correlates the record with a span tree in the trace
	// collector (empty when no sampled trace was in scope).
	TraceID string `json:"trace_id,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Config assembles a Recorder. The zero value is usable: info level,
// DefaultRingSize records per component, no sink.
type Config struct {
	// Level is the default minimum level kept (ring and sink).
	Level Level
	// ComponentLevels overrides the level per component name.
	ComponentLevels map[string]Level
	// RingSize is the per-component flight-recorder ring capacity
	// (rounded up to a multiple of the shard count). Default 256.
	RingSize int
	// Sink, when set, additionally receives one rendered line per record
	// (logfmt-shaped: ts, level, component, msg, trace_id, attrs). The
	// ring is written regardless.
	Sink io.Writer
	// RateLimit caps sink writes per component in records/second (token
	// bucket; the ring is exempt). 0 disables limiting. Suppressed
	// records are counted and still ring-retained.
	RateLimit float64
	// RateBurst is the bucket depth; default 2×RateLimit (min 1).
	RateBurst int
	// Clock overrides time.Now for deterministic simulations.
	Clock func() time.Time
}

// DefaultRingSize is the per-component ring capacity when Config.RingSize
// is zero: enough for the last few minutes of warn/error flow on a busy
// component without holding more than a few hundred KB across a process.
const DefaultRingSize = 256

// Recorder owns the per-component rings and the sink. One Recorder serves
// a whole process; components are created on first use and never removed.
type Recorder struct {
	cfg   Config
	clock func() time.Time

	mu    sync.RWMutex
	comps map[string]*component

	// sinkMu serialises sink writes (the rendered line must not interleave).
	sinkMu sync.Mutex

	emitted    atomic.Int64
	dropped    atomic.Int64
	suppressed atomic.Int64
}

// component is one scoped stream: its ring, level and rate limiter.
type component struct {
	name  string
	level atomic.Int32
	ring  recordRing
	seq   atomic.Uint64

	emitted    atomic.Int64
	dropped    atomic.Int64
	suppressed atomic.Int64

	// tok is the sink token bucket; only touched on the (already I/O
	// bound) sink path.
	tokMu     sync.Mutex
	tokens    float64
	tokenLast time.Time
}

// NewRecorder builds a recorder from cfg.
func NewRecorder(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.RateLimit > 0 && cfg.RateBurst <= 0 {
		cfg.RateBurst = int(2 * cfg.RateLimit)
		if cfg.RateBurst < 1 {
			cfg.RateBurst = 1
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Recorder{
		cfg:   cfg,
		clock: clock,
		comps: make(map[string]*component),
	}
}

// For returns the component-scoped logger, creating the component on
// first use. A nil recorder returns a nil (disabled) logger.
func (r *Recorder) For(name string) *Logger {
	if r == nil {
		return nil
	}
	return &Logger{r: r, c: r.component(name)}
}

func (r *Recorder) component(name string) *component {
	r.mu.RLock()
	c := r.comps[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.comps[name]; c != nil {
		return c
	}
	c = &component{name: name, tokens: float64(r.cfg.RateBurst), tokenLast: r.clock()}
	lvl := r.cfg.Level
	if o, ok := r.cfg.ComponentLevels[name]; ok {
		lvl = o
	}
	c.level.Store(int32(lvl))
	c.ring.init(r.cfg.RingSize)
	r.comps[name] = c
	return c
}

// SetLevel changes one component's effective level at runtime.
func (r *Recorder) SetLevel(component string, lvl Level) {
	if r == nil {
		return
	}
	r.component(component).level.Store(int32(lvl))
}

// Components returns the known component names, sorted.
func (r *Recorder) Components() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.comps))
	for name := range r.comps {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ComponentStats is one component's self-monitoring snapshot, surfaced as
// the gsalert_logging_* series by obs.RegisterLogging.
type ComponentStats struct {
	Component  string
	Emitted    int64
	Dropped    int64
	Suppressed int64
	Occupancy  int64
	Capacity   int
}

// Stats snapshots every component's counters, sorted by component name.
func (r *Recorder) Stats() []ComponentStats {
	if r == nil {
		return nil
	}
	names := r.Components()
	out := make([]ComponentStats, 0, len(names))
	r.mu.RLock()
	for _, name := range names {
		c := r.comps[name]
		out = append(out, ComponentStats{
			Component:  name,
			Emitted:    c.emitted.Load(),
			Dropped:    c.dropped.Load(),
			Suppressed: c.suppressed.Load(),
			Occupancy:  c.ring.occupancy(),
			Capacity:   c.ring.capacity(),
		})
	}
	r.mu.RUnlock()
	return out
}

// Emitted reports records accepted (ring-written) across all components.
func (r *Recorder) Emitted() int64 { return r.emitted.Load() }

// Dropped reports ring records overwritten before any snapshot saw them.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Suppressed reports sink writes withheld by the rate limiter.
func (r *Recorder) Suppressed() int64 { return r.suppressed.Load() }

// Snapshot copies out every retained record, sorted by (component, seq) —
// the deterministic order flight-recorder bundles are written in.
func (r *Recorder) Snapshot() []*Record {
	if r == nil {
		return nil
	}
	names := r.Components()
	var out []*Record
	r.mu.RLock()
	for _, name := range names {
		out = append(out, r.comps[name].ring.snapshot()...)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Logger is one component's logging handle. A nil *Logger is valid and
// disabled: every method returns after one pointer check, so call sites
// never branch.
type Logger struct {
	r *Recorder
	c *component
}

// Enabled reports whether records at lvl would be kept.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && int32(lvl) >= l.c.level.Load()
}

// Recorder returns the logger's owning recorder (nil for a nil logger),
// letting a subsystem handed one scoped logger derive siblings for the
// components it builds internally.
func (l *Logger) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.r
}

// Debug emits a debug record with no trace context.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, trace.Context{}, msg, attrs) }

// Info emits an info record with no trace context.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, trace.Context{}, msg, attrs) }

// Warn emits a warning record with no trace context.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, trace.Context{}, msg, attrs) }

// Error emits an error record with no trace context.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, trace.Context{}, msg, attrs) }

// DebugCtx, InfoCtx, WarnCtx and ErrorCtx stamp the record with ctx's
// trace ID when ctx is a valid (sampled or not) trace context, tying the
// log line to the span tree the trace collector assembles.
func (l *Logger) DebugCtx(ctx trace.Context, msg string, attrs ...Attr) {
	l.log(LevelDebug, ctx, msg, attrs)
}

// InfoCtx emits an info record correlated with ctx.
func (l *Logger) InfoCtx(ctx trace.Context, msg string, attrs ...Attr) {
	l.log(LevelInfo, ctx, msg, attrs)
}

// WarnCtx emits a warning record correlated with ctx.
func (l *Logger) WarnCtx(ctx trace.Context, msg string, attrs ...Attr) {
	l.log(LevelWarn, ctx, msg, attrs)
}

// ErrorCtx emits an error record correlated with ctx.
func (l *Logger) ErrorCtx(ctx trace.Context, msg string, attrs ...Attr) {
	l.log(LevelError, ctx, msg, attrs)
}

func (l *Logger) log(lvl Level, ctx trace.Context, msg string, attrs []Attr) {
	if l == nil || int32(lvl) < l.c.level.Load() {
		return
	}
	rec := &Record{
		Seq:          l.c.seq.Add(1),
		TimeUnixNano: l.r.clock().UnixNano(),
		Level:        lvl.String(),
		Component:    l.c.name,
		Msg:          msg,
		TraceID:      ctx.TraceID(),
		Attrs:        attrs,
	}
	if l.c.ring.add(rec) {
		l.c.dropped.Add(1)
		l.r.dropped.Add(1)
	}
	l.c.emitted.Add(1)
	l.r.emitted.Add(1)
	if l.r.cfg.Sink != nil {
		l.sink(rec)
	}
}

// sink rate-limits and writes one rendered line. Slow path by design.
func (l *Logger) sink(rec *Record) {
	if lim := l.r.cfg.RateLimit; lim > 0 {
		now := l.r.clock()
		l.c.tokMu.Lock()
		l.c.tokens += now.Sub(l.c.tokenLast).Seconds() * lim
		l.c.tokenLast = now
		if max := float64(l.r.cfg.RateBurst); l.c.tokens > max {
			l.c.tokens = max
		}
		ok := l.c.tokens >= 1
		if ok {
			l.c.tokens--
		}
		l.c.tokMu.Unlock()
		if !ok {
			l.c.suppressed.Add(1)
			l.r.suppressed.Add(1)
			return
		}
	}
	l.r.sinkMu.Lock()
	_, _ = io.WriteString(l.r.cfg.Sink, renderLine(rec))
	l.r.sinkMu.Unlock()
}

// renderLine formats one record as a logfmt-shaped line.
func renderLine(rec *Record) string {
	t := time.Unix(0, rec.TimeUnixNano).UTC().Format(time.RFC3339Nano)
	s := fmt.Sprintf("ts=%s level=%s component=%s msg=%q", t, rec.Level, rec.Component, rec.Msg)
	if rec.TraceID != "" {
		s += " trace_id=" + rec.TraceID
	}
	for _, a := range rec.Attrs {
		s += fmt.Sprintf(" %s=%q", a.Key, a.Value)
	}
	return s + "\n"
}

// ---------------------------------------------------------------------------
// Process default

var defaultRecorder atomic.Pointer[Recorder]

// SetDefault installs the process-wide recorder the package-level For
// resolves against. Binaries call it once at startup.
func SetDefault(r *Recorder) { defaultRecorder.Store(r) }

// Default returns the process-wide recorder (nil until SetDefault).
func Default() *Recorder { return defaultRecorder.Load() }

// For returns a component logger over the process default recorder — a
// nil, disabled logger until SetDefault has run, so libraries may call it
// at init without ordering constraints.
func For(component string) *Logger { return Default().For(component) }
