package logging

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/trace"
)

// fixedClock steps a deterministic clock by 1ms per call.
func fixedClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestLevels(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
	}{
		{"debug", LevelDebug}, {"info", LevelInfo}, {"", LevelInfo},
		{"warn", LevelWarn}, {"warning", LevelWarn}, {"error", LevelError}, {"off", levelOff},
	} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	if LevelDebug >= LevelInfo || LevelInfo >= LevelWarn || LevelWarn >= LevelError {
		t.Error("level ordering broken")
	}
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v → %q → %v, %v", l, l.String(), back, err)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	r := NewRecorder(Config{Level: LevelWarn, ComponentLevels: map[string]Level{"chatty": LevelDebug}})
	lg := r.For("core")
	lg.Debug("nope")
	lg.Info("nope")
	lg.Warn("kept")
	lg.Error("kept")
	if got := r.Emitted(); got != 2 {
		t.Fatalf("emitted %d records at warn level, want 2", got)
	}
	chatty := r.For("chatty")
	if !chatty.Enabled(LevelDebug) {
		t.Fatal("per-component override did not lower the level")
	}
	chatty.Debug("kept")
	if got := r.Emitted(); got != 3 {
		t.Fatalf("emitted %d, want 3 after component-level debug", got)
	}
	r.SetLevel("chatty", LevelError)
	chatty.Info("nope")
	if got := r.Emitted(); got != 3 {
		t.Fatalf("SetLevel did not raise the bar: emitted %d", got)
	}
}

func TestNilLoggerAndRecorder(t *testing.T) {
	var lg *Logger
	lg.Info("ignored")
	lg.ErrorCtx(trace.Context{}, "ignored")
	if lg.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
	var r *Recorder
	if r.For("x") != nil {
		t.Error("nil recorder returned a live logger")
	}
	if r.Snapshot() != nil || r.Stats() != nil || r.Components() != nil {
		t.Error("nil recorder snapshot not empty")
	}
}

func TestRingDropOldest(t *testing.T) {
	r := NewRecorder(Config{RingSize: 16, Clock: fixedClock()})
	lg := r.For("core")
	for i := 0; i < 100; i++ {
		lg.Info(fmt.Sprintf("m%d", i))
	}
	recs := r.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("ring retained %d records, want 16", len(recs))
	}
	// Drop-oldest: the retained window is the most recent records.
	for _, rec := range recs {
		if rec.Seq <= 100-16 {
			t.Errorf("retained seq %d predates the drop-oldest window", rec.Seq)
		}
	}
	if got := r.Dropped(); got != 100-16 {
		t.Errorf("dropped %d, want %d", got, 100-16)
	}
	st := r.Stats()
	if len(st) != 1 || st[0].Occupancy != 16 || st[0].Capacity != 16 || st[0].Emitted != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSnapshotOrderAndTraceID(t *testing.T) {
	r := NewRecorder(Config{Clock: fixedClock()})
	ctx := trace.MustParse("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	r.For("b").Info("b1")
	r.For("a").InfoCtx(ctx, "a1")
	r.For("b").Warn("b2")
	r.For("a").Info("a2")
	recs := r.Snapshot()
	var got []string
	for _, rec := range recs {
		got = append(got, rec.Component+"/"+rec.Msg)
	}
	want := "a/a1 a/a2 b/b1 b/b2"
	if strings.Join(got, " ") != want {
		t.Fatalf("snapshot order %q, want %q", strings.Join(got, " "), want)
	}
	if recs[0].TraceID != ctx.TraceID() {
		t.Errorf("trace ID %q not carried, want %q", recs[0].TraceID, ctx.TraceID())
	}
	if recs[1].TraceID != "" {
		t.Errorf("record without context carries trace ID %q", recs[1].TraceID)
	}
}

func TestSinkAndRateLimit(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(1_700_000_000, 0)
	r := NewRecorder(Config{
		Sink: &buf, RateLimit: 1, RateBurst: 2,
		Clock: func() time.Time { return clock },
	})
	lg := r.For("core")
	for i := 0; i < 5; i++ {
		lg.Info("burst")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("sink got %d lines within one instant, want burst of 2", lines)
	}
	if got := r.Suppressed(); got != 3 {
		t.Fatalf("suppressed %d, want 3", got)
	}
	// All five still landed in the ring: the limiter only guards the sink.
	if got := len(r.Snapshot()); got != 5 {
		t.Fatalf("ring holds %d, want 5", got)
	}
	// A second elapses: one token refills.
	clock = clock.Add(time.Second)
	lg.Warn("later")
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("sink got %d lines after refill, want 3", got)
	}
	line := strings.Split(buf.String(), "\n")[0]
	for _, want := range []string{"level=info", "component=core", `msg="burst"`} {
		if !strings.Contains(line, want) {
			t.Errorf("sink line %q missing %s", line, want)
		}
	}
}

func TestFlightDumpRoundTripAndDeterminism(t *testing.T) {
	build := func() *FlightRecorder {
		r := NewRecorder(Config{Clock: fixedClock()})
		ctx := trace.MustParse("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
		r.For("core").InfoCtx(ctx, "admitted", String("client", "rt"), Int("events", 3))
		r.For("delivery").Warn("deferred", String("client", "nm"))
		r.For("replica").Info("promoted")
		clk := time.Unix(1_700_000_100, 0)
		return NewFlightRecorder(FlightConfig{
			Recorder: r,
			Stats:    func() any { return map[string]int{"events": 3} },
			TraceIDs: func() []string { return []string{"beef", "abad"} },
			Clock:    func() time.Time { return clk },
		})
	}
	a, err := build().DumpJSONL("critical:replica")
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().DumpJSONL("critical:replica")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical state produced differing bundles:\n%s\nvs\n%s", a, b)
	}
	d, err := ParseJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "critical:replica" || len(d.Records) != 3 {
		t.Fatalf("parsed dump %+v", d)
	}
	if got := d.Components(); strings.Join(got, ",") != "core,delivery,replica" {
		t.Fatalf("components %v", got)
	}
	if strings.Join(d.TraceIDs, ",") != "abad,beef" {
		t.Fatalf("trace IDs not sorted: %v", d.TraceIDs)
	}
	if !bytes.Contains(d.Stats, []byte(`"events":3`)) {
		t.Fatalf("stats payload lost: %s", d.Stats)
	}
	if _, err := ParseJSONL(nil); err == nil {
		t.Error("ParseJSONL accepted an empty bundle")
	}
}

func TestDumpToDir(t *testing.T) {
	r := NewRecorder(Config{Clock: fixedClock()})
	r.For("core").Error("boom")
	fr := NewFlightRecorder(FlightConfig{Recorder: r, Dir: t.TempDir(), Clock: fixedClock()})
	path, err := fr.DumpToDir("manual")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, ".jsonl") || fr.Dumps() != 1 {
		t.Fatalf("path %q dumps %d", path, fr.Dumps())
	}
	noDir := NewFlightRecorder(FlightConfig{Recorder: r})
	if _, err := noDir.DumpToDir("manual"); err == nil {
		t.Error("DumpToDir without a directory succeeded")
	}
}

// TestConcurrentWritesDuringDump hammers the rings from many goroutines
// while dumps snapshot them — the health-triggered capture path. Run
// under -race this proves a capture never blocks or tears an emitter.
func TestConcurrentWritesDuringDump(t *testing.T) {
	r := NewRecorder(Config{RingSize: 64})
	fr := NewFlightRecorder(FlightConfig{Recorder: r})
	stop := make(chan struct{})
	var wg, started sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		started.Add(1)
		go func(g int) {
			defer wg.Done()
			lg := r.For(fmt.Sprintf("comp%d", g%2))
			lg.Info("start")
			started.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lg.Info("spin", Int("i", int64(i)))
			}
		}(g)
	}
	started.Wait()
	for i := 0; i < 50; i++ {
		raw, err := fr.DumpJSONL("manual")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseJSONL(raw); err != nil {
			t.Fatalf("dump %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if r.Emitted() == 0 {
		t.Fatal("no records emitted under concurrency")
	}
}
