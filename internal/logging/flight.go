package logging

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// FlightConfig assembles a FlightRecorder around a Recorder.
type FlightConfig struct {
	// Recorder is the ring owner whose records bundles snapshot. Required.
	Recorder *Recorder
	// Stats, when set, returns the current operational snapshot (the
	// /stats payload) to embed in each bundle. It must be JSON-marshalable.
	Stats func() any
	// TraceIDs, when set, returns the IDs of the traces currently retained
	// in the span collector; the bundle records them (sorted) so every
	// log record's trace_id can be resolved against the span trees that
	// were live at capture time.
	TraceIDs func() []string
	// Dir, when set, is where DumpToDir writes timestamped bundles.
	Dir string
	// Clock overrides time.Now for the capture timestamp (deterministic
	// simulations pass the virtual clock here and on the Recorder).
	Clock func() time.Time
}

// FlightRecorder captures post-mortem bundles: the black-box JSONL
// snapshot taken when the health plane turns a component critical,
// served on demand from GET /debug/flightrecorder, and written to disk
// by the server binaries. It is safe for concurrent use; emitters are
// never blocked by a capture (the rings are lock-free).
type FlightRecorder struct {
	cfg   FlightConfig
	clock func() time.Time
	dumps atomic.Int64
}

// NewFlightRecorder builds a flight recorder; it panics on a nil
// Recorder (a wiring error, like duplicate metric registration).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Recorder == nil {
		panic("logging: FlightConfig.Recorder is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &FlightRecorder{cfg: cfg, clock: clock}
}

// Recorder returns the underlying ring owner.
func (f *FlightRecorder) Recorder() *Recorder { return f.cfg.Recorder }

// Dumps reports bundles captured since construction (the
// gsalert_logging_dumps_total series).
func (f *FlightRecorder) Dumps() int64 { return f.dumps.Load() }

// Dump is one captured bundle.
type Dump struct {
	// Seq numbers captures within this process (1-based).
	Seq int64
	// TakenUnixNano is the capture time on the flight recorder's clock.
	TakenUnixNano int64
	// Reason names the trigger: "critical:<component>" for automatic
	// health captures, "manual" for /debug/flightrecorder and CLI pulls.
	Reason string
	// Records is every retained ring record, sorted by (component, seq).
	Records []*Record
	// Stats is the marshalled /stats payload (nil when unconfigured).
	Stats json.RawMessage
	// TraceIDs are the retained trace IDs, sorted (nil when unconfigured).
	TraceIDs []string
}

// Components returns the distinct component names present in the dump's
// records, sorted.
func (d *Dump) Components() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range d.Records {
		if !seen[r.Component] {
			seen[r.Component] = true
			out = append(out, r.Component)
		}
	}
	sort.Strings(out)
	return out
}

// Dump captures one bundle.
func (f *FlightRecorder) Dump(reason string) (*Dump, error) {
	d := &Dump{
		Seq:           f.dumps.Add(1),
		TakenUnixNano: f.clock().UnixNano(),
		Reason:        reason,
		Records:       f.cfg.Recorder.Snapshot(),
	}
	if f.cfg.Stats != nil {
		raw, err := json.Marshal(f.cfg.Stats())
		if err != nil {
			return nil, fmt.Errorf("logging: flight stats: %w", err)
		}
		d.Stats = raw
	}
	if f.cfg.TraceIDs != nil {
		ids := append([]string(nil), f.cfg.TraceIDs()...)
		sort.Strings(ids)
		d.TraceIDs = ids
	}
	return d, nil
}

// jsonlHeader is the bundle's first line.
type jsonlHeader struct {
	Kind          string   `json:"kind"` // "header"
	Seq           int64    `json:"seq"`
	TakenUnixNano int64    `json:"taken_unix_nano"`
	Reason        string   `json:"reason"`
	Records       int      `json:"records"`
	Components    []string `json:"components"`
}

// jsonlRecord wraps one ring record line.
type jsonlRecord struct {
	Kind string `json:"kind"` // "record"
	*Record
}

// jsonlStats carries the /stats payload line.
type jsonlStats struct {
	Kind  string          `json:"kind"` // "stats"
	Stats json.RawMessage `json:"stats"`
}

// jsonlTraces carries the retained-trace index line.
type jsonlTraces struct {
	Kind     string   `json:"kind"` // "traces"
	Count    int      `json:"count"`
	TraceIDs []string `json:"trace_ids"`
}

// MarshalJSONL renders the bundle: one header line, one line per record
// in (component, seq) order, then the stats and trace-index lines when
// present. The rendering is deterministic — identical state produces
// byte-identical bundles, which E19 asserts across replayed soaks.
func (d *Dump) MarshalJSONL() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(jsonlHeader{
		Kind: "header", Seq: d.Seq, TakenUnixNano: d.TakenUnixNano,
		Reason: d.Reason, Records: len(d.Records), Components: d.Components(),
	}); err != nil {
		return nil, err
	}
	for _, r := range d.Records {
		if err := enc.Encode(jsonlRecord{Kind: "record", Record: r}); err != nil {
			return nil, err
		}
	}
	if d.Stats != nil {
		if err := enc.Encode(jsonlStats{Kind: "stats", Stats: d.Stats}); err != nil {
			return nil, err
		}
	}
	if d.TraceIDs != nil {
		if err := enc.Encode(jsonlTraces{Kind: "traces", Count: len(d.TraceIDs), TraceIDs: d.TraceIDs}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DumpJSONL captures one bundle and renders it in one call — the
// /debug/flightrecorder response body.
func (f *FlightRecorder) DumpJSONL(reason string) ([]byte, error) {
	d, err := f.Dump(reason)
	if err != nil {
		return nil, err
	}
	return d.MarshalJSONL()
}

// DumpToDir captures one bundle and writes it under cfg.Dir as
// flight-<unix-nanos>-<seq>.jsonl, creating the directory on first use.
// Returns the written path.
func (f *FlightRecorder) DumpToDir(reason string) (string, error) {
	if f.cfg.Dir == "" {
		return "", fmt.Errorf("logging: flight recorder has no dump directory")
	}
	d, err := f.Dump(reason)
	if err != nil {
		return "", err
	}
	raw, err := d.MarshalJSONL()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(f.cfg.Dir, fmt.Sprintf("flight-%d-%d.jsonl", d.TakenUnixNano, d.Seq))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ParseJSONL inverts MarshalJSONL — `gs-client logs` uses it to render a
// pulled bundle, and tests round-trip dumps through it.
func ParseJSONL(raw []byte) (*Dump, error) {
	d := &Dump{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	first := true
	for dec.More() {
		var kind struct {
			Kind string `json:"kind"`
		}
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("logging: parse bundle: %w", err)
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("logging: parse bundle line: %w", err)
		}
		switch kind.Kind {
		case "header":
			var h jsonlHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, err
			}
			d.Seq, d.TakenUnixNano, d.Reason = h.Seq, h.TakenUnixNano, h.Reason
		case "record":
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				return nil, err
			}
			d.Records = append(d.Records, &r)
		case "stats":
			var s jsonlStats
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, err
			}
			d.Stats = s.Stats
		case "traces":
			var t jsonlTraces
			if err := json.Unmarshal(line, &t); err != nil {
				return nil, err
			}
			d.TraceIDs = t.TraceIDs
		default:
			return nil, fmt.Errorf("logging: bundle line %q: unknown kind", kind.Kind)
		}
		if first && kind.Kind != "header" {
			return nil, fmt.Errorf("logging: bundle must start with a header line, got %q", kind.Kind)
		}
		first = false
	}
	if first {
		return nil, fmt.Errorf("logging: empty bundle")
	}
	return d, nil
}
