package health

import (
	"sort"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/obs"
)

// Source is where the engine reads metrics — satisfied by *obs.Registry.
// The indirection keeps the engine testable against synthetic catalogs.
type Source interface {
	Gather() ([]obs.Sample, []obs.HistogramSample)
}

// Options tune an Engine.
type Options struct {
	// Clock supplies evaluation timestamps; nil uses time.Now. Sim
	// experiments inject a virtual clock for deterministic fire/clear.
	Clock func() time.Time
	// OnTransition, when set, is invoked (outside the engine lock, in tick
	// order) for every component state change — the dogfood hook that
	// publishes health-alert events into core.Service.
	OnTransition func(Transition)
	// MaxTransitions bounds the in-memory transition log (drop-oldest).
	// Zero means 256.
	MaxTransitions int
	// Log is the engine's component logger (docs/LOGGING.md): every state
	// transition is recorded at warn (degrading) or info (recovering), so a
	// flight-recorder bundle always carries the health timeline that led to
	// its capture. Nil disables logging.
	Log *logging.Logger
}

// ruleRun is the per-rule evaluation state machine.
type ruleRun struct {
	rule *Rule
	// name is the rendered selector or burn target, the history-ring key.
	state RuleStateName
	// condSince is when the condition started holding (pending clock).
	condSince time.Time
	// lastTrue is when the condition last held (clear clock).
	lastTrue time.Time
	// since is when the rule entered its current state.
	since time.Time
	// value is the last evaluated input (threshold LHS or short-window burn).
	value float64
	// histories hold (t, value) points per selector for rate/burn windows.
	histories map[string]*history
}

// history is a bounded ring of timestamped counter readings for one
// selector, used to compute increases over trailing windows.
type history struct {
	points []point
}

type point struct {
	t time.Time
	v float64
}

// add appends a reading and prunes points older than keep before t.
func (h *history) add(t time.Time, v float64, keep time.Duration) {
	h.points = append(h.points, point{t, v})
	cut := t.Add(-keep)
	i := 0
	for i < len(h.points)-1 && h.points[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		h.points = append(h.points[:0], h.points[i:]...)
	}
}

// increase reports the counter increase over the trailing window ending at
// now: current value minus the newest reading at or before now-window
// (falling back to the oldest retained reading while the ring is still
// filling). Counter resets clamp to 0 rather than reporting negative.
func (h *history) increase(now time.Time, window time.Duration) (float64, bool) {
	if len(h.points) < 2 {
		return 0, false
	}
	cut := now.Add(-window)
	base := h.points[0]
	for _, p := range h.points {
		if p.t.After(cut) {
			break
		}
		base = p
	}
	d := h.points[len(h.points)-1].v - base.v
	if d < 0 {
		d = 0
	}
	return d, true
}

// componentRun tracks one component's aggregate state.
type componentRun struct {
	state State
	since time.Time
}

// Engine evaluates a RuleSet against a Source on each Tick and maintains
// per-rule and per-component state. All methods are safe for concurrent
// use; Gather-side cost is identical to a scrape and nothing is touched on
// the instrumented hot paths.
type Engine struct {
	src   Source
	rules *RuleSet
	opts  Options

	mu              sync.Mutex
	runs            []*ruleRun
	components      map[string]*componentRun
	transitions     []Transition
	transitionCount map[string]uint64
	evals           uint64
	started         time.Time

	readyMu sync.Mutex
	ready   []readinessCheck

	closeOnce sync.Once
	closeCh   chan struct{}
	doneCh    chan struct{}
}

type readinessCheck struct {
	name  string
	check func() error
}

// NewEngine builds an engine over src with the given rules (nil rules
// means DefaultRules).
func NewEngine(src Source, rules *RuleSet, opts Options) *Engine {
	if rules == nil {
		rules = DefaultRules()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.MaxTransitions <= 0 {
		opts.MaxTransitions = 256
	}
	e := &Engine{
		src:     src,
		rules:   rules,
		opts:    opts,
		closeCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	now := opts.Clock()
	e.started = now
	e.components = map[string]*componentRun{}
	e.transitionCount = map[string]uint64{}
	for _, r := range rules.Rules {
		e.runs = append(e.runs, &ruleRun{
			rule:      r,
			state:     RuleInactive,
			since:     now,
			histories: map[string]*history{},
		})
		if _, ok := e.components[r.Component]; !ok {
			e.components[r.Component] = &componentRun{state: Healthy, since: now}
		}
	}
	return e
}

// Rules exposes the engine's rule set (for /healthz and rendering).
func (e *Engine) Rules() *RuleSet { return e.rules }

// Start launches the wall-clock evaluation loop at the given cadence.
func (e *Engine) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	go func() {
		defer close(e.doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.closeCh:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Close stops the Start loop, if one is running.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closeCh) })
	select {
	case <-e.doneCh:
	default:
		// Start was never called; doneCh never closes. Don't block.
	}
}

// Tick evaluates all rules once at the engine clock's current time.
func (e *Engine) Tick() { e.TickAt(e.opts.Clock()) }

// TickAt evaluates all rules once at the given instant — the deterministic
// entry point for sim experiments driving a virtual clock.
func (e *Engine) TickAt(now time.Time) {
	scalars, hists := e.src.Gather()

	e.mu.Lock()
	e.evals++
	var fired []Transition
	for _, run := range e.runs {
		cond, value := e.eval(run, scalars, hists, now)
		run.value = value
		e.step(run, cond, now)
	}
	// Re-aggregate components from rule states.
	for name, comp := range e.components {
		next := Healthy
		var topRule *ruleRun
		for _, run := range e.runs {
			if run.rule.Component != name || run.state != RuleFiring {
				continue
			}
			if s := run.rule.Severity.state(); s > next || topRule == nil {
				next = s
				topRule = run
			}
		}
		if next == comp.state {
			continue
		}
		tr := Transition{
			Component: name,
			From:      comp.state,
			To:        next,
			At:        now,
		}
		if topRule != nil {
			tr.Rule = topRule.rule.Name
			tr.Severity = topRule.rule.Severity.String()
			tr.Value = topRule.value
		} else {
			// Cleared: attribute to the most recently cleared rule.
			var last *ruleRun
			for _, run := range e.runs {
				if run.rule.Component != name {
					continue
				}
				if last == nil || run.since.After(last.since) {
					last = run
				}
			}
			if last != nil {
				tr.Rule = last.rule.Name
				tr.Severity = last.rule.Severity.String()
				tr.Value = last.value
			}
		}
		comp.state = next
		comp.since = now
		e.transitionCount[name]++
		e.transitions = append(e.transitions, tr)
		if over := len(e.transitions) - e.opts.MaxTransitions; over > 0 {
			e.transitions = append(e.transitions[:0], e.transitions[over:]...)
		}
		fired = append(fired, tr)
	}
	onTransition := e.opts.OnTransition
	e.mu.Unlock()

	if lg := e.opts.Log; lg != nil && len(fired) > 0 {
		sort.Slice(fired, func(i, j int) bool { return fired[i].Component < fired[j].Component })
		for _, tr := range fired {
			attrs := []logging.Attr{
				logging.String("component", tr.Component),
				logging.String("from", tr.From.String()), logging.String("to", tr.To.String()),
				logging.String("rule", tr.Rule),
			}
			if tr.To == Healthy {
				lg.Info("component recovered", attrs...)
			} else {
				lg.Warn("component degraded", attrs...)
			}
		}
	}

	if onTransition != nil {
		// Deterministic order for the dogfooded events: by component name.
		sort.Slice(fired, func(i, j int) bool { return fired[i].Component < fired[j].Component })
		for _, tr := range fired {
			onTransition(tr)
		}
	}
}

// step advances one rule's inactive/pending/firing machine given this
// tick's condition.
func (e *Engine) step(run *ruleRun, cond bool, now time.Time) {
	if cond {
		run.lastTrue = now
	}
	switch run.state {
	case RuleInactive:
		if cond {
			run.condSince = now
			if run.rule.For <= 0 {
				run.state = RuleFiring
			} else {
				run.state = RulePending
			}
			run.since = now
		}
	case RulePending:
		switch {
		case !cond:
			run.state = RuleInactive
			run.since = now
		case now.Sub(run.condSince) >= run.rule.For:
			run.state = RuleFiring
			run.since = now
		}
	case RuleFiring:
		if !cond && now.Sub(run.lastTrue) >= run.rule.Clear {
			run.state = RuleInactive
			run.since = now
		}
	}
}

// eval computes one rule's condition and representative value against the
// gathered samples.
func (e *Engine) eval(run *ruleRun, scalars []obs.Sample, hists []obs.HistogramSample, now time.Time) (bool, float64) {
	r := run.rule
	if r.Burn != nil {
		return e.evalBurn(run, r.Burn, scalars, now)
	}
	t := r.Expr
	var v float64
	switch {
	case t.Sel.Quantile > 0:
		v = maxQuantile(hists, t.Sel)
	case t.Sel.RateWindow > 0:
		sum, _ := sumScalar(scalars, t.Sel)
		h := run.hist(t.Sel.String())
		h.add(now, sum, t.Sel.RateWindow+t.Sel.RateWindow/2)
		inc, ok := h.increase(now, t.Sel.RateWindow)
		if !ok {
			return false, 0
		}
		v = inc / t.Sel.RateWindow.Seconds()
	default:
		v, _ = sumScalar(scalars, t.Sel)
	}
	return compare(v, t.Op, t.Value), v
}

// evalBurn computes the multi-window burn rate: increase(bad)/increase
// (total), each over the short and the long window, normalised by the SLO.
// The condition holds when BOTH windows exceed the factor.
func (e *Engine) evalBurn(run *ruleRun, b *BurnRate, scalars []obs.Sample, now time.Time) (bool, float64) {
	bad, _ := sumScalar(scalars, b.Bad)
	total, _ := sumScalar(scalars, b.Total)
	keep := b.Long + b.Long/2
	bh := run.hist("bad:" + b.Bad.String())
	th := run.hist("total:" + b.Total.String())
	bh.add(now, bad, keep)
	th.add(now, total, keep)

	burn := func(w time.Duration) (float64, bool) {
		db, ok1 := bh.increase(now, w)
		dt, ok2 := th.increase(now, w)
		if !ok1 || !ok2 || dt <= 0 {
			return 0, ok1 && ok2
		}
		return (db / dt) / b.SLO, true
	}
	short, okS := burn(b.Short)
	long, okL := burn(b.Long)
	return okS && okL && short > b.Factor && long > b.Factor, short
}

// hist returns (creating if needed) the named history ring.
func (run *ruleRun) hist(key string) *history {
	h := run.histories[key]
	if h == nil {
		h = &history{}
		run.histories[key] = h
	}
	return h
}

// sumScalar sums all scalar samples matching the selector.
func sumScalar(scalars []obs.Sample, sel Selector) (float64, bool) {
	var sum float64
	matched := false
	for i := range scalars {
		if scalars[i].Name != sel.Metric || !labelsMatch(scalars[i].Labels, sel.Labels) {
			continue
		}
		sum += scalars[i].Value
		matched = true
	}
	return sum, matched
}

// maxQuantile takes the selector's quantile over every matching histogram
// and returns the worst (max), in seconds.
func maxQuantile(hists []obs.HistogramSample, sel Selector) float64 {
	var worst float64
	for i := range hists {
		if hists[i].Name != sel.Metric || !labelsMatch(hists[i].Labels, sel.Labels) {
			continue
		}
		if hists[i].H.Count() == 0 {
			continue
		}
		if q := hists[i].H.Quantile(sel.Quantile).Seconds(); q > worst {
			worst = q
		}
	}
	return worst
}

// labelsMatch reports whether the sample labels carry every required
// equality (extra sample labels are allowed).
func labelsMatch(have, want []obs.Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.Name == w.Name && h.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// compare applies a threshold operator.
func compare(v float64, op Op, bound float64) bool {
	switch op {
	case OpGT:
		return v > bound
	case OpGE:
		return v >= bound
	case OpLT:
		return v < bound
	case OpLE:
		return v <= bound
	default:
		return false
	}
}

// RuleStatus is one rule's live state for /healthz.
type RuleStatus struct {
	Name      string        `json:"name"`
	Component string        `json:"component"`
	Severity  string        `json:"severity"`
	State     RuleStateName `json:"state"`
	Since     time.Time     `json:"since"`
	Value     float64       `json:"value"`
	Expr      string        `json:"expr"`
}

// ComponentStatus is one component's live state for /healthz.
type ComponentStatus struct {
	Name  string    `json:"name"`
	State State     `json:"state"`
	Since time.Time `json:"since"`
}

// Status is the full /healthz document.
type Status struct {
	// State is the worst component state.
	State       State             `json:"state"`
	Components  []ComponentStatus `json:"components"`
	Rules       []RuleStatus      `json:"rules"`
	Transitions []Transition      `json:"transitions"`
	Evals       uint64            `json:"evals"`
	Started     time.Time         `json:"started"`
}

// Snapshot captures the engine's state for /healthz and gs-client health.
func (e *Engine) Snapshot() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{Evals: e.evals, Started: e.started}
	for name, comp := range e.components {
		st.Components = append(st.Components, ComponentStatus{Name: name, State: comp.state, Since: comp.since})
		if comp.state > st.State {
			st.State = comp.state
		}
	}
	sort.Slice(st.Components, func(i, j int) bool { return st.Components[i].Name < st.Components[j].Name })
	for _, run := range e.runs {
		expr := ""
		if run.rule.Expr != nil {
			expr = run.rule.Expr.String()
		} else if b := run.rule.Burn; b != nil {
			expr = b.Bad.String() + " / " + b.Total.String()
		}
		st.Rules = append(st.Rules, RuleStatus{
			Name:      run.rule.Name,
			Component: run.rule.Component,
			Severity:  run.rule.Severity.String(),
			State:     run.state,
			Since:     run.since,
			Value:     run.value,
			Expr:      expr,
		})
	}
	st.Transitions = append(st.Transitions, e.transitions...)
	return st
}

// Transitions returns a copy of the in-memory transition log.
func (e *Engine) Transitions() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, len(e.transitions))
	copy(out, e.transitions)
	return out
}

// ComponentState reports one component's current state (Healthy for
// unknown components, matching the "no rule judges it" reading).
func (e *Engine) ComponentState(name string) State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.components[name]; ok {
		return c.state
	}
	return Healthy
}

// Register exposes the engine on a registry: the Prometheus-convention
// ALERTS{alertname,severity,component} series (value 1 per firing rule),
// per-component state gauges and the engine's own counters. Costs nothing
// until scraped; scrapes read under the engine lock.
func (e *Engine) Register(r *obs.Registry) {
	r.Collect(func(c *obs.Collector) {
		e.mu.Lock()
		defer e.mu.Unlock()
		firing := 0
		for _, run := range e.runs {
			if run.state != RuleFiring {
				continue
			}
			firing++
			c.Gauge("ALERTS", "Firing health rules (Prometheus alerting convention).", 1,
				obs.L("alertname", run.rule.Name),
				obs.L("severity", run.rule.Severity.String()),
				obs.L("component", run.rule.Component))
		}
		for name, comp := range e.components {
			c.Gauge("gsalert_health_component_state", "Component health (0 healthy, 1 degraded, 2 critical).",
				float64(comp.state), obs.L("component", name))
		}
		for name, n := range e.transitionCount {
			c.Counter("gsalert_health_transitions_total", "Component state transitions observed.",
				float64(n), obs.L("component", name))
		}
		c.Gauge("gsalert_health_rules_firing", "Health rules currently firing.", float64(firing))
		c.Counter("gsalert_health_evals_total", "Rule-set evaluation ticks.", float64(e.evals))
	})
}

// AddReadiness registers a named readiness check; /readyz reports 200 only
// when every check returns nil.
func (e *Engine) AddReadiness(name string, check func() error) {
	e.readyMu.Lock()
	defer e.readyMu.Unlock()
	e.ready = append(e.ready, readinessCheck{name, check})
}

// ReadinessResult is one check's outcome.
type ReadinessResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Err  string `json:"error,omitempty"`
}

// Readiness runs all checks and reports per-check outcomes plus the
// aggregate.
func (e *Engine) Readiness() (bool, []ReadinessResult) {
	e.readyMu.Lock()
	checks := make([]readinessCheck, len(e.ready))
	copy(checks, e.ready)
	e.readyMu.Unlock()
	ok := true
	results := make([]ReadinessResult, 0, len(checks))
	for _, c := range checks {
		r := ReadinessResult{Name: c.name, OK: true}
		if err := c.check(); err != nil {
			r.OK = false
			r.Err = err.Error()
			ok = false
		}
		results = append(results, r)
	}
	return ok, results
}

// Ready reports the aggregate readiness.
func (e *Engine) Ready() bool {
	ok, _ := e.Readiness()
	return ok
}
