package health

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeSource is a hand-set metric source for deterministic engine tests.
type fakeSource struct {
	mu      sync.Mutex
	scalars map[string]float64 // rendered selector -> value (single series per name here)
	hist    *metrics.LatencyHistogram
	histFor string
}

func newFakeSource() *fakeSource {
	return &fakeSource{scalars: map[string]float64{}}
}

func (f *fakeSource) set(name string, v float64) {
	f.mu.Lock()
	f.scalars[name] = v
	f.mu.Unlock()
}

func (f *fakeSource) add(name string, d float64) {
	f.mu.Lock()
	f.scalars[name] += d
	f.mu.Unlock()
}

func (f *fakeSource) Gather() ([]obs.Sample, []obs.HistogramSample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var s []obs.Sample
	for name, v := range f.scalars {
		s = append(s, obs.Sample{Name: name, Value: v})
	}
	var h []obs.HistogramSample
	if f.hist != nil {
		h = append(h, obs.HistogramSample{Name: f.histFor, Labels: []obs.Label{obs.L("class", "realtime")}, H: f.hist})
	}
	return s, h
}

// tickClock is a virtual clock advanced manually.
type tickClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTickClock() *tickClock { return &tickClock{now: time.Unix(1700000000, 0)} }

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

func mustRules(t *testing.T, src string) *RuleSet {
	t.Helper()
	rs, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestThresholdHysteresis drives a gauge rule through the full
// inactive -> pending -> firing -> (hold through blips) -> inactive cycle.
func TestThresholdHysteresis(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_queue_depth", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule depth {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 100
	for = 20s
	clear = 20s
}`)
	var transitions []Transition
	e := NewEngine(src, rs, Options{
		Clock:        clock.Now,
		OnTransition: func(tr Transition) { transitions = append(transitions, tr) },
	})

	tick := func() { e.TickAt(clock.Advance(10 * time.Second)) }

	tick() // below threshold
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("state = %s, want healthy", st)
	}

	src.set("gsalert_delivery_queue_depth", 500)
	tick() // condition true, pending (for=20s not yet held)
	if got := e.Snapshot().Rules[0].State; got != RulePending {
		t.Fatalf("rule state = %s, want pending", got)
	}
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("pending must not degrade the component, state = %s", st)
	}

	tick() // held 20s -> firing
	tick() // stays firing
	if st := e.ComponentState("delivery"); st != Degraded {
		t.Fatalf("state = %s, want degraded", st)
	}

	// A one-tick dip must NOT clear (clear=20s of continuous quiet).
	src.set("gsalert_delivery_queue_depth", 0)
	tick()
	src.set("gsalert_delivery_queue_depth", 500)
	tick()
	if st := e.ComponentState("delivery"); st != Degraded {
		t.Fatalf("blip cleared the rule early, state = %s", st)
	}

	// Sustained quiet clears.
	src.set("gsalert_delivery_queue_depth", 0)
	tick()
	tick()
	tick()
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("state = %s, want healthy after clear hold", st)
	}

	if len(transitions) != 2 {
		t.Fatalf("transitions = %d (%+v), want 2", len(transitions), transitions)
	}
	if transitions[0].From != Healthy || transitions[0].To != Degraded || transitions[0].Rule != "depth" {
		t.Fatalf("first transition wrong: %+v", transitions[0])
	}
	if transitions[1].From != Degraded || transitions[1].To != Healthy {
		t.Fatalf("second transition wrong: %+v", transitions[1])
	}
}

// TestQuantileRule drives a p99 rule from a live histogram.
func TestQuantileRule(t *testing.T) {
	src := newFakeSource()
	src.hist = &metrics.LatencyHistogram{}
	src.histFor = "gsalert_delivery_latency_seconds"
	clock := newTickClock()
	rs := mustRules(t, `
rule p99 {
	component = delivery
	severity = critical
	expr = p99(gsalert_delivery_latency_seconds{class="realtime"}) > 1s
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})

	for i := 0; i < 100; i++ {
		src.hist.Observe(10 * time.Millisecond)
	}
	e.TickAt(clock.Advance(time.Second))
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("fast p99 fired: %s", st)
	}

	for i := 0; i < 100; i++ {
		src.hist.Observe(5 * time.Second)
	}
	e.TickAt(clock.Advance(time.Second))
	if st := e.ComponentState("delivery"); st != Critical {
		t.Fatalf("slow p99 did not fire: %s", st)
	}
}

// TestRateRule checks the per-second-increase selector over its window.
func TestRateRule(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_qos_deferred_total", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule deferred {
	component = qos
	severity = warning
	expr = rate(gsalert_qos_deferred_total[1m]) > 10
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})

	// First tick has no history — never fires.
	e.TickAt(clock.Advance(15 * time.Second))
	if st := e.ComponentState("qos"); st != Healthy {
		t.Fatalf("rate fired with no history: %s", st)
	}
	// +30/15s = 2/s: under.
	src.add("gsalert_qos_deferred_total", 30)
	e.TickAt(clock.Advance(15 * time.Second))
	if st := e.ComponentState("qos"); st != Healthy {
		t.Fatalf("2/s fired against a 10/s bar: %s", st)
	}
	// +600/15s = 40/s over the window: fires.
	src.add("gsalert_qos_deferred_total", 600)
	e.TickAt(clock.Advance(15 * time.Second))
	if st := e.ComponentState("qos"); st != Degraded {
		t.Fatalf("40/s did not fire: %s", st)
	}
}

// TestBurnRateBothWindows checks the multi-window AND: a short spike fires
// only once the long window also burns, and recovery clears the short
// window first.
func TestBurnRateBothWindows(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_dropped_total", 0)
	src.set("gsalert_delivery_enqueued_total", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule loss {
	component = delivery
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 1m, 5m
	factor = 10
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})

	// Healthy traffic for 6 minutes fills both windows with ~zero burn.
	for i := 0; i < 12; i++ {
		src.add("gsalert_delivery_enqueued_total", 1000)
		e.TickAt(clock.Advance(30 * time.Second))
	}
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("zero-loss traffic fired: %s", st)
	}

	// Losses at 5% (50x the 0.1% budget) — the short window saturates fast;
	// the long window still averages over old clean traffic, so it takes
	// more ticks. Eventually both exceed 10x and the rule fires.
	fired := false
	for i := 0; i < 12; i++ {
		src.add("gsalert_delivery_enqueued_total", 1000)
		src.add("gsalert_delivery_dropped_total", 50)
		e.TickAt(clock.Advance(30 * time.Second))
		if e.ComponentState("delivery") == Critical {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("sustained 50x burn never fired")
	}

	// Recovery: clean traffic empties the short window quickly; the rule
	// clears even though the long window still remembers the burn.
	cleared := false
	for i := 0; i < 12; i++ {
		src.add("gsalert_delivery_enqueued_total", 1000)
		e.TickAt(clock.Advance(30 * time.Second))
		if e.ComponentState("delivery") == Healthy {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("clean traffic never cleared the burn alert")
	}
}

// TestComponentAggregation checks max-severity wins and per-rule clears
// step the component down.
func TestComponentAggregation(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_queue_depth", 0)
	src.set("gsalert_delivery_spill_depth", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule warn {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 10
}
rule crit {
	component = delivery
	severity = critical
	expr = gsalert_delivery_spill_depth > 10
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})
	tick := func() { e.TickAt(clock.Advance(10 * time.Second)) }

	src.set("gsalert_delivery_queue_depth", 50)
	tick()
	if st := e.ComponentState("delivery"); st != Degraded {
		t.Fatalf("state = %s, want degraded", st)
	}
	src.set("gsalert_delivery_spill_depth", 50)
	tick()
	if st := e.ComponentState("delivery"); st != Critical {
		t.Fatalf("state = %s, want critical (max severity wins)", st)
	}
	src.set("gsalert_delivery_spill_depth", 0)
	tick()
	if st := e.ComponentState("delivery"); st != Degraded {
		t.Fatalf("state = %s, want degraded after critical cleared", st)
	}
	src.set("gsalert_delivery_queue_depth", 0)
	tick()
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("state = %s, want healthy", st)
	}
}

// TestReadiness checks the check registry and aggregate.
func TestReadiness(t *testing.T) {
	e := NewEngine(newFakeSource(), DefaultRules(), Options{})
	if !e.Ready() {
		t.Fatal("no checks registered must read ready")
	}
	down := true
	e.AddReadiness("standby-caught-up", func() error {
		if down {
			return errors.New("standby lagging")
		}
		return nil
	})
	e.AddReadiness("always-ok", func() error { return nil })
	ok, results := e.Readiness()
	if ok || len(results) != 2 || results[0].OK || results[0].Err == "" || !results[1].OK {
		t.Fatalf("readiness = %v %+v", ok, results)
	}
	down = false
	if !e.Ready() {
		t.Fatal("all checks passing must read ready")
	}
}

// TestExpositionGolden pins the ALERTS and gsalert_health_* exposition
// while rules fire, against testdata/golden.prom. Regenerate with
// `go test ./internal/health -update`.
func TestExpositionGolden(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_queue_depth", 500)
	src.set("gsalert_delivery_spill_depth", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule depth {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 100
}
rule spill {
	component = delivery
	severity = critical
	expr = gsalert_delivery_spill_depth > 10
}
rule idle {
	component = qos
	severity = warning
	expr = gsalert_delivery_queue_depth < 0
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})
	e.TickAt(clock.Advance(10 * time.Second))

	reg := obs.NewRegistry()
	e.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("health exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestScrapeDuringTransitions scrapes the registry concurrently with
// engine ticks that flip rules — the -race bar for the collector path.
func TestScrapeDuringTransitions(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_queue_depth", 0)
	rs := mustRules(t, `
rule depth {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 100
}`)
	clock := newTickClock()
	var mu sync.Mutex // OnTransition appends race-free
	var seen []Transition
	e := NewEngine(src, rs, Options{Clock: clock.Now, OnTransition: func(tr Transition) {
		mu.Lock()
		seen = append(seen, tr)
		mu.Unlock()
	}})
	reg := obs.NewRegistry()
	e.Register(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			src.set("gsalert_delivery_queue_depth", 500)
		} else {
			src.set("gsalert_delivery_queue_depth", 0)
		}
		e.TickAt(clock.Advance(time.Second))
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no transitions observed")
	}
}

// TestEngineOverRealRegistry wires the engine against a real obs.Registry
// via Gather — the integration shape gs-server uses.
func TestEngineOverRealRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	var depth float64
	var mu sync.Mutex
	reg.Gauge("gsalert_delivery_queue_depth", "Queue depth.", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return depth
	})
	clock := newTickClock()
	rs := mustRules(t, `
rule depth {
	component = delivery
	severity = critical
	expr = gsalert_delivery_queue_depth > 100
}`)
	e := NewEngine(reg, rs, Options{Clock: clock.Now})
	e.TickAt(clock.Advance(time.Second))
	if st := e.ComponentState("delivery"); st != Healthy {
		t.Fatalf("state = %s, want healthy", st)
	}
	mu.Lock()
	depth = 500
	mu.Unlock()
	e.TickAt(clock.Advance(time.Second))
	if st := e.ComponentState("delivery"); st != Critical {
		t.Fatalf("state = %s, want critical", st)
	}
}

// TestSnapshotShape sanity-checks the /healthz document contents.
func TestSnapshotShape(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_queue_depth", 500)
	clock := newTickClock()
	rs := mustRules(t, `
rule depth {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 100
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})
	e.TickAt(clock.Advance(time.Second))
	st := e.Snapshot()
	if st.State != Degraded {
		t.Fatalf("overall = %s, want degraded", st.State)
	}
	if len(st.Components) != 1 || st.Components[0].Name != "delivery" {
		t.Fatalf("components = %+v", st.Components)
	}
	if len(st.Rules) != 1 || st.Rules[0].State != RuleFiring || st.Rules[0].Value != 500 {
		t.Fatalf("rules = %+v", st.Rules)
	}
	if len(st.Transitions) != 1 || st.Evals != 1 {
		t.Fatalf("transitions = %d evals = %d", len(st.Transitions), st.Evals)
	}
}

// BenchmarkHealthEval is referenced from the root bench suite's
// BENCH_results.json contract: rule-set evaluation at 10 and 100 rules
// over a catalog-sized sample set must stay cheap enough to run at scrape
// cadence.
func BenchmarkHealthEval(b *testing.B) {
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			src := newFakeSource()
			for name := range Catalog() {
				src.set(name, 1)
			}
			var sb strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&sb, `
rule r%d {
	component = c%d
	severity = warning
	expr = gsalert_delivery_queue_depth > %d
}`, i, i%4, i)
			}
			rs := mustRules2(b, sb.String())
			clock := newTickClock()
			e := NewEngine(src, rs, Options{Clock: clock.Now})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TickAt(clock.Advance(time.Second))
			}
		})
	}
}

func mustRules2(tb testing.TB, src string) *RuleSet {
	tb.Helper()
	rs, err := ParseRules(src)
	if err != nil {
		tb.Fatal(err)
	}
	return rs
}
