package health

// Catalog maps every metric name the obs catalog can register to its kind,
// so rule files are validated at parse time: a typo'd metric name or a
// quantile over a counter is an error, not a rule that silently never
// fires. The map is rebuilt per call — callers that validate many rule
// sets should hold one copy.
func Catalog() map[string]Kind {
	m := map[string]Kind{}
	for _, n := range catalogCounters {
		m[n] = KindCounter
	}
	for _, n := range catalogGauges {
		m[n] = KindGauge
	}
	for _, n := range catalogHistograms {
		m[n] = KindHistogram
	}
	return m
}

// The catalog name lists mirror the registrations in internal/obs
// (catalog.go, exporter.go) plus the health plane's own series; keep them
// in sync when adding metrics. TestCatalogCoversExposition pins the
// correspondence.
var catalogCounters = []string{
	"gsalert_core_events_published_total",
	"gsalert_core_events_received_total",
	"gsalert_core_duplicates_dropped_total",
	"gsalert_core_notifications_total",
	"gsalert_core_notify_failures_total",
	"gsalert_core_aux_forwards_total",
	"gsalert_core_transforms_total",
	"gsalert_core_cycle_refusals_total",
	"gsalert_core_aux_installs_sent_total",
	"gsalert_core_aux_cancels_sent_total",
	"gsalert_core_broadcasts_sent_total",
	"gsalert_core_advertisements_sent_total",
	"gsalert_core_forwarding_failures_total",
	"gsalert_core_filter_seconds_total",
	"gsalert_core_receive_latency_seconds_total",
	"gsalert_core_receive_hops_total",
	"gsalert_core_health_alerts_total",
	"gsalert_composite_primitives_total",
	"gsalert_composite_firings_total",
	"gsalert_composite_digest_flushes_total",
	"gsalert_composite_windows_expired_total",
	"gsalert_replica_streamed_total",
	"gsalert_replica_dropped_total",
	"gsalert_replica_errors_total",
	"gsalert_replica_snapshots_total",
	"gsalert_replica_resyncs_total",
	"gsalert_qos_admitted_total",
	"gsalert_qos_deferred_total",
	"gsalert_qos_coalesced_total",
	"gsalert_qos_digests_total",
	"gsalert_delivery_enqueued_total",
	"gsalert_delivery_delivered_total",
	"gsalert_delivery_parked_total",
	"gsalert_delivery_deferred_total",
	"gsalert_delivery_retried_total",
	"gsalert_delivery_displaced_total",
	"gsalert_delivery_spilled_total",
	"gsalert_delivery_dropped_total",
	"gsalert_delivery_recovered_total",
	"gsalert_delivery_batches_total",
	"gsalert_delivery_delivered_by_class_total",
	"gsalert_gds_deliveries_total",
	"gsalert_gds_broadcasts_total",
	"gsalert_gds_multicasts_total",
	"gsalert_gds_content_routed_total",
	"gsalert_gds_content_flooded_total",
	"gsalert_gds_resolves_total",
	"gsalert_gds_resolves_delegated_total",
	"gsalert_gds_dedup_hits_total",
	"gsalert_trace_spans_total",
	"gsalert_trace_dropped_total",
	"gsalert_transport_frames_sent_total",
	"gsalert_transport_frames_received_total",
	"gsalert_transport_bytes_sent_total",
	"gsalert_transport_bytes_received_total",
	"gsalert_transport_send_errors_total",
	"gsalert_exporter_scrapes_total",
	"gsalert_exporter_scrape_errors_total",
	"gsalert_exporter_sent_total",
	"gsalert_exporter_retries_total",
	"gsalert_exporter_dropped_total",
	"gsalert_exporter_send_errors_total",
	"gsalert_exporter_sent_bytes_total",
	"gsalert_go_gc_cycles_total",
	"gsalert_go_gc_pause_seconds_total",
	"gsalert_health_transitions_total",
	"gsalert_health_evals_total",
}

var catalogGauges = []string{
	"gsalert_composite_live_instances",
	"gsalert_replica_role",
	"gsalert_replica_stream_seq",
	"gsalert_replica_stream_lag",
	"gsalert_replica_promoted",
	"gsalert_qos_quota_buckets",
	"gsalert_qos_quota_tokens",
	"gsalert_delivery_queue_depth",
	"gsalert_delivery_drr_credit",
	"gsalert_delivery_spill_depth",
	"gsalert_delivery_batch_size_mean",
	"gsalert_gds_node_info",
	"gsalert_gds_children",
	"gsalert_gds_servers",
	"gsalert_gds_subtree_names",
	"gsalert_gds_groups",
	"gsalert_gds_warm_links",
	"gsalert_gds_link_digest_conjunctions",
	"gsalert_trace_ring_occupancy",
	"gsalert_trace_ring_capacity",
	"gsalert_go_goroutines",
	"gsalert_go_heap_alloc_bytes",
	"gsalert_go_heap_objects",
	"gsalert_exporter_queue_depth",
	"gsalert_health_component_state",
	"gsalert_health_rules_firing",
	"ALERTS",
}

var catalogHistograms = []string{
	"gsalert_delivery_flush_seconds",
	"gsalert_delivery_latency_seconds",
}
