package health

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHealthzHandler checks body shape and the critical->503 status rule.
func TestHealthzHandler(t *testing.T) {
	src := newFakeSource()
	src.set("gsalert_delivery_spill_depth", 0)
	clock := newTickClock()
	rs := mustRules(t, `
rule spill {
	component = delivery
	severity = critical
	expr = gsalert_delivery_spill_depth > 10
}`)
	e := NewEngine(src, rs, Options{Clock: clock.Now})
	e.TickAt(clock.Advance(time.Second))

	h := HealthzHandler(e)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d, want 200", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.State != Healthy || len(st.Rules) != 1 {
		t.Fatalf("decoded status wrong: %+v", st)
	}

	src.set("gsalert_delivery_spill_depth", 50)
	e.TickAt(clock.Advance(time.Second))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("critical /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"critical"`) {
		t.Fatalf("critical body missing state name: %s", rec.Body.String())
	}
}

// TestReadyzHandler checks the 200/503 flip and the failing-check body.
func TestReadyzHandler(t *testing.T) {
	e := NewEngine(newFakeSource(), DefaultRules(), Options{})
	down := true
	e.AddReadiness("standby", func() error {
		if down {
			return errors.New("lagging")
		}
		return nil
	})
	h := ReadyzHandler(e)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing /readyz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "lagging") {
		t.Fatalf("failing body missing check error: %s", rec.Body.String())
	}

	down = false
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("/readyz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
}

// TestEndpointsMount checks the ServeOption wires both paths onto a mux.
func TestEndpointsMount(t *testing.T) {
	e := NewEngine(newFakeSource(), DefaultRules(), Options{})
	mux := http.NewServeMux()
	Endpoints(e)(mux)
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}
