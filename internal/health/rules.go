package health

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/obs"
)

// Kind classifies a catalog metric for rule validation: quantile selectors
// need a histogram, rate selectors a counter.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Op is a threshold comparison operator.
type Op uint8

// Comparison operators.
const (
	OpGT Op = iota
	OpGE
	OpLT
	OpLE
)

// String renders the operator in the rule-file form.
func (o Op) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	default:
		return fmt.Sprintf("op-%d", int(o))
	}
}

func parseOp(s string) (Op, error) {
	switch s {
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want >, >=, < or <=)", s)
	}
}

// Selector names the series a rule reads: a metric plus required label
// equalities, optionally wrapped in a quantile (pNN over a histogram) or a
// rate over a trailing window (per-second increase of a counter). A bare
// selector evaluates to the SUM over matching scalar series — so
// `gsalert_delivery_queue_depth` is the cluster-wide depth across shards
// and classes, matching the E15 Prometheus rule's sum().
type Selector struct {
	// Metric is the family name.
	Metric string
	// Labels are required label equalities; a series matches when it
	// carries every one (it may carry more).
	Labels []obs.Label
	// Quantile, in (0,1), selects a histogram quantile; the selector
	// evaluates to the MAX over matching histogram series (the worst one).
	Quantile float64
	// RateWindow, when positive, turns a counter into its per-second
	// increase over the trailing window.
	RateWindow time.Duration
}

// String renders the selector in the rule-file form.
func (s Selector) String() string {
	var b strings.Builder
	b.WriteString(s.Metric)
	if len(s.Labels) > 0 {
		sorted := make([]obs.Label, len(s.Labels))
		copy(sorted, s.Labels)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		b.WriteByte('{')
		for i, l := range sorted {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
		}
		b.WriteByte('}')
	}
	switch {
	case s.Quantile > 0:
		return fmt.Sprintf("p%d(%s)", int(s.Quantile*100+0.5), b.String())
	case s.RateWindow > 0:
		return fmt.Sprintf("rate(%s[%s])", b.String(), s.RateWindow)
	default:
		return b.String()
	}
}

// Threshold is the simple rule form: selector OP value.
type Threshold struct {
	Sel   Selector
	Op    Op
	Value float64
	// ValueIsDuration records that the value was written as a duration
	// (seconds in Value), so String round-trips "1s" rather than "1".
	ValueIsDuration bool
}

// String renders the expression in the rule-file form.
func (t Threshold) String() string {
	v := strconv.FormatFloat(t.Value, 'g', -1, 64)
	if t.ValueIsDuration {
		v = time.Duration(t.Value * float64(time.Second)).String()
	}
	return fmt.Sprintf("%s %s %s", t.Sel, t.Op, v)
}

// BurnRate is the multi-window burn-rate rule form (the Google SRE
// multiwindow multi-burn-rate alert): the error ratio Bad/Total is
// measured over a short and a long trailing window, normalised by the SLO
// error budget, and the rule's condition holds only when BOTH windows burn
// faster than Factor× budget — the short window makes the alert reset
// quickly once the burn stops, the long window keeps a brief blip from
// paging.
type BurnRate struct {
	// Bad and Total are counter selectors; the error ratio over a window w
	// is increase(Bad[w]) / increase(Total[w]) (0 when Total did not move).
	Bad, Total Selector
	// SLO is the error budget as a fraction in (0,1): 0.001 = 99.9%.
	SLO float64
	// Short and Long are the two windows; Short must be < Long.
	Short, Long time.Duration
	// Factor is the burn-rate threshold: the rule's condition holds when
	// both windows' burn rates exceed it (14.4 = the classic 2%-of-monthly-
	// budget-in-one-hour page).
	Factor float64
}

// Rule is one parsed health rule — exactly one of Expr or Burn is set.
type Rule struct {
	// Name is the rule identifier (the ALERTS alertname label).
	Name string
	// Component is the subsystem the rule judges (delivery, qos, replica,
	// exporter, ...) — the health state machine key.
	Component string
	// Severity weighs the rule in the component aggregate.
	Severity Severity
	// Expr is the threshold form.
	Expr *Threshold
	// Burn is the burn-rate form.
	Burn *BurnRate
	// For is how long the condition must hold before the rule fires
	// (hysteresis on the way up). Zero fires on the first true tick.
	For time.Duration
	// Clear is how long the condition must be gone before a firing rule
	// clears (hysteresis on the way down). Zero clears on the first false
	// tick.
	Clear time.Duration
}

// String renders the rule in the canonical rule-file form.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s {\n", r.Name)
	fmt.Fprintf(&b, "\tcomponent = %s\n", r.Component)
	fmt.Fprintf(&b, "\tseverity = %s\n", r.Severity)
	switch {
	case r.Expr != nil:
		fmt.Fprintf(&b, "\texpr = %s\n", r.Expr)
	case r.Burn != nil:
		fmt.Fprintf(&b, "\tburnrate = %s / %s\n", r.Burn.Bad, r.Burn.Total)
		fmt.Fprintf(&b, "\tslo = %s\n", strconv.FormatFloat(r.Burn.SLO, 'g', -1, 64))
		fmt.Fprintf(&b, "\twindows = %s, %s\n", r.Burn.Short, r.Burn.Long)
		fmt.Fprintf(&b, "\tfactor = %s\n", strconv.FormatFloat(r.Burn.Factor, 'g', -1, 64))
	}
	if r.For > 0 {
		fmt.Fprintf(&b, "\tfor = %s\n", r.For)
	}
	if r.Clear > 0 {
		fmt.Fprintf(&b, "\tclear = %s\n", r.Clear)
	}
	b.WriteString("}\n")
	return b.String()
}

// RuleSet is an ordered collection of rules.
type RuleSet struct {
	Rules []*Rule
}

// String renders the set in the canonical rule-file form; Parse of the
// output reproduces the set (round-trip).
func (rs *RuleSet) String() string {
	var b strings.Builder
	for i, r := range rs.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// Components lists the distinct components named by the rules, sorted.
func (rs *RuleSet) Components() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rs.Rules {
		if !seen[r.Component] {
			seen[r.Component] = true
			out = append(out, r.Component)
		}
	}
	sort.Strings(out)
	return out
}

// ParseRules parses the rule-file text against the built-in metric catalog
// (Catalog): references to unknown metrics, quantiles over non-histograms
// and rates over non-counters are rejected at parse time, not discovered
// as never-firing rules at 3 a.m.
func ParseRules(src string) (*RuleSet, error) {
	return Parse(src, Catalog())
}

// Parse parses the rule-file text. known maps metric names to kinds for
// validation; nil skips metric-existence checks (selector syntax is still
// validated).
//
// The format is line-oriented blocks:
//
//	# comment
//	rule <name> {
//		component = <word>
//		severity  = warning | critical
//		expr      = <selector> <op> <number|duration>     # threshold form
//		burnrate  = <counter> / <counter>                 # burn-rate form
//		slo       = <fraction in (0,1)>
//		windows   = <short>, <long>
//		factor    = <number>
//		for       = <duration>
//		clear     = <duration>
//	}
//
// where <selector> is `metric`, `metric{label="v",...}`, `pNN(metric{...})`
// (histogram quantile) or `rate(metric{...}[window])` (counter rate).
func Parse(src string, known map[string]Kind) (*RuleSet, error) {
	rs := &RuleSet{}
	seen := map[string]bool{}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		name, ok := ruleHeader(line)
		if !ok {
			return nil, fmt.Errorf("health: line %d: expected `rule <name> {`, got %q", i+1, line)
		}
		if seen[name] {
			return nil, fmt.Errorf("health: line %d: duplicate rule %q", i+1, name)
		}
		seen[name] = true
		r := &Rule{Name: name}
		var burnSet, sloSet, windowsSet, factorSet bool
		body := i + 1
		closed := false
		for ; body < len(lines); body++ {
			line := stripComment(lines[body])
			if line == "" {
				continue
			}
			if line == "}" {
				closed = true
				break
			}
			key, val, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fmt.Errorf("health: line %d: expected `key = value` or `}`, got %q", body+1, line)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "component":
				r.Component = val
			case "severity":
				r.Severity, err = ParseSeverity(val)
			case "expr":
				r.Expr, err = parseThreshold(val, known)
			case "burnrate":
				burnSet = true
				err = parseBurnTarget(r, val, known)
			case "slo":
				sloSet = true
				err = setBurnField(r, func(b *BurnRate) error {
					v, e := strconv.ParseFloat(val, 64)
					if e != nil || v <= 0 || v >= 1 {
						return fmt.Errorf("slo must be a fraction in (0,1), got %q", val)
					}
					b.SLO = v
					return nil
				})
			case "windows":
				windowsSet = true
				err = setBurnField(r, func(b *BurnRate) error {
					short, long, ok := strings.Cut(val, ",")
					if !ok {
						return fmt.Errorf("windows wants `<short>, <long>`, got %q", val)
					}
					s, e1 := time.ParseDuration(strings.TrimSpace(short))
					l, e2 := time.ParseDuration(strings.TrimSpace(long))
					if e1 != nil || e2 != nil || s <= 0 || l <= 0 {
						return fmt.Errorf("windows wants two positive durations, got %q", val)
					}
					if s >= l {
						return fmt.Errorf("inverted windows: short %s must be < long %s", s, l)
					}
					b.Short, b.Long = s, l
					return nil
				})
			case "factor":
				factorSet = true
				err = setBurnField(r, func(b *BurnRate) error {
					v, e := strconv.ParseFloat(val, 64)
					if e != nil || v <= 0 {
						return fmt.Errorf("factor must be > 0, got %q", val)
					}
					b.Factor = v
					return nil
				})
			case "for":
				r.For, err = time.ParseDuration(val)
			case "clear":
				r.Clear, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("health: line %d: rule %s: %v", body+1, name, err)
			}
		}
		if !closed {
			return nil, fmt.Errorf("health: rule %s: missing closing `}`", name)
		}
		i = body
		switch {
		case r.Component == "":
			return nil, fmt.Errorf("health: rule %s: missing component", name)
		case r.Expr == nil && r.Burn == nil:
			return nil, fmt.Errorf("health: rule %s: needs an expr or a burnrate", name)
		case r.Expr != nil && r.Burn != nil:
			return nil, fmt.Errorf("health: rule %s: expr and burnrate are mutually exclusive", name)
		case r.Burn != nil && (!burnSet || !sloSet || !windowsSet || !factorSet):
			return nil, fmt.Errorf("health: rule %s: burn-rate rules need burnrate, slo, windows and factor", name)
		case r.Expr != nil && (sloSet || windowsSet || factorSet):
			return nil, fmt.Errorf("health: rule %s: slo/windows/factor only apply to burn-rate rules", name)
		case r.For < 0 || r.Clear < 0:
			return nil, fmt.Errorf("health: rule %s: for/clear must be >= 0", name)
		}
		rs.Rules = append(rs.Rules, r)
	}
	if len(rs.Rules) == 0 {
		return nil, fmt.Errorf("health: no rules in input")
	}
	return rs, nil
}

// setBurnField applies a burn-rate sub-key, creating the BurnRate so key
// order inside the block does not matter.
func setBurnField(r *Rule, set func(*BurnRate) error) error {
	if r.Burn == nil {
		r.Burn = &BurnRate{}
	}
	return set(r.Burn)
}

// parseBurnTarget parses `bad / total` into the rule's BurnRate.
func parseBurnTarget(r *Rule, val string, known map[string]Kind) error {
	bad, total, ok := strings.Cut(val, "/")
	if !ok {
		return fmt.Errorf("burnrate wants `<bad-counter> / <total-counter>`, got %q", val)
	}
	bs, err := parseSelector(strings.TrimSpace(bad), known)
	if err != nil {
		return err
	}
	ts, err := parseSelector(strings.TrimSpace(total), known)
	if err != nil {
		return err
	}
	for _, s := range []Selector{bs, ts} {
		if s.Quantile > 0 || s.RateWindow > 0 {
			return fmt.Errorf("burnrate selectors must be bare counters, got %q", s)
		}
		if err := wantKind(s.Metric, known, KindCounter, "burnrate"); err != nil {
			return err
		}
	}
	return setBurnField(r, func(b *BurnRate) error {
		b.Bad, b.Total = bs, ts
		return nil
	})
}

// parseThreshold parses `<selector> <op> <value>`.
func parseThreshold(val string, known map[string]Kind) (*Threshold, error) {
	// Split on the operator: scan for the first top-level comparison. Label
	// values are quoted, so a naive field scan over whitespace works as
	// long as selectors are written without internal spaces.
	fields := strings.Fields(val)
	if len(fields) != 3 {
		return nil, fmt.Errorf("expr wants `<selector> <op> <value>`, got %q", val)
	}
	sel, err := parseSelector(fields[0], known)
	if err != nil {
		return nil, err
	}
	op, err := parseOp(fields[1])
	if err != nil {
		return nil, err
	}
	t := &Threshold{Sel: sel, Op: op}
	if v, err := strconv.ParseFloat(fields[2], 64); err == nil {
		t.Value = v
	} else if d, err := time.ParseDuration(fields[2]); err == nil {
		t.Value = d.Seconds()
		t.ValueIsDuration = true
	} else {
		return nil, fmt.Errorf("expr value %q is neither a number nor a duration", fields[2])
	}
	return t, nil
}

// parseSelector parses `metric`, `metric{l="v"}`, `pNN(sel)` and
// `rate(sel[window])`.
func parseSelector(s string, known map[string]Kind) (Selector, error) {
	switch {
	case strings.HasPrefix(s, "p") && strings.Contains(s, "("):
		open := strings.IndexByte(s, '(')
		n, err := strconv.Atoi(s[1:open])
		if err != nil || n <= 0 || n >= 100 || !strings.HasSuffix(s, ")") {
			return Selector{}, fmt.Errorf("malformed quantile selector %q (want pNN(metric), 0 < NN < 100)", s)
		}
		inner, err := parseSelector(s[open+1:len(s)-1], known)
		if err != nil {
			return Selector{}, err
		}
		if inner.Quantile > 0 || inner.RateWindow > 0 {
			return Selector{}, fmt.Errorf("quantile selector %q cannot nest", s)
		}
		if err := wantKind(inner.Metric, known, KindHistogram, "quantile"); err != nil {
			return Selector{}, err
		}
		inner.Quantile = float64(n) / 100
		return inner, nil
	case strings.HasPrefix(s, "rate("):
		if !strings.HasSuffix(s, ")") {
			return Selector{}, fmt.Errorf("malformed rate selector %q", s)
		}
		body := s[len("rate(") : len(s)-1]
		open := strings.LastIndexByte(body, '[')
		if open < 0 || !strings.HasSuffix(body, "]") {
			return Selector{}, fmt.Errorf("rate selector %q wants a [window]", s)
		}
		w, err := time.ParseDuration(body[open+1 : len(body)-1])
		if err != nil || w <= 0 {
			return Selector{}, fmt.Errorf("rate selector %q: bad window: %v", s, err)
		}
		inner, err := parseSelector(body[:open], known)
		if err != nil {
			return Selector{}, err
		}
		if inner.Quantile > 0 || inner.RateWindow > 0 {
			return Selector{}, fmt.Errorf("rate selector %q cannot nest", s)
		}
		if err := wantKind(inner.Metric, known, KindCounter, "rate"); err != nil {
			return Selector{}, err
		}
		inner.RateWindow = w
		return inner, nil
	}
	sel := Selector{}
	name := s
	if open := strings.IndexByte(s, '{'); open >= 0 {
		if !strings.HasSuffix(s, "}") {
			return Selector{}, fmt.Errorf("malformed label block in %q", s)
		}
		name = s[:open]
		var err error
		sel.Labels, err = parseLabels(s[open+1 : len(s)-1])
		if err != nil {
			return Selector{}, fmt.Errorf("selector %q: %v", s, err)
		}
	}
	if name == "" {
		return Selector{}, fmt.Errorf("empty metric name in %q", s)
	}
	if known != nil {
		if _, ok := known[name]; !ok {
			return Selector{}, fmt.Errorf("unknown metric %q", name)
		}
	}
	sel.Metric = name
	return sel, nil
}

// wantKind checks a catalog kind constraint when a catalog is present.
func wantKind(metric string, known map[string]Kind, want Kind, ctx string) error {
	if known == nil {
		return nil
	}
	k, ok := known[metric]
	if !ok {
		return fmt.Errorf("unknown metric %q", metric)
	}
	if k != want {
		kinds := map[Kind]string{KindCounter: "counter", KindGauge: "gauge", KindHistogram: "histogram"}
		return fmt.Errorf("%s selector needs a %s, but %q is a %s", ctx, kinds[want], metric, kinds[k])
	}
	return nil
}

// parseLabels parses `a="b",c="d"`.
func parseLabels(s string) ([]obs.Label, error) {
	var out []obs.Label
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("malformed label %q (want name=\"value\")", part)
		}
		uq, err := strconv.Unquote(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("label %s: value must be quoted: %v", name, err)
		}
		out = append(out, obs.L(strings.TrimSpace(name), uq))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty label block")
	}
	return out, nil
}

// ruleHeader matches `rule <name> {`.
func ruleHeader(line string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "rule ")
	if !ok {
		return "", false
	}
	name, ok := strings.CutSuffix(strings.TrimSpace(rest), "{")
	if !ok {
		return "", false
	}
	name = strings.TrimSpace(name)
	if name == "" || strings.ContainsAny(name, " \t{}") {
		return "", false
	}
	return name, true
}

// stripComment trims whitespace and removes a trailing `#` comment.
func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		// A # inside a quoted label value stays: only strip when not inside
		// quotes.
		if strings.Count(line[:i], `"`)%2 == 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

// DefaultRulesText is the built-in rule set, keyed one-for-one to the
// E15/E16 SLO signatures that examples/self-monitoring ships as external
// Prometheus rules — the same judgments, evaluated in-process.
const DefaultRulesText = `# Built-in health rules (docs/HEALTH.md). Mirrors the E15 alert set in
# examples/self-monitoring/alerts/gsalert-alerts.yaml.

# DeliveryRealtimeP99SLO: realtime end-to-end p99 above 1s.
rule delivery-realtime-p99 {
	component = delivery
	severity = critical
	expr = p99(gsalert_delivery_latency_seconds{class="realtime"}) > 1s
	for = 30s
	clear = 1m
}

# DeliveryActualLoss as a multi-window burn rate over a 99.9% delivery SLO:
# page when drops consume the error budget 14.4x too fast over both windows.
rule delivery-loss-burn {
	component = delivery
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 5m, 1h
	factor = 14.4
	clear = 5m
}

# DeliveryQueueSaturated: cluster-wide queue depth (summed over shards and
# classes) persistently above the backlog bar.
rule delivery-queue-saturated {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth > 100
	for = 5m
	clear = 5m
}

# QoSDeferredGrowth: normal-class traffic is being deferred faster than
# mailboxes drain.
rule qos-deferred-backlog {
	component = qos
	severity = warning
	expr = rate(gsalert_qos_deferred_total[1m]) > 10
	for = 1m
	clear = 2m
}

# ExporterDroppingSnapshots: the push exporter's bounded queue is backing
# up or evicting blocks.
rule exporter-queue-backlog {
	component = exporter
	severity = warning
	expr = gsalert_exporter_queue_depth > 8
	for = 1m
	clear = 2m
}
rule exporter-drops {
	component = exporter
	severity = warning
	expr = rate(gsalert_exporter_dropped_total[5m]) > 0
	clear = 5m
}

# ReplicationStreamErrors / standby lag: the replication stream is failing
# or the standby is falling behind the primary's position.
rule replica-stream-lag {
	component = replica
	severity = critical
	expr = gsalert_replica_stream_lag > 64
	for = 30s
	clear = 1m
}
rule replica-stream-errors {
	component = replica
	severity = warning
	expr = rate(gsalert_replica_errors_total[1m]) > 0
	clear = 2m
}
`

// DefaultRules parses DefaultRulesText; the defaults are covered by tests,
// so the panic is unreachable in a released build.
func DefaultRules() *RuleSet {
	rs, err := ParseRules(DefaultRulesText)
	if err != nil {
		panic("health: default rules: " + err.Error())
	}
	return rs
}
