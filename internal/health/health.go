// Package health is the self-alerting plane: an SLO rule engine that
// evaluates threshold and multi-window burn-rate rules against the obs
// metric registry at scrape cadence and drives a per-component health
// state machine (healthy / degraded / critical) with hysteresis.
//
// The design closes the observability loop from the system's own side.
// PRs 6 and 8 made the pipeline scrapeable and traceable; this package
// makes it judge itself: the same E15/E16 SLO signatures that ship as
// external Prometheus rules in examples/self-monitoring are built in as
// default health rules (per-class p99, realtime drops as a burn rate,
// deferred backlog, exporter queue, replica stream lag), evaluated
// in-process with zero hot-path cost — the engine only reads the
// registry's lock-free instruments on its own tick, exactly like a
// scrape.
//
// Surfaces:
//
//   - /healthz and /readyz on the ops mux (Endpoints), the latter gating
//     on pluggable readiness checks — pipeline started, GDS registered,
//     standby caught up — so failover machinery has a signal to flip on.
//   - Firing rules rendered as Prometheus ALERTS{alertname,severity,
//     component} series plus gsalert_health_* self-monitoring counters
//     (Engine.Register).
//   - The dogfood: every component state transition can be published as a
//     first-class "health-alert" event into core.Service via the
//     OnTransition hook, so operators subscribe to meta-alerts with the
//     ordinary profile language — composite wrappers like
//     `SEQUENCE (health.state = "degraded") THEN (health.state =
//     "critical") WITHIN 1m` work unchanged, and the alerts inherit QoS
//     classes, durable mailboxes and replication from the pipeline they
//     describe.
//
// See docs/HEALTH.md for the rule grammar, the burn-rate math and the
// dogfooding walkthrough, and experiment E18 (docs/EXPERIMENTS.md) for
// the acceptance bar.
package health

import (
	"fmt"
	"time"
)

// State is one component's health, ordered by badness so the component
// aggregate is a max over its rules.
type State uint8

// Health states.
const (
	// Healthy: no rule for the component is firing.
	Healthy State = iota
	// Degraded: at least one warning-severity rule is firing.
	Degraded
	// Critical: at least one critical-severity rule is firing.
	Critical
)

// String names the state (the wire and profile-predicate form).
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("state-%d", int(s))
	}
}

// Severity is a rule's weight in the component aggregate.
type Severity uint8

// Rule severities.
const (
	// SevWarning drives its component to Degraded while firing.
	SevWarning Severity = iota
	// SevCritical drives its component to Critical while firing.
	SevCritical
)

// String names the severity (the rule-file and ALERTS-label form).
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity-%d", int(s))
	}
}

// ParseState inverts State.String.
func ParseState(s string) (State, error) {
	switch s {
	case "healthy":
		return Healthy, nil
	case "degraded":
		return Degraded, nil
	case "critical":
		return Critical, nil
	default:
		return 0, fmt.Errorf("health: unknown state %q (want healthy, degraded or critical)", s)
	}
}

// MarshalJSON renders the state by name, so /healthz JSON reads
// "degraded" rather than 1.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the name form (gs-client health decodes /healthz).
func (s *State) UnmarshalJSON(raw []byte) error {
	if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
		return fmt.Errorf("health: malformed state %s", raw)
	}
	v, err := ParseState(string(raw[1 : len(raw)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity inverts Severity.String.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "warning":
		return SevWarning, nil
	case "critical":
		return SevCritical, nil
	default:
		return 0, fmt.Errorf("health: unknown severity %q (want warning or critical)", s)
	}
}

// state returns the component state a firing rule of this severity implies.
func (s Severity) state() State {
	if s == SevCritical {
		return Critical
	}
	return Degraded
}

// Transition is one component state change — the unit of the transition
// log, of the gsalert_health_transitions_total counter and of the
// dogfooded health-alert events.
type Transition struct {
	// Component is the subsystem whose state changed.
	Component string `json:"component"`
	// From and To are the states either side of the change.
	From State `json:"from"`
	To   State `json:"to"`
	// Rule names the rule that tipped the component — the highest-severity
	// firing rule after the change, or the last one to clear on the way
	// down.
	Rule string `json:"rule"`
	// Severity is that rule's severity.
	Severity string `json:"severity"`
	// Value is the rule's last evaluated value (threshold input or the
	// short-window burn rate).
	Value float64 `json:"value"`
	// At is the engine tick time of the change.
	At time.Time `json:"at"`
}

// RuleStateName names a rule's evaluation state in /healthz output.
type RuleStateName string

// Rule evaluation states.
const (
	// RuleInactive: the condition does not hold.
	RuleInactive RuleStateName = "inactive"
	// RulePending: the condition holds but has not yet held for `for`.
	RulePending RuleStateName = "pending"
	// RuleFiring: the condition has held for `for` and has not been clear
	// for `clear`.
	RuleFiring RuleStateName = "firing"
)
