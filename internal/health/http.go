package health

import (
	"encoding/json"
	"net/http"

	"github.com/gsalert/gsalert/internal/obs"
)

// HealthzHandler serves the engine's Snapshot as JSON. Status code follows
// the worst component: 200 while healthy or degraded (the process is still
// doing useful work), 503 once any component is critical.
func HealthzHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		st := e.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		if st.State == Critical {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

// ReadyzHandler serves the readiness aggregate: 200 "ok" when every
// registered check passes, 503 with the failing checks as JSON otherwise.
// Load balancers and the chaos harness gate on this.
func ReadyzHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok, results := e.Readiness()
		if ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Ready  bool              `json:"ready"`
			Checks []ReadinessResult `json:"checks"`
		}{Ready: false, Checks: results})
	})
}

// Endpoints mounts /healthz and /readyz on the ops mux — pass it to
// obs.ServeOps alongside WithTraces/WithPprof. Defined here rather than in
// obs so the dependency points health→obs only.
func Endpoints(e *Engine) obs.ServeOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/healthz", HealthzHandler(e))
		mux.Handle("/readyz", ReadyzHandler(e))
	}
}
