package health

import (
	"strings"
	"testing"
	"time"
)

// TestDefaultRulesParse pins the built-in rule set: it parses against the
// catalog and covers every component the E15/E16 signatures judge.
func TestDefaultRulesParse(t *testing.T) {
	rs := DefaultRules()
	if len(rs.Rules) != 8 {
		t.Fatalf("default rules = %d, want 8", len(rs.Rules))
	}
	want := []string{"delivery", "exporter", "qos", "replica"}
	got := rs.Components()
	if len(got) != len(want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("components = %v, want %v", got, want)
		}
	}
}

// TestRuleSetRoundTrip checks Parse(String(rs)) reproduces the set —
// the canonical rendering is itself valid rule-file input.
func TestRuleSetRoundTrip(t *testing.T) {
	rs := DefaultRules()
	first := rs.String()
	rs2, err := ParseRules(first)
	if err != nil {
		t.Fatalf("reparse canonical form: %v", err)
	}
	second := rs2.String()
	if first != second {
		t.Fatalf("round-trip drifted:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestParseThresholdForms exercises the selector grammar.
func TestParseThresholdForms(t *testing.T) {
	src := `
rule a {
	component = delivery
	severity = warning
	expr = gsalert_delivery_queue_depth{shard="0",class="bulk"} >= 5
}
rule b {
	component = delivery
	severity = critical
	expr = p95(gsalert_delivery_latency_seconds) > 250ms
	for = 10s
	clear = 30s
}
rule c {
	component = qos
	severity = warning
	expr = rate(gsalert_qos_deferred_total[2m]) > 0.5
}
`
	rs, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := rs.Rules[0], rs.Rules[1], rs.Rules[2]
	if len(a.Expr.Sel.Labels) != 2 || a.Expr.Op != OpGE || a.Expr.Value != 5 {
		t.Fatalf("rule a parsed wrong: %+v", a.Expr)
	}
	if b.Expr.Sel.Quantile != 0.95 || b.Expr.Value != 0.25 || !b.Expr.ValueIsDuration {
		t.Fatalf("rule b parsed wrong: %+v", b.Expr)
	}
	if b.For != 10*time.Second || b.Clear != 30*time.Second {
		t.Fatalf("rule b hysteresis wrong: for=%s clear=%s", b.For, b.Clear)
	}
	if c.Expr.Sel.RateWindow != 2*time.Minute {
		t.Fatalf("rule c window = %s, want 2m", c.Expr.Sel.RateWindow)
	}
}

// TestParseRejections pins every validation error the grammar promises.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown metric", `
rule r {
	component = x
	severity = warning
	expr = gsalert_no_such_metric > 1
}`, "unknown metric"},
		{"inverted windows", `
rule r {
	component = x
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 1h, 5m
	factor = 14.4
}`, "inverted windows"},
		{"equal windows", `
rule r {
	component = x
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 5m, 5m
	factor = 14.4
}`, "inverted windows"},
		{"quantile over counter", `
rule r {
	component = x
	severity = warning
	expr = p99(gsalert_qos_deferred_total) > 1
}`, "needs a histogram"},
		{"rate over gauge", `
rule r {
	component = x
	severity = warning
	expr = rate(gsalert_delivery_queue_depth[1m]) > 1
}`, "needs a counter"},
		{"slo out of range", `
rule r {
	component = x
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 1.5
	windows = 5m, 1h
	factor = 14.4
}`, "slo must be a fraction"},
		{"factor nonpositive", `
rule r {
	component = x
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 5m, 1h
	factor = 0
}`, "factor must be > 0"},
		{"duplicate names", `
rule r {
	component = x
	severity = warning
	expr = gsalert_delivery_queue_depth > 1
}
rule r {
	component = x
	severity = warning
	expr = gsalert_delivery_queue_depth > 2
}`, "duplicate rule"},
		{"missing component", `
rule r {
	severity = warning
	expr = gsalert_delivery_queue_depth > 1
}`, "missing component"},
		{"expr and burnrate together", `
rule r {
	component = x
	severity = warning
	expr = gsalert_delivery_queue_depth > 1
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 5m, 1h
	factor = 14.4
}`, "mutually exclusive"},
		{"burnrate missing factor", `
rule r {
	component = x
	severity = critical
	burnrate = gsalert_delivery_dropped_total / gsalert_delivery_enqueued_total
	slo = 0.001
	windows = 5m, 1h
}`, "need burnrate, slo, windows and factor"},
		{"bad severity", `
rule r {
	component = x
	severity = fatal
	expr = gsalert_delivery_queue_depth > 1
}`, "unknown severity"},
		{"unclosed block", `
rule r {
	component = x
	severity = warning
	expr = gsalert_delivery_queue_depth > 1`, "missing closing"},
		{"unknown key", `
rule r {
	component = x
	severity = warning
	expr = gsalert_delivery_queue_depth > 1
	threshold = 5
}`, "unknown key"},
		{"empty input", `# only comments`, "no rules"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRules(tc.src)
			if err == nil {
				t.Fatalf("parse accepted %q, want error containing %q", tc.name, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseWithoutCatalog checks nil-catalog parsing skips metric
// existence checks but keeps syntax validation.
func TestParseWithoutCatalog(t *testing.T) {
	src := `
rule r {
	component = x
	severity = warning
	expr = totally_custom_metric > 1
}`
	if _, err := Parse(src, nil); err != nil {
		t.Fatalf("nil catalog should accept unknown metrics: %v", err)
	}
	if _, err := Parse(`rule r {
	component = x
	severity = warning
	expr = metric >!> 1
}`, nil); err == nil {
		t.Fatal("nil catalog must still reject bad operators")
	}
}

// TestCatalogKinds spot-checks the kind table the validators consult.
func TestCatalogKinds(t *testing.T) {
	cat := Catalog()
	for name, want := range map[string]Kind{
		"gsalert_delivery_dropped_total":   KindCounter,
		"gsalert_delivery_queue_depth":     KindGauge,
		"gsalert_delivery_latency_seconds": KindHistogram,
		"gsalert_replica_stream_lag":       KindGauge,
		"ALERTS":                           KindGauge,
	} {
		got, ok := cat[name]
		if !ok {
			t.Fatalf("catalog is missing %s", name)
		}
		if got != want {
			t.Fatalf("catalog[%s] = %v, want %v", name, got, want)
		}
	}
}
