// Package filter implements the local event-filtering engines of paper §5.
//
// Two engines share one interface: Naive scans every registered profile per
// event (the obvious baseline), while EqualityPreferred implements the
// variant of Fabret et al.'s equality-preferred matching the paper uses:
// profiles are normalised to DNF and every conjunction is hash-indexed by
// one of its positive equality predicates, so only conjunctions whose access
// (attribute, value) pair actually occurs in the event are evaluated.
// Conjunctions without an equality predicate fall back to a residual scan
// list. The benchmark suite (experiment E4) measures the gap.
package filter

import (
	"sort"
	"sync"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
)

// Match pairs a matched profile with the document IDs that triggered it
// (empty for event-level matches).
type Match struct {
	Profile *profile.Profile
	DocIDs  []string
}

// Matcher is a local filtering engine.
type Matcher interface {
	// Add registers a profile. Adding an existing ID replaces it.
	Add(p *profile.Profile) error
	// Remove deletes a profile by ID, reporting whether it existed.
	Remove(id string) bool
	// Match returns the profiles matching ev, sorted by profile ID.
	Match(ev *event.Event) []Match
	// Get returns a registered profile by ID.
	Get(id string) (*profile.Profile, bool)
	// All returns every registered profile, sorted by ID (persistence and
	// introspection).
	All() []*profile.Profile
	// Len reports the number of registered profiles.
	Len() int
	// Stats reports cumulative evaluation counters.
	Stats() Stats
}

// Stats counts filtering work, the measurable difference between engines.
type Stats struct {
	// Events is the number of Match calls.
	Events int64
	// Evaluations counts full profile evaluations performed.
	Evaluations int64
	// Matches counts profiles returned.
	Matches int64
}

// Naive evaluates every profile against every event.
type Naive struct {
	mu       sync.RWMutex
	profiles map[string]*profile.Profile
	stats    Stats
}

// NewNaive builds an empty naive matcher.
func NewNaive() *Naive {
	return &Naive{profiles: make(map[string]*profile.Profile)}
}

var _ Matcher = (*Naive)(nil)

// Add registers p.
func (n *Naive) Add(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profiles[p.ID] = p
	return nil
}

// Remove deletes a profile by ID.
func (n *Naive) Remove(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.profiles[id]
	delete(n.profiles, id)
	return ok
}

// Get returns a profile by ID.
func (n *Naive) Get(id string) (*profile.Profile, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.profiles[id]
	return p, ok
}

// All returns every profile sorted by ID.
func (n *Naive) All() []*profile.Profile {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return sortedProfiles(n.profiles)
}

// Len reports the profile count.
func (n *Naive) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.profiles)
}

// Stats reports counters.
func (n *Naive) Stats() Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.stats
}

// Match scans all profiles.
func (n *Naive) Match(ev *event.Event) []Match {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Events++
	out := make([]Match, 0, 4)
	for _, p := range n.profiles {
		n.stats.Evaluations++
		if ok, ids := p.Matches(ev); ok {
			out = append(out, Match{Profile: p, DocIDs: ids})
		}
	}
	n.stats.Matches += int64(len(out))
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Profile.ID < ms[j].Profile.ID })
}

func sortedProfiles(m map[string]*profile.Profile) []*profile.Profile {
	out := make([]*profile.Profile, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
