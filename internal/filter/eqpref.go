package filter

import (
	"fmt"
	"strings"
	"sync"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/index"
	"github.com/gsalert/gsalert/internal/profile"
)

// conjEntry is one indexed DNF conjunction of a profile.
type conjEntry struct {
	profileID string
	conj      profile.Conjunction
	// eventOnly marks conjunctions whose predicates reference only
	// event-level attributes: they can be decided once per event instead of
	// once per document.
	eventOnly bool
}

// EqualityPreferred hash-indexes each DNF conjunction of every profile by
// one of its positive equality predicates, preferring document-attribute
// predicates (selective) over event-level ones (a collection name repeats
// for every local event). Document-indexed conjunctions are evaluated only
// against documents that actually expose the access value — the Fabret-
// style access-predicate discipline that keeps filtering cost proportional
// to the event content rather than to the profile population (paper §5).
type EqualityPreferred struct {
	mu       sync.Mutex
	profiles map[string]*profile.Profile
	// docIndex: access key over document attributes -> conjunctions.
	docIndex map[string][]*conjEntry
	// evtIndex: access key over event attributes -> conjunctions.
	evtIndex map[string][]*conjEntry
	// residual: conjunctions with no positive equality predicate at all;
	// they are evaluated for every event.
	residual []*conjEntry
	// keysByProfile remembers where each profile's entries live.
	keysByProfile map[string]*profileKeys
	stats         Stats
}

type profileKeys struct {
	docKeys []string
	evtKeys []string
	inRes   bool
}

// NewEqualityPreferred builds an empty equality-preferred matcher.
func NewEqualityPreferred() *EqualityPreferred {
	return &EqualityPreferred{
		profiles:      make(map[string]*profile.Profile),
		docIndex:      make(map[string][]*conjEntry),
		evtIndex:      make(map[string][]*conjEntry),
		keysByProfile: make(map[string]*profileKeys),
	}
}

var _ Matcher = (*EqualityPreferred)(nil)

func accessKey(attr, value string) string {
	return attr + "\x00" + strings.ToLower(value)
}

// eventAttrNames mirrors the event-level attributes of the profile package.
var eventAttrNames = map[string]bool{
	"collection": true,
	"host":       true,
	"origin":     true,
	"event.type": true,
}

// chooseAccess picks the access predicate for a conjunction: the first
// positive equality over a document attribute if any (selective), else the
// first positive equality over an event attribute, else none.
func chooseAccess(c profile.Conjunction) (pred *profile.Pred, onDoc bool) {
	var evtPred *profile.Pred
	for _, p := range c {
		if p.Op != profile.OpEq || p.Neg {
			continue
		}
		if !eventAttrNames[p.Attr] {
			return p, true
		}
		if evtPred == nil {
			evtPred = p
		}
	}
	return evtPred, false
}

func conjIsEventOnly(c profile.Conjunction) bool {
	for _, p := range c {
		if !eventAttrNames[p.Attr] {
			return false
		}
	}
	return true
}

// Add registers p, normalising its expression to DNF for indexing.
func (e *EqualityPreferred) Add(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	conjunctions, err := profile.ToDNF(p.Expr)
	if err != nil {
		return fmt.Errorf("filter: profile %s: %w", p.ID, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.profiles[p.ID]; exists {
		e.removeLocked(p.ID)
	}
	e.profiles[p.ID] = p
	keys := &profileKeys{}
	e.keysByProfile[p.ID] = keys
	for _, c := range conjunctions {
		entry := &conjEntry{profileID: p.ID, conj: c, eventOnly: conjIsEventOnly(c)}
		access, onDoc := chooseAccess(c)
		switch {
		case access == nil:
			e.residual = append(e.residual, entry)
			keys.inRes = true
		case onDoc:
			k := accessKey(access.Attr, access.Value)
			e.docIndex[k] = append(e.docIndex[k], entry)
			keys.docKeys = append(keys.docKeys, k)
		default:
			k := accessKey(access.Attr, access.Value)
			e.evtIndex[k] = append(e.evtIndex[k], entry)
			keys.evtKeys = append(keys.evtKeys, k)
		}
	}
	return nil
}

// Remove deletes a profile by ID.
func (e *EqualityPreferred) Remove(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.profiles[id]; !ok {
		return false
	}
	e.removeLocked(id)
	return true
}

func dropEntries(entries []*conjEntry, profileID string) []*conjEntry {
	kept := entries[:0]
	for _, en := range entries {
		if en.profileID != profileID {
			kept = append(kept, en)
		}
	}
	return kept
}

func (e *EqualityPreferred) removeLocked(id string) {
	delete(e.profiles, id)
	keys := e.keysByProfile[id]
	delete(e.keysByProfile, id)
	if keys == nil {
		return
	}
	for _, k := range keys.docKeys {
		if left := dropEntries(e.docIndex[k], id); len(left) == 0 {
			delete(e.docIndex, k)
		} else {
			e.docIndex[k] = left
		}
	}
	for _, k := range keys.evtKeys {
		if left := dropEntries(e.evtIndex[k], id); len(left) == 0 {
			delete(e.evtIndex, k)
		} else {
			e.evtIndex[k] = left
		}
	}
	if keys.inRes {
		e.residual = dropEntries(e.residual, id)
	}
}

// Get returns a profile by ID.
func (e *EqualityPreferred) Get(id string) (*profile.Profile, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.profiles[id]
	return p, ok
}

// All returns every profile sorted by ID.
func (e *EqualityPreferred) All() []*profile.Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	return sortedProfiles(e.profiles)
}

// Len reports the profile count.
func (e *EqualityPreferred) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.profiles)
}

// Stats reports counters. Evaluations counts conjunction evaluations — the
// unit of work the access-predicate index saves.
func (e *EqualityPreferred) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Match is semantically identical to Naive.Match: a profile matches when
// some document satisfies its expression (or the event alone does, for
// doc-less events), and matching documents are reported in event order.
func (e *EqualityPreferred) Match(ev *event.Event) []Match {
	attrs := ev.Attrs()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Events++

	// matchedDocs[profileID] = set of matching doc positions; matchedEvent
	// marks doc-less event-level matches.
	matchedDocs := make(map[string]map[int]bool)
	matchedEvent := make(map[string]bool)

	evalConj := func(c profile.Conjunction, ctx *profile.EvalContext) bool {
		e.stats.Evaluations++
		return profile.EvalConjunction(c, ctx)
	}
	markDoc := func(id string, docIdx int) {
		set := matchedDocs[id]
		if set == nil {
			set = make(map[int]bool)
			matchedDocs[id] = set
		}
		set[docIdx] = true
	}

	// Event-indexed and residual conjunctions.
	globalEntries := make([]*conjEntry, 0, len(e.residual)+8)
	globalEntries = append(globalEntries, e.residual...)
	for attr, v := range attrs {
		globalEntries = append(globalEntries, e.evtIndex[accessKey(attr, v)]...)
	}
	for _, en := range globalEntries {
		if len(ev.Docs) == 0 {
			if evalConj(en.conj, &profile.EvalContext{Attrs: attrs}) {
				matchedEvent[en.profileID] = true
			}
			continue
		}
		if en.eventOnly {
			// Document-independent: decide once; every doc then matches
			// trivially (the naive engine reports them all too).
			if evalConj(en.conj, &profile.EvalContext{Attrs: attrs}) {
				for i := range ev.Docs {
					markDoc(en.profileID, i)
				}
			}
			continue
		}
		for i := range ev.Docs {
			d := docRefToIndexDoc(&ev.Docs[i])
			if evalConj(en.conj, &profile.EvalContext{Attrs: attrs, Doc: &d}) {
				markDoc(en.profileID, i)
			}
		}
	}

	// Document-indexed conjunctions: only documents exposing the access
	// value trigger evaluation — and only against that document.
	if len(e.docIndex) > 0 {
		seenKey := make(map[string]bool, 8)
		for i := range ev.Docs {
			doc := &ev.Docs[i]
			d := docRefToIndexDoc(doc)
			clear(seenKey)
			tryKey := func(k string) {
				if seenKey[k] {
					return
				}
				seenKey[k] = true
				for _, en := range e.docIndex[k] {
					if evalConj(en.conj, &profile.EvalContext{Attrs: attrs, Doc: &d}) {
						markDoc(en.profileID, i)
					}
				}
			}
			tryKey(accessKey("doc.id", doc.ID))
			for attr, values := range doc.Metadata {
				for _, v := range values {
					tryKey(accessKey(attr, v))
				}
			}
		}
	}

	out := make([]Match, 0, len(matchedDocs)+len(matchedEvent))
	for id, docSet := range matchedDocs {
		p := e.profiles[id]
		if p == nil {
			continue
		}
		ids := make([]string, 0, len(docSet))
		for i := range ev.Docs {
			if docSet[i] {
				ids = append(ids, ev.Docs[i].ID)
			}
		}
		out = append(out, Match{Profile: p, DocIDs: ids})
	}
	for id := range matchedEvent {
		if _, dup := matchedDocs[id]; dup {
			continue
		}
		if p := e.profiles[id]; p != nil {
			out = append(out, Match{Profile: p})
		}
	}
	e.stats.Matches += int64(len(out))
	sortMatches(out)
	return out
}

func docRefToIndexDoc(d *event.DocRef) index.Doc {
	return index.Doc{ID: d.ID, Fields: d.Metadata, Text: d.Snippet}
}
