package filter

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
)

func userProfile(t testing.TB, id, expr string) *profile.Profile {
	t.Helper()
	e, err := profile.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return profile.NewUser(id, "client-"+id, "Hamilton", e)
}

func docsEvent(coll event.QName, docs ...event.DocRef) *event.Event {
	return event.New("ev-"+coll.String(), event.TypeDocumentsAdded, coll, 1, docs, time.Now())
}

func matchers() map[string]func() Matcher {
	return map[string]func() Matcher{
		"naive":  func() Matcher { return NewNaive() },
		"eqpref": func() Matcher { return NewEqualityPreferred() },
	}
}

func TestMatcherBasics(t *testing.T) {
	for name, mk := range matchers() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			p1 := userProfile(t, "p1", `collection = "Hamilton.D" AND dc.Creator = "Smith"`)
			p2 := userProfile(t, "p2", `collection = "London.E"`)
			p3 := userProfile(t, "p3", `dc.Title contains "music"`) // residual (no equality)
			for _, p := range []*profile.Profile{p1, p2, p3} {
				if err := m.Add(p); err != nil {
					t.Fatalf("Add(%s): %v", p.ID, err)
				}
			}
			if m.Len() != 3 {
				t.Fatalf("Len = %d", m.Len())
			}
			ev := docsEvent(event.QName{Host: "Hamilton", Collection: "D"},
				event.DocRef{ID: "d1", Metadata: map[string][]string{
					"dc.Creator": {"Smith"},
					"dc.Title":   {"Music of NZ"},
				}})
			got := m.Match(ev)
			if len(got) != 2 {
				t.Fatalf("matches = %d: %+v", len(got), got)
			}
			if got[0].Profile.ID != "p1" || got[1].Profile.ID != "p3" {
				t.Errorf("matched %s, %s", got[0].Profile.ID, got[1].Profile.ID)
			}
			if len(got[0].DocIDs) != 1 || got[0].DocIDs[0] != "d1" {
				t.Errorf("doc ids = %v", got[0].DocIDs)
			}
			if !m.Remove("p1") {
				t.Error("Remove existing returned false")
			}
			if m.Remove("p1") {
				t.Error("Remove twice returned true")
			}
			if got := m.Match(ev); len(got) != 1 {
				t.Errorf("after remove: %d matches", len(got))
			}
			if _, ok := m.Get("p2"); !ok {
				t.Error("Get(p2) missing")
			}
			if _, ok := m.Get("p1"); ok {
				t.Error("Get(p1) should be gone")
			}
		})
	}
}

func TestMatcherReplaceOnSameID(t *testing.T) {
	for name, mk := range matchers() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			_ = m.Add(userProfile(t, "p1", `collection = "A.B"`))
			_ = m.Add(userProfile(t, "p1", `collection = "C.D"`))
			if m.Len() != 1 {
				t.Fatalf("Len = %d after replace", m.Len())
			}
			evOld := docsEvent(event.QName{Host: "A", Collection: "B"})
			if got := m.Match(evOld); len(got) != 0 {
				t.Errorf("old profile still matches: %+v", got)
			}
			evNew := docsEvent(event.QName{Host: "C", Collection: "D"})
			if got := m.Match(evNew); len(got) != 1 {
				t.Errorf("new profile does not match: %+v", got)
			}
		})
	}
}

func TestMatcherRejectsInvalid(t *testing.T) {
	for name, mk := range matchers() {
		t.Run(name, func(t *testing.T) {
			if err := mk().Add(&profile.Profile{ID: "x"}); err == nil {
				t.Error("invalid profile accepted")
			}
		})
	}
}

func TestEqualityPreferredUsesIndex(t *testing.T) {
	m := NewEqualityPreferred()
	// 100 profiles on distinct collections; only one can match any event.
	for i := 0; i < 100; i++ {
		_ = m.Add(userProfile(t, fmt.Sprintf("p%03d", i), fmt.Sprintf(`collection = "H.C%d"`, i)))
	}
	ev := docsEvent(event.QName{Host: "H", Collection: "C42"})
	got := m.Match(ev)
	if len(got) != 1 || got[0].Profile.ID != "p042" {
		t.Fatalf("matches = %+v", got)
	}
	st := m.Stats()
	if st.Evaluations > 3 {
		t.Errorf("index ineffective: %d evaluations for 100 profiles", st.Evaluations)
	}
	// The naive engine would evaluate all 100.
	n := NewNaive()
	for i := 0; i < 100; i++ {
		_ = n.Add(userProfile(t, fmt.Sprintf("p%03d", i), fmt.Sprintf(`collection = "H.C%d"`, i)))
	}
	n.Match(ev)
	if n.Stats().Evaluations != 100 {
		t.Errorf("naive evaluations = %d", n.Stats().Evaluations)
	}
}

func TestEqualityPreferredDisjunction(t *testing.T) {
	m := NewEqualityPreferred()
	_ = m.Add(userProfile(t, "p1", `collection = "A.B" OR collection = "C.D"`))
	for _, coll := range []event.QName{{Host: "A", Collection: "B"}, {Host: "C", Collection: "D"}} {
		if got := m.Match(docsEvent(coll)); len(got) != 1 {
			t.Errorf("disjunct %v not matched", coll)
		}
	}
	if got := m.Match(docsEvent(event.QName{Host: "X", Collection: "Y"})); len(got) != 0 {
		t.Errorf("unrelated event matched: %+v", got)
	}
}

func TestEqualityPreferredDocMetadataIndex(t *testing.T) {
	m := NewEqualityPreferred()
	_ = m.Add(userProfile(t, "p1", `dc.Creator = "Smith"`))
	ev := docsEvent(event.QName{Host: "H", Collection: "C"},
		event.DocRef{ID: "d1", Metadata: map[string][]string{"dc.Creator": {"smith"}}})
	if got := m.Match(ev); len(got) != 1 {
		t.Fatalf("case-insensitive metadata equality missed: %+v", got)
	}
	// doc.id equality goes through the index too.
	_ = m.Add(userProfile(t, "p2", `doc.id = "d1"`))
	if got := m.Match(ev); len(got) != 2 {
		t.Fatalf("doc.id index missed: %+v", got)
	}
}

func TestNegatedEqualityNotIndexed(t *testing.T) {
	m := NewEqualityPreferred()
	// NOT collection = X has no positive equality -> residual, evaluated always.
	_ = m.Add(userProfile(t, "p1", `NOT collection = "A.B"`))
	if got := m.Match(docsEvent(event.QName{Host: "C", Collection: "D"})); len(got) != 1 {
		t.Fatalf("negated profile missed: %+v", got)
	}
	if got := m.Match(docsEvent(event.QName{Host: "A", Collection: "B"})); len(got) != 0 {
		t.Fatalf("negated profile matched excluded event: %+v", got)
	}
}

// randomProfiles builds a reproducible profile population mixing shapes.
func randomProfiles(t testing.TB, n int, rng *rand.Rand) []*profile.Profile {
	shapes := []func(i int) string{
		func(i int) string { return fmt.Sprintf(`collection = "H.C%d"`, rng.Intn(20)) },
		func(i int) string {
			return fmt.Sprintf(`collection = "H.C%d" AND dc.Creator = "Author%d"`, rng.Intn(20), rng.Intn(50))
		},
		func(i int) string { return fmt.Sprintf(`dc.Title contains "word%d"`, rng.Intn(30)) },
		func(i int) string {
			return fmt.Sprintf(`dc.Creator = "Author%d" OR dc.Creator = "Author%d"`, rng.Intn(50), rng.Intn(50))
		},
		func(i int) string {
			return fmt.Sprintf(`event.type = "documents-added" AND year >= %d`, 1980+rng.Intn(30))
		},
	}
	ps := make([]*profile.Profile, 0, n)
	for i := 0; i < n; i++ {
		expr := shapes[rng.Intn(len(shapes))](i)
		ps = append(ps, userProfile(t, fmt.Sprintf("p%05d", i), expr))
	}
	return ps
}

func randomEvent(rng *rand.Rand) *event.Event {
	docs := make([]event.DocRef, 0, 3)
	for d := 0; d < 1+rng.Intn(3); d++ {
		docs = append(docs, event.DocRef{
			ID: fmt.Sprintf("doc-%d", rng.Intn(1000)),
			Metadata: map[string][]string{
				"dc.Creator": {fmt.Sprintf("Author%d", rng.Intn(50))},
				"dc.Title":   {fmt.Sprintf("study of word%d and word%d", rng.Intn(30), rng.Intn(30))},
				"year":       {fmt.Sprintf("%d", 1980+rng.Intn(40))},
			},
		})
	}
	return event.New(fmt.Sprintf("ev-%d", rng.Int()), event.TypeDocumentsAdded,
		event.QName{Host: "H", Collection: fmt.Sprintf("C%d", rng.Intn(20))}, 1, docs, time.Now())
}

// The central correctness property of the equality-preferred engine: it
// returns exactly the same matches as the naive scan on arbitrary workloads.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		naive := NewNaive()
		eq := NewEqualityPreferred()
		for _, p := range randomProfiles(t, 60, rng) {
			if err := naive.Add(p); err != nil {
				return false
			}
			if err := eq.Add(p); err != nil {
				return false
			}
		}
		for i := 0; i < 20; i++ {
			ev := randomEvent(rng)
			a := naive.Match(ev)
			b := eq.Match(ev)
			if len(a) != len(b) {
				t.Logf("seed %d: naive %d matches, eqpref %d", seed, len(a), len(b))
				return false
			}
			for j := range a {
				if a[j].Profile.ID != b[j].Profile.ID {
					return false
				}
				if fmt.Sprint(a[j].DocIDs) != fmt.Sprint(b[j].DocIDs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesAgreeAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	naive := NewNaive()
	eq := NewEqualityPreferred()
	ps := randomProfiles(t, 100, rng)
	for _, p := range ps {
		_ = naive.Add(p)
		_ = eq.Add(p)
	}
	// Remove a random half.
	for _, i := range rng.Perm(100)[:50] {
		naive.Remove(ps[i].ID)
		eq.Remove(ps[i].ID)
	}
	if naive.Len() != eq.Len() {
		t.Fatalf("len: %d vs %d", naive.Len(), eq.Len())
	}
	for i := 0; i < 30; i++ {
		ev := randomEvent(rng)
		a, b := naive.Match(ev), eq.Match(ev)
		if len(a) != len(b) {
			t.Fatalf("event %d: %d vs %d matches", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Profile.ID != b[j].Profile.ID {
				t.Fatalf("event %d: id %s vs %s", i, a[j].Profile.ID, b[j].Profile.ID)
			}
		}
	}
}

func TestMatcherConcurrent(t *testing.T) {
	for name, mk := range matchers() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			rng := rand.New(rand.NewSource(1))
			for _, p := range randomProfiles(t, 50, rng) {
				_ = m.Add(p)
			}
			done := make(chan bool)
			for g := 0; g < 4; g++ {
				go func(g int) {
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 50; i++ {
						m.Match(randomEvent(rng))
					}
					done <- true
				}(g)
			}
			go func() {
				for i := 0; i < 50; i++ {
					p := userProfile(t, fmt.Sprintf("extra-%d", i), `collection = "Z.Z"`)
					_ = m.Add(p)
					m.Remove(p.ID)
				}
				done <- true
			}()
			for i := 0; i < 5; i++ {
				<-done
			}
		})
	}
}

func benchMatcher(b *testing.B, mk func() Matcher, nProfiles int) {
	rng := rand.New(rand.NewSource(99))
	m := mk()
	for _, p := range randomProfiles(b, nProfiles, rng) {
		if err := m.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]*event.Event, 64)
	for i := range events {
		events[i] = randomEvent(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(events[i%len(events)])
	}
}

func BenchmarkNaive1k(b *testing.B) { benchMatcher(b, func() Matcher { return NewNaive() }, 1000) }
func BenchmarkEqPref1k(b *testing.B) {
	benchMatcher(b, func() Matcher { return NewEqualityPreferred() }, 1000)
}
func BenchmarkNaive10k(b *testing.B) { benchMatcher(b, func() Matcher { return NewNaive() }, 10000) }
func BenchmarkEqPref10k(b *testing.B) {
	benchMatcher(b, func() Matcher { return NewEqualityPreferred() }, 10000)
}
