// Package profile implements the alerting profile language of paper §5: a
// Boolean combination of attribute–value pairs on the macro level, whose
// values on the micro level may be ID lists, wildcards, or retrieval
// sub-queries evaluated with the collection's own search functionality.
//
// Profiles are written in a small textual language:
//
//	collection = "Hamilton.D" AND (dc.Title contains "music" OR dc.Creator = "Smith")
//	event.type = "documents-added" AND doc.id in ("d1", "d2")
//	text query "whale AND songs"
//	dc.Title matches "mus*"
//
// and are serialised to XML for the wire. The package also provides the
// normal forms (NNF/DNF) consumed by the equality-preferred filter engine.
package profile

import (
	"fmt"
	"strings"

	"github.com/gsalert/gsalert/internal/index"
)

// Expr is a node of a profile expression tree.
type Expr interface {
	// String renders the node in the profile language (parseable back).
	String() string
	isExpr()
}

// And is a conjunction.
type And struct{ Children []Expr }

// Or is a disjunction.
type Or struct{ Children []Expr }

// Not is a negation.
type Not struct{ Child Expr }

// Op enumerates predicate operators.
type Op int

// Predicate operators. Equality is first-class: the filter engine's
// equality-preferred algorithm indexes profiles by their Eq predicates.
const (
	// OpEq tests case-insensitive equality with any attribute value.
	OpEq Op = iota + 1
	// OpNe tests that no attribute value equals the operand.
	OpNe
	// OpLt orders numerically when both sides parse as numbers, else
	// lexicographically.
	OpLt
	// OpLe is less-or-equal.
	OpLe
	// OpGt is greater-than.
	OpGt
	// OpGe is greater-or-equal.
	OpGe
	// OpContains tests case-insensitive substring containment.
	OpContains
	// OpPrefix tests a case-insensitive prefix.
	OpPrefix
	// OpSuffix tests a case-insensitive suffix.
	OpSuffix
	// OpMatches tests a wildcard pattern with * and ?.
	OpMatches
	// OpIn tests membership in an explicit value list (the paper's
	// micro-level "list of IDs", the basis of watch-this observation).
	OpIn
	// OpQuery evaluates the operand as a retrieval query against the
	// attribute's field using the index package (continuous search).
	OpQuery
	// OpExists tests that the attribute has at least one value.
	OpExists
)

var opNames = map[Op]string{
	OpEq:       "=",
	OpNe:       "!=",
	OpLt:       "<",
	OpLe:       "<=",
	OpGt:       ">",
	OpGe:       ">=",
	OpContains: "contains",
	OpPrefix:   "startswith",
	OpSuffix:   "endswith",
	OpMatches:  "matches",
	OpIn:       "in",
	OpQuery:    "query",
	OpExists:   "exists",
}

// String renders the operator token.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op-%d", int(o))
}

// Pred is an attribute–value predicate, the leaf of the macro level.
// Neg marks a pushed-down negation (produced by NNF normalisation).
type Pred struct {
	// Attr names what the predicate inspects. Event-level attributes are
	// "collection", "host", "origin" and "event.type"; "doc.id" addresses
	// the document identifier; "text" addresses full text; everything else
	// is a document metadata field such as "dc.Title".
	Attr string
	// Op is the comparison operator.
	Op Op
	// Value is the operand for unary-operand operators.
	Value string
	// Values is the operand list for OpIn.
	Values []string
	// Neg inverts the predicate outcome.
	Neg bool

	// compiledQuery caches the parsed retrieval query for OpQuery.
	compiledQuery *index.Query
}

func (*And) isExpr()  {}
func (*Or) isExpr()   {}
func (*Not) isExpr()  {}
func (*Pred) isExpr() {}

// String renders the conjunction.
func (a *And) String() string { return joinExprs(a.Children, " AND ") }

// String renders the disjunction.
func (o *Or) String() string { return joinExprs(o.Children, " OR ") }

// String renders the negation.
func (n *Not) String() string { return "NOT " + paren(n.Child) }

// String renders the predicate in parseable form.
func (p *Pred) String() string {
	prefix := ""
	if p.Neg {
		prefix = "NOT "
	}
	switch p.Op {
	case OpExists:
		return prefix + p.Attr + " exists"
	case OpIn:
		vals := make([]string, 0, len(p.Values))
		for _, v := range p.Values {
			vals = append(vals, quoteValue(v))
		}
		return fmt.Sprintf("%s%s in (%s)", prefix, p.Attr, strings.Join(vals, ", "))
	default:
		return fmt.Sprintf("%s%s %s %s", prefix, p.Attr, p.Op, quoteValue(p.Value))
	}
}

// quoteValue renders a string literal in the profile language. The lexer's
// escape rule is "a backslash takes the next rune literally", so only the
// quote and the backslash need escaping; every other rune — control
// characters included — is written raw. (strconv.Quote's \xNN escapes
// would not re-lex, breaking the parseable-back contract of
// Expr.String.)
func quoteValue(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for _, r := range v {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}

func joinExprs(children []Expr, sep string) string {
	parts := make([]string, 0, len(children))
	for _, c := range children {
		parts = append(parts, paren(c))
	}
	return strings.Join(parts, sep)
}

func paren(e Expr) string {
	switch e.(type) {
	case *Pred:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// NewAnd flattens and combines children conjunctively; nils are dropped and
// single children collapse.
func NewAnd(children ...Expr) Expr { return combine(true, children) }

// NewOr flattens and combines children disjunctively.
func NewOr(children ...Expr) Expr { return combine(false, children) }

func combine(isAnd bool, children []Expr) Expr {
	kept := make([]Expr, 0, len(children))
	for _, c := range children {
		if c == nil {
			continue
		}
		switch v := c.(type) {
		case *And:
			if isAnd {
				kept = append(kept, v.Children...)
				continue
			}
		case *Or:
			if !isAnd {
				kept = append(kept, v.Children...)
				continue
			}
		}
		kept = append(kept, c)
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	if isAnd {
		return &And{Children: kept}
	}
	return &Or{Children: kept}
}

// NewNot negates e, collapsing double negation.
func NewNot(e Expr) Expr {
	if e == nil {
		return nil
	}
	if n, ok := e.(*Not); ok {
		return n.Child
	}
	if p, ok := e.(*Pred); ok {
		cp := *p
		cp.Neg = !cp.Neg
		return &cp
	}
	return &Not{Child: e}
}

// Walk visits every node of e depth-first.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *And:
		for _, c := range v.Children {
			Walk(c, visit)
		}
	case *Or:
		for _, c := range v.Children {
			Walk(c, visit)
		}
	case *Not:
		Walk(v.Child, visit)
	}
}

// Attrs returns the distinct attribute names referenced by e, sorted.
func Attrs(e Expr) []string {
	set := map[string]bool{}
	Walk(e, func(n Expr) {
		if p, ok := n.(*Pred); ok {
			set[p.Attr] = true
		}
	})
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Clone deep-copies an expression tree.
func Clone(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *And:
		cs := make([]Expr, 0, len(v.Children))
		for _, c := range v.Children {
			cs = append(cs, Clone(c))
		}
		return &And{Children: cs}
	case *Or:
		cs := make([]Expr, 0, len(v.Children))
		for _, c := range v.Children {
			cs = append(cs, Clone(c))
		}
		return &Or{Children: cs}
	case *Not:
		return &Not{Child: Clone(v.Child)}
	case *Pred:
		cp := *v
		cp.Values = append([]string(nil), v.Values...)
		return &cp
	default:
		return nil
	}
}
