package profile

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/qos"
)

// Kind distinguishes user profiles from the server-to-server auxiliary
// profiles of paper §4.2.
type Kind int

// Profile kinds.
const (
	// KindUser is a profile defined by a library user at their home server.
	KindUser Kind = iota + 1
	// KindAuxiliary is a profile forwarded by a super-collection's server to
	// a sub-collection's server; its "owner" is the super-collection's
	// server, not a user (paper §7).
	KindAuxiliary
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindAuxiliary:
		return "auxiliary"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "user":
		return KindUser, nil
	case "auxiliary":
		return KindAuxiliary, nil
	default:
		return 0, fmt.Errorf("profile: unknown kind %q", s)
	}
}

// Profile is a continuous query registered with the alerting service.
type Profile struct {
	// ID is unique across the whole system (home server + counter).
	ID string
	// Kind is user or auxiliary.
	Kind Kind
	// Owner identifies who is notified: a client ID for user profiles, a
	// server name for auxiliary profiles.
	Owner string
	// HomeServer is the server where the profile was defined and resides
	// (user profiles never leave it, paper §4.2).
	HomeServer string
	// Expr is the macro-level Boolean expression. For a composite profile
	// it holds the union of the primitive steps (Composite.Union), which is
	// what routing layers advertise; the temporal structure itself lives in
	// Composite and is evaluated by the stateful engine, not per event.
	Expr Expr
	// Composite, when non-nil, marks a composite/temporal profile and
	// carries its operator structure (sequence, count or digest).
	Composite *Composite
	// CompositeOf marks an engine-derived step profile: it names the parent
	// composite profile whose state machine consumes this step's matches.
	// Step profiles are runtime-internal — they never travel the wire.
	CompositeOf string
	// CompositeStep is the zero-based step index of a step profile.
	CompositeStep int
	// Super is, for auxiliary profiles, the super-collection on whose
	// behalf the profile watches; events matching the profile are forwarded
	// to Super's host and renamed to Super.
	Super event.QName
	// Sub is, for auxiliary profiles, the watched sub-collection.
	Sub event.QName
	// Class is the QoS priority class of the subscription (realtime /
	// normal / bulk). The zero value is qos.ClassNormal, so untagged
	// profiles keep their pre-QoS behaviour. The class travels the wire
	// with the profile (MsgSubscribe, replication, persistence) and is
	// stamped onto every notification the profile produces.
	Class qos.Class
	// CreatedAt timestamps profile definition.
	CreatedAt time.Time
}

// Validation errors.
var (
	ErrNoExpr   = errors.New("profile: missing expression")
	ErrNoOwner  = errors.New("profile: missing owner")
	ErrNoID     = errors.New("profile: missing id")
	ErrAuxShape = errors.New("profile: auxiliary profile requires super and sub collections")
)

// Validate checks structural invariants.
func (p *Profile) Validate() error {
	if p.ID == "" {
		return ErrNoID
	}
	if p.Owner == "" {
		return ErrNoOwner
	}
	if p.Expr == nil {
		return ErrNoExpr
	}
	if p.Composite != nil {
		if p.Kind != KindUser {
			return fmt.Errorf("%w: composite profiles must be user profiles", ErrCompositeShape)
		}
		if err := p.Composite.Validate(); err != nil {
			return err
		}
	}
	if p.Kind == KindAuxiliary {
		if p.Super.IsZero() || p.Sub.IsZero() {
			return ErrAuxShape
		}
		// Paper §7: "Each forwarded collection profile is itself unique; it
		// exists on only one server ... and refers only to one other host."
		if p.Super == p.Sub {
			return fmt.Errorf("%w: super equals sub (%s)", ErrAuxShape, p.Super)
		}
	}
	return nil
}

// Matches reports whether ev matches this profile, with the matching doc IDs.
func (p *Profile) Matches(ev *event.Event) (bool, []string) {
	return MatchEvent(p.Expr, ev)
}

// NewUser builds a user profile.
func NewUser(id, owner, homeServer string, expr Expr) *Profile {
	return &Profile{
		ID:         id,
		Kind:       KindUser,
		Owner:      owner,
		HomeServer: homeServer,
		Expr:       expr,
		CreatedAt:  time.Now(),
	}
}

// NewComposite builds a composite (temporal) user profile. Expr is set to
// the union of the primitive steps so routing layers can treat the profile
// like any other.
func NewComposite(id, owner, homeServer string, c *Composite) (*Profile, error) {
	if c == nil {
		return nil, ErrCompositeShape
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Profile{
		ID:         id,
		Kind:       KindUser,
		Owner:      owner,
		HomeServer: homeServer,
		Expr:       c.Union(),
		Composite:  c,
		CreatedAt:  time.Now(),
	}, nil
}

// IsComposite reports whether the profile carries a temporal wrapper.
func (p *Profile) IsComposite() bool { return p.Composite != nil }

// StepProfiles derives the primitive step profiles of a composite profile:
// one ordinary profile per step, marked with CompositeOf/CompositeStep so
// the match path routes their hits to the composite engine instead of
// delivering them directly. Step IDs are "<parent>#<step>", which keeps
// them unique and sorts them in step order.
func (p *Profile) StepProfiles() []*Profile {
	if p.Composite == nil {
		return nil
	}
	out := make([]*Profile, 0, len(p.Composite.Steps))
	for i, step := range p.Composite.Steps {
		out = append(out, &Profile{
			ID:            fmt.Sprintf("%s#%d", p.ID, i),
			Kind:          KindUser,
			Owner:         p.Owner,
			HomeServer:    p.HomeServer,
			Expr:          Clone(step),
			CompositeOf:   p.ID,
			CompositeStep: i,
			Class:         p.Class,
			CreatedAt:     p.CreatedAt,
		})
	}
	return out
}

// ExprText renders the profile's expression in the profile language: the
// composite wrapper text for composite profiles, the plain expression
// otherwise. This is the form that travels the wire.
func (p *Profile) ExprText() string {
	if p.Composite != nil {
		return p.Composite.String()
	}
	if p.Expr == nil {
		return ""
	}
	return p.Expr.String()
}

// NewAuxiliary builds the auxiliary profile a super-collection's server
// forwards to a sub-collection's server (paper §4.2): it matches any event
// about the sub-collection so the sub's server knows to forward such events
// to the super-collection's host.
func NewAuxiliary(id string, super, sub event.QName) *Profile {
	expr := NewAnd(
		&Pred{Attr: "collection", Op: OpEq, Value: sub.String()},
	)
	return &Profile{
		ID:         id,
		Kind:       KindAuxiliary,
		Owner:      super.Host,
		HomeServer: sub.Host,
		Expr:       expr,
		Super:      super,
		Sub:        sub,
		CreatedAt:  time.Now(),
	}
}

// xmlProfile is the wire form; the expression travels as profile-language
// text, which keeps the format readable and versionable.
type xmlProfile struct {
	XMLName    xml.Name     `xml:"Profile"`
	ID         string       `xml:"ID"`
	Kind       string       `xml:"Kind"`
	Owner      string       `xml:"Owner"`
	HomeServer string       `xml:"HomeServer,omitempty"`
	Expr       string       `xml:"Expr"`
	Class      string       `xml:"Class,omitempty"`
	Super      *event.QName `xml:"Super,omitempty"`
	Sub        *event.QName `xml:"Sub,omitempty"`
	CreatedAt  time.Time    `xml:"CreatedAt"`
}

// MarshalXMLBytes renders the profile as a standalone XML fragment.
func (p *Profile) MarshalXMLBytes() ([]byte, error) {
	if p.Expr == nil {
		return nil, ErrNoExpr
	}
	w := xmlProfile{
		ID:         p.ID,
		Kind:       p.Kind.String(),
		Owner:      p.Owner,
		HomeServer: p.HomeServer,
		Expr:       p.ExprText(),
		CreatedAt:  p.CreatedAt.UTC(),
	}
	if p.Class != qos.ClassNormal {
		w.Class = p.Class.String()
	}
	if !p.Super.IsZero() {
		super := p.Super
		w.Super = &super
	}
	if !p.Sub.IsZero() {
		sub := p.Sub
		w.Sub = &sub
	}
	out, err := xml.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("profile: marshal %s: %w", p.ID, err)
	}
	return out, nil
}

// UnmarshalXMLBytes parses a profile fragment, re-parsing the expression.
func UnmarshalXMLBytes(raw []byte) (*Profile, error) {
	var w xmlProfile
	if err := xml.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("profile: unmarshal: %w", err)
	}
	kind, err := ParseKind(w.Kind)
	if err != nil {
		return nil, err
	}
	expr, comp, err := ParseText(w.Expr)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", w.ID, err)
	}
	// A class this build does not know degrades to normal rather than
	// failing: replication apply and snapshot restore must survive a newer
	// peer's classes (strict validation belongs at the user-facing
	// subscribe surface, which takes a typed Class).
	class, _ := qos.ParseClass(w.Class)
	p := &Profile{
		ID:         w.ID,
		Kind:       kind,
		Owner:      w.Owner,
		HomeServer: w.HomeServer,
		Expr:       expr,
		Composite:  comp,
		Class:      class,
		CreatedAt:  w.CreatedAt,
	}
	if w.Super != nil {
		p.Super = *w.Super
	}
	if w.Sub != nil {
		p.Sub = *w.Sub
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromSearchQuery converts an interactive search into a continuous query
// (paper §5/§8: "smooth transformation of Greenstone search queries into
// profiles"): the profile fires for future documents of the collection that
// match the query in the given field.
func FromSearchQuery(id, owner, homeServer string, coll event.QName, field, query string) (*Profile, error) {
	if strings.TrimSpace(query) == "" {
		return nil, fmt.Errorf("profile: empty search query")
	}
	if field == "" {
		field = "text"
	}
	expr := NewAnd(
		&Pred{Attr: "collection", Op: OpEq, Value: coll.String()},
		&Pred{Attr: field, Op: OpQuery, Value: query},
	)
	p := NewUser(id, owner, homeServer, expr)
	// Re-parse through the language to validate the sub-query eagerly.
	if _, err := Parse(expr.String()); err != nil {
		return nil, err
	}
	return p, nil
}

// WatchThis builds the identity-centred observation profile behind the
// paper's "watch this" button: it fires whenever any of the given documents
// change in the collection.
func WatchThis(id, owner, homeServer string, coll event.QName, docIDs []string) (*Profile, error) {
	if len(docIDs) == 0 {
		return nil, fmt.Errorf("profile: watch-this requires at least one document id")
	}
	expr := NewAnd(
		&Pred{Attr: "collection", Op: OpEq, Value: coll.String()},
		&Pred{Attr: "doc.id", Op: OpIn, Values: append([]string(nil), docIDs...)},
	)
	return NewUser(id, owner, homeServer, expr), nil
}
