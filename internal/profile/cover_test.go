package profile

import (
	"reflect"
	"strings"
	"testing"
)

func mustDNF(t *testing.T, src string) []Conjunction {
	t.Helper()
	d, err := ToDNF(MustParse(src))
	if err != nil {
		t.Fatalf("ToDNF(%q): %v", src, err)
	}
	return d
}

func TestPredImplies(t *testing.T) {
	cases := []struct {
		p, q string // single-predicate profile expressions
		want bool
	}{
		// Identity and equality.
		{`collection = "H.X"`, `collection = "H.X"`, true},
		{`collection = "h.x"`, `collection = "H.X"`, true}, // case folded
		{`collection = "H.X"`, `collection = "H.Y"`, false},
		// Different attributes are incomparable.
		{`collection = "H.X"`, `host = "H.X"`, false},
		// In / Eq interplay.
		{`doc.id in ("a")`, `doc.id = "a"`, true},
		{`doc.id in ("a", "b")`, `doc.id = "a"`, false},
		{`doc.id = "a"`, `doc.id in ("a", "b")`, true},
		{`doc.id in ("a", "b")`, `doc.id in ("b", "a", "c")`, true},
		{`doc.id in ("a", "d")`, `doc.id in ("a", "b")`, false},
		// Substring family.
		{`dc.Title = "music history"`, `dc.Title contains "music"`, true},
		{`dc.Title contains "music history"`, `dc.Title contains "music"`, true},
		{`dc.Title startswith "music"`, `dc.Title contains "usi"`, true},
		{`dc.Title endswith "history"`, `dc.Title contains "history"`, true},
		{`dc.Title contains "music"`, `dc.Title contains "music history"`, false},
		{`dc.Title = "music"`, `dc.Title startswith "mus"`, true},
		{`dc.Title startswith "music"`, `dc.Title startswith "mus"`, true},
		{`dc.Title startswith "mus"`, `dc.Title startswith "music"`, false},
		{`dc.Title = "jazz"`, `dc.Title endswith "azz"`, true},
		// Wildcards.
		{`dc.Title = "music"`, `dc.Title matches "mus*"`, true},
		{`dc.Title = "muzak"`, `dc.Title matches "mus*"`, false},
		// Existence.
		{`dc.Title = "x"`, `dc.Title exists`, true},
		{`dc.Title contains "x"`, `dc.Title exists`, true},
		{`dc.Title exists`, `dc.Title = "x"`, false},
		// != does not imply existence (it holds vacuously when absent).
		{`dc.Title != "x"`, `dc.Title exists`, false},
		// Ranges: equality pins the value.
		{`year = "1990"`, `year < "2000"`, true},
		{`year = "2010"`, `year < "2000"`, false},
		{`year in ("1990", "1995")`, `year <= "1995"`, true},
		// Range-vs-range reasoning is deliberately refused (mixed
		// numeric/lexicographic evaluation breaks transitivity).
		{`year < "1990"`, `year < "2000"`, false},
		// Negation: ¬A ⇒ ¬B iff B ⇒ A.
		{`NOT dc.Title contains "music"`, `NOT dc.Title = "music history"`, true},
		{`NOT dc.Title = "music"`, `NOT dc.Title contains "music"`, false},
		{`NOT collection = "H.X"`, `NOT collection = "H.X"`, true},
		{`NOT collection = "H.X"`, `collection = "H.X"`, false},
		// != is NOT = in disguise, whichever spelling is used.
		{`collection != "H.X"`, `NOT collection = "H.X"`, true},
		{`NOT collection = "H.X"`, `collection != "H.X"`, true},
	}
	for _, tc := range cases {
		p := singlePred(t, tc.p)
		q := singlePred(t, tc.q)
		if got := PredImplies(p, q); got != tc.want {
			t.Errorf("PredImplies(%s ⇒ %s) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func singlePred(t *testing.T, src string) *Pred {
	t.Helper()
	d, err := ToDNF(MustParse(src))
	if err != nil || len(d) != 1 || len(d[0]) != 1 {
		t.Fatalf("%q is not a single predicate (%v)", src, err)
	}
	return d[0][0]
}

func TestConjCovers(t *testing.T) {
	cases := []struct {
		general, specific string
		want              bool
	}{
		// More predicates = more specific; fewer = more general.
		{`collection = "H.X"`,
			`collection = "H.X" AND event.type = "collection-rebuilt"`, true},
		{`collection = "H.X" AND event.type = "collection-rebuilt"`,
			`collection = "H.X"`, false},
		// Disjoint attribute sets: neither side constrains the other's
		// attribute, so neither covers (except the trivially empty one).
		{`collection = "H.X"`, `event.type = "documents-added"`, false},
		{`event.type = "documents-added"`, `collection = "H.X"`, false},
		// Looser value constraint covers tighter one.
		{`dc.Title contains "mus"`, `dc.Title = "music"`, true},
		{`doc.id in ("a", "b", "c")`, `doc.id in ("a", "b")`, true},
		// Negation must align.
		{`NOT collection = "H.X"`, `NOT collection = "H.X" AND host = "H"`, true},
		{`NOT collection = "H.X"`, `collection = "H.Y"`, false},
	}
	for _, tc := range cases {
		g := mustDNF(t, tc.general)
		s := mustDNF(t, tc.specific)
		if len(g) != 1 || len(s) != 1 {
			t.Fatalf("test case is not conjunctive: %q / %q", tc.general, tc.specific)
		}
		if got := ConjCovers(g[0], s[0]); got != tc.want {
			t.Errorf("ConjCovers(%q ⊇ %q) = %v, want %v", tc.general, tc.specific, got, tc.want)
		}
	}
	// The empty conjunction (⊤) covers everything, including negations and
	// event-only conjunctions; nothing non-empty covers it.
	top := Conjunction{}
	for _, src := range []string{
		`collection = "H.X"`,
		`NOT collection = "H.X"`,
		`event.type = "documents-added" AND host = "H"`,
	} {
		c := mustDNF(t, src)[0]
		if !ConjCovers(top, c) {
			t.Errorf("⊤ should cover %q", src)
		}
		if ConjCovers(c, top) {
			t.Errorf("%q should not cover ⊤", src)
		}
	}
}

func TestCoversDNF(t *testing.T) {
	cases := []struct {
		general, specific string
		want              bool
	}{
		{`collection = "H.X" OR collection = "H.Y"`, `collection = "H.X"`, true},
		{`collection = "H.X"`, `collection = "H.X" OR collection = "H.Y"`, false},
		{`collection = "H.X"`,
			`collection = "H.X" AND (event.type = "documents-added" OR event.type = "documents-removed")`, true},
		{`dc.Title contains "a" OR dc.Title contains "b"`,
			`dc.Title = "abc" OR dc.Title = "bcd"`, true},
	}
	for _, tc := range cases {
		if got := Covers(mustDNF(t, tc.general), mustDNF(t, tc.specific)); got != tc.want {
			t.Errorf("Covers(%q ⊇ %q) = %v, want %v", tc.general, tc.specific, got, tc.want)
		}
	}
	// The empty DNF matches nothing: covered by everything, covers only
	// itself.
	if !Covers(mustDNF(t, `collection = "H.X"`), nil) {
		t.Error("anything should cover the empty DNF")
	}
	if Covers(nil, mustDNF(t, `collection = "H.X"`)) {
		t.Error("the empty DNF should cover nothing")
	}
}

func TestDigestOfProjectsToEventAttrs(t *testing.T) {
	// Document predicates are dropped; the event-level scope remains.
	d := DigestOf(MustParse(`collection = "H.X" AND dc.Title contains "music"`))
	if got := d.Canonical(); got != `collection = "H.X"` {
		t.Fatalf("digest = %q", got)
	}
	if !d.Matches(map[string]string{"collection": "h.x", "event.type": "documents-added"}) {
		t.Error("digest should match its collection")
	}
	if d.Matches(map[string]string{"collection": "h.y"}) {
		t.Error("digest should not match another collection")
	}

	// A conjunction with no event-level predicate widens to ⊤.
	if d := DigestOf(MustParse(`dc.Title contains "music"`)); !d.IsTop() {
		t.Errorf("document-only profile digest = %q, want ⊤", d.Canonical())
	}

	// Negated event-level predicates survive projection and keep routing
	// sound AND selective.
	neg := DigestOf(MustParse(`NOT collection = "H.X" AND event.type = "documents-added"`))
	if neg.Matches(map[string]string{"collection": "h.x", "event.type": "documents-added"}) {
		t.Error("negated digest matched the excluded collection")
	}
	if !neg.Matches(map[string]string{"collection": "h.y", "event.type": "documents-added"}) {
		t.Error("negated digest should match other collections")
	}

	// Retrieval sub-queries are not routable, even over event attrs.
	if d := DigestOf(MustParse(`collection query "whale AND songs"`)); !d.IsTop() {
		t.Errorf("query digest = %q, want ⊤", d.Canonical())
	}
}

func TestNormalizeDigestCoveringPrune(t *testing.T) {
	d := MergeDigests(
		DigestOf(MustParse(`collection = "H.X" AND event.type = "collection-rebuilt"`)),
		DigestOf(MustParse(`collection = "H.X"`)), // covers the first
		DigestOf(MustParse(`collection = "H.Y"`)),
	)
	want := `collection = "H.X" OR collection = "H.Y"`
	if got := d.Canonical(); got != want {
		t.Fatalf("pruned digest = %q, want %q", got, want)
	}
	// Normalisation is order-independent: canonical forms compare equal.
	d2 := MergeDigests(
		DigestOf(MustParse(`collection = "H.Y"`)),
		DigestOf(MustParse(`collection = "H.X"`)),
		DigestOf(MustParse(`event.type = "collection-rebuilt" AND collection = "H.X"`)),
	)
	if d.Canonical() != d2.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", d.Canonical(), d2.Canonical())
	}
	// ⊤ absorbs everything.
	if got := MergeDigests(d, TopDigest()); !got.IsTop() || len(got) != 1 {
		t.Errorf("⊤ merge = %q", got.Strings())
	}
	// Duplicates collapse.
	dup := MergeDigests(DigestOf(MustParse(`collection = "H.X"`)), DigestOf(MustParse(`collection = "h.x"`)))
	if len(dup) != 1 {
		t.Errorf("duplicate conjunctions kept: %q", dup.Strings())
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	for _, src := range []string{
		`collection = "H.X" AND event.type = "collection-rebuilt"`,
		`collection = "H.X" OR (collection = "H.Y" AND NOT event.type = "documents-removed")`,
		`dc.Title contains "music"`, // projects to ⊤
	} {
		d := DigestOf(MustParse(src))
		back, err := ParseDigest(d.Strings())
		if err != nil {
			t.Fatalf("ParseDigest(%v): %v", d.Strings(), err)
		}
		if back.Canonical() != d.Canonical() {
			t.Errorf("round trip of %q: %q != %q", src, back.Canonical(), d.Canonical())
		}
	}
	// The empty digest (no interests) round-trips too.
	empty, err := ParseDigest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Canonical() != "" || empty.Matches(map[string]string{"collection": "h.x"}) {
		t.Errorf("empty digest misbehaves: %q", empty.Canonical())
	}
	if _, err := ParseDigest([]string{`collection = `}); err == nil {
		t.Error("malformed conjunction should fail to parse")
	}
	if !reflect.DeepEqual(TopDigest().Strings(), []string{TopConjString}) {
		t.Errorf("⊤ wire form = %v", TopDigest().Strings())
	}
}

func TestDigestMatchesEventOnlyConjunction(t *testing.T) {
	// An event-only profile (no collection constraint) must still route
	// precisely by its event attributes.
	d := DigestOf(MustParse(`event.type = "collection-removed"`))
	if strings.Contains(d.Canonical(), TopConjString) {
		t.Fatalf("event-only profile should not widen to ⊤: %q", d.Canonical())
	}
	if !d.Matches(map[string]string{"collection": "anything", "event.type": "collection-removed"}) {
		t.Error("should match its event type on any collection")
	}
	if d.Matches(map[string]string{"collection": "anything", "event.type": "documents-added"}) {
		t.Error("should not match other event types")
	}
}
