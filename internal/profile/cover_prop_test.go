package profile

import (
	"math/rand"
	"testing"
)

// Property: Covers is sound. Whenever Covers(general, specific) answers
// true, every evaluation context matching specific must match general —
// a false positive here would prune a routing link that still has
// interested subscribers behind it and lose notifications (cover.go's
// contract: conservative, sound, not complete).
//
// The generator draws random DNF pairs over the event-level attributes
// and, to keep the test from being vacuous (random pairs rarely cover),
// also constructs covering pairs by widening: dropping predicates from a
// conjunction and appending extra conjunctions both enlarge the match
// set, so the widened DNF semantically covers the original.

var propAttrs = []string{"collection", "host", "origin", "event.type"}

var propValues = []string{"a", "ab", "abc", "b", "ba", "x.y", "1", "2", "10"}

func genPred(rng *rand.Rand) *Pred {
	p := &Pred{Attr: propAttrs[rng.Intn(len(propAttrs))]}
	switch rng.Intn(8) {
	case 0:
		p.Op, p.Value = OpEq, propValues[rng.Intn(len(propValues))]
	case 1:
		p.Op, p.Value = OpNe, propValues[rng.Intn(len(propValues))]
	case 2:
		p.Op = OpIn
		for n := 1 + rng.Intn(3); n > 0; n-- {
			p.Values = append(p.Values, propValues[rng.Intn(len(propValues))])
		}
	case 3:
		p.Op, p.Value = OpContains, propValues[rng.Intn(len(propValues))]
	case 4:
		p.Op, p.Value = OpPrefix, propValues[rng.Intn(len(propValues))]
	case 5:
		p.Op, p.Value = OpSuffix, propValues[rng.Intn(len(propValues))]
	case 6:
		p.Op = OpExists
	case 7:
		p.Op, p.Value = OpLe, propValues[rng.Intn(len(propValues))]
	}
	if rng.Intn(5) == 0 {
		p.Neg = true
	}
	return p
}

func genConj(rng *rand.Rand) Conjunction {
	c := make(Conjunction, 1+rng.Intn(3))
	for i := range c {
		c[i] = genPred(rng)
	}
	return c
}

func genDNF(rng *rand.Rand) []Conjunction {
	d := make([]Conjunction, 1+rng.Intn(3))
	for i := range d {
		d[i] = genConj(rng)
	}
	return d
}

// widen returns a DNF that semantically covers d: each conjunction loses a
// random (possibly empty) suffix of its predicates, and extra conjunctions
// may be appended.
func widen(rng *rand.Rand, d []Conjunction) []Conjunction {
	out := make([]Conjunction, 0, len(d)+1)
	for _, c := range d {
		keep := rng.Intn(len(c) + 1)
		out = append(out, append(Conjunction(nil), c[:keep]...))
	}
	for n := rng.Intn(2); n > 0; n-- {
		out = append(out, genConj(rng))
	}
	return out
}

func genAttrs(rng *rand.Rand) map[string]string {
	attrs := make(map[string]string)
	for _, a := range propAttrs {
		if rng.Intn(4) > 0 { // leave some attributes unset
			attrs[a] = propValues[rng.Intn(len(propValues))]
		}
	}
	return attrs
}

func dnfMatches(d []Conjunction, attrs map[string]string) bool {
	ctx := &EvalContext{Attrs: attrs}
	for _, c := range d {
		if EvalConjunction(c, ctx) {
			return true
		}
	}
	return false
}

func TestCoversSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1405))
	const pairs = 2000
	coveringPairs := 0
	for i := 0; i < pairs; i++ {
		specific := genDNF(rng)
		var general []Conjunction
		if i%2 == 0 {
			general = genDNF(rng) // random pair: usually not covering
		} else {
			general = widen(rng, specific) // constructed covering pair
		}
		if !Covers(general, specific) {
			continue // false negatives are allowed (conservative relation)
		}
		coveringPairs++
		for probe := 0; probe < 200; probe++ {
			attrs := genAttrs(rng)
			if dnfMatches(specific, attrs) && !dnfMatches(general, attrs) {
				t.Fatalf("pair %d: Covers answered true but attrs %v match specific only\nspecific: %v\ngeneral: %v",
					i, attrs, specific, general)
			}
		}
	}
	// The widened half should produce plenty of detected covers; if the
	// detector ever stops recognising them the property test goes vacuous.
	if coveringPairs < pairs/10 {
		t.Fatalf("only %d of %d pairs were detected as covering — test is near-vacuous", coveringPairs, pairs)
	}
}

// Property: covering detected on the widened construction implies the
// widened DNF also covers transitively through a second widening
// (covering is a preorder on the pairs the detector accepts).
func TestCoversTransitiveOnDetectedPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	checked := 0
	for i := 0; i < 1000; i++ {
		s := genDNF(rng)
		mid := widen(rng, s)
		top := widen(rng, mid)
		if Covers(mid, s) && Covers(top, mid) {
			checked++
			if !Covers(top, s) {
				// Not a soundness bug, but transitivity through dropped-
				// predicate widening should hold for this generator: a
				// failure means the implication lattice regressed.
				t.Fatalf("iteration %d: covering not transitive\ns: %v\nmid: %v\ntop: %v", i, s, mid, top)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d transitive triples checked — generator drifted", checked)
	}
}
