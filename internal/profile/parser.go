package profile

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/gsalert/gsalert/internal/index"
)

// Parse parses the profile language:
//
//	expr   = or
//	or     = and { "OR" and }
//	and    = unary { "AND" unary }
//	unary  = ["NOT"] atom
//	atom   = "(" expr ")" | pred
//	pred   = attr op operand | attr "exists" | attr "in" "(" list ")"
//	attr   = ident { "." ident }
//	op     = "=" | "!=" | "<" | "<=" | ">" | ">=" | "contains" |
//	         "startswith" | "endswith" | "matches" | "query"
//	operand= quoted string | bare word/number
//	list   = operand { "," operand }
//
// Keywords are case-insensitive. OpQuery operands are validated against the
// retrieval query grammar at parse time so malformed sub-queries are caught
// when the profile is defined, not when the first event arrives.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("profile: trailing input at %q", p.peek().text)
	}
	if e == nil {
		return nil, fmt.Errorf("profile: empty expression")
	}
	return e, nil
}

// MustParse panics on error; for tests and compile-time-constant profiles.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokenKind int

const (
	tokWord tokenKind = iota + 1
	tokString
	tokSymbol // ( ) , = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == ',':
			toks = append(toks, token{kind: tokSymbol, text: string(r), pos: i})
			i++
		case r == '=':
			toks = append(toks, token{kind: tokSymbol, text: "=", pos: i})
			i++
		case r == '!':
			if i+1 < len(runes) && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("profile: stray '!' at %d", i)
			}
		case r == '<' || r == '>':
			text := string(r)
			if i+1 < len(runes) && runes[i+1] == '=' {
				text += "="
				i++
			}
			toks = append(toks, token{kind: tokSymbol, text: text, pos: i})
			i++
		case r == '"' || r == '\'':
			quote := r
			j := i + 1
			var b strings.Builder
			closed := false
			for j < len(runes) {
				c := runes[j]
				if c == '\\' && j+1 < len(runes) {
					b.WriteRune(runes[j+1])
					j += 2
					continue
				}
				if c == quote {
					closed = true
					j++
					break
				}
				b.WriteRune(c)
				j++
			}
			if !closed {
				return nil, fmt.Errorf("profile: unterminated string starting at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: i})
			i = j
		default:
			j := i
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("profile: unexpected character %q at %d", string(r), i)
			}
			toks = append(toks, token{kind: tokWord, text: string(runes[i:j]), pos: i})
			i = j
		}
	}
	return toks, nil
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' || r == '_' || r == '-' || r == '*' || r == '?' || r == ':' || r == '/'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.done() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Expr{left}
	for p.peekKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return NewOr(children...), nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Expr{left}
	for p.peekKeyword("AND") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return NewAnd(children...), nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peekKeyword("NOT") {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NewNot(child), nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "(" {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		closing := p.next()
		if closing.kind != tokSymbol || closing.text != ")" {
			return nil, fmt.Errorf("profile: missing ')' at %d", t.pos)
		}
		return e, nil
	}
	return p.parsePred()
}

var wordOps = map[string]Op{
	"contains":   OpContains,
	"startswith": OpPrefix,
	"endswith":   OpSuffix,
	"matches":    OpMatches,
	"in":         OpIn,
	"query":      OpQuery,
	"exists":     OpExists,
}

var symbolOps = map[string]Op{
	"=":  OpEq,
	"!=": OpNe,
	"<":  OpLt,
	"<=": OpLe,
	">":  OpGt,
	">=": OpGe,
}

func (p *parser) parsePred() (Expr, error) {
	attrTok := p.next()
	if attrTok.kind != tokWord {
		return nil, fmt.Errorf("profile: expected attribute name at %d, got %q", attrTok.pos, attrTok.text)
	}
	if strings.EqualFold(attrTok.text, "AND") || strings.EqualFold(attrTok.text, "OR") || strings.EqualFold(attrTok.text, "NOT") {
		return nil, fmt.Errorf("profile: operator %q where attribute expected at %d", attrTok.text, attrTok.pos)
	}
	attr := attrTok.text

	opTok := p.next()
	var op Op
	switch opTok.kind {
	case tokSymbol:
		var ok bool
		op, ok = symbolOps[opTok.text]
		if !ok {
			return nil, fmt.Errorf("profile: expected operator after %q, got %q", attr, opTok.text)
		}
	case tokWord:
		var ok bool
		op, ok = wordOps[strings.ToLower(opTok.text)]
		if !ok {
			return nil, fmt.Errorf("profile: unknown operator %q after %q", opTok.text, attr)
		}
	default:
		return nil, fmt.Errorf("profile: expected operator after %q", attr)
	}

	pred := &Pred{Attr: attr, Op: op}
	switch op {
	case OpExists:
		// No operand.
	case OpIn:
		open := p.next()
		if open.kind != tokSymbol || open.text != "(" {
			return nil, fmt.Errorf("profile: 'in' requires a parenthesised list after %q", attr)
		}
		for {
			v := p.next()
			if v.kind != tokString && v.kind != tokWord {
				return nil, fmt.Errorf("profile: expected value in 'in' list for %q, got %q", attr, v.text)
			}
			pred.Values = append(pred.Values, v.text)
			sep := p.next()
			if sep.kind == tokSymbol && sep.text == "," {
				continue
			}
			if sep.kind == tokSymbol && sep.text == ")" {
				break
			}
			return nil, fmt.Errorf("profile: expected ',' or ')' in 'in' list for %q, got %q", attr, sep.text)
		}
		if len(pred.Values) == 0 {
			return nil, fmt.Errorf("profile: empty 'in' list for %q", attr)
		}
	default:
		v := p.next()
		if v.kind != tokString && v.kind != tokWord {
			return nil, fmt.Errorf("profile: expected operand for %q %s, got %q", attr, op, v.text)
		}
		pred.Value = v.text
		if op == OpQuery {
			q, err := index.ParseQuery(v.text)
			if err != nil {
				return nil, fmt.Errorf("profile: invalid sub-query for %q: %w", attr, err)
			}
			pred.compiledQuery = q
		}
	}
	return pred, nil
}
