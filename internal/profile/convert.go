package profile

import (
	"strings"

	"github.com/gsalert/gsalert/internal/event"
)

// CollectionCover computes a sound collection scope for an expression: a
// set of qualified collection names such that the expression can only match
// events about one of them. ok is false when no such finite cover exists
// (some DNF conjunction lacks a positive `collection = ...` predicate), in
// which case the profile is interest-unconstrained and matching events may
// come from any collection.
//
// The cover drives the multicast routing optimisation: a server only needs
// to receive events for collections covering its profiles (paper §6: "the
// GDS supports broadcasting and multicasting").
func CollectionCover(e Expr) (collections []string, ok bool) {
	conjunctions, err := ToDNF(e)
	if err != nil {
		return nil, false
	}
	seen := make(map[string]bool)
	for _, c := range conjunctions {
		var names []string
		for _, p := range c {
			if p.Attr == "collection" && p.Op == OpEq && !p.Neg {
				names = append(names, strings.ToLower(p.Value))
			}
			// `collection in (...)` also yields a finite cover.
			if p.Attr == "collection" && p.Op == OpIn && !p.Neg {
				for _, v := range p.Values {
					names = append(names, strings.ToLower(v))
				}
			}
		}
		if len(names) == 0 {
			return nil, false
		}
		// A conjunction with several collection constraints can only match
		// if they agree; any one of them is a sound cover entry, and using
		// all keeps the cover conservative.
		for _, n := range names {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sortStrings(out)
	return out, true
}

// SearchEquivalent inverts FromSearchQuery (paper §8 future work: "a smooth
// transformation of Greenstone search queries into profiles and vice
// versa"): if the profile has the shape of a continuous search —
// a collection constraint plus one retrieval sub-query (or one contains
// predicate) — it returns the interactive search that would produce the
// same documents. ok is false for profiles without a search equivalent.
func SearchEquivalent(p *Profile) (coll event.QName, field, query string, ok bool) {
	and, isAnd := p.Expr.(*And)
	var preds []*Pred
	if isAnd {
		for _, c := range and.Children {
			pr, isPred := c.(*Pred)
			if !isPred {
				return event.QName{}, "", "", false
			}
			preds = append(preds, pr)
		}
	} else if pr, isPred := p.Expr.(*Pred); isPred {
		preds = []*Pred{pr}
	} else {
		return event.QName{}, "", "", false
	}

	var collPred, queryPred *Pred
	for _, pr := range preds {
		if pr.Neg {
			return event.QName{}, "", "", false
		}
		switch {
		case pr.Attr == "collection" && pr.Op == OpEq:
			if collPred != nil {
				return event.QName{}, "", "", false
			}
			collPred = pr
		case pr.Op == OpQuery || pr.Op == OpContains:
			if queryPred != nil {
				return event.QName{}, "", "", false
			}
			queryPred = pr
		case pr.Attr == "event.type" && pr.Op == OpEq:
			// Event-type narrowing does not change the retrieval view.
		default:
			return event.QName{}, "", "", false
		}
	}
	if collPred == nil || queryPred == nil {
		return event.QName{}, "", "", false
	}
	qn, err := event.ParseQName(collPred.Value)
	if err != nil {
		return event.QName{}, "", "", false
	}
	field = queryPred.Attr
	if field == "text" {
		field = ""
	}
	return qn, field, queryPred.Value, true
}
