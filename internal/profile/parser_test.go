package profile

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSimplePredicates(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`collection = "Hamilton.D"`, `collection = "Hamilton.D"`},
		{`dc.Title contains "music"`, `dc.Title contains "music"`},
		{`dc.Creator != "Smith"`, `dc.Creator != "Smith"`},
		{`year >= 1990`, `year >= "1990"`},
		{`year < "2000"`, `year < "2000"`},
		{`dc.Title matches "mus*"`, `dc.Title matches "mus*"`},
		{`dc.Title startswith "The"`, `dc.Title startswith "The"`},
		{`dc.Title endswith "Zealand"`, `dc.Title endswith "Zealand"`},
		{`doc.id in ("d1", "d2")`, `doc.id in ("d1", "d2")`},
		{`text query "whale AND songs"`, `text query "whale AND songs"`},
		{`dc.Subject exists`, `dc.Subject exists`},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if e.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, e.String(), c.want)
		}
	}
}

func TestParseBooleanStructure(t *testing.T) {
	e, err := Parse(`collection = "H.D" AND (dc.Title contains "music" OR dc.Creator = "Smith")`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(*And)
	if !ok {
		t.Fatalf("root is %T, want *And", e)
	}
	if len(and.Children) != 2 {
		t.Fatalf("children = %d", len(and.Children))
	}
	if _, ok := and.Children[1].(*Or); !ok {
		t.Errorf("second child is %T, want *Or", and.Children[1])
	}
}

func TestParseNot(t *testing.T) {
	e, err := Parse(`NOT dc.Creator = "Smith"`)
	if err != nil {
		t.Fatal(err)
	}
	// NOT over a predicate folds into Pred.Neg.
	p, ok := e.(*Pred)
	if !ok || !p.Neg {
		t.Fatalf("got %T (%v), want negated *Pred", e, e)
	}
	e2, err := Parse(`NOT (a = "1" OR b = "2")`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(*Not); !ok {
		t.Fatalf("got %T, want *Not", e2)
	}
	// Double negation collapses.
	e3, err := Parse(`NOT NOT a = "1"`)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := e3.(*Pred); !ok || p.Neg {
		t.Fatalf("double negation: %v", e3)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`AND`,
		`collection =`,
		`collection`,
		`= "x"`,
		`collection ~ "x"`,
		`collection ! "x"`,
		`doc.id in ()`,
		`doc.id in ("a"`,
		`doc.id in "a"`,
		`(a = "1"`,
		`a = "1")`,
		`a = "unterminated`,
		`text query "AND OR"`, // invalid sub-query caught at parse time
		`a = "1" extra`,
		`NOT`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseQuotingAndEscapes(t *testing.T) {
	e, err := Parse(`dc.Title = "he said \"hi\""`)
	if err != nil {
		t.Fatal(err)
	}
	p := e.(*Pred)
	if p.Value != `he said "hi"` {
		t.Errorf("value = %q", p.Value)
	}
	// Single quotes work too.
	e2, err := Parse(`dc.Title = 'single'`)
	if err != nil {
		t.Fatal(err)
	}
	if e2.(*Pred).Value != "single" {
		t.Errorf("single-quoted value = %q", e2.(*Pred).Value)
	}
	// Render → parse round trip preserves the escaped value.
	e3, err := Parse(e.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e.String(), err)
	}
	if e3.(*Pred).Value != p.Value {
		t.Errorf("round trip value = %q", e3.(*Pred).Value)
	}
}

func TestParseRenderFixedPoint(t *testing.T) {
	inputs := []string{
		`collection = "Hamilton.D" AND (dc.Title contains "music" OR dc.Creator = "Smith")`,
		`NOT (a = "1" AND b = "2") OR c exists`,
		`doc.id in ("d1", "d2", "d3")`,
		`text query "whale AND (songs OR calls)"`,
		`a = "1" AND b = "2" AND c = "3"`,
		`a = "1" OR b = "2" OR c = "3"`,
	}
	for _, in := range inputs {
		e1, err := Parse(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		r1 := e1.String()
		e2, err := Parse(r1)
		if err != nil {
			t.Fatalf("reparse %q: %v", r1, err)
		}
		if e2.String() != r1 {
			t.Errorf("not fixed point:\n in: %s\n r1: %s\n r2: %s", in, r1, e2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("((")
}

func TestAttrs(t *testing.T) {
	e := MustParse(`collection = "X" AND (dc.Title contains "a" OR dc.Title contains "b") AND year >= 1990`)
	got := Attrs(e)
	want := []string{"collection", "dc.Title", "year"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Attrs = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	e := MustParse(`doc.id in ("a", "b")`)
	cp := Clone(e).(*Pred)
	cp.Values[0] = "MUTATED"
	if e.(*Pred).Values[0] != "a" {
		t.Error("Clone shares Values slice")
	}
}

func TestNewAndOrFlattening(t *testing.T) {
	a := &Pred{Attr: "x", Op: OpEq, Value: "1"}
	b := &Pred{Attr: "y", Op: OpEq, Value: "2"}
	c := &Pred{Attr: "z", Op: OpEq, Value: "3"}
	e := NewAnd(NewAnd(a, b), c)
	and, ok := e.(*And)
	if !ok || len(and.Children) != 3 {
		t.Fatalf("nested AND not flattened: %v", e)
	}
	if NewAnd() != nil {
		t.Error("empty NewAnd should be nil")
	}
	if NewAnd(a) != Expr(a) {
		t.Error("single-child NewAnd should collapse")
	}
	or := NewOr(NewOr(a, b), c).(*Or)
	if len(or.Children) != 3 {
		t.Errorf("nested OR not flattened: %v", or)
	}
}

func TestDNFTooLargeGuard(t *testing.T) {
	// (a1=1 OR a1=2) AND (a2=1 OR a2=2) AND ... 10 clauses -> 2^10 = 1024 > 512.
	var clauses []Expr
	for i := 0; i < 10; i++ {
		clauses = append(clauses, NewOr(
			&Pred{Attr: "a", Op: OpEq, Value: "1"},
			&Pred{Attr: "a", Op: OpEq, Value: "2"},
		))
	}
	_, err := ToDNF(NewAnd(clauses...))
	if !errors.Is(err, ErrDNFTooLarge) {
		t.Fatalf("err = %v, want ErrDNFTooLarge", err)
	}
}
