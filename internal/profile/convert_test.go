package profile

import (
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
)

func evTime() time.Time { return time.Unix(1117584000, 0) }

func TestCollectionCover(t *testing.T) {
	cases := []struct {
		expr string
		want string // comma-joined cover, "" means unbounded
		ok   bool
	}{
		{`collection = "H.C"`, "h.c", true},
		{`collection = "H.C" AND dc.Title contains "x"`, "h.c", true},
		{`collection = "A.B" OR collection = "C.D"`, "a.b,c.d", true},
		{`(collection = "A.B" AND x = "1") OR (collection = "C.D" AND y = "2")`, "a.b,c.d", true},
		{`collection in ("A.B", "C.D")`, "a.b,c.d", true},
		{`dc.Title contains "x"`, "", false},
		{`collection = "A.B" OR dc.Title contains "x"`, "", false},
		{`NOT collection = "A.B"`, "", false},
		{`collection != "A.B"`, "", false},
		{`collection startswith "A."`, "", false},
	}
	for _, c := range cases {
		cover, ok := CollectionCover(MustParse(c.expr))
		if ok != c.ok {
			t.Errorf("CollectionCover(%q) ok = %v, want %v", c.expr, ok, c.ok)
			continue
		}
		if got := strings.Join(cover, ","); got != c.want {
			t.Errorf("CollectionCover(%q) = %q, want %q", c.expr, got, c.want)
		}
	}
}

// Soundness property: if an event matches the profile, the event's
// collection is in the cover (when a cover exists).
func TestCollectionCoverSoundness(t *testing.T) {
	exprs := []string{
		`collection = "A.B"`,
		`collection = "A.B" OR collection = "C.D"`,
		`(collection = "A.B" AND dc.Creator = "x") OR collection in ("C.D", "E.F")`,
	}
	colls := []event.QName{
		{Host: "A", Collection: "B"}, {Host: "C", Collection: "D"},
		{Host: "E", Collection: "F"}, {Host: "X", Collection: "Y"},
	}
	for _, src := range exprs {
		e := MustParse(src)
		cover, ok := CollectionCover(e)
		if !ok {
			t.Fatalf("no cover for %q", src)
		}
		inCover := make(map[string]bool, len(cover))
		for _, c := range cover {
			inCover[c] = true
		}
		for _, qn := range colls {
			ev := event.New("e1", event.TypeCollectionRebuilt, qn, 1,
				[]event.DocRef{{ID: "d", Metadata: map[string][]string{"dc.Creator": {"x"}}}}, evTime())
			matched, _ := MatchEvent(e, ev)
			if matched && !inCover[strings.ToLower(qn.String())] {
				t.Errorf("%q matched %s outside its cover %v", src, qn, cover)
			}
		}
	}
}

func TestSearchEquivalentRoundTrip(t *testing.T) {
	coll := event.QName{Host: "Hamilton", Collection: "D"}
	p, err := FromSearchQuery("p1", "alice", "Hamilton", coll, "dc.Title", "music AND theory")
	if err != nil {
		t.Fatal(err)
	}
	gotColl, gotField, gotQuery, ok := SearchEquivalent(p)
	if !ok {
		t.Fatal("continuous-search profile has no search equivalent")
	}
	if gotColl != coll || gotField != "dc.Title" || gotQuery != "music AND theory" {
		t.Errorf("round trip = %v %q %q", gotColl, gotField, gotQuery)
	}
	// Full-text profiles report an empty field (search default).
	p2, _ := FromSearchQuery("p2", "alice", "Hamilton", coll, "", "whale")
	_, f2, q2, ok := SearchEquivalent(p2)
	if !ok || f2 != "" || q2 != "whale" {
		t.Errorf("text round trip: ok=%v field=%q query=%q", ok, f2, q2)
	}
}

func TestSearchEquivalentContains(t *testing.T) {
	p := NewUser("p1", "a", "H", MustParse(`collection = "H.C" AND dc.Title contains "music"`))
	coll, field, query, ok := SearchEquivalent(p)
	if !ok || coll.String() != "H.C" || field != "dc.Title" || query != "music" {
		t.Errorf("contains equivalent: %v %q %q %v", coll, field, query, ok)
	}
}

func TestSearchEquivalentRejects(t *testing.T) {
	bad := []string{
		`dc.Title contains "x"`,                                        // no collection
		`collection = "H.C"`,                                           // no query part
		`collection = "H.C" OR dc.Title contains "x"`,                  // disjunction
		`collection = "H.C" AND NOT dc.Title contains "x"`,             // negation
		`collection = "H.C" AND doc.id in ("a")`,                       // watch, not search
		`collection = "H.C" AND year >= 1990`,                          // range, not search
		`collection = "H.C" AND text query "a" AND text query "b"`,     // two queries
		`collection = "H.C" AND collection = "H.D" AND text query "a"`, // two collections
	}
	for _, src := range bad {
		p := NewUser("p", "a", "H", MustParse(src))
		if _, _, _, ok := SearchEquivalent(p); ok {
			t.Errorf("SearchEquivalent accepted %q", src)
		}
	}
	// Event-type narrowing is tolerated.
	p := NewUser("p", "a", "H", MustParse(
		`collection = "H.C" AND event.type = "documents-added" AND text query "x"`))
	if _, _, _, ok := SearchEquivalent(p); !ok {
		t.Error("event-type narrowing rejected")
	}
}
