package profile

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file extends the profile language of paper §5 with the composite and
// temporal operators of the surrounding alerting literature (Hinze's
// A-mediAS composite event work): the paper's profiles filter each event in
// isolation, while real alerting wants "X followed by Y within a week",
// "ten documents landed in this collection" and "one digest per day".
//
// A composite profile is a small wrapper grammar over ordinary (primitive)
// profile expressions:
//
//	SEQUENCE <expr> THEN <expr> { THEN <expr> } [ WITHIN <dur> ]
//	COUNT <n> OF <expr> [ WITHIN <dur> ]
//	DIGEST <expr> EVERY <dur>
//
// where <expr> is any primitive expression (parenthesise multi-clause
// steps for readability) and <dur> is a Go duration ("90m", "24h") or a
// day count ("7d"). Composite profiles are evaluated by the stateful
// engine in internal/composite, not per event: the primitive step
// expressions are registered with the ordinary filter engine, and their
// matches drive per-profile state machines.
//
// For routing (multicast covers, content digests) a composite profile
// advertises the union of its primitive steps — every event any step could
// match — so dissemination pruning stays sound without the directory
// knowing anything about temporal state.

// CompositeKind distinguishes the composite operators.
type CompositeKind int

// Composite operator kinds.
const (
	// CompositeSequence fires when its steps match in order (each step by a
	// distinct event), optionally within a time window.
	CompositeSequence CompositeKind = iota + 1
	// CompositeCount fires when its step has matched Count times,
	// optionally within a window anchored at the first match.
	CompositeCount
	// CompositeDigest never fires per event: matches accumulate and are
	// flushed as one synthesized notification every period.
	CompositeDigest
)

// String names the kind as used on the wire and in synthesized
// notifications.
func (k CompositeKind) String() string {
	switch k {
	case CompositeSequence:
		return "sequence"
	case CompositeCount:
		return "count"
	case CompositeDigest:
		return "digest"
	default:
		return fmt.Sprintf("composite-kind-%d", int(k))
	}
}

// Composite is the temporal wrapper of a composite profile.
type Composite struct {
	// Kind selects the operator.
	Kind CompositeKind
	// Steps are the primitive sub-expressions: two or more for a sequence,
	// exactly one for count and digest.
	Steps []Expr
	// Count is the accumulation threshold (CompositeCount only).
	Count int
	// Window bounds sequences and accumulations; zero means unbounded.
	Window time.Duration
	// Every is the digest flush period (CompositeDigest only).
	Every time.Duration
}

// Composite validation errors.
var (
	ErrCompositeShape = errors.New("profile: malformed composite")
)

// Validate checks the structural invariants of the composite wrapper.
func (c *Composite) Validate() error {
	for i, s := range c.Steps {
		if s == nil {
			return fmt.Errorf("%w: step %d is empty", ErrCompositeShape, i)
		}
	}
	switch c.Kind {
	case CompositeSequence:
		if len(c.Steps) < 2 {
			return fmt.Errorf("%w: sequence needs at least two steps", ErrCompositeShape)
		}
	case CompositeCount:
		if len(c.Steps) != 1 {
			return fmt.Errorf("%w: count takes exactly one step", ErrCompositeShape)
		}
		if c.Count < 1 {
			return fmt.Errorf("%w: count threshold must be positive", ErrCompositeShape)
		}
	case CompositeDigest:
		if len(c.Steps) != 1 {
			return fmt.Errorf("%w: digest takes exactly one step", ErrCompositeShape)
		}
		if c.Every <= 0 {
			return fmt.Errorf("%w: digest period must be positive", ErrCompositeShape)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrCompositeShape, int(c.Kind))
	}
	if c.Window < 0 {
		return fmt.Errorf("%w: negative window", ErrCompositeShape)
	}
	return nil
}

// Union returns the disjunction of the primitive steps: the widest
// primitive expression whose matches the composite could ever consume.
// Routing (multicast covers, content digests) advertises this union.
func (c *Composite) Union() Expr {
	cloned := make([]Expr, 0, len(c.Steps))
	for _, s := range c.Steps {
		cloned = append(cloned, Clone(s))
	}
	return NewOr(cloned...)
}

// String renders the composite in parseable form.
func (c *Composite) String() string {
	var b strings.Builder
	step := func(e Expr) {
		b.WriteString("(")
		b.WriteString(e.String())
		b.WriteString(")")
	}
	switch c.Kind {
	case CompositeSequence:
		b.WriteString("SEQUENCE ")
		for i, s := range c.Steps {
			if i > 0 {
				b.WriteString(" THEN ")
			}
			step(s)
		}
		if c.Window > 0 {
			b.WriteString(" WITHIN ")
			b.WriteString(c.Window.String())
		}
	case CompositeCount:
		fmt.Fprintf(&b, "COUNT %d OF ", c.Count)
		step(c.Steps[0])
		if c.Window > 0 {
			b.WriteString(" WITHIN ")
			b.WriteString(c.Window.String())
		}
	case CompositeDigest:
		b.WriteString("DIGEST ")
		step(c.Steps[0])
		b.WriteString(" EVERY ")
		b.WriteString(c.Every.String())
	}
	return b.String()
}

// compositeKeyword reports whether src opens with a composite operator.
func compositeKeyword(word string) bool {
	switch strings.ToUpper(word) {
	case "SEQUENCE", "COUNT", "DIGEST":
		return true
	}
	return false
}

// ParseText parses either language level: a primitive expression yields
// (expr, nil), a composite profile yields (union-of-steps, composite). The
// returned expression is always non-nil on success, so callers that only
// route (rather than evaluate) need not care which level they got.
//
// A leading SEQUENCE/COUNT/DIGEST word selects the composite grammar, but
// those words are not reserved: if the composite parse fails and the text
// is a valid primitive expression (e.g. `count = "5"`, an attribute that
// happens to be named like an operator), the primitive reading wins — so
// every profile that parsed before the composite grammar existed still
// parses the same way.
func ParseText(src string) (Expr, *Composite, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	if len(toks) > 0 && toks[0].kind == tokWord && compositeKeyword(toks[0].text) {
		p := &parser{toks: toks}
		c, cErr := p.parseComposite()
		if cErr == nil && !p.done() {
			cErr = fmt.Errorf("profile: trailing input at %q", p.peek().text)
		}
		if cErr == nil {
			cErr = c.Validate()
		}
		if cErr == nil {
			return c.Union(), c, nil
		}
		// Fall back to the primitive grammar; if that also fails, the
		// composite error is the informative one (the leading keyword says
		// what the author most plausibly meant).
		if e, pErr := Parse(src); pErr == nil {
			return e, nil, nil
		}
		return nil, nil, cErr
	}
	e, err := Parse(src)
	return e, nil, err
}

// MustParseComposite parses a composite profile text, panicking on error or
// on a primitive expression; for tests and compile-time-constant profiles.
func MustParseComposite(src string) *Composite {
	_, c, err := ParseText(src)
	if err != nil {
		panic(err)
	}
	if c == nil {
		panic(fmt.Sprintf("profile: %q is not a composite expression", src))
	}
	return c
}

// parseComposite parses the composite wrapper grammar; the leading keyword
// has been peeked but not consumed.
func (p *parser) parseComposite() (*Composite, error) {
	kw := p.next()
	switch strings.ToUpper(kw.text) {
	case "SEQUENCE":
		c := &Composite{Kind: CompositeSequence}
		for {
			step, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			c.Steps = append(c.Steps, step)
			if !p.peekKeyword("THEN") {
				break
			}
			p.next()
		}
		if err := p.parseWindow(c); err != nil {
			return nil, err
		}
		return c, nil
	case "COUNT":
		c := &Composite{Kind: CompositeCount}
		nTok := p.next()
		if nTok.kind != tokWord {
			return nil, fmt.Errorf("profile: COUNT requires a threshold, got %q", nTok.text)
		}
		n, err := strconv.Atoi(nTok.text)
		if err != nil {
			return nil, fmt.Errorf("profile: bad COUNT threshold %q", nTok.text)
		}
		c.Count = n
		if !p.peekKeyword("OF") {
			return nil, fmt.Errorf("profile: expected OF after COUNT %d", n)
		}
		p.next()
		step, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Steps = []Expr{step}
		if err := p.parseWindow(c); err != nil {
			return nil, err
		}
		return c, nil
	case "DIGEST":
		c := &Composite{Kind: CompositeDigest}
		step, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Steps = []Expr{step}
		if !p.peekKeyword("EVERY") {
			return nil, fmt.Errorf("profile: DIGEST requires EVERY <period>")
		}
		p.next()
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		c.Every = d
		return c, nil
	default:
		return nil, fmt.Errorf("profile: unknown composite operator %q", kw.text)
	}
}

// parseWindow consumes an optional WITHIN <dur> clause.
func (p *parser) parseWindow(c *Composite) error {
	if !p.peekKeyword("WITHIN") {
		return nil
	}
	p.next()
	d, err := p.parseDuration()
	if err != nil {
		return err
	}
	c.Window = d
	return nil
}

// parseDuration consumes a duration token: a Go duration ("90m", "24h",
// "1h30m") or a whole number of days ("7d").
func (p *parser) parseDuration() (time.Duration, error) {
	t := p.next()
	if t.kind != tokWord {
		return 0, fmt.Errorf("profile: expected a duration, got %q", t.text)
	}
	d, err := ParseWindow(t.text)
	if err != nil {
		return 0, err
	}
	return d, nil
}

// ParseWindow parses the duration literals of the composite grammar: Go
// durations plus a "d" suffix for days.
func ParseWindow(s string) (time.Duration, error) {
	if days, ok := strings.CutSuffix(s, "d"); ok {
		if n, err := strconv.Atoi(days); err == nil {
			if n < 0 {
				return 0, fmt.Errorf("profile: negative duration %q", s)
			}
			return time.Duration(n) * 24 * time.Hour, nil
		}
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("profile: bad duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("profile: negative duration %q", s)
	}
	return d, nil
}
