package profile

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/index"
)

func docCtx(fields map[string][]string, text string) *EvalContext {
	return &EvalContext{
		Attrs: map[string]string{
			"collection": "Hamilton.D",
			"host":       "Hamilton",
			"event.type": "documents-added",
			"origin":     "London.E",
		},
		Doc: &index.Doc{ID: "doc-1", Fields: fields, Text: text},
	}
}

func TestEvalOperators(t *testing.T) {
	ctx := docCtx(map[string][]string{
		"dc.Title":   {"Music of New Zealand"},
		"dc.Creator": {"Smith", "Jones"},
		"year":       {"1995"},
	}, "traditional music from new zealand")

	cases := []struct {
		expr string
		want bool
	}{
		{`collection = "Hamilton.D"`, true},
		{`collection = "hamilton.d"`, true}, // equality is case-insensitive
		{`collection = "London.E"`, false},
		{`origin = "London.E"`, true},
		{`event.type = "documents-added"`, true},
		{`dc.Creator = "Jones"`, true},
		{`dc.Creator != "Brown"`, true},
		{`dc.Creator != "Smith"`, false}, // one value equals -> != fails
		{`missing != "x"`, true},         // vacuous on absent attribute
		{`year >= 1990`, true},
		{`year < 1990`, false},
		{`year <= "1995"`, true},
		{`year > 2000`, false},
		{`dc.Title contains "zealand"`, true},
		{`dc.Title contains "australia"`, false},
		{`dc.Title startswith "music"`, true},
		{`dc.Title endswith "zealand"`, true},
		{`dc.Title matches "Music*Zealand"`, true},
		{`dc.Title matches "M?sic*"`, true},
		{`dc.Title matches "*Pacific*"`, false},
		{`doc.id in ("doc-1", "doc-9")`, true},
		{`doc.id in ("doc-9")`, false},
		{`dc.Creator in ("brown", "jones")`, true},
		{`dc.Title exists`, true},
		{`dc.Subject exists`, false},
		{`text query "traditional AND zealand"`, true},
		{`text query "whale"`, false},
		{`dc.Title query "music AND zealand"`, true},
		{`dc.Title query "traditional"`, false}, // field-restricted query
		{`NOT dc.Title contains "australia"`, true},
		{`collection = "Hamilton.D" AND dc.Creator = "Smith"`, true},
		{`collection = "X" OR dc.Creator = "Smith"`, true},
		{`collection = "X" AND dc.Creator = "Smith"`, false},
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		if got := Eval(e, ctx); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEvalLexicographicFallback(t *testing.T) {
	ctx := docCtx(map[string][]string{"name": {"delta"}}, "")
	if !Eval(MustParse(`name > "alpha"`), ctx) {
		t.Error("lexicographic > failed")
	}
	if Eval(MustParse(`name < "alpha"`), ctx) {
		t.Error("lexicographic < succeeded wrongly")
	}
}

func TestEvalNilAndMissingDoc(t *testing.T) {
	if Eval(nil, &EvalContext{}) {
		t.Error("nil expression matched")
	}
	// Metadata predicate with no doc in context.
	if Eval(MustParse(`dc.Title = "x"`), &EvalContext{Attrs: map[string]string{"collection": "C.X"}}) {
		t.Error("doc predicate matched without doc")
	}
	// Query predicate without doc.
	if Eval(MustParse(`text query "x"`), &EvalContext{}) {
		t.Error("query predicate matched without doc")
	}
}

func TestWildcardMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a*", "abc", true},
		{"*c", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "abxc", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"a??", "abc", true},
		{"*b*", "abc", true},
		{"ABC", "abc", true}, // case-insensitive
		{"a*b*c", "a-x-b-y-c", true},
		{"a*b*c", "acb", false},
		{"**a", "za", true},
	}
	for _, c := range cases {
		if got := WildcardMatch(c.pattern, c.s); got != c.want {
			t.Errorf("WildcardMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: WildcardMatch("*"+s+"*", x+s+y) always holds.
func TestWildcardContainsProperty(t *testing.T) {
	f := func(prefix, mid, suffix string) bool {
		if len(mid) == 0 {
			return true
		}
		// Exclude wildcard metacharacters from the literal middle.
		for _, r := range mid {
			if r == '*' || r == '?' {
				return true
			}
		}
		return WildcardMatch("*"+mid+"*", prefix+mid+suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func makeEvent(collection event.QName, docs []event.DocRef) *event.Event {
	return event.New("ev-1", event.TypeDocumentsAdded, collection, 2, docs, time.Now())
}

func TestMatchEventPerDocument(t *testing.T) {
	ev := makeEvent(event.QName{Host: "Hamilton", Collection: "D"}, []event.DocRef{
		{ID: "d1", Metadata: map[string][]string{"dc.Creator": {"Smith"}}},
		{ID: "d2", Metadata: map[string][]string{"dc.Creator": {"Jones"}}},
		{ID: "d3", Metadata: map[string][]string{"dc.Creator": {"Smith"}}},
	})
	e := MustParse(`collection = "Hamilton.D" AND dc.Creator = "Smith"`)
	ok, ids := MatchEvent(e, ev)
	if !ok {
		t.Fatal("no match")
	}
	if len(ids) != 2 || ids[0] != "d1" || ids[1] != "d3" {
		t.Errorf("matched ids = %v", ids)
	}
}

func TestMatchEventEventLevelOnly(t *testing.T) {
	// Event-level profile must match even when no individual doc does.
	ev := makeEvent(event.QName{Host: "H", Collection: "C"}, []event.DocRef{{ID: "d1"}})
	e := MustParse(`collection = "H.C" AND event.type = "documents-added"`)
	ok, ids := MatchEvent(e, ev)
	if !ok {
		t.Fatal("event-level profile did not match")
	}
	// All docs trivially satisfy an event-only profile.
	if len(ids) != 1 {
		t.Errorf("ids = %v", ids)
	}
}

func TestMatchEventNoDocs(t *testing.T) {
	ev := event.New("ev-2", event.TypeCollectionRemoved, event.QName{Host: "H", Collection: "C"}, 0, nil, time.Now())
	ok, ids := MatchEvent(MustParse(`event.type = "collection-removed"`), ev)
	if !ok || ids != nil {
		t.Errorf("ok=%v ids=%v", ok, ids)
	}
	ok, _ = MatchEvent(MustParse(`dc.Title = "x"`), ev)
	if ok {
		t.Error("doc profile matched doc-less event")
	}
}

func TestMatchEventMixedProfileNeedsDocMatch(t *testing.T) {
	// Profile references doc metadata; event docs don't satisfy it -> no match
	// even though the event attrs alone would satisfy the collection clause.
	ev := makeEvent(event.QName{Host: "H", Collection: "C"}, []event.DocRef{
		{ID: "d1", Metadata: map[string][]string{"dc.Creator": {"Brown"}}},
	})
	e := MustParse(`collection = "H.C" AND dc.Creator = "Smith"`)
	if ok, _ := MatchEvent(e, ev); ok {
		t.Error("mixed profile matched without a matching doc")
	}
}

func TestNNF(t *testing.T) {
	e := MustParse(`NOT (a = "1" AND (b = "2" OR NOT c = "3"))`)
	n := ToNNF(e)
	// Expect: NOT a=1 OR (NOT b=2 AND c=3)
	or, ok := n.(*Or)
	if !ok {
		t.Fatalf("NNF root %T", n)
	}
	if len(or.Children) != 2 {
		t.Fatalf("NNF children = %d", len(or.Children))
	}
	p0 := or.Children[0].(*Pred)
	if !p0.Neg || p0.Attr != "a" {
		t.Errorf("first child = %v", p0)
	}
	and := or.Children[1].(*And)
	p1 := and.Children[0].(*Pred)
	p2 := and.Children[1].(*Pred)
	if !p1.Neg || p1.Attr != "b" {
		t.Errorf("second child first pred = %v", p1)
	}
	if p2.Neg || p2.Attr != "c" {
		t.Errorf("second child second pred = %v", p2)
	}
	// No Not nodes remain anywhere.
	Walk(n, func(x Expr) {
		if _, bad := x.(*Not); bad {
			t.Error("Not node survives NNF")
		}
	})
}

func TestToDNF(t *testing.T) {
	e := MustParse(`(a = "1" OR b = "2") AND c = "3"`)
	cs, err := ToDNF(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("conjunctions = %d, want 2", len(cs))
	}
	for _, c := range cs {
		if len(c) != 2 {
			t.Errorf("conjunction size = %d, want 2", len(c))
		}
	}
}

// Property: DNF evaluation agrees with direct evaluation on random contexts.
func TestDNFEquivalenceProperty(t *testing.T) {
	exprs := []Expr{
		MustParse(`a = "1" AND (b = "2" OR c = "3")`),
		MustParse(`NOT (a = "1" OR b = "2") AND c = "3"`),
		MustParse(`(a = "1" AND b = "2") OR (NOT c = "3" AND d = "4")`),
		MustParse(`NOT (a = "1" AND b = "2" AND c = "3")`),
		MustParse(`a = "1" OR NOT (b = "2" OR (c = "3" AND d = "4"))`),
	}
	dnfs := make([][]Conjunction, len(exprs))
	for i, e := range exprs {
		cs, err := ToDNF(e)
		if err != nil {
			t.Fatalf("ToDNF(%s): %v", e, err)
		}
		dnfs[i] = cs
	}
	f := func(av, bv, cv, dv uint8) bool {
		ctx := &EvalContext{Doc: &index.Doc{ID: "d", Fields: map[string][]string{
			"a": {fmt.Sprintf("%d", av%3)},
			"b": {fmt.Sprintf("%d", bv%3)},
			"c": {fmt.Sprintf("%d", cv%3)},
			"d": {fmt.Sprintf("%d", dv%3)},
		}}}
		for i, e := range exprs {
			direct := Eval(e, ctx)
			viaDNF := false
			for _, c := range dnfs[i] {
				if EvalConjunction(c, ctx) {
					viaDNF = true
					break
				}
			}
			if direct != viaDNF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityPred(t *testing.T) {
	cs, err := ToDNF(MustParse(`dc.Title contains "x" AND collection = "H.C"`))
	if err != nil {
		t.Fatal(err)
	}
	p := EqualityPred(cs[0])
	if p == nil || p.Attr != "collection" {
		t.Fatalf("EqualityPred = %v", p)
	}
	// Negated equality is not an access predicate.
	cs2, _ := ToDNF(MustParse(`NOT collection = "H.C" AND dc.Title contains "x"`))
	if EqualityPred(cs2[0]) != nil {
		t.Error("negated equality used as access predicate")
	}
	cs3, _ := ToDNF(MustParse(`dc.Title contains "x"`))
	if EqualityPred(cs3[0]) != nil {
		t.Error("no-equality conjunction produced access predicate")
	}
}
