package profile

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
)

func TestProfileValidate(t *testing.T) {
	good := NewUser("p1", "alice", "Hamilton", MustParse(`collection = "H.C"`))
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		p    *Profile
		want error
	}{
		{"no id", &Profile{Owner: "a", Expr: MustParse(`a = "1"`)}, ErrNoID},
		{"no owner", &Profile{ID: "x", Expr: MustParse(`a = "1"`)}, ErrNoOwner},
		{"no expr", &Profile{ID: "x", Owner: "a"}, ErrNoExpr},
		{"aux no collections", &Profile{ID: "x", Owner: "a", Kind: KindAuxiliary, Expr: MustParse(`a = "1"`)}, ErrAuxShape},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// Aux with super == sub is invalid (paper §7 uniqueness constraint).
	same := event.QName{Host: "H", Collection: "C"}
	aux := NewAuxiliary("a1", same, same)
	if err := aux.Validate(); !errors.Is(err, ErrAuxShape) {
		t.Errorf("super==sub accepted: %v", err)
	}
}

func TestProfileXMLRoundTrip(t *testing.T) {
	p := NewUser("Hamilton-p7", "alice", "Hamilton",
		MustParse(`collection = "Hamilton.D" AND (dc.Title contains "music" OR doc.id in ("d1", "d2"))`))
	p.CreatedAt = time.Date(2005, 3, 1, 9, 0, 0, 0, time.UTC)
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != p.ID || got.Owner != p.Owner || got.Kind != KindUser || got.HomeServer != "Hamilton" {
		t.Errorf("fields: %+v", got)
	}
	if got.Expr.String() != p.Expr.String() {
		t.Errorf("expr: got %q want %q", got.Expr.String(), p.Expr.String())
	}
	if !got.CreatedAt.Equal(p.CreatedAt) {
		t.Errorf("created at: %v vs %v", got.CreatedAt, p.CreatedAt)
	}
}

func TestAuxiliaryProfileXMLRoundTrip(t *testing.T) {
	super := event.QName{Host: "Hamilton", Collection: "D"}
	sub := event.QName{Host: "London", Collection: "E"}
	p := NewAuxiliary("Hamilton-aux1", super, sub)
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindAuxiliary {
		t.Errorf("kind = %v", got.Kind)
	}
	if got.Super != super || got.Sub != sub {
		t.Errorf("super=%v sub=%v", got.Super, got.Sub)
	}
	if got.Owner != "Hamilton" {
		t.Errorf("owner = %q", got.Owner)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`<Profile><ID>x</ID><Kind>user</Kind><Owner>a</Owner><Expr>((</Expr></Profile>`,
		`<Profile><ID>x</ID><Kind>wat</Kind><Owner>a</Owner><Expr>a = "1"</Expr></Profile>`,
		`<Profile><ID></ID><Kind>user</Kind><Owner>a</Owner><Expr>a = "1"</Expr></Profile>`,
		`not xml at all`,
	}
	for _, c := range cases {
		if _, err := UnmarshalXMLBytes([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestAuxiliaryMatchesSubCollectionEvents(t *testing.T) {
	super := event.QName{Host: "Hamilton", Collection: "D"}
	sub := event.QName{Host: "London", Collection: "E"}
	aux := NewAuxiliary("a1", super, sub)

	evSub := event.New("e1", event.TypeCollectionRebuilt, sub, 2, nil, time.Now())
	if ok, _ := aux.Matches(evSub); !ok {
		t.Error("aux profile did not match its sub-collection event")
	}
	evOther := event.New("e2", event.TypeCollectionRebuilt, event.QName{Host: "London", Collection: "F"}, 2, nil, time.Now())
	if ok, _ := aux.Matches(evOther); ok {
		t.Error("aux profile matched an unrelated collection")
	}
}

func TestFromSearchQuery(t *testing.T) {
	coll := event.QName{Host: "Hamilton", Collection: "D"}
	p, err := FromSearchQuery("p1", "alice", "Hamilton", coll, "", "whale AND songs")
	if err != nil {
		t.Fatal(err)
	}
	ev := event.New("e1", event.TypeDocumentsAdded, coll, 1, []event.DocRef{
		{ID: "d1", Snippet: "humpback whale songs recorded at sea"},
		{ID: "d2", Snippet: "penguin colonies of the antarctic"},
	}, time.Now())
	ok, ids := p.Matches(ev)
	if !ok || len(ids) != 1 || ids[0] != "d1" {
		t.Errorf("ok=%v ids=%v", ok, ids)
	}
	// Field-restricted variant.
	p2, err := FromSearchQuery("p2", "alice", "Hamilton", coll, "dc.Title", "music")
	if err != nil {
		t.Fatal(err)
	}
	ev2 := event.New("e2", event.TypeDocumentsAdded, coll, 1, []event.DocRef{
		{ID: "d3", Metadata: map[string][]string{"dc.Title": {"Music Theory"}}},
	}, time.Now())
	if ok, _ := p2.Matches(ev2); !ok {
		t.Error("field query did not match")
	}
	if _, err := FromSearchQuery("p3", "a", "H", coll, "", "  "); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := FromSearchQuery("p4", "a", "H", coll, "", "AND AND"); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestWatchThis(t *testing.T) {
	coll := event.QName{Host: "Hamilton", Collection: "D"}
	p, err := WatchThis("w1", "bob", "Hamilton", coll, []string{"d7", "d9"})
	if err != nil {
		t.Fatal(err)
	}
	ev := event.New("e1", event.TypeDocumentsChanged, coll, 3, []event.DocRef{
		{ID: "d7"}, {ID: "d8"},
	}, time.Now())
	ok, ids := p.Matches(ev)
	if !ok || len(ids) != 1 || ids[0] != "d7" {
		t.Errorf("ok=%v ids=%v", ok, ids)
	}
	// Same doc IDs in a different collection do not fire.
	evOther := event.New("e2", event.TypeDocumentsChanged, event.QName{Host: "X", Collection: "Y"}, 1,
		[]event.DocRef{{ID: "d7"}}, time.Now())
	if ok, _ := p.Matches(evOther); ok {
		t.Error("watch-this fired for wrong collection")
	}
	if _, err := WatchThis("w2", "bob", "Hamilton", coll, nil); err == nil {
		t.Error("empty watch list accepted")
	}
	// The watch profile survives serialisation.
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := got.Matches(ev); !ok {
		t.Error("deserialised watch-this does not match")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindUser, KindAuxiliary} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("kind %v: got %v err %v", k, got, err)
		}
	}
	if _, err := ParseKind("other"); err == nil {
		t.Error("ParseKind accepted junk")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
