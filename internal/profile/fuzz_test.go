package profile

import (
	"testing"
)

// FuzzParse drives the profile-language parser with arbitrary input. The
// parser guards every subscription the system accepts (including remote
// auxiliary installs arriving over the wire), so it must never panic, and
// its output must honour the language's round-trip contract: Expr.String()
// renders "parseable back" (ast.go), so a successful parse must reparse,
// and the reparse must render identically (String is a canonical form).
// ToDNF over a parsed expression must also be panic-free — the routing
// digests run it on every subscription.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`collection = "H.C"`,
		`collection = "H.C" AND dc.Subject = "t001"`,
		`event.type = "documents-added" OR event.type = "documents-changed"`,
		`NOT (host = "H" AND origin = "remote")`,
		`dc.Creator IN ("a", "b", "c")`,
		`dc.Title CONTAINS "alert" AND NOT doc.id = "d1"`,
		`dc.Title PREFIX "The" OR dc.Title SUFFIX "end"`,
		`dc.Date >= "2005" AND dc.Date < "2006"`,
		`text QUERY "greenstone alerting"`,
		`collection MATCHES "H.*"`,
		`dc.Subject EXISTS`,
		`a = "1" AND (b = "2" OR c = "3") AND NOT d != "4"`,
		``,
		`AND`,
		`collection = `,
		`((((`,
		`collection = "unterminated`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		rendered := e.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output does not reparse: %q -> %q: %v", src, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("round trip not canonical: %q -> %q -> %q", src, rendered, got)
		}
		// DNF conversion must not panic; oversize expansions error cleanly.
		if _, err := ToDNF(e); err != nil && err != ErrDNFTooLarge {
			// Any parseable expression is convertible (or too large);
			// other failures indicate an AST shape the converter missed.
			t.Fatalf("ToDNF(%q): %v", rendered, err)
		}
	})
}

// FuzzParseText covers the unified subscription entry point: the composite
// grammar (SEQUENCE/COUNT/DIGEST wrappers), its fallback into the
// primitive grammar, and the contract that a successful parse always
// yields a non-nil routable expression.
func FuzzParseText(f *testing.F) {
	for _, seed := range []string{
		`SEQUENCE (a = "1") THEN (b = "2") WITHIN 1h`,
		`COUNT 3 OF (collection = "H.C") WITHIN 30m`,
		`DIGEST (collection = "H.C" AND dc.Subject = "t001") EVERY 1h`,
		`SEQUENCE (a = "1") THEN (b = "2") THEN (c = "3") WITHIN 24h`,
		`count = "5"`, // operator-like attribute: primitive fallback
		`collection = "H.C"`,
		`COUNT 0 OF (a = "1")`,
		`DIGEST () EVERY 0s`,
		`SEQUENCE`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, c, err := ParseText(src)
		if err != nil {
			return
		}
		if e == nil {
			t.Fatalf("ParseText(%q) succeeded with a nil expression", src)
		}
		if c != nil {
			rendered := c.String()
			_, again, err := ParseText(rendered)
			if err != nil {
				t.Fatalf("composite String() output does not reparse: %q -> %q: %v", src, rendered, err)
			}
			if again == nil {
				t.Fatalf("composite round trip lost the composite: %q -> %q", src, rendered)
			}
		}
	})
}
