package profile

import (
	"strconv"
	"strings"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/index"
)

// EvalContext is what a profile expression is evaluated against: the
// event-level attributes plus (optionally) one document carried by the
// event. An event matches a profile if the expression holds for the event
// attributes combined with at least one of its documents.
type EvalContext struct {
	// Attrs holds event-level attributes ("collection", "host", "origin",
	// "event.type").
	Attrs map[string]string
	// Doc is the document under consideration; nil when the event carries
	// no documents.
	Doc *index.Doc
}

// Eval reports whether the expression holds in ctx.
func Eval(e Expr, ctx *EvalContext) bool {
	switch v := e.(type) {
	case nil:
		return false
	case *And:
		for _, c := range v.Children {
			if !Eval(c, ctx) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range v.Children {
			if Eval(c, ctx) {
				return true
			}
		}
		return false
	case *Not:
		return !Eval(v.Child, ctx)
	case *Pred:
		return v.Eval(ctx)
	default:
		return false
	}
}

// MatchEvent reports whether the expression matches ev: it holds for the
// event attributes alone (document-independent profiles such as
// `collection = "X"`), or for at least one document of the event. It also
// returns the IDs of the matching documents (empty when the match is
// event-level only).
func MatchEvent(e Expr, ev *event.Event) (bool, []string) {
	attrs := ev.Attrs()
	if len(ev.Docs) == 0 {
		return Eval(e, &EvalContext{Attrs: attrs}), nil
	}
	var matched []string
	for i := range ev.Docs {
		d := docRefToIndexDoc(&ev.Docs[i])
		if Eval(e, &EvalContext{Attrs: attrs, Doc: &d}) {
			matched = append(matched, ev.Docs[i].ID)
		}
	}
	if len(matched) > 0 {
		return true, matched
	}
	// Fall back to an event-level match: profiles that reference only
	// event attributes should fire even if no single document matches
	// (e.g. `event.type = "collection-removed"` on an event with docs).
	if onlyEventAttrs(e) && Eval(e, &EvalContext{Attrs: attrs}) {
		return true, nil
	}
	return false, nil
}

func docRefToIndexDoc(d *event.DocRef) index.Doc {
	return index.Doc{ID: d.ID, Fields: d.Metadata, Text: d.Snippet}
}

// eventAttrNames are the attributes resolved from the event rather than a
// document.
var eventAttrNames = map[string]bool{
	"collection": true,
	"host":       true,
	"origin":     true,
	"event.type": true,
}

func onlyEventAttrs(e Expr) bool {
	only := true
	Walk(e, func(n Expr) {
		if p, ok := n.(*Pred); ok && !eventAttrNames[p.Attr] {
			only = false
		}
	})
	return only
}

// Eval evaluates the predicate in ctx, honouring Neg.
func (p *Pred) Eval(ctx *EvalContext) bool {
	r := p.evalPositive(ctx)
	if p.Neg {
		return !r
	}
	return r
}

func (p *Pred) evalPositive(ctx *EvalContext) bool {
	values := resolveAttr(p.Attr, ctx)
	switch p.Op {
	case OpExists:
		return len(values) > 0
	case OpEq:
		for _, v := range values {
			if strings.EqualFold(v, p.Value) {
				return true
			}
		}
		return false
	case OpNe:
		if len(values) == 0 {
			return true
		}
		for _, v := range values {
			if strings.EqualFold(v, p.Value) {
				return false
			}
		}
		return true
	case OpLt, OpLe, OpGt, OpGe:
		for _, v := range values {
			if compareOrdered(v, p.Value, p.Op) {
				return true
			}
		}
		return false
	case OpContains:
		for _, v := range values {
			if strings.Contains(strings.ToLower(v), strings.ToLower(p.Value)) {
				return true
			}
		}
		return false
	case OpPrefix:
		for _, v := range values {
			if strings.HasPrefix(strings.ToLower(v), strings.ToLower(p.Value)) {
				return true
			}
		}
		return false
	case OpSuffix:
		for _, v := range values {
			if strings.HasSuffix(strings.ToLower(v), strings.ToLower(p.Value)) {
				return true
			}
		}
		return false
	case OpMatches:
		for _, v := range values {
			if WildcardMatch(p.Value, v) {
				return true
			}
		}
		return false
	case OpIn:
		for _, v := range values {
			for _, want := range p.Values {
				if strings.EqualFold(v, want) {
					return true
				}
			}
		}
		return false
	case OpQuery:
		if ctx.Doc == nil {
			return false
		}
		q := p.compiledQuery
		if q == nil {
			parsed, err := index.ParseQuery(p.Value)
			if err != nil {
				return false
			}
			q = parsed
		}
		field := p.Attr
		if field == "text" {
			field = index.TextField
		}
		return index.MatchDoc(q, *ctx.Doc, field)
	default:
		return false
	}
}

// resolveAttr maps an attribute name to its values in ctx.
func resolveAttr(attr string, ctx *EvalContext) []string {
	if eventAttrNames[attr] {
		if ctx.Attrs == nil {
			return nil
		}
		if v, ok := ctx.Attrs[attr]; ok && v != "" {
			return []string{v}
		}
		return nil
	}
	if ctx.Doc == nil {
		return nil
	}
	switch attr {
	case "doc.id":
		return []string{ctx.Doc.ID}
	case "text":
		if ctx.Doc.Text == "" {
			return nil
		}
		return []string{ctx.Doc.Text}
	default:
		return ctx.Doc.Fields[attr]
	}
}

// compareOrdered compares numerically when both sides parse as floats,
// otherwise lexicographically (case-insensitive).
func compareOrdered(have, want string, op Op) bool {
	hf, herr := strconv.ParseFloat(strings.TrimSpace(have), 64)
	wf, werr := strconv.ParseFloat(strings.TrimSpace(want), 64)
	var cmp int
	if herr == nil && werr == nil {
		switch {
		case hf < wf:
			cmp = -1
		case hf > wf:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(strings.ToLower(have), strings.ToLower(want))
	}
	switch op {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// WildcardMatch matches pattern against s, where '*' matches any run of
// characters and '?' matches exactly one; matching is case-insensitive.
// The implementation is the classic two-pointer scan with backtracking to
// the last star, linear in len(s)*stars.
func WildcardMatch(pattern, s string) bool {
	p := []rune(strings.ToLower(pattern))
	t := []rune(strings.ToLower(s))
	pi, ti := 0, 0
	star, starTi := -1, 0
	for ti < len(t) {
		switch {
		case pi < len(p) && (p[pi] == '?' || p[pi] == t[ti]):
			pi++
			ti++
		case pi < len(p) && p[pi] == '*':
			star = pi
			starTi = ti
			pi++
		case star >= 0:
			pi = star + 1
			starTi++
			ti = starTi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}
