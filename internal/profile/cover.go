package profile

import (
	"sort"
	"strings"
)

// This file implements the SIENA-style covering relation on DNF profiles
// and the routing digests derived from it. Both power the content-based
// dissemination mode of the GDS overlay: servers advertise a digest of
// their profile population towards the directory root, directory nodes
// keep one digest per tree link, and events descend only into subtrees
// whose digest matches. Covering keeps the advertisement traffic small: a
// new profile covered by what a link already advertised changes nothing
// and is never re-announced.
//
// All relations here are conservative (sound, not complete): Covers and
// PredImplies may answer false for a pair that is semantically covered,
// but never answer true for one that is not. A false negative costs extra
// messages; a false positive would lose notifications.

// ---------------------------------------------------------------------------
// Predicate implication

// PredImplies reports whether every event satisfying p also satisfies q
// (match(p) ⊆ match(q)). Both predicates must constrain the same
// attribute; predicates over different attributes are incomparable.
//
// The check is conservative: unknown operator combinations answer false.
func PredImplies(p, q *Pred) bool {
	p = normalizeNe(p)
	q = normalizeNe(q)
	if p.Attr != q.Attr {
		return false
	}
	if p.Neg != q.Neg {
		return false
	}
	if p.Neg {
		// ¬A ⇒ ¬B iff B ⇒ A on the positive parts.
		return impliesPositive(positive(q), positive(p))
	}
	return impliesPositive(p, q)
}

// normalizeNe rewrites `attr != v` as `NOT attr = v` (their evaluation
// semantics are identical: no attribute value equals v, vacuously true for
// missing attributes) so implication only reasons about one spelling.
func normalizeNe(p *Pred) *Pred {
	if p.Op != OpNe {
		return p
	}
	cp := *p
	cp.Op = OpEq
	cp.Neg = !p.Neg
	return &cp
}

// positive returns p with the negation stripped.
func positive(p *Pred) *Pred {
	if !p.Neg {
		return p
	}
	cp := *p
	cp.Neg = false
	return &cp
}

// predEqual reports structural equality up to value case folding.
func predEqual(p, q *Pred) bool {
	if p.Attr != q.Attr || p.Op != q.Op || p.Neg != q.Neg {
		return false
	}
	if !strings.EqualFold(p.Value, q.Value) {
		return false
	}
	if len(p.Values) != len(q.Values) {
		return false
	}
	for i := range p.Values {
		if !strings.EqualFold(p.Values[i], q.Values[i]) {
			return false
		}
	}
	return true
}

// impliesPositive is PredImplies for two non-negated predicates on the
// same attribute.
func impliesPositive(p, q *Pred) bool {
	if predEqual(p, q) {
		return true
	}
	switch q.Op {
	case OpExists:
		// Any operator that needs at least one attribute value to match
		// implies existence. OpQuery is excluded: it consults the document,
		// not the attribute values.
		switch p.Op {
		case OpEq, OpContains, OpPrefix, OpSuffix, OpMatches, OpLt, OpLe, OpGt, OpGe, OpExists:
			return true
		case OpIn:
			return len(p.Values) > 0
		}
	case OpEq:
		switch p.Op {
		case OpEq:
			return strings.EqualFold(p.Value, q.Value)
		case OpIn:
			return allValues(p.Values, func(v string) bool { return strings.EqualFold(v, q.Value) })
		}
	case OpIn:
		inQ := func(v string) bool {
			for _, w := range q.Values {
				if strings.EqualFold(v, w) {
					return true
				}
			}
			return false
		}
		switch p.Op {
		case OpEq:
			return inQ(p.Value)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, inQ)
		}
	case OpContains:
		sub := strings.ToLower(q.Value)
		has := func(v string) bool { return strings.Contains(strings.ToLower(v), sub) }
		switch p.Op {
		case OpEq:
			return has(p.Value)
		case OpContains, OpPrefix, OpSuffix:
			// A value containing / starting with / ending in p.Value also
			// contains every substring of p.Value.
			return has(p.Value)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, has)
		}
	case OpPrefix:
		pre := strings.ToLower(q.Value)
		switch p.Op {
		case OpEq:
			return strings.HasPrefix(strings.ToLower(p.Value), pre)
		case OpPrefix:
			return strings.HasPrefix(strings.ToLower(p.Value), pre)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, func(v string) bool {
				return strings.HasPrefix(strings.ToLower(v), pre)
			})
		}
	case OpSuffix:
		suf := strings.ToLower(q.Value)
		switch p.Op {
		case OpEq:
			return strings.HasSuffix(strings.ToLower(p.Value), suf)
		case OpSuffix:
			return strings.HasSuffix(strings.ToLower(p.Value), suf)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, func(v string) bool {
				return strings.HasSuffix(strings.ToLower(v), suf)
			})
		}
	case OpMatches:
		switch p.Op {
		case OpEq:
			return WildcardMatch(q.Value, p.Value)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, func(v string) bool {
				return WildcardMatch(q.Value, v)
			})
		}
	case OpLt, OpLe, OpGt, OpGe:
		// An equality pins the value, so the range check on that value is
		// exactly what evaluation would compute. Range-vs-range implication
		// is deliberately not attempted: compareOrdered mixes numeric and
		// lexicographic comparison per event value, which breaks the
		// transitivity such reasoning would rely on.
		switch p.Op {
		case OpEq:
			return compareOrdered(p.Value, q.Value, q.Op)
		case OpIn:
			return len(p.Values) > 0 && allValues(p.Values, func(v string) bool {
				return compareOrdered(v, q.Value, q.Op)
			})
		}
	}
	return false
}

func allValues(vs []string, ok func(string) bool) bool {
	for _, v := range vs {
		if !ok(v) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Conjunction and DNF covering

// ConjCovers reports whether the general conjunction covers the specific
// one: every event matching specific also matches general. Sufficient
// condition: every predicate of general is implied by some predicate of
// specific. The empty conjunction is ⊤ and covers everything; a specific
// conjunction with predicates on attributes general does not mention is
// still covered (general is the weaker constraint), while the converse —
// general constraining an attribute specific leaves free — is not.
func ConjCovers(general, specific Conjunction) bool {
	for _, qg := range general {
		implied := false
		for _, ps := range specific {
			if PredImplies(ps, qg) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// Covers reports whether the general DNF covers the specific one: every
// event matching specific also matches general. Sufficient condition:
// every conjunction of specific is covered by some conjunction of general.
// The empty DNF matches nothing and is covered by anything.
func Covers(general, specific []Conjunction) bool {
	for _, cs := range specific {
		covered := false
		for _, cg := range general {
			if ConjCovers(cg, cs) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Routing digests

// Digest is the routing-level summary of a profile population: a DNF over
// event-level attributes only. A digest over-approximates the profiles it
// summarises — every event a summarised profile could match, the digest
// matches — so routing by digest never loses notifications, only delivers
// (bounded) extras which local filtering discards as before.
//
// The empty digest matches nothing (no profiles, prune the link); the
// digest holding one empty conjunction is ⊤ and matches everything.
type Digest []Conjunction

// TopConjString is the wire spelling of the empty (match-all) conjunction.
const TopConjString = "*"

// TopDigest returns the match-all digest, the summary of a link whose
// interests are unknown (e.g. a server that has not advertised yet).
func TopDigest() Digest { return Digest{Conjunction{}} }

// IsTop reports whether the digest matches every event.
func (d Digest) IsTop() bool {
	for _, c := range d {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// Matches reports whether an event with the given event-level attributes
// matches the digest.
func (d Digest) Matches(attrs map[string]string) bool {
	ctx := &EvalContext{Attrs: attrs}
	for _, c := range d {
		if EvalConjunction(c, ctx) {
			return true
		}
	}
	return false
}

// DigestOf summarises one profile expression for routing. Every DNF
// conjunction is projected onto its routable event-level predicates;
// predicates the directory cannot evaluate (document metadata, text,
// retrieval sub-queries) are dropped, which widens the conjunction and
// keeps the digest sound. A conjunction left empty by the projection, or
// an expression too large to normalise, yields the match-all digest.
func DigestOf(e Expr) Digest {
	conjunctions, err := ToDNF(e)
	if err != nil {
		return TopDigest()
	}
	d := make(Digest, 0, len(conjunctions))
	for _, c := range conjunctions {
		proj := make(Conjunction, 0, len(c))
		for _, p := range c {
			if routablePred(p) {
				proj = append(proj, p)
			}
		}
		d = append(d, proj)
	}
	return NormalizeDigest(d)
}

// routablePred reports whether a predicate can be evaluated by a GDS node
// from event attributes alone.
func routablePred(p *Pred) bool {
	return eventAttrNames[p.Attr] && p.Op != OpQuery
}

// MergeDigests unions several digests into one normalised digest.
func MergeDigests(ds ...Digest) Digest {
	var all Digest
	for _, d := range ds {
		all = append(all, d...)
	}
	return NormalizeDigest(all)
}

// NormalizeDigest sorts and deduplicates a digest and applies the covering
// prune: a conjunction covered by another conjunction of the digest is
// redundant and removed. Normalised digests have a canonical rendering, so
// equality of Canonical() strings is equality of digests.
func NormalizeDigest(d Digest) Digest {
	if d.IsTop() {
		return TopDigest()
	}
	// Canonical per-conjunction order first, so renderings are comparable.
	sorted := make(Digest, 0, len(d))
	for _, c := range d {
		cc := append(Conjunction(nil), c...)
		sortPreds(cc)
		sorted = append(sorted, cc)
	}
	// Covering prune, keeping the first of mutually covering conjunctions.
	var kept Digest
	for i, c := range sorted {
		covered := false
		for j, other := range sorted {
			if i == j {
				continue
			}
			if !ConjCovers(other, c) {
				continue
			}
			// Mutual covering: drop the later one only.
			if ConjCovers(c, other) && i < j {
				continue
			}
			covered = true
			break
		}
		if !covered {
			kept = append(kept, c)
		}
	}
	// Drop duplicates and order conjunctions by rendering.
	seen := make(map[string]bool, len(kept))
	out := make(Digest, 0, len(kept))
	for _, c := range kept {
		s := conjString(c)
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return conjString(out[i]) < conjString(out[j]) })
	return out
}

func sortPreds(c Conjunction) {
	sort.Slice(c, func(i, j int) bool { return c[i].String() < c[j].String() })
}

// conjString renders one conjunction in the profile language; the empty
// conjunction renders as TopConjString.
func conjString(c Conjunction) string {
	if len(c) == 0 {
		return TopConjString
	}
	parts := make([]string, 0, len(c))
	for _, p := range c {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, " AND ")
}

// Strings renders the digest for the wire, one parseable string per
// conjunction.
func (d Digest) Strings() []string {
	out := make([]string, 0, len(d))
	for _, c := range d {
		out = append(out, conjString(c))
	}
	return out
}

// Canonical renders a normalised digest as one comparison key. The empty
// digest renders as the empty string.
func (d Digest) Canonical() string {
	return strings.Join(d.Strings(), " OR ")
}

// ParseDigest inverts Digest.Strings.
func ParseDigest(conjs []string) (Digest, error) {
	d := make(Digest, 0, len(conjs))
	for _, s := range conjs {
		if strings.TrimSpace(s) == TopConjString {
			d = append(d, Conjunction{})
			continue
		}
		e, err := Parse(s)
		if err != nil {
			return nil, err
		}
		sub, err := ToDNF(e)
		if err != nil {
			return nil, err
		}
		d = append(d, sub...)
	}
	return NormalizeDigest(d), nil
}
