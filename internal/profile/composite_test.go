package profile

import (
	"strings"
	"testing"
	"time"
)

func TestParseCompositeSequence(t *testing.T) {
	src := `SEQUENCE (collection = "H.C" AND event.type = "documents-added") THEN (event.type = "collection-rebuilt") WITHIN 24h`
	expr, c, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("composite not detected")
	}
	if c.Kind != CompositeSequence {
		t.Errorf("kind = %v", c.Kind)
	}
	if len(c.Steps) != 2 {
		t.Fatalf("steps = %d", len(c.Steps))
	}
	if c.Window != 24*time.Hour {
		t.Errorf("window = %v", c.Window)
	}
	// The routing expression is the union of the steps.
	or, ok := expr.(*Or)
	if !ok {
		t.Fatalf("union expr = %T", expr)
	}
	if len(or.Children) != 2 {
		t.Errorf("union children = %d", len(or.Children))
	}
}

func TestParseCompositeCountAndDigest(t *testing.T) {
	_, c, err := ParseText(`COUNT 10 OF (collection = "H.C" AND event.type = "documents-added") WITHIN 7d`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != CompositeCount || c.Count != 10 {
		t.Errorf("count composite = %+v", c)
	}
	if c.Window != 7*24*time.Hour {
		t.Errorf("window = %v", c.Window)
	}

	_, d, err := ParseText(`DIGEST collection = "H.C" EVERY 24h`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != CompositeDigest || d.Every != 24*time.Hour {
		t.Errorf("digest composite = %+v", d)
	}
	if d.Window != 0 {
		t.Errorf("digest window = %v", d.Window)
	}
}

func TestCompositeStringRoundTrips(t *testing.T) {
	srcs := []string{
		`SEQUENCE (collection = "H.C") THEN (event.type = "collection-rebuilt")`,
		`SEQUENCE (collection = "H.C") THEN (a = "1") THEN (b = "2") WITHIN 90m`,
		`COUNT 3 OF (event.type = "documents-added")`,
		`COUNT 5 OF (collection = "H.C" OR collection = "H.D") WITHIN 48h`,
		`DIGEST (collection = "H.C") EVERY 24h`,
	}
	for _, src := range srcs {
		_, c, err := ParseText(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if c == nil {
			t.Fatalf("%s: not composite", src)
		}
		rendered := c.String()
		_, c2, err := ParseText(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if c2 == nil || c2.String() != rendered {
			t.Errorf("%q did not round-trip (got %q)", rendered, c2.String())
		}
	}
}

func TestParseCompositeErrors(t *testing.T) {
	bad := []string{
		`SEQUENCE (a = "1")`,                           // one step only
		`SEQUENCE (a = "1") THEN`,                      // dangling THEN
		`COUNT x OF (a = "1")`,                         // non-numeric threshold
		`COUNT 0 OF (a = "1")`,                         // zero threshold
		`COUNT 3 (a = "1")`,                            // missing OF
		`DIGEST (a = "1")`,                             // missing EVERY
		`DIGEST (a = "1") EVERY soon`,                  // bad duration
		`SEQUENCE (a = "1") THEN (b = "2") c`,          // trailing input
		`SEQUENCE (a = "1") THEN (b = "2") WITHIN -5m`, // negative window
	}
	for _, src := range bad {
		if _, _, err := ParseText(src); err == nil {
			t.Errorf("%q parsed without error", src)
		}
	}
}

func TestParseTextKeywordAttributesStayPrimitive(t *testing.T) {
	// SEQUENCE/COUNT/DIGEST are not reserved words: a primitive profile
	// whose first attribute happens to be named like one must keep parsing
	// exactly as it did before the composite grammar existed.
	for _, src := range []string{
		`count = "5"`,
		`sequence exists`,
		`digest != "x"`,
		`count in ("a", "b") AND collection = "H.C"`,
	} {
		expr, c, err := ParseText(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if c != nil {
			t.Errorf("%q parsed as composite", src)
		}
		if expr == nil {
			t.Errorf("%q: nil expression", src)
		}
	}
}

func TestParseTextPrimitivePassThrough(t *testing.T) {
	expr, c, err := ParseText(`collection = "H.C" AND dc.Title contains "music"`)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Error("primitive expression flagged composite")
	}
	if expr == nil {
		t.Fatal("nil expression")
	}
}

func TestCompositeProfileWireRoundTrip(t *testing.T) {
	c := MustParseComposite(`SEQUENCE (collection = "H.C" AND event.type = "documents-added") THEN (event.type = "collection-rebuilt") WITHIN 1h`)
	p, err := NewComposite("p1", "alice", "H", c)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "SEQUENCE") {
		t.Fatalf("wire form lost the composite text: %s", raw)
	}
	back, err := UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsComposite() {
		t.Fatal("composite lost over the wire")
	}
	if back.Composite.String() != c.String() {
		t.Errorf("composite = %q, want %q", back.Composite.String(), c.String())
	}
	if back.Expr == nil {
		t.Error("union expr not reconstructed")
	}
}

func TestStepProfiles(t *testing.T) {
	c := MustParseComposite(`SEQUENCE (a = "1") THEN (b = "2") THEN (c = "3")`)
	p, err := NewComposite("comp-1", "alice", "H", c)
	if err != nil {
		t.Fatal(err)
	}
	steps := p.StepProfiles()
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	for i, sp := range steps {
		if sp.CompositeOf != "comp-1" || sp.CompositeStep != i {
			t.Errorf("step %d markers = (%q, %d)", i, sp.CompositeOf, sp.CompositeStep)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("step %d invalid: %v", i, err)
		}
	}
	if steps[0].ID >= steps[1].ID || steps[1].ID >= steps[2].ID {
		t.Error("step IDs do not sort in step order")
	}
}

func TestCompositeDigestUnionForRouting(t *testing.T) {
	// The union of a composite's primitives must project onto the same
	// routing digest a pair of ordinary profiles with those expressions
	// would, so content routing keeps pruning correctly.
	c := MustParseComposite(`SEQUENCE (collection = "H.C" AND event.type = "documents-added") THEN (collection = "H.C" AND event.type = "collection-rebuilt")`)
	p, err := NewComposite("p", "u", "H", c)
	if err != nil {
		t.Fatal(err)
	}
	d := DigestOf(p.Expr)
	if d.IsTop() {
		t.Fatal("composite union digest degenerated to match-all")
	}
	if !d.Matches(map[string]string{"collection": "H.C", "event.type": "documents-added"}) {
		t.Error("digest misses step-0 events")
	}
	if !d.Matches(map[string]string{"collection": "H.C", "event.type": "collection-rebuilt"}) {
		t.Error("digest misses step-1 events")
	}
	if d.Matches(map[string]string{"collection": "H.X", "event.type": "documents-added"}) {
		t.Error("digest matches foreign collection")
	}
}
