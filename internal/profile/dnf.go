package profile

import (
	"errors"
	"fmt"
)

// Conjunction is one AND-clause of a DNF: a set of (possibly negated)
// predicates that must all hold.
type Conjunction []*Pred

// ErrDNFTooLarge guards against exponential blow-up when distributing OR
// over AND; profiles this complex should be split by the subscriber.
var ErrDNFTooLarge = errors.New("profile: DNF expansion too large")

// MaxDNFConjunctions bounds the number of clauses produced by ToDNF.
const MaxDNFConjunctions = 512

// ToNNF pushes negations down to the predicates (negation normal form),
// returning a tree containing only And, Or and Pred nodes (with Pred.Neg
// carrying polarity).
func ToNNF(e Expr) Expr {
	return nnf(e, false)
}

func nnf(e Expr, negated bool) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *Not:
		return nnf(v.Child, !negated)
	case *And:
		cs := make([]Expr, 0, len(v.Children))
		for _, c := range v.Children {
			cs = append(cs, nnf(c, negated))
		}
		if negated {
			return NewOr(cs...)
		}
		return NewAnd(cs...)
	case *Or:
		cs := make([]Expr, 0, len(v.Children))
		for _, c := range v.Children {
			cs = append(cs, nnf(c, negated))
		}
		if negated {
			return NewAnd(cs...)
		}
		return NewOr(cs...)
	case *Pred:
		cp := *v
		cp.Values = append([]string(nil), v.Values...)
		if negated {
			cp.Neg = !cp.Neg
		}
		return &cp
	default:
		return nil
	}
}

// ToDNF converts e to disjunctive normal form: a slice of conjunctions such
// that e holds iff at least one conjunction holds. The equality-preferred
// filter engine indexes each conjunction by one of its equality predicates.
func ToDNF(e Expr) ([]Conjunction, error) {
	n := ToNNF(e)
	if n == nil {
		return nil, fmt.Errorf("profile: empty expression")
	}
	return dnf(n)
}

func dnf(e Expr) ([]Conjunction, error) {
	switch v := e.(type) {
	case *Pred:
		return []Conjunction{{v}}, nil
	case *Or:
		var out []Conjunction
		for _, c := range v.Children {
			sub, err := dnf(c)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > MaxDNFConjunctions {
				return nil, ErrDNFTooLarge
			}
		}
		return out, nil
	case *And:
		// Distribute: cross-product of the children's DNFs.
		acc := []Conjunction{{}}
		for _, c := range v.Children {
			sub, err := dnf(c)
			if err != nil {
				return nil, err
			}
			next := make([]Conjunction, 0, len(acc)*len(sub))
			for _, a := range acc {
				for _, s := range sub {
					merged := make(Conjunction, 0, len(a)+len(s))
					merged = append(merged, a...)
					merged = append(merged, s...)
					next = append(next, merged)
				}
			}
			if len(next) > MaxDNFConjunctions {
				return nil, ErrDNFTooLarge
			}
			acc = next
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("profile: unexpected node %T in NNF", e)
	}
}

// EvalConjunction reports whether every predicate of c holds in ctx.
func EvalConjunction(c Conjunction, ctx *EvalContext) bool {
	for _, p := range c {
		if !p.Eval(ctx) {
			return false
		}
	}
	return true
}

// EqualityPred returns the first positive equality predicate of c usable as
// a hash-index access predicate, or nil if the conjunction has none (such
// conjunctions go to the filter engine's residual scan list).
func EqualityPred(c Conjunction) *Pred {
	for _, p := range c {
		if p.Op == OpEq && !p.Neg {
			return p
		}
	}
	return nil
}
