// Package protocol defines the XML wire messages exchanged by the Greenstone
// protocol (server ↔ server, receptionist ↔ server) and the GDS protocol
// (directory node ↔ directory node, server ↔ directory node).
//
// The paper's implementation used SOAP; we keep the same request/response XML
// envelope semantics with a plain envelope: a Header carrying routing and
// deduplication metadata and a Body carrying one typed payload. Payload types
// are registered in this package so both transports (in-memory simulation and
// real HTTP) speak exactly the same format.
package protocol

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// MessageType identifies the payload carried by an Envelope.
type MessageType string

// Message types of the GDS protocol.
const (
	// MsgRegisterServer registers a Greenstone server with its GDS node.
	MsgRegisterServer MessageType = "gds.register-server"
	// MsgUnregisterServer removes a Greenstone server registration.
	MsgUnregisterServer MessageType = "gds.unregister-server"
	// MsgRegisterChild attaches a child GDS node to a parent GDS node.
	MsgRegisterChild MessageType = "gds.register-child"
	// MsgResolve asks the directory for the address of a named server.
	MsgResolve MessageType = "gds.resolve"
	// MsgResolveResult answers a MsgResolve.
	MsgResolveResult MessageType = "gds.resolve-result"
	// MsgBroadcast floods a wrapped payload to every server in the tree.
	MsgBroadcast MessageType = "gds.broadcast"
	// MsgMulticast delivers a wrapped payload to the members of a group.
	MsgMulticast MessageType = "gds.multicast"
	// MsgJoinGroup subscribes a server to a multicast group.
	MsgJoinGroup MessageType = "gds.join-group"
	// MsgLeaveGroup removes a server from a multicast group.
	MsgLeaveGroup MessageType = "gds.leave-group"
	// MsgAdvertiseProfiles installs (or replaces) the profile digest of one
	// tree link: a server advertises the digest of its local profiles, a
	// directory node the merged digest of its subtree (content routing).
	MsgAdvertiseProfiles MessageType = "gds.advertise-profiles"
	// MsgUnadvertiseProfiles withdraws an advertised digest; the link falls
	// back to match-all (flood) until a new digest arrives.
	MsgUnadvertiseProfiles MessageType = "gds.unadvertise-profiles"
	// MsgRouteContent disseminates a wrapped payload content-based: the
	// message climbs to the tree root and descends only into subtrees whose
	// advertised digest matches the carried event attributes.
	MsgRouteContent MessageType = "gds.route-content"
	// MsgPing is a liveness probe.
	MsgPing MessageType = "gds.ping"
)

// Message types of the Greenstone protocol, including the alerting
// extensions introduced by the paper.
const (
	// MsgDescribe asks a server to describe its public collections.
	MsgDescribe MessageType = "gs.describe"
	// MsgDescribeResult answers MsgDescribe.
	MsgDescribeResult MessageType = "gs.describe-result"
	// MsgSearch runs a retrieval query against one collection.
	MsgSearch MessageType = "gs.search"
	// MsgSearchResult answers MsgSearch.
	MsgSearchResult MessageType = "gs.search-result"
	// MsgBrowse requests a classifier shelf of a collection.
	MsgBrowse MessageType = "gs.browse"
	// MsgBrowseResult answers MsgBrowse.
	MsgBrowseResult MessageType = "gs.browse-result"
	// MsgGetDocument fetches one document.
	MsgGetDocument MessageType = "gs.get-document"
	// MsgDocumentResult answers MsgGetDocument.
	MsgDocumentResult MessageType = "gs.document-result"
	// MsgCollectData asks a server for the (possibly distributed) data of a
	// collection, following sub-collection references.
	MsgCollectData MessageType = "gs.collect-data"
	// MsgCollectDataResult answers MsgCollectData.
	MsgCollectDataResult MessageType = "gs.collect-data-result"

	// MsgEvent carries an alerting event (flooded via GDS broadcast or
	// forwarded point-to-point over the GS network).
	MsgEvent MessageType = "gs.event"
	// MsgForwardProfile installs an auxiliary profile on a sub-collection's
	// server on behalf of a super-collection's server.
	MsgForwardProfile MessageType = "gs.forward-profile"
	// MsgCancelProfile removes a previously forwarded auxiliary profile.
	MsgCancelProfile MessageType = "gs.cancel-profile"
	// MsgSubscribe registers a user profile at a server.
	MsgSubscribe MessageType = "gs.subscribe"
	// MsgUnsubscribe cancels a user profile.
	MsgUnsubscribe MessageType = "gs.unsubscribe"
	// MsgNotify delivers a notification to a client.
	MsgNotify MessageType = "gs.notify"
	// MsgNotifyBatch delivers a batch of notifications to a client in one
	// round-trip (the delivery pipeline's per-destination batching).
	MsgNotifyBatch MessageType = "gs.notify-batch"
	// MsgNotifyComposite delivers a synthesized composite notification —
	// a completed sequence, a reached accumulation threshold, or a digest
	// flush — carrying the contributing primitive events alongside the
	// synthesized summary event (internal/composite).
	MsgNotifyComposite MessageType = "gs.notify-composite"
	// MsgAttachNotifier asks a server to push a client's notifications to
	// an address; parked mailbox contents drain immediately (reconnect).
	MsgAttachNotifier MessageType = "gs.attach-notifier"
	// MsgDetachNotifier stops pushing; notifications park at the server.
	MsgDetachNotifier MessageType = "gs.detach-notifier"
)

// Message types of the replication protocol (internal/replica): a primary
// alerting server streams its state changes to a standby so the standby can
// be promoted with no loss of subscriptions or undelivered notifications.
const (
	// MsgReplSubscribe replicates one profile (un)subscription — user,
	// composite wrapper or auxiliary — from primary to standby.
	MsgReplSubscribe MessageType = "repl.subscribe"
	// MsgReplWAL replicates mailbox WAL activity (appends and acks) and
	// dedup admissions from primary to standby.
	MsgReplWAL MessageType = "repl.wal"
	// MsgReplAck reports the standby's applied stream position back to the
	// primary. With Resync set it is also the join/catch-up request: the
	// standby asks for a full snapshot before consuming the stream.
	MsgReplAck MessageType = "repl.ack"
	// MsgReplSnapshot carries the primary's full replicable state —
	// subscriptions, mailbox contents, dedup window — so a standby can join
	// or rejoin mid-stream (anti-entropy catch-up).
	MsgReplSnapshot MessageType = "repl.snapshot"
	// MsgReplPromote orders a standby to promote itself to serving primary:
	// re-register with the GDS under the inherited server name and re-issue
	// the routing-mode state (multicast joins / digest advertisements).
	MsgReplPromote MessageType = "repl.promote"
)

// Generic message types.
const (
	// MsgAck acknowledges a request that has no richer result.
	MsgAck MessageType = "ack"
	// MsgError reports a request failure.
	MsgError MessageType = "error"
)

// Envelope is the unit of communication. It mirrors a SOAP envelope: one
// header with routing metadata and one body with a single typed payload,
// stored as canonical XML so envelopes can be relayed without re-encoding.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Header  Header   `xml:"Header"`
	Body    Body     `xml:"Body"`
}

// Header carries routing and bookkeeping metadata for an Envelope.
type Header struct {
	// ID is globally unique per message and used for deduplication.
	ID string `xml:"ID"`
	// Type names the payload in Body.
	Type MessageType `xml:"Type"`
	// From is the logical name of the sender (server or GDS node name).
	From string `xml:"From,omitempty"`
	// To is the logical name of the intended recipient, if any. Broadcasts
	// leave it empty; the GDS forwards them anonymously (paper §6).
	To string `xml:"To,omitempty"`
	// TTL bounds forwarding hops; decremented at each relay. Zero means the
	// envelope must not be forwarded further.
	TTL int `xml:"TTL"`
	// Hops counts relays so far, for diagnostics and latency accounting.
	Hops int `xml:"Hops"`
	// TraceID correlates every relay of one logical operation.
	TraceID string `xml:"TraceID,omitempty"`
	// Trace carries the distributed-tracing context of the event this
	// envelope disseminates, in internal/trace wire form
	// ("00-<traceid>-<spanid>-<flags>"). Absent means unsampled, so peers
	// predating the field interoperate unchanged; relays copy it verbatim
	// unless they record a hop span of their own, in which case they
	// re-stamp it with that span as the new parent.
	Trace string `xml:"Trace,omitempty"`
	// SentAtUnixNano is the wall-clock send time at the origin.
	SentAtUnixNano int64 `xml:"SentAt,omitempty"`
	// VirtualLatencyMicros accumulates simulated per-link latency when the
	// envelope travels over the memory transport.
	VirtualLatencyMicros int64 `xml:"VirtualLatencyMicros,omitempty"`
}

// Body wraps the payload XML verbatim.
type Body struct {
	Inner []byte `xml:",innerxml"`
}

// DefaultTTL bounds forwarding in all protocols; the GDS tree is shallow
// (strata in the paper's figures go to 3) but GS-network forwarding chains
// through sub-collections can be longer, and degenerate chain-shaped
// directories deeper still.
const DefaultTTL = 64

var idCounter atomic.Uint64

// NewID returns a process-unique message identifier. IDs embed the sender
// name so that independently generated IDs never collide across processes.
func NewID(sender string) string {
	n := idCounter.Add(1)
	return sender + "-" + strconv.FormatInt(time.Now().UnixNano(), 36) + "-" + strconv.FormatUint(n, 36)
}

// Errors returned by envelope construction and decoding.
var (
	ErrNoPayload      = errors.New("protocol: envelope has no payload")
	ErrTypeMismatch   = errors.New("protocol: payload type mismatch")
	ErrUnknownType    = errors.New("protocol: unknown message type")
	ErrMalformedFrame = errors.New("protocol: malformed frame")
)

// NewEnvelope builds an envelope of the given type with payload encoded as
// XML. The payload may be nil for body-less messages such as pings.
func NewEnvelope(from string, typ MessageType, payload any) (*Envelope, error) {
	env := &Envelope{
		Header: Header{
			ID:             NewID(from),
			Type:           typ,
			From:           from,
			TTL:            DefaultTTL,
			SentAtUnixNano: time.Now().UnixNano(),
		},
	}
	if payload != nil {
		raw, err := xml.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("protocol: marshal %s payload: %w", typ, err)
		}
		env.Body.Inner = raw
	}
	return env, nil
}

// MustEnvelope is NewEnvelope for payload types known to marshal; it is used
// in tests and internal call sites where a marshal failure is a programming
// error.
func MustEnvelope(from string, typ MessageType, payload any) *Envelope {
	env, err := NewEnvelope(from, typ, payload)
	if err != nil {
		panic(err)
	}
	return env
}

// Decode unmarshals the envelope payload into dst, checking the declared
// message type first.
func Decode(env *Envelope, want MessageType, dst any) error {
	if env == nil || len(env.Body.Inner) == 0 {
		return ErrNoPayload
	}
	if env.Header.Type != want {
		return fmt.Errorf("%w: have %q want %q", ErrTypeMismatch, env.Header.Type, want)
	}
	if err := xml.Unmarshal(env.Body.Inner, dst); err != nil {
		return fmt.Errorf("protocol: unmarshal %s payload: %w", want, err)
	}
	return nil
}

// Marshal renders the envelope as a standalone XML document.
func Marshal(env *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		return nil, fmt.Errorf("protocol: encode envelope: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("protocol: flush envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a standalone XML document into an Envelope.
func Unmarshal(data []byte) (*Envelope, error) {
	var env Envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedFrame, err)
	}
	if env.Header.Type == "" {
		return nil, fmt.Errorf("%w: missing header type", ErrMalformedFrame)
	}
	return &env, nil
}

// Clone deep-copies an envelope so relays can mutate headers independently.
func (e *Envelope) Clone() *Envelope {
	cp := *e
	cp.Body.Inner = bytes.Clone(e.Body.Inner)
	return &cp
}

// Forwardable reports whether the envelope may be relayed one more hop.
func (e *Envelope) Forwardable() bool { return e.Header.TTL > 0 }

// NextHop returns a clone with TTL decremented and hop count incremented,
// ready to be relayed.
func (e *Envelope) NextHop() *Envelope {
	cp := e.Clone()
	cp.Header.TTL--
	cp.Header.Hops++
	return cp
}

// Ack builds the canonical acknowledgement for a request envelope.
func Ack(from string, req *Envelope) *Envelope {
	return &Envelope{Header: Header{
		ID:      NewID(from),
		Type:    MsgAck,
		From:    from,
		To:      req.Header.From,
		TraceID: req.Header.TraceID,
	}}
}

// ErrorPayload describes a remote failure.
type ErrorPayload struct {
	XMLName xml.Name `xml:"Error"`
	Code    string   `xml:"Code"`
	Message string   `xml:"Message"`
}

// Errorf builds an error response envelope.
func Errorf(from, code string, format string, args ...any) *Envelope {
	env, _ := NewEnvelope(from, MsgError, &ErrorPayload{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
	return env
}

// AsError converts an error-typed envelope into a Go error; it returns nil
// for any other envelope type.
func AsError(env *Envelope) error {
	if env == nil || env.Header.Type != MsgError {
		return nil
	}
	var p ErrorPayload
	if err := xml.Unmarshal(env.Body.Inner, &p); err != nil {
		return fmt.Errorf("protocol: remote error (undecodable: %v)", err)
	}
	return &RemoteError{Code: p.Code, Message: p.Message, From: env.Header.From}
}

// RemoteError is a failure reported by a remote peer.
type RemoteError struct {
	Code    string
	Message string
	From    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error from %s: %s: %s", e.From, e.Code, e.Message)
}
