package protocol

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEnvelopeRoundTrip(t *testing.T) {
	env, err := NewEnvelope("hamilton", MsgResolve, &Resolve{Name: "london"})
	if err != nil {
		t.Fatalf("NewEnvelope: %v", err)
	}
	if env.Header.From != "hamilton" {
		t.Errorf("From = %q, want hamilton", env.Header.From)
	}
	if env.Header.TTL != DefaultTTL {
		t.Errorf("TTL = %d, want %d", env.Header.TTL, DefaultTTL)
	}
	raw, err := Marshal(env)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Header.ID != env.Header.ID {
		t.Errorf("ID round trip: got %q want %q", got.Header.ID, env.Header.ID)
	}
	var r Resolve
	if err := Decode(got, MsgResolve, &r); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if r.Name != "london" {
		t.Errorf("Resolve.Name = %q, want london", r.Name)
	}
}

func TestDecodeTypeMismatch(t *testing.T) {
	env := MustEnvelope("a", MsgPing, &Ping{Seq: 7})
	var r Resolve
	err := Decode(env, MsgResolve, &r)
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
}

func TestDecodeNoPayload(t *testing.T) {
	env := &Envelope{Header: Header{Type: MsgPing}}
	var p Ping
	if err := Decode(env, MsgPing, &p); !errors.Is(err, ErrNoPayload) {
		t.Fatalf("err = %v, want ErrNoPayload", err)
	}
	if err := Decode(nil, MsgPing, &p); !errors.Is(err, ErrNoPayload) {
		t.Fatalf("nil env err = %v, want ErrNoPayload", err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := []string{
		"",
		"<not-closed",
		"<Envelope><Header></Header><Body/></Envelope>", // missing type
		"plain text",
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("Unmarshal(%q): want error, got nil", c)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewID("n")
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestNewIDEmbedsSender(t *testing.T) {
	if id := NewID("hamilton"); !strings.HasPrefix(id, "hamilton-") {
		t.Errorf("id %q does not embed sender", id)
	}
}

func TestNextHop(t *testing.T) {
	env := MustEnvelope("a", MsgPing, &Ping{})
	env.Header.TTL = 2
	h1 := env.NextHop()
	if h1.Header.TTL != 1 || h1.Header.Hops != 1 {
		t.Fatalf("after one hop: TTL=%d Hops=%d", h1.Header.TTL, h1.Header.Hops)
	}
	h2 := h1.NextHop()
	if h2.Forwardable() {
		t.Error("TTL 0 envelope should not be forwardable")
	}
	// Original must be untouched.
	if env.Header.TTL != 2 || env.Header.Hops != 0 {
		t.Errorf("original mutated: TTL=%d Hops=%d", env.Header.TTL, env.Header.Hops)
	}
}

func TestCloneIsDeep(t *testing.T) {
	env := MustEnvelope("a", MsgPing, &Ping{Seq: 1})
	cp := env.Clone()
	cp.Body.Inner[0] = 'X'
	if env.Body.Inner[0] == 'X' {
		t.Error("Clone shares body bytes with original")
	}
}

func TestAck(t *testing.T) {
	req := MustEnvelope("client", MsgSubscribe, &Subscribe{Client: "c1"})
	req.Header.TraceID = "trace-9"
	ack := Ack("server", req)
	if ack.Header.Type != MsgAck {
		t.Errorf("ack type = %q", ack.Header.Type)
	}
	if ack.Header.To != "client" || ack.Header.From != "server" {
		t.Errorf("ack addressing = %q -> %q", ack.Header.From, ack.Header.To)
	}
	if ack.Header.TraceID != "trace-9" {
		t.Errorf("ack trace = %q", ack.Header.TraceID)
	}
}

func TestErrorEnvelope(t *testing.T) {
	env := Errorf("srv", "not-found", "collection %q unknown", "X")
	err := AsError(env)
	if err == nil {
		t.Fatal("AsError returned nil for error envelope")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err %T is not *RemoteError", err)
	}
	if re.Code != "not-found" || !strings.Contains(re.Message, `"X"`) {
		t.Errorf("remote error = %+v", re)
	}
	if AsError(MustEnvelope("s", MsgPing, &Ping{})) != nil {
		t.Error("AsError on non-error envelope should be nil")
	}
}

func TestRawXMLRoundTrip(t *testing.T) {
	inner := []byte("<Thing><A>1</A><B>two &amp; three</B></Thing>")
	env := MustEnvelope("s", MsgForwardProfile, &ForwardProfile{Profile: Wrap(inner)})
	raw, err := Marshal(env)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	var fp ForwardProfile
	if err := Decode(back, MsgForwardProfile, &fp); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(fp.Profile.Bytes()) != string(inner) {
		t.Errorf("raw xml round trip:\n got %s\nwant %s", fp.Profile.Bytes(), inner)
	}
}

func TestSubscribeClientSurvivesRawProfile(t *testing.T) {
	sub := &Subscribe{Client: "alice", Profile: Wrap([]byte("<P><Q>x</Q></P>"))}
	env := MustEnvelope("s", MsgSubscribe, sub)
	raw, _ := Marshal(env)
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	var got Subscribe
	if err := Decode(back, MsgSubscribe, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Client != "alice" {
		t.Errorf("Client = %q, want alice", got.Client)
	}
	if string(got.Profile.Bytes()) != "<P><Q>x</Q></P>" {
		t.Errorf("Profile = %s", got.Profile.Bytes())
	}
}

// Property: any envelope with printable payload content survives a
// marshal/unmarshal round trip with header intact.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(from, name string, ttl uint8) bool {
		env, err := NewEnvelope(sanitize(from), MsgResolve, &Resolve{Name: sanitize(name)})
		if err != nil {
			return false
		}
		env.Header.TTL = int(ttl)
		raw, err := Marshal(env)
		if err != nil {
			return false
		}
		got, err := Unmarshal(raw)
		if err != nil {
			return false
		}
		var r Resolve
		if err := Decode(got, MsgResolve, &r); err != nil {
			return false
		}
		return got.Header.TTL == int(ttl) && r.Name == sanitize(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sanitize strips characters that XML 1.0 cannot represent (control chars),
// mirroring what callers must do with external input.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return -1
		}
		if r == 0xFFFE || r == 0xFFFF {
			return -1
		}
		return r
	}, s)
}

func TestBroadcastWrapUnwrap(t *testing.T) {
	innerEnv := MustEnvelope("origin", MsgEvent, &EventPayload{Event: Wrap([]byte("<Ev/>"))})
	rawInner, err := Marshal(innerEnv)
	if err != nil {
		t.Fatalf("marshal inner: %v", err)
	}
	bc := MustEnvelope("origin", MsgBroadcast, &Broadcast{Inner: rawInner})
	rawBC, _ := Marshal(bc)
	back, err := Unmarshal(rawBC)
	if err != nil {
		t.Fatalf("unmarshal broadcast: %v", err)
	}
	var b Broadcast
	if err := Decode(back, MsgBroadcast, &b); err != nil {
		t.Fatalf("decode broadcast: %v", err)
	}
	inner, err := Unmarshal(b.Inner)
	if err != nil {
		t.Fatalf("unmarshal wrapped inner: %v", err)
	}
	if inner.Header.ID != innerEnv.Header.ID {
		t.Errorf("inner id = %q want %q", inner.Header.ID, innerEnv.Header.ID)
	}
}

func TestContentRoutingPayloadRoundTrips(t *testing.T) {
	ap := &AdvertiseProfiles{
		Name:   "Hamilton",
		Digest: []string{`collection = "Hamilton.D" AND event.type = "collection-rebuilt"`, "*"},
	}
	env, err := NewEnvelope("Hamilton", MsgAdvertiseProfiles, ap)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var got AdvertiseProfiles
	if err := Decode(back, MsgAdvertiseProfiles, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != ap.Name || len(got.Digest) != 2 || got.Digest[0] != ap.Digest[0] || got.Digest[1] != "*" {
		t.Errorf("AdvertiseProfiles round trip = %+v", got)
	}

	// An empty digest (explicit "no interests") survives the wire.
	empty := &AdvertiseProfiles{Name: "London"}
	env2 := MustEnvelope("London", MsgAdvertiseProfiles, empty)
	raw2, err := Marshal(env2)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Unmarshal(raw2)
	if err != nil {
		t.Fatal(err)
	}
	var got2 AdvertiseProfiles
	if err := Decode(back2, MsgAdvertiseProfiles, &got2); err != nil {
		t.Fatal(err)
	}
	if got2.Name != "London" || len(got2.Digest) != 0 {
		t.Errorf("empty AdvertiseProfiles round trip = %+v", got2)
	}

	inner := MustEnvelope("Hamilton", MsgPing, &Ping{Seq: 7})
	innerRaw, err := Marshal(inner)
	if err != nil {
		t.Fatal(err)
	}
	rc := &RouteContent{
		Flood: true,
		Attrs: []EventAttr{
			{Name: "collection", Value: "hamilton.d"},
			{Name: "event.type", Value: "collection-rebuilt"},
		},
		Inner: innerRaw,
	}
	env3 := MustEnvelope("Hamilton", MsgRouteContent, rc)
	raw3, err := Marshal(env3)
	if err != nil {
		t.Fatal(err)
	}
	back3, err := Unmarshal(raw3)
	if err != nil {
		t.Fatal(err)
	}
	var got3 RouteContent
	if err := Decode(back3, MsgRouteContent, &got3); err != nil {
		t.Fatal(err)
	}
	if !got3.Flood {
		t.Error("Flood flag lost")
	}
	attrs := got3.AttrMap()
	if attrs["collection"] != "hamilton.d" || attrs["event.type"] != "collection-rebuilt" {
		t.Errorf("AttrMap = %v", attrs)
	}
	wrapped, err := Unmarshal(got3.Inner)
	if err != nil {
		t.Fatalf("inner unmarshal: %v", err)
	}
	if wrapped.Header.Type != MsgPing {
		t.Errorf("inner type = %s", wrapped.Header.Type)
	}
}
