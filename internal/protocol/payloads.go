package protocol

import "encoding/xml"

// This file declares the typed payloads carried inside envelope bodies.
// Richer domain objects (events, profiles, documents) marshal themselves and
// are embedded via their own XML forms; the payloads here are the protocol-
// level records of the GDS and GS protocols.

// RegisterServer registers a Greenstone server with a GDS node
// (paper §4.1: "each server is registered at exactly one service
// installation").
type RegisterServer struct {
	XMLName xml.Name `xml:"RegisterServer"`
	// Name is the network-internal name of the Greenstone server.
	Name string `xml:"Name"`
	// Addr is the transport address at which the server listens.
	Addr string `xml:"Addr"`
}

// UnregisterServer removes a server registration.
type UnregisterServer struct {
	XMLName xml.Name `xml:"UnregisterServer"`
	Name    string   `xml:"Name"`
}

// RegisterChild attaches a child GDS node to a parent.
type RegisterChild struct {
	XMLName xml.Name `xml:"RegisterChild"`
	// NodeID is the identifier of the child GDS node.
	NodeID string `xml:"NodeID"`
	// Addr is the child's transport address.
	Addr string `xml:"Addr"`
	// Stratum is the child's stratum (parent stratum + 1).
	Stratum int `xml:"Stratum"`
}

// Resolve asks the directory for the address of a named server
// (the DNS-like naming service of paper §4.1/§6).
type Resolve struct {
	XMLName xml.Name `xml:"Resolve"`
	Name    string   `xml:"Name"`
	// NoRecurse stops upward delegation; used between GDS nodes to ask
	// "do *you* know this name" during downward fan-out.
	NoRecurse bool `xml:"NoRecurse,omitempty"`
}

// ResolveResult answers Resolve.
type ResolveResult struct {
	XMLName xml.Name `xml:"ResolveResult"`
	Name    string   `xml:"Name"`
	Addr    string   `xml:"Addr,omitempty"`
	Found   bool     `xml:"Found"`
	// Stratum of the GDS node that answered, for diagnostics.
	Stratum int `xml:"Stratum"`
}

// Broadcast wraps an inner envelope to be flooded to every Greenstone server
// registered anywhere in the GDS tree (paper §4.1: "distributed upwards
// within the tree and downwards to all tree leaves").
type Broadcast struct {
	XMLName xml.Name `xml:"Broadcast"`
	// Inner is the marshalled envelope to deliver to each server.
	Inner []byte `xml:"Inner"`
}

// Multicast wraps an inner envelope for the members of one group.
type Multicast struct {
	XMLName xml.Name `xml:"Multicast"`
	Group   string   `xml:"Group"`
	Inner   []byte   `xml:"Inner"`
}

// JoinGroup subscribes a server to a multicast group.
type JoinGroup struct {
	XMLName xml.Name `xml:"JoinGroup"`
	Group   string   `xml:"Group"`
	Name    string   `xml:"Name"`
	Addr    string   `xml:"Addr"`
}

// LeaveGroup removes a server from a multicast group.
type LeaveGroup struct {
	XMLName xml.Name `xml:"LeaveGroup"`
	Group   string   `xml:"Group"`
	Name    string   `xml:"Name"`
}

// AdvertiseProfiles installs the profile digest of one tree link for
// content-based routing. Name identifies the advertiser — the sending
// server itself, or a directory node summarising its whole subtree. The
// digest is a DNF over event-level attributes, one profile-language
// conjunction per entry ("*" is the match-all conjunction); an empty list
// is the explicit "no interests here" that lets the directory prune the
// link entirely.
type AdvertiseProfiles struct {
	XMLName xml.Name `xml:"AdvertiseProfiles"`
	Name    string   `xml:"Name"`
	Digest  []string `xml:"Digest>Conj,omitempty"`
}

// UnadvertiseProfiles withdraws a link's digest. Unlike advertising an
// empty digest (= prune me), withdrawal returns the link to the unwarmed
// match-all state in which it receives every content-routed event.
type UnadvertiseProfiles struct {
	XMLName xml.Name `xml:"UnadvertiseProfiles"`
	Name    string   `xml:"Name"`
}

// EventAttr is one event-level attribute carried by a content-routed
// message so directory nodes can match digests without decoding the inner
// envelope.
type EventAttr struct {
	XMLName xml.Name `xml:"Attr"`
	Name    string   `xml:"name,attr"`
	Value   string   `xml:",chardata"`
}

// RouteContent disseminates a wrapped envelope content-based through the
// directory tree. Flood forces broadcast semantics (the warm-up fallback
// used while routing tables are still being populated).
type RouteContent struct {
	XMLName xml.Name    `xml:"RouteContent"`
	Flood   bool        `xml:"Flood,omitempty"`
	Attrs   []EventAttr `xml:"Attrs>Attr,omitempty"`
	Inner   []byte      `xml:"Inner"`
}

// AttrMap converts the carried attributes to the map form digests match
// against.
func (rc *RouteContent) AttrMap() map[string]string {
	m := make(map[string]string, len(rc.Attrs))
	for _, a := range rc.Attrs {
		m[a.Name] = a.Value
	}
	return m
}

// Describe asks a server to describe its public collections.
type Describe struct {
	XMLName xml.Name `xml:"Describe"`
	// Collection optionally narrows the description to one collection.
	Collection string `xml:"Collection,omitempty"`
}

// CollectionInfo summarises one collection in a DescribeResult.
type CollectionInfo struct {
	XMLName      xml.Name `xml:"CollectionInfo"`
	Name         string   `xml:"Name"`
	Title        string   `xml:"Title,omitempty"`
	Public       bool     `xml:"Public"`
	Virtual      bool     `xml:"Virtual"`
	DocCount     int      `xml:"DocCount"`
	BuildVersion int      `xml:"BuildVersion"`
	// SubCollections lists qualified names ("host.collection") of
	// sub-collections, local and remote.
	SubCollections []string `xml:"SubCollections>Sub,omitempty"`
	// IndexFields lists the metadata fields this collection indexes, which
	// bounds the retrieval functionality profiles may use (paper §5).
	IndexFields []string `xml:"IndexFields>Field,omitempty"`
}

// DescribeResult answers Describe.
type DescribeResult struct {
	XMLName     xml.Name         `xml:"DescribeResult"`
	Host        string           `xml:"Host"`
	Collections []CollectionInfo `xml:"Collections>CollectionInfo,omitempty"`
}

// Search runs a retrieval query against a collection.
type Search struct {
	XMLName    xml.Name `xml:"Search"`
	Collection string   `xml:"Collection"`
	Query      string   `xml:"Query"`
	// Field restricts the search to one metadata field; empty searches text.
	Field string `xml:"Field,omitempty"`
	Limit int    `xml:"Limit,omitempty"`
	// FollowSubs includes distributed sub-collections in the search.
	FollowSubs bool `xml:"FollowSubs,omitempty"`
	// Visited carries the qualified collection names already expanded, the
	// cycle guard for cyclic sub-collection references (paper §1 problem 2).
	Visited []string `xml:"Visited>Name,omitempty"`
}

// SearchHit is one scored result.
type SearchHit struct {
	XMLName    xml.Name `xml:"Hit"`
	DocID      string   `xml:"DocID"`
	Collection string   `xml:"Collection"`
	Score      float64  `xml:"Score"`
	Title      string   `xml:"Title,omitempty"`
}

// SearchResult answers Search.
type SearchResult struct {
	XMLName xml.Name    `xml:"SearchResult"`
	Total   int         `xml:"Total"`
	Hits    []SearchHit `xml:"Hits>Hit,omitempty"`
}

// Browse requests a classifier shelf of a collection.
type Browse struct {
	XMLName    xml.Name `xml:"Browse"`
	Collection string   `xml:"Collection"`
	Classifier string   `xml:"Classifier"`
}

// BrowseBucket is one shelf of a classifier.
type BrowseBucket struct {
	XMLName xml.Name `xml:"Bucket"`
	Label   string   `xml:"Label"`
	DocIDs  []string `xml:"Docs>ID,omitempty"`
}

// BrowseResult answers Browse.
type BrowseResult struct {
	XMLName    xml.Name       `xml:"BrowseResult"`
	Collection string         `xml:"Collection"`
	Classifier string         `xml:"Classifier"`
	Buckets    []BrowseBucket `xml:"Buckets>Bucket,omitempty"`
}

// GetDocument fetches a single document.
type GetDocument struct {
	XMLName    xml.Name `xml:"GetDocument"`
	Collection string   `xml:"Collection"`
	DocID      string   `xml:"DocID"`
}

// MetaField is one metadata key with its values.
type MetaField struct {
	XMLName xml.Name `xml:"Meta"`
	Name    string   `xml:"name,attr"`
	Values  []string `xml:"Value"`
}

// DocumentPayload carries one document over the wire.
type DocumentPayload struct {
	XMLName  xml.Name    `xml:"Document"`
	ID       string      `xml:"ID"`
	MIME     string      `xml:"MIME,omitempty"`
	Metadata []MetaField `xml:"Metadata>Meta,omitempty"`
	Content  string      `xml:"Content,omitempty"`
}

// DocumentResult answers GetDocument.
type DocumentResult struct {
	XMLName  xml.Name         `xml:"DocumentResult"`
	Found    bool             `xml:"Found"`
	Document *DocumentPayload `xml:"Document,omitempty"`
}

// CollectData asks a server for the full data of a collection including its
// distributed sub-collections (paper §3's Hamilton.D → London.E walk).
type CollectData struct {
	XMLName    xml.Name `xml:"CollectData"`
	Collection string   `xml:"Collection"`
	// Visited is the cycle guard of qualified names already expanded.
	Visited []string `xml:"Visited>Name,omitempty"`
}

// CollectDataResult answers CollectData.
type CollectDataResult struct {
	XMLName   xml.Name          `xml:"CollectDataResult"`
	Documents []DocumentPayload `xml:"Documents>Document,omitempty"`
	// Truncated reports that a sub-collection could not be reached; data is
	// best-effort complete (the paper's delayed-until-reconnect semantics
	// apply to alerting, not retrieval).
	Truncated bool `xml:"Truncated,omitempty"`
}

// RawXML embeds pre-marshalled XML verbatim inside a parent element, so
// relays can carry domain payloads (profiles, events, wrapped envelopes)
// without re-encoding or even understanding them.
type RawXML struct {
	Inner []byte `xml:",innerxml"`
}

// Wrap stores raw XML. Unmarshalled RawXML values expose the inner XML of
// the wrapping element via Bytes.
func Wrap(raw []byte) RawXML { return RawXML{Inner: raw} }

// Bytes returns the embedded XML.
func (r RawXML) Bytes() []byte { return r.Inner }

// Subscribe registers a user profile. The profile XML (internal/profile) is
// embedded verbatim.
type Subscribe struct {
	XMLName xml.Name `xml:"Subscribe"`
	Client  string   `xml:"Client"`
	Profile RawXML   `xml:"Profile"`
}

// Unsubscribe cancels a user profile.
type Unsubscribe struct {
	XMLName   xml.Name `xml:"Unsubscribe"`
	Client    string   `xml:"Client"`
	ProfileID string   `xml:"ProfileID"`
}

// ForwardProfile installs an auxiliary profile at a sub-collection's server
// (paper §4.2). The profile XML is embedded verbatim.
type ForwardProfile struct {
	XMLName xml.Name `xml:"ForwardProfile"`
	Profile RawXML   `xml:"Profile"`
}

// CancelProfile removes a forwarded auxiliary profile.
type CancelProfile struct {
	XMLName   xml.Name `xml:"CancelProfile"`
	ProfileID string   `xml:"ProfileID"`
}

// EventPayload carries an alerting event; the event XML (internal/event) is
// embedded verbatim so relays need not understand it.
type EventPayload struct {
	XMLName xml.Name `xml:"EventPayload"`
	// TransformTo, when set on a GS-network forwarded event, names the
	// super-collection ("Host.Collection") the receiving server must rename
	// the event to before re-broadcasting (paper §4.2). Empty on GDS
	// broadcast deliveries.
	TransformTo string `xml:"TransformTo,omitempty"`
	Event       RawXML `xml:"Event"`
}

// Notify delivers a notification to a client. For synthesized composite
// alerts travelling inside a MsgNotifyBatch, Composite names the operator
// and Contributing carries the primitive events — keeping a mixed batch a
// single atomic envelope (a partial multi-envelope send would redeliver
// its delivered prefix after a failure).
type Notify struct {
	XMLName   xml.Name `xml:"Notify"`
	Client    string   `xml:"Client"`
	ProfileID string   `xml:"ProfileID"`
	// Composite is the composite operator ("sequence", "count", "digest");
	// empty for primitive alerts.
	Composite string `xml:"Composite,omitempty"`
	// Class is the QoS priority class of the subscription ("realtime",
	// "normal", "bulk"); empty means normal (pre-QoS senders).
	Class        string   `xml:"Class,omitempty"`
	Event        RawXML   `xml:"Event"`
	Contributing []RawXML `xml:"Contributing>Event,omitempty"`
}

// NotifyBatch delivers several notifications to one client in a single
// envelope, amortising transport round-trips (delivery pipeline batching).
type NotifyBatch struct {
	XMLName xml.Name `xml:"NotifyBatch"`
	Items   []Notify `xml:"Items>Notify,omitempty"`
}

// CompositeNotify delivers one synthesized composite notification: Event
// is the synthesized composite-alert event and Contributing are the
// primitive events that completed the sequence, reached the accumulation
// threshold, or accrued over the digest period (in arrival order).
type CompositeNotify struct {
	XMLName   xml.Name `xml:"CompositeNotify"`
	Client    string   `xml:"Client"`
	ProfileID string   `xml:"ProfileID"`
	// Kind is the composite operator: "sequence", "count" or "digest".
	Kind   string   `xml:"Kind"`
	DocIDs []string `xml:"Docs>ID,omitempty"`
	// Class is the QoS priority class ("realtime", "normal", "bulk");
	// empty means normal. QoS bulk coalescing delivers its digests with
	// Kind "digest" and Class "bulk".
	Class        string   `xml:"Class,omitempty"`
	Event        RawXML   `xml:"Event"`
	Contributing []RawXML `xml:"Contributing>Event,omitempty"`
}

// AttachNotifier subscribes a client address to push delivery of the
// client's notifications; anything parked in the client's server-side
// mailbox drains immediately (paper §7 reconnect, applied to alerts).
type AttachNotifier struct {
	XMLName xml.Name `xml:"AttachNotifier"`
	Client  string   `xml:"Client"`
	// Addr is the transport address MsgNotify/MsgNotifyBatch envelopes are
	// pushed to.
	Addr string `xml:"Addr"`
}

// DetachNotifier stops push delivery for a client; subsequent notifications
// park in the client's server-side mailbox until it re-attaches.
type DetachNotifier struct {
	XMLName xml.Name `xml:"DetachNotifier"`
	Client  string   `xml:"Client"`
}

// ReplProfileOp replicates one profile (un)subscription from a primary
// alerting server to its standby (MsgReplSubscribe). Seq is the primary's
// stream position; the standby applies records in stream order and requests
// a snapshot when it detects a gap.
type ReplProfileOp struct {
	XMLName xml.Name `xml:"ReplProfileOp"`
	Seq     uint64   `xml:"Seq"`
	// Op is "subscribe" or "unsubscribe".
	Op string `xml:"Op"`
	// Client owns the profile; empty for auxiliary profiles (which have no
	// owning client at the hosting server).
	Client string `xml:"Client,omitempty"`
	// ProfileID identifies the profile on unsubscribe.
	ProfileID string `xml:"ProfileID,omitempty"`
	// IDSeq is the primary's profile-ID counter at send time; the standby
	// seeds its own counter so post-promotion IDs never collide with
	// primary-minted ones.
	IDSeq uint64 `xml:"IDSeq,omitempty"`
	// Profile is the profile XML on subscribe (user, composite wrapper or
	// auxiliary — the same wire form MsgSubscribe uses).
	Profile RawXML `xml:"Profile"`
}

// ReplWALItem is one replicated state-change record inside a ReplWAL batch.
type ReplWALItem struct {
	XMLName xml.Name `xml:"Item"`
	// Kind is "append" (mailbox WAL append), "ack" (delivery/eviction) or
	// "dedup" (event-ID admission to the duplicate-suppression window).
	Kind string `xml:"Kind"`
	// Client is the mailbox owner for append/ack records.
	Client string `xml:"Client,omitempty"`
	// MailboxSeq is the primary's per-mailbox sequence for append/ack.
	MailboxSeq uint64 `xml:"MailboxSeq,omitempty"`
	// DedupID is the admitted event ID for dedup records.
	DedupID string `xml:"DedupID,omitempty"`
	// Notification is the persisted notification XML (the delivery WAL
	// form) for append records.
	Notification RawXML `xml:"Notification"`
}

// ReplWAL replicates a batch of mailbox WAL records and dedup admissions
// (MsgReplWAL). One envelope carries the records of one primary-side
// operation (e.g. an enqueue plus the evictions it caused).
type ReplWAL struct {
	XMLName xml.Name      `xml:"ReplWAL"`
	Seq     uint64        `xml:"Seq"`
	Items   []ReplWALItem `xml:"Items>Item,omitempty"`
}

// ReplAck reports the standby's applied stream position (MsgReplAck). The
// standby returns it as the response to every stream envelope; with Resync
// set it asks the primary for a snapshot instead (join, rejoin after a gap,
// or recovery from an apply failure). As a standalone request to the
// primary's replication endpoint it is the join handshake: Addr names the
// standby's own endpoint and the response is the MsgReplSnapshot.
type ReplAck struct {
	XMLName    xml.Name `xml:"ReplAck"`
	AppliedSeq uint64   `xml:"AppliedSeq"`
	Resync     bool     `xml:"Resync,omitempty"`
	// Addr is the standby's replication endpoint (join handshake only).
	Addr string `xml:"Addr,omitempty"`
	// ServerName is the primary name the standby stands by for, a sanity
	// check against cross-wired replication pairs.
	ServerName string `xml:"ServerName,omitempty"`
	// QoSBuckets carries the primary's current token-bucket levels on
	// heartbeat responses, keeping the standby's quota view fresh between
	// snapshots so a promotion does not reset admission state.
	QoSBuckets []ReplQoSBucket `xml:"QoS>Bucket,omitempty"`
}

// ReplQoSBucket is one admission-control token bucket's replicated level
// (qos.BucketState on the wire).
type ReplQoSBucket struct {
	XMLName xml.Name `xml:"Bucket"`
	// Dimension is the quota dimension: "subscriber" or "collection".
	Dimension string `xml:"dimension,attr"`
	// Key is the subscriber or collection name.
	Key string `xml:"Key"`
	// Tokens is the stored token level.
	Tokens float64 `xml:"Tokens"`
	// LastUnixNano is the bucket's last-touch time the refill math is
	// relative to (UnixNano; 0 = never touched).
	LastUnixNano int64 `xml:"Last,omitempty"`
}

// ReplMailboxEntry is one undelivered notification inside a snapshot.
type ReplMailboxEntry struct {
	XMLName      xml.Name `xml:"Entry"`
	Seq          uint64   `xml:"Seq"`
	Notification RawXML   `xml:"Notification"`
}

// ReplMailbox is one user's mailbox inside a snapshot.
type ReplMailbox struct {
	XMLName xml.Name           `xml:"Mailbox"`
	Client  string             `xml:"Client"`
	NextSeq uint64             `xml:"NextSeq"`
	Entries []ReplMailboxEntry `xml:"Entries>Entry,omitempty"`
}

// ReplSnapshot carries the primary's full replicable state (MsgReplSnapshot):
// every subscription (the core.SaveSubscriptions XML), every undelivered
// mailbox entry, and the dedup window, stamped with the stream position Seq
// as of which the snapshot is consistent. Stream records with lower
// sequences are duplicates of snapshot content and are skipped by the
// standby.
type ReplSnapshot struct {
	XMLName xml.Name `xml:"ReplSnapshot"`
	Seq     uint64   `xml:"Seq"`
	// Server is the primary's server name (the identity the standby
	// inherits on promotion).
	Server string `xml:"Server"`
	// Mode is the primary's routing mode, re-established on promotion.
	Mode string `xml:"Mode,omitempty"`
	// IDSeq seeds the standby's profile-ID counter.
	IDSeq uint64 `xml:"IDSeq,omitempty"`
	// Subscriptions is the <Subscriptions> document of core.SaveSubscriptions.
	Subscriptions RawXML        `xml:"Subscriptions"`
	Mailboxes     []ReplMailbox `xml:"Mailboxes>Mailbox,omitempty"`
	DedupIDs      []string      `xml:"Dedup>ID,omitempty"`
	// QoSBuckets carries the primary's token-bucket levels so promotion
	// does not reset admission quotas.
	QoSBuckets []ReplQoSBucket `xml:"QoS>Bucket,omitempty"`
}

// ReplPromote orders a standby to promote itself (MsgReplPromote). Mode
// optionally overrides the routing mode inherited from the stream.
type ReplPromote struct {
	XMLName xml.Name `xml:"ReplPromote"`
	Mode    string   `xml:"Mode,omitempty"`
}

// Ping is a liveness probe; Seq echoes back in the ack trace.
type Ping struct {
	XMLName xml.Name `xml:"Ping"`
	Seq     int      `xml:"Seq"`
}
