package protocol

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal drives the envelope decoder with arbitrary byte streams —
// the exact surface a hostile or corrupted peer reaches first. It must
// never panic; whatever it accepts must survive the Marshal→Unmarshal
// round trip with the header intact (the dedup and routing fields the rest
// of the system trusts).
func FuzzUnmarshal(f *testing.F) {
	// Real envelopes of several types as seeds, plus malformed shapes.
	for _, env := range []*Envelope{
		MustEnvelope("gds0", MsgPing, nil),
		MustEnvelope("C001", MsgAck, nil),
		MustEnvelope("C002", MsgReplWAL, &ErrorPayload{Code: "x", Message: "not really"}),
	} {
		raw, err := Marshal(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`<Envelope><Header><Type>gds.ping</Type></Header></Envelope>`))
	f.Add([]byte(`<Envelope><Header></Header></Envelope>`)) // missing type
	f.Add([]byte(`not xml at all`))
	f.Add([]byte(``))
	f.Add([]byte(`<Envelope><Body><inner>&#0;</inner></Body>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if env.Header.Type == "" {
			t.Fatalf("Unmarshal accepted an envelope without a header type: %q", data)
		}
		raw, err := Marshal(env)
		if err != nil {
			t.Fatalf("accepted envelope does not re-marshal: %v\ninput: %q", err, data)
		}
		again, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("re-marshalled envelope does not re-parse: %v\nround: %q", err, raw)
		}
		if again.Header.ID != env.Header.ID || again.Header.Type != env.Header.Type ||
			again.Header.From != env.Header.From || again.Header.TTL != env.Header.TTL {
			t.Fatalf("header drifted across round trip:\nfirst: %+v\nagain: %+v", env.Header, again.Header)
		}
		if !bytes.Equal(bytes.TrimSpace(again.Body.Inner), bytes.TrimSpace(env.Body.Inner)) {
			t.Fatalf("body drifted across round trip:\nfirst: %q\nagain: %q", env.Body.Inner, again.Body.Inner)
		}
	})
}
