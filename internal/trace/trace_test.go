package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testTracer(t *testing.T, rate float64, slow time.Duration, capacity int) *Tracer {
	t.Helper()
	return New(Config{
		Service:    "test",
		SampleRate: rate,
		SlowRoot:   slow,
		Seed:       42,
		Collector:  NewCollector(capacity),
	})
}

func TestContextWireRoundTrip(t *testing.T) {
	tr := testTracer(t, 1, 0, 0)
	root := tr.StartRoot(StagePublish)
	ctx := root.Context()
	if !ctx.Sampled() {
		t.Fatalf("rate-1 root not sampled")
	}
	wire := ctx.String()
	back, ok := Parse(wire)
	if !ok || back != ctx {
		t.Fatalf("round trip %q -> %+v (ok=%v), want %+v", wire, back, ok, ctx)
	}
	if len(ctx.TraceID()) != 32 || len(ctx.SpanID()) != 16 {
		t.Fatalf("ID widths: trace %q span %q", ctx.TraceID(), ctx.SpanID())
	}
}

func TestParseEmptyAndMalformed(t *testing.T) {
	if c, ok := Parse(""); !ok || c.Valid() {
		t.Fatalf("empty string must parse to the zero context, got %+v ok=%v", c, ok)
	}
	for _, bad := range []string{
		"00-zz-11-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-02",
		"00-00000000000000000000000000000000-0000000000000000-01",
		"garbage",
	} {
		if _, ok := Parse(bad); ok {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

func TestHeadSamplingDeterministicAndProportional(t *testing.T) {
	a := testTracer(t, 0.5, 0, 1<<16)
	b := testTracer(t, 0.5, 0, 1<<16)
	const n = 4096
	sampled := 0
	for i := 0; i < n; i++ {
		sa := a.StartRoot(StagePublish)
		sb := b.StartRoot(StagePublish)
		if sa.Recording() != sb.Recording() {
			t.Fatalf("same seed diverged at root %d", i)
		}
		if sa.Recording() {
			sampled++
		}
	}
	if sampled < n/4 || sampled > 3*n/4 {
		t.Fatalf("rate-0.5 sampled %d of %d", sampled, n)
	}
	off := testTracer(t, 0, 0, 64)
	if s := off.StartRoot(StagePublish); s.Recording() {
		t.Fatalf("rate-0 root is recording")
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatalf("nil tracer enabled")
	}
	s := tr.StartRoot(StagePublish)
	s.SetAttr("k", "v")
	s.SetClass("normal")
	s.Finish()
	c := tr.StartChild(s.Context(), StageMatch)
	c.Finish()
	if tr.Record(Context{}, StageFlush, time.Time{}, 0, "") != (Context{}) {
		t.Fatalf("nil tracer recorded")
	}
}

func TestTailRetainKeepsSlowRoots(t *testing.T) {
	now := time.Unix(1_120_000_000, 0)
	clock := func() time.Time { return now }
	col := NewCollector(64)
	tr := New(Config{Service: "t", SampleRate: 0, SlowRoot: 10 * time.Millisecond, Seed: 7, Collector: col, Clock: clock})

	fast := tr.StartRoot(StagePublish)
	now = now.Add(time.Millisecond)
	fast.Finish()
	if got := col.SpansTotal(); got != 0 {
		t.Fatalf("fast unsampled root recorded: %d spans", got)
	}

	slow := tr.StartRoot(StagePublish)
	now = now.Add(50 * time.Millisecond)
	slow.Finish()
	snap := col.Snapshot()
	if len(snap) != 1 || !snap[0].Retained || snap[0].Name != StagePublish {
		t.Fatalf("slow root not tail-retained: %+v", snap)
	}
}

func TestCollectorDropOldest(t *testing.T) {
	col := NewCollector(collectorShards) // one slot per shard
	tr := New(Config{SampleRate: 1, Seed: 3, Collector: col})
	for i := 0; i < 4*collectorShards; i++ {
		s := tr.StartRoot(StagePublish)
		s.Finish()
	}
	if got := col.SpansTotal(); got != 4*collectorShards {
		t.Fatalf("SpansTotal = %d", got)
	}
	if occ := col.Occupancy(); occ > int64(col.Capacity()) {
		t.Fatalf("occupancy %d exceeds capacity %d", occ, col.Capacity())
	}
	if col.Dropped() == 0 {
		t.Fatalf("overwriting a full ring reported no drops")
	}
	if n := len(col.Snapshot()); n > col.Capacity() {
		t.Fatalf("snapshot %d exceeds capacity", n)
	}
}

func TestCollectorConcurrentAddSnapshot(t *testing.T) {
	col := NewCollector(256)
	tr := New(Config{SampleRate: 1, Seed: 11, Collector: col})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.StartRoot(StagePublish)
				c := tr.StartChild(s.Context(), StageMatch)
				c.Finish()
				s.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			col.Snapshot()
			col.Traces(Filter{Limit: 10})
		}
	}()
	wg.Wait()
	<-done
	if col.SpansTotal() != 8000 {
		t.Fatalf("SpansTotal = %d, want 8000", col.SpansTotal())
	}
}

func TestAssembleAndFilters(t *testing.T) {
	now := time.Unix(1_120_000_000, 0)
	clock := func() time.Time { return now }
	col := NewCollector(256)
	tr := New(Config{Service: "s", SampleRate: 1, Seed: 5, Collector: col, Clock: clock})

	root := tr.StartRoot(StagePublish)
	now = now.Add(time.Millisecond)
	match := tr.StartChild(root.Context(), StageMatch)
	now = now.Add(2 * time.Millisecond)
	match.SetClass("bulk")
	match.Finish()
	now = now.Add(time.Millisecond)
	root.Finish()

	traces := col.Traces(Filter{})
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tc := traces[0]
	if !tc.Complete || len(tc.Spans) != 2 || tc.Root() == nil {
		t.Fatalf("assembled trace malformed: %+v", tc)
	}
	if tc.Duration() != 4*time.Millisecond {
		t.Fatalf("trace duration = %v, want 4ms", tc.Duration())
	}
	if got := col.Traces(Filter{MinDuration: 10 * time.Millisecond}); len(got) != 0 {
		t.Fatalf("min-duration filter leaked %d traces", len(got))
	}
	if got := col.Traces(Filter{Class: "bulk"}); len(got) != 1 {
		t.Fatalf("class filter dropped the trace")
	}
	if got := col.Traces(Filter{Class: "realtime"}); len(got) != 0 {
		t.Fatalf("class filter leaked %d traces", len(got))
	}
	if got := col.Traces(Filter{Stage: StageMatch}); len(got) != 1 {
		t.Fatalf("stage filter dropped the trace")
	}
	if got := col.Traces(Filter{Stage: StageFlush}); len(got) != 0 {
		t.Fatalf("stage filter leaked %d traces", len(got))
	}
}

// TestPathSamplesSumExactly pins the attribution invariant: stage durations
// along a notify chain sum exactly to the end-to-end latency.
func TestPathSamplesSumExactly(t *testing.T) {
	now := time.Unix(1_120_000_000, 0)
	clock := func() time.Time { return now }
	col := NewCollector(256)
	tr := New(Config{Service: "s", SampleRate: 1, Seed: 9, Collector: col, Clock: clock})

	root := tr.StartRoot(StagePublish)
	now = now.Add(1 * time.Millisecond)
	match := tr.StartChild(root.Context(), StageMatch)
	now = now.Add(2 * time.Millisecond)
	match.Finish()
	qos := tr.StartChild(match.Context(), StageQoS)
	qos.SetClass("normal")
	now = now.Add(1 * time.Millisecond)
	qos.Finish()
	qw := tr.StartChild(qos.Context(), StageQueueWait)
	now = now.Add(8 * time.Millisecond)
	qw.Finish()
	root.Finish()
	flushStart := now
	now = now.Add(3 * time.Millisecond)
	fctx := tr.Record(qw.Context(), StageFlush, flushStart, now.Sub(flushStart), "normal")
	tr.Record(fctx, StageNotify, flushStart.Add(time.Millisecond), 2*time.Millisecond, "normal")

	samples := PathSamples(col.Traces(Filter{}), StageNotify)
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
	s := samples[0]
	if s.Class != "normal" {
		t.Fatalf("class = %q", s.Class)
	}
	var sum time.Duration
	for _, d := range s.Stages {
		sum += d
	}
	if sum != s.E2E {
		t.Fatalf("stage sum %v != e2e %v (stages %v)", sum, s.E2E, s.Stages)
	}
	// notify ended at flushStart+3ms; root started 12ms earlier.
	if want := 15 * time.Millisecond; s.E2E != want {
		t.Fatalf("e2e = %v, want %v", s.E2E, want)
	}
	for _, stage := range []string{StagePublish, StageMatch, StageQoS, StageQueueWait, StageFlush, StageNotify} {
		if _, ok := s.Stages[stage]; !ok {
			t.Errorf("stage %s missing from breakdown %v", stage, s.Stages)
		}
	}
}

func TestPathSamplesSkipsBrokenChains(t *testing.T) {
	leaf := &SpanRecord{TraceID: "t1", SpanID: "aa", ParentID: "missing", Name: StageNotify, DurationNanos: 10}
	root := &SpanRecord{TraceID: "t1", SpanID: "bb", Name: StagePublish, DurationNanos: 5}
	traces := Assemble([]*SpanRecord{leaf, root})
	if got := PathSamples(traces, StageNotify); len(got) != 0 {
		t.Fatalf("broken chain produced %d samples", len(got))
	}
}

func TestRecordChains(t *testing.T) {
	col := NewCollector(64)
	tr := New(Config{Service: "s", SampleRate: 1, Seed: 13, Collector: col})
	root := tr.StartRoot(StagePublish)
	base := time.Unix(1_120_000_000, 0)
	fctx := tr.Record(root.Context(), StageFlush, base, time.Millisecond, "bulk", Attr{Key: "batch", Value: "3"})
	if !fctx.Sampled() {
		t.Fatalf("Record returned unsampled context")
	}
	nctx := tr.Record(fctx, StageNotify, base, time.Millisecond, "bulk")
	if nctx.TraceID() != root.Context().TraceID() {
		t.Fatalf("Record changed trace ID")
	}
	var flush *SpanRecord
	for _, s := range col.Snapshot() {
		if s.Name == StageFlush {
			flush = s
		}
	}
	if flush == nil || flush.Class != "bulk" || len(flush.Attrs) != 1 || flush.Attrs[0].Key != "batch" {
		t.Fatalf("flush record malformed: %+v", flush)
	}
	if flush.ParentID != root.Context().SpanID() {
		t.Fatalf("flush parent %q != root span %q", flush.ParentID, root.Context().SpanID())
	}
}

func TestTraceIDsUnique(t *testing.T) {
	tr := testTracer(t, 1, 0, 1<<14)
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		ctx := tr.StartRoot(StagePublish).Context()
		id := ctx.TraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s at %d", id, i)
		}
		seen[id] = true
	}
}

func TestSpanAttrsAndRetainedJSONShape(t *testing.T) {
	// Compile-time-ish guard that stage constants stay distinct.
	stages := []string{StagePublish, StageRouteHop, StageMatch, StageComposite,
		StageQoS, StageQueueWait, StageFlush, StageNotify, StageReplApply}
	seen := map[string]bool{}
	for _, s := range stages {
		if seen[s] {
			t.Fatalf("duplicate stage constant %q", s)
		}
		seen[s] = true
	}
	if fmt.Sprint(len(stages)) != "9" {
		t.Fatalf("stage constants: %d", len(stages))
	}
}
