package trace

import (
	"encoding/hex"
	"math"
	"sync/atomic"
	"time"
)

// Config assembles a Tracer.
type Config struct {
	// Service names the process in recorded spans ("gs0", "gds3").
	Service string
	// SampleRate is the head-sampling probability in [0,1]: the fraction of
	// root traces recorded. 0 records nothing (except tail-retained slow
	// roots), 1 records everything.
	SampleRate float64
	// SlowRoot is the tail-retain threshold: a root span slower than this is
	// recorded even when head sampling passed it over, so latency outliers
	// always appear in the collector. <= 0 disables tail retention.
	SlowRoot time.Duration
	// Seed drives ID generation and the sampling hash; runs sharing a seed
	// produce identical IDs and identical sampling decisions. 0 derives a
	// seed from the wall clock (fine for servers, not for simulations).
	Seed int64
	// Collector receives finished spans. nil disables the tracer entirely.
	Collector *Collector
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// Tracer starts spans and decides sampling. A nil *Tracer is a valid,
// disabled tracer: every method no-ops, so instrumentation sites call it
// unconditionally and the disabled publish path pays one nil check.
type Tracer struct {
	svc       string
	threshold uint64 // sampled when hash < threshold
	slow      time.Duration
	col       *Collector
	clock     func() time.Time
	seed      uint64
	ctr       atomic.Uint64
}

// New builds a tracer from cfg; it returns nil (the disabled tracer) when
// cfg.Collector is nil.
func New(cfg Config) *Tracer {
	if cfg.Collector == nil {
		return nil
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	var threshold uint64
	switch {
	case cfg.SampleRate >= 1:
		threshold = math.MaxUint64
	case cfg.SampleRate > 0:
		threshold = uint64(cfg.SampleRate * float64(math.MaxUint64))
	}
	return &Tracer{
		svc:       cfg.Service,
		threshold: threshold,
		slow:      cfg.SlowRoot,
		col:       cfg.Collector,
		clock:     clock,
		seed:      mix(seed),
	}
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.col != nil }

// Collector returns the tracer's span sink (nil when disabled).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

func (t *Tracer) nextID() uint64 {
	for {
		if id := mix(t.seed ^ t.ctr.Add(1)); id != 0 {
			return id
		}
	}
}

// sampled is the deterministic head-sampling decision: a seeded hash of
// the trace ID against the rate threshold. Identical seed + trace ID ⇒
// identical decision, so replayed runs trace the same events.
func (t *Tracer) sampled(hi, lo uint64) bool {
	if t.threshold == 0 {
		return false
	}
	if t.threshold == math.MaxUint64 {
		return true
	}
	return mix(t.seed^hi^mix(lo)) < t.threshold
}

// StartRoot opens the root span of a new trace (stage StagePublish at the
// origin server). The root is always timed — even when head sampling says
// no — so the tail-retain rule can rescue slow outliers at Finish.
func (t *Tracer) StartRoot(name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	// With head sampling off and no tail-retain threshold nothing derived
	// from this root can ever be recorded, and unsampled contexts stay off
	// the wire — so skip the ID generation and clock reads entirely. This
	// keeps a tracer installed with SampleRate 0 within noise of no tracer
	// at all (TestTraceDisabledOverhead pins it ≤ 2% of the publish path).
	if t.threshold == 0 && t.slow <= 0 {
		return Span{}
	}
	hi, lo := t.nextID(), t.nextID()
	ctx := Context{hi: hi, lo: lo, span: t.nextID(), sample: t.sampled(hi, lo)}
	return Span{
		t:      t,
		ctx:    ctx,
		name:   name,
		start:  t.clock(),
		record: ctx.sample,
		timed:  true,
		root:   true,
	}
}

// StartChild opens a span under parent. Unsampled or invalid parents cost
// nothing: the returned span is a no-op and its Context is the zero value.
func (t *Tracer) StartChild(parent Context, name string) Span {
	if !t.Enabled() || !parent.Sampled() {
		return Span{}
	}
	return Span{
		t:      t,
		ctx:    Context{hi: parent.hi, lo: parent.lo, span: t.nextID(), sample: true},
		parent: parent.span,
		name:   name,
		start:  t.clock(),
		record: true,
	}
}

// Record emits a completed span under parent in one call — for regions
// whose boundaries were measured elsewhere (per-item flush/notify spans
// share the batch's timestamps). It returns the recorded span's context so
// further children can chain under it; unsampled parents return the zero
// context and record nothing.
func (t *Tracer) Record(parent Context, name string, start time.Time, d time.Duration, class string, attrs ...Attr) Context {
	if !t.Enabled() || !parent.Sampled() {
		return Context{}
	}
	ctx := Context{hi: parent.hi, lo: parent.lo, span: t.nextID(), sample: true}
	t.col.add(&SpanRecord{
		TraceID:       ctx.TraceID(),
		SpanID:        ctx.SpanID(),
		ParentID:      Context{hi: parent.hi, lo: parent.lo, span: parent.span}.SpanID(),
		Name:          name,
		Service:       t.svc,
		Class:         class,
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
		Attrs:         attrs,
	}, ctx.span)
	return ctx
}

// Span is one live instrumentation region. The zero value is a no-op span:
// every method returns immediately, so unsampled paths carry spans by
// value without branching at each call site.
type Span struct {
	t      *Tracer
	ctx    Context
	parent uint64
	name   string
	class  string
	start  time.Time
	attrs  []Attr
	record bool
	timed  bool
	root   bool
}

// Attr is one key/value stage attribute on a recorded span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Context returns the span's trace context for propagation (zero when the
// span is a no-op).
func (s Span) Context() Context { return s.ctx }

// Recording reports whether Finish will emit a record.
func (s Span) Recording() bool { return s.record }

// SetClass tags the span with a QoS class name (a first-class field so
// /traces and the attribution table can filter without scanning attrs).
func (s *Span) SetClass(class string) {
	if s.record {
		s.class = class
	}
}

// SetAttr attaches one stage attribute (outcome=defer, hops=3, ...).
func (s *Span) SetAttr(k, v string) {
	if s.record {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// Finish closes the span and hands it to the collector. Durations come
// from the monotonic clock carried inside time.Time, so a wall-clock step
// never produces a negative or inflated span. A timed-but-unsampled root
// is emitted only when it breaches the tail-retain threshold.
func (s *Span) Finish() {
	if s.t == nil || (!s.record && !s.timed) {
		return
	}
	d := s.t.clock().Sub(s.start)
	if d < 0 {
		d = 0
	}
	retained := false
	if !s.record {
		// Tail retention: only roots are timed without recording.
		if s.t.slow <= 0 || d < s.t.slow {
			return
		}
		retained = true
	}
	s.t.col.add(&SpanRecord{
		TraceID:       s.ctx.TraceID(),
		SpanID:        s.ctx.SpanID(),
		ParentID:      parentID(s.parent),
		Name:          s.name,
		Service:       s.t.svc,
		Class:         s.class,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: int64(d),
		Attrs:         s.attrs,
		Retained:      retained,
	}, s.ctx.span)
	s.record = false
	s.timed = false
}

func parentID(span uint64) string {
	if span == 0 {
		return ""
	}
	var b [8]byte
	putUint64(b[:], span)
	return hex.EncodeToString(b[:])
}
