package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span as stored in the collector and served
// from /traces.
type SpanRecord struct {
	TraceID       string `json:"trace_id"`
	SpanID        string `json:"span_id"`
	ParentID      string `json:"parent_id,omitempty"`
	Name          string `json:"name"`
	Service       string `json:"service,omitempty"`
	Class         string `json:"class,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`
	// Retained marks a tail-retained slow root that head sampling had
	// passed over.
	Retained bool `json:"retained,omitempty"`
}

// Start returns the span's start time.
func (r *SpanRecord) Start() time.Time { return time.Unix(0, r.StartUnixNano) }

// Duration returns the span's duration.
func (r *SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNanos) }

// End returns the span's end time.
func (r *SpanRecord) End() time.Time { return time.Unix(0, r.StartUnixNano+r.DurationNanos) }

// collectorShards spreads the ring over independently advancing shards so
// concurrent finishers (delivery shard workers, GDS handlers) never
// contend on one counter. Power of two for cheap masking.
const collectorShards = 8

// DefaultCapacity is the collector's span capacity when NewCollector is
// given zero: enough for a few thousand recent traces at ~6 spans each.
const DefaultCapacity = 16384

// Collector is a lock-free sharded ring buffer of finished spans: bounded
// memory, drop-oldest. Writers pick a shard from the span ID and swap the
// record into the next slot; an overwritten slot bumps the dropped
// counter. Snapshot walks the slots with atomic loads — a reader never
// blocks a writer.
type Collector struct {
	shards  [collectorShards]ringShard
	perCap  int
	total   atomic.Int64
	dropped atomic.Int64
}

type ringShard struct {
	slots []atomic.Pointer[SpanRecord]
	next  atomic.Uint64
	// pad out the hot counter so neighbouring shards do not false-share.
	_ [48]byte
}

// NewCollector builds a collector holding about capacity spans (rounded up
// to a multiple of the shard count; <= 0 selects DefaultCapacity).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + collectorShards - 1) / collectorShards
	c := &Collector{perCap: per}
	for i := range c.shards {
		c.shards[i].slots = make([]atomic.Pointer[SpanRecord], per)
	}
	return c
}

// add stores one finished span, dropping the oldest record in its shard
// when the ring is full. spanID selects the shard.
func (c *Collector) add(r *SpanRecord, spanID uint64) {
	sh := &c.shards[spanID&(collectorShards-1)]
	idx := (sh.next.Add(1) - 1) % uint64(len(sh.slots))
	if old := sh.slots[idx].Swap(r); old != nil {
		c.dropped.Add(1)
	}
	c.total.Add(1)
}

// SpansTotal reports spans recorded since construction.
func (c *Collector) SpansTotal() int64 { return c.total.Load() }

// Dropped reports spans overwritten before they were ever snapshotted out.
func (c *Collector) Dropped() int64 { return c.dropped.Load() }

// Occupancy reports the number of spans currently held in the ring.
func (c *Collector) Occupancy() int64 {
	var n int64
	for i := range c.shards {
		written := int64(c.shards[i].next.Load())
		if slots := int64(len(c.shards[i].slots)); written > slots {
			written = slots
		}
		n += written
	}
	return n
}

// Capacity reports the ring's span capacity.
func (c *Collector) Capacity() int { return c.perCap * collectorShards }

// Snapshot copies out every span currently in the ring, in no particular
// order. Records are shared, not copied: callers must treat them as
// read-only.
func (c *Collector) Snapshot() []*SpanRecord {
	out := make([]*SpanRecord, 0, c.Occupancy())
	for i := range c.shards {
		for j := range c.shards[i].slots {
			if r := c.shards[i].slots[j].Load(); r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// Trace is one assembled span tree.
type Trace struct {
	TraceID       string `json:"trace_id"`
	StartUnixNano int64  `json:"start_unix_nano"`
	// DurationNanos spans the earliest start to the latest end across the
	// trace's spans — the end-to-end latency when the tree is complete.
	DurationNanos int64 `json:"duration_ns"`
	// Complete reports that a root span (no parent) is present.
	Complete bool `json:"complete"`
	// Spans is sorted by start time, root first among equals.
	Spans []*SpanRecord `json:"spans"`
}

// Duration returns the trace's end-to-end duration.
func (t *Trace) Duration() time.Duration { return time.Duration(t.DurationNanos) }

// Root returns the trace's root span (nil when incomplete).
func (t *Trace) Root() *SpanRecord {
	for _, s := range t.Spans {
		if s.ParentID == "" {
			return s
		}
	}
	return nil
}

// Assemble groups spans by trace ID into span trees, most recent trace
// first.
func Assemble(spans []*SpanRecord) []*Trace {
	byTrace := make(map[string]*Trace)
	for _, s := range spans {
		t := byTrace[s.TraceID]
		if t == nil {
			t = &Trace{TraceID: s.TraceID}
			byTrace[s.TraceID] = t
		}
		t.Spans = append(t.Spans, s)
	}
	out := make([]*Trace, 0, len(byTrace))
	for _, t := range byTrace {
		sort.Slice(t.Spans, func(i, j int) bool {
			a, b := t.Spans[i], t.Spans[j]
			if a.StartUnixNano != b.StartUnixNano {
				return a.StartUnixNano < b.StartUnixNano
			}
			return a.ParentID < b.ParentID // roots ("") first among equals
		})
		start := t.Spans[0].StartUnixNano
		end := start
		for _, s := range t.Spans {
			if e := s.StartUnixNano + s.DurationNanos; e > end {
				end = e
			}
			if s.ParentID == "" {
				t.Complete = true
			}
		}
		t.StartUnixNano = start
		t.DurationNanos = end - start
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	return out
}

// Filter narrows a /traces query.
type Filter struct {
	// MinDuration keeps only traces at least this long end to end.
	MinDuration time.Duration
	// Class keeps only traces containing a span of this QoS class.
	Class string
	// Stage keeps only traces containing a span with this stage name.
	Stage string
	// Limit caps the result count (0 = unlimited), applied after the
	// most-recent-first sort.
	Limit int
}

// Traces snapshots the ring and returns assembled traces matching f.
func (c *Collector) Traces(f Filter) []*Trace {
	all := Assemble(c.Snapshot())
	out := all[:0]
	for _, t := range all {
		if t.DurationNanos < int64(f.MinDuration) {
			continue
		}
		if f.Class != "" && !hasClass(t, f.Class) {
			continue
		}
		if f.Stage != "" && !hasStage(t, f.Stage) {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

func hasClass(t *Trace, class string) bool {
	for _, s := range t.Spans {
		if s.Class == class {
			return true
		}
	}
	return false
}

func hasStage(t *Trace, stage string) bool {
	for _, s := range t.Spans {
		if s.Name == stage {
			return true
		}
	}
	return false
}

// PathSample is the per-stage breakdown of one delivered notification: the
// chain from a terminal span (StageNotify) up its parent links to the
// root. Time between successive chain spans' starts is attributed to the
// earlier span's stage and the terminal's own duration to its stage, so
// the stage durations sum EXACTLY to E2E — the property the E16
// attribution table's "within 10%" acceptance check verifies end to end
// (slack only from clock skew across processes; a simulation shares one).
type PathSample struct {
	Class string
	// E2E is root start → terminal end.
	E2E time.Duration
	// Stages maps stage name → attributed duration along this chain.
	Stages map[string]time.Duration
}

// PathSamples walks every terminal-stage span of every complete trace up
// to its root and returns one attribution sample per resolvable chain.
// Chains with a broken parent link (a span already overwritten in the
// ring) are skipped rather than misattributed.
func PathSamples(traces []*Trace, terminal string) []PathSample {
	var out []PathSample
	for _, t := range traces {
		if !t.Complete {
			continue
		}
		byID := make(map[string]*SpanRecord, len(t.Spans))
		for _, s := range t.Spans {
			byID[s.SpanID] = s
		}
		for _, leaf := range t.Spans {
			if leaf.Name != terminal {
				continue
			}
			chain := []*SpanRecord{leaf}
			ok := true
			for cur := leaf; cur.ParentID != ""; {
				next, found := byID[cur.ParentID]
				if !found || len(chain) > len(t.Spans) {
					ok = false
					break
				}
				chain = append(chain, next)
				cur = next
			}
			if !ok {
				continue
			}
			// chain is leaf → root; attribute in root → leaf order.
			sample := PathSample{Stages: make(map[string]time.Duration, len(chain))}
			for i := len(chain) - 1; i >= 0; i-- {
				s := chain[i]
				if s.Class != "" {
					sample.Class = s.Class
				}
				var d time.Duration
				if i == 0 {
					d = s.Duration()
				} else {
					d = time.Duration(chain[i-1].StartUnixNano - s.StartUnixNano)
				}
				if d < 0 {
					d = 0
				}
				sample.Stages[s.Name] += d
			}
			root := chain[len(chain)-1]
			sample.E2E = time.Duration(leaf.StartUnixNano + leaf.DurationNanos - root.StartUnixNano)
			if sample.E2E < 0 {
				continue
			}
			out = append(out, sample)
		}
	}
	return out
}
