// Package trace is a zero-dependency distributed tracing subsystem for the
// alerting service. A compact TraceContext — 128-bit trace ID, 64-bit span
// ID, sampled bit — rides the wire in an optional envelope header field
// (absent = unsampled, so peers predating the field interoperate
// unchanged), and propagates across GDS routing hops, replication streams
// and notify batches. Instrumentation points (core publish/match/QoS,
// gds per-hop forward, composite ingest/fire, delivery queue-wait/flush/
// notify, replica apply) record named spans with monotonic start and
// duration into a lock-free sharded ring-buffer collector: bounded memory,
// drop-oldest, with dropped-span accounting surfaced through internal/obs.
//
// Sampling is decided once, at the root: a seeded hash of the trace ID is
// compared against the configured rate, and the decision travels in the
// sampled bit so every hop of one event keeps or drops the same trace. A
// tail-retain rule additionally keeps any root span slower than a
// threshold — p99 outliers are never sampled away, which is the whole
// point of latency attribution.
//
// The package deliberately has no exporter: spans stay in process and are
// served as JSON from the /traces endpoint of obs.ServeOps, and the
// assembled span trees feed the per-stage latency-attribution table of
// experiment E16 (docs/EXPERIMENTS.md).
package trace

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Stage names used across the pipeline. Instrumentation sites pass these
// constants so the attribution table's stage axis is closed and stable.
const (
	StagePublish   = "publish"    // core.Service event publish (origin)
	StageRouteHop  = "route-hop"  // gds.Node per-hop forward processing
	StageMatch     = "match"      // filter match against the profile index
	StageComposite = "composite"  // composite engine ingest / fire
	StageQoS       = "qos"        // admission decision (admit/defer/coalesce)
	StageQueueWait = "queue-wait" // delivery enqueue → WFQ dequeue
	StageFlush     = "flush"      // dequeue → batch handoff to the notifier
	StageNotify    = "notify"     // the notifier send itself
	StageReplApply = "replica-apply"
)

// Context is the trace context that rides the wire: a 128-bit trace ID, the
// 64-bit ID of the current span, and the sampling decision made at the
// root. The zero value is "no trace" and marshals to the empty string, so
// envelopes and WAL records that never saw a tracer stay byte-identical.
type Context struct {
	hi, lo uint64 // trace ID
	span   uint64 // current span ID
	sample bool
}

// Valid reports whether the context carries a trace at all.
func (c Context) Valid() bool { return (c.hi|c.lo) != 0 && c.span != 0 }

// Sampled reports whether spans should be recorded for this trace.
func (c Context) Sampled() bool { return c.sample && c.Valid() }

// TraceID renders the 128-bit trace ID as 32 hex digits ("" when invalid).
func (c Context) TraceID() string {
	if !c.Valid() {
		return ""
	}
	var b [16]byte
	putUint64(b[:8], c.hi)
	putUint64(b[8:], c.lo)
	return hex.EncodeToString(b[:])
}

// SpanID renders the current span ID as 16 hex digits ("" when invalid).
func (c Context) SpanID() string {
	if !c.Valid() {
		return ""
	}
	var b [8]byte
	putUint64(b[:], c.span)
	return hex.EncodeToString(b[:])
}

// String renders the wire form, a W3C-traceparent-shaped triplet
// "00-<trace>-<span>-<flags>" (flags 01 = sampled). Invalid contexts render
// as "" so optional wire fields stay absent.
func (c Context) String() string {
	if !c.Valid() {
		return ""
	}
	flags := "00"
	if c.sample {
		flags = "01"
	}
	return "00-" + c.TraceID() + "-" + c.SpanID() + "-" + flags
}

// Parse inverts Context.String. The empty string parses to the zero
// context (ok=true): an absent wire field simply means "unsampled", not an
// error. Malformed non-empty input returns ok=false.
func Parse(s string) (Context, bool) {
	if s == "" {
		return Context{}, true
	}
	parts := strings.Split(s, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return Context{}, false
	}
	raw, err := hex.DecodeString(parts[1] + parts[2])
	if err != nil {
		return Context{}, false
	}
	c := Context{
		hi:   getUint64(raw[:8]),
		lo:   getUint64(raw[8:16]),
		span: getUint64(raw[16:24]),
	}
	switch parts[3] {
	case "00":
	case "01":
		c.sample = true
	default:
		return Context{}, false
	}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// MustParse is Parse for tests and examples; it panics on malformed input.
func MustParse(s string) Context {
	c, ok := Parse(s)
	if !ok {
		panic(fmt.Sprintf("trace: malformed context %q", s))
	}
	return c
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// mix is the splitmix64 finalizer: the ID generator and the sampling hash
// both need a cheap, well-distributed, seedable mix with no allocation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
