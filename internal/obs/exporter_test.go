package obs

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gzSink is a test HTTP sink that decompresses received blocks and can be
// scripted to fail or block.
type gzSink struct {
	mu       sync.Mutex
	blocks   []string
	failNext atomic.Int64  // fail this many requests with 500
	gate     chan struct{} // when non-nil, requests wait on it
}

func (s *gzSink) handler(w http.ResponseWriter, r *http.Request) {
	if s.gate != nil {
		<-s.gate
	}
	if s.failNext.Add(-1) >= 0 {
		http.Error(w, "down", http.StatusInternalServerError)
		return
	}
	if ce := r.Header.Get("Content-Encoding"); ce != "gzip" {
		http.Error(w, "want gzip, got "+ce, http.StatusBadRequest)
		return
	}
	zr, err := gzip.NewReader(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.blocks = append(s.blocks, string(body))
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *gzSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

func (s *gzSink) last() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blocks) == 0 {
		return ""
	}
	return s.blocks[len(s.blocks)-1]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestExporterPushesSnapshots drives the happy path end to end: the sink
// receives gzip'd Prometheus text containing the exporter's own
// self-monitoring series, and a second snapshot arrives on the next tick.
func TestExporterPushesSnapshots(t *testing.T) {
	sink := &gzSink{}
	sink.failNext.Store(0)
	srv := httptest.NewServer(http.HandlerFunc(sink.handler))
	defer srv.Close()

	reg := NewRegistry()
	reg.Gauge("gsalert_test_static", "Static test gauge.", func() float64 { return 4 })
	exp, err := NewExporter(reg, ExporterConfig{URL: srv.URL, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "two pushed snapshots", func() bool { return sink.count() >= 2 })
	exp.Close()

	body := sink.last()
	for _, want := range []string{
		"gsalert_test_static 4",
		"gsalert_exporter_scrapes_total",
		"gsalert_exporter_sent_total",
		"gsalert_exporter_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("pushed block missing %q:\n%s", want, body)
		}
	}
	if exp.Metrics().Sent.Value() < 2 {
		t.Errorf("Sent = %d, want >= 2", exp.Metrics().Sent.Value())
	}
	if exp.Metrics().Dropped.Value() != 0 {
		t.Errorf("Dropped = %d, want 0", exp.Metrics().Dropped.Value())
	}
}

// TestExporterRetriesWithBackoff scripts two 500s before the sink
// recovers: the first block must still arrive, with the attempts visible
// in the self-monitoring counters.
func TestExporterRetriesWithBackoff(t *testing.T) {
	sink := &gzSink{}
	sink.failNext.Store(2)
	srv := httptest.NewServer(http.HandlerFunc(sink.handler))
	defer srv.Close()

	reg := NewRegistry()
	exp, err := NewExporter(reg, ExporterConfig{
		URL:        srv.URL,
		Interval:   5 * time.Millisecond,
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first block eats both 500s, retries, and lands; later blocks
	// sail through.
	waitFor(t, "first delivered block", func() bool { return sink.count() >= 1 })
	exp.Close()

	m := exp.Metrics()
	if m.Sent.Value() < 1 {
		t.Errorf("Sent = %d, want >= 1", m.Sent.Value())
	}
	if m.SendErrors.Value() != 2 {
		t.Errorf("SendErrors = %d, want 2", m.SendErrors.Value())
	}
	if m.Retries.Value() != 2 {
		t.Errorf("Retries = %d, want 2", m.Retries.Value())
	}
	if m.Dropped.Value() != 0 {
		t.Errorf("Dropped = %d, want 0", m.Dropped.Value())
	}
}

// TestExporterDropsOldestWhenQueueFull blocks the sink so snapshots pile
// up against the bounded queue; the oldest blocks must be evicted (counted
// in Dropped) while the pipeline keeps accepting fresh ones.
func TestExporterDropsOldestWhenQueueFull(t *testing.T) {
	sink := &gzSink{gate: make(chan struct{})}
	srv := httptest.NewServer(http.HandlerFunc(sink.handler))
	defer srv.Close()

	reg := NewRegistry()
	exp, err := NewExporter(reg, ExporterConfig{
		URL:       srv.URL,
		Interval:  2 * time.Millisecond,
		QueueSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One block occupies the sender (blocked on the gate), two fill the
	// queue; every further snapshot must evict.
	waitFor(t, "queue eviction", func() bool { return exp.Metrics().Dropped.Value() > 0 })
	close(sink.gate) // release the sink so Close can drain
	exp.Close()

	m := exp.Metrics()
	if m.Sent.Value() == 0 {
		t.Errorf("Sent = 0, want > 0 (queue must drain once the sink recovers)")
	}
	if m.Scrapes.Value() <= m.Sent.Value() {
		t.Errorf("Scrapes = %d, Sent = %d: eviction should have shed some snapshots",
			m.Scrapes.Value(), m.Sent.Value())
	}
}

// TestExporterBandwidthPacer checks the pacing arithmetic directly: a
// second 1000-byte send against a 1000 B/s cap must wait ~1s behind the
// first (we read the horizon rather than sleeping).
func TestExporterBandwidthPacer(t *testing.T) {
	e := &Exporter{cfg: ExporterConfig{MaxBytesPerSec: 1000}}
	e.throttle(1000) // first send: no wait, horizon advances 1s
	e.paceMu.Lock()
	lead := time.Until(e.pace)
	e.paceMu.Unlock()
	if lead < 900*time.Millisecond || lead > 1100*time.Millisecond {
		t.Errorf("pacing horizon %v ahead, want ~1s", lead)
	}
}

func TestExporterRejectsEmptyURL(t *testing.T) {
	if _, err := NewExporter(NewRegistry(), ExporterConfig{}); err == nil {
		t.Fatal("expected error for missing sink URL")
	}
}
