package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry's exposition at GET /metrics semantics (any
// method is accepted; scraping is read-only).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// ServeOps starts the operational HTTP endpoint of one server process on
// addr: `/metrics` serves the registry's Prometheus exposition and, when
// statsJSON is non-nil, `/stats` (and `/`, for back-compat with the
// original -stats-addr endpoint) serves its value as indented JSON. The
// returned func stops the server.
func ServeOps(addr string, reg *Registry, statsJSON func() any) (func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	if statsJSON != nil {
		js := func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(statsJSON())
		}
		mux.HandleFunc("/stats", js)
		mux.HandleFunc("/", js)
	}
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	// Fail fast on an unbindable address instead of dying silently later.
	select {
	case err := <-errCh:
		return nil, err
	case <-time.After(100 * time.Millisecond):
	}
	return func() { _ = server.Close() }, nil
}
