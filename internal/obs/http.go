package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/trace"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the negotiated exposition content type when the
// scraper accepts OpenMetrics (exemplar annotations, `# EOF` terminator).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry's exposition at GET /metrics semantics (any
// method is accepted; scraping is read-only). Content negotiation: a
// scraper whose Accept header names application/openmetrics-text gets the
// OpenMetrics variant with histogram exemplars; everyone else gets the
// text format, byte-identical to what it was before exemplars existed.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req != nil && strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// ServeOption extends ServeOps with additional endpoints.
type ServeOption func(mux *http.ServeMux)

// WithTraces serves the collector's assembled traces at `/traces` as JSON,
// filterable with query parameters: `min_ms` (minimum end-to-end duration in
// milliseconds), `class` (QoS class name), `stage` (span/stage name) and
// `limit` (maximum traces returned, most recent first; default 100). See
// docs/TRACING.md.
func WithTraces(col *trace.Collector) ServeOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/traces", TracesHandler(col))
	}
}

// WithPprof mounts the standard net/http/pprof profile endpoints under
// `/debug/pprof/`. Off by default — profiles expose internals and cost CPU —
// and enabled by the servers' -pprof flag (docs/OBSERVABILITY.md).
func WithPprof() ServeOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithFlightRecorder serves on-demand post-mortem bundles at
// `/debug/flightrecorder`: the same JSONL bundle the server writes when
// the health plane turns a component critical, captured at request time.
// `gs-client logs` pulls and renders it. See docs/LOGGING.md.
func WithFlightRecorder(fr *logging.FlightRecorder) ServeOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/debug/flightrecorder", FlightHandler(fr))
	}
}

// FlightHandler serves one flight recorder's bundle (the
// /debug/flightrecorder endpoint of WithFlightRecorder, exposed for tests
// and custom muxes). The optional `reason` query parameter is recorded in
// the bundle header in place of the default "manual".
func FlightHandler(fr *logging.FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reason := "manual"
		if req != nil {
			if v := req.URL.Query().Get("reason"); v != "" {
				reason = v
			}
		}
		raw, err := fr.DumpJSONL(reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write(raw)
	})
}

// TracesHandler serves one collector's traces as JSON (the /traces endpoint
// of WithTraces, exposed for tests and custom muxes).
func TracesHandler(col *trace.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		f := trace.Filter{Class: q.Get("class"), Stage: q.Get("stage"), Limit: 100}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad min_ms: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(ms * float64(time.Millisecond))
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		traces := col.Traces(f)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Traces  []*trace.Trace `json:"traces"`
			Dropped int64          `json:"dropped_spans"`
		}{Traces: traces, Dropped: col.Dropped()})
	})
}

// ServeOps starts the operational HTTP endpoint of one server process on
// addr: `/metrics` serves the registry's Prometheus exposition and, when
// statsJSON is non-nil, `/stats` (and `/`, for back-compat with the
// original -stats-addr endpoint) serves its value as indented JSON. Options
// add more endpoints (WithTraces, WithPprof). The returned func stops the
// server.
func ServeOps(addr string, reg *Registry, statsJSON func() any, opts ...ServeOption) (func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	if statsJSON != nil {
		js := func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(statsJSON())
		}
		mux.HandleFunc("/stats", js)
		mux.HandleFunc("/", js)
	}
	for _, opt := range opts {
		opt(mux)
	}
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	// Fail fast on an unbindable address instead of dying silently later.
	select {
	case err := <-errCh:
		return nil, err
	case <-time.After(100 * time.Millisecond):
	}
	return func() { _ = server.Close() }, nil
}
