package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixedRegistry wires a registry whose exposition is fully
// deterministic: static counters and gauges (with label values exercising
// every escape), a histogram with known observations, and a collector
// emitting dynamic series.
func buildFixedRegistry() *Registry {
	r := NewRegistry()
	var c metrics.Counter
	c.Add(42)
	r.CounterValue("gsalert_test_events_total", "Events with a backslash \\ and\nnewline in help.", &c)
	r.Counter("gsalert_test_routed_total", "Routed envelopes per link.", func() float64 { return 7 },
		L("link", `child"one`))
	r.Counter("gsalert_test_routed_total", "Routed envelopes per link.", func() float64 { return 3 },
		L("link", "path\\with\nodd chars"))
	r.Gauge("gsalert_test_queue_depth", "Queue depth per shard and class.", func() float64 { return 5 },
		L("shard", "0"), L("class", "realtime"))
	r.Gauge("gsalert_test_queue_depth", "Queue depth per shard and class.", func() float64 { return 1.5 },
		L("class", "bulk"), L("shard", "0")) // label order must not leak
	var h metrics.LatencyHistogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	r.Histogram("gsalert_test_latency_seconds", "Observed latencies.", &h, L("class", "normal"))
	r.Collect(func(c *Collector) {
		c.Gauge("gsalert_test_dynamic", "Dynamic per-scrape series.", 2, L("kind", "a"))
		c.Gauge("gsalert_test_dynamic", "Dynamic per-scrape series.", 9.25, L("kind", "b"))
		c.Counter("gsalert_test_collected_total", "Collector-emitted counter.", 11)
	})
	RegisterTrace(r, buildFixedTraceCollector())
	return r
}

// buildFixedTraceCollector fills a tiny trace ring deterministically (fixed
// seed, fixed clock, sample-everything) and overflows it so every
// RegisterTrace series — spans, drops, occupancy, capacity — renders a
// stable nonzero-where-possible value in the golden file.
func buildFixedTraceCollector() *trace.Collector {
	col := trace.NewCollector(8)
	at := time.Unix(1700000000, 0)
	tr := trace.New(trace.Config{
		Service:    "test",
		SampleRate: 1,
		Seed:       99,
		Collector:  col,
		Clock:      func() time.Time { return at },
	})
	root := tr.StartRoot(trace.StagePublish)
	for i := 0; i < 11; i++ {
		tr.Record(root.Context(), trace.StageMatch, at, time.Millisecond, "normal")
	}
	root.Finish()
	return col
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestGolden pins the full text exposition — family ordering, HELP/TYPE
// lines, label sorting and escaping, histogram rendering — against
// testdata/golden.prom. Regenerate with `go test ./internal/obs -update`.
func TestGolden(t *testing.T) {
	got := render(t, buildFixedRegistry())
	path := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionWellFormed machine-checks the same output: line syntax,
// every series preceded by its HELP/TYPE, values parseable, histogram
// buckets cumulative and consistent with _count.
func TestExpositionWellFormed(t *testing.T) {
	checkExposition(t, render(t, buildFixedRegistry()))
}

// checkExposition validates Prometheus text format rules on out, including
// bucket monotonicity per histogram series.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]string{} // family -> TYPE
	type histState struct {
		lastLe  float64
		lastCum int64
		infSeen bool
		inf     int64
	}
	hists := map[string]*histState{} // series key without le -> state
	counts := map[string]int64{}     // _count lines by series key
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("family %s has two TYPE lines", parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name, labels, value := splitSample(t, line)
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			if _, ok := typed[name]; !ok {
				t.Errorf("series %s has no TYPE line", name)
			}
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, rest := extractLe(t, labels)
			key := strings.TrimSuffix(name, "_bucket") + rest
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: -1}
				hists[key] = st
			}
			cum := int64(value)
			if le == "+Inf" {
				st.infSeen = true
				st.inf = cum
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q in %q", le, line)
				}
				if f <= st.lastLe {
					t.Errorf("series %s: bucket bounds not increasing (%g after %g)", key, f, st.lastLe)
				}
				st.lastLe = f
			}
			if cum < st.lastCum {
				t.Errorf("series %s: cumulative counts decreased (%d after %d)", key, cum, st.lastCum)
			}
			st.lastCum = cum
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+labels] = int64(value)
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			t.Errorf("series %s: no +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok {
			t.Errorf("series %s: no _count line", key)
		} else if c != st.inf {
			t.Errorf("series %s: _count %d != +Inf bucket %d", key, c, st.inf)
		}
	}
}

// splitSample parses `name{labels} value` (labels optional), failing the
// test on malformed lines.
func splitSample(t *testing.T, line string) (name, labels string, value float64) {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("malformed sample line: %q", line)
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	ident := line[:sp]
	if i := strings.IndexByte(ident, '{'); i >= 0 {
		if !strings.HasSuffix(ident, "}") {
			t.Fatalf("unterminated label block: %q", line)
		}
		return ident[:i], ident[i:], v
	}
	return ident, "", v
}

// extractLe pulls the le label out of a bucket label block and returns the
// remaining block (the histogram's series key).
func extractLe(t *testing.T, labels string) (le, rest string) {
	t.Helper()
	i := strings.Index(labels, `le="`)
	if i < 0 {
		t.Fatalf("bucket without le label: %q", labels)
	}
	tail := labels[i+len(`le="`):]
	j := strings.IndexByte(tail, '"')
	if j < 0 {
		t.Fatalf("unterminated le value: %q", labels)
	}
	le = tail[:j]
	// Drop the le pair: `{class="x",le="y"}` -> `{class="x"}`, `{le="y"}` -> "".
	rest = strings.Replace(labels[:i]+tail[j+1:], ",}", "}", 1)
	if rest == "{}" {
		rest = ""
	}
	return le, rest
}

func TestLabelEscaping(t *testing.T) {
	out := render(t, buildFixedRegistry())
	for _, want := range []string{
		`link="child\"one"`,
		`link="path\\with\nodd chars"`,
		`# HELP gsalert_test_events_total Events with a backslash \\ and\nnewline in help.`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\nodd") {
		t.Errorf("raw newline leaked into a label value:\n%s", out)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	out := render(t, buildFixedRegistry())
	// Registered as (class, shard) — must render sorted regardless.
	if !strings.Contains(out, `gsalert_test_queue_depth{class="bulk",shard="0"} 1.5`) {
		t.Errorf("labels not canonically sorted:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"bad metric name": func(r *Registry) { r.Gauge("7bad-name", "x", func() float64 { return 0 }) },
		"bad label name":  func(r *Registry) { r.Gauge("ok_name", "x", func() float64 { return 0 }, L("0bad", "v")) },
		"reserved le":     func(r *Registry) { r.Gauge("ok_name", "x", func() float64 { return 0 }, L("le", "v")) },
		"duplicate series": func(r *Registry) {
			r.Gauge("dup_name", "x", func() float64 { return 0 }, L("a", "1"))
			r.Gauge("dup_name", "x", func() float64 { return 0 }, L("a", "1"))
		},
		"kind conflict": func(r *Registry) {
			r.Gauge("mixed_name", "x", func() float64 { return 0 })
			r.Counter("mixed_name", "x", func() float64 { return 0 })
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{1.5, "1.5"},
		{0.0500032, "0.0500032"},
		{1e15, "1e+15"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestHistogramSpliceWithAndWithoutLabels(t *testing.T) {
	r := NewRegistry()
	var h1, h2 metrics.LatencyHistogram
	h1.Observe(time.Millisecond)
	h2.Observe(time.Second)
	r.Histogram("plain_hist_seconds", "No labels.", &h1)
	r.Histogram("labeled_hist_seconds", "With labels.", &h2, L("class", "bulk"))
	out := render(t, r)
	if !strings.Contains(out, `plain_hist_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("unlabelled histogram misrendered:\n%s", out)
	}
	if !strings.Contains(out, `labeled_hist_seconds_bucket{class="bulk",le="`) {
		t.Errorf("labelled histogram misrendered (le must splice after existing labels):\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("labeled_hist_seconds_sum{class=%q} ", "bulk")) {
		t.Errorf("labelled histogram missing _sum:\n%s", out)
	}
	checkExposition(t, out)
}
