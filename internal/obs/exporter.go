package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
)

// Exporter is the push half of the observability story: where Handler
// serves scrapes, the Exporter periodically renders the registry itself,
// gzip-compresses the block, and ships it to an HTTP sink (anything that
// accepts Prometheus text, e.g. a VictoriaMetrics import endpoint or a
// plain collector). The pipeline is staged like the VictoriaMetrics
// importer it is modelled on:
//
//	collect ──> compress ──> bounded queue ──> sender pool (retry/backoff,
//	                                           bandwidth cap)
//
// The queue is drop-oldest: when the sink is down long enough to fill it,
// the freshest snapshots win and ExporterMetrics.Dropped counts the loss.
// The exporter monitors itself — its own counters are registered under
// gsalert_exporter_* in the same registry it exports, so the sink sees the
// exporter's health in every block that does arrive.

// ExporterConfig tunes the push pipeline. Zero values select the defaults
// noted on each field.
type ExporterConfig struct {
	// URL is the HTTP sink; the exporter POSTs gzip'd Prometheus text to
	// it. Required.
	URL string
	// Interval between snapshots (default 15s).
	Interval time.Duration
	// Timeout per HTTP attempt (default 10s).
	Timeout time.Duration
	// QueueSize bounds the compressed blocks awaiting send (default 8).
	QueueSize int
	// Senders is the size of the sender pool (default 1; raise it only for
	// slow sinks — blocks may then arrive out of order).
	Senders int
	// MaxRetries per block after the first attempt (default 2).
	MaxRetries int
	// RetryBase is the first backoff delay, doubled per retry (default
	// 500ms).
	RetryBase time.Duration
	// MaxBytesPerSec caps the compressed send bandwidth; 0 means
	// unlimited.
	MaxBytesPerSec int
}

func (c *ExporterConfig) fill() error {
	if c.URL == "" {
		return fmt.Errorf("obs: exporter needs a sink URL")
	}
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8
	}
	if c.Senders <= 0 {
		c.Senders = 1
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
	}
	return nil
}

// ExporterMetrics are the pipeline's self-monitoring counters, registered
// as gsalert_exporter_* in the registry the exporter ships.
type ExporterMetrics struct {
	// Scrapes counts registry renders (one per interval tick plus the
	// final flush).
	Scrapes metrics.Counter
	// ScrapeErrors counts renders or compressions that failed.
	ScrapeErrors metrics.Counter
	// Sent counts blocks acknowledged by the sink.
	Sent metrics.Counter
	// Retries counts re-attempts after a failed send.
	Retries metrics.Counter
	// Dropped counts blocks evicted from the full queue (drop-oldest) or
	// abandoned after the retry budget.
	Dropped metrics.Counter
	// SendErrors counts individual failed HTTP attempts.
	SendErrors metrics.Counter
	// BytesSent counts compressed bytes acknowledged by the sink.
	BytesSent metrics.Counter
}

// Exporter pushes registry snapshots to an HTTP sink. Create with
// NewExporter, stop with Close (which flushes a final snapshot and drains
// the queue).
type Exporter struct {
	cfg    ExporterConfig
	reg    *Registry
	client *http.Client
	queue  chan []byte
	stop   chan struct{}
	wg     sync.WaitGroup
	m      ExporterMetrics

	// enqMu serialises the evict-then-enqueue dance so two producers
	// cannot both evict for one free slot.
	enqMu sync.Mutex

	// pace implements the bandwidth cap: time before which the next send
	// must not start, advanced by bytes/MaxBytesPerSec per block.
	paceMu sync.Mutex
	pace   time.Time
}

// NewExporter starts the push pipeline against reg and registers its
// self-monitoring series there.
func NewExporter(reg *Registry, cfg ExporterConfig) (*Exporter, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	e := &Exporter{
		cfg:    cfg,
		reg:    reg,
		client: &http.Client{Timeout: cfg.Timeout},
		queue:  make(chan []byte, cfg.QueueSize),
		stop:   make(chan struct{}),
	}
	reg.CounterValue("gsalert_exporter_scrapes_total", "Registry snapshots rendered for push.", &e.m.Scrapes)
	reg.CounterValue("gsalert_exporter_scrape_errors_total", "Snapshot renders or compressions that failed.", &e.m.ScrapeErrors)
	reg.CounterValue("gsalert_exporter_sent_total", "Snapshot blocks acknowledged by the sink.", &e.m.Sent)
	reg.CounterValue("gsalert_exporter_retries_total", "Send re-attempts after a failure.", &e.m.Retries)
	reg.CounterValue("gsalert_exporter_dropped_total", "Blocks lost to queue eviction or exhausted retries.", &e.m.Dropped)
	reg.CounterValue("gsalert_exporter_send_errors_total", "Individual failed HTTP attempts.", &e.m.SendErrors)
	reg.CounterValue("gsalert_exporter_sent_bytes_total", "Compressed bytes acknowledged by the sink.", &e.m.BytesSent)
	reg.Gauge("gsalert_exporter_queue_depth", "Compressed blocks awaiting send.", func() float64 {
		return float64(len(e.queue))
	})

	e.wg.Add(1)
	go e.collectLoop()
	for i := 0; i < cfg.Senders; i++ {
		e.wg.Add(1)
		go e.sendLoop()
	}
	return e, nil
}

// Metrics exposes the exporter's live self-monitoring counters.
func (e *Exporter) Metrics() *ExporterMetrics { return &e.m }

func (e *Exporter) collectLoop() {
	defer e.wg.Done()
	defer close(e.queue) // senders drain what is left, then exit
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.snapshot()
		case <-e.stop:
			e.snapshot() // final flush so short-lived processes still report
			return
		}
	}
}

// snapshot renders the registry, compresses it, and enqueues the block,
// evicting the oldest waiting block when the queue is full.
func (e *Exporter) snapshot() {
	e.m.Scrapes.Inc()
	var raw bytes.Buffer
	if err := e.reg.WritePrometheus(&raw); err != nil {
		e.m.ScrapeErrors.Inc()
		return
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		e.m.ScrapeErrors.Inc()
		return
	}
	if err := zw.Close(); err != nil {
		e.m.ScrapeErrors.Inc()
		return
	}

	e.enqMu.Lock()
	defer e.enqMu.Unlock()
	for {
		select {
		case e.queue <- buf.Bytes():
			return
		default:
		}
		select {
		case _, ok := <-e.queue:
			if !ok {
				return // closed under us; block is lost with the pipeline
			}
			e.m.Dropped.Inc()
		default:
		}
	}
}

func (e *Exporter) sendLoop() {
	defer e.wg.Done()
	for block := range e.queue {
		e.send(block)
	}
}

func (e *Exporter) send(block []byte) {
	for attempt := 0; ; attempt++ {
		e.throttle(len(block))
		if err := e.post(block); err == nil {
			e.m.Sent.Inc()
			e.m.BytesSent.Add(int64(len(block)))
			return
		}
		e.m.SendErrors.Inc()
		if attempt >= e.cfg.MaxRetries {
			e.m.Dropped.Inc()
			return
		}
		e.m.Retries.Inc()
		backoff := e.cfg.RetryBase << attempt
		select {
		case <-time.After(backoff):
		case <-e.stop:
			// Shutting down: one immediate last try, then give up.
			if err := e.post(block); err != nil {
				e.m.SendErrors.Inc()
				e.m.Dropped.Inc()
			} else {
				e.m.Sent.Inc()
				e.m.BytesSent.Add(int64(len(block)))
			}
			return
		}
	}
}

// throttle blocks until sending n bytes stays under MaxBytesPerSec,
// advancing a shared pacing horizon (VMI's bandwidth limiter, reduced to a
// pacer: burst tolerance is one block).
func (e *Exporter) throttle(n int) {
	if e.cfg.MaxBytesPerSec <= 0 {
		return
	}
	cost := time.Duration(float64(n) / float64(e.cfg.MaxBytesPerSec) * float64(time.Second))
	e.paceMu.Lock()
	now := time.Now()
	if e.pace.Before(now) {
		e.pace = now
	}
	wait := e.pace.Sub(now)
	e.pace = e.pace.Add(cost)
	e.paceMu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

func (e *Exporter) post(block []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.URL, bytes.NewReader(block))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", TextContentType)
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := e.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("obs: sink %q: http %d", e.cfg.URL, resp.StatusCode)
	}
	return nil
}

// Close flushes a final snapshot, drains the queue, and stops the
// pipeline.
func (e *Exporter) Close() {
	select {
	case <-e.stop:
		return // already closed
	default:
	}
	close(e.stop)
	e.wg.Wait()
}
