package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/metrics"
)

// loggingClock steps a deterministic clock by 1ms per call.
func loggingClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// buildLoggingRegistry wires the gsalert_logging_* catalog plus an
// exemplar-bearing histogram deterministically, for golden-file pinning of
// both exposition variants.
func buildLoggingRegistry() (*Registry, *logging.Recorder) {
	r := NewRegistry()
	rec := logging.NewRecorder(logging.Config{RingSize: 8, Clock: loggingClock()})
	core := rec.For("core")
	core.Info("published", logging.String("client", "rt"))
	core.Warn("deferred")
	for i := 0; i < 12; i++ {
		rec.For("delivery").Info("flush") // overflows the size-8 ring: drops
	}
	RegisterLogging(r, rec)
	fr := logging.NewFlightRecorder(logging.FlightConfig{Recorder: rec, Clock: loggingClock()})
	_, _ = fr.Dump("manual")
	RegisterFlight(r, fr)
	var h metrics.LatencyHistogram
	h.ObserveExemplar(100*time.Nanosecond, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(100*time.Nanosecond, "b7ad6b7169203331aaaabbbbccccdddd")
	h.ObserveExemplar(3*time.Microsecond, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(50 * time.Millisecond) // untraced bucket: no exemplar
	r.Histogram("gsalert_test_exemplar_seconds", "Latencies with trace-ID exemplars.", &h, L("class", "normal"))
	return r, rec
}

func renderOpenMetrics(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return buf.String()
}

func checkGolden(t *testing.T, got, name string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenLogging pins the gsalert_logging_* catalog's text exposition.
// The default format never carries exemplars, so this file has none even
// though the histogram retains trace IDs.
func TestGoldenLogging(t *testing.T) {
	r, _ := buildLoggingRegistry()
	got := render(t, r)
	if strings.Contains(got, "trace_id=") {
		t.Fatalf("text exposition leaked exemplar annotations:\n%s", got)
	}
	checkExposition(t, got)
	checkGolden(t, got, "golden_logging.prom")
}

// TestGoldenOpenMetrics pins the OpenMetrics variant: same series, plus
// `# {trace_id="..."}` bucket annotations and the `# EOF` terminator.
func TestGoldenOpenMetrics(t *testing.T) {
	r, _ := buildLoggingRegistry()
	got := renderOpenMetrics(t, r)
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Fatalf("OpenMetrics output missing # EOF terminator:\n%s", got)
	}
	if !strings.Contains(got, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"}`) {
		t.Fatalf("OpenMetrics output missing exemplar annotation:\n%s", got)
	}
	// Same bucket saw two traced samples: last writer wins.
	if strings.Contains(got, "0af7651916cd43dd8448eb211c80319c") {
		t.Errorf("displaced exemplar still rendered:\n%s", got)
	}
	checkExposition(t, stripOpenMetrics(got))
	checkGolden(t, got, "golden_logging.om")
}

// stripOpenMetrics removes the exemplar annotations and the EOF line so
// checkExposition can validate the underlying series.
func stripOpenMetrics(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "# EOF" {
			continue
		}
		if i := strings.Index(line, " # {"); i >= 0 {
			line = line[:i]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestOpenMetricsMatchesTextModuloAnnotations asserts the two variants are
// the same exposition: stripping annotations and the terminator from the
// OpenMetrics output yields the text output byte for byte.
func TestOpenMetricsMatchesTextModuloAnnotations(t *testing.T) {
	r, _ := buildLoggingRegistry()
	if got, want := stripOpenMetrics(renderOpenMetrics(t, r)), render(t, r); got != want {
		t.Errorf("variants diverge beyond annotations:\n--- openmetrics (stripped) ---\n%s\n--- text ---\n%s", got, want)
	}
}

// TestHandlerContentNegotiation drives the /metrics handler both ways: a
// plain scrape gets text-0.0.4 with no exemplars, an OpenMetrics Accept
// header gets the annotated variant.
func TestHandlerContentNegotiation(t *testing.T) {
	r, _ := buildLoggingRegistry()
	h := Handler(r)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); ct != TextContentType {
		t.Errorf("default content type %q", ct)
	}
	if body := rw.Body.String(); strings.Contains(body, "# EOF") || strings.Contains(body, "trace_id=") {
		t.Errorf("default scrape carries OpenMetrics extras:\n%s", body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if ct := rw.Header().Get("Content-Type"); ct != OpenMetricsContentType {
		t.Errorf("negotiated content type %q", ct)
	}
	body := rw.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") || !strings.Contains(body, `# {trace_id="`) {
		t.Errorf("negotiated scrape missing OpenMetrics extras:\n%s", body)
	}
}

// TestFlightHandler pulls a bundle through the /debug/flightrecorder
// endpoint and round-trips it through the parser, the `gs-client logs`
// path.
func TestFlightHandler(t *testing.T) {
	rec := logging.NewRecorder(logging.Config{Clock: loggingClock()})
	rec.For("core").Error("boom")
	fr := logging.NewFlightRecorder(logging.FlightConfig{Recorder: rec, Clock: loggingClock()})
	h := FlightHandler(fr)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	d, err := logging.ParseJSONL(rw.Body.Bytes())
	if err != nil {
		t.Fatalf("bundle unparseable: %v", err)
	}
	if d.Reason != "manual" || len(d.Records) != 1 || d.Records[0].Msg != "boom" {
		t.Errorf("bundle %+v records %+v", d, d.Records)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/flightrecorder?reason=drill", nil))
	if d, err := logging.ParseJSONL(rw.Body.Bytes()); err != nil || d.Reason != "drill" {
		t.Errorf("reason override: %+v, %v", d, err)
	}
	if fr.Dumps() != 2 {
		t.Errorf("dumps = %d, want 2", fr.Dumps())
	}
}

// TestScrapeDuringConcurrentLogWrites is the -race exercise for the
// logging catalog: both exposition variants render while emitters hammer
// the rings — exactly a scrape landing mid-incident.
func TestScrapeDuringConcurrentLogWrites(t *testing.T) {
	r := NewRegistry()
	rec := logging.NewRecorder(logging.Config{RingSize: 32})
	RegisterLogging(r, rec)
	var h metrics.LatencyHistogram
	r.Histogram("gsalert_scrape_race_seconds", "Race-test histogram.", &h, L("class", "normal"))

	stop := make(chan struct{})
	var wg, started sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		started.Add(1)
		go func(g int) {
			defer wg.Done()
			lg := rec.For([]string{"core", "delivery"}[g%2])
			lg.Info("start")
			started.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lg.Warn("spin", logging.Int("i", int64(i)))
				h.ObserveExemplar(time.Duration(i)*time.Microsecond, "deadbeefdeadbeefdeadbeefdeadbeef")
			}
		}(g)
	}
	started.Wait()
	for i := 0; i < 25; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := r.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if rec.Emitted() == 0 {
		t.Fatal("no records emitted under concurrency")
	}
}
