package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/qos"
)

// TestScrapeUnderConcurrentWrites scrapes the full delivery + QoS catalog
// while shard workers deliver, producers enqueue across classes and the
// admission controller takes tokens — the scenario the scrape-time-pull
// design exists for. Run under -race this proves the registry needs no
// cooperation from the hot paths; each scrape is also checked for
// histogram monotonicity (the cumulative sweep must hold up mid-write).
func TestScrapeUnderConcurrentWrites(t *testing.T) {
	pipe, err := delivery.NewPipeline(delivery.Config{
		Shards:        2,
		QueueDepth:    64,
		BatchSize:     8,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pipe.Close() }()
	ctrl := qos.NewController(qos.Config{
		SubscriberRate:  50,
		SubscriberBurst: 100,
		CollectionRate:  500,
		CollectionBurst: 1000,
	})

	reg := NewRegistry()
	RegisterDelivery(reg, pipe)
	RegisterQoS(reg, ctrl)
	RegisterGoRuntime(reg)

	const clients = 4
	for c := 0; c < clients; c++ {
		pipe.Attach(fmt.Sprintf("user-%d", c), func(string, []delivery.Notification) error { return nil })
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Producers: enqueue across every class, hammer the admission buckets.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				client := fmt.Sprintf("user-%d", i%clients)
				ev := event.New(fmt.Sprintf("ev-%d-%d", p, i), event.TypeCollectionRebuilt,
					event.QName{Host: "Hamilton", Collection: "D"}, i, nil, time.Now())
				_ = pipe.Enqueue(delivery.Notification{
					Client:    client,
					ProfileID: "prof",
					Event:     ev,
					Class:     qos.Class(i % qos.NumClasses),
					At:        time.Now(),
				})
				ctrl.AllowSubscriber(client)
				ctrl.AllowCollection("Hamilton.D")
				i++
			}
		}(p)
	}

	// Scrapers: render and validate the exposition concurrently.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				checkExposition(t, render(t, reg))
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The catalog must reflect the work that just happened.
	out := render(t, reg)
	for _, want := range []string{
		"gsalert_delivery_enqueued_total",
		"gsalert_delivery_latency_seconds_bucket",
		`gsalert_qos_quota_tokens{dimension="subscriber"}`,
		`gsalert_delivery_drr_credit{class="realtime",shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("catalog missing %s after load:\n%s", want, out)
		}
	}
}
