package obs

import "github.com/gsalert/gsalert/internal/metrics"

// Sample is one scalar series value gathered from the registry — the
// structured twin of a WritePrometheus text line, consumed by the health
// rule engine (internal/health) and any other in-process evaluator that
// wants the catalog without round-tripping through the text format.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// HistogramSample exposes one registered histogram series. The histogram
// pointer is the live lock-free instrument — callers may take quantiles
// (h.Quantile) or sweep buckets without copying; the types tolerate
// concurrent writers by design.
type HistogramSample struct {
	Name   string
	Labels []Label
	H      *metrics.LatencyHistogram
}

// Gather snapshots every registered series as structured samples: static
// counters/gauges are read, Collect callbacks run exactly as they do for a
// scrape, and histograms are returned as live handles. Like
// WritePrometheus, Gather costs nothing to the instrumented hot paths —
// all reads happen here, at gather time. Ordering is not significant;
// consumers match by name and labels.
func (r *Registry) Gather() ([]Sample, []HistogramSample) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := make([]func(*Collector), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	c := &Collector{families: make(map[string]*collFamily)}
	for _, fn := range collectors {
		fn(c)
	}

	var scalars []Sample
	var hists []HistogramSample
	for _, f := range fams {
		for _, s := range f.series {
			scalars = append(scalars, Sample{Name: f.name, Labels: s.labels, Value: s.read()})
		}
		for _, hs := range f.hists {
			hists = append(hists, HistogramSample{Name: f.name, Labels: hs.labels, H: hs.h})
		}
	}
	for name, cf := range c.families {
		for _, s := range cf.samples {
			scalars = append(scalars, Sample{Name: name, Labels: s.labels, Value: s.v})
		}
	}
	return scalars, hists
}
