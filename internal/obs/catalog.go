package obs

import (
	"runtime"
	"strconv"

	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// This file wires every subsystem's counters into a Registry under the
// `gsalert_` namespace. Each RegisterX is startup-time wiring; the actual
// reads happen per scrape. docs/OBSERVABILITY.md documents the resulting
// catalog.

// RegisterService exposes core.ServiceStats — including the Composite*,
// Replica* and QoS* fields — via one Stats() snapshot per scrape.
func RegisterService(r *Registry, stats func() core.ServiceStats) {
	r.Collect(func(c *Collector) {
		s := stats()
		c.Counter("gsalert_core_events_published_total", "Events published by local collection builds.", float64(s.EventsPublished))
		c.Counter("gsalert_core_events_received_total", "Events received via GDS dissemination.", float64(s.EventsReceived))
		c.Counter("gsalert_core_duplicates_dropped_total", "Duplicate events suppressed by the dedup window.", float64(s.DuplicatesDropped))
		c.Counter("gsalert_core_notifications_total", "Notifications enqueued to the delivery pipeline.", float64(s.Notifications))
		c.Counter("gsalert_core_notify_failures_total", "Notifications refused by the delivery pipeline.", float64(s.NotifyFailures))
		c.Counter("gsalert_core_aux_forwards_total", "Events forwarded over the GS network (aux profiles).", float64(s.AuxForwards))
		c.Counter("gsalert_core_transforms_total", "Events renamed to a super-collection.", float64(s.Transforms))
		c.Counter("gsalert_core_cycle_refusals_total", "Aux-profile installs refused by the cycle guard.", float64(s.CycleRefusals))
		c.Counter("gsalert_core_aux_installs_sent_total", "Auxiliary profile installs sent to peers.", float64(s.AuxInstallsSent))
		c.Counter("gsalert_core_aux_cancels_sent_total", "Auxiliary profile cancels sent to peers.", float64(s.AuxCancelsSent))
		c.Counter("gsalert_core_broadcasts_sent_total", "Events handed to the GDS for dissemination.", float64(s.BroadcastsSent))
		c.Counter("gsalert_core_advertisements_sent_total", "Profile-digest advertisements sent (content routing).", float64(s.AdvertisementsSent))
		c.Counter("gsalert_core_forwarding_failures_total", "Server-to-server forwards queued for retry.", float64(s.ForwardingFailures))
		c.Counter("gsalert_core_filter_seconds_total", "Cumulative local profile-filtering time.", s.FilterTime.Seconds())
		c.Counter("gsalert_core_receive_latency_seconds_total", "Cumulative transit latency of received events.", s.ReceiveLatency.Seconds())
		c.Counter("gsalert_core_receive_hops_total", "Cumulative relay hops of received events.", float64(s.ReceiveHops))
		c.Counter("gsalert_core_health_alerts_total", "Health-plane meta-alert events published into the pipeline.", float64(s.HealthAlerts))

		c.Counter("gsalert_composite_primitives_total", "Step matches consumed by composite state machines.", float64(s.CompositePrimitives))
		c.Counter("gsalert_composite_firings_total", "Synthesized composite notifications.", float64(s.CompositeFirings))
		c.Counter("gsalert_composite_digest_flushes_total", "Non-empty composite digest flushes.", float64(s.CompositeDigestFlushes))
		c.Counter("gsalert_composite_windows_expired_total", "Composite instances dropped by closed time windows.", float64(s.CompositeWindowsExpired))
		c.Gauge("gsalert_composite_live_instances", "Currently open composite instances.", float64(s.CompositeLiveInstances))

		role := s.ReplicaRole
		if role == "" {
			role = "off"
		}
		c.Gauge("gsalert_replica_role", "Replication role of this server (1 on the active role's series).", 1, L("role", role))
		c.Gauge("gsalert_replica_stream_seq", "Stream records sent (primary) or applied (standby).", float64(s.ReplicaStreamSeq))
		c.Counter("gsalert_replica_streamed_total", "Replication records shipped or applied.", float64(s.ReplicaStreamed))
		c.Counter("gsalert_replica_dropped_total", "Replication records dropped while no standby was attached.", float64(s.ReplicaDropped))
		c.Counter("gsalert_replica_errors_total", "Replication stream transport or apply failures.", float64(s.ReplicaErrors))
		c.Counter("gsalert_replica_snapshots_total", "Full replication snapshots sent or applied.", float64(s.ReplicaSnapshots))
		c.Counter("gsalert_replica_resyncs_total", "Snapshot catch-ups after stream gaps.", float64(s.ReplicaResyncs))
		c.Gauge("gsalert_replica_stream_lag", "Primary's unconfirmed stream window (records past the standby's ack).", float64(s.ReplicaStreamLag))
		promoted := 0.0
		if s.ReplicaPromoted {
			promoted = 1
		}
		c.Gauge("gsalert_replica_promoted", "1 once a standby has taken over as primary.", promoted)

		c.Counter("gsalert_qos_admitted_total", "Matches enqueued for immediate delivery.", float64(s.QoSAdmitted))
		c.Counter("gsalert_qos_deferred_total", "Over-quota normal matches parked for delayed delivery.", float64(s.QoSDeferred))
		c.Counter("gsalert_qos_coalesced_total", "Over-quota bulk matches folded into a pending digest.", float64(s.QoSCoalesced))
		c.Counter("gsalert_qos_digests_total", "Coalesced digest notifications synthesized.", float64(s.QoSDigests))
	})
}

// RegisterDelivery exposes the pipeline's counters (lock-free, read
// directly), per-class delivered counts and end-to-end latency histograms,
// and the per-shard/per-class queue depths, spill depths and DRR deficits.
func RegisterDelivery(r *Registry, p *delivery.Pipeline) {
	m := p.Metrics()
	r.CounterValue("gsalert_delivery_enqueued_total", "Notifications accepted by Enqueue.", &m.Enqueued)
	r.CounterValue("gsalert_delivery_delivered_total", "Notifications successfully handed to a sink.", &m.Delivered)
	r.CounterValue("gsalert_delivery_parked_total", "Notifications parked in a mailbox (no sink or sink failed).", &m.Parked)
	r.CounterValue("gsalert_delivery_deferred_total", "Notifications parked by QoS admission control.", &m.Deferred)
	r.CounterValue("gsalert_delivery_retried_total", "Notifications parked after a failed delivery attempt.", &m.Retried)
	r.CounterValue("gsalert_delivery_displaced_total", "Notifications displaced from a full queue (DropOldest).", &m.Displaced)
	r.CounterValue("gsalert_delivery_spilled_total", "Notifications diverted to the disk spill.", &m.Spilled)
	r.CounterValue("gsalert_delivery_dropped_total", "Notifications evicted from a full mailbox (actual loss).", &m.Dropped)
	r.CounterValue("gsalert_delivery_recovered_total", "Notifications restored from mailbox WALs at start.", &m.Recovered)
	r.CounterValue("gsalert_delivery_batches_total", "Delivery flushes.", &m.Batches)
	r.Histogram("gsalert_delivery_flush_seconds", "Sink round-trip time per delivery flush.", &m.FlushLatency)
	for cl := 0; cl < qos.NumClasses; cl++ {
		label := L("class", qos.Class(cl).String())
		r.CounterValue("gsalert_delivery_delivered_by_class_total", "Delivered notifications split by QoS class.", &m.DeliveredByClass[cl], label)
		r.Histogram("gsalert_delivery_latency_seconds", "End-to-end delivery latency per QoS class (enqueue to sink, including parked dwell).", &m.ClassLatency[cl], label)
	}
	r.Collect(func(c *Collector) {
		depths := p.ClassQueueDepths()
		credits := p.SchedulerCredits()
		spills := p.SpillDepths()
		for i := range depths {
			shard := L("shard", strconv.Itoa(i))
			for cl := 0; cl < qos.NumClasses; cl++ {
				class := L("class", qos.Class(cl).String())
				c.Gauge("gsalert_delivery_queue_depth", "Current occupancy of a shard's per-class queue.", float64(depths[i][cl]), shard, class)
				c.Gauge("gsalert_delivery_drr_credit", "Remaining DRR deficit credit of a shard worker, per class.", float64(credits[i][cl]), shard, class)
			}
			c.Gauge("gsalert_delivery_spill_depth", "Notifications in a shard's on-disk spill FIFOs.", float64(spills[i]), shard)
		}
		c.Gauge("gsalert_delivery_batch_size_mean", "Mean notifications per delivery flush.", m.BatchSizes.Mean())
	})
}

// RegisterQoS exposes the admission controller's token-bucket levels.
func RegisterQoS(r *Registry, ctrl *qos.Controller) {
	r.Collect(func(c *Collector) {
		s := ctrl.Stats()
		for _, dim := range []struct {
			name   string
			levels qos.BucketLevels
		}{
			{"subscriber", s.Subscribers},
			{"collection", s.Collections},
		} {
			label := L("dimension", dim.name)
			c.Gauge("gsalert_qos_quota_buckets", "Live token buckets tracked per quota dimension.", float64(dim.levels.Buckets), label)
			c.Gauge("gsalert_qos_quota_tokens", "Aggregate stored tokens per quota dimension (near zero across many buckets = quotas saturated).", dim.levels.Tokens, label)
		}
	})
}

// RegisterGDSNode exposes a directory node's dissemination counters and its
// content-routing table: one digest-size gauge per warm tree link.
func RegisterGDSNode(r *Registry, n *gds.Node) {
	m := n.Metrics()
	r.CounterValue("gsalert_gds_deliveries_total", "Inner envelopes handed to registered servers.", &m.Deliveries)
	r.CounterValue("gsalert_gds_broadcasts_total", "Flood envelopes relayed through this node.", &m.Broadcasts)
	r.CounterValue("gsalert_gds_multicasts_total", "Group-multicast envelopes relayed.", &m.Multicasts)
	r.CounterValue("gsalert_gds_content_routed_total", "Digest-pruned content-routing envelopes relayed.", &m.ContentRouted)
	r.CounterValue("gsalert_gds_content_flooded_total", "Content envelopes that took the flood fallback.", &m.ContentFlooded)
	r.CounterValue("gsalert_gds_resolves_total", "Name resolutions served.", &m.Resolves)
	r.CounterValue("gsalert_gds_resolves_delegated_total", "Name resolutions escalated to the parent.", &m.ResolvesDelegated)
	r.Collect(func(c *Collector) {
		info := n.Snapshot()
		c.Gauge("gsalert_gds_node_info", "Static node identity (always 1; id and stratum as labels).", 1,
			L("id", info.ID), L("stratum", strconv.Itoa(info.Stratum)))
		c.Counter("gsalert_gds_dedup_hits_total", "Duplicate envelopes suppressed by the dedup window.", float64(info.DedupHits))
		c.Gauge("gsalert_gds_children", "Attached child directory nodes.", float64(len(info.Children)))
		c.Gauge("gsalert_gds_servers", "Directly registered Greenstone servers.", float64(len(info.Servers)))
		c.Gauge("gsalert_gds_subtree_names", "Names resolvable from this node's subtree table.", float64(len(info.Subtree)))
		c.Gauge("gsalert_gds_groups", "Multicast groups with at least one member.", float64(len(info.Groups)))
		c.Gauge("gsalert_gds_warm_links", "Tree links with an advertised content digest.", float64(len(info.Digests)))
		for link, digest := range info.Digests {
			c.Gauge("gsalert_gds_link_digest_conjunctions", "Digest conjunctions advertised over one tree link.", float64(len(digest)), L("link", link))
		}
	})
}

// RegisterTrace exposes the span collector's self-monitoring series: spans
// recorded, spans dropped by the ring's drop-oldest policy, and the ring's
// current occupancy against its capacity.
func RegisterTrace(r *Registry, col *trace.Collector) {
	r.Counter("gsalert_trace_spans_total", "Spans recorded into the trace collector.", func() float64 { return float64(col.SpansTotal()) })
	r.Counter("gsalert_trace_dropped_total", "Spans overwritten by the ring's drop-oldest policy before being read.", func() float64 { return float64(col.Dropped()) })
	r.Gauge("gsalert_trace_ring_occupancy", "Span records currently held in the collector ring.", func() float64 { return float64(col.Occupancy()) })
	r.Gauge("gsalert_trace_ring_capacity", "Total span slots across the collector's shards.", func() float64 { return float64(col.Capacity()) })
}

// RegisterLogging exposes the structured-logging plane's self-monitoring
// series: per-component record and ring-drop counters, sink suppression,
// and ring occupancy against capacity — the gsalert_logging_* catalog of
// docs/LOGGING.md. Components appear on first logger use, so the label
// sets are dynamic and this is a Collect callback.
func RegisterLogging(r *Registry, rec *logging.Recorder) {
	r.Collect(func(c *Collector) {
		for _, s := range rec.Stats() {
			label := L("component", s.Component)
			c.Counter("gsalert_logging_records_total", "Log records emitted past level filtering, per component.", float64(s.Emitted), label)
			c.Counter("gsalert_logging_dropped_total", "Ring records displaced by drop-oldest before any capture saw them.", float64(s.Dropped), label)
			c.Counter("gsalert_logging_suppressed_total", "Sink lines withheld by the per-component rate limiter (still ring-retained).", float64(s.Suppressed), label)
			c.Gauge("gsalert_logging_ring_occupancy", "Records currently held in the component's flight ring.", float64(s.Occupancy), label)
			c.Gauge("gsalert_logging_ring_capacity", "Record slots in the component's flight ring.", float64(s.Capacity), label)
		}
	})
}

// RegisterFlight exposes the flight recorder's capture counter next to the
// per-component logging series.
func RegisterFlight(r *Registry, fr *logging.FlightRecorder) {
	r.Counter("gsalert_logging_dumps_total", "Post-mortem bundles captured (health-triggered or manual).", func() float64 { return float64(fr.Dumps()) })
}

// RegisterHTTPTransport exposes the wire-level frame and byte counters of
// the process's HTTP transport.
func RegisterHTTPTransport(r *Registry, t *transport.HTTP) {
	m := t.Metrics()
	r.CounterValue("gsalert_transport_frames_sent_total", "Envelopes POSTed to peers.", &m.FramesSent)
	r.CounterValue("gsalert_transport_frames_received_total", "Envelopes accepted by local listeners.", &m.FramesReceived)
	r.CounterValue("gsalert_transport_bytes_sent_total", "Envelope payload bytes sent.", &m.BytesSent)
	r.CounterValue("gsalert_transport_bytes_received_total", "Envelope payload bytes received.", &m.BytesReceived)
	r.CounterValue("gsalert_transport_send_errors_total", "Sends that failed before yielding a response envelope.", &m.SendErrors)
}

// RegisterGoRuntime exposes the process-level runtime gauges every
// dashboard wants next to the subsystem panels.
func RegisterGoRuntime(r *Registry) {
	r.Collect(func(c *Collector) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		c.Gauge("gsalert_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
		c.Gauge("gsalert_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
		c.Gauge("gsalert_go_heap_objects", "Allocated heap objects.", float64(ms.HeapObjects))
		c.Counter("gsalert_go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
		c.Counter("gsalert_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
	})
}
