package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gsalert/gsalert/internal/trace"
)

func getTraces(t *testing.T, h http.Handler, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/traces"+query, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTracesHandler(t *testing.T) {
	h := TracesHandler(buildFixedTraceCollector())

	rec := getTraces(t, h, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var resp struct {
		Traces  []*trace.Trace `json:"traces"`
		Dropped int64          `json:"dropped_spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(resp.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(resp.Traces))
	}
	if !resp.Traces[0].Complete {
		t.Errorf("trace incomplete: root span missing from response")
	}
	if resp.Dropped != 7 {
		t.Errorf("dropped_spans = %d, want 7 (fixture overflows an 8-slot ring with 12 spans)", resp.Dropped)
	}

	// Filters that match nothing return an empty list, not an error.
	if rec := getTraces(t, h, "?stage=notify"); rec.Code != http.StatusOK {
		t.Errorf("stage filter: status = %d, want 200", rec.Code)
	} else if body := rec.Body.String(); !json.Valid([]byte(body)) {
		t.Errorf("stage filter: invalid JSON: %s", body)
	}
	if rec := getTraces(t, h, "?class=normal&min_ms=0.5&limit=10"); rec.Code != http.StatusOK {
		t.Errorf("combined filters: status = %d, want 200", rec.Code)
	}

	// Malformed numeric parameters are client errors.
	for _, q := range []string{"?min_ms=abc", "?limit=abc"} {
		if rec := getTraces(t, h, q); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, rec.Code)
		}
	}
}
