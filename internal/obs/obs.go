// Package obs is the observability layer: a metric registry with
// Prometheus text-format exposition, catalog wiring for every subsystem
// (core service, delivery pipeline, QoS admission, GDS directory nodes,
// HTTP transport, Go runtime), and a self-monitoring push exporter modeled
// on the VictoriaMetrics-importer pipeline (collect → compress → bounded
// sender pool with retry/backoff and a bandwidth cap).
//
// The registry is deliberately scrape-time-pull: hot paths keep the
// lock-free types of internal/metrics (Counter, LatencyHistogram) and pay
// nothing for being observable — the registry holds read functions and
// histogram pointers and reads them only when /metrics is scraped or the
// exporter collects. Registration is startup-time wiring; invalid names,
// duplicate series and kind conflicts panic immediately rather than
// producing an exposition a Prometheus scraper would reject at 3 a.m.
//
// Three registration shapes cover every producer:
//
//   - Counter/Gauge: one static series backed by a read func (wrap a
//     *metrics.Counter's Value, an atomic gauge, a len()).
//   - Histogram: one static series backed by a *metrics.LatencyHistogram,
//     rendered as a real Prometheus histogram (cumulative `_bucket` lines
//     over the power-of-two buckets, `_sum`, `_count`).
//   - Collect: a callback run per scrape that emits samples with dynamic
//     label sets (per-shard queue depths, per-link digest sizes) or many
//     samples from one snapshot call (core.ServiceStats).
//
// See docs/OBSERVABILITY.md for the full metric catalog and deployment
// walkthrough.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind is the exposition type of a family.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// series is one static scalar series.
type series struct {
	key    string // canonical label block, the sort/dedup key
	labels []Label
	read   func() float64
}

// histSeries is one static histogram series.
type histSeries struct {
	key    string
	labels []Label
	h      *metrics.LatencyHistogram
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind kind
	// static series, sorted lazily at render time.
	series []series
	hists  []histSeries
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use; WritePrometheus may run
// while registered read funcs' underlying counters are being written (the
// lock-free types of internal/metrics tolerate that by design).
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func(*Collector)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validate panics on names a Prometheus scraper would reject — wiring bugs
// must fail at startup, not at scrape time.
func validate(name string, labels []Label) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Name))
		}
		if l.Name == "le" {
			panic(fmt.Sprintf("obs: metric %s: label name \"le\" is reserved for histogram buckets", name))
		}
	}
}

// labelKey renders labels as the canonical `{a="b",c="d"}` block ("" when
// unlabelled). Labels are sorted by name so registration order never leaks
// into the exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format escapes: backslash, double
// quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// familyOf fetches or creates a family, panicking on help/kind conflicts.
func (r *Registry) familyOf(name, help string, k kind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, k))
	}
	return f
}

// addSeries installs one static series, panicking on duplicates.
func (r *Registry) addSeries(name, help string, k kind, labels []Label, read func() float64) {
	validate(name, labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyOf(name, help, k)
	for _, s := range f.series {
		if s.key == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, key))
		}
	}
	f.series = append(f.series, series{key: key, labels: labels, read: read})
}

// Counter registers a monotonically increasing series read at scrape time.
// By convention the name ends in `_total` (or `_seconds_total` for
// accumulated durations).
func (r *Registry) Counter(name, help string, read func() float64, labels ...Label) {
	r.addSeries(name, help, counterKind, labels, read)
}

// CounterValue registers a counter series backed directly by a lock-free
// metrics.Counter.
func (r *Registry) CounterValue(name, help string, c *metrics.Counter, labels ...Label) {
	r.Counter(name, help, func() float64 { return float64(c.Value()) }, labels...)
}

// Gauge registers a point-in-time series read at scrape time.
func (r *Registry) Gauge(name, help string, read func() float64, labels ...Label) {
	r.addSeries(name, help, gaugeKind, labels, read)
}

// Histogram registers a latency histogram series. It renders as a real
// Prometheus histogram — cumulative `_bucket{le="..."}` lines over the
// occupied power-of-two buckets (bounds in seconds), `_sum` and `_count` —
// so PromQL `histogram_quantile` works against it.
func (r *Registry) Histogram(name, help string, h *metrics.LatencyHistogram, labels ...Label) {
	validate(name, labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyOf(name, help, histogramKind)
	for _, s := range f.hists {
		if s.key == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, key))
		}
	}
	f.hists = append(f.hists, histSeries{key: key, labels: labels, h: h})
}

// Collect registers a callback run on every scrape. Use it for series whose
// label sets are dynamic (per-link tables, per-shard depths) or when many
// samples derive from one snapshot call.
func (r *Registry) Collect(fn func(*Collector)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Collector accumulates one scrape's dynamic samples.
type Collector struct {
	families map[string]*collFamily
}

type collFamily struct {
	help    string
	kind    kind
	samples []collSample
}

type collSample struct {
	key    string
	labels []Label
	v      float64
}

func (c *Collector) add(name, help string, k kind, v float64, labels []Label) {
	validate(name, labels)
	f := c.families[name]
	if f == nil {
		f = &collFamily{help: help, kind: k}
		c.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s collected as both %s and %s", name, f.kind, k))
	}
	f.samples = append(f.samples, collSample{key: labelKey(labels), labels: labels, v: v})
}

// Counter emits one counter sample for this scrape.
func (c *Collector) Counter(name, help string, v float64, labels ...Label) {
	c.add(name, help, counterKind, v, labels)
}

// Gauge emits one gauge sample for this scrape.
func (c *Collector) Gauge(name, help string, v float64, labels ...Label) {
	c.add(name, help, gaugeKind, v, labels)
}

// formatValue renders a sample value: integers exactly, floats in the
// shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// format (families and series in deterministic sorted order).
func (r *Registry) WritePrometheus(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics renders the same exposition with the OpenMetrics
// extras: exemplar annotations (`# {trace_id="..."} <bound>`) on histogram
// bucket lines whose bucket retained a sampled trace ID, and the `# EOF`
// terminator. Series names, values and ordering are byte-identical to the
// text format otherwise, so the two variants diff only in annotations.
// Handler negotiates between them on the Accept header.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	// Snapshot family pointers and collectors; reads and collector runs
	// happen outside the lock so a slow read func cannot block registration
	// (and a collector calling back into the registry cannot deadlock).
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := make([]func(*Collector), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	c := &Collector{families: make(map[string]*collFamily)}
	for _, fn := range collectors {
		fn(c)
	}

	type renderFamily struct {
		name string
		help string
		kind kind
		// scalar lines, sorted by label key.
		scalars []collSample
		hists   []histSeries
	}
	byName := make(map[string]*renderFamily, len(fams)+len(c.families))
	for _, f := range fams {
		rf := &renderFamily{name: f.name, help: f.help, kind: f.kind, hists: f.hists}
		for _, s := range f.series {
			rf.scalars = append(rf.scalars, collSample{key: s.key, v: s.read()})
		}
		byName[f.name] = rf
	}
	for name, cf := range c.families {
		rf := byName[name]
		if rf == nil {
			rf = &renderFamily{name: name, help: cf.help, kind: cf.kind}
			byName[name] = rf
		} else if rf.kind != cf.kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s but collected as %s", name, rf.kind, cf.kind))
		}
		rf.scalars = append(rf.scalars, cf.samples...)
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		rf := byName[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", rf.name, escapeHelp(rf.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", rf.name, rf.kind)
		sort.Slice(rf.scalars, func(i, j int) bool { return rf.scalars[i].key < rf.scalars[j].key })
		for _, s := range rf.scalars {
			fmt.Fprintf(&b, "%s%s %s\n", rf.name, s.key, formatValue(s.v))
		}
		hists := make([]histSeries, len(rf.hists))
		copy(hists, rf.hists)
		sort.Slice(hists, func(i, j int) bool { return hists[i].key < hists[j].key })
		for _, hs := range hists {
			writeHistogram(&b, rf.name, hs, openMetrics)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		b.Reset()
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets over the
// occupied power-of-two bounds (in seconds), the +Inf bucket, `_sum` and
// `_count`. The `_count` and +Inf values come from the same bucket sweep as
// the `le` lines, so the series is internally monotone even when writers
// race the scrape. With exemplars on (the OpenMetrics variant), a bucket
// that retained a sampled trace ID gets the `# {trace_id="..."} <bound>`
// annotation, linking the bucket to a span tree in /traces.
func writeHistogram(b *strings.Builder, name string, hs histSeries, exemplars bool) {
	// Splice `le` into the existing canonical label block: the key already
	// holds the sorted, escaped labels; `le` conventionally goes last.
	bucketPrefix := name + "_bucket{le=\""
	if hs.key != "" {
		bucketPrefix = name + "_bucket" + hs.key[:len(hs.key)-1] + ",le=\""
	}
	total := hs.h.Buckets(func(upper time.Duration, cumulative int64) {
		b.WriteString(bucketPrefix)
		bound := strconv.FormatFloat(upper.Seconds(), 'g', -1, 64)
		b.WriteString(bound)
		b.WriteString("\"} ")
		b.WriteString(strconv.FormatInt(cumulative, 10))
		if exemplars {
			if id := hs.h.Exemplar(upper); id != "" {
				b.WriteString(` # {trace_id="`)
				b.WriteString(escapeLabelValue(id))
				b.WriteString(`"} `)
				b.WriteString(bound)
			}
		}
		b.WriteByte('\n')
	})
	b.WriteString(bucketPrefix)
	b.WriteString("+Inf\"} ")
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s_sum%s %s\n", name, hs.key, formatValue(hs.h.Sum().Seconds()))
	fmt.Fprintf(b, "%s_count%s %s\n", name, hs.key, strconv.FormatInt(total, 10))
}
