package qos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassRealtime, ClassNormal, ClassBulk} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if c, err := ParseClass(""); err != nil || c != ClassNormal {
		t.Errorf("empty class = %v, %v, want normal", c, err)
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Error("unknown class accepted")
	}
	var zero Class
	if zero != ClassNormal {
		t.Error("zero value is not ClassNormal")
	}
}

func TestControllerBurstOnly(t *testing.T) {
	// Rate 0: the bucket never refills, so exactly burst tokens exist —
	// the deterministic mode the simulations rely on.
	c := NewController(Config{SubscriberBurst: 3})
	for i := 0; i < 3; i++ {
		if !c.AllowSubscriber("u") {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	if c.AllowSubscriber("u") {
		t.Error("take beyond burst admitted")
	}
	// Other subscribers have independent buckets.
	if !c.AllowSubscriber("v") {
		t.Error("fresh subscriber refused")
	}
}

func TestControllerRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewController(Config{
		SubscriberRate:  2, // 2 tokens/sec
		SubscriberBurst: 2,
		Clock:           func() time.Time { return now },
	})
	if !c.AllowSubscriber("u") || !c.AllowSubscriber("u") {
		t.Fatal("burst refused")
	}
	if c.AllowSubscriber("u") {
		t.Fatal("empty bucket admitted")
	}
	now = now.Add(500 * time.Millisecond) // refills 1 token
	if !c.AllowSubscriber("u") {
		t.Error("refilled token refused")
	}
	if c.AllowSubscriber("u") {
		t.Error("second take admitted after a 1-token refill")
	}
	// Refill clamps at burst.
	now = now.Add(time.Hour)
	if !c.AllowSubscriber("u") || !c.AllowSubscriber("u") {
		t.Error("burst not restored after long idle")
	}
	if c.AllowSubscriber("u") {
		t.Error("refill exceeded burst")
	}
}

func TestControllerDisabledDimensions(t *testing.T) {
	c := NewController(Config{}) // both bursts zero: unlimited
	for i := 0; i < 1000; i++ {
		if !c.AllowSubscriber("u") || !c.AllowCollection("H.C") {
			t.Fatal("disabled quota refused traffic")
		}
	}
}

func TestControllerCollectionIndependent(t *testing.T) {
	c := NewController(Config{CollectionBurst: 1})
	if !c.AllowCollection("H.A") {
		t.Fatal("first take refused")
	}
	if c.AllowCollection("H.A") {
		t.Error("over-quota collection admitted")
	}
	if !c.AllowCollection("H.B") {
		t.Error("independent collection refused")
	}
}

func TestControllerConcurrentAccounting(t *testing.T) {
	// Across many goroutines hammering one subscriber, exactly burst tokens
	// may be granted (rate 0 = no refill).
	const burst, workers, tries = 64, 8, 100
	c := NewController(Config{SubscriberBurst: burst})
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for i := 0; i < tries; i++ {
				if c.AllowSubscriber("hot") {
					n++
				}
				// Other keys must not be affected by the hot key's exhaustion.
				if !c.AllowSubscriber(fmt.Sprintf("cold-%d-%d", w, i)) {
					t.Error("cold subscriber refused its first token")
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != burst {
		t.Errorf("granted %d tokens for burst %d", total, burst)
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	// With every class saturated, one recharge cycle serves items in weight
	// proportion.
	s := NewScheduler([NumClasses]int{ClassRealtime: 8, ClassNormal: 4, ClassBulk: 1})
	counts := map[Class]int{}
	allReady := func(Class) bool { return true }
	for i := 0; i < 13*10; i++ { // 10 full cycles of 8+4+1
		c, ok := s.Pick(allReady)
		if !ok {
			t.Fatal("saturated scheduler reported nothing ready")
		}
		counts[c]++
	}
	if counts[ClassRealtime] != 80 || counts[ClassNormal] != 40 || counts[ClassBulk] != 10 {
		t.Errorf("shares = %v, want 80/40/10", counts)
	}
}

func TestSchedulerPriorityWithinCycle(t *testing.T) {
	s := NewScheduler(DefaultWeights)
	// Realtime ready: always served first while it has credit.
	got, ok := s.Pick(func(c Class) bool { return true })
	if !ok || got != ClassRealtime {
		t.Errorf("first pick = %v, %v", got, ok)
	}
	// Only bulk ready: bulk is served even though it is lowest priority.
	got, ok = s.Pick(func(c Class) bool { return c == ClassBulk })
	if !ok || got != ClassBulk {
		t.Errorf("bulk-only pick = %v, %v", got, ok)
	}
}

func TestSchedulerBulkNotStarved(t *testing.T) {
	// Under an unbounded realtime flood, bulk still gets its weight share:
	// count bulk services over many picks with both classes ready.
	s := NewScheduler(DefaultWeights)
	ready := func(c Class) bool { return c == ClassRealtime || c == ClassBulk }
	bulk := 0
	const picks = 900 // 100 cycles of 8 rt + 1 bulk
	for i := 0; i < picks; i++ {
		c, ok := s.Pick(ready)
		if !ok {
			t.Fatal("nothing ready")
		}
		if c == ClassBulk {
			bulk++
		}
	}
	if bulk != 100 {
		t.Errorf("bulk served %d of %d picks, want 100", bulk, picks)
	}
}

func TestSchedulerIdle(t *testing.T) {
	s := NewScheduler(DefaultWeights)
	if _, ok := s.Pick(func(Class) bool { return false }); ok {
		t.Error("idle scheduler reported work")
	}
	// Idle picks must not wedge the credits: work afterwards is served.
	if c, ok := s.Pick(func(c Class) bool { return c == ClassNormal }); !ok || c != ClassNormal {
		t.Errorf("post-idle pick = %v, %v", c, ok)
	}
}

func TestSchedulerZeroWeightsDefaulted(t *testing.T) {
	s := NewScheduler([NumClasses]int{})
	if s.weights != DefaultWeights {
		t.Errorf("weights = %v, want defaults %v", s.weights, DefaultWeights)
	}
}

func TestBucketSetEviction(t *testing.T) {
	// The bucket maps are bounded: churning far more keys than the cap must
	// not accrete one bucket per key forever, and an evicted key simply
	// starts a fresh (full) bucket.
	now := time.Unix(1000, 0)
	c := NewController(Config{
		SubscriberBurst: 1,
		Clock:           func() time.Time { return now },
	})
	total := bucketShards*maxBucketsPerShard + 5000
	for i := 0; i < total; i++ {
		c.AllowSubscriber(fmt.Sprintf("churn-%d", i))
		if i == total/2 {
			// Age the first half past the idle horizon so the cap sweep has
			// something stale to reclaim.
			now = now.Add(bucketIdleEvict + time.Minute)
		}
	}
	held := 0
	for i := range c.subscribers.shards {
		sh := &c.subscribers.shards[i]
		sh.mu.Lock()
		held += len(sh.m)
		sh.mu.Unlock()
	}
	if held > bucketShards*maxBucketsPerShard {
		t.Errorf("bucket maps hold %d entries after churning %d keys (cap %d)",
			held, total, bucketShards*maxBucketsPerShard)
	}
	// An evicted key is treated as new: full bucket again (errs toward
	// delivering, never toward phantom debt).
	if !c.AllowSubscriber("churn-0") {
		t.Error("evicted key did not restart with a full bucket")
	}
}
