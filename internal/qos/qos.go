// Package qos implements the admission-control and scheduling subsystem
// behind graceful overload degradation. The paper's delivery story (§7)
// treats every notification as equally urgent and every subscriber as
// well-behaved; at production scale one hot collection or one greedy
// subscriber can starve everyone else, and undifferentiated backpressure
// (block / drop-oldest / spill) punishes all traffic identically.
//
// This package adds three mechanisms, consumed by internal/core and
// internal/delivery:
//
//   - Class: a per-subscription priority class (realtime / normal / bulk)
//     carried in the profile wire form, into the delivery pipeline's items
//     and WAL records, and onto notification envelopes.
//   - Controller: per-subscriber and per-collection token buckets checked at
//     the publish path. Over-quota traffic is never silently lost — it is
//     degraded: normal-class notifications are deferred to the mailbox,
//     bulk-class notifications are coalesced into a digest (the composite
//     engine's digest machinery).
//   - Scheduler: a weighted deficit-round-robin policy the delivery
//     pipeline uses to service its per-class shard queues, so realtime
//     latency stays bounded while bulk drains in the gaps.
//
// The degradation ladder, most- to least-favoured: realtime is never shed
// (it bypasses quota checks); normal is deferred but individually delivered;
// bulk collapses to one digest notification per flush period.
package qos

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Class is the priority class of a subscription and of the notifications it
// produces. The zero value is ClassNormal so untagged profiles (and wire
// forms predating the class field) behave exactly as before.
type Class uint8

// Priority classes.
const (
	// ClassNormal is the default: subject to quotas, deferred (not dropped)
	// when over quota.
	ClassNormal Class = iota
	// ClassRealtime is never shed: it bypasses quota checks and is serviced
	// first by the delivery scheduler.
	ClassRealtime
	// ClassBulk is shed first: over-quota bulk notifications are coalesced
	// into a periodic digest instead of delivered per event.
	ClassBulk
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// ByPriority lists the classes highest-priority first — the service order of
// the delivery scheduler.
var ByPriority = [NumClasses]Class{ClassRealtime, ClassNormal, ClassBulk}

// String names the class (the wire and flag form).
func (c Class) String() string {
	switch c {
	case ClassRealtime:
		return "realtime"
	case ClassNormal:
		return "normal"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class-%d", int(c))
	}
}

// ParseClass inverts Class.String. The empty string is ClassNormal, so
// profiles serialized before the class field existed parse unchanged.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "normal":
		return ClassNormal, nil
	case "realtime":
		return ClassRealtime, nil
	case "bulk":
		return ClassBulk, nil
	default:
		return ClassNormal, fmt.Errorf("qos: unknown class %q (want realtime, normal or bulk)", s)
	}
}

// Outcome names an admission decision on the publish path — the value of
// the qos span's "outcome" attribute in event traces, closing the loop
// between the degradation ladder and latency attribution (a deferred
// notification's queue-wait is explained by its outcome=defer span).
type Outcome uint8

// Admission outcomes.
const (
	// OutcomeAdmit: within quota, enqueued normally.
	OutcomeAdmit Outcome = iota
	// OutcomeBypass: realtime traffic, quota checks skipped.
	OutcomeBypass
	// OutcomeDefer: over-quota normal traffic parked in the mailbox.
	OutcomeDefer
	// OutcomeCoalesce: over-quota bulk traffic folded into a digest.
	OutcomeCoalesce
)

// String names the outcome (the span-attribute form).
func (o Outcome) String() string {
	switch o {
	case OutcomeAdmit:
		return "admit"
	case OutcomeBypass:
		return "bypass"
	case OutcomeDefer:
		return "defer"
	case OutcomeCoalesce:
		return "coalesce"
	default:
		return fmt.Sprintf("outcome-%d", int(o))
	}
}

// ---------------------------------------------------------------------------
// Token buckets

// bucket is one token bucket. Tokens refill continuously at rate/sec up to
// burst; a take consumes one token.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills by elapsed time and consumes one token if available.
func (b *bucket) take(rate float64, burst float64, now time.Time) bool {
	if b.last.IsZero() {
		b.tokens = burst
	} else if rate > 0 {
		b.tokens = math.Min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// bucketShards spreads the per-key bucket maps over independently locked
// shards so concurrent admissions for different subscribers rarely contend.
const bucketShards = 16

// maxBucketsPerShard bounds one shard's bucket map (64k keys total across
// shards); beyond it, idle buckets are evicted. The cap keeps a
// long-running controller from accreting one bucket per transient
// subscriber or collection forever.
const maxBucketsPerShard = 4096

// bucketIdleEvict is how long a bucket must sit untouched before the cap
// sweep may reclaim it.
const bucketIdleEvict = 10 * time.Minute

// fnv32a is an allocation-free FNV-1a over the key: shard selection sits on
// the per-match publish hot path, where hash.Hash32 plus a []byte copy per
// admission would dominate the check itself.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// bucketSet is a sharded-lock map of token buckets keyed by subscriber or
// collection name.
type bucketSet struct {
	shards [bucketShards]struct {
		mu sync.Mutex
		m  map[string]*bucket
	}
}

func newBucketSet() *bucketSet {
	s := &bucketSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*bucket)
	}
	return s
}

// take consumes one token from key's bucket, creating it full on first use.
func (s *bucketSet) take(key string, rate float64, burst float64, now time.Time) bool {
	sh := &s.shards[fnv32a(key)%bucketShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[key]
	if b == nil {
		if len(sh.m) >= maxBucketsPerShard {
			// Evict idle buckets; if everything is hot, drop arbitrary
			// entries. Forgetting a bucket errs toward delivering — it is
			// recreated full on next use — which is the safe direction for
			// an admission control whose job is protecting, not billing.
			evictLocked(sh.m, now)
		}
		b = &bucket{}
		sh.m[key] = b
	}
	return b.take(rate, burst, now)
}

// evictLocked reclaims idle buckets from one shard map, falling back to
// arbitrary eviction when nothing is idle.
func evictLocked(m map[string]*bucket, now time.Time) {
	cutoff := now.Add(-bucketIdleEvict)
	for k, b := range m {
		if b.last.Before(cutoff) {
			delete(m, k)
		}
	}
	for k := range m {
		if len(m) < maxBucketsPerShard {
			break
		}
		delete(m, k)
	}
}

// ---------------------------------------------------------------------------
// Admission controller

// DefaultBulkDigestEvery is the coalescing period for over-quota bulk
// traffic when Config.BulkDigestEvery is zero.
const DefaultBulkDigestEvery = 30 * time.Second

// Config assembles a Controller. A burst of zero (or less) disables that
// quota dimension entirely; a rate of zero makes the bucket burst-only (no
// refill), which deterministic simulations use.
type Config struct {
	// SubscriberRate is the sustained notifications/sec each subscriber may
	// receive across non-realtime classes.
	SubscriberRate float64
	// SubscriberBurst is the per-subscriber bucket capacity. <= 0 disables
	// per-subscriber quotas.
	SubscriberBurst int
	// CollectionRate is the sustained events/sec one collection may push
	// through non-realtime subscriptions.
	CollectionRate float64
	// CollectionBurst is the per-collection bucket capacity. <= 0 disables
	// per-collection quotas.
	CollectionBurst int
	// BulkDigestEvery is the coalescing period for over-quota bulk traffic:
	// shed bulk notifications accrue and flush as one digest per period.
	// Zero selects DefaultBulkDigestEvery.
	BulkDigestEvery time.Duration
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// Controller enforces the quotas of one server's publish path. All methods
// are safe for concurrent use.
type Controller struct {
	cfg         Config
	subscribers *bucketSet
	collections *bucketSet
}

// NewController builds a controller from cfg.
func NewController(cfg Config) *Controller {
	if cfg.BulkDigestEvery <= 0 {
		cfg.BulkDigestEvery = DefaultBulkDigestEvery
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Controller{
		cfg:         cfg,
		subscribers: newBucketSet(),
		collections: newBucketSet(),
	}
}

// BulkDigestEvery reports the coalescing period for shed bulk traffic.
func (c *Controller) BulkDigestEvery() time.Duration { return c.cfg.BulkDigestEvery }

// AllowSubscriber consumes one token from the subscriber's bucket,
// reporting whether the notification is within quota. Realtime traffic must
// not be passed here — it bypasses quotas by design.
func (c *Controller) AllowSubscriber(subscriber string) bool {
	if c.cfg.SubscriberBurst <= 0 {
		return true
	}
	return c.subscribers.take(subscriber, c.cfg.SubscriberRate, float64(c.cfg.SubscriberBurst), c.cfg.Clock())
}

// AllowCollection consumes one token from the collection's bucket, reporting
// whether this event's non-realtime fan-out is within the collection quota.
func (c *Controller) AllowCollection(collection string) bool {
	if c.cfg.CollectionBurst <= 0 {
		return true
	}
	return c.collections.take(collection, c.cfg.CollectionRate, float64(c.cfg.CollectionBurst), c.cfg.Clock())
}

// BucketLevels summarises one quota dimension's live token buckets for
// monitoring: how many keys are tracked and how many tokens they hold in
// aggregate. Tokens are the raw stored levels (no refill-to-now), so an
// idle dimension reads as its last admitted state.
type BucketLevels struct {
	Buckets int
	Tokens  float64
}

// ControllerStats is a point-in-time view of the controller's bucket maps
// (the "is admission control biting?" panel: aggregate tokens near zero
// across many buckets means quotas are saturated).
type ControllerStats struct {
	Subscribers BucketLevels
	Collections BucketLevels
}

// Stats snapshots the controller's bucket levels across both dimensions.
func (c *Controller) Stats() ControllerStats {
	return ControllerStats{
		Subscribers: c.subscribers.levels(),
		Collections: c.collections.levels(),
	}
}

// levels sums one bucketSet's population and stored tokens.
func (s *bucketSet) levels() BucketLevels {
	var out BucketLevels
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Buckets += len(sh.m)
		for _, b := range sh.m {
			out.Tokens += b.tokens
		}
		sh.mu.Unlock()
	}
	return out
}

// ---------------------------------------------------------------------------
// Weighted-fair scheduler

// DefaultWeights is the per-class service ratio of the delivery scheduler:
// under saturation one full recharge cycle serves 8 realtime, 4 normal and 1
// bulk item.
var DefaultWeights = [NumClasses]int{ClassRealtime: 8, ClassNormal: 4, ClassBulk: 1}

// Scheduler is a weighted deficit-round-robin policy across classes. Each
// class holds credit replenished from its weight; Pick serves the
// highest-priority ready class with credit, recharging every class when
// credit runs out while work remains. It is a pure policy object — the
// caller owns the queues — and Pick is NOT safe for concurrent use: each
// delivery shard worker owns one. Credits() alone may be called from other
// goroutines (the credits are atomics precisely so an observability scrape
// can read a live scheduler's deficits without stalling its worker).
type Scheduler struct {
	weights [NumClasses]int
	credit  [NumClasses]atomic.Int64
}

// NewScheduler builds a scheduler; non-positive weights fall back to
// DefaultWeights entries.
func NewScheduler(weights [NumClasses]int) *Scheduler {
	s := &Scheduler{}
	for c := 0; c < NumClasses; c++ {
		w := weights[c]
		if w <= 0 {
			w = DefaultWeights[c]
		}
		s.weights[c] = w
		s.credit[c].Store(int64(w))
	}
	return s
}

// Weights reports the per-class service weights in effect.
func (s *Scheduler) Weights() [NumClasses]int { return s.weights }

// Credits reports the remaining DRR deficit credit per class — how much of
// the current recharge cycle each class may still consume. Safe to call
// concurrently with the owning worker's Pick loop.
func (s *Scheduler) Credits() [NumClasses]int64 {
	var out [NumClasses]int64
	for c := 0; c < NumClasses; c++ {
		out[c] = s.credit[c].Load()
	}
	return out
}

// Pick selects the next class to serve. ready reports whether a class has
// queued work; ok is false when no class is ready. Spent credit is the
// fairness memory: a burst of realtime can pre-empt at most its weight per
// cycle before bulk is guaranteed a turn.
func (s *Scheduler) Pick(ready func(Class) bool) (Class, bool) {
	for pass := 0; pass < 2; pass++ {
		for _, c := range ByPriority {
			if s.credit[c].Load() > 0 && ready(c) {
				s.credit[c].Add(-1)
				return c, true
			}
		}
		// Either nothing is ready, or every ready class is out of credit:
		// recharge and try once more.
		any := false
		for _, c := range ByPriority {
			if ready(c) {
				any = true
			}
			s.credit[c].Store(int64(s.weights[c]))
		}
		if !any {
			return ClassNormal, false
		}
	}
	return ClassNormal, false
}

// ---------------------------------------------------------------------------
// Bucket-level replication

// BucketState is one token bucket's replicable level: quota dimension
// ("subscriber" or "collection"), key, stored tokens and the last-touch
// timestamp the refill math is relative to. Shipped in replication
// snapshots and heartbeats so a promoted standby enforces the quotas the
// primary had already charged, instead of granting every subscriber a
// fresh burst at failover.
type BucketState struct {
	Dimension string
	Key       string
	Tokens    float64
	Last      time.Time
}

// Dimension names for BucketState.
const (
	DimSubscriber = "subscriber"
	DimCollection = "collection"
)

// ExportBuckets snapshots every live bucket across both dimensions, sorted
// by (dimension, key) so exports are deterministic.
func (c *Controller) ExportBuckets() []BucketState {
	var out []BucketState
	out = c.subscribers.export(DimSubscriber, out)
	out = c.collections.export(DimCollection, out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dimension != out[j].Dimension {
			return out[i].Dimension < out[j].Dimension
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ApplyBuckets installs replicated bucket levels, overwriting any local
// state for the same keys. Buckets not mentioned are left alone — the
// stream is level-correcting, not a full sync, and an extra local bucket
// errs toward its own (fresher) admission history.
func (c *Controller) ApplyBuckets(states []BucketState) {
	for _, st := range states {
		switch st.Dimension {
		case DimSubscriber:
			c.subscribers.install(st.Key, st.Tokens, st.Last)
		case DimCollection:
			c.collections.install(st.Key, st.Tokens, st.Last)
		}
	}
}

// export appends one dimension's buckets to out.
func (s *bucketSet) export(dim string, out []BucketState) []BucketState {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, b := range sh.m {
			out = append(out, BucketState{Dimension: dim, Key: k, Tokens: b.tokens, Last: b.last})
		}
		sh.mu.Unlock()
	}
	return out
}

// install sets one bucket's level, creating it if absent.
func (s *bucketSet) install(key string, tokens float64, last time.Time) {
	sh := &s.shards[fnv32a(key)%bucketShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[key]
	if b == nil {
		b = &bucket{}
		sh.m[key] = b
	}
	b.tokens = tokens
	b.last = last
}
