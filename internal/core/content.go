package core

import (
	"context"
	"fmt"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/trace"
)

// Content-based dissemination (RouteContent): instead of joining one
// multicast group per covered collection, the server advertises a single
// digest summarising its whole profile population and lets the directory
// route events by their attributes. Profile churn re-advertises only when
// the normalised digest actually changes — subscribing to something the
// current digest already covers is free.

// DefaultContentWarmup is how long a server floods after entering content
// mode, giving advertisement traffic time to populate the routing tables
// of every directory node. Deterministic simulations (synchronous
// transport) configure zero.
const DefaultContentWarmup = 3 * time.Second

// localDigestLocked computes the digest of the current user-profile
// population, reusing the cached merge when only additions happened since
// it was built (subscribing is the hot path; a full recomputation per
// subscribe would scan the whole population every time). Auxiliary
// profiles are excluded on purpose: aux-matched events arrive
// point-to-point over the GS network, not through GDS dissemination.
// Callers hold s.advMu.
func (s *Service) localDigestLocked(added *profile.Profile) profile.Digest {
	if s.digestCacheOK && added != nil {
		s.digestCache = profile.MergeDigests(s.digestCache, profile.DigestOf(added.Expr))
		return s.digestCache
	}
	all := s.matcher.All()
	parts := make([]profile.Digest, 0, len(all))
	for _, p := range all {
		parts = append(parts, profile.DigestOf(p.Expr))
	}
	s.digestCache = profile.MergeDigests(parts...)
	s.digestCacheOK = true
	return s.digestCache
}

// advertiseProfiles sends the current digest to the GDS node if it differs
// from what was last advertised (the client-side covering prune). added,
// when non-nil, is a profile just registered — an incremental widening
// that can reuse the cached digest. The whole compute-compare-send
// sequence is serialised by s.advMu so concurrent churn cannot send a
// stale (narrower) digest after a fresh one and leave the directory
// permanently missing an interest.
func (s *Service) advertiseProfiles(ctx context.Context, added *profile.Profile) error {
	if s.gdsCli == nil {
		return nil
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()
	d := s.localDigestLocked(added)
	canon := d.Canonical()
	s.mu.Lock()
	skip := s.advertisedOnce && canon == s.advertised
	s.mu.Unlock()
	if skip {
		return nil
	}
	if err := s.gdsCli.AdvertiseProfiles(ctx, d); err != nil {
		return fmt.Errorf("core: advertise profiles: %w", err)
	}
	s.mu.Lock()
	s.advertised = canon
	s.advertisedOnce = true
	s.stats.AdvertisementsSent++
	s.mu.Unlock()
	return nil
}

// readvertiseOnChurn refreshes the advertisement after a profile was added
// (non-nil added) or removed while in content mode. Best effort, like
// multicast's group joins: a failed advertisement degrades precision (the
// directory keeps the previous digest) but never correctness beyond it.
func (s *Service) readvertiseOnChurn(added *profile.Profile) {
	s.mu.Lock()
	content := s.routing == RouteContent
	s.mu.Unlock()
	if !content {
		return
	}
	if added == nil {
		// A removal may narrow the digest: rebuild the cache from the
		// surviving population.
		s.advMu.Lock()
		s.digestCacheOK = false
		s.advMu.Unlock()
	}
	_ = s.advertiseProfiles(context.Background(), added)
}

// contentRouteEvent disseminates ev through the directory's content
// tables, flooding instead while the warm-up window is open.
func (s *Service) contentRouteEvent(ctx context.Context, ev *event.Event, tctx trace.Context) error {
	raw, err := ev.MarshalXMLBytes()
	if err != nil {
		return err
	}
	inner, err := protocol.NewEnvelope(s.name, protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap(raw)})
	if err != nil {
		return err
	}
	stampTrace(inner, tctx)
	s.mu.Lock()
	flood := s.clock().Before(s.contentFloodUntil)
	s.mu.Unlock()
	return s.gdsCli.RouteContent(ctx, ev.Attrs(), inner, flood)
}
