package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/transport"
)

// qosService builds a solitary service with the given admission controller.
func qosService(t *testing.T, ctrl *qos.Controller) *Service {
	t.Helper()
	tr := transport.NewMemory(1)
	s, err := New(Config{
		ServerName: "Hamilton",
		ServerAddr: "addr:Hamilton",
		Transport:  tr,
		Resolver:   StaticResolver{},
		QoS:        ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// subscribeClass registers a profile matching the test collection for one
// client at the given class, returning the profile ID.
func subscribeClass(t *testing.T, s *Service, client string, class qos.Class) string {
	t.Helper()
	p := profile.NewUser(s.nextID("p"), client, s.Name(),
		profile.MustParse(`collection = "Hamilton.C" AND event.type = "documents-added"`))
	p.Class = class
	if err := s.SubscribeProfile(p); err != nil {
		t.Fatal(err)
	}
	return p.ID
}

// publishAdds publishes n documents-added events for Hamilton.C.
func publishAdds(t *testing.T, s *Service, n int, tag string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		ev := event.New(fmt.Sprintf("qos-%s-%d", tag, i), event.TypeDocumentsAdded,
			event.QName{Host: "Hamilton", Collection: "C"}, 1,
			[]event.DocRef{{ID: fmt.Sprintf("d-%s-%d", tag, i)}}, time.Now())
		if _, err := s.PublishBuild(ctx, &collection.BuildResult{Events: []*event.Event{ev}}); err != nil {
			t.Fatal(err)
		}
	}
	drainService(t, s)
}

func TestQoSDegradationLadder(t *testing.T) {
	// Burst-only subscriber quota of 2: of 6 events, realtime gets all 6,
	// normal gets 2 now + 4 deferred, bulk gets 2 now + 4 coalesced into
	// one digest.
	const events, burst = 6, 2
	s := qosService(t, qos.NewController(qos.Config{
		SubscriberBurst: burst,
		BulkDigestEvery: time.Minute,
	}))
	rt, nm, blk := NewMemoryNotifier(), NewMemoryNotifier(), NewMemoryNotifier()
	s.RegisterNotifier("rt", rt)
	s.RegisterNotifier("nm", nm)
	s.RegisterNotifier("blk", blk)
	subscribeClass(t, s, "rt", qos.ClassRealtime)
	subscribeClass(t, s, "nm", qos.ClassNormal)
	blkID := subscribeClass(t, s, "blk", qos.ClassBulk)

	publishAdds(t, s, events, "a")

	if got := rt.Len(); got != events {
		t.Errorf("realtime delivered %d, want %d (never shed)", got, events)
	}
	if got := nm.Len(); got != burst {
		t.Errorf("normal delivered %d promptly, want %d", got, burst)
	}
	if parked := s.Delivery().Pending("nm"); parked != events-burst {
		t.Errorf("normal parked %d, want %d deferred", parked, events-burst)
	}
	if got := blk.Len(); got != burst {
		t.Errorf("bulk delivered %d promptly, want %d", got, burst)
	}

	// The deferred normal backlog drains on re-attach — delayed, not lost.
	s.RegisterNotifier("nm", nm)
	drainService(t, s)
	if got := nm.Len(); got != events {
		t.Errorf("normal total after re-attach = %d, want %d", got, events)
	}

	// The coalesced bulk backlog flushes as one digest carrying the shed
	// events.
	s.CompositeTick(time.Now().Add(2 * time.Minute))
	drainService(t, s)
	var digests, carried int
	for _, n := range blk.All() {
		if n.Composite == "digest" {
			digests++
			carried += len(n.Contributing)
			if n.ProfileID != blkID {
				t.Errorf("digest delivered for profile %q, want %q", n.ProfileID, blkID)
			}
			if n.Class != qos.ClassBulk {
				t.Errorf("digest class = %v, want bulk", n.Class)
			}
		}
	}
	if digests != 1 || carried != events-burst {
		t.Errorf("digests = %d carrying %d events, want 1 carrying %d", digests, carried, events-burst)
	}

	st := s.Stats()
	wantAdmitted := int64(events + burst + burst)
	if st.QoSAdmitted != wantAdmitted || st.QoSDeferred != events-burst || st.QoSCoalesced != events-burst {
		t.Errorf("accounting admitted/deferred/coalesced = %d/%d/%d, want %d/%d/%d",
			st.QoSAdmitted, st.QoSDeferred, st.QoSCoalesced, wantAdmitted, events-burst, events-burst)
	}
	if st.QoSAdmitted+st.QoSDeferred+st.QoSCoalesced != int64(3*events) {
		t.Errorf("accounting does not cover every match: %d+%d+%d != %d",
			st.QoSAdmitted, st.QoSDeferred, st.QoSCoalesced, 3*events)
	}
	if st.QoSDigests != 1 {
		t.Errorf("QoSDigests = %d, want 1", st.QoSDigests)
	}
}

func TestQoSCollectionQuota(t *testing.T) {
	// A hot collection hits its own bucket: normal subscribers degrade even
	// though their subscriber buckets still hold tokens; realtime is
	// untouched.
	const events, collBurst = 5, 2
	s := qosService(t, qos.NewController(qos.Config{
		CollectionBurst: collBurst,
		BulkDigestEvery: time.Minute,
	}))
	rt, nm := NewMemoryNotifier(), NewMemoryNotifier()
	s.RegisterNotifier("rt", rt)
	s.RegisterNotifier("nm", nm)
	subscribeClass(t, s, "rt", qos.ClassRealtime)
	subscribeClass(t, s, "nm", qos.ClassNormal)

	publishAdds(t, s, events, "c")

	if got := rt.Len(); got != events {
		t.Errorf("realtime delivered %d, want %d", got, events)
	}
	if got := nm.Len(); got != collBurst {
		t.Errorf("normal delivered %d promptly, want %d (collection quota)", got, collBurst)
	}
	st := s.Stats()
	if st.QoSDeferred != events-collBurst {
		t.Errorf("deferred = %d, want %d", st.QoSDeferred, events-collBurst)
	}
}

func TestQoSUnsubscribeDropsPendingDigest(t *testing.T) {
	s := qosService(t, qos.NewController(qos.Config{
		SubscriberBurst: 1,
		BulkDigestEvery: time.Minute,
	}))
	blk := NewMemoryNotifier()
	s.RegisterNotifier("blk", blk)
	blkID := subscribeClass(t, s, "blk", qos.ClassBulk)
	publishAdds(t, s, 3, "u") // 1 delivered, 2 coalesced

	if err := s.Unsubscribe("blk", blkID); err != nil {
		t.Fatal(err)
	}
	s.CompositeTick(time.Now().Add(2 * time.Minute))
	drainService(t, s)
	for _, n := range blk.All() {
		if n.Composite == "digest" {
			t.Error("cancelled profile still flushed a coalesced digest")
		}
	}
}

func TestQoSDisabledIsTransparent(t *testing.T) {
	// Without a controller, classed profiles deliver everything (classes
	// only steer scheduling weights) and QoS counters stay zero.
	s := qosService(t, nil)
	blk := NewMemoryNotifier()
	s.RegisterNotifier("blk", blk)
	subscribeClass(t, s, "blk", qos.ClassBulk)
	publishAdds(t, s, 4, "d")
	if got := blk.Len(); got != 4 {
		t.Errorf("delivered %d, want 4", got)
	}
	st := s.Stats()
	if st.QoSAdmitted != 0 || st.QoSDeferred != 0 || st.QoSCoalesced != 0 {
		t.Errorf("QoS counters moved without a controller: %+v", st)
	}
	// Runtime enablement via SetQoS takes effect immediately.
	s.SetQoS(qos.NewController(qos.Config{SubscriberBurst: 1, BulkDigestEvery: time.Minute}))
	publishAdds(t, s, 3, "e")
	st = s.Stats()
	if st.QoSAdmitted != 1 || st.QoSCoalesced != 2 {
		t.Errorf("post-SetQoS admitted/coalesced = %d/%d, want 1/2", st.QoSAdmitted, st.QoSCoalesced)
	}
}

func TestProfileClassSurvivesPersistence(t *testing.T) {
	// The class rides the profile wire form, so persistence (and with it
	// replication, which reuses the same XML) round-trips it.
	p := profile.NewUser("p-1", "alice", "Hamilton",
		profile.MustParse(`collection = "Hamilton.C"`))
	p.Class = qos.ClassRealtime
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := profile.UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Class != qos.ClassRealtime {
		t.Errorf("class after round-trip = %v, want realtime", back.Class)
	}
	// A class this build does not know (a newer peer's wire form) degrades
	// to normal instead of failing replication apply / snapshot restore.
	future := strings.Replace(string(raw), "<Class>realtime</Class>", "<Class>hyperreal</Class>", 1)
	if future == string(raw) {
		t.Fatal("wire form did not contain the class element")
	}
	degraded, err := profile.UnmarshalXMLBytes([]byte(future))
	if err != nil {
		t.Fatalf("unknown class failed the parse: %v", err)
	}
	if degraded.Class != qos.ClassNormal {
		t.Errorf("unknown class parsed as %v, want normal", degraded.Class)
	}
	// Default class stays absent from the wire form (back-compat).
	p.Class = qos.ClassNormal
	raw, err = p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	if contains := string(raw); len(contains) > 0 && strings.Contains(contains, "<Class>") {
		t.Errorf("normal class serialized explicitly: %s", contains)
	}
}
