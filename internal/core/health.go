package core

import (
	"context"
	"strconv"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/logging"
)

// HealthAlert is one health-plane component state transition, published
// into the pipeline as a first-class event (the dogfood: the system
// subscribes to its own judgment). Defined here rather than importing
// internal/health so the dependency points health→core at the wiring
// layer, never core→health.
type HealthAlert struct {
	// Component is the subsystem whose state changed (delivery, qos,
	// replica, exporter, ...).
	Component string
	// From and To are the state names either side of the change (healthy,
	// degraded, critical).
	From, To string
	// Rule names the rule that tipped the component; Severity is its
	// severity (warning, critical).
	Rule, Severity string
	// Value is the rule's last evaluated input.
	Value float64
	// At is the engine tick time of the transition.
	At time.Time
}

// HealthCollection is the reserved collection name health-alert events are
// published under, qualified by the emitting server's name — so profiles
// can scope to one server's health ("gs1._health") or match the event type
// across the network.
const HealthCollection = "_health"

// PublishHealthAlert publishes a meta-alert through the ordinary event
// path: local profile filtering (QoS admission included), auxiliary
// forwarding and GDS dissemination in whatever routing mode is active.
// Operators subscribe with the existing profile language — the transition
// fields ride as document metadata, so predicates like
// `health.state = "critical"` and composite wrappers like
// `SEQUENCE (health.state = "degraded") THEN (health.state = "critical")
// WITHIN 1m` work unchanged.
func (s *Service) PublishHealthAlert(ctx context.Context, a HealthAlert) error {
	name := event.QName{Host: s.name, Collection: HealthCollection}
	ev := &event.Event{
		ID:         s.nextID("health"),
		Type:       event.TypeHealthAlert,
		Collection: name,
		Origin:     name,
		Chain:      []event.QName{name},
		Docs: []event.DocRef{{
			ID: a.Component + ":" + a.To,
			Metadata: map[string][]string{
				"health.component": {a.Component},
				"health.state":     {a.To},
				"health.from":      {a.From},
				"health.severity":  {a.Severity},
				"health.rule":      {a.Rule},
				"health.value":     {strconv.FormatFloat(a.Value, 'g', -1, 64)},
			},
			Snippet: "health: " + a.Component + " " + a.From + " -> " + a.To + " (" + a.Rule + ")",
		}},
		OccurredAt: a.At,
	}
	_, err := s.publishEvent(ctx, ev)
	if err == nil {
		s.mu.Lock()
		s.stats.HealthAlerts++
		s.mu.Unlock()
		s.log.Info("health alert published",
			logging.String("component", a.Component), logging.String("to", a.To),
			logging.String("rule", a.Rule))
	}
	return err
}
